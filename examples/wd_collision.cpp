// The Section V science problem: two white dwarfs collide head-on; the
// contact point heats until carbon ignites. A scaled-down version of the
// paper's Figure 4 run with the 13-isotope network.
//
// Run:  ./wd_collision [key=value ...]
//       e.g.  ./wd_collision ncell=24 network=iso7
//
// `network` is any name in the NetworkRegistry (aprox13 by default; try
// iso7 for the cheap reduced chain or aprox19 for the full 19-isotope
// set). Prints the approach, contact, and heating history; writes an
// x-axis line-out of density and temperature at the end
// (out/wd_lineout.csv).

#include "ensemble/scenarios.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>

using namespace exa;
using namespace exa::castro;
using namespace exa::ensemble;

int main(int argc, char** argv) {
    std::unique_ptr<Scenario> scenario;
    try {
        ScenarioConfig cfg = ScenarioConfig::fromArgs(argc, argv);
        if (!cfg.has("ncell")) cfg.set("ncell", "24");
        if (!cfg.has("max-grid-size")) {
            const int ncell = cfg.getInt("ncell", 24);
            cfg.set("max-grid-size", std::to_string(std::max(8, ncell / 2)));
        }
        if (!cfg.has("rho-c")) cfg.set("rho-c", "5.0e6");
        if (!cfg.has("domain-width")) cfg.set("domain-width", "8.0e9");
        if (!cfg.has("separation")) cfg.set("separation", "1.3");
        if (!cfg.has("approach-velocity")) cfg.set("approach-velocity", "4.0e8");
        if (!cfg.has("t-stop")) cfg.set("t-stop", "10.0");
        if (!cfg.has("max-steps")) cfg.set("max-steps", "400");
        scenario = makeScenarioByName("wd-collision", cfg);
        scenario->init(); // builds the stars (and the network, by name)
    } catch (const std::exception& e) {
        std::fprintf(stderr, "wd_collision: %s\n", e.what());
        return 1;
    }
    auto& wds = dynamic_cast<WdCollisionScenario&>(*scenario);
    WdCollision& wd = wds.collision();
    const WdCollisionParams& p = wds.params();
    const int ncell = p.ncell;

    std::printf("WD collision: R = %.3g cm (%.0f km), M = %.2f Msun each, "
                "%d^3 zones (dx = %.0f km), network %s\n",
                wd.profile.radius, wd.profile.radius / 1.0e5,
                wd.profile.mass / constants::M_sun, ncell,
                p.domain_width / ncell / 1.0e5,
                wd.castro->network().name().c_str());
    std::printf("%6s %10s %14s %14s %16s\n", "step", "t [s]", "maxT [K]",
                "max rho", "t_burn/t_cross");

    int next_report = 0;
    while (!scenario->finished()) {
        scenario->advanceOnce();
        if (scenario->stepCount() >= next_report) {
            std::printf("%6d %10.3f %14.4e %14.4e %16.3g\n",
                        scenario->stepCount(), scenario->time(),
                        wd.castro->maxTemperature(), wd.castro->maxDensity(),
                        wd.castro->minBurnTimescaleRatio(1.0e9));
            next_report += 20;
        }
    }

    if (wds.ignited()) {
        std::printf("\n*** thermonuclear ignition at t = %.3f s (T >= %.1e K) "
                    "***\n",
                    scenario->time(), p.ignition_T);
        auto hz = wd.castro->hottestZone();
        std::printf("ignition site: (%.3g, %.3g, %.3g) cm — the contact plane\n",
                    hz[0], hz[1], hz[2]);
        std::printf("burning/sound-crossing timescale ratio: %.3g "
                    "(< 1: the detonation is not numerically converged — the "
                    "paper's caveat)\n",
                    wd.castro->minBurnTimescaleRatio(1.0e9));
    } else {
        std::printf("\nno ignition before t = %.2f s at this resolution\n",
                    scenario->time());
    }

    // x-axis line-out through the collision axis.
    std::filesystem::create_directories("out");
    std::FILE* f = std::fopen("out/wd_lineout.csv", "w");
    std::fprintf(f, "x,rho,T\n");
    const auto& s = wd.castro->state();
    const Geometry& g = wd.castro->geom();
    const int jc = ncell / 2, kc = ncell / 2;
    for (int i = 0; i < ncell; ++i) {
        for (std::size_t b = 0; b < s.size(); ++b) {
            const Box& vb = s.box(static_cast<int>(b));
            if (!vb.contains(i, jc, kc)) continue;
            auto u = s.const_array(static_cast<int>(b));
            std::fprintf(f, "%.6e,%.6e,%.6e\n", g.cellCenter(0, i),
                         u(i, jc, kc, StateLayout::URHO),
                         u(i, jc, kc, StateLayout::UTEMP));
        }
    }
    std::fclose(f);
    std::printf("wrote out/wd_lineout.csv\n");
    return 0;
}
