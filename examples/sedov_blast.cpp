// Sedov-Taylor blast wave: the paper's Section IV-A benchmark problem as
// a science run. Evolves the blast to t = 0.08, writes a radial profile
// (sedov_profile.csv) and compares the measured shock radius with the
// self-similar solution R(t) = (E t^2 / (alpha rho0))^(1/5) at several
// times.
//
// Run:  ./sedov_blast [ncell]

#include "castro/sedov.hpp"

#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <map>
#include <vector>

using namespace exa;
using namespace exa::castro;

int main(int argc, char** argv) {
    const int ncell = argc > 1 ? std::atoi(argv[1]) : 32;

    auto net = makeIgnitionSimple();
    SedovParams p;
    p.ncell = ncell;
    p.max_grid_size = std::max(8, ncell / 2);
    auto c = makeSedov(p, net);

    std::printf("Sedov blast, %d^3 zones\n", ncell);
    std::printf("%10s %14s %14s %10s\n", "t", "R_measured", "R_similarity",
                "ratio");
    for (Real t_out : {0.02, 0.04, 0.06, 0.08}) {
        while (c->time() < t_out) {
            c->step(std::min(c->estimateDt(), t_out - c->time()));
        }
        const Real r_meas = measureShockRadius(*c, p.rho0);
        const Real r_sim = sedovShockRadius(c->time(), p.E, p.rho0);
        std::printf("%10.3f %14.4f %14.4f %10.3f\n", c->time(), r_meas, r_sim,
                    r_meas / r_sim);
    }

    // Radial density/pressure profile about the center.
    std::map<int, std::pair<Real, int>> bins; // bin -> (sum rho, count)
    const auto& s = c->state();
    const Geometry& g = c->geom();
    const Real dr = g.cellSize(0);
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto u = s.const_array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real x = g.cellCenter(0, i) - 0.5;
                    const Real y = g.cellCenter(1, j) - 0.5;
                    const Real z = g.cellCenter(2, k) - 0.5;
                    const Real r = std::sqrt(x * x + y * y + z * z);
                    auto& [sum, cnt] = bins[static_cast<int>(r / dr)];
                    sum += u(i, j, k, StateLayout::URHO);
                    cnt += 1;
                }
    }
    std::FILE* f = std::fopen("sedov_profile.csv", "w");
    std::fprintf(f, "r,rho\n");
    for (const auto& [bin, v] : bins) {
        std::fprintf(f, "%.6f,%.6f\n", (bin + 0.5) * dr, v.first / v.second);
    }
    std::fclose(f);
    std::printf("wrote sedov_profile.csv (radial density profile at t = %.3f)\n",
                c->time());
    std::printf("peak compression rho_max/rho0 = %.2f (strong-shock limit: "
                "(g+1)/(g-1) = 6)\n",
                c->maxDensity() / p.rho0);
    return 0;
}
