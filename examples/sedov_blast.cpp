// Sedov-Taylor blast wave: the paper's Section IV-A benchmark problem as
// a science run. Evolves the blast to t = 0.08, writes a radial profile
// (sedov_profile.csv) and compares the measured shock radius with the
// self-similar solution R(t) = (E t^2 / (alpha rho0))^(1/5) at several
// times.
//
// Run:  ./sedov_blast [key=value ...]    e.g.  ./sedov_blast ncell=48

#include "ensemble/scenarios.hpp"

#include <cstdio>
#include <cmath>
#include <map>
#include <string>
#include <vector>

using namespace exa;
using namespace exa::castro;
using namespace exa::ensemble;

int main(int argc, char** argv) {
    ScenarioConfig cfg = ScenarioConfig::fromArgs(argc, argv);
    if (!cfg.has("ncell")) cfg.set("ncell", "32");
    if (!cfg.has("max-grid-size")) {
        const int ncell = cfg.getInt("ncell", 32);
        cfg.set("max-grid-size", std::to_string(std::max(8, ncell / 2)));
    }
    if (!cfg.has("t-stop")) cfg.set("t-stop", "0.08");

    auto scenario = makeScenarioByName("sedov", cfg);
    scenario->init();
    auto& sedov = dynamic_cast<SedovScenario&>(*scenario);
    const SedovParams& p = sedov.params();
    Castro& c = sedov.driver();
    const int ncell = p.ncell;

    std::printf("Sedov blast, %d^3 zones\n", ncell);
    std::printf("%10s %14s %14s %10s\n", "t", "R_measured", "R_similarity",
                "ratio");
    Real next_report = 0.02;
    while (!scenario->finished()) {
        // Clamp the CFL dt so the run lands exactly on each report time
        // (the same min(estimateDt, target - t) a bespoke loop would use).
        scenario->advanceOnce(
            std::min(scenario->maxDt(), next_report - scenario->time()));
        if (scenario->time() >= next_report * (1.0 - 1e-12)) {
            const Real r_meas = measureShockRadius(c, p.rho0);
            const Real r_sim = sedovShockRadius(scenario->time(), p.E, p.rho0);
            std::printf("%10.3f %14.4f %14.4f %10.3f\n", scenario->time(),
                        r_meas, r_sim, r_meas / r_sim);
            next_report += 0.02;
        }
    }

    // Radial density/pressure profile about the center.
    std::map<int, std::pair<Real, int>> bins; // bin -> (sum rho, count)
    const auto& s = c.state();
    const Geometry& g = c.geom();
    const Real dr = g.cellSize(0);
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto u = s.const_array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real x = g.cellCenter(0, i) - 0.5;
                    const Real y = g.cellCenter(1, j) - 0.5;
                    const Real z = g.cellCenter(2, k) - 0.5;
                    const Real r = std::sqrt(x * x + y * y + z * z);
                    auto& [sum, cnt] = bins[static_cast<int>(r / dr)];
                    sum += u(i, j, k, StateLayout::URHO);
                    cnt += 1;
                }
    }
    std::FILE* f = std::fopen("sedov_profile.csv", "w");
    std::fprintf(f, "r,rho\n");
    for (const auto& [bin, v] : bins) {
        std::fprintf(f, "%.6f,%.6f\n", (bin + 0.5) * dr, v.first / v.second);
    }
    std::fclose(f);
    std::printf("wrote sedov_profile.csv (radial density profile at t = %.3f)\n",
                scenario->time());
    std::printf("peak compression rho_max/rho0 = %.2f (strong-shock limit: "
                "(g+1)/(g-1) = 6)\n",
                c.maxDensity() / p.rho0);
    return 0;
}
