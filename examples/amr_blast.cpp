// Adaptive mesh refinement in action (the machinery behind the paper's
// Section V science run): a blast wave on a coarse base grid with a
// dynamically regridded 2x refined level tracking the hot region, written
// out as an AMReX-style plotfile.
//
// Run:  ./amr_blast [key=value ...]    e.g.  ./amr_blast max-steps=50

#include "ensemble/scenarios.hpp"
#include "mesh/plotfile.hpp"

#include <cstdio>

using namespace exa;
using namespace exa::castro;
using namespace exa::ensemble;

int main(int argc, char** argv) {
    ScenarioConfig cfg = ScenarioConfig::fromArgs(argc, argv);
    if (!cfg.has("max-steps")) cfg.set("max-steps", "30");

    auto scenario = makeScenarioByName("amr-blast", cfg);
    scenario->init();
    auto& blast = dynamic_cast<AmrBlastScenario&>(*scenario);
    CastroAmr& amr = blast.driver();

    std::printf("AMR blast: base %d^3 + %d refined level(s); level-1 covers "
                "%.1f%% of the domain\n",
                blast.params().ncell, amr.finestLevel(),
                100.0 * amr.coveredFraction(1));

    const Real m0 = amr.totalMass();
    while (!scenario->finished()) {
        scenario->advanceOnce();
        if (scenario->stepCount() % 10 == 0) {
            std::printf("  step %3d t = %.4f  level-1 zones = %lld (%.1f%% of "
                        "domain)  mass drift = %.2e\n",
                        scenario->stepCount(), scenario->time(),
                        static_cast<long long>(amr.numZones(1)),
                        100.0 * amr.coveredFraction(1),
                        std::abs(amr.totalMass() / m0 - 1.0));
        }
    }

    std::vector<std::string> names = {"rho", "mx", "my", "mz", "rhoE", "T",
                                      "rho_c12", "rho_mg24"};
    const auto bytes = writePlotfile(
        "amr_blast_plt", {&amr.state(0), &amr.state(1)},
        {amr.geom(0), amr.geom(1)}, names, scenario->time(),
        scenario->stepCount());
    std::printf("wrote amr_blast_plt/ (%lld bytes across 2 levels)\n",
                static_cast<long long>(bytes));
    return 0;
}
