// Adaptive mesh refinement in action (the machinery behind the paper's
// Section V science run): a blast wave on a coarse base grid with a
// dynamically regridded 2x refined level tracking the hot region, written
// out as an AMReX-style plotfile.
//
// Run:  ./amr_blast [nsteps]

#include "castro/castro_amr.hpp"
#include "core/parallel_for.hpp"
#include "mesh/plotfile.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace exa;
using namespace exa::castro;

int main(int argc, char** argv) {
    const int nsteps = argc > 1 ? std::atoi(argv[1]) : 30;

    auto net = makeIgnitionSimple();
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = 1;
    info.ref_ratio = 2;
    info.max_grid_size = 16;
    info.blocking_factor = 4;
    info.nranks = 4;

    CastroOptions opt;
    opt.bc = DomainBC::allOutflow();
    opt.cfl = 0.3;
    opt.reconstruction = Reconstruction::PPM; // production Castro's scheme

    const Real r_init = 0.125;
    const Real e_in = 1.0 / ((4.0 / 3.0) * constants::pi * std::pow(r_init, 3));
    Castro::InitFn init = [=](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    CastroAmr::TagFn tag = [](int, const Geometry&, const MultiFab& s,
                              MultiFab& tags) {
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (u(i, j, k, StateLayout::UTEMP) > 1.0e-8) t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    CastroAmr amr(geom, info, net, eos, opt, init, tag);
    amr.init();
    std::printf("AMR blast: base 16^3 + %d refined level(s); level-1 covers "
                "%.1f%% of the domain\n",
                amr.finestLevel(), 100.0 * amr.coveredFraction(1));

    const Real m0 = amr.totalMass();
    for (int s = 0; s < nsteps; ++s) {
        amr.step(amr.estimateDt());
        if (amr.stepCount() % 10 == 0) {
            std::printf("  step %3d t = %.4f  level-1 zones = %lld (%.1f%% of "
                        "domain)  mass drift = %.2e\n",
                        amr.stepCount(), amr.time(),
                        static_cast<long long>(amr.numZones(1)),
                        100.0 * amr.coveredFraction(1),
                        std::abs(amr.totalMass() / m0 - 1.0));
        }
    }

    std::vector<std::string> names = {"rho", "mx", "my", "mz", "rhoE", "T",
                                      "rho_c12", "rho_mg24"};
    const auto bytes = writePlotfile(
        "amr_blast_plt", {&amr.state(0), &amr.state(1)},
        {amr.geom(0), amr.geom(1)}, names, amr.time(), amr.stepCount());
    std::printf("wrote amr_blast_plt/ (%lld bytes across 2 levels)\n",
                static_cast<long long>(bytes));
    return 0;
}
