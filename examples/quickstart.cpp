// Quickstart: the ExaStro API in one page.
//
//   1. describe a problem as key=value config (ScenarioConfig),
//   2. build it by name from the ScenarioRegistry ("sedov" here),
//   3. advance with the uniform Scenario interface, switching execution
//      backends the way the paper's single-source design intends: same
//      code, same answers, different hardware mapping.
//
// Run:  ./quickstart [key=value ...]     e.g.  ./quickstart ncell=48

#include "core/timer.hpp"
#include "ensemble/scenarios.hpp"
#include "perf/device_model.hpp"

#include <cstdio>

using namespace exa;
using namespace exa::ensemble;

int main(int argc, char** argv) {
    // A Sedov-Taylor blast on a 32^3 grid chopped into 16^3 boxes. Any
    // SedovParams field can be overridden from the command line.
    ScenarioConfig cfg = ScenarioConfig::fromArgs(argc, argv);
    if (!cfg.has("ncell")) cfg.set("ncell", "32");
    if (!cfg.has("max-grid-size")) cfg.set("max-grid-size", "16");
    if (!cfg.has("nranks")) cfg.set("nranks", "4"); // one rank per Summit GPU
    if (!cfg.has("max-steps")) cfg.set("max-steps", "10");

    auto scenario = makeScenarioByName("sedov", cfg);
    scenario->init();
    auto& sedov = dynamic_cast<SedovScenario&>(*scenario);
    auto& castro = sedov.driver();

    std::printf("quickstart: %zu boxes, %lld zones, %d simulated ranks\n",
                castro.state().size(),
                static_cast<long long>(scenario->zones()),
                sedov.params().nranks);

    // --- CPU run (serial backend) ---------------------------------------
    const Real mass0 = castro.totalMass();
    const Real energy0 = castro.totalEnergy();
    WallTimer timer;
    while (!scenario->finished()) {
        const Real dt = scenario->maxDt();
        scenario->advanceOnce(dt);
        if (scenario->stepCount() % 5 == 1) {
            std::printf("  step %2d  t = %.4e  dt = %.3e  max rho = %.3f\n",
                        scenario->stepCount(), scenario->time(), dt,
                        castro.maxDensity());
        }
    }
    const double cpu_sec = timer.seconds();
    std::printf("serial backend: %.2f ms/step, conservation drift: mass %.2e, "
                "energy %.2e\n",
                100.0 * cpu_sec,
                std::abs(castro.totalMass() / mass0 - 1.0),
                std::abs(castro.totalEnergy() / energy0 - 1.0));

    // --- Simulated-GPU run: identical arithmetic, modeled V100 clock -----
    auto scenario2 = makeScenarioByName("sedov", cfg);
    ScopedBackend gpu(Backend::SimGpu);
    DeviceModel device; // the V100 model
    device.attach();
    scenario2->init();
    while (!scenario2->finished()) scenario2->advanceOnce();
    device.detach();

    std::printf("simgpu backend: %lld kernel launches, modeled V100 time "
                "%.3f ms (%.1f zones/usec)\n",
                static_cast<long long>(device.numLaunches()),
                device.elapsedSeconds() * 1e3,
                device.numZones() / (device.elapsedSeconds() * 1e6));
    std::printf("bit-identical states: %s\n",
                scenario->stateCrc() == scenario2->stateCrc() ? "yes" : "NO");
    return 0;
}
