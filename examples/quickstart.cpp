// Quickstart: the ExaStro API in one page.
//
//   1. build a mesh (BoxArray + DistributionMapping + Geometry),
//   2. pick physics (network + EOS) and a problem setup,
//   3. advance with Castro-mini, switching execution backends the way the
//      paper's single-source design intends: same code, same answers,
//      different hardware mapping.
//
// Run:  ./quickstart

#include "castro/sedov.hpp"
#include "core/timer.hpp"
#include "perf/device_model.hpp"

#include <cstdio>

using namespace exa;
using namespace exa::castro;

int main() {
    // A Sedov-Taylor blast on a 32^3 grid chopped into 16^3 boxes.
    auto net = makeIgnitionSimple();
    SedovParams params;
    params.ncell = 32;
    params.max_grid_size = 16;
    params.nranks = 4; // simulated MPI ranks (one per GPU on Summit)
    auto castro = makeSedov(params, net);

    std::printf("quickstart: %zu boxes, %lld zones, %d simulated ranks\n",
                castro->state().size(),
                static_cast<long long>(castro->state().boxArray().numPts()),
                params.nranks);

    // --- CPU run (serial backend) ---------------------------------------
    const Real mass0 = castro->totalMass();
    const Real energy0 = castro->totalEnergy();
    WallTimer timer;
    for (int step = 0; step < 10; ++step) {
        const Real dt = castro->estimateDt();
        castro->step(dt);
        if (step % 5 == 0) {
            std::printf("  step %2d  t = %.4e  dt = %.3e  max rho = %.3f\n",
                        castro->stepCount(), castro->time(), dt,
                        castro->maxDensity());
        }
    }
    const double cpu_sec = timer.seconds();
    std::printf("serial backend: %.2f ms/step, conservation drift: mass %.2e, "
                "energy %.2e\n",
                100.0 * cpu_sec,
                std::abs(castro->totalMass() / mass0 - 1.0),
                std::abs(castro->totalEnergy() / energy0 - 1.0));

    // --- Simulated-GPU run: identical arithmetic, modeled V100 clock -----
    auto castro2 = makeSedov(params, net);
    ScopedBackend gpu(Backend::SimGpu);
    DeviceModel device; // the V100 model
    device.attach();
    for (int step = 0; step < 10; ++step) castro2->step(castro2->estimateDt());
    device.detach();

    std::printf("simgpu backend: %lld kernel launches, modeled V100 time "
                "%.3f ms (%.1f zones/usec)\n",
                static_cast<long long>(device.numLaunches()),
                device.elapsedSeconds() * 1e3,
                device.numZones() / (device.elapsedSeconds() * 1e6));
    std::printf("bit-identical states: %s\n",
                castro->totalEnergy() == castro2->totalEnergy() ? "yes" : "NO");
    return 0;
}
