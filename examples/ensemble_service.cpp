// The ensemble service: many independent simulations multiplexed over
// shared infrastructure in one process — the operating mode an exascale
// allocation actually runs (parameter surveys, validation sweeps, UQ
// campaigns), as opposed to one hero calculation.
//
// Builds a mixed fleet (Sedov blasts, reacting bubbles, AMR blasts, and a
// WD collision) from the ScenarioRegistry, schedules them over a
// work-stealing worker pool, and prints per-tenant accounting — exact
// arena bytes, comm traffic, p50/p99 step latency — plus aggregate
// throughput.
//
// Run:  ./ensemble_service [key=value ...]
//       n=8          total simulations (mixed round-robin)
//       workers=0    worker threads (0 = auto)
//       steps=6      steps per simulation

#include "ensemble/runner.hpp"
#include "ensemble/scenarios.hpp"

#include <cstdio>
#include <string>

using namespace exa;
using namespace exa::ensemble;

int main(int argc, char** argv) {
    ScenarioConfig args = ScenarioConfig::fromArgs(argc, argv);
    const int n = args.getInt("n", 8);
    const int workers = args.getInt("workers", 0);
    const int steps = args.getInt("steps", 6);
    args.requireAllConsumed("ensemble_service");

    CommLedger ledger;
    EnsembleOptions opt;
    opt.workers = workers;
    opt.ledger = &ledger;
    EnsembleRunner runner(opt);

    // A mixed fleet: cycle through the registered scenario kinds, varying
    // a physics knob per instance the way a parameter survey would.
    const char* kinds[] = {"sedov", "bubble", "amr-blast", "wd-collision"};
    for (int i = 0; i < n; ++i) {
        const std::string kind = kinds[i % 4];
        ScenarioConfig cfg;
        cfg.set("max-steps", std::to_string(steps));
        // Multi-box, multi-(emulated-)rank decompositions, so the shared
        // ledger has real halo traffic to bucket per tenant.
        cfg.set("nranks", "4");
        if (kind == "sedov") {
            cfg.set("ncell", "24");
            cfg.set("max-grid-size", "12");
            cfg.set("E", std::to_string(1.0 + 0.25 * (i / 4)));
        } else if (kind == "bubble") {
            cfg.set("ncell", "16");
            cfg.set("max-grid-size", "8");
            cfg.set("T-bubble", std::to_string(8.5e8 + 5.0e7 * (i / 4)));
        } else if (kind == "amr-blast") {
            cfg.set("ncell", "16");
            cfg.set("max-grid-size", "8");
        } else {
            cfg.set("ncell", "16");
            cfg.set("max-grid-size", "8");
            cfg.set("network", "iso7");
        }
        runner.add(kind, cfg);
    }

    std::printf("ensemble service: %d tenants over the %s backend\n",
                runner.numTenants(), backendName(ExecConfig::backend()));
    EnsembleReport report = runner.run();
    std::printf("%s", report.table().c_str());

    // Per-tenant shared-infrastructure accounting.
    std::printf("\nper-tenant traffic (shared ledger):\n");
    for (const auto& t : report.tenants) {
        std::printf("  %-18s %10lld bytes in %5lld messages\n",
                    t.label.c_str(), static_cast<long long>(t.comm_bytes),
                    static_cast<long long>(t.comm_messages));
    }
    std::printf("\n%s\n", report.tenants.front().summary.c_str());
    return 0;
}
