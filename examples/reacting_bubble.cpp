// The MAESTROeX reacting-bubble problem (paper Section IV-B): a hot
// bubble in a plane-parallel white-dwarf atmosphere ignites carbon
// burning and rises buoyantly. Demonstrates the low Mach number solver:
// note the timestep — orders of magnitude beyond the compressible CFL.
//
// Run:  ./reacting_bubble [ncell] [nsteps]

#include "maestro/maestro.hpp"

#include <cstdio>
#include <cstdlib>

using namespace exa;
using namespace exa::maestro;

int main(int argc, char** argv) {
    const int ncell = argc > 1 ? std::atoi(argv[1]) : 16;
    const int nsteps = argc > 2 ? std::atoi(argv[2]) : 15;

    auto net = makeIgnitionSimple(); // the paper's N = 2 reacting nuclei
    BubbleParams p;
    p.ncell = ncell;
    p.max_grid_size = std::max(8, ncell / 2);
    p.T_bubble = 9.0e8;
    auto m = makeReactingBubble(p, net);

    const Real dx = m->geom().cellSize(0);
    std::printf("reacting bubble: %d^3, dx = %.3g cm, base rho = %.3g g/cc\n",
                ncell, dx, p.rho_base);
    std::printf("compressible CFL dt would be ~%.2e s; low Mach dt: %.2e s\n",
                dx / 1.0e9, m->estimateDt());

    std::printf("%6s %12s %14s %14s %12s %10s\n", "step", "t [s]", "maxT [K]",
                "height [cm]", "max|divU|", "vcycles");
    for (int s = 0; s < nsteps; ++s) {
        const Real dt = std::min(m->estimateDt(), 5.0e-4);
        auto burn = m->step(dt);
        (void)burn;
        if (s % 3 == 0 || s == nsteps - 1) {
            std::printf("%6d %12.4e %14.5e %14.5e %12.3e %10d\n", m->stepCount(),
                        m->time(), m->maxTemperature(), m->bubbleHeight(),
                        m->maxAbsDivergence(), m->lastProjectionVcycles());
        }
    }

    // Vertical temperature-perturbation profile (bubble position).
    std::FILE* f = std::fopen("bubble_profile.csv", "w");
    std::fprintf(f, "z,dT_max\n");
    const auto& st = m->state();
    for (int k = 0; k < ncell; ++k) {
        Real dTmax = 0.0;
        for (std::size_t b = 0; b < st.size(); ++b) {
            auto q = st.const_array(static_cast<int>(b));
            const Box& vb = st.box(static_cast<int>(b));
            if (k < vb.smallEnd(2) || k > vb.bigEnd(2)) continue;
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    dTmax = std::max(dTmax,
                                     q(i, j, k, MaestroLayout::QT) - m->base().T0(k));
                }
        }
        std::fprintf(f, "%.6e,%.6e\n", m->geom().cellCenter(2, k), dTmax);
    }
    std::fclose(f);
    std::printf("wrote bubble_profile.csv\n");
    return 0;
}
