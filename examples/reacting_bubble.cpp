// The MAESTROeX reacting-bubble problem (paper Section IV-B): a hot
// bubble in a plane-parallel white-dwarf atmosphere ignites carbon
// burning and rises buoyantly. Demonstrates the low Mach number solver:
// note the timestep — orders of magnitude beyond the compressible CFL.
//
// Run:  ./reacting_bubble [key=value ...]
//       e.g.  ./reacting_bubble ncell=24 max-steps=20

#include "ensemble/scenarios.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace exa;
using namespace exa::ensemble;

int main(int argc, char** argv) {
    ScenarioConfig cfg = ScenarioConfig::fromArgs(argc, argv);
    if (!cfg.has("ncell")) cfg.set("ncell", "16");
    if (!cfg.has("max-grid-size")) {
        const int ncell = cfg.getInt("ncell", 16);
        cfg.set("max-grid-size", std::to_string(std::max(8, ncell / 2)));
    }
    if (!cfg.has("max-steps")) cfg.set("max-steps", "15");
    if (!cfg.has("max-dt")) cfg.set("max-dt", "5.0e-4");

    auto scenario = makeScenarioByName("bubble", cfg);
    scenario->init();
    auto& bubble = dynamic_cast<BubbleScenario&>(*scenario);
    maestro::Maestro& m = bubble.driver();
    const int ncell = bubble.params().ncell;
    const int nsteps = scenario->limits().max_steps;

    const Real dx = m.geom().cellSize(0);
    std::printf("reacting bubble: %d^3, dx = %.3g cm, base rho = %.3g g/cc\n",
                ncell, dx, bubble.params().rho_base);
    std::printf("compressible CFL dt would be ~%.2e s; low Mach dt: %.2e s\n",
                dx / 1.0e9, m.estimateDt());

    std::printf("%6s %12s %14s %14s %12s %10s\n", "step", "t [s]", "maxT [K]",
                "height [cm]", "max|divU|", "vcycles");
    while (!scenario->finished()) {
        scenario->advanceOnce();
        const int s = scenario->stepCount();
        if (s % 3 == 1 || s == nsteps) {
            std::printf("%6d %12.4e %14.5e %14.5e %12.3e %10d\n", s,
                        scenario->time(), m.maxTemperature(), m.bubbleHeight(),
                        m.maxAbsDivergence(), m.lastProjectionVcycles());
        }
    }

    // Vertical temperature-perturbation profile (bubble position).
    std::FILE* f = std::fopen("bubble_profile.csv", "w");
    std::fprintf(f, "z,dT_max\n");
    const auto& st = m.state();
    for (int k = 0; k < ncell; ++k) {
        Real dTmax = 0.0;
        for (std::size_t b = 0; b < st.size(); ++b) {
            auto q = st.const_array(static_cast<int>(b));
            const Box& vb = st.box(static_cast<int>(b));
            if (k < vb.smallEnd(2) || k > vb.bigEnd(2)) continue;
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    dTmax = std::max(dTmax,
                                     q(i, j, k, maestro::MaestroLayout::QT) -
                                         m.base().T0(k));
                }
        }
        std::fprintf(f, "%.6e,%.6e\n", m.geom().cellCenter(2, k), dTmax);
    }
    std::fclose(f);
    std::printf("wrote bubble_profile.csv\n");
    return 0;
}
