#pragma once

#include "core/executor.hpp"
#include "microphysics/bdf.hpp"
#include "microphysics/eos.hpp"
#include "microphysics/network.hpp"

#include <vector>

namespace exa {

// The coupled burn ODE for one zone at constant density:
//   dY_i/dt = network RHS,   dT/dt = edot / cv(rho, T, X)
// with cv re-evaluated from the EOS at every RHS call (self-heating).
// This is the system VODE integrates in the production codes.
class BurnOde final : public OdeSystem {
public:
    BurnOde(const ReactionNetwork& net, const Eos& eos, Real rho)
        : m_net(net), m_eos(eos), m_rho(rho) {}

    int size() const override { return m_net.nspec() + 1; }
    void rhs(Real t, const std::vector<Real>& y, std::vector<Real>& f) override;
    void jacobian(Real t, const std::vector<Real>& y, DenseMatrix& jac) override;
    std::vector<char> sparsity() const override { return m_net.sparsity(); }

    Real cvAt(Real T, const Real* Y) const;

private:
    const ReactionNetwork& m_net;
    const Eos& m_eos;
    Real m_rho;
};

struct BurnResult {
    Real T = 0.0;              // final temperature
    std::vector<Real> X;       // final mass fractions
    Real e_nuc = 0.0;          // specific nuclear energy released [erg/g]
    OdeStats stats;
    bool success = false;
};

// Integrate the burn for one zone over dt. X has net.nspec() entries.
BurnResult burnZone(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
                    const Real* X, Real dt, const OdeOptions& opt = OdeOptions{});

// Characteristic nuclear timescales of a state, used by the WD-collision
// diagnostics (the paper's burning-vs-heat-transfer stability criterion
// after Kushnir et al. / Katz & Zingale).
Real edotOf(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
            const Real* X);
Real burningTimescale(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
                      const Real* X);

// Per-grid burn statistics: the cost nonuniformity across zones that
// motivates the paper's CPU/GPU hybrid strategy (Section VI).
struct BurnGridStats {
    std::int64_t zones = 0;
    std::int64_t total_steps = 0;
    std::int64_t max_steps = 0;
    std::int64_t failures = 0;
    double meanSteps() const {
        return zones > 0 ? static_cast<double>(total_steps) / zones : 0.0;
    }
    // Warp-level work imbalance proxy: the hottest zone stalls its warp.
    double imbalance() const {
        return total_steps > 0 ? static_cast<double>(max_steps) / meanSteps() : 1.0;
    }
};

// The KernelInfo of a burn launch for an N-species network: per-thread
// register demand grows with the (N+1)^2 Jacobian (the paper's Volta
// 255-register discussion — aprox13 spills, ignition_simple does not).
KernelInfo burnKernelInfo(int nspec, double steps_per_zone, double imbalance);

} // namespace exa
