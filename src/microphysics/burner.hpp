#pragma once

#include "core/executor.hpp"
#include "microphysics/bdf.hpp"
#include "microphysics/eos.hpp"
#include "microphysics/network.hpp"

#include <string>
#include <vector>

namespace exa {

// The coupled burn ODE for one zone at constant density:
//   dY_i/dt = network RHS,   dT/dt = edot / cv(rho, T, X)
// with cv re-evaluated from the EOS at every RHS call (self-heating).
// This is the system VODE integrates in the production codes.
class BurnOde final : public OdeSystem {
public:
    BurnOde(const ReactionNetwork& net, const Eos& eos, Real rho)
        : m_net(net), m_eos(eos), m_rho(rho), m_x(net.nspec()) {}

    int size() const override { return m_net.nspec() + 1; }
    void rhs(Real t, const std::vector<Real>& y, std::vector<Real>& f) override;
    void jacobian(Real t, const std::vector<Real>& y, DenseMatrix& jac) override;
    std::vector<char> sparsity() const override { return m_net.sparsity(); }

    Real cvAt(Real T, const Real* Y) const;

    // Re-point the ODE at another zone's density, so one BurnOde serves a
    // whole gather of zones (network and EOS are per-grid, rho is per-zone).
    void setRho(Real rho) { m_rho = rho; }
    const ReactionNetwork& network() const { return m_net; }

private:
    const ReactionNetwork& m_net;
    const Eos& m_eos;
    Real m_rho;
    // cvAt mass-fraction scratch; a member so the per-RHS-call EOS
    // evaluation stops allocating (cvAt runs at every Newton iteration of
    // every zone).
    mutable std::vector<Real> m_x;
};

struct BurnResult {
    Real T = 0.0;              // final temperature
    std::vector<Real> X;       // final mass fractions
    Real e_nuc = 0.0;          // specific nuclear energy released [erg/g]
    OdeStats stats;
    bool success = false;
};

// Integrate the burn for one zone over dt. X has net.nspec() entries.
BurnResult burnZone(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
                    const Real* X, Real dt, const OdeOptions& opt = OdeOptions{});

// Reusable scratch for repeated burns: the ODE state vectors plus the BDF
// integrator workspace (Jacobian, LU, Newton scratch). Hoisting this out
// of the zone loops removes every per-zone heap allocation from the burn
// path — the serial-path churn fix, and the storage substrate of the
// batched engine. Bound to one network shape, like BdfWorkspace.
struct BurnWorkspace {
    std::vector<Real> y, y0, y1;
    BdfWorkspace bdf;
};

// Workspace-reusing burn: identical arithmetic to burnZone (bit-identical
// results), with all scratch drawn from `ode`/`ws` and the result written
// into `out` (whose X buffer is reused). `ode` carries the network and
// EOS; its density is re-pointed at `rho`.
void burnZoneInto(BurnOde& ode, Real rho, Real T, const Real* X, Real dt,
                  const OdeOptions& opt, BurnWorkspace& ws, BurnResult& out);

// Characteristic nuclear timescales of a state, used by the WD-collision
// diagnostics (the paper's burning-vs-heat-transfer stability criterion
// after Kushnir et al. / Katz & Zingale).
Real edotOf(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
            const Real* X);
Real burningTimescale(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
                      const Real* X);

// Where (and under what conditions) the integrator first gave up, so
// retry diagnostics and logs can say *where* a burn failed, not just how
// often. Carried inside BurnGridStats and filled by the grid drivers.
struct BurnFailureSite {
    bool valid = false;
    int i = 0, j = 0, k = 0; // zone index in its level's index space
    int fab = -1;            // fab within the MultiFab
    int level = -1;          // AMR level (-1 for single-level drivers)
    Real rho = 0.0;          // pre-burn thermodynamic state of the zone
    Real T = 0.0;
};

// Per-grid burn statistics: the cost nonuniformity across zones that
// motivates the paper's CPU/GPU hybrid strategy (Section VI).
struct BurnGridStats {
    std::int64_t zones = 0;
    std::int64_t total_steps = 0;
    std::int64_t max_steps = 0;
    std::int64_t failures = 0;
    // First failing zone seen (first-wins across merges, so it names the
    // earliest failure of the step, coarsest level first).
    BurnFailureSite first_failure;
    double meanSteps() const {
        return zones > 0 ? static_cast<double>(total_steps) / zones : 0.0;
    }
    // Warp-level work imbalance proxy: the hottest zone stalls its warp.
    double imbalance() const {
        return total_steps > 0 ? static_cast<double>(max_steps) / meanSteps() : 1.0;
    }
    void merge(const BurnGridStats& o) {
        zones += o.zones;
        total_steps += o.total_steps;
        max_steps = max_steps > o.max_steps ? max_steps : o.max_steps;
        failures += o.failures;
        if (!first_failure.valid) first_failure = o.first_failure;
    }
    // "zone (i,j,k) of fab F [level L]: rho=..., T=..." (empty when none).
    std::string describeFailure() const;
};

// The KernelInfo of a burn launch for an N-species network: per-thread
// register demand grows with the (N+1)^2 Jacobian (the paper's Volta
// 255-register discussion — aprox13 spills, ignition_simple does not).
KernelInfo burnKernelInfo(int nspec, double steps_per_zone, double imbalance);

} // namespace exa
