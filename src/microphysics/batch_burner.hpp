#pragma once

#include "microphysics/burner.hpp"

#include <cstdint>
#include <vector>

namespace exa {

// A flat SoA workspace of gathered reacting zones — the device-resident
// burn buffer. Zones come from anywhere (the grid driver gathers across
// fabs); the batch knows nothing of boxes. Layout is struct-of-arrays
// with species-major mass fractions (X[n * nzones + z]), the coalesced
// layout a GPU batch kernel reads.
struct BurnBatch {
    int nspec = 0;
    std::int64_t nzones = 0;

    // Inputs (size nzones; X size nspec * nzones).
    std::vector<Real> rho;
    std::vector<Real> T;
    std::vector<Real> X;

    // Outputs (filled by BatchBurner::run).
    std::vector<Real> T_out;
    std::vector<Real> X_out;   // species-major, like X
    std::vector<Real> e_nuc;
    std::vector<std::int64_t> steps;
    std::vector<char> success;

    void resize(int ns, std::int64_t nz) {
        nspec = ns;
        nzones = nz;
        rho.resize(nz);
        T.resize(nz);
        X.resize(static_cast<std::size_t>(ns) * nz);
        T_out.resize(nz);
        X_out.resize(static_cast<std::size_t>(ns) * nz);
        e_nuc.resize(nz);
        steps.resize(nz);
        success.resize(nz);
    }

    Real* Xin(int n) { return X.data() + static_cast<std::size_t>(n) * nzones; }
    const Real* Xin(int n) const {
        return X.data() + static_cast<std::size_t>(n) * nzones;
    }
    Real* Xout(int n) { return X_out.data() + static_cast<std::size_t>(n) * nzones; }
    const Real* Xout(int n) const {
        return X_out.data() + static_cast<std::size_t>(n) * nzones;
    }
};

struct BatchBurnOptions {
    // Target zones per device batch (one fused launch each). The engine
    // rounds the gathered count to a whole number of batches of roughly
    // this size, so no sliver batch trails. Small batches pay the device
    // model's launch-latency ramp; large batches mix stiffness classes.
    // 2048 is the measured sweet spot for WD-collision-like distributions
    // (see EXPERIMENTS.md E14).
    int batch_size = 2048;
    // Sort gathered zones by the stiffness estimate before batching, so
    // batch-mates converge in similar BDF iteration counts and no cheap
    // zone is priced at an igniting neighbor's warp-stall tail.
    bool sort_by_stiffness = true;
    // Route the stiff tail (estimate > tail_factor x median, and above
    // tail_min_stiffness absolutely) to the host path instead of any
    // device batch — the paper's Section VI hybrid split.
    bool hybrid_cpu_tail = false;
    double tail_factor = 32.0;
    // Absolute floor for the tail cut, in burning e-folds per dt. Past
    // ~1 e-fold a zone is running away within the step and its
    // integrated cost explodes nonlinearly, so ~2 marks the genuinely
    // extreme zones; the floor also keeps a uniformly quiescent grid
    // (tiny median) from tailing anything.
    double tail_min_stiffness = 2.0;
};

// What the last run() did, for benches, tests, and the E14 ablation:
// how the gather split between device batches and the host tail.
struct BatchBurnReport {
    std::int64_t gathered = 0;
    std::int64_t device_zones = 0;
    std::int64_t tail_zones = 0;
    std::int64_t batches = 0;
    std::int64_t device_steps = 0;
    std::int64_t tail_steps = 0;
    double tail_seconds = 0.0;        // host wall time integrating the tail
    double stiffness_median = 0.0;    // of the gathered zones (dt / t_burn)
    double stiffness_max = 0.0;
    double stiffness_tail_cut = 0.0;  // threshold actually applied (0 = none)
};

// The batched burn engine: stiffness-estimate, sort, split, and integrate
// a BurnBatch. Each device batch is one fused launch on the simulated
// device (named kernel, per-batch stream, batch-local work imbalance)
// whose Newton systems factor through one contiguous BatchedDenseLU slab;
// the stiff tail runs the per-zone host path. Per-zone arithmetic is
// identical to burnZone on every backend — processing order only changes
// *when* a zone is integrated, never its result — so batched output is
// bit-identical to the serial path.
class BatchBurner {
public:
    BatchBurner(const ReactionNetwork& net, const Eos& eos,
                const BatchBurnOptions& opt = BatchBurnOptions{});

    // Burn every zone of the batch over dt, filling the output arrays.
    // Deterministic (stable stiffness sort, serial batch loop), including
    // the order fault-injection sites fire in.
    void run(BurnBatch& b, Real dt, const OdeOptions& ode = OdeOptions{});

    const BatchBurnReport& report() const { return m_report; }

private:
    const ReactionNetwork& m_net;
    const Eos& m_eos;
    BatchBurnOptions m_opt;
    BatchBurnReport m_report;

    // Reused across run() calls: per-zone stiffness estimates, the sorted
    // processing order, and the burn scratch.
    std::vector<double> m_stiffness;
    std::vector<std::int64_t> m_order;
    BurnOde m_ode;
    BurnWorkspace m_ws;
    BurnResult m_result;
    BatchedDenseLU m_batched_lu;
};

} // namespace exa
