#include "microphysics/eos.hpp"

#include <algorithm>
#include <cmath>

namespace exa {

namespace {
using namespace constants;

// Chandrasekhar constants: P_deg = A f(x), U_deg = A g(x), with
// rho*ye = C_ne * x^3.
constexpr Real A_ch = 6.002e22;   // pi me^4 c^5 / (3 h^3) [dyn/cm^2]
constexpr Real C_ne = 9.739e5;    // (8pi/3)(me c/h)^3 m_u [g/cm^3]

Real f_ch(Real x) {
    const Real x2 = x * x;
    return x * (2.0 * x2 - 3.0) * std::sqrt(x2 + 1.0) + 3.0 * std::asinh(x);
}

Real g_ch(Real x) {
    const Real x2 = x * x;
    return 8.0 * x * x2 * (std::sqrt(1.0 + x2) - 1.0) - f_ch(x);
}

// df/dx = 8 x^4 / sqrt(1+x^2)
Real dfdx_ch(Real x) {
    const Real x2 = x * x;
    return 8.0 * x2 * x2 / std::sqrt(1.0 + x2);
}

Real ionGasConst(Real abar) { return k_B / (abar * m_u); } // erg/g/K

void finishState(EosState& s) {
    // Gamma1 from the standard thermodynamic identity
    //   Gamma1 = chi_rho + chi_T^2 * P / (rho T cv)
    const Real chi_rho = s.dpdr * s.rho / s.p;
    const Real chi_T = s.dpdT * s.T / s.p;
    s.gamma1 = chi_rho + chi_T * chi_T * s.p / (s.rho * s.T * s.cv);
    s.cs = std::sqrt(std::max(s.gamma1 * s.p / s.rho, Real(0)));
}

} // namespace

// --- GammaLawEos ----------------------------------------------------------

void GammaLawEos::rhoT(EosState& s) const {
    const Real cv = ionGasConst(s.abar) / (gamma - 1.0);
    s.cv = cv;
    s.e = cv * s.T;
    s.p = (gamma - 1.0) * s.rho * s.e;
    s.dpdr = (gamma - 1.0) * s.e;
    s.dpdT = (gamma - 1.0) * s.rho * cv;
    finishState(s);
}

void GammaLawEos::rhoE(EosState& s) const {
    const Real cv = ionGasConst(s.abar) / (gamma - 1.0);
    s.T = std::max(s.e / cv, Real(1.0e-30));
    rhoT(s);
    // restore the exact input e (rhoT recomputes from T)
}

void GammaLawEos::rhoP(EosState& s) const {
    s.e = s.p / ((gamma - 1.0) * s.rho);
    rhoE(s);
}

// --- HelmLiteEos ----------------------------------------------------------

Real HelmLiteEos::xOf(Real rho, Real ye) {
    return std::cbrt(rho * ye / C_ne);
}

Real HelmLiteEos::pDegenerate(Real rho, Real ye) { return A_ch * f_ch(xOf(rho, ye)); }

Real HelmLiteEos::eDegenerate(Real rho, Real ye) {
    return A_ch * g_ch(xOf(rho, ye)) / rho;
}

Real HelmLiteEos::dpDegDrho(Real rho, Real ye) {
    const Real x = xOf(rho, ye);
    // dP/drho = A f'(x) * dx/drho, dx/drho = x / (3 rho).
    return A_ch * dfdx_ch(x) * x / (3.0 * rho);
}

void HelmLiteEos::rhoT(EosState& s) const {
    const Real Rion = ionGasConst(s.abar);
    const Real p_deg = pDegenerate(s.rho, s.ye);
    const Real e_deg = eDegenerate(s.rho, s.ye);
    const Real p_ion = s.rho * Rion * s.T;
    const Real p_rad = a_rad * s.T * s.T * s.T * s.T / 3.0;
    s.p = p_deg + p_ion + p_rad;
    s.e = e_deg + 1.5 * Rion * s.T + a_rad * std::pow(s.T, 4) / s.rho;
    s.cv = 1.5 * Rion + 4.0 * a_rad * s.T * s.T * s.T / s.rho;
    s.dpdT = s.rho * Rion + (4.0 / 3.0) * a_rad * s.T * s.T * s.T;
    // (dp/drho)_T: degenerate part analytic; ion part Rion*T; radiation 0;
    // e_deg depends on rho so its p-contribution is already in p_deg.
    s.dpdr = dpDegDrho(s.rho, s.ye) + Rion * s.T;
    finishState(s);
}

void HelmLiteEos::rhoE(EosState& s) const {
    // Invert e(T) = e_deg(rho) + 1.5 R T + a T^4 / rho by Newton.
    const Real Rion = ionGasConst(s.abar);
    const Real e_target = s.e;
    const Real e_th = std::max(e_target - eDegenerate(s.rho, s.ye),
                               1.0e-10 * std::abs(e_target) + 1.0e-10);
    Real T = std::max(s.T, e_th / (1.5 * Rion)); // ion-dominated guess
    for (int it = 0; it < 60; ++it) {
        const Real e_of_T = 1.5 * Rion * T + a_rad * std::pow(T, 4) / s.rho;
        const Real cv = 1.5 * Rion + 4.0 * a_rad * T * T * T / s.rho;
        const Real dT = (e_th - e_of_T) / cv;
        T += dT;
        T = std::max(T, Real(1.0e2));
        if (std::abs(dT) < 1.0e-12 * T) break;
    }
    s.T = T;
    rhoT(s);
    s.e = e_target; // keep the caller's energy exactly
}

void HelmLiteEos::rhoP(EosState& s) const {
    // Invert p(T) at fixed rho by Newton.
    const Real Rion = ionGasConst(s.abar);
    const Real p_target = s.p;
    const Real p_th = p_target - pDegenerate(s.rho, s.ye);
    Real T = std::max({s.T, p_th / (s.rho * Rion), Real(1.0e4)});
    if (p_th <= 0.0) {
        // Fully degenerate: temperature is (nearly) undetermined by p;
        // return a cold state.
        s.T = 1.0e4;
        rhoT(s);
        return;
    }
    for (int it = 0; it < 60; ++it) {
        const Real p_of_T = s.rho * Rion * T + a_rad * std::pow(T, 4) / 3.0;
        const Real dpdT = s.rho * Rion + (4.0 / 3.0) * a_rad * T * T * T;
        const Real dT = (p_th - p_of_T) / dpdT;
        T += dT;
        T = std::max(T, Real(1.0e2));
        if (std::abs(dT) < 1.0e-12 * T) break;
    }
    s.T = T;
    rhoT(s);
}

} // namespace exa

namespace exa {

Real rhoFromPT(const Eos& eos, Real p_target, Real T, Real abar, Real ye,
               Real rho_guess) {
    Real rho = rho_guess;
    for (int it = 0; it < 80; ++it) {
        EosState s;
        s.rho = rho;
        s.T = T;
        s.abar = abar;
        s.ye = ye;
        eos.rhoT(s);
        Real drho = (p_target - s.p) / std::max(s.dpdr, Real(1.0e-30));
        drho = std::clamp(drho, -0.5 * rho, 0.5 * rho);
        rho += drho;
        if (std::abs(drho) < 1.0e-13 * rho) break;
    }
    return rho;
}

} // namespace exa
