#include "microphysics/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace exa {

namespace {
// erg per gram per (mol/g) of reactions with Q in MeV.
constexpr Real erg_per_MeV_mol = constants::MeV_to_erg * constants::N_A;
// Factorials for symmetry factors of identical reactants.
constexpr Real factorial[4] = {1.0, 1.0, 2.0, 6.0};
// Weak-screening validity cap on the enhancement exponent.
constexpr Real screen_cap = 2.0;
} // namespace

Real RateFit::eval(Real T9, Real& dln_dT9) const {
    T9 = std::max(T9, Real(1.0e-4));
    const Real cbrtT9 = std::cbrt(T9);
    const Real lnr = eta * std::log(T9) - tau / cbrtT9 - invT / T9 - lin * T9;
    dln_dT9 = eta / T9 + tau / (3.0 * cbrtT9 * T9) + invT / (T9 * T9) - lin;
    return c0 * std::exp(lnr);
}

ReactionNetwork::ReactionNetwork(std::string name, std::vector<Species> species,
                                 std::vector<Reaction> reactions)
    : m_name(std::move(name)),
      m_species(std::move(species)),
      m_reactions(std::move(reactions)) {
    // Q values follow from the mass excesses of the *stoichiometric*
    // lists, so edot and the abundance changes are exactly consistent.
    for (auto& rx : m_reactions) {
        Real q = 0.0;
        for (const auto& [sp, cnt] : rx.stoichIn()) q += cnt * m_species[sp].excess_MeV;
        for (const auto& [sp, cnt] : rx.stoichOut()) q -= cnt * m_species[sp].excess_MeV;
        rx.Q_MeV = q;
    }
}

int ReactionNetwork::speciesIndex(const std::string& nm) const {
    for (int i = 0; i < nspec(); ++i) {
        if (m_species[i].name == nm) return i;
    }
    return -1;
}

Real ReactionNetwork::abar(const Real* X) const {
    Real inv = 0.0;
    for (int i = 0; i < nspec(); ++i) inv += X[i] / m_species[i].A;
    return 1.0 / std::max(inv, Real(1.0e-30));
}

Real ReactionNetwork::zbar(const Real* X) const {
    Real zy = 0.0;
    for (int i = 0; i < nspec(); ++i) zy += X[i] * m_species[i].Z / m_species[i].A;
    return zy * abar(X);
}

void ReactionNetwork::xToY(const Real* X, Real* Y) const {
    for (int i = 0; i < nspec(); ++i) Y[i] = X[i] / m_species[i].A;
}

void ReactionNetwork::yToX(const Real* Y, Real* X) const {
    for (int i = 0; i < nspec(); ++i) X[i] = Y[i] * m_species[i].A;
}

Real ReactionNetwork::energyFromAbundanceChange(const Real* Y0, const Real* Y1) const {
    Real de = 0.0;
    for (int i = 0; i < nspec(); ++i) {
        de -= (Y1[i] - Y0[i]) * m_species[i].excess_MeV;
    }
    return de * erg_per_MeV_mol;
}

Real ReactionNetwork::screeningFactor(const Reaction& r, Real rho, Real T,
                                      const Real* Y, Real* dH_dT, Real* dH_dzeta,
                                      Real* zeta_out) const {
    if (dH_dT != nullptr) *dH_dT = 0.0;
    if (dH_dzeta != nullptr) *dH_dzeta = 0.0;
    if (zeta_out != nullptr) *zeta_out = 0.0;
    if (!screening_enabled || r.z1 <= 0.0 || r.z2 <= 0.0) return 1.0;
    // Graboske et al. (1973) weak screening: H = 0.188 Z1 Z2
    // sqrt(zeta rho) T6^{-3/2}, zeta = sum (Z_i^2 + Z_i) Y_i.
    Real zeta = 0.0;
    for (int i = 0; i < nspec(); ++i) {
        zeta += (m_species[i].Z * m_species[i].Z + m_species[i].Z) *
                std::max(Y[i], Real(0));
    }
    const Real T6 = T / 1.0e6;
    const Real H = 0.188 * r.z1 * r.z2 * std::sqrt(std::max(zeta, Real(0)) * rho) /
                   std::pow(T6, 1.5);
    if (H >= screen_cap) return std::exp(screen_cap); // saturated: flat
    if (dH_dT != nullptr) *dH_dT = -1.5 * H / T;
    if (dH_dzeta != nullptr && zeta > 0.0) *dH_dzeta = 0.5 * H / zeta;
    if (zeta_out != nullptr) *zeta_out = zeta;
    return std::exp(H);
}

void ReactionNetwork::rates(Real rho, Real T, const Real* Y, Real* R,
                            Real* dlnRdT) const {
    const Real T9 = T / 1.0e9;
    for (int r = 0; r < numReactions(); ++r) {
        const Reaction& rx = m_reactions[r];
        Real dln_dT9 = 0.0;
        Real dH_dT = 0.0;
        const Real lam =
            rx.fit.eval(T9, dln_dT9) * screeningFactor(rx, rho, T, Y, &dH_dT);
        // Molar rate per gram: lambda * rho^(n_tot-1) * prod Y^n / sym.
        int ntot = 0;
        Real yprod = 1.0;
        Real sym = 1.0;
        for (const auto& [sp, cnt] : rx.reactants) {
            ntot += cnt;
            for (int c = 0; c < cnt; ++c) yprod *= std::max(Y[sp], Real(0));
            sym *= factorial[cnt];
        }
        R[r] = lam * std::pow(rho, ntot - 1) * yprod / sym;
        if (dlnRdT != nullptr) dlnRdT[r] = dln_dT9 / 1.0e9 + dH_dT;
    }
}

void ReactionNetwork::ydot(Real rho, Real T, const Real* Y, Real* dYdt,
                           Real& edot) const {
    std::vector<Real> R(numReactions());
    rates(rho, T, Y, R.data(), nullptr);
    std::fill(dYdt, dYdt + nspec(), 0.0);
    edot = 0.0;
    for (int r = 0; r < numReactions(); ++r) {
        const Reaction& rx = m_reactions[r];
        for (const auto& [sp, cnt] : rx.stoichIn()) dYdt[sp] -= cnt * R[r];
        for (const auto& [sp, cnt] : rx.stoichOut()) dYdt[sp] += cnt * R[r];
        edot += R[r] * rx.Q_MeV * erg_per_MeV_mol;
    }
}

void ReactionNetwork::jacobian(Real rho, Real T, const Real* Y, Real cv,
                               DenseMatrix& J) const {
    const int n = nspec();
    assert(J.size() == n + 1);
    J.setZero();
    std::vector<Real> R(numReactions()), dlnRdT(numReactions());
    rates(rho, T, Y, R.data(), dlnRdT.data());

    Real dedotdT = 0.0;
    std::vector<Real> dedotdY(n, 0.0);

    for (int r = 0; r < numReactions(); ++r) {
        const Reaction& rx = m_reactions[r];
        const Real q = rx.Q_MeV * erg_per_MeV_mol;

        Real dH_dT = 0.0, dH_dzeta = 0.0, zeta = 0.0;
        Real dln_dT9_unused = 0.0;
        const Real lam = rx.fit.eval(T / 1.0e9, dln_dT9_unused) *
                         screeningFactor(rx, rho, T, Y, &dH_dT, &dH_dzeta, &zeta);

        auto addColumn = [&](int k, Real dRdYk) {
            for (const auto& [sp, cnt] : rx.stoichIn()) J(sp, k) -= cnt * dRdYk;
            for (const auto& [sp, cnt] : rx.stoichOut()) J(sp, k) += cnt * dRdYk;
            dedotdY[k] += q * dRdYk;
        };

        // Direct abundance dependence of the rate.
        for (const auto& [k, cnt_k] : rx.reactants) {
            Real dRdYk = 1.0;
            int ntot = 0;
            Real sym = 1.0;
            for (const auto& [sp, cnt] : rx.reactants) {
                ntot += cnt;
                sym *= factorial[cnt];
                const int power = (sp == k) ? cnt - 1 : cnt;
                for (int c = 0; c < power; ++c) dRdYk *= std::max(Y[sp], Real(0));
            }
            dRdYk *= cnt_k * lam * std::pow(rho, ntot - 1) / sym;
            addColumn(k, dRdYk);
        }

        // Screening's composition dependence (dH/dzeta * dzeta/dY_k) is
        // deliberately omitted, following the production aprox13: it would
        // densify the Jacobian (every screened rate depends on every
        // abundance through zeta) and its magnitude is O(H) ~ few percent.
        // The modified-Newton corrector absorbs the approximation.
        (void)dH_dzeta;
        (void)zeta;

        // Temperature dependence (rate fit + screening).
        const Real dRdT = R[r] * dlnRdT[r];
        for (const auto& [sp, cnt] : rx.stoichIn()) J(sp, n) -= cnt * dRdT;
        for (const auto& [sp, cnt] : rx.stoichOut()) J(sp, n) += cnt * dRdT;
        dedotdT += q * dRdT;
    }
    // Temperature row: d(dT/dt)/dY_k = dedot/dY_k / cv, etc. (cv variation
    // neglected; the modified-Newton corrector tolerates approximate J).
    for (int k = 0; k < n; ++k) J(n, k) = dedotdY[k] / cv;
    J(n, n) = dedotdT / cv;
}

std::vector<char> ReactionNetwork::sparsity() const {
    const int n = nspec() + 1;
    std::vector<char> pat(static_cast<std::size_t>(n) * n, 0);
    auto set = [&](int i, int j) { pat[static_cast<std::size_t>(i) * n + j] = 1; };
    for (int i = 0; i < n; ++i) set(i, i);
    for (const auto& rx : m_reactions) {
        std::vector<int> touched;
        for (const auto& [sp, cnt] : rx.stoichIn()) touched.push_back(sp);
        for (const auto& [sp, cnt] : rx.stoichOut()) touched.push_back(sp);
        for (int i : touched) {
            for (const auto& [k, cnt] : rx.reactants) set(i, k);
            set(i, nspec());          // all rates depend on T
            set(nspec(), i);          // edot couples back to T  (row)
        }
        for (const auto& [k, cnt] : rx.reactants) set(nspec(), k);
    }
    set(nspec(), nspec());
    return pat;
}

Real ReactionNetwork::temperatureSensitivity(Real rho, Real T, const Real* Y) const {
    std::vector<Real> R(numReactions()), dlnRdT(numReactions());
    rates(rho, T, Y, R.data(), dlnRdT.data());
    Real edot = 0.0, dedotdT = 0.0;
    for (int r = 0; r < numReactions(); ++r) {
        const Real q = m_reactions[r].Q_MeV * erg_per_MeV_mol;
        edot += R[r] * q;
        dedotdT += R[r] * dlnRdT[r] * q;
    }
    return edot > 0 ? dedotdT * T / edot : 0.0;
}

// --- Factories ------------------------------------------------------------

namespace {
// Gamow exponent for charged-particle reactions.
Real gamowTau(Real z1, Real z2, Real a1, Real a2) {
    const Real ared = a1 * a2 / (a1 + a2);
    return 4.2487 * std::cbrt(z1 * z1 * z2 * z2 * ared);
}
} // namespace

ReactionNetwork makeIgnitionSimple() {
    std::vector<Species> sp = {{"c12", 12, 6, 0.0}, {"mg24", 24, 12, -13.9336}};
    // CF88 C12+C12 with T9a ~ T9 simplification: N_A<sv> =
    // 4.27e26 T9^{-2/3} exp(-84.165/T9^{1/3}), tau from Gamow = 84.17.
    Reaction r;
    r.label = "c12(c12,g)mg24";
    r.reactants = {{0, 2}};
    r.products = {{1, 1}};
    r.fit = {4.27e26, -2.0 / 3.0, gamowTau(6, 6, 12, 12), 0.0, 0.0};
    r.z1 = r.z2 = 6.0;
    return ReactionNetwork("ignition_simple", std::move(sp), {r});
}

ReactionNetwork makeTripleAlpha() {
    std::vector<Species> sp = {
        {"he4", 4, 2, 2.4249}, {"c12", 12, 6, 0.0}, {"o16", 16, 8, -4.7366}};
    Reaction r3a;
    r3a.label = "3a(,g)c12";
    r3a.reactants = {{0, 3}};
    r3a.products = {{1, 1}};
    // Resonant triple-alpha (CF88 essence): N_A^2<sv> ~ 2.79e-8 T9^-3
    // exp(-4.4027/T9); near T9 = 0.1 this gives d ln r / d ln T ~ 41 — the
    // paper's "as sensitive as T^40".
    r3a.fit = {2.79e-8, -3.0, 0.0, 4.4027, 0.0};
    r3a.z1 = 2.0;
    r3a.z2 = 2.0;

    Reaction rag;
    rag.label = "c12(a,g)o16";
    rag.reactants = {{1, 1}, {0, 1}};
    rag.products = {{2, 1}};
    rag.fit = {2.0e8, -2.0 / 3.0, gamowTau(2, 6, 4, 12), 0.0, 0.0};
    rag.z1 = 2.0;
    rag.z2 = 6.0;

    return ReactionNetwork("triple_alpha", std::move(sp), {r3a, rag});
}

ReactionNetwork makeAprox13() {
    // Alpha chain He4 -> Ni56 (13 species), (a,g) links with Gamow
    // exponents computed per target plus the heavy-ion channels. The
    // prefactors are order-of-magnitude CF88-like; the performance-
    // relevant structure (stiffness, sparsity, T sensitivity) is faithful.
    // Mass excesses in MeV (AME-derived, rounded).
    std::vector<Species> sp = {
        {"he4", 4, 2, 2.4249},     {"c12", 12, 6, 0.0},
        {"o16", 16, 8, -4.7366},   {"ne20", 20, 10, -7.0419},
        {"mg24", 24, 12, -13.9336}, {"si28", 28, 14, -21.4928},
        {"s32", 32, 16, -26.0157}, {"ar36", 36, 18, -30.2316},
        {"ca40", 40, 20, -34.8463}, {"ti44", 44, 22, -37.5484},
        {"cr48", 48, 24, -42.8155}, {"fe52", 52, 26, -48.3320},
        {"ni56", 56, 28, -53.9040}};
    std::vector<Reaction> rx;

    // Triple-alpha entry point.
    Reaction r3a;
    r3a.label = "3a(,g)c12";
    r3a.reactants = {{0, 3}};
    r3a.products = {{1, 1}};
    r3a.fit = {2.79e-8, -3.0, 0.0, 4.4027, 0.0};
    r3a.z1 = r3a.z2 = 2.0;
    rx.push_back(r3a);

    // (a,g) chain: species i (i >= 1) + he4 -> species i+1.
    for (int i = 1; i < 12; ++i) {
        Reaction r;
        r.label = sp[i].name + "(a,g)" + sp[i + 1].name;
        r.reactants = {{i, 1}, {0, 1}};
        r.products = {{i + 1, 1}};
        const Real tau = gamowTau(2.0, sp[i].Z, 4.0, sp[i].A);
        // Prefactor scaled so successive links stay within a plausible
        // CF88 range; larger-Z links are rarer at fixed T via tau.
        r.fit = {2.0e8 * std::pow(1.6, i - 1), -2.0 / 3.0, tau, 0.0, 0.0};
        r.z1 = 2.0;
        r.z2 = sp[i].Z;
        rx.push_back(r);
    }

    // Heavy-ion channels.
    Reaction cc;
    cc.label = "c12(c12,a)ne20";
    cc.reactants = {{1, 2}};
    cc.products = {{3, 1}, {0, 1}};
    cc.fit = {4.27e26, -2.0 / 3.0, gamowTau(6, 6, 12, 12), 0.0, 0.0};
    cc.z1 = cc.z2 = 6.0;
    rx.push_back(cc);

    Reaction co;
    co.label = "c12(o16,a)mg24";
    co.reactants = {{1, 1}, {2, 1}};
    co.products = {{4, 1}, {0, 1}};
    co.fit = {1.7e27, -2.0 / 3.0, gamowTau(6, 8, 12, 16), 0.0, 0.0};
    co.z1 = 6.0;
    co.z2 = 8.0;
    rx.push_back(co);

    Reaction oo;
    oo.label = "o16(o16,a)si28";
    oo.reactants = {{2, 2}};
    oo.products = {{5, 1}, {0, 1}};
    oo.fit = {7.1e36, -2.0 / 3.0, gamowTau(8, 8, 16, 16), 0.0, 0.0};
    oo.z1 = oo.z2 = 8.0;
    rx.push_back(oo);

    return ReactionNetwork("aprox13", std::move(sp), std::move(rx));
}

ReactionNetwork makeAprox13WithReverse() {
    ReactionNetwork fwd = makeAprox13();
    std::vector<Species> sp;
    for (int i = 0; i < fwd.nspec(); ++i) sp.push_back(fwd.species(i));
    std::vector<Reaction> rx;
    for (int r = 0; r < fwd.numReactions(); ++r) rx.push_back(fwd.reaction(r));

    // Detailed-balance reverse for every (a,g) capture: a one-body
    // photodisintegration whose rate carries the forward Gamow factor
    // plus the T9^{3/2} exp(-Q/kT) phase-space ratio (kT in MeV:
    // Q/kT = 11.605 * Q[MeV] / T9). The prefactor sets the equilibrium
    // scale; 1e10 puts the (a,g)/(g,a) crossover near T9 ~ 4-5, as in
    // the production network.
    std::vector<Reaction> rev;
    for (const Reaction& r : rx) {
        // Only the (a,g) links: two distinct reactants, one of them he4,
        // and a single capture product.
        const bool is_ag = r.reactants.size() == 2 && r.products.size() == 1 &&
                           (r.reactants[0].first == 0 || r.reactants[1].first == 0);
        if (!is_ag) continue;
        Reaction b;
        b.label = r.label + "_rev";
        b.reactants = {{r.products[0].first, 1}};
        b.products = r.reactants;
        b.fit = r.fit;
        b.fit.c0 *= 1.0e10;
        b.fit.eta += 1.5;
        // Q of the reverse is -Q of the forward; computed from the mass
        // excesses by the constructor. The Boltzmann suppression uses the
        // forward Q value.
        Real q = 0.0;
        for (const auto& [spi, cnt] : r.reactants) q += cnt * sp[spi].excess_MeV;
        for (const auto& [spi, cnt] : r.products) q -= cnt * sp[spi].excess_MeV;
        b.fit.invT += 11.605 * q;
        b.z1 = 0.0; // no Coulomb barrier for the photon
        b.z2 = 0.0;
        rev.push_back(b);
    }
    rx.insert(rx.end(), rev.begin(), rev.end());
    return ReactionNetwork("aprox13+rev", std::move(sp), std::move(rx));
}

ReactionNetwork makeIso7() {
    // he4 c12 o16 ne20 mg24 si28 ni56 — indices 0..6.
    std::vector<Species> sp = {
        {"he4", 4, 2, 2.4249},      {"c12", 12, 6, 0.0},
        {"o16", 16, 8, -4.7366},    {"ne20", 20, 10, -7.0419},
        {"mg24", 24, 12, -13.9336}, {"si28", 28, 14, -21.4928},
        {"ni56", 56, 28, -53.9040}};
    std::vector<Reaction> rx;

    Reaction r3a;
    r3a.label = "3a(,g)c12";
    r3a.reactants = {{0, 3}};
    r3a.products = {{1, 1}};
    r3a.fit = {2.79e-8, -3.0, 0.0, 4.4027, 0.0};
    r3a.z1 = r3a.z2 = 2.0;
    rx.push_back(r3a);

    // (a,g) chain c12 -> si28, same fits as the aprox13 links.
    for (int i = 1; i < 5; ++i) {
        Reaction r;
        r.label = sp[i].name + "(a,g)" + sp[i + 1].name;
        r.reactants = {{i, 1}, {0, 1}};
        r.products = {{i + 1, 1}};
        r.fit = {2.0e8 * std::pow(1.6, i - 1), -2.0 / 3.0,
                 gamowTau(2.0, sp[i].Z, 4.0, sp[i].A), 0.0, 0.0};
        r.z1 = 2.0;
        r.z2 = sp[i].Z;
        rx.push_back(r);
    }

    // Heavy-ion channels.
    Reaction cc;
    cc.label = "c12(c12,a)ne20";
    cc.reactants = {{1, 2}};
    cc.products = {{3, 1}, {0, 1}};
    cc.fit = {4.27e26, -2.0 / 3.0, gamowTau(6, 6, 12, 12), 0.0, 0.0};
    cc.z1 = cc.z2 = 6.0;
    rx.push_back(cc);

    Reaction co;
    co.label = "c12(o16,a)mg24";
    co.reactants = {{1, 1}, {2, 1}};
    co.products = {{4, 1}, {0, 1}};
    co.fit = {1.7e27, -2.0 / 3.0, gamowTau(6, 8, 12, 16), 0.0, 0.0};
    co.z1 = 6.0;
    co.z2 = 8.0;
    rx.push_back(co);

    Reaction oo;
    oo.label = "o16(o16,a)si28";
    oo.reactants = {{2, 2}};
    oo.products = {{5, 1}, {0, 1}};
    oo.fit = {7.1e36, -2.0 / 3.0, gamowTau(8, 8, 16, 16), 0.0, 0.0};
    oo.z1 = oo.z2 = 8.0;
    rx.push_back(oo);

    // The iso7 shortcut: everything above si28 is in quasi-equilibrium, so
    // the seven alpha captures si28 -> ni56 collapse into one effective
    // link. Kinetics are 2-body in Y(si28)*Y(he4) (the first capture is
    // rate-limiting); stoichiometry consumes 7 alphas per ni56.
    Reaction si;
    si.label = "si28(7a,g)ni56";
    si.reactants = {{5, 1}, {0, 1}};
    si.products = {{6, 1}};
    si.consumes = {{5, 1}, {0, 7}};
    si.produces = {{6, 1}};
    si.fit = {2.0e8 * std::pow(1.6, 4), -2.0 / 3.0, gamowTau(2, 14, 4, 28), 0.0, 0.0};
    si.z1 = 2.0;
    si.z2 = 14.0;
    rx.push_back(si);

    return ReactionNetwork("iso7", std::move(sp), std::move(rx));
}

ReactionNetwork makeAprox19() {
    // The aprox13 alpha chain (indices shifted) plus light species and
    // iron-group photodisintegration partners:
    //   0 h1, 1 he3, 2 he4, 3 c12, 4 n14, 5 o16, 6 ne20, 7 mg24, 8 si28,
    //   9 s32, 10 ar36, 11 ca40, 12 ti44, 13 cr48, 14 fe52, 15 fe54,
    //   16 ni56, 17 neut, 18 prot.
    std::vector<Species> sp = {
        {"h1", 1, 1, 7.2890},       {"he3", 3, 2, 14.9312},
        {"he4", 4, 2, 2.4249},      {"c12", 12, 6, 0.0},
        {"n14", 14, 7, 2.8634},     {"o16", 16, 8, -4.7366},
        {"ne20", 20, 10, -7.0419},  {"mg24", 24, 12, -13.9336},
        {"si28", 28, 14, -21.4928}, {"s32", 32, 16, -26.0157},
        {"ar36", 36, 18, -30.2316}, {"ca40", 40, 20, -34.8463},
        {"ti44", 44, 22, -37.5484}, {"cr48", 48, 24, -42.8155},
        {"fe52", 52, 26, -48.3320}, {"fe54", 54, 26, -56.2525},
        {"ni56", 56, 28, -53.9040}, {"neut", 1, 0, 8.0713},
        {"prot", 1, 1, 7.2890}};
    std::vector<Reaction> rx;

    const int ih1 = 0, ihe3 = 1, ihe4 = 2, ic12 = 3, in14 = 4, io16 = 5,
              ine20 = 6, img24 = 7, isi28 = 8, ife52 = 14, ife54 = 15,
              ini56 = 16, ineut = 17, iprot = 18;

    // Lumped pp chain entry: 3 h1 -> he3 with 2-body p+p kinetics (the
    // weak p(p,e+nu)d step is rate-limiting; tiny c0 reflects it).
    Reaction pp;
    pp.label = "p(pp,g)he3";
    pp.reactants = {{ih1, 2}};
    pp.products = {{ihe3, 1}};
    pp.consumes = {{ih1, 3}};
    pp.produces = {{ihe3, 1}};
    pp.fit = {4.0e-15, -2.0 / 3.0, gamowTau(1, 1, 1, 1), 0.0, 0.0};
    pp.z1 = pp.z2 = 1.0;
    rx.push_back(pp);

    // he3(he3,2p)he4 closes pp-I.
    Reaction hh;
    hh.label = "he3(he3,2p)he4";
    hh.reactants = {{ihe3, 2}};
    hh.products = {{ihe4, 1}, {ih1, 2}};
    hh.fit = {6.0e10, -2.0 / 3.0, gamowTau(2, 2, 3, 3), 0.0, 0.0};
    hh.z1 = hh.z2 = 2.0;
    rx.push_back(hh);

    // Lumped cold CNO: c12 + 2p -> n14 (2-body c12+p kinetics; the slow
    // c12(p,g) capture gates the cycle).
    Reaction cno;
    cno.label = "c12(pp,g)n14";
    cno.reactants = {{ic12, 1}, {ih1, 1}};
    cno.products = {{in14, 1}};
    cno.consumes = {{ic12, 1}, {ih1, 2}};
    cno.produces = {{in14, 1}};
    cno.fit = {2.0e7, -2.0 / 3.0, gamowTau(1, 6, 1, 12), 0.0, 0.0};
    cno.z1 = 1.0;
    cno.z2 = 6.0;
    rx.push_back(cno);

    // n14 burnout toward the alpha chain: 2 n14 + he4 -> 2 o16 (lumping
    // n14(a,g)f18(..)o16-flavored flows; 2-body n14+he4 kinetics).
    Reaction na;
    na.label = "n14(a,g)o16_eff";
    na.reactants = {{in14, 1}, {ihe4, 1}};
    na.products = {{io16, 1}};
    na.consumes = {{in14, 2}, {ihe4, 1}};
    na.produces = {{io16, 2}};
    na.fit = {6.0e7, -2.0 / 3.0, gamowTau(2, 7, 4, 14), 0.0, 0.0};
    na.z1 = 2.0;
    na.z2 = 7.0;
    rx.push_back(na);

    // Triple-alpha entry and the full (a,g) chain c12 -> ni56, as aprox13.
    Reaction r3a;
    r3a.label = "3a(,g)c12";
    r3a.reactants = {{ihe4, 3}};
    r3a.products = {{ic12, 1}};
    r3a.fit = {2.79e-8, -3.0, 0.0, 4.4027, 0.0};
    r3a.z1 = r3a.z2 = 2.0;
    rx.push_back(r3a);

    // Chain links (skip n14 and fe54, which sit off the alpha ladder):
    // c12, o16, ne20, mg24, si28, s32, ar36, ca40, ti44, cr48, fe52.
    const int chain[] = {ic12, io16, ine20, img24, isi28, 9, 10, 11, 12, 13, ife52};
    for (int ci = 0; ci < 11; ++ci) {
        const int i = chain[ci];
        const int ip1 = ci < 10 ? chain[ci + 1] : ini56;
        Reaction r;
        r.label = sp[i].name + "(a,g)" + sp[ip1].name;
        r.reactants = {{i, 1}, {ihe4, 1}};
        r.products = {{ip1, 1}};
        r.fit = {2.0e8 * std::pow(1.6, ci), -2.0 / 3.0,
                 gamowTau(2.0, sp[i].Z, 4.0, sp[i].A), 0.0, 0.0};
        r.z1 = 2.0;
        r.z2 = sp[i].Z;
        rx.push_back(r);
    }

    // Heavy-ion channels.
    Reaction cc;
    cc.label = "c12(c12,a)ne20";
    cc.reactants = {{ic12, 2}};
    cc.products = {{ine20, 1}, {ihe4, 1}};
    cc.fit = {4.27e26, -2.0 / 3.0, gamowTau(6, 6, 12, 12), 0.0, 0.0};
    cc.z1 = cc.z2 = 6.0;
    rx.push_back(cc);

    Reaction co;
    co.label = "c12(o16,a)mg24";
    co.reactants = {{ic12, 1}, {io16, 1}};
    co.products = {{img24, 1}, {ihe4, 1}};
    co.fit = {1.7e27, -2.0 / 3.0, gamowTau(6, 8, 12, 16), 0.0, 0.0};
    co.z1 = 6.0;
    co.z2 = 8.0;
    rx.push_back(co);

    Reaction oo;
    oo.label = "o16(o16,a)si28";
    oo.reactants = {{io16, 2}};
    oo.products = {{isi28, 1}, {ihe4, 1}};
    oo.fit = {7.1e36, -2.0 / 3.0, gamowTau(8, 8, 16, 16), 0.0, 0.0};
    oo.z1 = oo.z2 = 8.0;
    rx.push_back(oo);

    // Iron-group photodisintegration-flavored links (endothermic; the
    // invT term keeps them negligible until T9 of a few):
    // fe52 + a -> fe54 + 2p, fe54 + a -> ni56 + 2n, fe54 + 2p -> ni56.
    Reaction fa;
    fa.label = "fe52(a,2p)fe54";
    fa.reactants = {{ife52, 1}, {ihe4, 1}};
    fa.products = {{ife54, 1}, {iprot, 2}};
    fa.fit = {1.0e9, -2.0 / 3.0, gamowTau(2, 26, 4, 52), 35.0, 0.0};
    fa.z1 = 2.0;
    fa.z2 = 26.0;
    rx.push_back(fa);

    Reaction fn;
    fn.label = "fe54(a,2n)ni56";
    fn.reactants = {{ife54, 1}, {ihe4, 1}};
    fn.products = {{ini56, 1}, {ineut, 2}};
    fn.fit = {1.0e9, -2.0 / 3.0, gamowTau(2, 26, 4, 54), 40.0, 0.0};
    fn.z1 = 2.0;
    fn.z2 = 26.0;
    rx.push_back(fn);

    Reaction fp;
    fp.label = "fe54(pp,g)ni56";
    fp.reactants = {{ife54, 1}, {iprot, 1}};
    fp.products = {{ini56, 1}};
    fp.consumes = {{ife54, 1}, {iprot, 2}};
    fp.produces = {{ini56, 1}};
    fp.fit = {5.0e6, -2.0 / 3.0, gamowTau(1, 26, 1, 54), 0.0, 0.0};
    fp.z1 = 1.0;
    fp.z2 = 26.0;
    rx.push_back(fp);

    // Free-neutron decay n -> p (one-body weak rate, lambda = 1/880 s).
    Reaction nd;
    nd.label = "n(e-nu)p";
    nd.reactants = {{ineut, 1}};
    nd.products = {{iprot, 1}};
    nd.fit = {1.0 / 880.0, 0.0, 0.0, 0.0, 0.0};
    rx.push_back(nd);

    return ReactionNetwork("aprox19", std::move(sp), std::move(rx));
}

// --- NetworkRegistry ------------------------------------------------------

NetworkRegistry::NetworkRegistry() {
    add("ignition_simple", &makeIgnitionSimple);
    add("triple_alpha", &makeTripleAlpha);
    add("aprox13", &makeAprox13);
    add("aprox13+rev", &makeAprox13WithReverse);
    add("iso7", &makeIso7);
    add("aprox19", &makeAprox19);
}

NetworkRegistry& NetworkRegistry::instance() {
    static NetworkRegistry reg;
    return reg;
}

void NetworkRegistry::add(const std::string& name, Factory f) {
    for (auto& [nm, fac] : m_factories) {
        if (nm == name) {
            fac = f;
            return;
        }
    }
    m_factories.emplace_back(name, f);
}

bool NetworkRegistry::contains(const std::string& name) const {
    for (const auto& [nm, fac] : m_factories) {
        if (nm == name) return true;
    }
    return false;
}

std::vector<std::string> NetworkRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(m_factories.size());
    for (const auto& [nm, fac] : m_factories) out.push_back(nm);
    std::sort(out.begin(), out.end());
    return out;
}

ReactionNetwork NetworkRegistry::make(const std::string& name) const {
    for (const auto& [nm, fac] : m_factories) {
        if (nm == name) return fac();
    }
    std::string msg = "unknown reaction network '" + name + "'; registered: ";
    bool first = true;
    for (const auto& nm : names()) {
        if (!first) msg += ", ";
        msg += nm;
        first = false;
    }
    throw std::invalid_argument(msg);
}

ReactionNetwork makeNetworkByName(const std::string& name) {
    return NetworkRegistry::instance().make(name);
}

} // namespace exa
