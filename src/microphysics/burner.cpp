#include "microphysics/burner.hpp"

#include "core/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace exa {

Real BurnOde::cvAt(Real T, const Real* Y) const {
    std::vector<Real>& X = m_x;
    X.resize(m_net.nspec());
    m_net.yToX(Y, X.data());
    EosState s;
    s.rho = m_rho;
    s.T = std::max(T, Real(1.0e4));
    s.abar = m_net.abar(X.data());
    s.ye = m_net.ye(X.data());
    m_eos.rhoT(s);
    return s.cv;
}

void BurnOde::rhs(Real /*t*/, const std::vector<Real>& y, std::vector<Real>& f) {
    const int n = m_net.nspec();
    f.resize(n + 1);
    const Real T = std::max(y[n], Real(1.0e4));
    Real edot = 0.0;
    m_net.ydot(m_rho, T, y.data(), f.data(), edot);
    f[n] = edot / cvAt(T, y.data());
}

void BurnOde::jacobian(Real /*t*/, const std::vector<Real>& y, DenseMatrix& jac) {
    const int n = m_net.nspec();
    const Real T = std::max(y[n], Real(1.0e4));
    m_net.jacobian(m_rho, T, y.data(), cvAt(T, y.data()), jac);
}

std::string BurnGridStats::describeFailure() const {
    if (!first_failure.valid) return "";
    std::ostringstream os;
    os << "zone (" << first_failure.i << "," << first_failure.j << ","
       << first_failure.k << ") of fab " << first_failure.fab;
    if (first_failure.level >= 0) os << " level " << first_failure.level;
    os << ": rho=" << first_failure.rho << ", T=" << first_failure.T;
    return os.str();
}

void burnZoneInto(BurnOde& ode, Real rho, Real T, const Real* X, Real dt,
                  const OdeOptions& opt, BurnWorkspace& ws, BurnResult& out) {
    const ReactionNetwork& net = ode.network();
    const int n = net.nspec();
    out.X.resize(n);
    out.e_nuc = 0.0;
    out.stats = OdeStats{};

    // Injection site: the stiff integrator gives up on this zone. The
    // pre-burn state is returned unchanged with success=false — exactly
    // the shape of a real BDF failure, so every caller's failure path
    // (stats, retry, degradation) is exercised deterministically.
    if (fault::shouldFire(fault::Site::BurnZoneFailure)) {
        out.T = T;
        for (int i = 0; i < n; ++i) out.X[i] = X[i];
        out.stats.steps = 1;
        out.success = false;
        return;
    }

    std::vector<Real>& y = ws.y;
    y.resize(n + 1);
    net.xToY(X, y.data());
    y[n] = T;

    ode.setRho(rho);
    BdfIntegrator bdf;
    out.stats = bdf.integrate(ode, y, 0.0, dt, opt, &ws.bdf);

    out.T = std::max(y[n], Real(1.0e4));
    for (int i = 0; i < n; ++i) y[i] = std::clamp(y[i], Real(0), Real(1.0));
    net.yToX(y.data(), out.X.data());
    // Renormalize mass fractions (conservation guard against integration
    // drift; the network itself conserves nucleon number exactly).
    Real xsum = 0.0;
    for (int i = 0; i < n; ++i) xsum += out.X[i];
    if (xsum > 0.0) {
        for (int i = 0; i < n; ++i) out.X[i] /= xsum;
    }

    // Released specific energy, exactly from the abundance change and the
    // species mass excesses (independent of the thermal path).
    ws.y0.resize(n);
    ws.y1.resize(n);
    net.xToY(X, ws.y0.data());
    net.xToY(out.X.data(), ws.y1.data());
    out.e_nuc = net.energyFromAbundanceChange(ws.y0.data(), ws.y1.data());
    out.success = out.stats.success;
}

BurnResult burnZone(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
                    const Real* X, Real dt, const OdeOptions& opt) {
    BurnOde ode(net, eos, rho);
    BurnWorkspace ws;
    BurnResult out;
    burnZoneInto(ode, rho, T, X, dt, opt, ws, out);
    return out;
}

Real edotOf(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
            const Real* X) {
    (void)eos;
    const int n = net.nspec();
    std::vector<Real> y(n), dy(n);
    net.xToY(X, y.data());
    Real edot = 0.0;
    net.ydot(rho, T, y.data(), dy.data(), edot);
    return edot;
}

Real burningTimescale(const ReactionNetwork& net, const Eos& eos, Real rho, Real T,
                      const Real* X) {
    const Real edot = edotOf(net, eos, rho, T, X);
    if (edot <= 0.0) return 1.0e99;
    EosState s;
    s.rho = rho;
    s.T = T;
    s.abar = net.abar(X);
    s.ye = net.ye(X);
    eos.rhoT(s);
    // Time to double the thermal energy content: cv*T / edot.
    return s.cv * T / edot;
}

KernelInfo burnKernelInfo(int nspec, double steps_per_zone, double imbalance) {
    const int nsys = nspec + 1;
    KernelInfo ki;
    ki.name = "nuclear_burn";
    // Cost of one *production* VODE step: a few Newton iterations, each
    // with a full Helmholtz-EOS + rate-screening RHS (~thousands of
    // flops), an O(nsys^2) triangular solve, and an amortized O(nsys^3)
    // LU refactorization. Calibrated so the 2-species reacting-bubble
    // burn balances the projection multigrid on one node (Section IV-B).
    ki.flops_per_zone = steps_per_zone * (2000.0 * nsys * nsys + 60000.0);
    ki.bytes_per_zone = steps_per_zone * (120.0 * nsys * nsys + 600.0);
    // Jacobian + LU + Nordsieck history live in registers/local memory:
    // ~1.5 registers per matrix entry plus overhead. aprox13 (nsys = 14)
    // demands ~334 > 255 and spills, ignition_simple (nsys = 3) fits.
    ki.regs_per_thread = 40 + static_cast<int>(1.5 * nsys * nsys);
    ki.work_imbalance = std::max(1.0, imbalance);
    return ki;
}

} // namespace exa
