#pragma once

#include "core/real.hpp"
#include "microphysics/linalg.hpp"

#include <cstdint>
#include <vector>

namespace exa {

// A stiff ODE system y' = f(t, y) with an analytic Jacobian, the shape of
// every nuclear-burn integration in the suite.
class OdeSystem {
public:
    virtual ~OdeSystem() = default;
    virtual int size() const = 0;
    virtual void rhs(Real t, const std::vector<Real>& y, std::vector<Real>& f) = 0;
    // J(i,j) = d f_i / d y_j. Default: forward-difference approximation.
    virtual void jacobian(Real t, const std::vector<Real>& y, DenseMatrix& jac);
    // Structural nonzeros of the Jacobian (dense by default).
    virtual std::vector<char> sparsity() const;
};

struct OdeOptions {
    Real rtol = 1.0e-8;
    Real atol = 1.0e-12;
    Real h_init = 0.0; // 0 = choose automatically
    std::int64_t max_steps = 500000;
    bool use_sparse = false; // fixed-pattern sparse LU instead of dense
    int max_newton = 8;
    // Re-evaluate/refactor the Jacobian only when Newton struggles
    // (VODE-style Jacobian reuse).
    bool reuse_jacobian = true;
};

struct OdeStats {
    std::int64_t steps = 0;
    std::int64_t rejected = 0;
    std::int64_t rhs_evals = 0;
    std::int64_t jac_evals = 0;
    std::int64_t lu_factors = 0;
    std::int64_t newton_iters = 0;
    bool success = false;
};

// Weighted RMS norm used for error control: ||v||_wrms with weights
// 1/(rtol*|y| + atol).
Real wrmsNorm(const std::vector<Real>& v, const std::vector<Real>& y, Real rtol,
              Real atol);

} // namespace exa
