#include "microphysics/batch_burner.hpp"

#include "core/parallel_for.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace exa {

namespace {

// Stack capacity for the per-zone stiffness kernel's state vectors, so the
// estimate runs allocation-free (and OpenMP-safely) for every network in
// the suite. Networks larger than this fall back to a serial heap loop.
constexpr int kMaxStackSpec = 63;

KernelInfo stiffnessKernelInfo(int nspec) {
    KernelInfo ki;
    ki.name = "burn_stiffness";
    // One RHS + EOS evaluation per zone.
    ki.flops_per_zone = 60.0 * nspec * nspec + 800.0;
    ki.bytes_per_zone = 8.0 * (nspec + 3);
    ki.regs_per_thread = 40 + 2 * nspec;
    return ki;
}

} // namespace

BatchBurner::BatchBurner(const ReactionNetwork& net, const Eos& eos,
                         const BatchBurnOptions& opt)
    : m_net(net), m_eos(eos), m_opt(opt), m_ode(net, eos, 0.0) {}

void BatchBurner::run(BurnBatch& b, Real dt, const OdeOptions& ode_opt) {
    const int nspec = m_net.nspec();
    const std::int64_t n = b.nzones;
    m_report = BatchBurnReport{};
    m_report.gathered = n;
    if (n == 0) return;

    // --- Stiffness estimate: dt in units of the burning timescale --------
    //
    // est = dt / (cv T / edot): how many thermal e-folds this zone would
    // burn through in dt. Monotone in the BDF step count the zone will
    // need, which is all sorting and tail routing require. One fused
    // streaming pass over the gather (its own named launch).
    m_stiffness.resize(n);
    const bool need_est = m_opt.sort_by_stiffness || m_opt.hybrid_cpu_tail;
    if (need_est && nspec <= kMaxStackSpec) {
        const Real* rho_p = b.rho.data();
        const Real* T_p = b.T.data();
        const Real* X_p = b.X.data();
        double* est_p = m_stiffness.data();
        const ReactionNetwork& net = m_net;
        const Eos& eos = m_eos;
        ParallelFor(stiffnessKernelInfo(nspec), n, [=, &net, &eos](std::int64_t z) {
            Real x[kMaxStackSpec], y[kMaxStackSpec], dy[kMaxStackSpec];
            for (int s = 0; s < nspec; ++s) x[s] = X_p[s * n + z];
            net.xToY(x, y);
            const Real T = T_p[z];
            Real edot = 0.0;
            net.ydot(rho_p[z], T, y, dy, edot);
            if (edot <= 0.0) {
                est_p[z] = 0.0;
                return;
            }
            EosState s;
            s.rho = rho_p[z];
            s.T = T;
            s.abar = net.abar(x);
            s.ye = net.ye(x);
            eos.rhoT(s);
            est_p[z] = dt * edot / (s.cv * T);
        });
    } else if (need_est) {
        std::vector<Real> x(nspec);
        for (std::int64_t z = 0; z < n; ++z) {
            for (int s = 0; s < nspec; ++s) x[s] = b.X[s * n + z];
            m_stiffness[z] =
                dt / burningTimescale(m_net, m_eos, b.rho[z], b.T[z], x.data());
        }
    } else {
        std::fill(m_stiffness.begin(), m_stiffness.end(), 0.0);
    }

    // --- Sort and split ---------------------------------------------------
    m_order.resize(n);
    for (std::int64_t z = 0; z < n; ++z) m_order[z] = z;
    if (m_opt.sort_by_stiffness) {
        const double* est = m_stiffness.data();
        std::stable_sort(m_order.begin(), m_order.end(),
                         [est](std::int64_t a, std::int64_t c) {
                             return est[a] < est[c];
                         });
    }
    for (double e : m_stiffness) {
        m_report.stiffness_max = std::max(m_report.stiffness_max, e);
    }
    {
        // Median over a scratch copy (m_order may be unsorted).
        std::vector<double> med = m_stiffness;
        std::nth_element(med.begin(), med.begin() + n / 2, med.end());
        m_report.stiffness_median = med[n / 2];
    }

    double cut = 0.0;
    std::int64_t split = n; // first tail position in m_order
    if (m_opt.hybrid_cpu_tail) {
        cut = std::max(m_opt.tail_factor * m_report.stiffness_median,
                       m_opt.tail_min_stiffness);
        m_report.stiffness_tail_cut = cut;
        // Stable partition: device zones first, tail zones after, both in
        // processing order. With the sort on this is just a split point.
        std::stable_partition(m_order.begin(), m_order.end(),
                              [&](std::int64_t z) { return m_stiffness[z] <= cut; });
        split = 0;
        while (split < n && m_stiffness[m_order[split]] <= cut) ++split;
    }
    m_report.device_zones = split;
    m_report.tail_zones = n - split;

    // --- Device batches ---------------------------------------------------
    //
    // Each batch is one fused launch: the Newton systems of its zones
    // factor into one contiguous BatchedDenseLU slab, and the launch is
    // priced with the batch's own mean work and batch-local imbalance —
    // after the sort, batch-mates cost alike, so no warp-stall tail from
    // mixing quiescent and igniting zones.
    const std::int64_t bs = std::max(1, m_opt.batch_size);
    OdeOptions zopt = ode_opt;
    const bool use_batched_lu = !zopt.use_sparse;
    std::vector<Real> x(nspec);
    // Balanced batch sizes: round the zone count to a whole number of
    // ~batch_size launches rather than letting a sliver trail — a
    // launch of a few (stiff, post-sort) zones is the worst thing one
    // can hand the device model's latency-hiding ramp.
    const std::int64_t nb =
        split > 0 ? std::max<std::int64_t>(1, (split + bs / 2) / bs) : 0;
    for (std::int64_t batch_idx = 0; batch_idx < nb; ++batch_idx) {
        const std::int64_t start = batch_idx * split / nb;
        const std::int64_t count = (batch_idx + 1) * split / nb - start;
        if (count == 0) continue;
        StreamScope stream;
        stream.use(static_cast<int>(batch_idx % ExecConfig::numStreams()));
        if (use_batched_lu) {
            m_batched_lu.resize(nspec + 1, static_cast<int>(count));
        }
        std::int64_t batch_steps = 0, batch_max = 0;
        for (std::int64_t p = 0; p < count; ++p) {
            const std::int64_t z = m_order[start + p];
            for (int s = 0; s < nspec; ++s) x[s] = b.X[s * n + z];
            m_ws.bdf.batched_lu = use_batched_lu ? &m_batched_lu : nullptr;
            m_ws.bdf.batched_slot = static_cast<int>(p);
            burnZoneInto(m_ode, b.rho[z], b.T[z], x.data(), dt, zopt, m_ws,
                         m_result);
            b.T_out[z] = m_result.T;
            for (int s = 0; s < nspec; ++s) b.Xout(s)[z] = m_result.X[s];
            b.e_nuc[z] = m_result.e_nuc;
            b.steps[z] = m_result.stats.steps;
            b.success[z] = m_result.success ? 1 : 0;
            const std::int64_t zs = std::max<std::int64_t>(m_result.stats.steps, 1);
            batch_steps += zs;
            batch_max = std::max(batch_max, zs);
        }
        m_ws.bdf.batched_lu = nullptr;
        m_report.device_steps += batch_steps;
        ++m_report.batches;

        if (ExecConfig::accountsLaunches()) {
            const double mean =
                static_cast<double>(batch_steps) / static_cast<double>(count);
            LaunchRecord rec;
            rec.info = burnKernelInfo(nspec, std::max(mean, 1.0),
                                      static_cast<double>(batch_max) /
                                          std::max(mean, 1.0));
            rec.info.name = "nuclear_burn_batch";
            rec.zones = count;
            rec.ncomp = 1;
            rec.stream = ExecConfig::currentStream();
            ExecConfig::notifyLaunch(rec);
        }
    }

    // --- Host tail --------------------------------------------------------
    //
    // The stiff outliers integrate on the robust per-zone host path (no
    // device launch: the model treats them as CPU work concurrent with the
    // device batches, the paper's Section VI split). Wall time is reported
    // so callers can price the host side honestly.
    if (split < n) {
        const auto t0 = std::chrono::steady_clock::now();
        m_ws.bdf.batched_lu = nullptr;
        for (std::int64_t p = split; p < n; ++p) {
            const std::int64_t z = m_order[p];
            for (int s = 0; s < nspec; ++s) x[s] = b.X[s * n + z];
            burnZoneInto(m_ode, b.rho[z], b.T[z], x.data(), dt, zopt, m_ws,
                         m_result);
            b.T_out[z] = m_result.T;
            for (int s = 0; s < nspec; ++s) b.Xout(s)[z] = m_result.X[s];
            b.e_nuc[z] = m_result.e_nuc;
            b.steps[z] = m_result.stats.steps;
            b.success[z] = m_result.success ? 1 : 0;
            m_report.tail_steps += std::max<std::int64_t>(m_result.stats.steps, 1);
        }
        m_report.tail_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    }
}

} // namespace exa
