#pragma once

#include "core/real.hpp"
#include "microphysics/linalg.hpp"

#include <string>
#include <vector>

namespace exa {

// One nuclear species.
struct Species {
    std::string name;
    Real A = 1.0; // mass number
    Real Z = 1.0; // charge number
    // Atomic mass excess [MeV]. Reaction Q values are computed from these,
    // so energy release is exactly consistent with abundance changes:
    // e_nuc = -N_A * sum_i dY_i * excess_i.
    Real excess_MeV = 0.0;
};

// Analytic thermonuclear rate fit:
//   lambda(T9) = c0 * T9^eta * exp(-tau/T9^(1/3) - invT/T9 - lin*T9)
// c0 carries the units (N_A<sigma v> for 2-body, N_A^2<sigma v> for
// 3-body). tau is the Gamow exponent 4.2487*(Z1^2 Z2^2 Ared)^(1/3) for
// non-resonant charged-particle rates; invT captures resonant forms like
// triple-alpha's exp(-4.4027/T9). This family is the paper-relevant
// essence of the CF88/REACLIB fits: extreme temperature sensitivity
// (d ln lambda / d ln T up to ~40 near helium-burning conditions).
struct RateFit {
    Real c0 = 0.0;
    Real eta = 0.0;
    Real tau = 0.0;
    Real invT = 0.0;
    Real lin = 0.0;

    Real eval(Real T9, Real& dln_dT9) const;
};

// A reaction with up to two distinct reactant/product species (with
// multiplicities, so "3 He4 -> C12" is reactants {{ihe4,3}}).
//
// `reactants` defines the *rate law* (which abundances the molar rate is
// proportional to). By default it also defines the stoichiometry; the
// optional `consumes`/`produces` lists override the stoichiometry alone,
// for the effective links of reduced networks — e.g. iso7's
// si28 + 7 he4 -> ni56, whose rate is 2-body in Y(si28)*Y(he4) but which
// consumes seven alphas per ni56 produced. Nucleon conservation and Q
// values follow the stoichiometric lists.
struct Reaction {
    std::string label;
    std::vector<std::pair<int, int>> reactants; // (species index, count)
    std::vector<std::pair<int, int>> products;
    // Stoichiometry overrides; empty = use reactants/products.
    std::vector<std::pair<int, int>> consumes;
    std::vector<std::pair<int, int>> produces;
    RateFit fit;
    Real Q_MeV = 0.0; // energy release per reaction (set from mass excesses
                      // by the ReactionNetwork constructor)
    Real z1 = 0.0, z2 = 0.0; // charges for the screening factor (0 = none)

    const std::vector<std::pair<int, int>>& stoichIn() const {
        return consumes.empty() ? reactants : consumes;
    }
    const std::vector<std::pair<int, int>>& stoichOut() const {
        return produces.empty() ? products : produces;
    }
};

// A reaction network assembled from species + reactions, with generic
// analytic right-hand sides and Jacobians. Mirrors the role of the
// aprox13/ignition_simple modules in AMReX-Astro Microphysics.
class ReactionNetwork {
public:
    ReactionNetwork(std::string name, std::vector<Species> species,
                    std::vector<Reaction> reactions);

    const std::string& name() const { return m_name; }
    int nspec() const { return static_cast<int>(m_species.size()); }
    int numReactions() const { return static_cast<int>(m_reactions.size()); }
    const Species& species(int i) const { return m_species[i]; }
    const Reaction& reaction(int r) const { return m_reactions[r]; }
    int speciesIndex(const std::string& name) const; // -1 if absent

    // Composition means from mass fractions X.
    Real abar(const Real* X) const;
    Real zbar(const Real* X) const;
    Real ye(const Real* X) const { return zbar(X) / abar(X); }

    // Mass fractions <-> molar abundances Y_i = X_i / A_i.
    void xToY(const Real* X, Real* Y) const;
    void yToX(const Real* Y, Real* X) const;

    // Molar reaction rates R_r [mol/(g s)] and optional d(lnR)/dT.
    void rates(Real rho, Real T, const Real* Y, Real* R, Real* dlnRdT) const;

    // dY_i/dt and the specific energy generation rate edot [erg/(g s)].
    void ydot(Real rho, Real T, const Real* Y, Real* dYdt, Real& edot) const;

    // Analytic Jacobian of the coupled (Y_0..Y_{N-1}, T) system with
    // dT/dt = edot / cv: J is (N+1)x(N+1).
    void jacobian(Real rho, Real T, const Real* Y, Real cv, DenseMatrix& J) const;

    // Structural nonzeros of the (N+1)^2 Jacobian: species couple only
    // through shared reactions; the T row/column is dense. For the
    // 13-isotope alpha chain roughly 40% of the matrix is empty, matching
    // the paper's Section VI estimate.
    std::vector<char> sparsity() const;

    // Peak d ln(edot) / d ln T over the rate set at the given state — the
    // paper's "temperature dependence as sensitive as T^40".
    Real temperatureSensitivity(Real rho, Real T, const Real* Y) const;

    // Specific energy [erg/g] released by the abundance change Y0 -> Y1
    // (exact, from mass excesses; independent of the thermal path).
    Real energyFromAbundanceChange(const Real* Y0, const Real* Y1) const;

    bool screening_enabled = true;

private:
    // Screening enhancement exp(H) plus the derivatives of H needed for
    // the analytic Jacobian: dH/dT and dH/dY_k (through zeta).
    Real screeningFactor(const Reaction& r, Real rho, Real T, const Real* Y,
                         Real* dH_dT = nullptr, Real* dH_dzeta = nullptr,
                         Real* zeta_out = nullptr) const;

    std::string m_name;
    std::vector<Species> m_species;
    std::vector<Reaction> m_reactions;
};

// --- Factories (the networks used in the paper's runs) -------------------

// 2-species carbon-fusion network (MAESTROeX reacting bubble, Fig. 3:
// "we only model N = 2 reacting nuclei"): 2 C12 -> Mg24.
ReactionNetwork makeIgnitionSimple();

// 3-species helium-burning network: 3 He4 -> C12, C12(a,g)O16.
ReactionNetwork makeTripleAlpha();

// 13-species alpha-chain network (the WD collision run's "N = 13
// elements"): He4 through Ni56 with (a,g) links plus the heavy-ion
// C12+C12, C12+O16, O16+O16 channels.
ReactionNetwork makeAprox13();

// aprox13 with reverse (gamma,a) photodisintegration channels built from
// detailed balance against each forward (a,g) link: lambda_rev ~
// T9^{3/2} exp(-11.605 Q / T9) * lambda_fwd. At T9 >~ 4-5 the reverse
// flows compete with the captures, pushing the composition toward
// quasi-equilibrium — the stiffness regime the production network
// integrates near ignition. Denser Jacobian (closer to the paper's "40%
// empty" figure) and stiffer systems than the forward-only variant.
ReactionNetwork makeAprox13WithReverse();

// 7-species reduced alpha network in the style of iso7 (Timmes): he4,
// c12, o16, ne20, mg24, si28, ni56. The chain above si28 is collapsed
// into one effective si28 + 7 he4 -> ni56 link with 2-body kinetics (the
// QSE shortcut that makes iso7 cheap), using the stoichiometry override.
// Smaller Jacobian (8x8) than aprox13 — the fits-in-registers end of the
// paper's Volta register-budget discussion.
ReactionNetwork makeIso7();

// 19-species network in the style of aprox19: the aprox13 alpha chain
// plus h1, he3, n14, fe54, and free neutrons/protons, with lumped pp,
// CNO-like, and photodisintegration-flavored links. Rates are
// order-of-magnitude physical fits (like the other networks here): the
// performance-relevant structure — 20x20 Jacobian (register spilling),
// sparsity, stiffness spread — is what is faithful.
ReactionNetwork makeAprox19();

// --- Runtime-pluggable network registry ----------------------------------
//
// Networks register a factory under a name; drivers, benches, examples,
// and configs then select a network by string with no recompilation —
// every new network is an instant scenario/ablation axis. The built-in
// factories above are pre-registered.
class NetworkRegistry {
public:
    using Factory = ReactionNetwork (*)();

    static NetworkRegistry& instance();

    // Register (or replace) a factory under `name`.
    void add(const std::string& name, Factory f);
    bool contains(const std::string& name) const;
    // Registered names, sorted.
    std::vector<std::string> names() const;
    // Build the named network. Throws std::invalid_argument for unknown
    // names, listing every registered network in the message.
    ReactionNetwork make(const std::string& name) const;

private:
    NetworkRegistry(); // pre-registers the built-ins
    std::vector<std::pair<std::string, Factory>> m_factories;
};

// Convenience wrapper over NetworkRegistry::instance().make(name).
ReactionNetwork makeNetworkByName(const std::string& name);

} // namespace exa
