#pragma once

#include "microphysics/ode.hpp"

namespace exa {

// VODE-style implicit integrator: variable-step BDF with a modified-Newton
// corrector, analytic Jacobians, Jacobian/LU reuse across steps, and
// weighted-RMS error control. This is the C++ replacement for the
// fixed-format Fortran VODE whose computed-goto constructs blocked the
// paper's first OpenACC porting attempts (Section III).
//
// Orders 1 and 2 are implemented (production VODE reaches 5); for the
// strongly stiff, accuracy-limited burns in this suite BDF2 + adaptive
// steps reproduces the cost structure that matters: one LU factor +
// O(N^2) back-substitutions per Newton iteration, with N = nspec + 1.
class BdfIntegrator {
public:
    // Advance y from t0 to t1 in place.
    OdeStats integrate(OdeSystem& sys, std::vector<Real>& y, Real t0, Real t1,
                       const OdeOptions& opt = OdeOptions{});
};

// Explicit embedded Runge-Kutta (Cash-Karp 4(5)) with adaptive steps: the
// baseline that demonstrates *why* implicit integration is required — on
// stiff burns its step count explodes with the fastest timescale
// ("otherwise the whole system would be forced to march along at the
// smallest timescale", Section IV-B).
class RkIntegrator {
public:
    OdeStats integrate(OdeSystem& sys, std::vector<Real>& y, Real t0, Real t1,
                       const OdeOptions& opt = OdeOptions{});
};

} // namespace exa
