#pragma once

#include "microphysics/linalg.hpp"
#include "microphysics/ode.hpp"

namespace exa {

// All heap state of one BDF integration: Newton/Jacobian factorizations
// plus every scratch vector of the step loop. Callers that integrate many
// systems of the same size (the per-zone burn loops) hold one of these
// and pass it to every integrate() call, so the integrator allocates
// nothing after the first zone. A workspace is bound to one system
// *shape*: reuse it only across systems with the same size() and (when
// use_sparse is set) the same sparsity pattern — exactly the batched-burn
// case, where every zone integrates the same network.
struct BdfWorkspace {
    // Newton matrix machinery. When `batched_lu` is set (the batched burn
    // engine's contiguous slab), factorizations and solves go through slot
    // `batched_slot` of it instead of `dense_lu` — bit-identical
    // arithmetic, batched storage.
    DenseMatrix jac;
    DenseMatrix m; // I - gamma h J, rebuilt per refactor
    DenseLU dense_lu;
    SparseLU sparse_lu;
    BatchedDenseLU* batched_lu = nullptr;
    int batched_slot = 0;
    bool sparse_analyzed = false; // SparseLU::analyze done for this shape
    // Newton LU-reuse state (reset at every integrate() entry).
    bool lu_ready = false;
    Real h_at_factor = 0.0;

    // Step-loop scratch (contents are per-call; only capacity persists).
    std::vector<Real> y_nm1, y_nm2, f, c, y_new, y_pred, err;
    // newtonSolve scratch.
    std::vector<Real> nf, ng;

    void invalidate() { lu_ready = false; }
};

// VODE-style implicit integrator: variable-step BDF with a modified-Newton
// corrector, analytic Jacobians, Jacobian/LU reuse across steps, and
// weighted-RMS error control. This is the C++ replacement for the
// fixed-format Fortran VODE whose computed-goto constructs blocked the
// paper's first OpenACC porting attempts (Section III).
//
// Orders 1 and 2 are implemented (production VODE reaches 5); for the
// strongly stiff, accuracy-limited burns in this suite BDF2 + adaptive
// steps reproduces the cost structure that matters: one LU factor +
// O(N^2) back-substitutions per Newton iteration, with N = nspec + 1.
class BdfIntegrator {
public:
    // Advance y from t0 to t1 in place. `ws` (optional) supplies reusable
    // scratch; results are bit-identical with or without it.
    OdeStats integrate(OdeSystem& sys, std::vector<Real>& y, Real t0, Real t1,
                       const OdeOptions& opt = OdeOptions{},
                       BdfWorkspace* ws = nullptr);
};

// Explicit embedded Runge-Kutta (Cash-Karp 4(5)) with adaptive steps: the
// baseline that demonstrates *why* implicit integration is required — on
// stiff burns its step count explodes with the fastest timescale
// ("otherwise the whole system would be forced to march along at the
// smallest timescale", Section IV-B).
class RkIntegrator {
public:
    OdeStats integrate(OdeSystem& sys, std::vector<Real>& y, Real t0, Real t1,
                       const OdeOptions& opt = OdeOptions{});
};

} // namespace exa
