#pragma once

#include "core/real.hpp"

#include <cstdint>
#include <vector>

namespace exa {

// Small dense matrices for reaction-network Jacobians. The linear system
// in an implicit burn is (N+1)x(N+1) where N is the number of isotopes —
// the paper's "the size of the matrix ... is approximately N^2" cost
// discussion. Row-major storage.
class DenseMatrix {
public:
    DenseMatrix() = default;
    explicit DenseMatrix(int n) : m_n(n), m_a(static_cast<std::size_t>(n) * n, 0.0) {}

    int size() const { return m_n; }
    Real& operator()(int i, int j) { return m_a[static_cast<std::size_t>(i) * m_n + j]; }
    Real operator()(int i, int j) const {
        return m_a[static_cast<std::size_t>(i) * m_n + j];
    }
    void setZero() { std::fill(m_a.begin(), m_a.end(), 0.0); }

    // this = alpha * I + beta * this (forming the Newton matrix).
    void scaleAndAddIdentity(Real alpha, Real beta);

    const std::vector<Real>& data() const { return m_a; }

private:
    int m_n = 0;
    std::vector<Real> m_a;
};

// LU factorization with partial pivoting, factored in place. Returns
// false on (numerical) singularity. The input is copied into member
// storage (reusing its capacity), so repeated factorizations of
// same-sized matrices — the per-Newton-refactor pattern of the burn —
// allocate nothing after the first call.
class DenseLU {
public:
    bool factor(const DenseMatrix& a);
    void solve(std::vector<Real>& b) const;
    int size() const { return m_lu.size(); }

private:
    DenseMatrix m_lu;
    std::vector<int> m_piv;
};

// A batch of same-sized dense LU factorizations in one contiguous
// allocation: slot b occupies rows [b*n, (b+1)*n) of a single n x n x B
// block, the storage layout a batched GPU solver (cuBLAS getrfBatched)
// factors in lockstep. Arithmetic per slot is identical to DenseLU
// (partial pivoting, LINPACK trailing-column swaps), so results are
// bit-identical to the per-zone path — the property the batched burn's
// bit-identity guarantee rests on.
class BatchedDenseLU {
public:
    // Allocate B slots of n x n storage (values are overwritten by
    // factor; no zero-fill between reuses).
    void resize(int n, int nbatch);

    int size() const { return m_n; }
    int batchCount() const { return m_batch; }

    // Factor `a` into slot b. Returns false on numerical singularity.
    bool factor(int b, const DenseMatrix& a);
    // Solve slot b's system in place.
    void solve(int b, std::vector<Real>& x) const;

private:
    int m_n = 0;
    int m_batch = 0;
    std::vector<Real> m_lu;  // m_batch * m_n * m_n, slot-major
    std::vector<int> m_piv;  // m_batch * m_n
};

// Fixed-pattern sparse LU (no pivoting), the paper's future-work
// optimization implemented: "We know what the sparsity pattern is for
// each combination of isotopes, and that pattern does not change over
// time. This allows us to use an optimal sparse representation."
//
// The symbolic phase runs Gaussian elimination on the boolean pattern
// once, recording fill-in; every numeric factorization then touches only
// the recorded nonzeros. Results match DenseLU (without pivoting) to
// round-off; reaction-network Newton matrices I - h*gamma*J are strongly
// diagonally dominated by the identity, which is what makes no-pivoting
// safe in practice (and is why the production implementation can do the
// same).
class SparseLU {
public:
    // pattern[i*n+j] != 0 marks a structural nonzero of the matrix. A
    // degree-ascending symmetric permutation is applied before the
    // symbolic elimination so high-degree rows (he4 and T in an alpha
    // chain, which touch everything) are eliminated last, keeping fill-in
    // small.
    void analyze(int n, const std::vector<char>& pattern);

    bool factor(const DenseMatrix& a);
    void solve(std::vector<Real>& b) const;

    int size() const { return m_n; }
    // Structural nonzeros of the input pattern (before fill-in).
    std::int64_t numNonzeros() const { return m_raw_nnz; }
    // Nonzeros of the factorization (after symbolic fill-in).
    std::int64_t numFactorNonzeros() const { return m_nnz; }
    // Fraction of the dense matrix that is structurally zero (the paper
    // quotes ~40% empty for its 13-isotope network).
    double emptyFraction() const {
        return 1.0 - static_cast<double>(m_raw_nnz) / (static_cast<double>(m_n) * m_n);
    }
    // Floating-point work per factorization, for the ablation bench.
    std::int64_t factorOps() const { return m_factor_ops; }

private:
    int m_n = 0;
    std::int64_t m_nnz = 0;
    std::int64_t m_raw_nnz = 0;
    std::int64_t m_factor_ops = 0;
    // Fill-reducing symmetric permutation: internal index -> user index.
    std::vector<int> m_perm;
    // Pattern after symbolic fill-in, row-major; values stored densely
    // indexed but only pattern entries are read/written.
    std::vector<char> m_pattern;
    std::vector<Real> m_lu;
    // Permuted-solve scratch; a member so repeated solves (one per Newton
    // iteration per zone in a burn) do not allocate.
    mutable std::vector<Real> m_x;
    // For each pivot column k, the rows i>k with (i,k) nonzero.
    std::vector<std::vector<int>> m_rows_below;
    // For each row i, sorted nonzero columns (split at the diagonal).
    std::vector<std::vector<int>> m_cols_in_row;
};

} // namespace exa
