#include "microphysics/linalg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace exa {

void DenseMatrix::scaleAndAddIdentity(Real alpha, Real beta) {
    for (auto& v : m_a) v *= beta;
    for (int i = 0; i < m_n; ++i) (*this)(i, i) += alpha;
}

bool DenseLU::factor(const DenseMatrix& a) {
    const int n = a.size();
    m_lu = a; // copy-assign reuses capacity for same-sized refactors
    m_piv.resize(n);
    DenseMatrix& lu = m_lu;
    for (int k = 0; k < n; ++k) {
        // Partial pivoting.
        int p = k;
        Real big = std::abs(lu(k, k));
        for (int i = k + 1; i < n; ++i) {
            if (std::abs(lu(i, k)) > big) {
                big = std::abs(lu(i, k));
                p = i;
            }
        }
        if (big == 0.0) return false;
        m_piv[k] = p;
        // Swap only the trailing columns (LINPACK convention): the stored
        // multipliers stay with their original rows, and solve() applies
        // the interchanges interleaved with forward elimination.
        if (p != k) {
            for (int j = k; j < n; ++j) std::swap(lu(k, j), lu(p, j));
        }
        const Real inv = 1.0 / lu(k, k);
        for (int i = k + 1; i < n; ++i) {
            const Real l = lu(i, k) * inv;
            lu(i, k) = l;
            for (int j = k + 1; j < n; ++j) lu(i, j) -= l * lu(k, j);
        }
    }
    return true;
}

void DenseLU::solve(std::vector<Real>& b) const {
    const int n = m_lu.size();
    assert(static_cast<int>(b.size()) == n);
    for (int k = 0; k < n; ++k) {
        std::swap(b[k], b[m_piv[k]]);
        for (int i = k + 1; i < n; ++i) b[i] -= m_lu(i, k) * b[k];
    }
    for (int i = n - 1; i >= 0; --i) {
        for (int j = i + 1; j < n; ++j) b[i] -= m_lu(i, j) * b[j];
        b[i] /= m_lu(i, i);
    }
}

void BatchedDenseLU::resize(int n, int nbatch) {
    m_n = n;
    m_batch = nbatch;
    m_lu.resize(static_cast<std::size_t>(nbatch) * n * n);
    m_piv.resize(static_cast<std::size_t>(nbatch) * n);
}

bool BatchedDenseLU::factor(int b, const DenseMatrix& a) {
    const int n = m_n;
    assert(a.size() == n && b >= 0 && b < m_batch);
    Real* lu = m_lu.data() + static_cast<std::size_t>(b) * n * n;
    int* piv = m_piv.data() + static_cast<std::size_t>(b) * n;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) lu[i * n + j] = a(i, j);
    }
    // Same elimination as DenseLU::factor — keep the two in lockstep.
    for (int k = 0; k < n; ++k) {
        int p = k;
        Real big = std::abs(lu[k * n + k]);
        for (int i = k + 1; i < n; ++i) {
            if (std::abs(lu[i * n + k]) > big) {
                big = std::abs(lu[i * n + k]);
                p = i;
            }
        }
        if (big == 0.0) return false;
        piv[k] = p;
        if (p != k) {
            for (int j = k; j < n; ++j) std::swap(lu[k * n + j], lu[p * n + j]);
        }
        const Real inv = 1.0 / lu[k * n + k];
        for (int i = k + 1; i < n; ++i) {
            const Real l = lu[i * n + k] * inv;
            lu[i * n + k] = l;
            for (int j = k + 1; j < n; ++j) lu[i * n + j] -= l * lu[k * n + j];
        }
    }
    return true;
}

void BatchedDenseLU::solve(int b, std::vector<Real>& x) const {
    const int n = m_n;
    assert(static_cast<int>(x.size()) == n && b >= 0 && b < m_batch);
    const Real* lu = m_lu.data() + static_cast<std::size_t>(b) * n * n;
    const int* piv = m_piv.data() + static_cast<std::size_t>(b) * n;
    for (int k = 0; k < n; ++k) {
        std::swap(x[k], x[piv[k]]);
        for (int i = k + 1; i < n; ++i) x[i] -= lu[i * n + k] * x[k];
    }
    for (int i = n - 1; i >= 0; --i) {
        for (int j = i + 1; j < n; ++j) x[i] -= lu[i * n + j] * x[j];
        x[i] /= lu[i * n + i];
    }
}

void SparseLU::analyze(int n, const std::vector<char>& pattern) {
    assert(static_cast<int>(pattern.size()) == n * n);
    m_n = n;

    // Count raw nonzeros (with the mandatory diagonal).
    std::vector<char> raw = pattern;
    for (int i = 0; i < n; ++i) raw[static_cast<std::size_t>(i) * n + i] = 1;
    m_raw_nnz = 0;
    for (char c : raw) m_raw_nnz += (c != 0);

    // Fill-reducing ordering: eliminate low-degree rows first so the dense
    // rows (he4, temperature) come last and cause no cascading fill.
    std::vector<int> degree(n, 0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            degree[i] += (raw[static_cast<std::size_t>(i) * n + j] != 0) +
                         (raw[static_cast<std::size_t>(j) * n + i] != 0);
        }
    }
    m_perm.resize(n);
    for (int i = 0; i < n; ++i) m_perm[i] = i;
    std::stable_sort(m_perm.begin(), m_perm.end(),
                     [&](int a, int b) { return degree[a] < degree[b]; });

    // Permuted pattern B(i,j) = raw(perm[i], perm[j]).
    m_pattern.assign(static_cast<std::size_t>(n) * n, 0);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            m_pattern[static_cast<std::size_t>(i) * n + j] =
                raw[static_cast<std::size_t>(m_perm[i]) * n + m_perm[j]];
        }
    }
    // Symbolic Gaussian elimination: eliminating column k adds fill at
    // (i,j) whenever (i,k) and (k,j) are nonzero.
    for (int k = 0; k < n; ++k) {
        for (int i = k + 1; i < n; ++i) {
            if (!m_pattern[static_cast<std::size_t>(i) * n + k]) continue;
            for (int j = k + 1; j < n; ++j) {
                if (m_pattern[static_cast<std::size_t>(k) * n + j]) {
                    m_pattern[static_cast<std::size_t>(i) * n + j] = 1;
                }
            }
        }
    }
    m_nnz = 0;
    m_rows_below.assign(n, {});
    m_cols_in_row.assign(n, {});
    m_factor_ops = 0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            if (m_pattern[static_cast<std::size_t>(i) * n + j]) {
                ++m_nnz;
                m_cols_in_row[i].push_back(j);
            }
        }
    }
    for (int k = 0; k < n; ++k) {
        for (int i = k + 1; i < n; ++i) {
            if (m_pattern[static_cast<std::size_t>(i) * n + k]) {
                m_rows_below[k].push_back(i);
                // One divide plus a multiply-add per nonzero right of k.
                for (int j : m_cols_in_row[k]) {
                    if (j > k) ++m_factor_ops;
                }
                ++m_factor_ops;
            }
        }
    }
    m_lu.assign(static_cast<std::size_t>(n) * n, 0.0);
}

bool SparseLU::factor(const DenseMatrix& a) {
    const int n = m_n;
    assert(a.size() == n);
    // Load only pattern entries (values off-pattern must be zero),
    // applying the fill-reducing permutation.
    for (int i = 0; i < n; ++i) {
        for (int j : m_cols_in_row[i]) {
            m_lu[static_cast<std::size_t>(i) * n + j] = a(m_perm[i], m_perm[j]);
        }
    }
    for (int k = 0; k < n; ++k) {
        const Real piv = m_lu[static_cast<std::size_t>(k) * n + k];
        if (piv == 0.0) return false;
        const Real inv = 1.0 / piv;
        for (int i : m_rows_below[k]) {
            Real& lik = m_lu[static_cast<std::size_t>(i) * n + k];
            lik *= inv;
            const Real l = lik;
            for (int j : m_cols_in_row[k]) {
                if (j > k) {
                    m_lu[static_cast<std::size_t>(i) * n + j] -=
                        l * m_lu[static_cast<std::size_t>(k) * n + j];
                }
            }
        }
    }
    return true;
}

void SparseLU::solve(std::vector<Real>& b) const {
    const int n = m_n;
    assert(static_cast<int>(b.size()) == n);
    std::vector<Real>& x = m_x; // member scratch: no per-solve allocation
    x.resize(n);
    for (int i = 0; i < n; ++i) x[i] = b[m_perm[i]];
    for (int k = 0; k < n; ++k) {
        for (int i : m_rows_below[k]) {
            x[i] -= m_lu[static_cast<std::size_t>(i) * n + k] * x[k];
        }
    }
    for (int i = n - 1; i >= 0; --i) {
        for (int j : m_cols_in_row[i]) {
            if (j > i) x[i] -= m_lu[static_cast<std::size_t>(i) * n + j] * x[j];
        }
        x[i] /= m_lu[static_cast<std::size_t>(i) * n + i];
    }
    for (int i = 0; i < n; ++i) b[m_perm[i]] = x[i];
}

} // namespace exa
