#include "microphysics/bdf.hpp"

#include <algorithm>
#include <cmath>

namespace exa {

Real wrmsNorm(const std::vector<Real>& v, const std::vector<Real>& y, Real rtol,
              Real atol) {
    Real s = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        const Real w = 1.0 / (rtol * std::abs(y[i]) + atol);
        s += (v[i] * w) * (v[i] * w);
    }
    return std::sqrt(s / v.size());
}

void OdeSystem::jacobian(Real t, const std::vector<Real>& y, DenseMatrix& jac) {
    const int n = size();
    std::vector<Real> f0(n), f1(n), yp = y;
    rhs(t, y, f0);
    for (int j = 0; j < n; ++j) {
        const Real dy = std::max(std::abs(y[j]) * 1.0e-7, 1.0e-30);
        yp[j] = y[j] + dy;
        rhs(t, yp, f1);
        yp[j] = y[j];
        for (int i = 0; i < n; ++i) jac(i, j) = (f1[i] - f0[i]) / dy;
    }
}

std::vector<char> OdeSystem::sparsity() const {
    return std::vector<char>(static_cast<std::size_t>(size()) * size(), 1);
}

namespace {

// Newton solve for the BDF stage equation  y - gamma*h*f(t,y) = c.
// Returns true on convergence; updates y in place. All scratch lives in
// the caller-provided BdfWorkspace.
bool newtonSolve(OdeSystem& sys, std::vector<Real>& y, const std::vector<Real>& c,
                 Real t, Real h, Real gamma, const OdeOptions& opt,
                 BdfWorkspace& ws, OdeStats& stats) {
    const int n = sys.size();
    std::vector<Real>& f = ws.nf;
    std::vector<Real>& g = ws.ng;
    f.resize(n);
    g.resize(n);

    auto refactor = [&]() {
        if (ws.jac.size() != n) ws.jac = DenseMatrix(n);
        sys.jacobian(t, y, ws.jac);
        ++stats.jac_evals;
        ws.m = ws.jac; // capacity-reusing copy
        ws.m.scaleAndAddIdentity(1.0, -gamma * h); // M = I - gamma h J
        bool ok;
        if (opt.use_sparse) {
            ok = ws.sparse_lu.factor(ws.m);
        } else if (ws.batched_lu != nullptr) {
            ok = ws.batched_lu->factor(ws.batched_slot, ws.m);
        } else {
            ok = ws.dense_lu.factor(ws.m);
        }
        ++stats.lu_factors;
        ws.lu_ready = ok;
        ws.h_at_factor = h;
        return ok;
    };

    // Reuse the Jacobian/LU from previous steps unless h drifted.
    if (!ws.lu_ready || !opt.reuse_jacobian ||
        std::abs(h - ws.h_at_factor) > 0.2 * ws.h_at_factor) {
        if (!refactor()) return false;
    }

    Real prev_norm = -1.0;
    for (int it = 0; it < opt.max_newton; ++it) {
        ++stats.newton_iters;
        sys.rhs(t, y, f);
        ++stats.rhs_evals;
        for (int i = 0; i < n; ++i) g[i] = y[i] - gamma * h * f[i] - c[i];
        const Real gnorm = wrmsNorm(g, y, opt.rtol, opt.atol);
        // Solve M dy = -g.
        for (auto& v : g) v = -v;
        if (opt.use_sparse) {
            ws.sparse_lu.solve(g);
        } else if (ws.batched_lu != nullptr) {
            ws.batched_lu->solve(ws.batched_slot, g);
        } else {
            ws.dense_lu.solve(g);
        }
        Real dnorm = wrmsNorm(g, y, opt.rtol, opt.atol);
        for (int i = 0; i < n; ++i) y[i] += g[i];
        if (dnorm < 0.1 || gnorm < 0.01) return true;
        // Diverging with a stale Jacobian: refresh once and continue.
        if (prev_norm >= 0.0 && dnorm > 2.0 * prev_norm) {
            if (it < opt.max_newton - 1 && opt.reuse_jacobian) {
                if (!refactor()) return false;
            } else {
                return false;
            }
        }
        prev_norm = dnorm;
    }
    return false;
}

} // namespace

OdeStats BdfIntegrator::integrate(OdeSystem& sys, std::vector<Real>& y, Real t0,
                                  Real t1, const OdeOptions& opt, BdfWorkspace* wsp) {
    OdeStats stats;
    const int n = sys.size();
    if (t1 <= t0) {
        stats.success = true;
        return stats;
    }

    // Without a caller workspace, fall back to a local one: the original
    // allocate-per-call behavior, bit-identical results.
    BdfWorkspace local;
    BdfWorkspace& ws = wsp != nullptr ? *wsp : local;
    ws.lu_ready = false;
    ws.h_at_factor = 0.0;
    if (opt.use_sparse && (!ws.sparse_analyzed || ws.sparse_lu.size() != n)) {
        ws.sparse_lu.analyze(n, sys.sparsity());
        ws.sparse_analyzed = true;
    }

    // History: y at the most recent accepted times (for BDF2 and for the
    // quadratic extrapolation predictor used in error control). clear()
    // keeps capacity; emptiness doubles as the "no history yet" flag.
    std::vector<Real>& y_nm1 = ws.y_nm1; // y_{n-1}
    std::vector<Real>& y_nm2 = ws.y_nm2; // y_{n-2}
    y_nm1.clear();
    y_nm2.clear();
    Real h_old = 0.0;        // t_n - t_{n-1}
    Real h_old2 = 0.0;       // t_{n-1} - t_{n-2}
    int order = 1;
    int steps_at_order = 0;

    // Initial step size from the RHS scale.
    std::vector<Real>& f = ws.f;
    f.resize(n);
    sys.rhs(t0, y, f);
    ++stats.rhs_evals;
    Real h = opt.h_init;
    if (h <= 0.0) {
        const Real fn = wrmsNorm(f, y, opt.rtol, opt.atol);
        h = std::min(t1 - t0, 0.01 / std::max(fn, 1.0e-8 / (t1 - t0)));
    }

    Real t = t0;
    std::vector<Real>& c = ws.c;
    std::vector<Real>& y_new = ws.y_new;
    std::vector<Real>& y_pred = ws.y_pred;
    std::vector<Real>& err = ws.err;
    c.resize(n);
    y_new.resize(n);
    y_pred.resize(n);
    err.resize(n);

    while (t < t1 && stats.steps < opt.max_steps) {
        h = std::min(h, t1 - t);
        const bool have_hist = !y_nm1.empty() && h_old > 0.0;
        const int p = (order == 2 && have_hist) ? 2 : 1;

        // Stage equation y_new - gamma h f = c, and a predictor by
        // polynomial extrapolation of the history for the error estimate.
        Real gamma;
        if (p == 1) {
            gamma = 1.0;
            c = y;
            if (have_hist) {
                const Real r = h / h_old;
                for (int i = 0; i < n; ++i) {
                    y_pred[i] = y[i] + r * (y[i] - y_nm1[i]);
                }
            } else {
                y_pred = y;
            }
        } else {
            const Real r = h / h_old;
            gamma = (1.0 + r) / (1.0 + 2.0 * r);
            const Real a1 = (1.0 + r) * (1.0 + r) / (1.0 + 2.0 * r);
            const Real a2 = -r * r / (1.0 + 2.0 * r);
            for (int i = 0; i < n; ++i) c[i] = a1 * y[i] + a2 * y_nm1[i];
            if (!y_nm2.empty() && h_old2 > 0.0) {
                // Quadratic extrapolation through (t_{n-2}, t_{n-1}, t_n)
                // evaluated at t_n + h: an O(h^3)-accurate predictor, so
                // the predictor-corrector difference estimates the BDF2
                // truncation error at the right order.
                const Real t2 = -(h_old + h_old2);
                const Real t1 = -h_old;
                const Real L2 = (h - t1) * (h - 0.0) / ((t2 - t1) * t2);
                const Real L1 = (h - t2) * (h - 0.0) / ((t1 - t2) * t1);
                const Real L0 = (h - t2) * (h - t1) / (t2 * t1);
                for (int i = 0; i < n; ++i) {
                    y_pred[i] = L0 * y[i] + L1 * y_nm1[i] + L2 * y_nm2[i];
                }
            } else {
                for (int i = 0; i < n; ++i) y_pred[i] = y[i] + r * (y[i] - y_nm1[i]);
            }
        }

        y_new = y_pred; // warm start
        const bool converged =
            newtonSolve(sys, y_new, c, t + h, h, gamma, opt, ws, stats);
        if (!converged) {
            ++stats.rejected;
            h *= 0.25;
            ws.invalidate();
            order = 1;
            steps_at_order = 0;
            if (h < 1.0e-14 * (t1 - t0)) break; // hopeless
            continue;
        }

        // Error estimate from predictor-corrector difference.
        for (int i = 0; i < n; ++i) err[i] = y_new[i] - y_pred[i];
        const Real C = (p == 1) ? 0.5 : 0.25;
        const Real enorm = C * wrmsNorm(err, y_new, opt.rtol, opt.atol);

        if (enorm > 1.0 && have_hist) {
            ++stats.rejected;
            const Real shrink =
                std::clamp(0.9 * std::pow(enorm, -1.0 / (p + 1)), 0.1, 0.9);
            h *= shrink;
            if (p == 2) {
                order = 1;
                steps_at_order = 0;
            }
            continue;
        }

        // Accept.
        y_nm2 = y_nm1;
        h_old2 = h_old;
        y_nm1 = y;
        y = y_new;
        h_old = h;
        t += h;
        ++stats.steps;
        ++steps_at_order;
        if (order == 1 && steps_at_order >= 3) {
            order = 2;
            steps_at_order = 0;
        }
        const Real grow = std::clamp(
            0.9 * std::pow(std::max(enorm, 1.0e-10), -1.0 / (p + 1)), 0.5, 4.0);
        h *= grow;
    }

    stats.success = t >= t1;
    return stats;
}

OdeStats RkIntegrator::integrate(OdeSystem& sys, std::vector<Real>& y, Real t0,
                                 Real t1, const OdeOptions& opt) {
    OdeStats stats;
    const int n = sys.size();
    if (t1 <= t0) {
        stats.success = true;
        return stats;
    }

    // Cash-Karp 4(5) tableau.
    static const Real a2 = 0.2, a3 = 0.3, a4 = 0.6, a5 = 1.0, a6 = 0.875;
    static const Real b21 = 0.2;
    static const Real b31 = 3.0 / 40.0, b32 = 9.0 / 40.0;
    static const Real b41 = 0.3, b42 = -0.9, b43 = 1.2;
    static const Real b51 = -11.0 / 54.0, b52 = 2.5, b53 = -70.0 / 27.0,
                      b54 = 35.0 / 27.0;
    static const Real b61 = 1631.0 / 55296.0, b62 = 175.0 / 512.0,
                      b63 = 575.0 / 13824.0, b64 = 44275.0 / 110592.0,
                      b65 = 253.0 / 4096.0;
    static const Real c1 = 37.0 / 378.0, c3 = 250.0 / 621.0, c4 = 125.0 / 594.0,
                      c6 = 512.0 / 1771.0;
    static const Real d1 = c1 - 2825.0 / 27648.0, d3 = c3 - 18575.0 / 48384.0,
                      d4 = c4 - 13525.0 / 55296.0, d5 = -277.0 / 14336.0,
                      d6 = c6 - 0.25;

    std::vector<Real> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), yt(n), err(n),
        y_new(n);

    Real t = t0;
    Real h = opt.h_init > 0 ? opt.h_init : (t1 - t0) * 1.0e-6;
    while (t < t1 && stats.steps < opt.max_steps) {
        h = std::min(h, t1 - t);
        sys.rhs(t, y, k1);
        for (int i = 0; i < n; ++i) yt[i] = y[i] + h * b21 * k1[i];
        sys.rhs(t + a2 * h, yt, k2);
        for (int i = 0; i < n; ++i) yt[i] = y[i] + h * (b31 * k1[i] + b32 * k2[i]);
        sys.rhs(t + a3 * h, yt, k3);
        for (int i = 0; i < n; ++i)
            yt[i] = y[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
        sys.rhs(t + a4 * h, yt, k4);
        for (int i = 0; i < n; ++i)
            yt[i] = y[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
        sys.rhs(t + a5 * h, yt, k5);
        for (int i = 0; i < n; ++i)
            yt[i] = y[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] +
                                b64 * k4[i] + b65 * k5[i]);
        sys.rhs(t + a6 * h, yt, k6);
        stats.rhs_evals += 6;

        for (int i = 0; i < n; ++i) {
            y_new[i] = y[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c6 * k6[i]);
            err[i] = h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i] +
                          d6 * k6[i]);
        }
        const Real enorm = wrmsNorm(err, y_new, opt.rtol, opt.atol);
        if (enorm <= 1.0) {
            t += h;
            y = y_new;
            ++stats.steps;
            h *= std::clamp(0.9 * std::pow(std::max(enorm, 1.0e-12), -0.2), 0.5, 5.0);
        } else {
            ++stats.rejected;
            h *= std::clamp(0.9 * std::pow(enorm, -0.25), 0.1, 0.9);
            if (h < 1.0e-16 * (t1 - t0)) break;
        }
    }
    stats.success = t >= t1;
    return stats;
}

} // namespace exa
