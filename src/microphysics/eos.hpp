#pragma once

#include "core/real.hpp"

namespace exa {

// Thermodynamic state of one zone. Composition enters through the mean
// ion mass abar = (sum X_i/A_i)^-1 and electron fraction ye = zbar/abar,
// which the caller computes from the network's species.
struct EosState {
    Real rho = 0.0;  // density [g/cm^3]
    Real T = 0.0;    // temperature [K]
    Real p = 0.0;    // pressure [erg/cm^3]
    Real e = 0.0;    // specific internal energy [erg/g]
    Real cs = 0.0;   // adiabatic sound speed [cm/s]
    Real gamma1 = 0.0; // first adiabatic exponent
    Real cv = 0.0;   // specific heat at constant volume [erg/g/K]
    Real dpdr = 0.0; // (dp/drho)_T
    Real dpdT = 0.0; // (dp/dT)_rho
    Real abar = 1.0; // mean ion mass number
    Real ye = 0.5;   // electron fraction
};

// Simple ideal-gas EOS with constant gamma: p = (gamma-1) rho e. Used for
// the Sedov benchmark, exactly as LULESH-class hydro benchmarks do.
struct GammaLawEos {
    Real gamma = 1.4;

    void rhoT(EosState& s) const; // inputs rho, T -> e, p, cs, ...
    void rhoE(EosState& s) const; // inputs rho, e -> T, p, cs, ...
    void rhoP(EosState& s) const; // inputs rho, p -> T, e, cs, ...
};

// "Helmholtz-lite": the white-dwarf-matter EOS — zero-temperature
// relativistic degenerate electrons (exact Chandrasekhar closed form) +
// ideal ions + radiation. This substitutes for the tabulated Helmholtz
// EOS of the production Microphysics: it preserves the properties the
// paper's science result depends on — degeneracy pressure supporting the
// star almost independent of T ("this type of matter does not expand much
// when heated ... so the heat from nuclear reactions easily gets trapped
// and causes even more energy release"), with thermal pressure a small
// ion/radiation correction.
struct HelmLiteEos {
    void rhoT(EosState& s) const;
    void rhoE(EosState& s) const; // Newton on T
    void rhoP(EosState& s) const; // Newton on T

    // Degenerate-electron-only pieces (x = relativity parameter).
    static Real xOf(Real rho, Real ye);
    static Real pDegenerate(Real rho, Real ye);
    static Real eDegenerate(Real rho, Real ye); // specific energy
    static Real dpDegDrho(Real rho, Real ye);
};

// Forward declaration (defined below).
class Eos;

// Invert p(rho) at fixed T and composition by Newton iteration (uses the
// analytic (dp/drho)_T). Shared by the hydrostatic-model builders.
Real rhoFromPT(const Eos& eos, Real p_target, Real T, Real abar, Real ye,
               Real rho_guess);

// Runtime-dispatched EOS handle so application code can switch between
// the two without templates.
class Eos {
public:
    enum class Kind { GammaLaw, HelmLite };

    Eos() : m_kind(Kind::GammaLaw) {}
    explicit Eos(GammaLawEos g) : m_kind(Kind::GammaLaw), m_gamma(g) {}
    explicit Eos(HelmLiteEos h) : m_kind(Kind::HelmLite), m_helm(h) {}

    Kind kind() const { return m_kind; }

    void rhoT(EosState& s) const {
        m_kind == Kind::GammaLaw ? m_gamma.rhoT(s) : m_helm.rhoT(s);
    }
    void rhoE(EosState& s) const {
        m_kind == Kind::GammaLaw ? m_gamma.rhoE(s) : m_helm.rhoE(s);
    }
    void rhoP(EosState& s) const {
        m_kind == Kind::GammaLaw ? m_gamma.rhoP(s) : m_helm.rhoP(s);
    }

private:
    Kind m_kind;
    GammaLawEos m_gamma{};
    HelmLiteEos m_helm{};
};

} // namespace exa
