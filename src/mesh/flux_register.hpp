#pragma once

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"

#include <array>

namespace exa {

// The coarse/fine flux mismatch accumulator of subcycled AMR (mirrors
// amrex::FluxRegister, simplified to the cell-centered uniform-ratio case
// this framework uses).
//
// A coarse zone adjacent to a coarse/fine boundary advances with the flux
// its own level computed at that face, while the covered region advances
// with the (finer, substepped) fluxes of the fine level. Conservation
// requires the coarse zone to have seen the time-and-area average of the
// fine fluxes instead. The register accumulates, per coarse face of the
// coarse/fine interface,
//
//   delta_Phi = sum_stages(-w_s * dt_c * F_crse)
//             + sum_substeps sum_stages(+w_s * dt_f * <F_fine>_area)
//
// (w_s = the RK stage weights, <.>_area = the mean over the ratio^2 fine
// faces under one coarse face), i.e. dt_c * (<F_fine>_{t,A} - F_crse).
// Reflux() then corrects every uncovered coarse zone adjacent to the
// interface by -+ delta_Phi / dx, restoring global conservation to
// round-off.
//
// Storage: one MultiFab per dimension whose "boxes" are the face boxes of
// the coarsened fine BoxArray (one register fab per fine box, owned by the
// fine box's rank, so registers migrate with their level under the
// Rebalancer). Faces interior to the fine union carry values too, but
// Reflux touches only boundary planes and masks zones covered by the
// (coarsened) fine level, so they never act.
class FluxRegister {
public:
    FluxRegister() = default;

    // Register for the interface between a fine level (ba, dm) and the
    // coarse level below it. `ncomp` is the state component count; the
    // contents start at zero.
    void define(const BoxArray& fine_ba, const DistributionMapping& fine_dm,
                int ratio, int ncomp);
    void clear();
    bool isDefined() const { return m_ncomp > 0; }

    int ratio() const { return m_ratio; }
    int nComp() const { return m_ncomp; }
    // The fine BoxArray in coarse index space (the reflux mask).
    const BoxArray& crseBoxArray() const { return m_cba; }

    void setVal(Real v);

    // Coarse side: accumulate scale * (coarse face fluxes) on every
    // register face. `crse_flux[d]` holds the coarse level's face fluxes
    // for dimension d, one fab per coarse box on surroundingFaces(box, d)
    // (the layout molRhs's `fluxes` out-param produces). Call once per RK
    // stage with scale = -(stage weight) * dt_crse.
    void CrseAdd(const std::array<MultiFab, 3>& crse_flux, Real scale);

    // Fine side: accumulate scale * (area-mean of the fine face fluxes
    // under each coarse register face). `fine_flux[d]` is the fine
    // level's face-flux MultiFab (same fab indexing as the fine BoxArray
    // the register was defined with). Call once per RK stage of every
    // substep with scale = +(stage weight) * dt_fine.
    void FineAdd(const std::array<MultiFab, 3>& fine_flux, Real scale);

    // Apply the accumulated correction to `crse`: for each register face
    // on the boundary of a (coarsened) fine box, the adjacent outside
    // coarse zone gets -+ delta_Phi / dx_d (minus on the low side of the
    // fine box, plus on the high side). Zones covered by the fine level
    // are skipped; zones beyond a periodic domain edge wrap; zones beyond
    // a non-periodic edge are dropped (the domain boundary owns them).
    void Reflux(MultiFab& crse, const Geometry& crse_geom) const;

    // Register payload for dimension d (snapshot capture, diagnostics).
    MultiFab& mf(int d) { return m_reg[d]; }
    const MultiFab& mf(int d) const { return m_reg[d]; }

    // Sum of |delta_Phi| over every register face of every dimension and
    // component — a scalar "how much conservation was at stake" probe for
    // tests and the subcycling bench.
    Real absSum() const;

private:
    BoxArray m_cba;                // coarsened fine boxes (zone space)
    std::array<MultiFab, 3> m_reg; // face-box fabs, one per fine box
    int m_ratio = 0;
    int m_ncomp = 0;
};

// Face-flux scratch for one level: per dimension, a MultiFab whose fab i
// covers surroundingFaces(ba[i], d) — the layout molRhs fills through its
// `fluxes` out-param and both register sides consume.
std::array<MultiFab, 3> makeFluxFabs(const BoxArray& ba,
                                     const DistributionMapping& dm, int ncomp);

} // namespace exa
