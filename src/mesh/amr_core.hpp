#pragma once

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"
#include "mesh/tagging.hpp"

#include <vector>

namespace exa {

// Parameters controlling the AMR hierarchy (mirrors amrex::AmrInfo).
struct AmrInfo {
    int max_level = 0;        // finest allowed level
    int ref_ratio = 2;        // refinement ratio between adjacent levels
    int blocking_factor = 8;  // box side quantum on each level
    int max_grid_size = 32;   // max box side on each level
    int n_error_buf = 1;      // zones to buffer around tagged zones
    // Proper-nesting buffer: fine grids must stay this many parent-level
    // zones inside the parent union (where the parent does not cover its
    // whole domain), so the zone outside every coarse/fine face exists on
    // the parent — refluxing corrects it, ghost interpolation reads it.
    int n_proper = 1;
    int nranks = 1;           // simulated ranks for distribution mappings
    DistributionMapping::Strategy strategy = DistributionMapping::Strategy::Sfc;
};

// The AMR driver skeleton, mirroring amrex::AmrCore: owns the geometry,
// BoxArray, and DistributionMapping of every level and runs the regrid
// cycle (ErrorEst -> cluster -> proper nesting -> RemakeLevel). Physics
// codes (Castro-mini, MAESTRO-mini) subclass it and manage their own state
// MultiFabs in the virtual hooks.
class AmrCore {
public:
    AmrCore(const Geometry& level0_geom, const AmrInfo& info);
    virtual ~AmrCore() = default;

    int maxLevel() const { return m_info.max_level; }
    int finestLevel() const { return m_finest_level; }
    int refRatio() const { return m_info.ref_ratio; }
    const AmrInfo& info() const { return m_info; }

    const Geometry& geom(int lev) const { return m_geom[lev]; }
    const BoxArray& boxArray(int lev) const { return m_ba[lev]; }
    const DistributionMapping& distributionMap(int lev) const { return m_dm[lev]; }

    // Build level 0 grids and call MakeNewLevelFromScratch(0).
    void initBaseLevel();

    // Re-tag and rebuild levels `lbase`+1 .. max_level. New levels are
    // created with MakeNewLevelFromCoarse; changed levels are rebuilt with
    // RemakeLevel; vanished levels are cleared with ClearLevel.
    void regrid(int lbase);

    // Total zones on a level and the fraction of the domain it covers —
    // the quantity behind the paper's "stars occupy 0.5% of the volume"
    // AMR cost argument.
    std::int64_t numZones(int lev) const { return m_ba[lev].numPts(); }
    double coveredFraction(int lev) const;

protected:
    // Restore path (resilience): a checkpoint may hold a different number
    // of levels than the live hierarchy; drivers rebuilding themselves on
    // checkpoint grids reset the level count here before remaking levels.
    void setFinestLevel(int lev) { m_finest_level = lev; }

    // --- hooks implemented by the application ---------------------------
    // Fill level `lev` state from scratch on the given grids.
    virtual void MakeNewLevelFromScratch(int lev, const BoxArray& ba,
                                         const DistributionMapping& dm) = 0;
    // Create level `lev` state by interpolating from level lev-1.
    virtual void MakeNewLevelFromCoarse(int lev, const BoxArray& ba,
                                        const DistributionMapping& dm) = 0;
    // Rebuild level `lev` state on new grids, copying where the old and
    // new grids overlap and interpolating elsewhere.
    virtual void RemakeLevel(int lev, const BoxArray& ba,
                             const DistributionMapping& dm) = 0;
    // Delete level `lev` state.
    virtual void ClearLevel(int lev) = 0;
    // Set tags(i,j,k) != 0 wherever level `lev` needs refinement.
    virtual void ErrorEst(int lev, MultiFab& tags) = 0;

    std::vector<Geometry> m_geom;
    std::vector<BoxArray> m_ba;
    std::vector<DistributionMapping> m_dm;

private:
    // Boxes for level lev+1 from the tags of level lev, properly nested.
    BoxArray makeFineBoxes(int lev);

    AmrInfo m_info;
    int m_finest_level = 0;
};

} // namespace exa
