#include "mesh/box_array.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace exa {

// --- spatial hash index --------------------------------------------------
//
// Boxes are binned into a lattice whose bin extent (per dimension) is the
// largest box extent in the array, so every box lands in at most 2^3 bins
// and a ghost-sized query touches a handful of bins. Bin coordinates are
// biased and packed into one 64-bit key.
struct BoxArray::HashIndex {
    IntVect bin{1, 1, 1}; // bin extent per dimension
    IntVect origin{0, 0, 0};
    IntVect bmin{0, 0, 0}, bmax{-1, -1, -1}; // populated bin-coordinate range
    std::unordered_map<std::uint64_t, std::vector<int>> bins;

    static std::uint64_t key(int bx, int by, int bz) {
        auto enc = [](int v) {
            return static_cast<std::uint64_t>(v + (1 << 20)) & 0x1fffff;
        };
        return enc(bx) | (enc(by) << 21) | (enc(bz) << 42);
    }
    IntVect binOf(const IntVect& p) const {
        return {coarsen_index(p.x - origin.x, bin.x),
                coarsen_index(p.y - origin.y, bin.y),
                coarsen_index(p.z - origin.z, bin.z)};
    }
};

const BoxArray::HashIndex& BoxArray::index() const {
    if (!m_index) {
        auto idx = std::make_shared<HashIndex>();
        for (const Box& b : m_boxes) {
            if (!b.ok()) continue;
            idx->bin = max(idx->bin, b.size());
            idx->origin = min(idx->origin, b.smallEnd());
        }
        bool first = true;
        for (std::size_t i = 0; i < m_boxes.size(); ++i) {
            const Box& b = m_boxes[i];
            if (!b.ok()) continue;
            const IntVect lo = idx->binOf(b.smallEnd());
            const IntVect hi = idx->binOf(b.bigEnd());
            if (first) {
                idx->bmin = lo;
                idx->bmax = hi;
                first = false;
            } else {
                idx->bmin = min(idx->bmin, lo);
                idx->bmax = max(idx->bmax, hi);
            }
            for (int z = lo.z; z <= hi.z; ++z)
                for (int y = lo.y; y <= hi.y; ++y)
                    for (int x = lo.x; x <= hi.x; ++x)
                        idx->bins[HashIndex::key(x, y, z)].push_back(
                            static_cast<int>(i));
        }
        m_index = std::move(idx);
    }
    return *m_index;
}

std::uint64_t BoxArray::nextId() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}

void BoxArray::mutated() {
    m_id = nextId();
    m_index.reset();
}

BoxArray& BoxArray::maxSize(const IntVect& max_size) {
    std::vector<Box> out;
    for (const auto& b : m_boxes) {
        auto pieces = chopDomain(b, max_size);
        out.insert(out.end(), pieces.begin(), pieces.end());
    }
    m_boxes = std::move(out);
    mutated();
    return *this;
}

std::int64_t BoxArray::numPts() const {
    std::int64_t n = 0;
    for (const auto& b : m_boxes) n += b.numPts();
    return n;
}

Box BoxArray::minimalBox() const {
    if (m_boxes.empty()) return Box{};
    IntVect lo = m_boxes.front().smallEnd();
    IntVect hi = m_boxes.front().bigEnd();
    for (const auto& b : m_boxes) {
        lo = min(lo, b.smallEnd());
        hi = max(hi, b.bigEnd());
    }
    return Box(lo, hi);
}

BoxArray& BoxArray::refine(int ratio) {
    for (auto& b : m_boxes) b.refine(ratio);
    mutated();
    return *this;
}

BoxArray& BoxArray::coarsen(int ratio) {
    for (auto& b : m_boxes) b.coarsen(ratio);
    mutated();
    return *this;
}

bool BoxArray::contains(const Box& bx) const {
    if (!bx.ok()) return true;
    // Subtract each overlapping box from the still-uncovered fragments of
    // bx. Correct for overlapping arrays (e.g. after join), unlike a
    // coverage-zone count, which double-counts overlapped zones.
    std::vector<Box> uncovered{bx};
    std::vector<Box> next;
    for (const auto& [i, isect] : intersections(bx)) {
        (void)i;
        next.clear();
        for (const Box& u : uncovered) {
            auto diff = boxDiff(u, isect);
            next.insert(next.end(), diff.begin(), diff.end());
        }
        uncovered.swap(next);
        if (uncovered.empty()) return true;
    }
    return uncovered.empty();
}

bool BoxArray::intersects(const Box& bx) const {
    if (!bx.ok() || m_boxes.empty()) return false;
    const HashIndex& idx = index();
    const IntVect qlo = max(idx.binOf(bx.smallEnd()), idx.bmin);
    const IntVect qhi = min(idx.binOf(bx.bigEnd()), idx.bmax);
    for (int z = qlo.z; z <= qhi.z; ++z)
        for (int y = qlo.y; y <= qhi.y; ++y)
            for (int x = qlo.x; x <= qhi.x; ++x) {
                auto it = idx.bins.find(HashIndex::key(x, y, z));
                if (it == idx.bins.end()) continue;
                for (int i : it->second) {
                    if (m_boxes[i].intersects(bx)) return true;
                }
            }
    return false;
}

std::vector<std::pair<int, Box>> BoxArray::intersections(const Box& bx) const {
    std::vector<std::pair<int, Box>> out;
    if (!bx.ok() || m_boxes.empty()) return out;
    const HashIndex& idx = index();
    const IntVect qlo = max(idx.binOf(bx.smallEnd()), idx.bmin);
    const IntVect qhi = min(idx.binOf(bx.bigEnd()), idx.bmax);
    std::vector<int> cand;
    for (int z = qlo.z; z <= qhi.z; ++z)
        for (int y = qlo.y; y <= qhi.y; ++y)
            for (int x = qlo.x; x <= qhi.x; ++x) {
                auto it = idx.bins.find(HashIndex::key(x, y, z));
                if (it == idx.bins.end()) continue;
                cand.insert(cand.end(), it->second.begin(), it->second.end());
            }
    // A box can sit in several queried bins; dedupe and restore the linear
    // scan's ascending-index order so callers see identical results.
    std::sort(cand.begin(), cand.end());
    cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    for (int i : cand) {
        Box isect = m_boxes[i] & bx;
        if (isect.ok()) out.emplace_back(i, isect);
    }
    return out;
}

bool BoxArray::isDisjoint() const {
    for (std::size_t i = 0; i < m_boxes.size(); ++i) {
        if (!m_boxes[i].ok()) continue;
        for (const auto& [j, isect] : intersections(m_boxes[i])) {
            (void)isect;
            if (static_cast<std::size_t>(j) != i) return false;
        }
    }
    return true;
}

void BoxArray::join(const BoxArray& other) {
    m_boxes.insert(m_boxes.end(), other.m_boxes.begin(), other.m_boxes.end());
    mutated();
}

} // namespace exa
