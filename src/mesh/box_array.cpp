#include "mesh/box_array.hpp"

#include <algorithm>

namespace exa {

BoxArray& BoxArray::maxSize(const IntVect& max_size) {
    std::vector<Box> out;
    for (const auto& b : m_boxes) {
        auto pieces = chopDomain(b, max_size);
        out.insert(out.end(), pieces.begin(), pieces.end());
    }
    m_boxes = std::move(out);
    return *this;
}

std::int64_t BoxArray::numPts() const {
    std::int64_t n = 0;
    for (const auto& b : m_boxes) n += b.numPts();
    return n;
}

Box BoxArray::minimalBox() const {
    if (m_boxes.empty()) return Box{};
    IntVect lo = m_boxes.front().smallEnd();
    IntVect hi = m_boxes.front().bigEnd();
    for (const auto& b : m_boxes) {
        lo = min(lo, b.smallEnd());
        hi = max(hi, b.bigEnd());
    }
    return Box(lo, hi);
}

BoxArray& BoxArray::refine(int ratio) {
    for (auto& b : m_boxes) b.refine(ratio);
    return *this;
}

BoxArray& BoxArray::coarsen(int ratio) {
    for (auto& b : m_boxes) b.coarsen(ratio);
    return *this;
}

bool BoxArray::contains(const Box& bx) const {
    if (!bx.ok()) return true;
    // bx is covered iff the intersection zone count equals |bx|; valid
    // because our boxes are disjoint.
    std::int64_t covered = 0;
    for (const auto& b : m_boxes) covered += (b & bx).numPts();
    return covered >= bx.numPts();
}

bool BoxArray::intersects(const Box& bx) const {
    return std::any_of(m_boxes.begin(), m_boxes.end(),
                       [&](const Box& b) { return b.intersects(bx); });
}

std::vector<std::pair<int, Box>> BoxArray::intersections(const Box& bx) const {
    std::vector<std::pair<int, Box>> out;
    for (std::size_t i = 0; i < m_boxes.size(); ++i) {
        Box isect = m_boxes[i] & bx;
        if (isect.ok()) out.emplace_back(static_cast<int>(i), isect);
    }
    return out;
}

bool BoxArray::isDisjoint() const {
    for (std::size_t i = 0; i < m_boxes.size(); ++i) {
        for (std::size_t j = i + 1; j < m_boxes.size(); ++j) {
            if (m_boxes[i].intersects(m_boxes[j])) return false;
        }
    }
    return true;
}

void BoxArray::join(const BoxArray& other) {
    m_boxes.insert(m_boxes.end(), other.m_boxes.begin(), other.m_boxes.end());
}

} // namespace exa
