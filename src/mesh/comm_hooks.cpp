#include "mesh/comm_hooks.hpp"

namespace exa {

namespace {
MessageHook g_hook;
HaloHook g_halo_hook;
RebalanceHook g_rebalance_hook;
ResilienceHook g_resilience_hook;
MgHook g_mg_hook;
}

void CommHooks::setMessageHook(MessageHook h) { g_hook = std::move(h); }
void CommHooks::clearMessageHook() { g_hook = nullptr; }
void CommHooks::notify(const MessageRecord& r) {
    if (g_hook) g_hook(r);
}
bool CommHooks::active() { return static_cast<bool>(g_hook); }

void CommHooks::setHaloHook(HaloHook h) { g_halo_hook = std::move(h); }
void CommHooks::clearHaloHook() { g_halo_hook = nullptr; }
void CommHooks::notifyHalo(const HaloEvent& e) {
    if (g_halo_hook) g_halo_hook(e);
}
bool CommHooks::haloActive() { return static_cast<bool>(g_halo_hook); }

void CommHooks::setRebalanceHook(RebalanceHook h) {
    g_rebalance_hook = std::move(h);
}
void CommHooks::clearRebalanceHook() { g_rebalance_hook = nullptr; }
void CommHooks::notifyRebalance(const RebalanceEvent& e) {
    if (g_rebalance_hook) g_rebalance_hook(e);
}
bool CommHooks::rebalanceActive() {
    return static_cast<bool>(g_rebalance_hook);
}

void CommHooks::setResilienceHook(ResilienceHook h) {
    g_resilience_hook = std::move(h);
}
void CommHooks::clearResilienceHook() { g_resilience_hook = nullptr; }
void CommHooks::notifyResilience(const ResilienceEvent& e) {
    if (g_resilience_hook) g_resilience_hook(e);
}
bool CommHooks::resilienceActive() {
    return static_cast<bool>(g_resilience_hook);
}

void CommHooks::setMgHook(MgHook h) { g_mg_hook = std::move(h); }
void CommHooks::clearMgHook() { g_mg_hook = nullptr; }
void CommHooks::notifyMg(const MgEvent& e) {
    if (g_mg_hook) g_mg_hook(e);
}
bool CommHooks::mgActive() { return static_cast<bool>(g_mg_hook); }

} // namespace exa
