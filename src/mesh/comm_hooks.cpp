#include "mesh/comm_hooks.hpp"

namespace exa {

namespace {
MessageHook g_hook;
}

void CommHooks::setMessageHook(MessageHook h) { g_hook = std::move(h); }
void CommHooks::clearMessageHook() { g_hook = nullptr; }
void CommHooks::notify(const MessageRecord& r) {
    if (g_hook) g_hook(r);
}
bool CommHooks::active() { return static_cast<bool>(g_hook); }

} // namespace exa
