// Split-phase halo exchange: the implementation behind
// comm::HaloHandle and the MultiFab _nowait entry points.
//
// Post stages every plan item's source region into a pack buffer on the
// destination fab's stream (the payload is captured before the caller
// overwrites anything, exactly as an MPI_Isend would have serialized
// it); finish() unpacks the buffers in exact plan-item order and runs
// the per-item delivery tail (fault injection + CommHooks message
// records) through the same MultiFab helper the fused path uses, so the
// two paths are bit-identical in data, accounting, and fault-schedule
// consumption.
//
// This file lives in exastro_mesh (not exastro_comm) because the comm
// library links against the mesh library, not the other way round; the
// handle's declaration stays in src/comm/halo_handle.hpp.

#include "comm/halo_handle.hpp"

#include "core/debug.hpp"
#include "core/executor.hpp"
#include "core/fault.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"
#include "mesh/multifab.hpp"

#include <cassert>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace exa {
namespace comm {

namespace {
bool g_async_halo = true;
}

void setAsyncHalo(bool enabled) { g_async_halo = enabled; }
bool asyncHalo() { return g_async_halo; }

struct HaloHandle::Impl {
    std::shared_ptr<const CopyPlan> plan;
    MultiFab* dst = nullptr;
    int dcomp = 0;
    int ncomp = 0;
    const char* tag = "";
    // One pack buffer per plan item, filled at post time.
    std::vector<FArrayBox> staged;
    bool finished = false;

    std::int64_t offrankBytes() const {
        return plan->offrank_zones * ncomp * static_cast<std::int64_t>(sizeof(Real));
    }
};

HaloHandle::HaloHandle() = default;

HaloHandle::HaloHandle(std::unique_ptr<Impl> impl) : m_impl(std::move(impl)) {}

HaloHandle::HaloHandle(HaloHandle&&) noexcept = default;
HaloHandle& HaloHandle::operator=(HaloHandle&&) noexcept = default;

bool HaloHandle::pending() const { return m_impl && !m_impl->finished; }

void HaloHandle::finish() {
    if (!m_impl) return; // empty or eagerly-completed handle: nothing staged
    Impl& im = *m_impl;
    if (im.finished) {
        if (ExecConfig::backend() == Backend::Debug) {
            debug::reportViolation("HaloHandle", "halo-double-finish",
                                   std::string("finish() called twice for tag '") +
                                       im.tag + "'");
        }
        return;
    }
    const bool account = CommHooks::active();
    {
        StreamScope streams;
        for (std::size_t i = 0; i < im.plan->items.size(); ++i) {
            const CopyItem& item = im.plan->items[i];
            // Injection site: same dropped-message semantics as the fused
            // copyFromPlan path — an off-rank payload never arrives.
            if (!item.local() &&
                fault::shouldFire(fault::Site::CommMessageDrop)) {
                continue;
            }
            streams.useFab(static_cast<std::size_t>(item.dst_fab));
            im.dst->fab(item.dst_fab).copyFrom(im.staged[i], item.src_box, 0,
                                               item.dst_box, im.dcomp, im.ncomp);
            im.dst->deliverItemTail(item, im.dcomp, im.ncomp, account, im.tag);
        }
    }
    im.staged.clear();
    im.finished = true;
    if (CommHooks::haloActive()) {
        CommHooks::notifyHalo({HaloPhase::Finished, im.tag,
                               static_cast<std::int64_t>(im.plan->items.size()),
                               im.offrankBytes()});
    }
}

HaloHandle::~HaloHandle() {
    if (m_impl && !m_impl->finished) {
        // RAII safety net: the exchange still completes, but letting a
        // handle die pending forfeits the overlap the caller posted it
        // for — under the verification backend that is a diagnosed
        // contract violation, like a forgotten cudaStreamSynchronize.
        // A handle unwound by an in-flight exception is the safety net
        // doing its job (the step will be rolled back or rethrown), not
        // a forgotten finish, so only the normal path is flagged.
        if (ExecConfig::backend() == Backend::Debug &&
            std::uncaught_exceptions() == 0) {
            debug::reportViolation("HaloHandle", "halo-unfinished",
                                   std::string("handle destroyed before finish() "
                                               "for tag '") +
                                       m_impl->tag + "'");
        }
        finish();
    }
}

} // namespace comm

namespace {

// Stage every plan item's source region into its own pack buffer, on the
// destination fab's stream (matching the stream the fused path would use
// for the delivery copy).
void packItems(std::vector<FArrayBox>& staged, const CopyPlan& plan,
               const MultiFab& src, int scomp, int ncomp) {
    staged.reserve(plan.items.size());
    StreamScope streams;
    for (const CopyItem& item : plan.items) {
        streams.useFab(static_cast<std::size_t>(item.dst_fab));
        FArrayBox buf(item.src_box, ncomp);
        buf.copyFrom(src.fab(item.src_fab), item.src_box, scomp, item.src_box, 0,
                     ncomp);
        staged.push_back(std::move(buf));
    }
}

} // namespace

comm::HaloHandle MultiFab::FillBoundary_nowait(int scomp, int ncomp,
                                               const Periodicity& period) {
    assert(scomp + ncomp <= m_ncomp);
    if (!comm::asyncHalo() || m_fabs.empty()) {
        FillBoundary(scomp, ncomp, period);
        return comm::HaloHandle{};
    }
    auto impl = std::make_unique<comm::HaloHandle::Impl>();
    impl->plan = CopierCache::instance().fillBoundary(m_ba, m_dm, m_ngrow, period);
    impl->dst = this;
    impl->dcomp = scomp; // FillBoundary exchanges in place: dcomp == scomp
    impl->ncomp = ncomp;
    impl->tag = "fillboundary";
    packItems(impl->staged, *impl->plan, *this, scomp, ncomp);
    if (CommHooks::haloActive()) {
        CommHooks::notifyHalo({HaloPhase::Posted, impl->tag,
                               static_cast<std::int64_t>(impl->plan->items.size()),
                               impl->offrankBytes()});
    }
    return comm::HaloHandle(std::move(impl));
}

comm::HaloHandle MultiFab::ParallelCopy_nowait(const MultiFab& src, int scomp,
                                               int dcomp, int ncomp, int dst_ng,
                                               const Periodicity& period) {
    assert(dst_ng <= m_ngrow);
    if (!comm::asyncHalo() || m_fabs.empty() || src.m_fabs.empty()) {
        ParallelCopy(src, scomp, dcomp, ncomp, dst_ng, period);
        return comm::HaloHandle{};
    }
    auto impl = std::make_unique<comm::HaloHandle::Impl>();
    impl->plan = CopierCache::instance().parallelCopy(m_ba, m_dm, src.m_ba,
                                                      src.m_dm, dst_ng, period);
    impl->dst = this;
    impl->dcomp = dcomp;
    impl->ncomp = ncomp;
    impl->tag = "parallelcopy";
    packItems(impl->staged, *impl->plan, src, scomp, ncomp);
    if (CommHooks::haloActive()) {
        CommHooks::notifyHalo({HaloPhase::Posted, impl->tag,
                               static_cast<std::int64_t>(impl->plan->items.size()),
                               impl->offrankBytes()});
    }
    return comm::HaloHandle(std::move(impl));
}

} // namespace exa
