#include "mesh/tagging.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace exa {

std::vector<Box> TagCluster::cluster(const MultiFab& tags, const Box& domain) const {
    std::vector<IntVect> tagged;
    for (std::size_t i = 0; i < tags.size(); ++i) {
        auto a = tags.const_array(static_cast<int>(i));
        const Box& b = tags.box(static_cast<int>(i));
        for (int k = b.smallEnd(2); k <= b.bigEnd(2); ++k)
            for (int j = b.smallEnd(1); j <= b.bigEnd(1); ++j)
                for (int ii = b.smallEnd(0); ii <= b.bigEnd(0); ++ii)
                    if (a(ii, j, k) != 0.0) tagged.push_back({ii, j, k});
    }
    return cluster(tagged, domain);
}

std::vector<Box> TagCluster::cluster(const std::vector<IntVect>& tagged,
                                     const Box& domain) const {
    // Snap tagged zones onto the blocking grid; duplicates collapse.
    std::set<std::array<int, 3>> blocks;
    for (const IntVect& p : tagged) {
        blocks.insert({coarsen_index(p.x, m_blocking), coarsen_index(p.y, m_blocking),
                       coarsen_index(p.z, m_blocking)});
    }
    std::vector<IntVect> bl;
    bl.reserve(blocks.size());
    for (const auto& b : blocks) bl.push_back({b[0], b[1], b[2]});
    return mergeBlocks(std::move(bl), domain);
}

std::vector<Box> TagCluster::mergeBlocks(std::vector<IntVect> blocks,
                                         const Box& domain) const {
    // Greedy rectangular merge: runs along x, then merge runs with equal
    // x-extent along y, then merge slabs with equal xy-extent along z.
    std::sort(blocks.begin(), blocks.end(), [](const IntVect& a, const IntVect& b) {
        return std::array{a.z, a.y, a.x} < std::array{b.z, b.y, b.x};
    });

    struct Run {
        int x0, x1, y, z;
    };
    std::vector<Run> runs;
    for (std::size_t i = 0; i < blocks.size();) {
        std::size_t j = i;
        while (j + 1 < blocks.size() && blocks[j + 1].z == blocks[i].z &&
               blocks[j + 1].y == blocks[i].y && blocks[j + 1].x == blocks[j].x + 1) {
            ++j;
        }
        runs.push_back({blocks[i].x, blocks[j].x, blocks[i].y, blocks[i].z});
        i = j + 1;
    }

    struct Slab {
        int x0, x1, y0, y1, z;
    };
    std::vector<Slab> slabs;
    std::vector<bool> used(runs.size(), false);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (used[i]) continue;
        Slab s{runs[i].x0, runs[i].x1, runs[i].y, runs[i].y, runs[i].z};
        for (std::size_t j = i + 1; j < runs.size(); ++j) {
            if (!used[j] && runs[j].z == s.z && runs[j].y == s.y1 + 1 &&
                runs[j].x0 == s.x0 && runs[j].x1 == s.x1) {
                s.y1 = runs[j].y;
                used[j] = true;
            }
        }
        slabs.push_back(s);
    }

    std::vector<Box> out;
    std::vector<bool> sused(slabs.size(), false);
    for (std::size_t i = 0; i < slabs.size(); ++i) {
        if (sused[i]) continue;
        Slab s = slabs[i];
        int z1 = s.z;
        for (std::size_t j = i + 1; j < slabs.size(); ++j) {
            if (!sused[j] && slabs[j].z == z1 + 1 && slabs[j].x0 == s.x0 &&
                slabs[j].x1 == s.x1 && slabs[j].y0 == s.y0 && slabs[j].y1 == s.y1) {
                z1 = slabs[j].z;
                sused[j] = true;
            }
        }
        Box b(IntVect{s.x0 * m_blocking, s.y0 * m_blocking, s.z * m_blocking},
              IntVect{(s.x1 + 1) * m_blocking - 1, (s.y1 + 1) * m_blocking - 1,
                      (z1 + 1) * m_blocking - 1});
        Box clipped = b & domain;
        if (clipped.ok()) out.push_back(clipped);
    }
    return out;
}

} // namespace exa
