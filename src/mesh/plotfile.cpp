#include "mesh/plotfile.hpp"

#include "core/crc32.hpp"
#include "core/fault.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace exa {

namespace fs = std::filesystem;

namespace {

// Remove the staging directory on scope exit unless release()d — keeps
// failed writes from leaving "<dir>.tmp" litter behind a thrown error.
class TmpDirGuard {
public:
    explicit TmpDirGuard(std::string path) : m_path(std::move(path)) {}
    ~TmpDirGuard() {
        if (!m_path.empty()) {
            std::error_code ec;
            fs::remove_all(m_path, ec);
        }
    }
    void release() { m_path.clear(); }

private:
    std::string m_path;
};

std::string fabPath(const std::string& dir, int lev, std::size_t f) {
    return dir + "/Level_" + std::to_string(lev) + "/fab_" + std::to_string(f) +
           ".bin";
}

} // namespace

StagedLevel stageLevel(const MultiFab& mf, const Geometry& geom) {
    StagedLevel out;
    out.ncomp = mf.nComp();
    out.domain_len[0] = geom.domain().length(0);
    out.domain_len[1] = geom.domain().length(1);
    out.domain_len[2] = geom.domain().length(2);
    out.fabs.resize(mf.size());
    for (std::size_t f = 0; f < mf.size(); ++f) {
        // Valid-region payload: the "copy to CPU memory" — ghost zones are
        // never persisted. Plain loops in FArrayBox order (i fastest, then
        // j, k, component) so the buffer is byte-identical to the
        // FArrayBox copy the pre-refactor writer persisted.
        const Box& vb = mf.box(static_cast<int>(f));
        auto a = mf.const_array(static_cast<int>(f));
        StagedFab& sf = out.fabs[f];
        sf.box = vb;
        sf.data.resize(static_cast<std::size_t>(vb.numPts()) * out.ncomp);
        std::size_t idx = 0;
        for (int n = 0; n < out.ncomp; ++n)
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                        sf.data[idx++] = a(i, j, k, n);
    }
    return out;
}

std::int64_t writeStagedPlotfile(const std::string& dir,
                                 const std::vector<StagedLevel>& levels,
                                 const std::vector<std::string>& varnames,
                                 Real time, int step) {
    if (levels.empty()) {
        throw std::invalid_argument("writeStagedPlotfile: no levels");
    }
    // Stage everything under <dir>.tmp, rename into place only when every
    // byte has been written and verified good.
    const std::string tmp = dir + ".tmp";
    std::error_code ec;
    fs::remove_all(tmp, ec);
    if (!fs::create_directories(tmp)) {
        throw std::runtime_error("writePlotfile: cannot create " + tmp);
    }
    TmpDirGuard cleanup(tmp);

    std::int64_t bytes = 0;
    // The header is accumulated in memory so its own checksum can be
    // appended at the end; fab payloads are written (and checksummed) as
    // they stream out.
    std::ostringstream hdr;
    hdr << "ExaStroPlotfile-2\n";
    hdr << levels.size() << ' ' << levels[0].ncomp << '\n';
    hdr.precision(17);
    hdr << time << ' ' << step << '\n';
    for (const auto& v : varnames) hdr << v << '\n';

    for (std::size_t lev = 0; lev < levels.size(); ++lev) {
        const StagedLevel& sl = levels[lev];
        const std::string ldir = tmp + "/Level_" + std::to_string(lev);
        if (!fs::create_directories(ldir)) {
            throw std::runtime_error("writePlotfile: cannot create " + ldir);
        }
        hdr << sl.fabs.size() << ' ' << sl.domain_len[0] << ' '
            << sl.domain_len[1] << ' ' << sl.domain_len[2] << '\n';
        for (std::size_t f = 0; f < sl.fabs.size(); ++f) {
            const Box& vb = sl.fabs[f].box;
            const std::int64_t nbytes =
                static_cast<std::int64_t>(sl.fabs[f].data.size() * sizeof(Real));
            const std::uint32_t crc =
                crc32(sl.fabs[f].data.data(), static_cast<std::size_t>(nbytes));

            const std::string path =
                fabPath(tmp, static_cast<int>(lev), f);
            {
                std::ofstream bin(path, std::ios::binary);
                if (!bin) {
                    throw std::runtime_error("writePlotfile: cannot open " + path);
                }
                bin.write(reinterpret_cast<const char*>(sl.fabs[f].data.data()),
                          nbytes);
                bin.flush();
                if (!bin) {
                    throw std::runtime_error("writePlotfile: write failed for " +
                                             path);
                }
            }
            // Injection site: silent media corruption after a successful
            // write — one bit of the persisted payload flips, which restart
            // must catch via the CRC recorded above. (shouldFire is
            // mutex-protected, so this is safe from the drain thread.)
            if (fault::shouldFire(fault::Site::CheckpointBitFlip)) {
                std::fstream fix(path,
                                 std::ios::binary | std::ios::in | std::ios::out);
                char c = 0;
                fix.read(&c, 1);
                c = static_cast<char>(c ^ 0x10);
                fix.seekp(0);
                fix.write(&c, 1);
            }

            hdr << vb.smallEnd(0) << ' ' << vb.smallEnd(1) << ' ' << vb.smallEnd(2)
                << ' ' << vb.bigEnd(0) << ' ' << vb.bigEnd(1) << ' ' << vb.bigEnd(2)
                << ' ' << nbytes << ' ' << crc << '\n';
            bytes += nbytes;
        }
    }

    const std::string header_body = hdr.str();
    {
        std::ofstream out(tmp + "/Header");
        if (!out) throw std::runtime_error("writePlotfile: cannot open Header");
        out << header_body;
        out << "headercrc "
            << crc32(header_body.data(), header_body.size()) << '\n';
        out.flush();
        if (!out) throw std::runtime_error("writePlotfile: Header write failed");
    }

    // Atomic publish: drop any previous checkpoint of this name, then
    // rename the fully-written staging directory into place.
    fs::remove_all(dir, ec);
    fs::rename(tmp, dir, ec);
    if (ec) {
        throw std::runtime_error("writePlotfile: rename " + tmp + " -> " + dir +
                                 " failed: " + ec.message());
    }
    cleanup.release();
    return bytes;
}

std::int64_t writePlotfile(const std::string& dir,
                           const std::vector<const MultiFab*>& state,
                           const std::vector<Geometry>& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step) {
    if (state.empty() || state.size() != geom.size()) {
        throw std::invalid_argument("writePlotfile: level count mismatch");
    }
    std::vector<StagedLevel> levels;
    levels.reserve(state.size());
    for (std::size_t lev = 0; lev < state.size(); ++lev) {
        levels.push_back(stageLevel(*state[lev], geom[lev]));
    }
    return writeStagedPlotfile(dir, levels, varnames, time, step);
}

std::int64_t writePlotfile(const std::string& dir, const MultiFab& state,
                           const Geometry& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step) {
    return writePlotfile(dir, std::vector<const MultiFab*>{&state}, {geom},
                         varnames, time, step);
}

PlotfileHeader readPlotfileHeader(const std::string& dir) {
    std::ifstream in(dir + "/Header", std::ios::binary);
    if (!in) throw std::runtime_error("readPlotfileHeader: no Header in " + dir);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();

    PlotfileHeader out;
    std::string body = content;
    // v2 headers end with "headercrc <crc>\n" checksumming everything
    // before that line; verify before trusting any field.
    const std::size_t tag = content.rfind("headercrc ");
    if (tag != std::string::npos &&
        (tag == 0 || content[tag - 1] == '\n')) {
        std::istringstream tail(content.substr(tag));
        std::string word;
        std::uint32_t stored = 0;
        tail >> word >> stored;
        if (!tail) {
            throw std::runtime_error("readPlotfileHeader: bad headercrc line in " +
                                     dir);
        }
        const std::uint32_t actual = crc32(content.data(), tag);
        if (actual != stored) {
            std::ostringstream os;
            os << "readPlotfileHeader: header checksum mismatch in " << dir
               << " (stored " << stored << ", computed " << actual << ")";
            throw std::runtime_error(os.str());
        }
        body = content.substr(0, tag);
    }

    std::istringstream hdr(body);
    std::string magic;
    hdr >> magic;
    if (magic == "ExaStroPlotfile-2") {
        out.version = 2;
        if (tag == std::string::npos) {
            throw std::runtime_error(
                "readPlotfileHeader: v2 header missing its headercrc line in " +
                dir + " (truncated write?)");
        }
    } else if (magic == "ExaStroPlotfile-1") {
        out.version = 1;
    } else {
        throw std::runtime_error("readPlotfileHeader: bad magic " + magic);
    }

    hdr >> out.nlevels >> out.ncomp >> out.time >> out.step;
    out.varnames.resize(out.ncomp);
    for (auto& v : out.varnames) hdr >> v;
    out.boxes.resize(out.nlevels);
    out.fab_bytes.resize(out.nlevels);
    out.fab_crc.resize(out.nlevels);
    for (int lev = 0; lev < out.nlevels; ++lev) {
        std::size_t nfabs;
        int nx, ny, nz;
        hdr >> nfabs >> nx >> ny >> nz;
        out.boxes[lev].resize(nfabs);
        out.fab_bytes[lev].assign(nfabs, -1);
        out.fab_crc[lev].assign(nfabs, 0);
        for (std::size_t f = 0; f < nfabs; ++f) {
            IntVect lo, hi;
            hdr >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z;
            out.boxes[lev][f] = Box(lo, hi);
            if (out.version >= 2) {
                hdr >> out.fab_bytes[lev][f] >> out.fab_crc[lev][f];
            }
        }
    }
    if (!hdr) {
        throw std::runtime_error("readPlotfileHeader: truncated header in " + dir);
    }
    return out;
}

namespace {

// Read and verify one payload against a parsed header; the staged box is
// the header's box for (lev, f). Throws a message of the form
// "fab <f> of level <lev> (<path>): <why>" — readPlotfileLevel and
// verifyPlotfile both reuse these fragments verbatim.
StagedFab readVerifiedFab(const std::string& dir, const PlotfileHeader& h,
                          int lev, int f, int ncomp) {
    const std::string path = fabPath(dir, lev, static_cast<std::size_t>(f));
    auto fabError = [&](const std::string& why) {
        std::ostringstream os;
        os << "fab " << f << " of level " << lev << " (" << path << "): " << why;
        return std::runtime_error(os.str());
    };
    const Box& vb = h.boxes[lev][static_cast<std::size_t>(f)];
    const std::int64_t nbytes =
        vb.numPts() * ncomp * static_cast<std::int64_t>(sizeof(Real));
    if (h.version >= 2 && h.fab_bytes[lev][static_cast<std::size_t>(f)] != nbytes) {
        std::ostringstream os;
        os << "payload size mismatch (header says "
           << h.fab_bytes[lev][static_cast<std::size_t>(f)]
           << " bytes, state needs " << nbytes << ")";
        throw fabError(os.str());
    }
    StagedFab out;
    out.box = vb;
    out.data.resize(static_cast<std::size_t>(vb.numPts()) * ncomp);
    std::ifstream bin(path, std::ios::binary);
    if (!bin) throw fabError("missing fab file");
    bin.read(reinterpret_cast<char*>(out.data.data()), nbytes);
    if (bin.gcount() != nbytes) {
        std::ostringstream os;
        os << "short read (" << bin.gcount() << " of " << nbytes << " bytes)";
        throw fabError(os.str());
    }
    if (h.version >= 2) {
        const std::uint32_t actual =
            crc32(out.data.data(), static_cast<std::size_t>(nbytes));
        if (actual != h.fab_crc[lev][static_cast<std::size_t>(f)]) {
            std::ostringstream os;
            os << "checksum mismatch (stored "
               << h.fab_crc[lev][static_cast<std::size_t>(f)] << ", computed "
               << actual << ") — corrupted payload";
            throw fabError(os.str());
        }
    }
    return out;
}

} // namespace

StagedFab readPlotfileFab(const std::string& dir, const PlotfileHeader& h,
                          int lev, int f) {
    if (lev >= h.nlevels) {
        throw std::runtime_error("readPlotfileFab: no such level");
    }
    if (f < 0 || static_cast<std::size_t>(f) >= h.boxes[lev].size()) {
        throw std::runtime_error("readPlotfileFab: no such fab");
    }
    try {
        return readVerifiedFab(dir, h, lev, f, h.ncomp);
    } catch (const std::runtime_error& e) {
        throw std::runtime_error(std::string("readPlotfileFab: ") + e.what());
    }
}

void applyStagedFab(MultiFab& state, int f, const StagedFab& staged) {
    const Box& vb = state.box(f);
    if (!(vb == staged.box)) {
        throw std::runtime_error("applyStagedFab: box mismatch");
    }
    auto a = state.array(f);
    const int ncomp = state.nComp();
    std::size_t idx = 0;
    for (int n = 0; n < ncomp; ++n)
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i)
                    a(i, j, k, n) = staged.data[idx++];
}

std::int64_t readPlotfileLevel(const std::string& dir, int lev, MultiFab& state) {
    const PlotfileHeader h = readPlotfileHeader(dir);
    if (lev >= h.nlevels) throw std::runtime_error("readPlotfileLevel: no such level");
    if (h.boxes[lev].size() != state.size()) {
        throw std::runtime_error("readPlotfileLevel: BoxArray mismatch");
    }
    // Two passes: read + verify everything first, apply only if every fab
    // is good. The error names ALL damaged fabs, so a caller can decide
    // between per-fab restore (readPlotfileFab on the bad ones) and full
    // rollback — and `state` is never left half-restored.
    std::int64_t bytes = 0;
    std::vector<StagedFab> staged(state.size());
    std::vector<std::string> problems;
    for (std::size_t f = 0; f < state.size(); ++f) {
        const Box& vb = state.box(static_cast<int>(f));
        if (!(vb == h.boxes[lev][f])) {
            std::ostringstream os;
            os << "fab " << f << " of level " << lev << " ("
               << fabPath(dir, lev, f) << "): box mismatch";
            problems.push_back(os.str());
            continue;
        }
        try {
            staged[f] = readVerifiedFab(dir, h, lev, static_cast<int>(f),
                                        state.nComp());
            bytes += static_cast<std::int64_t>(staged[f].data.size() *
                                               sizeof(Real));
        } catch (const std::runtime_error& e) {
            problems.push_back(e.what());
        }
    }
    if (!problems.empty()) {
        std::ostringstream os;
        os << "readPlotfileLevel: " << problems.size()
           << " damaged fab(s) in " << dir << ":";
        for (const std::string& p : problems) os << "\n  " << p;
        throw std::runtime_error(os.str());
    }
    for (std::size_t f = 0; f < state.size(); ++f) {
        applyStagedFab(state, static_cast<int>(f), staged[f]);
    }
    return bytes;
}

std::vector<FabIssue> verifyPlotfile(const std::string& dir) {
    const PlotfileHeader h = readPlotfileHeader(dir);
    std::vector<FabIssue> issues;
    for (int lev = 0; lev < h.nlevels; ++lev) {
        for (std::size_t f = 0; f < h.boxes[lev].size(); ++f) {
            try {
                (void)readVerifiedFab(dir, h, lev, static_cast<int>(f), h.ncomp);
            } catch (const std::runtime_error& e) {
                issues.push_back(FabIssue{lev, static_cast<int>(f), e.what()});
            }
        }
    }
    return issues;
}

} // namespace exa
