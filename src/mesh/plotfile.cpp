#include "mesh/plotfile.hpp"

#include "core/crc32.hpp"
#include "core/fault.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace exa {

namespace fs = std::filesystem;

namespace {

// Remove the staging directory on scope exit unless release()d — keeps
// failed writes from leaving "<dir>.tmp" litter behind a thrown error.
class TmpDirGuard {
public:
    explicit TmpDirGuard(std::string path) : m_path(std::move(path)) {}
    ~TmpDirGuard() {
        if (!m_path.empty()) {
            std::error_code ec;
            fs::remove_all(m_path, ec);
        }
    }
    void release() { m_path.clear(); }

private:
    std::string m_path;
};

std::string fabPath(const std::string& dir, int lev, std::size_t f) {
    return dir + "/Level_" + std::to_string(lev) + "/fab_" + std::to_string(f) +
           ".bin";
}

} // namespace

std::int64_t writePlotfile(const std::string& dir,
                           const std::vector<const MultiFab*>& state,
                           const std::vector<Geometry>& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step) {
    if (state.empty() || state.size() != geom.size()) {
        throw std::invalid_argument("writePlotfile: level count mismatch");
    }
    // Stage everything under <dir>.tmp, rename into place only when every
    // byte has been written and verified good.
    const std::string tmp = dir + ".tmp";
    std::error_code ec;
    fs::remove_all(tmp, ec);
    if (!fs::create_directories(tmp)) {
        throw std::runtime_error("writePlotfile: cannot create " + tmp);
    }
    TmpDirGuard cleanup(tmp);

    std::int64_t bytes = 0;
    // The header is accumulated in memory so its own checksum can be
    // appended at the end; fab payloads are written (and checksummed) as
    // they stream out.
    std::ostringstream hdr;
    hdr << "ExaStroPlotfile-2\n";
    hdr << state.size() << ' ' << state[0]->nComp() << '\n';
    hdr.precision(17);
    hdr << time << ' ' << step << '\n';
    for (const auto& v : varnames) hdr << v << '\n';

    for (std::size_t lev = 0; lev < state.size(); ++lev) {
        const MultiFab& mf = *state[lev];
        const Geometry& g = geom[lev];
        const std::string ldir = tmp + "/Level_" + std::to_string(lev);
        if (!fs::create_directories(ldir)) {
            throw std::runtime_error("writePlotfile: cannot create " + ldir);
        }
        hdr << mf.size() << ' ' << g.domain().length(0) << ' '
            << g.domain().length(1) << ' ' << g.domain().length(2) << '\n';
        for (std::size_t f = 0; f < mf.size(); ++f) {
            // Valid-region payload: the "copy to CPU memory" — ghost zones
            // are never persisted.
            const Box& vb = mf.box(static_cast<int>(f));
            FArrayBox host_copy(vb, mf.nComp());
            host_copy.copyFrom(mf.fab(static_cast<int>(f)), vb, 0, vb, 0,
                               mf.nComp());
            const std::int64_t nbytes =
                vb.numPts() * mf.nComp() * static_cast<std::int64_t>(sizeof(Real));
            const std::uint32_t crc =
                crc32(host_copy.dataPtr(), static_cast<std::size_t>(nbytes));

            const std::string path =
                fabPath(tmp, static_cast<int>(lev), f);
            {
                std::ofstream bin(path, std::ios::binary);
                if (!bin) {
                    throw std::runtime_error("writePlotfile: cannot open " + path);
                }
                bin.write(reinterpret_cast<const char*>(host_copy.dataPtr()),
                          nbytes);
                bin.flush();
                if (!bin) {
                    throw std::runtime_error("writePlotfile: write failed for " +
                                             path);
                }
            }
            // Injection site: silent media corruption after a successful
            // write — one bit of the persisted payload flips, which restart
            // must catch via the CRC recorded above.
            if (fault::shouldFire(fault::Site::CheckpointBitFlip)) {
                std::fstream fix(path,
                                 std::ios::binary | std::ios::in | std::ios::out);
                char c = 0;
                fix.read(&c, 1);
                c = static_cast<char>(c ^ 0x10);
                fix.seekp(0);
                fix.write(&c, 1);
            }

            hdr << vb.smallEnd(0) << ' ' << vb.smallEnd(1) << ' ' << vb.smallEnd(2)
                << ' ' << vb.bigEnd(0) << ' ' << vb.bigEnd(1) << ' ' << vb.bigEnd(2)
                << ' ' << nbytes << ' ' << crc << '\n';
            bytes += nbytes;
        }
    }

    const std::string header_body = hdr.str();
    {
        std::ofstream out(tmp + "/Header");
        if (!out) throw std::runtime_error("writePlotfile: cannot open Header");
        out << header_body;
        out << "headercrc "
            << crc32(header_body.data(), header_body.size()) << '\n';
        out.flush();
        if (!out) throw std::runtime_error("writePlotfile: Header write failed");
    }

    // Atomic publish: drop any previous checkpoint of this name, then
    // rename the fully-written staging directory into place.
    fs::remove_all(dir, ec);
    fs::rename(tmp, dir, ec);
    if (ec) {
        throw std::runtime_error("writePlotfile: rename " + tmp + " -> " + dir +
                                 " failed: " + ec.message());
    }
    cleanup.release();
    return bytes;
}

std::int64_t writePlotfile(const std::string& dir, const MultiFab& state,
                           const Geometry& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step) {
    return writePlotfile(dir, std::vector<const MultiFab*>{&state}, {geom},
                         varnames, time, step);
}

PlotfileHeader readPlotfileHeader(const std::string& dir) {
    std::ifstream in(dir + "/Header", std::ios::binary);
    if (!in) throw std::runtime_error("readPlotfileHeader: no Header in " + dir);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();

    PlotfileHeader out;
    std::string body = content;
    // v2 headers end with "headercrc <crc>\n" checksumming everything
    // before that line; verify before trusting any field.
    const std::size_t tag = content.rfind("headercrc ");
    if (tag != std::string::npos &&
        (tag == 0 || content[tag - 1] == '\n')) {
        std::istringstream tail(content.substr(tag));
        std::string word;
        std::uint32_t stored = 0;
        tail >> word >> stored;
        if (!tail) {
            throw std::runtime_error("readPlotfileHeader: bad headercrc line in " +
                                     dir);
        }
        const std::uint32_t actual = crc32(content.data(), tag);
        if (actual != stored) {
            std::ostringstream os;
            os << "readPlotfileHeader: header checksum mismatch in " << dir
               << " (stored " << stored << ", computed " << actual << ")";
            throw std::runtime_error(os.str());
        }
        body = content.substr(0, tag);
    }

    std::istringstream hdr(body);
    std::string magic;
    hdr >> magic;
    if (magic == "ExaStroPlotfile-2") {
        out.version = 2;
        if (tag == std::string::npos) {
            throw std::runtime_error(
                "readPlotfileHeader: v2 header missing its headercrc line in " +
                dir + " (truncated write?)");
        }
    } else if (magic == "ExaStroPlotfile-1") {
        out.version = 1;
    } else {
        throw std::runtime_error("readPlotfileHeader: bad magic " + magic);
    }

    hdr >> out.nlevels >> out.ncomp >> out.time >> out.step;
    out.varnames.resize(out.ncomp);
    for (auto& v : out.varnames) hdr >> v;
    out.boxes.resize(out.nlevels);
    out.fab_bytes.resize(out.nlevels);
    out.fab_crc.resize(out.nlevels);
    for (int lev = 0; lev < out.nlevels; ++lev) {
        std::size_t nfabs;
        int nx, ny, nz;
        hdr >> nfabs >> nx >> ny >> nz;
        out.boxes[lev].resize(nfabs);
        out.fab_bytes[lev].assign(nfabs, -1);
        out.fab_crc[lev].assign(nfabs, 0);
        for (std::size_t f = 0; f < nfabs; ++f) {
            IntVect lo, hi;
            hdr >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z;
            out.boxes[lev][f] = Box(lo, hi);
            if (out.version >= 2) {
                hdr >> out.fab_bytes[lev][f] >> out.fab_crc[lev][f];
            }
        }
    }
    if (!hdr) {
        throw std::runtime_error("readPlotfileHeader: truncated header in " + dir);
    }
    return out;
}

std::int64_t readPlotfileLevel(const std::string& dir, int lev, MultiFab& state) {
    const PlotfileHeader h = readPlotfileHeader(dir);
    if (lev >= h.nlevels) throw std::runtime_error("readPlotfileLevel: no such level");
    if (h.boxes[lev].size() != state.size()) {
        throw std::runtime_error("readPlotfileLevel: BoxArray mismatch");
    }
    std::int64_t bytes = 0;
    for (std::size_t f = 0; f < state.size(); ++f) {
        const Box& vb = state.box(static_cast<int>(f));
        const std::string path = fabPath(dir, lev, f);
        auto fabError = [&](const std::string& why) {
            std::ostringstream os;
            os << "readPlotfileLevel: fab " << f << " of level " << lev << " ("
               << path << "): " << why;
            return std::runtime_error(os.str());
        };
        if (!(vb == h.boxes[lev][f])) throw fabError("box mismatch");
        const std::int64_t nbytes =
            vb.numPts() * state.nComp() * static_cast<std::int64_t>(sizeof(Real));
        if (h.version >= 2 && h.fab_bytes[lev][f] != nbytes) {
            std::ostringstream os;
            os << "payload size mismatch (header says " << h.fab_bytes[lev][f]
               << " bytes, state needs " << nbytes << ")";
            throw fabError(os.str());
        }
        FArrayBox host(vb, state.nComp());
        std::ifstream bin(path, std::ios::binary);
        if (!bin) throw fabError("missing fab file");
        bin.read(reinterpret_cast<char*>(host.dataPtr()), nbytes);
        if (bin.gcount() != nbytes) {
            std::ostringstream os;
            os << "short read (" << bin.gcount() << " of " << nbytes << " bytes)";
            throw fabError(os.str());
        }
        if (h.version >= 2) {
            const std::uint32_t actual =
                crc32(host.dataPtr(), static_cast<std::size_t>(nbytes));
            if (actual != h.fab_crc[lev][f]) {
                std::ostringstream os;
                os << "checksum mismatch (stored " << h.fab_crc[lev][f]
                   << ", computed " << actual << ") — corrupted payload";
                throw fabError(os.str());
            }
        }
        state.fab(static_cast<int>(f)).copyFrom(host, vb, 0, vb, 0, state.nComp());
        bytes += nbytes;
    }
    return bytes;
}

} // namespace exa
