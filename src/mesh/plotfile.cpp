#include "mesh/plotfile.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace exa {

namespace fs = std::filesystem;

std::int64_t writePlotfile(const std::string& dir,
                           const std::vector<const MultiFab*>& state,
                           const std::vector<Geometry>& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step) {
    if (state.empty() || state.size() != geom.size()) {
        throw std::invalid_argument("writePlotfile: level count mismatch");
    }
    fs::create_directories(dir);
    std::int64_t bytes = 0;

    std::ofstream hdr(dir + "/Header");
    hdr << "ExaStroPlotfile-1\n";
    hdr << state.size() << ' ' << state[0]->nComp() << '\n';
    hdr.precision(17);
    hdr << time << ' ' << step << '\n';
    for (const auto& v : varnames) hdr << v << '\n';

    for (std::size_t lev = 0; lev < state.size(); ++lev) {
        const MultiFab& mf = *state[lev];
        const Geometry& g = geom[lev];
        const std::string ldir = dir + "/Level_" + std::to_string(lev);
        fs::create_directories(ldir);
        hdr << mf.size() << ' ' << g.domain().length(0) << ' '
            << g.domain().length(1) << ' ' << g.domain().length(2) << '\n';
        for (std::size_t f = 0; f < mf.size(); ++f) {
            const Box& b = mf.box(static_cast<int>(f));
            hdr << b.smallEnd(0) << ' ' << b.smallEnd(1) << ' ' << b.smallEnd(2)
                << ' ' << b.bigEnd(0) << ' ' << b.bigEnd(1) << ' ' << b.bigEnd(2)
                << '\n';
            // Valid-region payload: the "copy to CPU memory" — ghost zones
            // are never persisted.
            const Box& vb = mf.box(static_cast<int>(f));
            FArrayBox host_copy(vb, mf.nComp());
            host_copy.copyFrom(mf.fab(static_cast<int>(f)), vb, 0, vb, 0,
                               mf.nComp());
            const std::int64_t nbytes =
                vb.numPts() * mf.nComp() * static_cast<std::int64_t>(sizeof(Real));
            std::ofstream bin(ldir + "/fab_" + std::to_string(f) + ".bin",
                              std::ios::binary);
            bin.write(reinterpret_cast<const char*>(host_copy.dataPtr()), nbytes);
            bytes += nbytes;
        }
    }
    return bytes;
}

std::int64_t writePlotfile(const std::string& dir, const MultiFab& state,
                           const Geometry& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step) {
    return writePlotfile(dir, std::vector<const MultiFab*>{&state}, {geom},
                         varnames, time, step);
}

PlotfileHeader readPlotfileHeader(const std::string& dir) {
    std::ifstream hdr(dir + "/Header");
    if (!hdr) throw std::runtime_error("readPlotfileHeader: no Header in " + dir);
    PlotfileHeader out;
    std::string magic;
    hdr >> magic;
    if (magic != "ExaStroPlotfile-1") {
        throw std::runtime_error("readPlotfileHeader: bad magic " + magic);
    }
    hdr >> out.nlevels >> out.ncomp >> out.time >> out.step;
    out.varnames.resize(out.ncomp);
    for (auto& v : out.varnames) hdr >> v;
    out.boxes.resize(out.nlevels);
    for (int lev = 0; lev < out.nlevels; ++lev) {
        std::size_t nfabs;
        int nx, ny, nz;
        hdr >> nfabs >> nx >> ny >> nz;
        out.boxes[lev].resize(nfabs);
        for (auto& b : out.boxes[lev]) {
            IntVect lo, hi;
            hdr >> lo.x >> lo.y >> lo.z >> hi.x >> hi.y >> hi.z;
            b = Box(lo, hi);
        }
    }
    return out;
}

std::int64_t readPlotfileLevel(const std::string& dir, int lev, MultiFab& state) {
    const PlotfileHeader h = readPlotfileHeader(dir);
    if (lev >= h.nlevels) throw std::runtime_error("readPlotfileLevel: no such level");
    if (h.boxes[lev].size() != state.size()) {
        throw std::runtime_error("readPlotfileLevel: BoxArray mismatch");
    }
    std::int64_t bytes = 0;
    const std::string ldir = dir + "/Level_" + std::to_string(lev);
    for (std::size_t f = 0; f < state.size(); ++f) {
        const Box& vb = state.box(static_cast<int>(f));
        if (!(vb == h.boxes[lev][f])) {
            throw std::runtime_error("readPlotfileLevel: box mismatch");
        }
        FArrayBox host(vb, state.nComp());
        const std::int64_t nbytes =
            vb.numPts() * state.nComp() * static_cast<std::int64_t>(sizeof(Real));
        std::ifstream bin(ldir + "/fab_" + std::to_string(f) + ".bin",
                          std::ios::binary);
        if (!bin) throw std::runtime_error("readPlotfileLevel: missing fab file");
        bin.read(reinterpret_cast<char*>(host.dataPtr()), nbytes);
        if (bin.gcount() != nbytes) {
            throw std::runtime_error("readPlotfileLevel: short read");
        }
        state.fab(static_cast<int>(f)).copyFrom(host, vb, 0, vb, 0, state.nComp());
        bytes += nbytes;
    }
    return bytes;
}

} // namespace exa
