#include "mesh/flux_register.hpp"

#include "core/parallel_for.hpp"

#include <cassert>
#include <cmath>

namespace exa {

std::array<MultiFab, 3> makeFluxFabs(const BoxArray& ba,
                                     const DistributionMapping& dm, int ncomp) {
    std::array<MultiFab, 3> flux;
    for (int d = 0; d < 3; ++d) {
        std::vector<Box> faces;
        faces.reserve(ba.size());
        for (std::size_t i = 0; i < ba.size(); ++i) {
            faces.push_back(surroundingFaces(ba[i], d));
        }
        flux[d].define(BoxArray(std::move(faces)), dm, ncomp, 0);
        flux[d].setVal(0.0);
    }
    return flux;
}

void FluxRegister::define(const BoxArray& fine_ba, const DistributionMapping& fine_dm,
                          int ratio, int ncomp) {
    assert(ratio > 1 && ncomp > 0);
    m_ratio = ratio;
    m_ncomp = ncomp;
    m_cba = fine_ba;
    m_cba.coarsen(ratio);
    for (int d = 0; d < 3; ++d) {
        std::vector<Box> faces;
        faces.reserve(m_cba.size());
        for (std::size_t i = 0; i < m_cba.size(); ++i) {
            faces.push_back(surroundingFaces(m_cba[i], d));
        }
        m_reg[d].define(BoxArray(std::move(faces)), fine_dm, ncomp, 0);
        m_reg[d].setVal(0.0);
    }
}

void FluxRegister::clear() {
    for (int d = 0; d < 3; ++d) m_reg[d].clear();
    m_cba = BoxArray{};
    m_ratio = 0;
    m_ncomp = 0;
}

void FluxRegister::setVal(Real v) {
    for (int d = 0; d < 3; ++d) m_reg[d].setVal(v);
}

void FluxRegister::CrseAdd(const std::array<MultiFab, 3>& crse_flux, Real scale) {
    assert(isDefined());
    for (int d = 0; d < 3; ++d) {
        for (std::size_t i = 0; i < m_reg[d].size(); ++i) {
            const int fi = static_cast<int>(i);
            const Box& fb = m_reg[d].box(fi);
            // Gather the coarse fluxes covering this register fab with
            // overwrite semantics: adjacent coarse boxes both carry their
            // shared face (with identical values), so add-per-overlap
            // would double-count it.
            FArrayBox tmp(fb, m_ncomp);
            tmp.setVal(0.0);
            for (const auto& [j, isect] : crse_flux[d].boxArray().intersections(fb)) {
                tmp.copyFrom(crse_flux[d].fab(j), isect, 0, isect, 0, m_ncomp);
            }
            m_reg[d].fab(fi).saxpy(scale, tmp, fb, 0, 0, m_ncomp);
        }
    }
}

void FluxRegister::FineAdd(const std::array<MultiFab, 3>& fine_flux, Real scale) {
    assert(isDefined());
    const int r = m_ratio;
    const Real w = scale / (static_cast<Real>(r) * r); // area mean of r^2 faces
    const KernelInfo info =
        KernelInfo::streaming("fluxreg_fine_add", (m_ratio * m_ratio + 1) * 8.0);
    for (int d = 0; d < 3; ++d) {
        for (std::size_t i = 0; i < m_reg[d].size(); ++i) {
            const int fi = static_cast<int>(i);
            auto reg = m_reg[d].array(fi);
            auto f = fine_flux[d].const_array(fi);
            ParallelFor(info, m_reg[d].box(fi), m_ncomp,
                        [=](int i0, int j0, int k0, int n) {
                // Coarse face -> fine faces: the normal coordinate is a
                // face index (maps as c -> c*r, one fine face per coarse
                // face); the transverse coordinates are zone indices
                // (each spans r fine zones).
                Real s = 0.0;
                if (d == 0) {
                    for (int kk = 0; kk < r; ++kk)
                        for (int jj = 0; jj < r; ++jj)
                            s += f(i0 * r, j0 * r + jj, k0 * r + kk, n);
                } else if (d == 1) {
                    for (int kk = 0; kk < r; ++kk)
                        for (int ii = 0; ii < r; ++ii)
                            s += f(i0 * r + ii, j0 * r, k0 * r + kk, n);
                } else {
                    for (int jj = 0; jj < r; ++jj)
                        for (int ii = 0; ii < r; ++ii)
                            s += f(i0 * r + ii, j0 * r + jj, k0 * r, n);
                }
                reg(i0, j0, k0, n) += w * s;
            });
        }
    }
}

void FluxRegister::Reflux(MultiFab& crse, const Geometry& crse_geom) const {
    assert(isDefined());
    const Box& dom = crse_geom.domain();
    const KernelInfo info = KernelInfo::streaming("fluxreg_reflux", 24.0);
    for (int d = 0; d < 3; ++d) {
        const Real dxinv = 1.0 / crse_geom.cellSize(d);
        for (std::size_t i = 0; i < m_cba.size(); ++i) {
            const Box& cb = m_cba[i];
            for (int side = 0; side < 2; ++side) {
                const bool lo = side == 0;
                // Face plane on this side of the fine box, and the coarse
                // zone plane just outside it (the zones that advanced with
                // the uncorrected coarse flux).
                const int fn = lo ? cb.smallEnd(d) : cb.bigEnd(d) + 1;
                int zn = lo ? fn - 1 : fn;
                IntVect zlo = cb.smallEnd();
                IntVect zhi = cb.bigEnd();
                zlo[d] = zn;
                zhi[d] = zn;
                Box zplane(zlo, zhi);
                if (zn < dom.smallEnd(d) || zn > dom.bigEnd(d)) {
                    if (!crse_geom.isPeriodic(d)) continue; // domain edge
                    const int shift = zn < dom.smallEnd(d) ? dom.length(d)
                                                           : -dom.length(d);
                    zplane.shift(d, shift);
                }
                // Mask out zones covered by the fine level itself (shared
                // interior faces of the fine union correct nothing).
                std::vector<Box> pieces{zplane};
                for (const auto& [jf, isect] : m_cba.intersections(zplane)) {
                    (void)isect;
                    std::vector<Box> next;
                    for (const Box& p : pieces) {
                        for (const Box& q : boxDiff(p, m_cba[jf])) next.push_back(q);
                    }
                    pieces = std::move(next);
                    if (pieces.empty()) break;
                }
                const Real sgn = lo ? -1.0 : 1.0;
                auto reg = m_reg[d].const_array(static_cast<int>(i));
                for (const Box& p : pieces) {
                    for (const auto& [j, isect] : crse.boxArray().intersections(p)) {
                        auto u = crse.array(j);
                        const int dd = d;
                        const int face_n = fn;
                        ParallelFor(info, isect, m_ncomp,
                                    [=](int i0, int j0, int k0, int n) {
                            // Register face of this zone: replace the
                            // normal coordinate with the (unwrapped) face
                            // index; transverse coordinates are unshifted
                            // by the periodic wrap (which acts along d).
                            IntVect fp{i0, j0, k0};
                            fp[dd] = face_n;
                            u(i0, j0, k0, n) +=
                                sgn * dxinv * reg(fp.x, fp.y, fp.z, n);
                        });
                    }
                }
            }
        }
    }
}

Real FluxRegister::absSum() const {
    Real s = 0.0;
    for (int d = 0; d < 3; ++d) {
        for (std::size_t i = 0; i < m_reg[d].size(); ++i) {
            auto a = m_reg[d].const_array(static_cast<int>(i));
            const Box& fb = m_reg[d].box(static_cast<int>(i));
            for (int n = 0; n < m_ncomp; ++n)
                for (int k = fb.smallEnd(2); k <= fb.bigEnd(2); ++k)
                    for (int j = fb.smallEnd(1); j <= fb.bigEnd(1); ++j)
                        for (int i0 = fb.smallEnd(0); i0 <= fb.bigEnd(0); ++i0)
                            s += std::abs(a(i0, j, k, n));
        }
    }
    return s;
}

} // namespace exa
