#pragma once

// The step-retry / fault-tolerance layer.
//
// Production Castro ships a `use_retry` mechanism: when an advance
// produces an invalid state (a burn that did not converge, a NaN, a
// negative density), the level is rolled back and re-advanced with
// subcycled smaller timesteps. This is the analogue for our drivers:
//
//   snapshot -> advance -> validate
//     ok      -> accept
//     invalid -> restore snapshot, re-advance as 2x, 4x, ... substeps of
//                dt (geometric backoff) up to max_retries doublings
//     still invalid -> degrade per RetryPolicy: hard error (throw
//                StepRetryError) or clamp-and-warn (driver repairs the
//                invalid zones from the snapshot and the run continues,
//                flagged in RetryStats::degraded)
//
// The engine is physics-agnostic: drivers supply snapshot/restore/
// advance/validate/degrade callbacks so Castro, CastroAmr, and Maestro
// share one retry loop. Exceptions thrown by the advance callback (e.g.
// an injected arena allocation failure) are treated as failed attempts,
// not crashes: the snapshot restore makes them recoverable.

#include "mesh/multifab.hpp"

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace exa {

// What to do when every retry of a step produced an invalid state.
enum class RetryPolicy {
    HardError,    // throw StepRetryError (never continue from garbage)
    ClampAndWarn, // repair invalid zones from the pre-step state, warn, go on
};

struct StepGuardOptions {
    bool enabled = false; // off: drivers behave exactly as before this layer
    int max_retries = 3;  // dt-halving rounds after the first attempt
    RetryPolicy policy = RetryPolicy::HardError;
    // Post-step validator thresholds.
    bool check_finite = true;        // NaN/Inf anywhere in the state
    Real min_density = 0.0;          // rho <= this fails (Castro-family states)
    Real min_energy = 0.0;           // rho E <= this fails
    Real species_sum_rtol = 1.0e-6;  // |sum X - 1| tolerance
    double burn_failure_tol = 0.0;   // tolerated failing-zone fraction per step
    bool verbose = true;             // narrate retries/degradations on stderr
};

struct ValidationIssue {
    std::string check;  // "non-finite", "negative-density", "burn-failures", ...
    std::string detail; // human-readable: first offending zone, values, level
};

struct ValidationReport {
    std::vector<ValidationIssue> issues;
    bool ok() const { return issues.empty(); }
    void add(std::string check, std::string detail);
    std::string summary() const; // "" when ok
};

// Per-run retry accounting, reported by drivers next to BurnGridStats.
struct RetryStats {
    std::int64_t steps_guarded = 0; // guarded steps attempted
    std::int64_t retries = 0;       // rollback + re-advance rounds (cumulative)
    std::int64_t degraded = 0;      // steps that exhausted retries and clamped
    // Fields describing the most recent guarded step:
    int last_attempts = 0;      // 1 = accepted clean
    int last_subcycles = 1;     // substeps of the accepted (or final) attempt
    std::int64_t snapshot_bytes = 0;
    std::string last_failure;   // summary of the last failed validation, if any
};

// Retries exhausted under RetryPolicy::HardError.
class StepRetryError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

// A rollback point: arena-backed clones of one or more MultiFabs (all
// components, valid + ghost zones). Allocation goes through The_Arena(),
// so with the default pool arena repeated snapshots are handle reuse, not
// fresh allocations — the same property that makes per-step temporaries
// cheap makes per-step rollback points cheap.
class StateSnapshot {
public:
    // Append a clone of src. Returns its index for restoreTo().
    std::size_t capture(const MultiFab& src);
    std::size_t count() const { return m_copies.size(); }
    std::int64_t bytes() const { return m_bytes; }

    // Copy snapshot i back into dst, which must still have the layout the
    // snapshot was taken from (guarded advances must not regrid).
    void restoreTo(std::size_t i, MultiFab& dst) const;
    const MultiFab& mf(std::size_t i) const { return m_copies[i]; }

    // Scalar side channel for non-MultiFab rollback state (per-level
    // times of a subcycled hierarchy). Same index discipline as capture().
    std::size_t captureScalar(Real v) {
        m_scalars.push_back(v);
        return m_scalars.size() - 1;
    }
    Real scalar(std::size_t i) const { return m_scalars.at(i); }
    std::size_t scalarCount() const { return m_scalars.size(); }

private:
    std::vector<MultiFab> m_copies;
    std::vector<Real> m_scalars;
    std::int64_t m_bytes = 0;
};

class StepGuard {
public:
    explicit StepGuard(const StepGuardOptions& opt) : m_opt(opt) {}

    using SnapshotFn = std::function<void(StateSnapshot&)>;
    using RestoreFn = std::function<void(const StateSnapshot&)>;
    // Advance the state by `nsub` substeps of `sub_dt` each.
    using AdvanceFn = std::function<void(Real sub_dt, int nsub)>;
    using ValidateFn = std::function<ValidationReport()>;
    // Retries exhausted under ClampAndWarn. `advance_threw`: the final
    // attempt died in an exception, so the state was restored to the
    // snapshot before this call; otherwise it holds the final (invalid)
    // attempt for the driver to repair.
    using DegradeFn = std::function<void(const StateSnapshot&, bool advance_threw)>;

    enum class Outcome { Clean, Retried, Degraded };

    // Run one guarded step of total size dt through the retry loop.
    Outcome advance(Real dt, const SnapshotFn& snapshot, const RestoreFn& restore,
                    const AdvanceFn& advanceFn, const ValidateFn& validate,
                    const DegradeFn& degrade);

    const StepGuardOptions& options() const { return m_opt; }
    const RetryStats& stats() const { return m_stats; }

    // True while any StepGuard::advance() is on the call stack (process-
    // wide). The Rebalancer consults this: migrating state between a
    // snapshot and its possible restore would desynchronize the rollback
    // point, so rebalancing mid-retry is forbidden.
    static bool advanceActive();

private:
    StepGuardOptions m_opt;
    RetryStats m_stats;
};

// Validator building blocks shared by the drivers: scan `comps` (all when
// empty) of every valid zone for NaN/Inf; report the first offending zone
// per fab. `label` names the state in the issue detail ("level 1", ...).
void checkFinite(const MultiFab& s, ValidationReport& rep, const std::string& label);

// rho-weighted positivity check: component `comp` must exceed `floor`.
void checkAbove(const MultiFab& s, int comp, Real floor, const char* check,
                ValidationReport& rep, const std::string& label);

} // namespace exa
