#include "mesh/fab.hpp"

#include "core/parallel_for.hpp"

#include <cassert>
#include <cmath>
#include <utility>

namespace exa {

FArrayBox::FArrayBox(const Box& bx, int ncomp, Arena* arena) {
    define(bx, ncomp, arena);
}

FArrayBox::~FArrayBox() { clear(); }

FArrayBox::FArrayBox(FArrayBox&& o) noexcept
    : m_box(o.m_box), m_ncomp(o.m_ncomp), m_data(o.m_data), m_arena(o.m_arena) {
    o.m_data = nullptr;
    o.m_ncomp = 0;
    o.m_box = Box{};
}

FArrayBox& FArrayBox::operator=(FArrayBox&& o) noexcept {
    if (this != &o) {
        clear();
        m_box = o.m_box;
        m_ncomp = o.m_ncomp;
        m_data = o.m_data;
        m_arena = o.m_arena;
        o.m_data = nullptr;
        o.m_ncomp = 0;
        o.m_box = Box{};
    }
    return *this;
}

void FArrayBox::define(const Box& bx, int ncomp, Arena* arena) {
    clear();
    assert(bx.ok() && ncomp > 0);
    m_box = bx;
    m_ncomp = ncomp;
    m_arena = arena != nullptr ? arena : The_Arena();
    m_data = static_cast<Real*>(
        m_arena->allocate(sizeof(Real) * bx.numPts() * ncomp));
}

void FArrayBox::clear() {
    if (m_data != nullptr) {
        m_arena->deallocate(m_data);
        m_data = nullptr;
    }
    m_ncomp = 0;
    m_box = Box{};
}

void FArrayBox::setVal(Real v) {
    setVal(v, m_box, 0, m_ncomp);
}

void FArrayBox::setVal(Real v, const Box& region, int comp, int ncomp) {
    auto a = array();
    const Box b = region & m_box;
    ParallelFor(KernelInfo::streaming("fab_setval", 8.0), b, ncomp,
                [=](int i, int j, int k, int n) { a(i, j, k, comp + n) = v; });
}

void FArrayBox::copyFrom(const FArrayBox& src, const Box& srcbox, int scomp,
                         const Box& dstbox, int dcomp, int ncomp) {
    assert(srcbox.size() == dstbox.size());
    assert(src.m_box.contains(srcbox) && m_box.contains(dstbox));
    auto d = array();
    auto s = src.const_array();
    const IntVect off = srcbox.smallEnd() - dstbox.smallEnd();
    ParallelFor(KernelInfo::streaming("fab_copy", 16.0), dstbox, ncomp,
                [=](int i, int j, int k, int n) {
                    d(i, j, k, dcomp + n) = s(i + off.x, j + off.y, k + off.z, scomp + n);
                });
}

void FArrayBox::plus(Real v, const Box& region, int comp, int ncomp) {
    auto a = array();
    const Box b = region & m_box;
    ParallelFor(KernelInfo::streaming("fab_plus", 16.0), b, ncomp,
                [=](int i, int j, int k, int n) { a(i, j, k, comp + n) += v; });
}

void FArrayBox::mult(Real v, const Box& region, int comp, int ncomp) {
    auto a = array();
    const Box b = region & m_box;
    ParallelFor(KernelInfo::streaming("fab_mult", 16.0), b, ncomp,
                [=](int i, int j, int k, int n) { a(i, j, k, comp + n) *= v; });
}

void FArrayBox::saxpy(Real a, const FArrayBox& src, const Box& region, int scomp,
                      int dcomp, int ncomp) {
    auto d = array();
    auto s = src.const_array();
    const Box b = region & m_box & src.box();
    ParallelFor(KernelInfo::streaming("fab_saxpy", 24.0), b, ncomp,
                [=](int i, int j, int k, int n) {
                    d(i, j, k, dcomp + n) += a * s(i, j, k, scomp + n);
                });
}

Real FArrayBox::max(const Box& region, int comp) const {
    auto a = const_array();
    return ParallelReduceMax(region & m_box,
                             [=](int i, int j, int k) { return a(i, j, k, comp); });
}

Real FArrayBox::min(const Box& region, int comp) const {
    auto a = const_array();
    return ParallelReduceMin(region & m_box,
                             [=](int i, int j, int k) { return a(i, j, k, comp); });
}

Real FArrayBox::sum(const Box& region, int comp) const {
    auto a = const_array();
    return ParallelReduceSum(region & m_box,
                             [=](int i, int j, int k) { return a(i, j, k, comp); });
}

Real FArrayBox::norminf(const Box& region, int comp) const {
    auto a = const_array();
    return ParallelReduceMax(region & m_box, [=](int i, int j, int k) {
        return std::abs(a(i, j, k, comp));
    });
}

Real FArrayBox::norm2(const Box& region, int comp) const {
    auto a = const_array();
    Real s = ParallelReduceSum(region & m_box, [=](int i, int j, int k) {
        return a(i, j, k, comp) * a(i, j, k, comp);
    });
    return std::sqrt(s);
}

} // namespace exa
