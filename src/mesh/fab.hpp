#pragma once

#include "core/arena.hpp"
#include "core/array4.hpp"
#include "core/box.hpp"
#include "core/real.hpp"

namespace exa {

// A Fab: one contiguous four-dimensional (zone x component) block of fluid
// data covering a Box (typically a valid region plus ghost zones). Memory
// comes from an Arena, so under the simulated GPU model Fab data is
// "device-resident" and its allocation cost follows the arena ablation.
// Move-only, like a real device allocation handle.
class FArrayBox {
public:
    FArrayBox() = default;
    FArrayBox(const Box& bx, int ncomp, Arena* arena = nullptr);
    ~FArrayBox();

    FArrayBox(FArrayBox&& o) noexcept;
    FArrayBox& operator=(FArrayBox&& o) noexcept;
    FArrayBox(const FArrayBox&) = delete;
    FArrayBox& operator=(const FArrayBox&) = delete;

    void define(const Box& bx, int ncomp, Arena* arena = nullptr);
    void clear();

    const Box& box() const { return m_box; }
    int nComp() const { return m_ncomp; }
    bool isDefined() const { return m_data != nullptr; }
    // The arena this fab's payload lives in (null = The_Arena() default).
    // Lets MultiFab::Redistribute reallocate migrated fabs in kind.
    Arena* arena() const { return m_arena; }
    Real* dataPtr(int n = 0) { return m_data + static_cast<std::int64_t>(n) * m_box.numPts(); }
    const Real* dataPtr(int n = 0) const {
        return m_data + static_cast<std::int64_t>(n) * m_box.numPts();
    }

    Array4<Real> array() { return Array4<Real>(m_data, m_box, m_ncomp); }
    Array4<const Real> const_array() const {
        return Array4<const Real>(m_data, m_box, m_ncomp);
    }

    void setVal(Real v);
    void setVal(Real v, const Box& region, int comp, int ncomp);

    // Copy `ncomp` components from src over region `srcbox` into this fab
    // over `dstbox`. The two boxes must be the same shape; they may be at
    // different positions (used for periodic shifts).
    void copyFrom(const FArrayBox& src, const Box& srcbox, int scomp, const Box& dstbox,
                  int dcomp, int ncomp);

    // In-place arithmetic over a region.
    void plus(Real v, const Box& region, int comp, int ncomp);
    void mult(Real v, const Box& region, int comp, int ncomp);
    // this += a * src (same region in both fabs).
    void saxpy(Real a, const FArrayBox& src, const Box& region, int scomp, int dcomp,
               int ncomp);

    Real max(const Box& region, int comp) const;
    Real min(const Box& region, int comp) const;
    Real sum(const Box& region, int comp) const;
    // L-infinity / L2 norms over a region of one component.
    Real norminf(const Box& region, int comp) const;
    Real norm2(const Box& region, int comp) const;

private:
    Box m_box;
    int m_ncomp = 0;
    Real* m_data = nullptr;
    Arena* m_arena = nullptr;
};

} // namespace exa
