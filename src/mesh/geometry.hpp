#pragma once

#include "core/box.hpp"
#include "core/real.hpp"

#include <array>
#include <vector>

namespace exa {

// Which dimensions wrap around. A period of 0 means non-periodic.
class Periodicity {
public:
    Periodicity() = default;
    explicit Periodicity(const IntVect& period) : m_period(period) {}

    static Periodicity nonPeriodic() { return Periodicity{}; }

    bool isPeriodic(int d) const { return m_period[d] != 0; }
    bool isAnyPeriodic() const {
        return isPeriodic(0) || isPeriodic(1) || isPeriodic(2);
    }
    int period(int d) const { return m_period[d]; }

    // All shift vectors (including zero) under which a box image may
    // touch another box: {-L,0,+L} per periodic dimension.
    std::vector<IntVect> shifts() const;

private:
    IntVect m_period{0, 0, 0};
};

// Problem geometry at one refinement level: the index-space domain, its
// physical extent, and periodicity. Uniform Cartesian zones only (matching
// the 3-D runs in the paper; the 2-D axisymmetric configuration discussed
// there is a historical workaround the paper's contribution makes
// unnecessary).
class Geometry {
public:
    Geometry() = default;
    Geometry(const Box& domain, const std::array<Real, 3>& problo,
             const std::array<Real, 3>& probhi, const IntVect& is_periodic = {0, 0, 0});

    const Box& domain() const { return m_domain; }
    Real probLo(int d) const { return m_problo[d]; }
    Real probHi(int d) const { return m_probhi[d]; }
    Real cellSize(int d) const { return m_dx[d]; }
    const std::array<Real, 3>& cellSizes() const { return m_dx; }
    Real cellVolume() const { return m_dx[0] * m_dx[1] * m_dx[2]; }

    // Physical coordinate of zone center i along dimension d.
    Real cellCenter(int d, int i) const {
        return m_problo[d] + (i - m_domain.smallEnd(d) + 0.5_rt) * m_dx[d];
    }
    // Physical coordinate of the low face of zone i along dimension d.
    Real cellLo(int d, int i) const {
        return m_problo[d] + (i - m_domain.smallEnd(d)) * m_dx[d];
    }

    const Periodicity& periodicity() const { return m_periodicity; }
    bool isPeriodic(int d) const { return m_periodicity.isPeriodic(d); }

    // The geometry of this domain refined/coarsened by `ratio` (same
    // physical extent, finer/coarser zones).
    Geometry refined(int ratio) const;
    Geometry coarsened(int ratio) const;

private:
    Box m_domain;
    std::array<Real, 3> m_problo{0, 0, 0};
    std::array<Real, 3> m_probhi{1, 1, 1};
    std::array<Real, 3> m_dx{1, 1, 1};
    Periodicity m_periodicity;
};

} // namespace exa
