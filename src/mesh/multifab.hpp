#pragma once

#include "comm/halo_handle.hpp"
#include "core/arena.hpp"
#include "mesh/box_array.hpp"
#include "mesh/distribution.hpp"
#include "mesh/fab.hpp"
#include "mesh/geometry.hpp"

#include <vector>

namespace exa {

struct CopyPlan;
struct CopyItem;

// The central data structure of the framework: fluid state at one level of
// refinement, distributed over the boxes of a BoxArray (each box owned by
// one simulated rank per the DistributionMapping), with `ngrow` ghost
// zones around every box.
//
// In a distributed build each rank would hold only its own Fabs; here one
// process holds them all and the DistributionMapping drives the *message
// accounting* (CommHooks) for every ghost exchange and parallel copy, from
// exactly the intersections that move the data.
class MultiFab {
public:
    MultiFab() = default;
    MultiFab(const BoxArray& ba, const DistributionMapping& dm, int ncomp, int ngrow,
             Arena* arena = nullptr);

    void define(const BoxArray& ba, const DistributionMapping& dm, int ncomp, int ngrow,
                Arena* arena = nullptr);
    bool isDefined() const { return !m_fabs.empty(); }
    void clear();

    const BoxArray& boxArray() const { return m_ba; }
    const DistributionMapping& distributionMap() const { return m_dm; }
    int nComp() const { return m_ncomp; }
    int nGrow() const { return m_ngrow; }
    std::size_t size() const { return m_fabs.size(); }

    // The valid (ghost-free) box of fab i and its grown box.
    const Box& box(int i) const { return m_ba[i]; }
    Box fabbox(int i) const { return grow(m_ba[i], m_ngrow); }

    FArrayBox& fab(int i) { return m_fabs[i]; }
    const FArrayBox& fab(int i) const { return m_fabs[i]; }
    Array4<Real> array(int i) { return m_fabs[i].array(); }
    Array4<const Real> const_array(int i) const { return m_fabs[i].const_array(); }

    void setVal(Real v);
    void setVal(Real v, int comp, int ncomp, int ngrow = 0);

    // Fill every ghost zone that overlaps the valid region of any fab in
    // this MultiFab, honoring periodic images. This is the halo exchange:
    // each box-to-box copy whose source and destination live on different
    // ranks is reported to CommHooks as one message. The intersection set
    // is memoized in the process-wide CopierCache, keyed on the BoxArray /
    // DistributionMapping ids, so repeated exchanges on a stable layout
    // skip the O(nfabs^2) pattern rescan.
    //
    // Canonical comm signatures (shared with ParallelCopy and
    // fillPatchTwoLevels): component selection first in (scomp, dcomp,
    // ncomp) order, then ghost width, then Periodicity last, defaulting to
    // nonPeriodic(). FillBoundary exchanges in place, so only (scomp,
    // ncomp) applies.
    void FillBoundary(int scomp, int ncomp,
                      const Periodicity& period = Periodicity::nonPeriodic());
    // Convenience: exchange every component, non-periodic.
    void FillBoundary() { FillBoundary(0, m_ncomp); }

    [[deprecated("use FillBoundary(scomp, ncomp, period)")]]
    void FillBoundary(const Periodicity& period) {
        FillBoundary(0, m_ncomp, period);
    }

    // Copy component data from src (any BoxArray) wherever src valid
    // regions intersect our valid+dst_ng regions, with periodic images.
    // The copy plan is memoized in the CopierCache like FillBoundary's.
    void ParallelCopy(const MultiFab& src, int scomp, int dcomp, int ncomp,
                      int dst_ng = 0,
                      const Periodicity& period = Periodicity::nonPeriodic());
    // Convenience: copy every component into valid regions only.
    void ParallelCopy(const MultiFab& src,
                      const Periodicity& period = Periodicity::nonPeriodic());

    // Split-phase forms: post the exchange (stage every source region into
    // pack buffers on per-fab streams) and return immediately; the
    // returned handle's finish() delivers the ghosts and reports the
    // CommHooks accounting exactly as the fused call. Between post and
    // finish this MultiFab's ghost zones are unmodified and its valid
    // zones may be read or overwritten freely — the payload was captured
    // at post time. When comm::asyncHalo() is off these run the fused
    // path eagerly and return an already-finished handle.
    comm::HaloHandle FillBoundary_nowait(
        int scomp, int ncomp,
        const Periodicity& period = Periodicity::nonPeriodic());
    comm::HaloHandle FillBoundary_nowait() {
        return FillBoundary_nowait(0, m_ncomp);
    }
    comm::HaloHandle ParallelCopy_nowait(
        const MultiFab& src, int scomp, int dcomp, int ncomp, int dst_ng = 0,
        const Periodicity& period = Periodicity::nonPeriodic());

    // Live-state migration for the load balancer: reassign every box to
    // its owner under `new_dm` (same BoxArray, new rank table). The full
    // grown-box payload travels with its box, so contents — ghosts
    // included — are bit-identical before and after. Off-rank moves are
    // accounted through the cached ParallelCopy plan exactly like any
    // other exchange: one MessageRecord per migrated box (valid-region
    // bytes, tag "rebalance"; ghosts are refilled by the next
    // FillBoundary in a distributed run, so they are not priced here).
    // The mapping id changes with the new mapping, so CopierCache plans
    // keyed on the old id lapse naturally. No-op when the rank tables
    // are identical.
    struct RedistributeStats {
        std::int64_t boxes_moved = 0; // boxes whose owning rank changed
        std::int64_t bytes = 0;       // off-rank valid-region payload
    };
    RedistributeStats Redistribute(const DistributionMapping& new_dm,
                                   const char* tag = "rebalance");

    // Global reductions over valid regions.
    Real sum(int comp = 0) const;
    Real min(int comp = 0) const;
    Real max(int comp = 0) const;
    Real norminf(int comp = 0) const;
    Real norm2(int comp = 0) const;

    // this += a * x over valid regions (matching BoxArrays required).
    void saxpy(Real a, const MultiFab& x, int scomp, int dcomp, int ncomp);
    void plus(Real v, int comp, int ncomp);
    void mult(Real v, int comp, int ncomp);

    // dst = src (matching BoxArrays), valid + ng ghost zones.
    static void Copy(MultiFab& dst, const MultiFab& src, int scomp, int dcomp,
                     int ncomp, int ng = 0);
    // dst = a*x + b*y over valid regions (matching BoxArrays).
    static void LinComb(MultiFab& dst, Real a, const MultiFab& x, Real b,
                        const MultiFab& y, int comp, int ncomp);

private:
    friend class comm::HaloHandle;

    // Execute a cached copy plan against `src` (which may be *this),
    // reporting each off-rank item to CommHooks under `tag`.
    void copyFromPlan(const CopyPlan& plan, const MultiFab& src, int scomp,
                      int dcomp, int ncomp, const char* tag);

    // Post-delivery tail of one plan item: the HaloPayloadCorrupt
    // injection site and the CommHooks message record. Shared between the
    // fused path and HaloHandle::finish() so the two report identical
    // accounting and consume identical fault-schedule slots.
    void deliverItemTail(const CopyItem& item, int dcomp, int ncomp, bool account,
                         const char* tag);

    BoxArray m_ba;
    DistributionMapping m_dm;
    int m_ncomp = 0;
    int m_ngrow = 0;
    std::vector<FArrayBox> m_fabs;
};

// Iterate over the fabs of a MultiFab, optionally decomposed into tiles.
// This reproduces both sides of the paper's Figure 1:
//   * tiled iteration (tile_size from ExecConfig) = the coarse-grained
//     OpenMP model, one thread per tile;
//   * untiled iteration + per-zone ParallelFor = the GPU model.
// Each fab advances the round-robin stream id so the simulated device can
// overlap kernels from different boxes (the CUDA-streams mitigation).
class MFIter {
public:
    explicit MFIter(const MultiFab& mf, bool tiling = false);

    bool isValid() const { return m_pos < m_tiles.size(); }
    MFIter& operator++() {
        ++m_pos;
        syncStream();
        return *this;
    }

    // Index of the underlying fab (for mf.array(mfi.index())).
    int index() const { return m_tiles[m_pos].fab; }
    // This tile's zones (= the valid box when not tiling).
    const Box& tilebox() const { return m_tiles[m_pos].box; }
    // The fab's full valid box.
    const Box& validbox() const { return m_mf->box(m_tiles[m_pos].fab); }
    // Tile box grown by ng, clipped to the fab's grown box.
    Box growntilebox(int ng) const;

private:
    void syncStream();

    struct Tile {
        int fab;
        Box box;
    };
    const MultiFab* m_mf;
    std::vector<Tile> m_tiles;
    std::size_t m_pos = 0;
};

} // namespace exa
