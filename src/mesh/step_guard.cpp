#include "mesh/step_guard.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace exa {

namespace {
// Depth of nested StepGuard::advance() calls (CastroAmr guards all
// levels in one scope; the counter tolerates nesting anyway).
std::atomic<int> g_advance_depth{0};

struct AdvanceScope {
    AdvanceScope() { g_advance_depth.fetch_add(1, std::memory_order_relaxed); }
    ~AdvanceScope() { g_advance_depth.fetch_sub(1, std::memory_order_relaxed); }
};
} // namespace

bool StepGuard::advanceActive() {
    return g_advance_depth.load(std::memory_order_relaxed) > 0;
}

void ValidationReport::add(std::string check, std::string detail) {
    issues.push_back({std::move(check), std::move(detail)});
}

std::string ValidationReport::summary() const {
    if (issues.empty()) return "";
    std::ostringstream os;
    for (std::size_t i = 0; i < issues.size(); ++i) {
        if (i > 0) os << "; ";
        os << issues[i].check << " (" << issues[i].detail << ")";
    }
    return os.str();
}

std::size_t StateSnapshot::capture(const MultiFab& src) {
    MultiFab copy(src.boxArray(), src.distributionMap(), src.nComp(), src.nGrow());
    MultiFab::Copy(copy, src, 0, 0, src.nComp(), src.nGrow());
    for (std::size_t f = 0; f < src.size(); ++f) {
        m_bytes += src.fabbox(static_cast<int>(f)).numPts() * src.nComp() *
                   static_cast<std::int64_t>(sizeof(Real));
    }
    m_copies.push_back(std::move(copy));
    return m_copies.size() - 1;
}

void StateSnapshot::restoreTo(std::size_t i, MultiFab& dst) const {
    const MultiFab& src = m_copies.at(i);
    if (!(dst.boxArray() == src.boxArray()) || dst.nComp() != src.nComp() ||
        dst.nGrow() != src.nGrow()) {
        throw StepRetryError(
            "StateSnapshot::restoreTo: state layout changed during a guarded "
            "advance (regrid inside a retry scope is not allowed)");
    }
    MultiFab::Copy(dst, src, 0, 0, src.nComp(), src.nGrow());
}

StepGuard::Outcome StepGuard::advance(Real dt, const SnapshotFn& snapshot,
                                      const RestoreFn& restore,
                                      const AdvanceFn& advanceFn,
                                      const ValidateFn& validate,
                                      const DegradeFn& degrade) {
    const AdvanceScope in_advance;
    ++m_stats.steps_guarded;
    m_stats.last_attempts = 0;
    m_stats.last_subcycles = 1;

    StateSnapshot snap;
    snapshot(snap);
    m_stats.snapshot_bytes = snap.bytes();

    bool advance_threw = false;
    int nsub = 1;
    for (int attempt = 0; attempt <= m_opt.max_retries; ++attempt, nsub *= 2) {
        if (attempt > 0) {
            restore(snap);
            ++m_stats.retries;
            if (m_opt.verbose) {
                std::fprintf(stderr,
                             "[exa-retry] step invalid (%s): retrying as %d "
                             "substeps of dt/%d\n",
                             m_stats.last_failure.c_str(), nsub, nsub);
            }
        }
        ++m_stats.last_attempts;
        m_stats.last_subcycles = nsub;

        advance_threw = false;
        try {
            advanceFn(dt / nsub, nsub);
        } catch (const std::exception& e) {
            advance_threw = true;
            m_stats.last_failure = std::string("advance threw: ") + e.what();
            continue;
        }
        const ValidationReport rep = validate();
        if (rep.ok()) {
            return attempt == 0 ? Outcome::Clean : Outcome::Retried;
        }
        m_stats.last_failure = rep.summary();
    }

    // Retries exhausted. The state holds the final failed attempt, except
    // when that attempt died mid-advance — then only the snapshot is
    // coherent, so restore it before degrading.
    ++m_stats.degraded;
    if (advance_threw) restore(snap);
    if (m_opt.policy == RetryPolicy::HardError) {
        throw StepRetryError("step retries exhausted after " +
                             std::to_string(m_stats.last_attempts) +
                             " attempts: " + m_stats.last_failure);
    }
    if (m_opt.verbose) {
        std::fprintf(stderr,
                     "[exa-retry] retries exhausted (%s): degrading per "
                     "clamp-and-warn\n",
                     m_stats.last_failure.c_str());
    }
    degrade(snap, advance_threw);
    return Outcome::Degraded;
}

namespace {

std::string zoneDetail(const std::string& label, int fab, int i, int j, int k,
                       int comp, Real value) {
    std::ostringstream os;
    if (!label.empty()) os << label << ", ";
    os << "fab " << fab << ", zone (" << i << "," << j << "," << k << "), comp "
       << comp << ", value " << value;
    return os.str();
}

} // namespace

void checkFinite(const MultiFab& s, ValidationReport& rep, const std::string& label) {
    for (std::size_t f = 0; f < s.size(); ++f) {
        auto a = s.const_array(static_cast<int>(f));
        const Box& vb = s.box(static_cast<int>(f));
        for (int n = 0; n < s.nComp(); ++n) {
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        const Real v = a(i, j, k, n);
                        if (!std::isfinite(v)) {
                            rep.add("non-finite",
                                    zoneDetail(label, static_cast<int>(f), i, j, k,
                                               n, v));
                            goto next_fab; // first offender per fab is enough
                        }
                    }
                }
            }
        }
    next_fab:;
    }
}

void checkAbove(const MultiFab& s, int comp, Real floor, const char* check,
                ValidationReport& rep, const std::string& label) {
    for (std::size_t f = 0; f < s.size(); ++f) {
        auto a = s.const_array(static_cast<int>(f));
        const Box& vb = s.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real v = a(i, j, k, comp);
                    // NaN compares false and would slip below: leave it to
                    // checkFinite, only flag real sub-floor values here.
                    if (std::isfinite(v) && v <= floor) {
                        rep.add(check, zoneDetail(label, static_cast<int>(f), i, j,
                                                  k, comp, v));
                        goto next_fab;
                    }
                }
            }
        }
    next_fab:;
    }
}

} // namespace exa
