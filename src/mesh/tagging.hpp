#pragma once

#include "mesh/multifab.hpp"

#include <vector>

namespace exa {

// Error tagging and clustering: turn a set of flagged zones into a small
// set of rectangular boxes for the next-finer level. The paper's AMR runs
// tag (a) everything inside the stars and (b) any zone hotter than 1e9 K;
// clustering is what keeps the refined volume at the ~0.5% the paper
// quotes instead of a full factor of ratio^3.
class TagCluster {
public:
    // blocking: boxes are built from blocks of `blocking` zones per side,
    // so every output box is coarsenable and respects the blocking factor.
    explicit TagCluster(int blocking = 8) : m_blocking(blocking) {}

    // tags: one component, nonzero = refine. Returns disjoint boxes (at
    // the same level as `tags`) covering every tagged zone, clipped to
    // `domain`. The caller refines them for the next level.
    std::vector<Box> cluster(const MultiFab& tags, const Box& domain) const;

    // Same, from an explicit list of tagged zones (for tests).
    std::vector<Box> cluster(const std::vector<IntVect>& tagged, const Box& domain) const;

private:
    std::vector<Box> mergeBlocks(std::vector<IntVect> blocks, const Box& domain) const;
    int m_blocking;
};

} // namespace exa
