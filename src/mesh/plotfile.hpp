#pragma once

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace exa {

// Plotfile and checkpoint I/O, AMReX-flavored: a directory containing an
// ASCII Header (grid metadata, variable names, time) and one raw binary
// file per fab under Level_<n>/.
//
// In the paper's architecture this is one of only two places where
// simulation data crosses back to the host ("checkpointing the simulation
// state to disk, and MPI transfers"); writePlotfile/writeCheckpoint return
// the bytes staged so callers can charge DeviceModel::transferTime — the
// copy is explicitly a host *copy*, not a migration ("it involves making
// a copy to CPU memory, not migrating the data to the CPU").

// Write one level (or several) of state. Returns total payload bytes.
std::int64_t writePlotfile(const std::string& dir,
                           const std::vector<const MultiFab*>& state,
                           const std::vector<Geometry>& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step);

// Single-level convenience overload.
std::int64_t writePlotfile(const std::string& dir, const MultiFab& state,
                           const Geometry& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step);

// Metadata read back from a plotfile/checkpoint header.
struct PlotfileHeader {
    int nlevels = 0;
    int ncomp = 0;
    Real time = 0.0;
    int step = 0;
    std::vector<std::string> varnames;
    std::vector<std::vector<Box>> boxes; // per level
};

PlotfileHeader readPlotfileHeader(const std::string& dir);

// Restart: read level `lev` data into `state`, whose BoxArray must match
// the file's. Returns bytes read.
std::int64_t readPlotfileLevel(const std::string& dir, int lev, MultiFab& state);

} // namespace exa
