#pragma once

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace exa {

// Plotfile and checkpoint I/O, AMReX-flavored: a directory containing an
// ASCII Header (grid metadata, variable names, time) and one raw binary
// file per fab under Level_<n>/.
//
// In the paper's architecture this is one of only two places where
// simulation data crosses back to the host ("checkpointing the simulation
// state to disk, and MPI transfers"); writePlotfile/writeCheckpoint return
// the bytes staged so callers can charge DeviceModel::transferTime — the
// copy is explicitly a host *copy*, not a migration ("it involves making
// a copy to CPU memory, not migrating the data to the CPU").
//
// Integrity (format version 2, magic "ExaStroPlotfile-2"):
//   * every fab payload carries its byte count and CRC32 in the Header;
//   * the Header itself ends with a "headercrc" line checksumming all
//     preceding header bytes;
//   * the whole directory is written to "<dir>.tmp" and atomically renamed
//     into place, so a crashed or failed write never leaves a directory
//     that looks like a valid checkpoint;
//   * every stream operation is checked — a failed write throws instead of
//     reporting success, and restart verifies sizes and checksums per fab,
//     naming the fab that failed.
// Version-1 files (no checksums) are still readable; their payloads are
// only size-checked.

// One fab's valid-region payload, copied into a plain host buffer in
// FArrayBox layout (Fortran order, component-last) — exactly the bytes
// that go to disk. Staging is the only part of a checkpoint that touches
// MultiFab data, so a staged level can be handed to a background writer
// thread while the step loop keeps mutating the live state.
struct StagedFab {
    Box box;
    std::vector<Real> data;
};

struct StagedLevel {
    int ncomp = 0;
    int domain_len[3] = {0, 0, 0};
    std::vector<StagedFab> fabs;
};

// Blocking valid-region copy of one MultiFab into host buffers. Runs as
// plain loops on the calling thread — no kernel launches — so the result
// (and writeStagedPlotfile on it) is safe off the main thread, where
// ParallelFor's backend state must never be touched.
StagedLevel stageLevel(const MultiFab& mf, const Geometry& geom);

// Write staged levels as a plotfile. Pure host code (file I/O + CRC only):
// this is the half of writePlotfile the async checkpointer's drain thread
// runs. Same atomic <dir>.tmp + rename protocol as writePlotfile.
std::int64_t writeStagedPlotfile(const std::string& dir,
                                 const std::vector<StagedLevel>& levels,
                                 const std::vector<std::string>& varnames,
                                 Real time, int step);

// Write one level (or several) of state. Returns total payload bytes.
// Throws std::runtime_error if any part of the write fails; on failure the
// destination directory is left untouched (no partial checkpoint).
std::int64_t writePlotfile(const std::string& dir,
                           const std::vector<const MultiFab*>& state,
                           const std::vector<Geometry>& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step);

// Single-level convenience overload.
std::int64_t writePlotfile(const std::string& dir, const MultiFab& state,
                           const Geometry& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step);

// Metadata read back from a plotfile/checkpoint header.
struct PlotfileHeader {
    int version = 0; // 1 = legacy (no checksums), 2 = current
    int nlevels = 0;
    int ncomp = 0;
    Real time = 0.0;
    int step = 0;
    std::vector<std::string> varnames;
    std::vector<std::vector<Box>> boxes;                 // per level
    std::vector<std::vector<std::int64_t>> fab_bytes;    // per level (v2)
    std::vector<std::vector<std::uint32_t>> fab_crc;     // per level (v2)
};

// Parse and verify the Header (including its own checksum for v2 files).
PlotfileHeader readPlotfileHeader(const std::string& dir);

// Restart: read level `lev` data into `state`, whose BoxArray must match
// the file's. Returns bytes read. Throws std::runtime_error naming *every*
// corrupted/missing fab (missing file, short read, or checksum mismatch)
// so a caller deciding between per-fab restore and full rollback sees the
// complete damage report; `state` is untouched unless every fab is good.
std::int64_t readPlotfileLevel(const std::string& dir, int lev, MultiFab& state);

// Localized recovery: read a single fab's payload (CRC-verified for v2)
// against an already-parsed header. Throws naming the fab on any failure.
StagedFab readPlotfileFab(const std::string& dir, const PlotfileHeader& h,
                          int lev, int f);

// Copy a staged payload into fab `f` of `state` (plain host loops; valid
// region only). The staged box must equal the fab's valid box.
void applyStagedFab(MultiFab& state, int f, const StagedFab& staged);

// One damaged payload found by verifyPlotfile.
struct FabIssue {
    int lev = 0;
    int fab = 0;
    std::string what;
};

// Integrity sweep without touching any MultiFab: verify the header (throws
// if the header itself is unreadable or fails its checksum) and every fab
// payload's size + CRC, returning ALL damaged fabs — the per-fab damage
// report localized recovery needs to choose restore granularity.
std::vector<FabIssue> verifyPlotfile(const std::string& dir);

} // namespace exa
