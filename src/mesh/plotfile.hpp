#pragma once

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace exa {

// Plotfile and checkpoint I/O, AMReX-flavored: a directory containing an
// ASCII Header (grid metadata, variable names, time) and one raw binary
// file per fab under Level_<n>/.
//
// In the paper's architecture this is one of only two places where
// simulation data crosses back to the host ("checkpointing the simulation
// state to disk, and MPI transfers"); writePlotfile/writeCheckpoint return
// the bytes staged so callers can charge DeviceModel::transferTime — the
// copy is explicitly a host *copy*, not a migration ("it involves making
// a copy to CPU memory, not migrating the data to the CPU").
//
// Integrity (format version 2, magic "ExaStroPlotfile-2"):
//   * every fab payload carries its byte count and CRC32 in the Header;
//   * the Header itself ends with a "headercrc" line checksumming all
//     preceding header bytes;
//   * the whole directory is written to "<dir>.tmp" and atomically renamed
//     into place, so a crashed or failed write never leaves a directory
//     that looks like a valid checkpoint;
//   * every stream operation is checked — a failed write throws instead of
//     reporting success, and restart verifies sizes and checksums per fab,
//     naming the fab that failed.
// Version-1 files (no checksums) are still readable; their payloads are
// only size-checked.

// Write one level (or several) of state. Returns total payload bytes.
// Throws std::runtime_error if any part of the write fails; on failure the
// destination directory is left untouched (no partial checkpoint).
std::int64_t writePlotfile(const std::string& dir,
                           const std::vector<const MultiFab*>& state,
                           const std::vector<Geometry>& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step);

// Single-level convenience overload.
std::int64_t writePlotfile(const std::string& dir, const MultiFab& state,
                           const Geometry& geom,
                           const std::vector<std::string>& varnames, Real time,
                           int step);

// Metadata read back from a plotfile/checkpoint header.
struct PlotfileHeader {
    int version = 0; // 1 = legacy (no checksums), 2 = current
    int nlevels = 0;
    int ncomp = 0;
    Real time = 0.0;
    int step = 0;
    std::vector<std::string> varnames;
    std::vector<std::vector<Box>> boxes;                 // per level
    std::vector<std::vector<std::int64_t>> fab_bytes;    // per level (v2)
    std::vector<std::vector<std::uint32_t>> fab_crc;     // per level (v2)
};

// Parse and verify the Header (including its own checksum for v2 files).
PlotfileHeader readPlotfileHeader(const std::string& dir);

// Restart: read level `lev` data into `state`, whose BoxArray must match
// the file's. Returns bytes read. Throws std::runtime_error naming the
// offending fab on a missing file, short read, or checksum mismatch.
std::int64_t readPlotfileLevel(const std::string& dir, int lev, MultiFab& state);

} // namespace exa
