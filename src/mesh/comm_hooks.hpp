#pragma once

#include <cstdint>
#include <functional>

namespace exa {

// One message that would be an MPI send/recv pair in a distributed run.
// The mesh layer reports these from the *same* intersection logic that
// performs the actual (in-process) data motion, so message counts and
// sizes are exact for the given BoxArray + DistributionMapping — only the
// network's time-per-byte is modeled (in src/comm).
struct MessageRecord {
    int src_rank = 0;
    int dst_rank = 0;
    std::int64_t bytes = 0;
    const char* tag = ""; // e.g. "fillboundary", "parallelcopy"
};

using MessageHook = std::function<void(const MessageRecord&)>;

// Lifecycle of one split-phase halo exchange (HaloHandle). Posted fires
// when FillBoundary_nowait/ParallelCopy_nowait stages the plan's pack
// work; Finished fires after finish() has delivered every item and
// reported its MessageRecords. The ledger uses the pair to track how many
// exchanges are in flight — the overlap the async step loop is buying.
enum class HaloPhase { Posted, Finished };

struct HaloEvent {
    HaloPhase phase = HaloPhase::Posted;
    const char* tag = "";     // same tag as the MessageRecords it brackets
    std::int64_t items = 0;   // plan items in the exchange
    std::int64_t bytes = 0;   // off-rank payload bytes of the plan
};

using HaloHook = std::function<void(const HaloEvent&)>;

// One live-state migration performed by the Rebalancer: every registered
// MultiFab on the level was redistributed from the old mapping to the
// new cost-weighted one. The bytes are the off-rank valid-region payload
// summed over all migrated fabs — the same quantity the per-message
// MessageRecords (tag "rebalance") report, bracketed into one event so
// the ledger can count rebalances and attribute migration traffic.
struct RebalanceEvent {
    int level = 0;
    std::int64_t boxes_moved = 0; // box ownership changes, summed over fabs
    std::int64_t bytes = 0;       // off-rank migration payload
    double imbalance_before = 1.0;
    double imbalance_after = 1.0;
};

using RebalanceHook = std::function<void(const RebalanceEvent&)>;

// Resilience accounting deltas from the supervisor/checkpointer: committed
// checkpoints and their payload bytes, ranks recovered by shrink recovery,
// replayed steps, and the bytes re-read from disk during localized
// restore. Fired with partial deltas as events happen (a checkpoint commit
// fires {1, bytes, 0, 0, 0}); the ledger accumulates. The checkpoint
// commit fires on the *drain thread*, so the receiving hook must be
// thread-safe (CommLedger keeps these counters atomic).
struct ResilienceEvent {
    std::int64_t checkpoints = 0;
    std::int64_t checkpoint_bytes = 0;
    std::int64_t ranks_recovered = 0;
    std::int64_t replay_steps = 0;
    std::int64_t recovery_bytes = 0;
};

using ResilienceHook = std::function<void(const ResilienceEvent&)>;

// Multigrid solve accounting deltas, fired once per solve by the Poisson
// solvers (single-level Multigrid and the composite-grid FMG solver):
// cycle/sweep counts plus the coarse-level rank-aggregation traffic
// (staged ParallelCopies between the distributed fine layout and the
// few-rank aggregated coarse layout, and their off-rank payload bytes).
struct MgEvent {
    std::int64_t fmg_cycles = 0;
    std::int64_t vcycles = 0;
    std::int64_t sweeps = 0;
    std::int64_t agg_copies = 0;
    std::int64_t agg_bytes = 0;
};

using MgHook = std::function<void(const MgEvent&)>;

// Process-global sink for message records (mirrors ExecConfig's launch
// hook). Registered by the comm/perf layer; cheap no-op when absent.
class CommHooks {
public:
    static void setMessageHook(MessageHook h);
    static void clearMessageHook();
    static void notify(const MessageRecord& r);
    static bool active();

    // Split-phase halo lifecycle events (posted / finished).
    static void setHaloHook(HaloHook h);
    static void clearHaloHook();
    static void notifyHalo(const HaloEvent& e);
    static bool haloActive();

    // Load-balancing migration events (one per performed rebalance).
    static void setRebalanceHook(RebalanceHook h);
    static void clearRebalanceHook();
    static void notifyRebalance(const RebalanceEvent& e);
    static bool rebalanceActive();

    // Resilience events (checkpoint commits, rank recoveries). May fire
    // from the checkpoint drain thread; set/clear only while no run is in
    // progress.
    static void setResilienceHook(ResilienceHook h);
    static void clearResilienceHook();
    static void notifyResilience(const ResilienceEvent& e);
    static bool resilienceActive();

    // Multigrid solve counters (one event per completed solve).
    static void setMgHook(MgHook h);
    static void clearMgHook();
    static void notifyMg(const MgEvent& e);
    static bool mgActive();
};

} // namespace exa
