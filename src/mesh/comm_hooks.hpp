#pragma once

#include <cstdint>
#include <functional>

namespace exa {

// One message that would be an MPI send/recv pair in a distributed run.
// The mesh layer reports these from the *same* intersection logic that
// performs the actual (in-process) data motion, so message counts and
// sizes are exact for the given BoxArray + DistributionMapping — only the
// network's time-per-byte is modeled (in src/comm).
struct MessageRecord {
    int src_rank = 0;
    int dst_rank = 0;
    std::int64_t bytes = 0;
    const char* tag = ""; // e.g. "fillboundary", "parallelcopy"
};

using MessageHook = std::function<void(const MessageRecord&)>;

// Process-global sink for message records (mirrors ExecConfig's launch
// hook). Registered by the comm/perf layer; cheap no-op when absent.
class CommHooks {
public:
    static void setMessageHook(MessageHook h);
    static void clearMessageHook();
    static void notify(const MessageRecord& r);
    static bool active();
};

} // namespace exa
