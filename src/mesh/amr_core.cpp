#include "mesh/amr_core.hpp"

#include "core/parallel_for.hpp"

#include <cassert>

namespace exa {

AmrCore::AmrCore(const Geometry& level0_geom, const AmrInfo& info) : m_info(info) {
    m_geom.resize(info.max_level + 1);
    m_ba.resize(info.max_level + 1);
    m_dm.resize(info.max_level + 1);
    m_geom[0] = level0_geom;
    for (int lev = 1; lev <= info.max_level; ++lev) {
        m_geom[lev] = m_geom[lev - 1].refined(info.ref_ratio);
    }
}

void AmrCore::initBaseLevel() {
    BoxArray ba(m_geom[0].domain());
    ba.maxSize(m_info.max_grid_size);
    m_ba[0] = ba;
    m_dm[0] = DistributionMapping(ba, m_info.nranks, m_info.strategy);
    m_finest_level = 0;
    MakeNewLevelFromScratch(0, m_ba[0], m_dm[0]);
}

double AmrCore::coveredFraction(int lev) const {
    const auto dom_pts = m_geom[lev].domain().numPts();
    return dom_pts > 0 ? static_cast<double>(m_ba[lev].numPts()) / dom_pts : 0.0;
}

BoxArray AmrCore::makeFineBoxes(int lev) {
    // Tag on level lev.
    MultiFab tags(m_ba[lev], m_dm[lev], 1, 0);
    tags.setVal(0.0);
    ErrorEst(lev, tags);

    // Buffer the tags so features have room to move between regrids.
    if (m_info.n_error_buf > 0) {
        MultiFab buf(m_ba[lev], m_dm[lev], 1, m_info.n_error_buf);
        buf.setVal(0.0);
        for (std::size_t i = 0; i < tags.size(); ++i) {
            auto t = tags.const_array(static_cast<int>(i));
            auto b = buf.array(static_cast<int>(i));
            const int nb = m_info.n_error_buf;
            // Writes are idempotent (every touched zone gets 1.0), so the
            // neighborhood stores stay order-independent under the Debug
            // backend's replay checks.
            ParallelFor(KernelInfo::streaming("amr_tag_buffer", 16.0),
                        tags.box(static_cast<int>(i)), [=](int ii, int j, int k) {
                if (t(ii, j, k) != 0.0) {
                    for (int dk = -nb; dk <= nb; ++dk)
                        for (int dj = -nb; dj <= nb; ++dj)
                            for (int di = -nb; di <= nb; ++di)
                                if (b.contains(ii + di, j + dj, k + dk))
                                    b(ii + di, j + dj, k + dk) = 1.0;
                }
            });
        }
        // Merge buffered tags back (including images that landed in ghost
        // zones of neighboring fabs).
        tags.setVal(0.0);
        tags.ParallelCopy(buf, 0, 0, 1, 0, m_geom[lev].periodicity());
        for (std::size_t i = 0; i < tags.size(); ++i) {
            auto t = tags.array(static_cast<int>(i));
            auto b = buf.const_array(static_cast<int>(i));
            ParallelFor(KernelInfo::streaming("amr_tag_merge", 16.0),
                        tags.box(static_cast<int>(i)), [=](int ii, int j, int k) {
                if (b(ii, j, k) != 0.0) t(ii, j, k) = 1.0;
            });
        }
    }

    // Cluster into boxes on level lev, then refine to level lev+1.
    TagCluster cluster(m_info.blocking_factor);
    std::vector<Box> boxes = cluster.cluster(tags, m_geom[lev].domain());

    // Proper nesting: a fine box must sit inside the grids of this level,
    // or FillPatch would have no parent data under its ghost zones. Clip
    // clustered boxes against this level's BoxArray.
    std::vector<Box> nested;
    for (const Box& b : boxes) {
        for (const auto& [idx, isect] : m_ba[lev].intersections(b)) {
            (void)idx;
            nested.push_back(isect);
        }
    }
    // And strictly inside it: keep fine grids n_proper zones away from the
    // union's boundary (level 0 covers its domain, so nothing to do
    // there), or the zone just outside a coarse/fine face — the one
    // refluxing corrects and ghost interpolation reads — would not exist
    // on this level. Subtract the grown complement of the union, periodic
    // images included.
    if (m_info.n_proper > 0 && lev > 0) {
        const Box& dom = m_geom[lev].domain();
        std::vector<Box> comp{dom};
        for (std::size_t i = 0; i < m_ba[lev].size(); ++i) {
            std::vector<Box> next;
            for (const Box& c : comp)
                for (const Box& q : boxDiff(c, m_ba[lev][i])) next.push_back(q);
            comp.swap(next);
        }
        std::vector<Box> forbidden;
        for (const Box& c : comp) {
            const Box g = grow(c, m_info.n_proper);
            for (int sk : {-1, 0, 1})
                for (int sj : {-1, 0, 1})
                    for (int si : {-1, 0, 1}) {
                        if ((si != 0 && !m_geom[lev].isPeriodic(0)) ||
                            (sj != 0 && !m_geom[lev].isPeriodic(1)) ||
                            (sk != 0 && !m_geom[lev].isPeriodic(2))) {
                            continue;
                        }
                        Box s = g;
                        s.shift(0, si * dom.length(0));
                        s.shift(1, sj * dom.length(1));
                        s.shift(2, sk * dom.length(2));
                        if (s.intersects(dom)) forbidden.push_back(s & dom);
                    }
        }
        std::vector<Box> shrunk;
        for (const Box& b : nested) {
            std::vector<Box> pieces{b};
            for (const Box& f : forbidden) {
                std::vector<Box> next;
                for (const Box& p : pieces)
                    for (const Box& q : boxDiff(p, f)) next.push_back(q);
                pieces.swap(next);
            }
            shrunk.insert(shrunk.end(), pieces.begin(), pieces.end());
        }
        nested.swap(shrunk);
    }
    BoxArray fine(std::move(nested));
    fine.refine(m_info.ref_ratio);
    fine.maxSize(m_info.max_grid_size);
    return fine;
}

void AmrCore::regrid(int lbase) {
    assert(lbase >= 0 && lbase <= m_finest_level);
    int new_finest = lbase;
    for (int lev = lbase; lev < m_info.max_level; ++lev) {
        BoxArray fine = makeFineBoxes(lev);
        if (fine.empty()) break;
        const int flev = lev + 1;
        new_finest = flev;
        DistributionMapping dm(fine, m_info.nranks, m_info.strategy);
        if (flev > m_finest_level) {
            m_ba[flev] = fine;
            m_dm[flev] = dm;
            MakeNewLevelFromCoarse(flev, fine, dm);
        } else if (!(fine == m_ba[flev])) {
            m_ba[flev] = fine;
            m_dm[flev] = dm;
            RemakeLevel(flev, fine, dm);
        }
    }
    for (int lev = new_finest + 1; lev <= m_finest_level; ++lev) {
        ClearLevel(lev);
        m_ba[lev] = BoxArray{};
        m_dm[lev] = DistributionMapping{};
    }
    m_finest_level = new_finest;
}

} // namespace exa
