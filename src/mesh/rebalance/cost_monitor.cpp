#include "mesh/rebalance/cost_monitor.hpp"

#include "core/timer.hpp"

#include <algorithm>
#include <numeric>

namespace exa {

CostMonitor::Level& CostMonitor::level(int lev) {
    if (lev >= static_cast<int>(m_levels.size())) {
        m_levels.resize(lev + 1);
    }
    return m_levels[lev];
}

const CostMonitor::Level* CostMonitor::levelIfPresent(int lev) const {
    if (lev < 0 || lev >= static_cast<int>(m_levels.size())) return nullptr;
    return &m_levels[lev];
}

void CostMonitor::resetLevel(int lev, std::size_t nboxes) {
    Level& L = level(lev);
    L.work.assign(nboxes, 0.0);
    L.time.assign(nboxes, 0.0);
    L.ema_work.assign(nboxes, 0.0);
    L.ema_time.assign(nboxes, 0.0);
    L.committed = 0;
}

namespace {
void addInto(std::vector<double>& v, int fab, double amount) {
    if (fab < 0) return;
    if (fab >= static_cast<int>(v.size())) v.resize(fab + 1, 0.0);
    v[fab] += amount;
}
} // namespace

void CostMonitor::addWork(int lev, int fab, double units) {
    if (lev < 0) return;
    addInto(level(lev).work, fab, units);
}

void CostMonitor::addTime(int lev, int fab, double seconds) {
    if (lev < 0) return;
    addInto(level(lev).time, fab, seconds);
}

void CostMonitor::commitStep(int lev) {
    if (lev < 0) return;
    Level& L = level(lev);
    const std::size_t n = std::max(L.work.size(), L.time.size());
    L.work.resize(n, 0.0);
    L.time.resize(n, 0.0);
    L.ema_work.resize(n, 0.0);
    L.ema_time.resize(n, 0.0);
    const double a = std::clamp(m_opt.ema_alpha, 0.0, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        if (L.committed == 0) {
            // First sample: seed the EMA rather than blending with zero,
            // so warm-up steps are not under-weighted.
            L.ema_work[i] = L.work[i];
            L.ema_time[i] = L.time[i];
        } else {
            L.ema_work[i] = a * L.work[i] + (1.0 - a) * L.ema_work[i];
            L.ema_time[i] = a * L.time[i] + (1.0 - a) * L.ema_time[i];
        }
        L.work[i] = 0.0;
        L.time[i] = 0.0;
    }
    ++L.committed;
}

int CostMonitor::committedSteps(int lev) const {
    const Level* L = levelIfPresent(lev);
    return L ? L->committed : 0;
}

std::vector<double> CostMonitor::costs(int lev) const {
    const Level* L = levelIfPresent(lev);
    if (L == nullptr || L->committed == 0) return {};
    const std::size_t n = L->ema_work.size();

    auto meanOf = [](const std::vector<double>& v) {
        return v.empty() ? 0.0
                         : std::accumulate(v.begin(), v.end(), 0.0) / v.size();
    };

    std::vector<double> cost(n, 0.0);
    switch (m_opt.metric) {
        case CostMetric::Work:
            cost = L->ema_work;
            break;
        case CostMetric::Time:
            cost = L->ema_time;
            break;
        case CostMetric::Hybrid: {
            // Mean-normalize each channel so seconds and work units blend
            // scale-free; a channel with no samples contributes nothing.
            const double mw = meanOf(L->ema_work);
            const double mt = meanOf(L->ema_time);
            for (std::size_t i = 0; i < n; ++i) {
                double c = 0.0;
                if (mw > 0) c += L->ema_work[i] / mw;
                if (mt > 0) c += L->ema_time[i] / mt;
                cost[i] = c;
            }
            break;
        }
    }
    // Positive floor: an idle box still occupies memory and halo traffic
    // on its rank, and zero weights degenerate the knapsack ordering.
    const double mean = meanOf(cost);
    const double floor = mean > 0 ? 1.0e-6 * mean : 1.0;
    for (double& c : cost) c = std::max(c, floor);
    return cost;
}

CostMonitor::ScopedFabTimer::ScopedFabTimer(CostMonitor* mon, int lev, int fab)
    : m_mon(mon), m_lev(lev), m_fab(fab) {}

CostMonitor::ScopedFabTimer::~ScopedFabTimer() {
    if (m_mon != nullptr) {
        m_mon->addTime(m_lev, m_fab, m_timer.seconds());
    }
}

} // namespace exa
