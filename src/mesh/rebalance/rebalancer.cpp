#include "mesh/rebalance/rebalancer.hpp"

#include "core/debug.hpp"
#include "core/executor.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/step_guard.hpp"

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>

namespace exa {

namespace {

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::min();

// Bit-compare the full grown box of every fab against its pre-migration
// clone (Backend::Debug verification pass).
bool bitIdentical(const MultiFab& a, const MultiFab& b, std::string* where) {
    for (std::size_t f = 0; f < a.size(); ++f) {
        auto x = a.const_array(static_cast<int>(f));
        auto y = b.const_array(static_cast<int>(f));
        const Box gb = a.fabbox(static_cast<int>(f));
        for (int n = 0; n < a.nComp(); ++n) {
            for (int k = gb.smallEnd(2); k <= gb.bigEnd(2); ++k) {
                for (int j = gb.smallEnd(1); j <= gb.bigEnd(1); ++j) {
                    for (int i = gb.smallEnd(0); i <= gb.bigEnd(0); ++i) {
                        const Real va = x(i, j, k, n);
                        const Real vb = y(i, j, k, n);
                        // memcmp semantics: NaN != NaN must still count as
                        // identical only when the bit patterns match.
                        if (std::memcmp(&va, &vb, sizeof(Real)) != 0) {
                            if (where != nullptr) {
                                std::ostringstream os;
                                os << "fab " << f << ", zone (" << i << "," << j
                                   << "," << k << "), comp " << n << ": " << vb
                                   << " -> " << va;
                                *where = os.str();
                            }
                            return false;
                        }
                    }
                }
            }
        }
    }
    return true;
}

} // namespace

void Rebalancer::noteRegrid(int lev, std::size_t nboxes) {
    m_monitor.resetLevel(lev, nboxes);
    if (lev >= static_cast<int>(m_last_step.size())) {
        m_last_step.resize(lev + 1, kNever);
    }
    m_last_step[lev] = kNever;
}

RebalanceDecision Rebalancer::step(int lev, std::int64_t step_index,
                                   const std::vector<MultiFab*>& fabs) {
    RebalanceDecision d;
    m_monitor.commitStep(lev);
    if (!m_opt.enabled) {
        d.reason = "disabled";
        return d;
    }
    if (fabs.empty() || !fabs.front()->isDefined()) {
        d.reason = "no registered state";
        return d;
    }
    if (StepGuard::advanceActive()) {
        // Migrating between a StepGuard snapshot and its possible restore
        // would desynchronize the rollback point. Skip on every backend;
        // diagnose the caller under Backend::Debug.
        if (ExecConfig::backend() == Backend::Debug) {
            debug::reportViolation(
                "Rebalancer", "rebalance-during-retry",
                "Rebalancer::step called while a StepGuard::advance is on "
                "the stack (level " +
                    std::to_string(lev) + ", step " +
                    std::to_string(step_index) + ")");
        }
        d.reason = "rebalance-during-retry";
        return d;
    }
    if (m_monitor.committedSteps(lev) < m_opt.warmup_steps) {
        d.reason = "warming up";
        return d;
    }
    if (lev >= static_cast<int>(m_last_step.size())) {
        m_last_step.resize(lev + 1, kNever);
    }
    if (m_last_step[lev] != kNever &&
        step_index - m_last_step[lev] < m_opt.min_interval) {
        d.reason = "min-interval hold";
        return d;
    }

    const MultiFab& canon = *fabs.front();
    const BoxArray& ba = canon.boxArray();
    const DistributionMapping& dm = canon.distributionMap();
    const std::vector<double> cost = m_monitor.costs(lev);
    if (cost.size() != ba.size()) {
        d.reason = "cost/BoxArray size mismatch";
        return d;
    }

    d.measured_imbalance = DistributionMapping::imbalance(cost, dm);
    if (d.measured_imbalance < m_opt.imbalance_trigger) {
        d.reason = "below trigger";
        return d;
    }

    const DistributionMapping candidate(ba, dm.numRanks(), cost, m_opt.strategy);
    d.predicted_imbalance = DistributionMapping::imbalance(cost, candidate);
    if (d.predicted_imbalance > d.measured_imbalance * m_opt.hysteresis) {
        d.reason = "hysteresis: candidate buys too little";
        return d;
    }

    // Migrate. Under Backend::Debug keep pre-migration clones and verify
    // bit-identity afterwards — this is also what catches the
    // migration-payload-corrupt fault site.
    const bool verify = ExecConfig::backend() == Backend::Debug;
    std::vector<MultiFab> pre;
    if (verify) {
        pre.reserve(fabs.size());
        for (const MultiFab* mf : fabs) {
            MultiFab copy(mf->boxArray(), mf->distributionMap(), mf->nComp(),
                          mf->nGrow());
            MultiFab::Copy(copy, *mf, 0, 0, mf->nComp(), mf->nGrow());
            pre.push_back(std::move(copy));
        }
    }

    for (std::size_t i = 0; i < fabs.size(); ++i) {
        const auto st = fabs[i]->Redistribute(candidate, "rebalance");
        d.boxes_moved += st.boxes_moved;
        d.bytes_moved += st.bytes;
        if (verify) {
            std::string where;
            if (!bitIdentical(*fabs[i], pre[i], &where)) {
                debug::reportViolation(
                    "Rebalancer", "migration-data-corruption",
                    "fab set " + std::to_string(i) +
                        " not bit-identical after migration: " + where);
            }
        }
    }

    d.performed = true;
    m_last_step[lev] = step_index;
    ++m_stats.rebalances;
    m_stats.boxes_moved += d.boxes_moved;
    m_stats.bytes_moved += d.bytes_moved;

    if (CommHooks::rebalanceActive()) {
        CommHooks::notifyRebalance({lev, d.boxes_moved, d.bytes_moved,
                                    d.measured_imbalance,
                                    d.predicted_imbalance});
    }

    {
        std::ostringstream os;
        os << "level " << lev << " step " << step_index << ": imbalance "
           << d.measured_imbalance << " -> " << d.predicted_imbalance << ", "
           << d.boxes_moved << " boxes / " << d.bytes_moved
           << " bytes migrated";
        d.reason = os.str();
    }
    if (m_opt.verbose) {
        std::fprintf(stderr, "[exa-rebalance] %s\n  %s\n", d.reason.c_str(),
                     DistributionMapping::describeBalance(
                         cost, fabs.front()->distributionMap())
                         .c_str());
    }
    return d;
}

} // namespace exa
