#pragma once

// Per-box, per-level runtime cost accounting for the load balancer.
//
// The paper's WD-collision problem concentrates VODE burn work in a thin
// reacting interface: a handful of boxes cost 10-100x the rest, and a
// zone-count DistributionMapping leaves most ranks idle. The CostMonitor
// measures where the time actually goes, one number per box per step,
// from two channels:
//
//   * work  — model-based weights fed by the fab loops themselves: burn
//     integrator steps per box (the per-zone `zone_steps` BurnGridStats
//     already counts) plus a zones-proportional hydro baseline. Exactly
//     reproducible across runs and backends, so it is the default metric:
//     uniform work must never trigger a rebalance, and wall-clock noise
//     would break that.
//   * time  — wall seconds from scoped timers around the same fab loops
//     (TimerRegistry-style), for runs where the model is wrong (e.g. EOS
//     cost cliffs). Noisy but honest.
//
// Each step's sums are folded into an exponential moving average so one
// slow step (a page fault, a retried burn) does not thrash the mapping.

#include "core/timer.hpp"

#include <cstddef>
#include <vector>

namespace exa {

enum class CostMetric {
    Work,   // model units only (deterministic, the default)
    Time,   // measured wall seconds only
    Hybrid, // mean-normalized blend of both channels
};

struct CostMonitorOptions {
    // EMA weight of the newest step: ema = alpha*current + (1-alpha)*ema.
    double ema_alpha = 0.7;
    CostMetric metric = CostMetric::Work;
};

class CostMonitor {
public:
    CostMonitor() = default;
    explicit CostMonitor(const CostMonitorOptions& opt) : m_opt(opt) {}

    const CostMonitorOptions& options() const { return m_opt; }

    // Forget level `lev` and size its accumulators for `nboxes` boxes
    // (called at level creation and after every regrid: costs measured on
    // the old BoxArray mean nothing on the new one).
    void resetLevel(int lev, std::size_t nboxes);

    // Accumulate into the current (uncommitted) step. Out-of-range fab
    // indices grow the accumulators, so feeding before the first
    // resetLevel is harmless.
    void addWork(int lev, int fab, double units);
    void addTime(int lev, int fab, double seconds);

    // Fold the current step's sums into the EMA and start a new step.
    void commitStep(int lev);
    int committedSteps(int lev) const;

    // The smoothed per-box cost for the configured metric; empty until
    // the first commit, and all-positive (a floor of one work unit per
    // box keeps empty boxes from degenerating the knapsack).
    std::vector<double> costs(int lev) const;

    // Scoped wall timer crediting one fab: construct at loop-body entry,
    // the destructor calls addTime. No-op when monitor is null.
    class ScopedFabTimer {
    public:
        ScopedFabTimer(CostMonitor* mon, int lev, int fab);
        ~ScopedFabTimer();
        ScopedFabTimer(const ScopedFabTimer&) = delete;
        ScopedFabTimer& operator=(const ScopedFabTimer&) = delete;

    private:
        CostMonitor* m_mon;
        int m_lev, m_fab;
        WallTimer m_timer;
    };

private:
    struct Level {
        std::vector<double> work, time;         // current step sums
        std::vector<double> ema_work, ema_time; // smoothed history
        int committed = 0;
    };

    Level& level(int lev);
    const Level* levelIfPresent(int lev) const;

    std::vector<Level> m_levels;
    CostMonitorOptions m_opt;
};

} // namespace exa
