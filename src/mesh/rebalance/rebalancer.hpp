#pragma once

// Cost-driven dynamic load balancing.
//
// The Rebalancer closes the loop the CostMonitor opens: once the
// measured per-rank imbalance of a level crosses a threshold, it builds a
// cost-weighted DistributionMapping (knapsack by default) and migrates
// every registered MultiFab to it in place via MultiFab::Redistribute —
// cached ParallelCopy plans, CommLedger-accounted migration traffic, a
// fresh mapping id so stale plans lapse.
//
// Trigger policy (all must hold):
//   * enabled, and the level has at least `warmup_steps` committed cost
//     samples;
//   * at least `min_interval` steps since this level last rebalanced;
//   * measured max/mean cost imbalance >= imbalance_trigger;
//   * the candidate mapping's predicted imbalance is at most
//     `hysteresis` * measured — a mapping must buy a real improvement
//     before we pay migration traffic for it;
//   * never while a StepGuard::advance() is on the stack: migrating
//     between a snapshot and its possible restore would desynchronize
//     the rollback point. Under Backend::Debug this is diagnosed as a
//     "rebalance-during-retry" violation; it is skipped on every backend.
//
// Under Backend::Debug a performed migration is also verified: every
// registered MultiFab is snapshotted before and bit-compared after, so a
// corrupted migration (see the migration-payload-corrupt fault site)
// fails loudly instead of polluting the run.

#include "mesh/distribution.hpp"
#include "mesh/multifab.hpp"
#include "mesh/rebalance/cost_monitor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace exa {

struct RebalanceOptions {
    bool enabled = false;
    double imbalance_trigger = 1.5; // measured max/mean that arms a rebalance
    double hysteresis = 0.9;        // predicted must beat measured by this factor
    int min_interval = 4;           // steps between rebalances of one level
    int warmup_steps = 2;           // committed cost samples before first trigger
    DistributionMapping::Strategy strategy = DistributionMapping::Strategy::Knapsack;
    CostMonitorOptions cost;        // metric + EMA smoothing
    // Model work units per zone of non-burn (hydro/MHD) cost, added by the
    // drivers each step so burn-free boxes keep a realistic floor.
    double hydro_zone_work = 1.0;
    bool verbose = false;           // narrate decisions on stderr
};

// What Rebalancer::step decided and did, for logging and tests.
struct RebalanceDecision {
    bool performed = false;
    double measured_imbalance = 1.0;  // under the pre-step mapping
    double predicted_imbalance = 1.0; // under the candidate (if built)
    std::int64_t boxes_moved = 0;     // ownership changes, summed over fabs
    std::int64_t bytes_moved = 0;     // off-rank migration payload
    std::string reason;               // why skipped, or a performed summary
};

class Rebalancer {
public:
    Rebalancer() = default;
    explicit Rebalancer(const RebalanceOptions& opt)
        : m_opt(opt), m_monitor(opt.cost) {}

    const RebalanceOptions& options() const { return m_opt; }
    CostMonitor& monitor() { return m_monitor; }
    const CostMonitor& monitor() const { return m_monitor; }

    // End-of-step hook: commit the step's cost samples for `lev`, then
    // evaluate the trigger policy and — if it fires — migrate every fab
    // in `fabs` (all sharing one BoxArray and DistributionMapping; the
    // first is the canonical layout) to the cost-weighted mapping. The
    // fabs' own distributionMap() is the post-call source of truth.
    RebalanceDecision step(int lev, std::int64_t step_index,
                           const std::vector<MultiFab*>& fabs);

    // A regrid rebuilt level `lev` with `nboxes` boxes: drop its cost
    // history (the new boxes are strangers to the old measurements) and
    // let the zone-count mapping from the regrid be the cold-start.
    void noteRegrid(int lev, std::size_t nboxes);

    struct Stats {
        std::int64_t rebalances = 0;
        std::int64_t boxes_moved = 0;
        std::int64_t bytes_moved = 0;
    };
    const Stats& stats() const { return m_stats; }

private:
    RebalanceOptions m_opt;
    CostMonitor m_monitor;
    Stats m_stats;
    std::vector<std::int64_t> m_last_step; // per level; min()-sentinel = never
};

} // namespace exa
