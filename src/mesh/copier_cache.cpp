#include "mesh/copier_cache.hpp"

#include "core/timer.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace exa {

namespace {

// Non-negative integer from the environment; `fallback` when unset or
// unparsable.
std::size_t envSize(const char* name, std::size_t fallback) {
    const char* v = std::getenv(name);
    if (v == nullptr || *v == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v, &end, 10);
    if (end == v) return fallback;
    return static_cast<std::size_t>(n);
}

std::uint64_t mix64(std::uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

IntVect periodVect(const Periodicity& p) {
    return {p.period(0), p.period(1), p.period(2)};
}

} // namespace

std::size_t CopierKeyHash::operator()(const CopierKey& k) const {
    std::uint64_t h = mix64(k.dst_ba);
    h = mix64(h ^ k.src_ba);
    h = mix64(h ^ k.dst_dm);
    h = mix64(h ^ k.src_dm);
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.ng)) |
                   (static_cast<std::uint64_t>(static_cast<int>(k.kind)) << 32)));
    h = mix64(h ^ (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.period.x)) |
                   (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.period.y))
                    << 32)));
    h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.period.z)));
    return static_cast<std::size_t>(h);
}

CopierCache::CopierCache()
    : m_capacity(envSize("EXA_COPIER_CACHE_CAPACITY", 128)),
      m_per_tenant(envSize("EXA_COPIER_CACHE_PER_TENANT", 32)) {}

CopierCache& CopierCache::instance() {
    static CopierCache cache;
    return cache;
}

// --- builders (the cold path) -------------------------------------------
//
// Each builder preserves the exact item order of the legacy rescanning
// loops — destination fab outermost, then periodic shift, then ascending
// source fab — so plan execution is bit-identical to the pre-cache code
// even where copies overlap.

CopierCache::PlanPtr CopierCache::buildFillBoundary(const BoxArray& ba,
                                                    const std::vector<int>& ranks,
                                                    int ng,
                                                    const Periodicity& period) {
    auto plan = std::make_shared<CopyPlan>();
    const auto shifts = period.shifts();
    const int n = static_cast<int>(ba.size());
    for (int i = 0; i < n; ++i) {
        const Box dst_region = grow(ba[i], ng);
        for (const IntVect& s : shifts) {
            for (const auto& [j, src_box] : ba.intersections(shift(dst_region, -s))) {
                if (j == i && s == IntVect::zero()) continue;
                CopyItem item;
                item.dst_fab = i;
                item.src_fab = j;
                item.src_box = src_box;
                item.dst_box = shift(src_box, s);
                item.dst_rank = ranks.empty() ? 0 : ranks[i];
                item.src_rank = ranks.empty() ? 0 : ranks[j];
                plan->zones += src_box.numPts();
                if (!item.local()) plan->offrank_zones += src_box.numPts();
                plan->items.push_back(item);
            }
        }
    }
    return plan;
}

CopierCache::PlanPtr CopierCache::buildParallelCopy(
    const BoxArray& dst_ba, const std::vector<int>& dst_ranks, const BoxArray& src_ba,
    const std::vector<int>& src_ranks, int dst_ng, const Periodicity& period) {
    auto plan = std::make_shared<CopyPlan>();
    const auto shifts = period.shifts();
    const int n = static_cast<int>(dst_ba.size());
    for (int i = 0; i < n; ++i) {
        const Box dst_region = grow(dst_ba[i], dst_ng);
        for (const IntVect& s : shifts) {
            for (const auto& [j, src_box] :
                 src_ba.intersections(shift(dst_region, -s))) {
                CopyItem item;
                item.dst_fab = i;
                item.src_fab = j;
                item.src_box = src_box;
                item.dst_box = shift(src_box, s);
                item.dst_rank = dst_ranks.empty() ? 0 : dst_ranks[i];
                item.src_rank = src_ranks.empty() ? 0 : src_ranks[j];
                plan->zones += src_box.numPts();
                if (!item.local()) plan->offrank_zones += src_box.numPts();
                plan->items.push_back(item);
            }
        }
    }
    return plan;
}

CopierCache::PlanPtr CopierCache::buildAverageDown(const BoxArray& crse_ba,
                                                   const BoxArray& fine_ba,
                                                   int ratio) {
    auto plan = std::make_shared<CopyPlan>();
    BoxArray cfba = fine_ba;
    cfba.coarsen(ratio);
    const int n = static_cast<int>(crse_ba.size());
    for (int ci = 0; ci < n; ++ci) {
        for (const auto& [fi, under] : cfba.intersections(crse_ba[ci])) {
            CopyItem item;
            item.dst_fab = ci;
            item.src_fab = fi;
            item.dst_box = under;
            item.src_box = under;
            plan->zones += under.numPts();
            plan->items.push_back(item);
        }
    }
    return plan;
}

// --- memoized front ends -------------------------------------------------

CopierCache::PlanPtr CopierCache::fillBoundary(const BoxArray& ba,
                                               const DistributionMapping& dm, int ng,
                                               const Periodicity& period) {
    assert(ba.size() == dm.size());
    CopierKey key;
    key.dst_ba = key.src_ba = ba.id();
    key.dst_dm = key.src_dm = dm.id();
    key.ng = ng;
    key.period = periodVect(period);
    key.kind = CopierKind::FillBoundary;
    const bool cacheable = ba.id() != 0 && dm.id() != 0;
    return getOrBuild(key, cacheable, [&]() {
        return buildFillBoundary(ba, dm.ranks(), ng, period);
    });
}

CopierCache::PlanPtr CopierCache::parallelCopy(const BoxArray& dst_ba,
                                               const DistributionMapping& dst_dm,
                                               const BoxArray& src_ba,
                                               const DistributionMapping& src_dm,
                                               int dst_ng, const Periodicity& period) {
    CopierKey key;
    key.dst_ba = dst_ba.id();
    key.src_ba = src_ba.id();
    key.dst_dm = dst_dm.id();
    key.src_dm = src_dm.id();
    key.ng = dst_ng;
    key.period = periodVect(period);
    key.kind = CopierKind::ParallelCopy;
    const bool cacheable = dst_ba.id() != 0 && src_ba.id() != 0 &&
                           dst_dm.id() != 0 && src_dm.id() != 0;
    return getOrBuild(key, cacheable, [&]() {
        return buildParallelCopy(dst_ba, dst_dm.ranks(), src_ba, src_dm.ranks(),
                                 dst_ng, period);
    });
}

CopierCache::PlanPtr CopierCache::averageDown(const BoxArray& crse_ba,
                                              const BoxArray& fine_ba, int ratio) {
    CopierKey key;
    key.dst_ba = crse_ba.id();
    key.src_ba = fine_ba.id();
    key.ng = ratio;
    key.kind = CopierKind::AverageDown;
    const bool cacheable = crse_ba.id() != 0 && fine_ba.id() != 0;
    return getOrBuild(key, cacheable, [&]() {
        return buildAverageDown(crse_ba, fine_ba, ratio);
    });
}

CopierCache::PlanPtr CopierCache::getOrBuild(const CopierKey& key, bool cacheable,
                                             const std::function<PlanPtr()>& build) {
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        if (m_enabled && cacheable) {
            auto it = m_map.find(key);
            if (it != m_map.end()) {
                ++m_hits;
                m_lru.splice(m_lru.begin(), m_lru, it->second);
                return it->second->plan;
            }
        }
        ++m_misses;
    }
    // Build outside the lock: plan construction is the expensive part and
    // must not serialize against concurrent lookups.
    WallTimer t;
    PlanPtr plan = build();
    const double dt = t.seconds();
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_build_seconds += dt;
        if (m_enabled && cacheable && effectiveCapacityLocked() > 0) {
            if (m_map.find(key) == m_map.end()) {
                m_lru.push_front({key, plan});
                m_map[key] = m_lru.begin();
                evictToCapacityLocked();
            }
        }
    }
    return plan;
}

CopierCache::PartitionPtr CopierCache::interiorPartition(const BoxArray& ba,
                                                         int stencil) {
    const PartitionKey key{ba.id(), stencil};
    const bool cacheable = ba.id() != 0;
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        if (m_enabled && cacheable) {
            auto it = m_partitions.find(key);
            if (it != m_partitions.end()) {
                ++m_partition_hits;
                return it->second;
            }
        }
        ++m_partition_misses;
    }
    PartitionPtr part = buildInteriorPartition(ba, stencil);
    if (cacheable) {
        std::lock_guard<std::mutex> lk(m_mutex);
        if (m_enabled) m_partitions.emplace(key, part);
    }
    return part;
}

CopierCache::PartitionPtr CopierCache::buildInteriorPartition(const BoxArray& ba,
                                                              int stencil) {
    auto part = std::make_shared<PartitionPlan>();
    part->stencil = stencil;
    part->fabs.resize(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box& vb = ba[i];
        FabRegions& fr = part->fabs[i];
        const Box interior = grow(vb, -stencil);
        if (interior.ok()) {
            fr.interior = interior;
            fr.shell = boxDiff(vb, interior);
        } else {
            // Box thinner than 2*stencil in some direction: everything is
            // boundary shell. fr.interior stays default-constructed
            // (empty), which callers must skip.
            fr.shell = {vb};
        }
    }
    return part;
}

CopierCache::Stats CopierCache::stats() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    Stats s;
    s.hits = m_hits;
    s.misses = m_misses;
    s.evictions = m_evictions;
    s.plans = m_map.size();
    s.build_seconds = m_build_seconds;
    s.partition_hits = m_partition_hits;
    s.partition_misses = m_partition_misses;
    s.partitions = m_partitions.size();
    return s;
}

void CopierCache::resetStats() {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_hits = m_misses = m_evictions = 0;
    m_partition_hits = m_partition_misses = 0;
    m_build_seconds = 0.0;
}

void CopierCache::clear() {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_map.clear();
    m_lru.clear();
    m_partitions.clear();
}

std::size_t CopierCache::effectiveCapacityLocked() const {
    if (m_capacity == 0) return 0; // explicit off switch
    if (m_tenants > 0 && m_per_tenant > 0) {
        return std::max(m_capacity,
                        static_cast<std::size_t>(m_tenants) * m_per_tenant);
    }
    return m_capacity;
}

void CopierCache::evictToCapacityLocked() {
    const std::size_t cap = effectiveCapacityLocked();
    while (m_map.size() > cap) {
        m_map.erase(m_lru.back().key);
        m_lru.pop_back();
        ++m_evictions;
    }
}

std::size_t CopierCache::capacity() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return effectiveCapacityLocked();
}

std::size_t CopierCache::baseCapacity() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_capacity;
}

std::size_t CopierCache::perTenantCapacity() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_per_tenant;
}

void CopierCache::setCapacity(std::size_t n) {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_capacity = n;
    evictToCapacityLocked();
}

void CopierCache::noteLiveTenants(int n) {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_tenants = std::max(0, n);
    evictToCapacityLocked();
}

int CopierCache::liveTenants() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_tenants;
}

void CopierCache::setEnabled(bool enabled) {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_enabled = enabled;
}

bool CopierCache::enabled() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_enabled;
}

} // namespace exa
