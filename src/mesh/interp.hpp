#pragma once

#include "mesh/multifab.hpp"

namespace exa {

// Coarse-to-fine and fine-to-coarse transfer operators for cell-centered
// data, the building blocks of FillPatch and synchronization between AMR
// levels.

// Fill `fine` over `fine_region` (zones of the fine index space) from the
// coarse Array4 by piecewise-constant injection.
void pcInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
              int ratio, int scomp, int dcomp, int ncomp);

// Conservative linear interpolation: reconstruct a minmod-limited linear
// profile in each coarse zone and evaluate it at fine-zone centers. The
// average of the fine values over one coarse zone equals the coarse value
// exactly (conservation), because fine centers are symmetric about the
// coarse center.
void conslinInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
                   int ratio, int scomp, int dcomp, int ncomp);

// Replace each coarse zone under the fine level with the arithmetic mean
// of its ratio^3 fine children (exact conservation on uniform zones).
void averageDown(MultiFab& crse, const MultiFab& fine, int ratio, int scomp,
                 int dcomp, int ncomp);

// Fill dst (valid + ng ghost zones) at the fine level: copy same-level
// data from `fine_src` where available, and interpolate from `crse_src`
// everywhere else (conservative linear). `crse_src` must have enough ghost
// zones filled to support the stencil. Periodic images are honored.
void fillPatchTwoLevels(MultiFab& dst, int ng, const MultiFab& fine_src,
                        const MultiFab& crse_src, const Geometry& crse_geom,
                        const Geometry& fine_geom, int ratio, int scomp, int ncomp);

} // namespace exa
