#pragma once

#include "mesh/multifab.hpp"

namespace exa {

// Coarse-to-fine and fine-to-coarse transfer operators for cell-centered
// data, the building blocks of FillPatch and synchronization between AMR
// levels.

// Fill `fine` over `fine_region` (zones of the fine index space) from the
// coarse Array4 by piecewise-constant injection.
void pcInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
              int ratio, int scomp, int dcomp, int ncomp);

// Conservative linear interpolation: reconstruct a minmod-limited linear
// profile in each coarse zone and evaluate it at fine-zone centers. The
// average of the fine values over one coarse zone equals the coarse value
// exactly (conservation), because fine centers are symmetric about the
// coarse center.
void conslinInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
                   int ratio, int scomp, int dcomp, int ncomp);

// Replace each coarse zone under the fine level with the arithmetic mean
// of its ratio^3 fine children (exact conservation on uniform zones).
void averageDown(MultiFab& crse, const MultiFab& fine, int ratio, int scomp,
                 int dcomp, int ncomp);

// Fill dst (valid + dst_ng ghost zones) at the fine level: copy
// same-level data from `fine_src` where available, and interpolate from
// `crse_src` everywhere else (conservative linear). `crse_src` must have
// enough ghost zones filled to support the stencil. Periodic images are
// honored (the coarse/fine Geometries supply the periodicity, so unlike
// FillBoundary/ParallelCopy there is no trailing Periodicity parameter).
//
// Canonical comm signature: components in (scomp, dcomp, ncomp) order —
// read src levels at scomp, write dst at dcomp — then the ghost width.
// When the split-phase machinery is on, the fine-level overwrite is
// posted before the coarse interpolation loop and finished after it, so
// the same-level copy is in flight while the interpolation runs.
void fillPatchTwoLevels(MultiFab& dst, const MultiFab& fine_src,
                        const MultiFab& crse_src, const Geometry& crse_geom,
                        const Geometry& fine_geom, int ratio, int scomp, int dcomp,
                        int ncomp, int dst_ng = 0);

[[deprecated("use fillPatchTwoLevels(dst, fine_src, crse_src, crse_geom, "
             "fine_geom, ratio, scomp, dcomp, ncomp, dst_ng)")]]
inline void fillPatchTwoLevels(MultiFab& dst, int ng, const MultiFab& fine_src,
                               const MultiFab& crse_src, const Geometry& crse_geom,
                               const Geometry& fine_geom, int ratio, int scomp,
                               int ncomp) {
    fillPatchTwoLevels(dst, fine_src, crse_src, crse_geom, fine_geom, ratio, scomp,
                       scomp, ncomp, ng);
}

} // namespace exa
