#include "mesh/multifab.hpp"

#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/parallel_for.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace exa {

MultiFab::MultiFab(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                   int ngrow, Arena* arena) {
    define(ba, dm, ncomp, ngrow, arena);
}

void MultiFab::define(const BoxArray& ba, const DistributionMapping& dm, int ncomp,
                      int ngrow, Arena* arena) {
    assert(ba.size() == dm.size());
    clear();
    m_ba = ba;
    m_dm = dm;
    m_ncomp = ncomp;
    m_ngrow = ngrow;
    m_fabs.reserve(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        m_fabs.emplace_back(grow(ba[i], ngrow), ncomp, arena);
    }
}

void MultiFab::clear() {
    m_fabs.clear();
    m_ba = BoxArray{};
    m_dm = DistributionMapping{};
    m_ncomp = 0;
    m_ngrow = 0;
}

void MultiFab::setVal(Real v) {
    StreamScope streams;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        streams.useFab(i);
        m_fabs[i].setVal(v);
    }
}

void MultiFab::setVal(Real v, int comp, int ncomp, int ngrow) {
    StreamScope streams;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        streams.useFab(i);
        m_fabs[i].setVal(v, grow(m_ba[i], ngrow), comp, ncomp);
    }
}

void MultiFab::deliverItemTail(const CopyItem& item, int dcomp, int ncomp,
                               bool account, const char* tag) {
    // Injection site: a corrupted message payload — one value of the
    // just-delivered region becomes NaN, as if the wire flipped bits.
    // The poisoned zone is the one nearest the receiving fab's valid
    // box, so a ghost-fill corruption actually feeds the stencils that
    // read it. Plain host write (not a launch) so Backend::Debug's
    // replay passes see identical state.
    if (fault::shouldFire(fault::Site::HaloPayloadCorrupt)) {
        const Box& vb = m_ba[item.dst_fab];
        IntVect p;
        for (int d = 0; d < 3; ++d) {
            p[d] = std::clamp(vb.smallEnd(d), item.dst_box.smallEnd(d),
                              item.dst_box.bigEnd(d));
            if (p[d] < vb.smallEnd(d) || p[d] > vb.bigEnd(d)) {
                p[d] = std::clamp(vb.bigEnd(d), item.dst_box.smallEnd(d),
                                  item.dst_box.bigEnd(d));
            }
        }
        m_fabs[item.dst_fab].array()(p.x, p.y, p.z, dcomp) =
            std::numeric_limits<Real>::quiet_NaN();
    }
    if (account && !item.local()) {
        CommHooks::notify({item.src_rank, item.dst_rank,
                           item.src_box.numPts() * ncomp *
                               static_cast<int>(sizeof(Real)),
                           tag});
    }
}

void MultiFab::copyFromPlan(const CopyPlan& plan, const MultiFab& src, int scomp,
                            int dcomp, int ncomp, const char* tag) {
    const bool account = CommHooks::active();
    StreamScope streams;
    for (const CopyItem& item : plan.items) {
        // Injection site: a dropped off-rank message — the payload never
        // arrives, so neither the copy nor its accounting happens and the
        // destination keeps whatever (stale) values it had. Local items
        // are in-memory copies, not messages, and cannot drop.
        if (!item.local() && fault::shouldFire(fault::Site::CommMessageDrop)) {
            continue;
        }
        streams.useFab(static_cast<std::size_t>(item.dst_fab));
        m_fabs[item.dst_fab].copyFrom(src.m_fabs[item.src_fab], item.src_box, scomp,
                                      item.dst_box, dcomp, ncomp);
        deliverItemTail(item, dcomp, ncomp, account, tag);
    }
}

void MultiFab::FillBoundary(int scomp, int ncomp, const Periodicity& period) {
    assert(scomp + ncomp <= m_ncomp);
    if (m_fabs.empty()) return;
    const auto plan =
        CopierCache::instance().fillBoundary(m_ba, m_dm, m_ngrow, period);
    copyFromPlan(*plan, *this, scomp, scomp, ncomp, "fillboundary");
}

void MultiFab::ParallelCopy(const MultiFab& src, int scomp, int dcomp, int ncomp,
                            int dst_ng, const Periodicity& period) {
    assert(dst_ng <= m_ngrow);
    if (m_fabs.empty() || src.m_fabs.empty()) return;
    const auto plan = CopierCache::instance().parallelCopy(
        m_ba, m_dm, src.m_ba, src.m_dm, dst_ng, period);
    copyFromPlan(*plan, src, scomp, dcomp, ncomp, "parallelcopy");
}

void MultiFab::ParallelCopy(const MultiFab& src, const Periodicity& period) {
    assert(m_ncomp == src.m_ncomp);
    ParallelCopy(src, 0, 0, m_ncomp, 0, period);
}

MultiFab::RedistributeStats MultiFab::Redistribute(const DistributionMapping& new_dm,
                                                   const char* tag) {
    assert(new_dm.size() == m_ba.size());
    RedistributeStats st;
    if (m_fabs.empty()) return st;
    if (new_dm.ranks() == m_dm.ranks()) {
        // Nothing changes owner: keep the current mapping (and its id, so
        // cached plans stay warm).
        return st;
    }

    // Same disjoint BoxArray on both sides, so the cached plan is exactly
    // one self-intersection item per box — the migration manifest.
    const auto plan = CopierCache::instance().parallelCopy(
        m_ba, new_dm, m_ba, m_dm, 0, Periodicity::nonPeriodic());

    // In a distributed run each fab would be packed, shipped, and
    // reallocated on its new owner; here the "move" is a fresh allocation
    // (same arena) plus a local copy of the full grown box, which keeps
    // ghost zones bit-identical across the migration.
    std::vector<FArrayBox> moved;
    moved.reserve(m_fabs.size());
    {
        StreamScope streams;
        for (std::size_t i = 0; i < m_fabs.size(); ++i) {
            streams.useFab(i);
            const Box gb = fabbox(static_cast<int>(i));
            FArrayBox fab(gb, m_ncomp, m_fabs[i].arena());
            fab.copyFrom(m_fabs[i], gb, 0, gb, 0, m_ncomp);
            moved.push_back(std::move(fab));
        }
    }

    const bool account = CommHooks::active();
    for (const CopyItem& item : plan->items) {
        if (item.local()) continue;
        ++st.boxes_moved;
        const std::int64_t bytes =
            item.src_box.numPts() * m_ncomp * static_cast<int>(sizeof(Real));
        st.bytes += bytes;
        if (account) {
            CommHooks::notify({item.src_rank, item.dst_rank, bytes, tag});
        }
        // Injection site: one migrated payload corrupted in flight — the
        // first valid zone of the received fab becomes NaN. Plain host
        // write (not a launch) so Backend::Debug replay passes see
        // identical state.
        if (fault::shouldFire(fault::Site::MigrationPayloadCorrupt)) {
            const Box& vb = m_ba[item.dst_fab];
            moved[item.dst_fab].array()(vb.smallEnd(0), vb.smallEnd(1),
                                        vb.smallEnd(2), 0) =
                std::numeric_limits<Real>::quiet_NaN();
        }
    }

    m_fabs = std::move(moved);
    m_dm = new_dm;
    return st;
}

Real MultiFab::sum(int comp) const {
    Real s = 0;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) s += m_fabs[i].sum(m_ba[i], comp);
    return s;
}

Real MultiFab::min(int comp) const {
    // Reduction identity: an empty (or undefined) MultiFab has min +inf
    // and max -inf, so folding it into a larger reduction is a no-op.
    Real m = std::numeric_limits<Real>::infinity();
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        m = std::min(m, m_fabs[i].min(m_ba[i], comp));
    }
    return m;
}

Real MultiFab::max(int comp) const {
    Real m = -std::numeric_limits<Real>::infinity();
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        m = std::max(m, m_fabs[i].max(m_ba[i], comp));
    }
    return m;
}

Real MultiFab::norminf(int comp) const {
    Real m = 0;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        m = std::max(m, m_fabs[i].norminf(m_ba[i], comp));
    }
    return m;
}

Real MultiFab::norm2(int comp) const {
    Real s = 0;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        const Real n = m_fabs[i].norm2(m_ba[i], comp);
        s += n * n;
    }
    return std::sqrt(s);
}

void MultiFab::saxpy(Real a, const MultiFab& x, int scomp, int dcomp, int ncomp) {
    assert(m_ba == x.m_ba);
    StreamScope streams;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        streams.useFab(i);
        m_fabs[i].saxpy(a, x.m_fabs[i], m_ba[i], scomp, dcomp, ncomp);
    }
}

void MultiFab::plus(Real v, int comp, int ncomp) {
    StreamScope streams;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        streams.useFab(i);
        m_fabs[i].plus(v, m_ba[i], comp, ncomp);
    }
}

void MultiFab::mult(Real v, int comp, int ncomp) {
    StreamScope streams;
    for (std::size_t i = 0; i < m_fabs.size(); ++i) {
        streams.useFab(i);
        m_fabs[i].mult(v, m_ba[i], comp, ncomp);
    }
}

void MultiFab::Copy(MultiFab& dst, const MultiFab& src, int scomp, int dcomp,
                    int ncomp, int ng) {
    assert(dst.m_ba == src.m_ba);
    assert(ng <= dst.nGrow() && ng <= src.nGrow());
    StreamScope streams;
    for (std::size_t i = 0; i < dst.m_fabs.size(); ++i) {
        streams.useFab(i);
        const Box region = grow(dst.m_ba[i], ng);
        dst.m_fabs[i].copyFrom(src.m_fabs[i], region, scomp, region, dcomp, ncomp);
    }
}

void MultiFab::LinComb(MultiFab& dst, Real a, const MultiFab& x, Real b,
                       const MultiFab& y, int comp, int ncomp) {
    assert(dst.m_ba == x.m_ba && dst.m_ba == y.m_ba);
    StreamScope streams;
    for (std::size_t i = 0; i < dst.m_fabs.size(); ++i) {
        streams.useFab(i);
        auto d = dst.m_fabs[i].array();
        auto xa = x.m_fabs[i].const_array();
        auto ya = y.m_fabs[i].const_array();
        ParallelFor(KernelInfo::streaming("mf_lincomb", 24.0), dst.m_ba[i],
                    ncomp, [=](int ii, int j, int k, int n) {
            d(ii, j, k, comp + n) = a * xa(ii, j, k, comp + n) + b * ya(ii, j, k, comp + n);
        });
    }
}

MFIter::MFIter(const MultiFab& mf, bool tiling) : m_mf(&mf) {
    const IntVect ts = ExecConfig::tileSize();
    for (std::size_t i = 0; i < mf.size(); ++i) {
        const Box& vb = mf.box(static_cast<int>(i));
        if (tiling) {
            for (const Box& t : chopDomain(vb, ts)) {
                m_tiles.push_back({static_cast<int>(i), t});
            }
        } else {
            m_tiles.push_back({static_cast<int>(i), vb});
        }
    }
    syncStream();
}

void MFIter::syncStream() {
    if (isValid()) {
        ExecConfig::setCurrentStream(m_tiles[m_pos].fab % ExecConfig::numStreams());
    } else {
        ExecConfig::setCurrentStream(0);
    }
}

Box MFIter::growntilebox(int ng) const {
    Box b = grow(m_tiles[m_pos].box, ng);
    return b & grow(validbox(), m_mf->nGrow());
}

} // namespace exa
