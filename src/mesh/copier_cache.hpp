#pragma once

#include "mesh/box_array.hpp"
#include "mesh/distribution.hpp"
#include "mesh/geometry.hpp"

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace exa {

// Cached communication metadata, mirroring AMReX's FabArrayBase::FB / CPC
// copier caches. Every FillBoundary / ParallelCopy / averageDown used to
// recompute its box-box intersections from scratch on each call — an
// O(nfabs^2 x shifts) host-side scan repeated every timestep, exactly the
// per-step CPU overhead the paper's GPU-resident architecture cannot
// afford. A CopyPlan memoizes the full intersection set once per
// (BoxArray id, DistributionMapping id, ngrow, periodicity) and is then
// replayed for the cost of a hash lookup.

// One box-to-box copy of a plan. src_box and dst_box have the same shape;
// they differ by the periodic shift that produced the intersection.
struct CopyItem {
    int dst_fab = 0;
    int src_fab = 0;
    Box dst_box; // region written in the destination fab
    Box src_box; // same-shape region read from the source fab
    int dst_rank = 0;
    int src_rank = 0;
    bool local() const { return src_rank == dst_rank; }
};

// A full copy plan. Component-independent: an item moves
// numPts * ncomp * sizeof(Real) bytes with ncomp supplied at execution
// time, so one plan serves every MultiFab pair on the same layout.
struct CopyPlan {
    std::vector<CopyItem> items;
    std::int64_t zones = 0;         // total zones moved per execution
    std::int64_t offrank_zones = 0; // zones crossing simulated ranks
};

// Interior/boundary partition of one fab's valid region at a given
// stencil width: `interior` is the largest box whose stencils of that
// width never read a ghost zone, and `shell` is the disjoint cover of
// the rest of the valid box (up to 6 boxes from boxDiff). The async step
// loop sweeps `interior` while the halo exchange is in flight and the
// `shell` after finish(). A box too small to have an interior gets an
// empty interior and its whole valid box as the shell.
struct FabRegions {
    Box interior;
    std::vector<Box> shell;
};

struct PartitionPlan {
    int stencil = 0;
    std::vector<FabRegions> fabs;
};

enum class CopierKind : int { FillBoundary = 0, ParallelCopy = 1, AverageDown = 2 };

struct CopierKey {
    std::uint64_t dst_ba = 0;
    std::uint64_t src_ba = 0;
    std::uint64_t dst_dm = 0;
    std::uint64_t src_dm = 0;
    int ng = 0; // ghost width (coarsening ratio for AverageDown)
    IntVect period{0, 0, 0};
    CopierKind kind = CopierKind::FillBoundary;
    bool operator==(const CopierKey&) const = default;
};

struct CopierKeyHash {
    std::size_t operator()(const CopierKey& k) const;
};

// Process-wide LRU-bounded plan cache. Invalidation is by identity: a
// regrid builds new BoxArrays / DistributionMappings, which carry fresh
// ids, so stale plans are simply never looked up again and age out of the
// LRU. Plans are immutable shared_ptrs: a plan stays valid while a caller
// executes it even if it is concurrently evicted.
class CopierCache {
public:
    using PlanPtr = std::shared_ptr<const CopyPlan>;

    static CopierCache& instance();

    // Memoized plan for MultiFab::FillBoundary on (ba, dm, ng, period).
    PlanPtr fillBoundary(const BoxArray& ba, const DistributionMapping& dm, int ng,
                         const Periodicity& period);
    // Memoized plan for dst.ParallelCopy(src, ..., dst_ng, period).
    PlanPtr parallelCopy(const BoxArray& dst_ba, const DistributionMapping& dst_dm,
                         const BoxArray& src_ba, const DistributionMapping& src_dm,
                         int dst_ng, const Periodicity& period);
    // Memoized (crse fab, fine fab, coarse region under fine) triples for
    // averageDown; dst_box == src_box == the coarsened under-region.
    PlanPtr averageDown(const BoxArray& crse_ba, const BoxArray& fine_ba, int ratio);

    // Uncached builders (the cold path; public so tests and benches can
    // time a fresh pattern build or bypass memoization).
    static PlanPtr buildFillBoundary(const BoxArray& ba, const std::vector<int>& ranks,
                                     int ng, const Periodicity& period);
    static PlanPtr buildParallelCopy(const BoxArray& dst_ba,
                                     const std::vector<int>& dst_ranks,
                                     const BoxArray& src_ba,
                                     const std::vector<int>& src_ranks, int dst_ng,
                                     const Periodicity& period);
    static PlanPtr buildAverageDown(const BoxArray& crse_ba, const BoxArray& fine_ba,
                                    int ratio);

    using PartitionPtr = std::shared_ptr<const PartitionPlan>;

    // Memoized interior/boundary partition of every fab of `ba` at the
    // given stencil width. Cached in its own table with its own counters
    // (partition_* in Stats) so the exact hit/miss accounting of the copy
    // plans is untouched.
    PartitionPtr interiorPartition(const BoxArray& ba, int stencil);
    // Uncached builder (the cold path).
    static PartitionPtr buildInteriorPartition(const BoxArray& ba, int stencil);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t plans = 0;       // currently resident
        double build_seconds = 0.0;  // cumulative cold plan-build time
        std::uint64_t partition_hits = 0;
        std::uint64_t partition_misses = 0;
        std::size_t partitions = 0;  // currently resident partition plans
    };
    Stats stats() const;
    void resetStats();
    void clear(); // drop every plan (stats survive)

    // Effective LRU capacity: max(base, live_tenants * per_tenant) — the
    // cache is process-wide, so N co-resident ensemble tenants with
    // distinct grids each need their own slice of plan slots or they
    // evict each other every step. base == 0 disables caching outright
    // (the explicit off switch) regardless of tenants. Defaults are
    // overridable via EXA_COPIER_CACHE_CAPACITY (base) and
    // EXA_COPIER_CACHE_PER_TENANT, read once at process start.
    std::size_t capacity() const;
    std::size_t baseCapacity() const;
    std::size_t perTenantCapacity() const;
    void setCapacity(std::size_t n);
    // EnsembleRunner reports its live tenant count here as tenants are
    // initialized and retired; shrinking evicts down to the new size.
    void noteLiveTenants(int n);
    int liveTenants() const;

    // Memoization toggle: when disabled every call rebuilds its plan (the
    // same plan-based execution path, just never cached) — used by tests
    // to compare cached vs uncached behavior.
    void setEnabled(bool enabled);
    bool enabled() const;

private:
    CopierCache(); // reads the EXA_COPIER_CACHE_* environment overrides
    PlanPtr getOrBuild(const CopierKey& key, bool cacheable,
                       const std::function<PlanPtr()>& build);
    std::size_t effectiveCapacityLocked() const;
    void evictToCapacityLocked();

    struct Entry {
        CopierKey key;
        PlanPtr plan;
    };

    struct PartitionKey {
        std::uint64_t ba = 0;
        int stencil = 0;
        bool operator==(const PartitionKey&) const = default;
    };
    struct PartitionKeyHash {
        std::size_t operator()(const PartitionKey& k) const {
            return std::hash<std::uint64_t>{}(k.ba) ^
                   (std::hash<int>{}(k.stencil) * 0x9e3779b97f4a7c15ULL);
        }
    };

    mutable std::mutex m_mutex;
    std::list<Entry> m_lru; // front = most recently used
    std::unordered_map<CopierKey, std::list<Entry>::iterator, CopierKeyHash> m_map;
    std::unordered_map<PartitionKey, PartitionPtr, PartitionKeyHash> m_partitions;
    std::uint64_t m_hits = 0, m_misses = 0, m_evictions = 0;
    std::uint64_t m_partition_hits = 0, m_partition_misses = 0;
    double m_build_seconds = 0.0;
    std::size_t m_capacity = 128;
    std::size_t m_per_tenant = 32;
    int m_tenants = 0;
    bool m_enabled = true;
};

} // namespace exa
