#include "mesh/interp.hpp"

#include "core/parallel_for.hpp"
#include "mesh/copier_cache.hpp"

#include <cassert>
#include <cmath>

namespace exa {

namespace {
// Minmod-limited central slope of crse component n along dimension d.
EXA_FORCE_INLINE Real limited_slope(Array4<const Real> c, int i, int j, int k, int n,
                                    int d) {
    const IntVect e = IntVect::basis(d);
    const Real sl = c(i, j, k, n) - c(i - e.x, j - e.y, k - e.z, n);
    const Real sr = c(i + e.x, j + e.y, k + e.z, n) - c(i, j, k, n);
    if (sl * sr <= 0.0) return 0.0;
    const Real sc = 0.5 * (sl + sr);
    const Real mag = std::min({std::abs(sc), 2.0 * std::abs(sl), 2.0 * std::abs(sr)});
    return sc > 0 ? mag : -mag;
}
} // namespace

void pcInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
              int ratio, int scomp, int dcomp, int ncomp) {
    ParallelFor(KernelInfo::streaming("interp_pc", 16.0), fine_region, ncomp,
                [=](int i, int j, int k, int n) {
        fine(i, j, k, dcomp + n) = crse(coarsen_index(i, ratio), coarsen_index(j, ratio),
                                        coarsen_index(k, ratio), scomp + n);
    });
}

void conslinInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
                   int ratio, int scomp, int dcomp, int ncomp) {
    const Real r = static_cast<Real>(ratio);
    // 7-point coarse stencil read + 1 fine write per zone.
    ParallelFor(KernelInfo::streaming("interp_conslin", 64.0), fine_region,
                ncomp, [=](int i, int j, int k, int n) {
        const int ic = coarsen_index(i, ratio);
        const int jc = coarsen_index(j, ratio);
        const int kc = coarsen_index(k, ratio);
        // Offset of the fine center from the coarse center, in coarse-zone
        // units; symmetric over the children of one coarse zone.
        const Real ox = (i - ic * ratio + 0.5_rt) / r - 0.5_rt;
        const Real oy = (j - jc * ratio + 0.5_rt) / r - 0.5_rt;
        const Real oz = (k - kc * ratio + 0.5_rt) / r - 0.5_rt;
        fine(i, j, k, dcomp + n) = crse(ic, jc, kc, scomp + n) +
                                   ox * limited_slope(crse, ic, jc, kc, scomp + n, 0) +
                                   oy * limited_slope(crse, ic, jc, kc, scomp + n, 1) +
                                   oz * limited_slope(crse, ic, jc, kc, scomp + n, 2);
    });
}

void averageDown(MultiFab& crse, const MultiFab& fine, int ratio, int scomp,
                 int dcomp, int ncomp) {
    const Real inv = 1.0_rt / (static_cast<Real>(ratio) * ratio * ratio);
    // The (coarse fab, fine fab, under-region) triples are layout metadata,
    // memoized in the CopierCache across repeated level syncs.
    const auto plan = CopierCache::instance().averageDown(crse.boxArray(),
                                                          fine.boxArray(), ratio);
    const KernelInfo info =
        KernelInfo::streaming("avg_down", (ratio * ratio * ratio + 1) * 8.0);
    for (const CopyItem& item : plan->items) {
        auto c = crse.array(item.dst_fab);
        auto f = fine.const_array(item.src_fab);
        ParallelFor(info, item.dst_box, ncomp, [=](int i, int j, int k, int n) {
            Real s = 0;
            for (int kk = 0; kk < ratio; ++kk)
                for (int jj = 0; jj < ratio; ++jj)
                    for (int ii = 0; ii < ratio; ++ii)
                        s += f(i * ratio + ii, j * ratio + jj, k * ratio + kk,
                               scomp + n);
            c(i, j, k, dcomp + n) = s * inv;
        });
    }
}

namespace {

// Step 1 of fillPatchTwoLevels: interpolate everywhere from the coarse
// level. We build a scratch coarse fab around each destination region so
// the slope stencil has data, filled by copies from the coarse level.
void interpFromCoarse(MultiFab& dst, const MultiFab& crse_src,
                      const Geometry& crse_geom, int ratio, int scomp, int dcomp,
                      int ncomp, int dst_ng) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
        const Box fdst = grow(dst.box(static_cast<int>(i)), dst_ng);
        Box cbox = coarsen(fdst, ratio);
        cbox.grow(1); // slope stencil
        FArrayBox ctmp(cbox, ncomp);
        ctmp.setVal(0.0);
        // Gather coarse valid data (with periodic images of the valid
        // regions) into ctmp. Ghost zones of the source are not used: they
        // may be stale, and their periodic images could overwrite correct
        // valid data.
        const auto shifts = crse_geom.periodicity().shifts();
        for (const IntVect& s : shifts) {
            // src_box = crse_ba[j] & shift(cbox, -s) equals the legacy
            // shift(cbox & image, -s), and the hashed query returns
            // ascending j, so the gather order (and hence any overlap
            // resolution) is unchanged.
            for (const auto& [j, src_box] :
                 crse_src.boxArray().intersections(shift(cbox, -s))) {
                ctmp.copyFrom(crse_src.fab(j), src_box, scomp, shift(src_box, s), 0,
                              ncomp);
            }
        }
        conslinInterp(dst.array(static_cast<int>(i)), ctmp.const_array(), fdst, ratio,
                      0, dcomp, ncomp);
    }
}

} // namespace

void fillPatchTwoLevels(MultiFab& dst, const MultiFab& fine_src,
                        const MultiFab& crse_src, const Geometry& crse_geom,
                        const Geometry& fine_geom, int ratio, int scomp, int dcomp,
                        int ncomp, int dst_ng) {
    assert(dst_ng <= dst.nGrow());
    // When dst aliases fine_src (MakeNewLevelFromCoarse's no-op self-copy
    // idiom) posting first would pack pre-interpolation data; keep the
    // fused order in that case.
    if (comm::asyncHalo() && &dst != &fine_src) {
        // Post the same-level overwrite first: the payload (fine_src valid
        // regions) is packed now, the interpolation loop runs while the
        // copy is "in flight", and finish() delivers the fine data on top
        // of the freshly interpolated zones — the same final state, and
        // accounting, as the fused order below.
        comm::HaloHandle halo = dst.ParallelCopy_nowait(
            fine_src, scomp, dcomp, ncomp, dst_ng, fine_geom.periodicity());
        interpFromCoarse(dst, crse_src, crse_geom, ratio, scomp, dcomp, ncomp,
                         dst_ng);
        halo.finish();
    } else {
        interpFromCoarse(dst, crse_src, crse_geom, ratio, scomp, dcomp, ncomp,
                         dst_ng);
        // Overwrite with same-level data wherever the fine source covers
        // the destination (valid regions + periodic images).
        dst.ParallelCopy(fine_src, scomp, dcomp, ncomp, dst_ng,
                         fine_geom.periodicity());
    }
}

} // namespace exa
