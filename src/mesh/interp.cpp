#include "mesh/interp.hpp"

#include "core/parallel_for.hpp"

#include <cassert>
#include <cmath>

namespace exa {

namespace {
// Minmod-limited central slope of crse component n along dimension d.
EXA_FORCE_INLINE Real limited_slope(Array4<const Real> c, int i, int j, int k, int n,
                                    int d) {
    const IntVect e = IntVect::basis(d);
    const Real sl = c(i, j, k, n) - c(i - e.x, j - e.y, k - e.z, n);
    const Real sr = c(i + e.x, j + e.y, k + e.z, n) - c(i, j, k, n);
    if (sl * sr <= 0.0) return 0.0;
    const Real sc = 0.5 * (sl + sr);
    const Real mag = std::min({std::abs(sc), 2.0 * std::abs(sl), 2.0 * std::abs(sr)});
    return sc > 0 ? mag : -mag;
}
} // namespace

void pcInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
              int ratio, int scomp, int dcomp, int ncomp) {
    ParallelFor(fine_region, ncomp, [=](int i, int j, int k, int n) {
        fine(i, j, k, dcomp + n) = crse(coarsen_index(i, ratio), coarsen_index(j, ratio),
                                        coarsen_index(k, ratio), scomp + n);
    });
}

void conslinInterp(Array4<Real> fine, Array4<const Real> crse, const Box& fine_region,
                   int ratio, int scomp, int dcomp, int ncomp) {
    const Real r = static_cast<Real>(ratio);
    ParallelFor(fine_region, ncomp, [=](int i, int j, int k, int n) {
        const int ic = coarsen_index(i, ratio);
        const int jc = coarsen_index(j, ratio);
        const int kc = coarsen_index(k, ratio);
        // Offset of the fine center from the coarse center, in coarse-zone
        // units; symmetric over the children of one coarse zone.
        const Real ox = (i - ic * ratio + 0.5_rt) / r - 0.5_rt;
        const Real oy = (j - jc * ratio + 0.5_rt) / r - 0.5_rt;
        const Real oz = (k - kc * ratio + 0.5_rt) / r - 0.5_rt;
        fine(i, j, k, dcomp + n) = crse(ic, jc, kc, scomp + n) +
                                   ox * limited_slope(crse, ic, jc, kc, scomp + n, 0) +
                                   oy * limited_slope(crse, ic, jc, kc, scomp + n, 1) +
                                   oz * limited_slope(crse, ic, jc, kc, scomp + n, 2);
    });
}

void averageDown(MultiFab& crse, const MultiFab& fine, int ratio, int scomp,
                 int dcomp, int ncomp) {
    const Real inv = 1.0_rt / (static_cast<Real>(ratio) * ratio * ratio);
    for (std::size_t ci = 0; ci < crse.size(); ++ci) {
        auto c = crse.array(static_cast<int>(ci));
        // The portion of this coarse box lying under any fine box.
        for (std::size_t fi = 0; fi < fine.size(); ++fi) {
            const Box under =
                crse.box(static_cast<int>(ci)) & coarsen(fine.box(static_cast<int>(fi)), ratio);
            if (!under.ok()) continue;
            auto f = fine.const_array(static_cast<int>(fi));
            ParallelFor(under, ncomp, [=](int i, int j, int k, int n) {
                Real s = 0;
                for (int kk = 0; kk < ratio; ++kk)
                    for (int jj = 0; jj < ratio; ++jj)
                        for (int ii = 0; ii < ratio; ++ii)
                            s += f(i * ratio + ii, j * ratio + jj, k * ratio + kk,
                                   scomp + n);
                c(i, j, k, dcomp + n) = s * inv;
            });
        }
    }
}

void fillPatchTwoLevels(MultiFab& dst, int ng, const MultiFab& fine_src,
                        const MultiFab& crse_src, const Geometry& crse_geom,
                        const Geometry& fine_geom, int ratio, int scomp, int ncomp) {
    assert(ng <= dst.nGrow());
    (void)crse_geom;
    // Step 1: interpolate everywhere from the coarse level. We build a
    // scratch coarse fab around each destination region so the slope
    // stencil has data, filled by ParallelCopy from the coarse level.
    for (std::size_t i = 0; i < dst.size(); ++i) {
        const Box fdst = grow(dst.box(static_cast<int>(i)), ng);
        Box cbox = coarsen(fdst, ratio);
        cbox.grow(1); // slope stencil
        FArrayBox ctmp(cbox, ncomp);
        ctmp.setVal(0.0);
        // Gather coarse valid data (with periodic images of the valid
        // regions) into ctmp. Ghost zones of the source are not used: they
        // may be stale, and their periodic images could overwrite correct
        // valid data.
        const auto shifts = crse_geom.periodicity().shifts();
        for (const IntVect& s : shifts) {
            for (std::size_t j = 0; j < crse_src.size(); ++j) {
                const Box image = shift(crse_src.box(static_cast<int>(j)), s);
                const Box isect = cbox & image;
                if (!isect.ok()) continue;
                ctmp.copyFrom(crse_src.fab(static_cast<int>(j)), shift(isect, -s), scomp,
                              isect, 0, ncomp);
            }
        }
        conslinInterp(dst.array(static_cast<int>(i)), ctmp.const_array(), fdst, ratio, 0,
                      scomp, ncomp);
    }
    // Step 2: overwrite with same-level data wherever the fine source
    // covers the destination (valid regions + periodic images).
    dst.ParallelCopy(fine_src, scomp, scomp, ncomp, ng, fine_geom.periodicity());
}

} // namespace exa
