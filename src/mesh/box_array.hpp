#pragma once

#include "core/box.hpp"

#include <cstdint>
#include <vector>

namespace exa {

// An ordered collection of disjoint boxes at one level of refinement —
// the mesh's unit of domain decomposition. Boxes are the quanta of work
// distribution: an MPI rank owns whole boxes, and a GPU kernel is launched
// per box. The paper's load-balancing discussion (6 ranks/node not
// dividing 64 boxes) is entirely about this object.
class BoxArray {
public:
    BoxArray() = default;
    explicit BoxArray(const Box& single) : m_boxes{single} {}
    explicit BoxArray(std::vector<Box> boxes) : m_boxes(std::move(boxes)) {}

    // Chop every box so that no side exceeds max_size zones.
    BoxArray& maxSize(const IntVect& max_size);
    BoxArray& maxSize(int max_size) { return maxSize(IntVect(max_size)); }

    std::size_t size() const { return m_boxes.size(); }
    bool empty() const { return m_boxes.empty(); }
    const Box& operator[](std::size_t i) const { return m_boxes[i]; }
    const std::vector<Box>& boxes() const { return m_boxes; }

    std::int64_t numPts() const;

    // Smallest single box containing every box in the array.
    Box minimalBox() const;

    BoxArray& refine(int ratio);
    BoxArray& coarsen(int ratio);

    // True if bx is entirely covered by the union of our boxes.
    bool contains(const Box& bx) const;
    bool intersects(const Box& bx) const;

    // All (box index, intersection) pairs overlapping bx.
    std::vector<std::pair<int, Box>> intersections(const Box& bx) const;

    // True if the boxes are pairwise disjoint (a well-formed level).
    bool isDisjoint() const;

    // Union with another array (no disjointness enforcement).
    void join(const BoxArray& other);

    bool operator==(const BoxArray&) const = default;

private:
    std::vector<Box> m_boxes;
};

} // namespace exa
