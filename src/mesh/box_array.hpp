#pragma once

#include "core/box.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace exa {

// An ordered collection of disjoint boxes at one level of refinement —
// the mesh's unit of domain decomposition. Boxes are the quanta of work
// distribution: an MPI rank owns whole boxes, and a GPU kernel is launched
// per box. The paper's load-balancing discussion (6 ranks/node not
// dividing 64 boxes) is entirely about this object.
//
// Queries (intersections / intersects / contains / isDisjoint) run against
// a lazily built spatial hash: boxes binned into a lattice coarsened by the
// largest box extent per dimension, so a query touches O(1) bins instead of
// scanning all N boxes. The index is shared by copies and rebuilt after any
// mutation.
class BoxArray {
public:
    BoxArray() = default;
    explicit BoxArray(const Box& single) : m_boxes{single}, m_id(nextId()) {}
    explicit BoxArray(std::vector<Box> boxes)
        : m_boxes(std::move(boxes)), m_id(nextId()) {}

    // Chop every box so that no side exceeds max_size zones.
    BoxArray& maxSize(const IntVect& max_size);
    BoxArray& maxSize(int max_size) { return maxSize(IntVect(max_size)); }

    std::size_t size() const { return m_boxes.size(); }
    bool empty() const { return m_boxes.empty(); }
    const Box& operator[](std::size_t i) const { return m_boxes[i]; }
    const std::vector<Box>& boxes() const { return m_boxes; }

    std::int64_t numPts() const;

    // Smallest single box containing every box in the array.
    Box minimalBox() const;

    BoxArray& refine(int ratio);
    BoxArray& coarsen(int ratio);

    // True if bx is entirely covered by the union of our boxes (correct
    // whether or not the boxes overlap).
    bool contains(const Box& bx) const;
    bool intersects(const Box& bx) const;

    // All (box index, intersection) pairs overlapping bx, ordered by box
    // index (the same order as a linear scan).
    std::vector<std::pair<int, Box>> intersections(const Box& bx) const;

    // True if the boxes are pairwise disjoint (a well-formed level).
    bool isDisjoint() const;

    // Union with another array (no disjointness enforcement).
    void join(const BoxArray& other);

    // Stable identity for communication-metadata caching (CopierCache).
    // Copies share the id; every mutation (maxSize, refine, coarsen, join)
    // assigns a fresh process-unique id. Equal ids therefore imply equal
    // boxes — never the converse — so id equality is a safe cache key and
    // a regrid invalidates cached plans simply by minting new ids. A
    // default-constructed (empty) array has id 0.
    std::uint64_t id() const { return m_id; }

    bool operator==(const BoxArray& o) const {
        return m_id == o.m_id || m_boxes == o.m_boxes;
    }

private:
    struct HashIndex;
    const HashIndex& index() const; // build lazily
    static std::uint64_t nextId();
    void mutated(); // new id + drop the spatial index

    std::vector<Box> m_boxes;
    std::uint64_t m_id = 0;
    mutable std::shared_ptr<const HashIndex> m_index;
};

} // namespace exa
