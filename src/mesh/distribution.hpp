#pragma once

#include "mesh/box_array.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace exa {

// Assignment of boxes to (simulated) MPI ranks. On Summit the codes run
// one rank per GPU — six ranks per node — so the mapping here, combined
// with the node width, determines both load balance and which halo
// messages cross the network. Strategies mirror AMReX's: round-robin, a
// space-filling-curve mapping (locality-preserving, the default), and a
// knapsack mapping (balance by zone count).
class DistributionMapping {
public:
    enum class Strategy { RoundRobin, Sfc, Knapsack };

    DistributionMapping() = default;
    DistributionMapping(const BoxArray& ba, int nranks,
                        Strategy strategy = Strategy::Sfc);

    // Cost-weighted builder: cost[i] is the measured (or modeled) expense
    // of box i. Sfc keeps the Morton walk but cuts chunks by cumulative
    // cost; Knapsack bins largest-cost-first onto the least-loaded rank.
    // The zone-count constructor above is the cold-start path and
    // delegates here with cost = numPts, so equal weights reproduce the
    // unweighted mapping exactly. RoundRobin ignores the weights.
    DistributionMapping(const BoxArray& ba, int nranks,
                        const std::vector<double>& cost,
                        Strategy strategy = Strategy::Knapsack);

    // Explicit rank table: box i lives on rank_table[i]. This is the
    // shrink-recovery path — the supervisor builds a cost-weighted mapping
    // over n_alive packed slots and remaps each slot onto a surviving rank
    // id, so the table is arbitrary rather than strategy-shaped. Every
    // entry must satisfy 0 <= rank_table[i] < nranks.
    DistributionMapping(std::vector<int> rank_table, int nranks);

    int operator[](std::size_t box_index) const { return m_rank[box_index]; }
    std::size_t size() const { return m_rank.size(); }
    int numRanks() const { return m_nranks; }
    const std::vector<int>& ranks() const { return m_rank; }

    // Stable identity for communication-metadata caching (CopierCache),
    // mirroring BoxArray::id(): copies share the id, every freshly built
    // mapping gets a new one, so equal ids imply an identical rank table.
    // A default-constructed mapping has id 0.
    std::uint64_t id() const { return m_id; }

    // Number of boxes owned by each rank.
    std::vector<int> boxesPerRank() const;
    // Zones owned by each rank (load-balance diagnostic).
    std::vector<std::int64_t> zonesPerRank(const BoxArray& ba) const;
    // Summed cost owned by each rank under per-box weights.
    std::vector<double> costPerRank(const std::vector<double>& cost) const;

    // Max-over-ranks zones divided by mean zones: 1.0 = perfect balance.
    // This is the quantity behind the paper's "6 ranks don't divide 64
    // boxes" load-balancing discussion. Delegates to the cost-weighted
    // overload with cost = numPts.
    static double imbalance(const BoxArray& ba, const DistributionMapping& dm);
    // Max-over-ranks cost divided by mean cost under per-box weights.
    static double imbalance(const std::vector<double>& cost,
                            const DistributionMapping& dm);

    // Human-readable balance report: per-rank cost and share plus the
    // max/mean ratio, for Rebalancer logging and the bench tables.
    static std::string describeBalance(const std::vector<double>& cost,
                                       const DistributionMapping& dm);

    bool operator==(const DistributionMapping& o) const {
        return m_id == o.m_id || (m_nranks == o.m_nranks && m_rank == o.m_rank);
    }

private:
    void build(const BoxArray& ba, const std::vector<double>& cost,
               Strategy strategy);

    std::vector<int> m_rank;
    int m_nranks = 1;
    std::uint64_t m_id = 0;
};

// Morton (Z-order) code of a non-negative 3-D index, for SFC ordering.
std::uint64_t mortonCode(int x, int y, int z);

} // namespace exa
