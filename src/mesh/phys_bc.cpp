#include "mesh/phys_bc.hpp"

#include "core/parallel_for.hpp"

#include <algorithm>

namespace exa {

void fillPhysicalBoundary(MultiFab& mf, const Geometry& geom, const DomainBC& bc,
                          const std::array<std::vector<int>, 3>& odd_comps) {
    const Box& dom = geom.domain();
    const int nc = mf.nComp();
    for (std::size_t f = 0; f < mf.size(); ++f) {
        auto a = mf.array(static_cast<int>(f));
        const Box gb = mf.fabbox(static_cast<int>(f));
        // Fill dimension by dimension so edges/corners compose correctly
        // (each pass may read ghost zones filled by the previous pass).
        for (int d = 0; d < 3; ++d) {
            const int dlo = dom.smallEnd(d), dhi = dom.bigEnd(d);
            auto isOdd = [&](int n) {
                return std::find(odd_comps[d].begin(), odd_comps[d].end(), n) !=
                       odd_comps[d].end();
            };
            if (gb.smallEnd(d) < dlo && bc(d, 0) != PhysBC::Periodic) {
                Box region = gb;
                IntVect hi = region.bigEnd();
                hi[d] = dlo - 1;
                region = Box(region.smallEnd(), hi);
                const bool reflect = bc(d, 0) == PhysBC::Reflect;
                for (int n = 0; n < nc; ++n) {
                    const Real sgn = (reflect && isOdd(n)) ? -1.0 : 1.0;
                    ParallelFor(region, [=](int i, int j, int k) {
                        IntVect src{i, j, k};
                        src[d] = reflect ? 2 * dlo - 1 - src[d] : dlo;
                        a(i, j, k, n) = sgn * a(src.x, src.y, src.z, n);
                    });
                }
            }
            if (gb.bigEnd(d) > dhi && bc(d, 1) != PhysBC::Periodic) {
                Box region = gb;
                IntVect lo = region.smallEnd();
                lo[d] = dhi + 1;
                region = Box(lo, region.bigEnd());
                const bool reflect = bc(d, 1) == PhysBC::Reflect;
                for (int n = 0; n < nc; ++n) {
                    const Real sgn = (reflect && isOdd(n)) ? -1.0 : 1.0;
                    ParallelFor(region, [=](int i, int j, int k) {
                        IntVect src{i, j, k};
                        src[d] = reflect ? 2 * dhi + 1 - src[d] : dhi;
                        a(i, j, k, n) = sgn * a(src.x, src.y, src.z, n);
                    });
                }
            }
        }
    }
}

} // namespace exa
