#pragma once

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"

#include <array>
#include <vector>

namespace exa {

// Physical boundary condition on one domain face.
enum class PhysBC {
    Periodic, // handled by FillBoundary; this fill skips the face
    Outflow,  // zero-gradient extrapolation
    Reflect,  // mirror; selected components flip sign (normal velocity)
};

// Boundary conditions for all six faces: [dim][0=low, 1=high].
struct DomainBC {
    std::array<std::array<PhysBC, 2>, 3> bc{{{PhysBC::Outflow, PhysBC::Outflow},
                                             {PhysBC::Outflow, PhysBC::Outflow},
                                             {PhysBC::Outflow, PhysBC::Outflow}}};

    static DomainBC allOutflow() { return DomainBC{}; }
    static DomainBC allPeriodic() {
        DomainBC b;
        for (auto& d : b.bc) d = {PhysBC::Periodic, PhysBC::Periodic};
        return b;
    }

    PhysBC operator()(int dim, int side) const { return bc[dim][side]; }
    void set(int dim, int side, PhysBC t) { bc[dim][side] = t; }
};

// Fill the ghost zones of `mf` that lie outside the domain, according to
// the face BCs. Components listed in odd_comps[dim] flip sign under
// Reflect in that dimension (the normal momentum/velocity). Interior and
// periodic ghosts must already have been filled (FillBoundary).
void fillPhysicalBoundary(MultiFab& mf, const Geometry& geom, const DomainBC& bc,
                          const std::array<std::vector<int>, 3>& odd_comps = {});

} // namespace exa
