#include "mesh/distribution.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <queue>

namespace exa {

namespace {
std::uint64_t nextDmId() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}
} // namespace

std::uint64_t mortonCode(int x, int y, int z) {
    auto split = [](std::uint64_t v) {
        // Spread the low 21 bits of v so they occupy every third bit.
        v &= 0x1fffff;
        v = (v | v << 32) & 0x1f00000000ffffULL;
        v = (v | v << 16) & 0x1f0000ff0000ffULL;
        v = (v | v << 8) & 0x100f00f00f00f00fULL;
        v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
        v = (v | v << 2) & 0x1249249249249249ULL;
        return v;
    };
    return split(static_cast<std::uint64_t>(std::max(x, 0))) |
           (split(static_cast<std::uint64_t>(std::max(y, 0))) << 1) |
           (split(static_cast<std::uint64_t>(std::max(z, 0))) << 2);
}

DistributionMapping::DistributionMapping(const BoxArray& ba, int nranks,
                                         Strategy strategy)
    : m_nranks(std::max(1, nranks)), m_id(nextDmId()) {
    const std::size_t n = ba.size();
    m_rank.assign(n, 0);
    if (n == 0) return;

    switch (strategy) {
        case Strategy::RoundRobin: {
            for (std::size_t i = 0; i < n; ++i) {
                m_rank[i] = static_cast<int>(i % m_nranks);
            }
            break;
        }
        case Strategy::Sfc: {
            // Order boxes along a Morton curve through their centers, then
            // hand out contiguous chunks with approximately equal zones.
            std::vector<std::size_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            // Shift all centers to non-negative coordinates first.
            const Box mb = ba.minimalBox();
            std::vector<std::uint64_t> code(n);
            for (std::size_t i = 0; i < n; ++i) {
                const Box& b = ba[i];
                int cx = (b.smallEnd(0) + b.bigEnd(0)) / 2 - mb.smallEnd(0);
                int cy = (b.smallEnd(1) + b.bigEnd(1)) / 2 - mb.smallEnd(1);
                int cz = (b.smallEnd(2) + b.bigEnd(2)) / 2 - mb.smallEnd(2);
                code[i] = mortonCode(cx, cy, cz);
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) { return code[a] < code[b]; });
            const std::int64_t total = ba.numPts();
            const double per_rank = static_cast<double>(total) / m_nranks;
            std::int64_t acc = 0;
            int rank = 0;
            for (std::size_t idx : order) {
                // Advance rank when this rank has met its share, but never
                // beyond the final rank.
                while (rank < m_nranks - 1 &&
                       static_cast<double>(acc) >= per_rank * (rank + 1)) {
                    ++rank;
                }
                m_rank[idx] = rank;
                acc += ba[idx].numPts();
            }
            break;
        }
        case Strategy::Knapsack: {
            // Largest box first onto the least-loaded rank.
            std::vector<std::size_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
                return ba[a].numPts() > ba[b].numPts();
            });
            using Load = std::pair<std::int64_t, int>; // (zones, rank)
            std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
            for (int r = 0; r < m_nranks; ++r) heap.emplace(0, r);
            for (std::size_t idx : order) {
                auto [zones, r] = heap.top();
                heap.pop();
                m_rank[idx] = r;
                heap.emplace(zones + ba[idx].numPts(), r);
            }
            break;
        }
    }
}

std::vector<int> DistributionMapping::boxesPerRank() const {
    std::vector<int> count(m_nranks, 0);
    for (int r : m_rank) ++count[r];
    return count;
}

std::vector<std::int64_t> DistributionMapping::zonesPerRank(const BoxArray& ba) const {
    std::vector<std::int64_t> zones(m_nranks, 0);
    for (std::size_t i = 0; i < m_rank.size(); ++i) {
        zones[m_rank[i]] += ba[i].numPts();
    }
    return zones;
}

double DistributionMapping::imbalance(const BoxArray& ba, const DistributionMapping& dm) {
    auto zones = dm.zonesPerRank(ba);
    if (zones.empty()) return 1.0;
    const std::int64_t mx = *std::max_element(zones.begin(), zones.end());
    const double mean = static_cast<double>(ba.numPts()) / dm.numRanks();
    return mean > 0 ? static_cast<double>(mx) / mean : 1.0;
}

} // namespace exa
