#include "mesh/distribution.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>
#include <queue>
#include <sstream>

namespace exa {

namespace {
std::uint64_t nextDmId() {
    static std::atomic<std::uint64_t> counter{0};
    return ++counter;
}
} // namespace

std::uint64_t mortonCode(int x, int y, int z) {
    auto split = [](std::uint64_t v) {
        // Spread the low 21 bits of v so they occupy every third bit.
        v &= 0x1fffff;
        v = (v | v << 32) & 0x1f00000000ffffULL;
        v = (v | v << 16) & 0x1f0000ff0000ffULL;
        v = (v | v << 8) & 0x100f00f00f00f00fULL;
        v = (v | v << 4) & 0x10c30c30c30c30c3ULL;
        v = (v | v << 2) & 0x1249249249249249ULL;
        return v;
    };
    return split(static_cast<std::uint64_t>(std::max(x, 0))) |
           (split(static_cast<std::uint64_t>(std::max(y, 0))) << 1) |
           (split(static_cast<std::uint64_t>(std::max(z, 0))) << 2);
}

DistributionMapping::DistributionMapping(const BoxArray& ba, int nranks,
                                         Strategy strategy)
    : m_nranks(std::max(1, nranks)), m_id(nextDmId()) {
    // Cold-start path: weigh boxes by zone count. Integer zone counts are
    // exact in double, so this is bit-identical to the historical integer
    // accumulation.
    std::vector<double> cost(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        cost[i] = static_cast<double>(ba[i].numPts());
    }
    build(ba, cost, strategy);
}

DistributionMapping::DistributionMapping(const BoxArray& ba, int nranks,
                                         const std::vector<double>& cost,
                                         Strategy strategy)
    : m_nranks(std::max(1, nranks)), m_id(nextDmId()) {
    build(ba, cost, strategy);
}

DistributionMapping::DistributionMapping(std::vector<int> rank_table, int nranks)
    : m_rank(std::move(rank_table)), m_nranks(std::max(1, nranks)),
      m_id(nextDmId()) {
    for (const int r : m_rank) {
        assert(r >= 0 && r < m_nranks);
        (void)r;
    }
}

void DistributionMapping::build(const BoxArray& ba, const std::vector<double>& cost,
                                Strategy strategy) {
    const std::size_t n = ba.size();
    assert(cost.size() == n);
    m_rank.assign(n, 0);
    if (n == 0) return;

    switch (strategy) {
        case Strategy::RoundRobin: {
            for (std::size_t i = 0; i < n; ++i) {
                m_rank[i] = static_cast<int>(i % m_nranks);
            }
            break;
        }
        case Strategy::Sfc: {
            // Order boxes along a Morton curve through their centers, then
            // hand out contiguous chunks with approximately equal cost.
            std::vector<std::size_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            // Shift all centers to non-negative coordinates first.
            const Box mb = ba.minimalBox();
            std::vector<std::uint64_t> code(n);
            for (std::size_t i = 0; i < n; ++i) {
                const Box& b = ba[i];
                int cx = (b.smallEnd(0) + b.bigEnd(0)) / 2 - mb.smallEnd(0);
                int cy = (b.smallEnd(1) + b.bigEnd(1)) / 2 - mb.smallEnd(1);
                int cz = (b.smallEnd(2) + b.bigEnd(2)) / 2 - mb.smallEnd(2);
                code[i] = mortonCode(cx, cy, cz);
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) { return code[a] < code[b]; });
            const double total = std::accumulate(cost.begin(), cost.end(), 0.0);
            const double per_rank = total / m_nranks;
            double acc = 0;
            int rank = 0;
            for (std::size_t idx : order) {
                // Advance rank when this rank has met its share, but never
                // beyond the final rank.
                while (rank < m_nranks - 1 && acc >= per_rank * (rank + 1)) {
                    ++rank;
                }
                m_rank[idx] = rank;
                acc += cost[idx];
            }
            break;
        }
        case Strategy::Knapsack: {
            // Largest cost first onto the least-loaded rank; ties broken by
            // box index so the mapping is deterministic for equal weights.
            std::vector<std::size_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
                if (cost[a] != cost[b]) return cost[a] > cost[b];
                return a < b;
            });
            using Load = std::pair<double, int>; // (cost, rank)
            std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
            for (int r = 0; r < m_nranks; ++r) heap.emplace(0.0, r);
            for (std::size_t idx : order) {
                auto [load, r] = heap.top();
                heap.pop();
                m_rank[idx] = r;
                heap.emplace(load + cost[idx], r);
            }
            break;
        }
    }
}

std::vector<int> DistributionMapping::boxesPerRank() const {
    std::vector<int> count(m_nranks, 0);
    for (int r : m_rank) ++count[r];
    return count;
}

std::vector<std::int64_t> DistributionMapping::zonesPerRank(const BoxArray& ba) const {
    std::vector<std::int64_t> zones(m_nranks, 0);
    for (std::size_t i = 0; i < m_rank.size(); ++i) {
        zones[m_rank[i]] += ba[i].numPts();
    }
    return zones;
}

std::vector<double> DistributionMapping::costPerRank(
    const std::vector<double>& cost) const {
    assert(cost.size() == m_rank.size());
    std::vector<double> per(m_nranks, 0.0);
    for (std::size_t i = 0; i < m_rank.size(); ++i) {
        per[m_rank[i]] += cost[i];
    }
    return per;
}

double DistributionMapping::imbalance(const BoxArray& ba, const DistributionMapping& dm) {
    std::vector<double> cost(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        cost[i] = static_cast<double>(ba[i].numPts());
    }
    return imbalance(cost, dm);
}

double DistributionMapping::imbalance(const std::vector<double>& cost,
                                      const DistributionMapping& dm) {
    if (cost.empty() || dm.size() == 0) return 1.0;
    const auto per = dm.costPerRank(cost);
    const double mx = *std::max_element(per.begin(), per.end());
    const double mean =
        std::accumulate(per.begin(), per.end(), 0.0) / dm.numRanks();
    return mean > 0 ? mx / mean : 1.0;
}

std::string DistributionMapping::describeBalance(const std::vector<double>& cost,
                                                 const DistributionMapping& dm) {
    std::ostringstream os;
    if (cost.size() != dm.size() || dm.size() == 0) {
        os << "balance: (no cost data)";
        return os.str();
    }
    const auto per = dm.costPerRank(cost);
    const double total = std::accumulate(per.begin(), per.end(), 0.0);
    const double mean = total / dm.numRanks();
    os << "balance:";
    for (int r = 0; r < dm.numRanks(); ++r) {
        const double share = total > 0 ? 100.0 * per[r] / total : 0.0;
        os << " r" << r << "=" << per[r] << " (" << share << "%)";
    }
    const double mx = *std::max_element(per.begin(), per.end());
    os << "; max/mean = " << (mean > 0 ? mx / mean : 1.0);
    return os.str();
}

} // namespace exa
