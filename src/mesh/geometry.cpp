#include "mesh/geometry.hpp"

namespace exa {

std::vector<IntVect> Periodicity::shifts() const {
    std::vector<IntVect> out;
    const int nx = isPeriodic(0) ? 1 : 0;
    const int ny = isPeriodic(1) ? 1 : 0;
    const int nz = isPeriodic(2) ? 1 : 0;
    for (int sz = -nz; sz <= nz; ++sz)
        for (int sy = -ny; sy <= ny; ++sy)
            for (int sx = -nx; sx <= nx; ++sx)
                out.push_back(IntVect{sx * m_period.x, sy * m_period.y, sz * m_period.z});
    return out;
}

Geometry::Geometry(const Box& domain, const std::array<Real, 3>& problo,
                   const std::array<Real, 3>& probhi, const IntVect& is_periodic)
    : m_domain(domain), m_problo(problo), m_probhi(probhi) {
    for (int d = 0; d < 3; ++d) {
        m_dx[d] = (probhi[d] - problo[d]) / domain.length(d);
    }
    IntVect period{0, 0, 0};
    for (int d = 0; d < 3; ++d) {
        if (is_periodic[d] != 0) period[d] = domain.length(d);
    }
    m_periodicity = Periodicity(period);
}

Geometry Geometry::refined(int ratio) const {
    IntVect per{isPeriodic(0) ? 1 : 0, isPeriodic(1) ? 1 : 0, isPeriodic(2) ? 1 : 0};
    return Geometry(refine(m_domain, ratio), m_problo, m_probhi, per);
}

Geometry Geometry::coarsened(int ratio) const {
    IntVect per{isPeriodic(0) ? 1 : 0, isPeriodic(1) ? 1 : 0, isPeriodic(2) ? 1 : 0};
    return Geometry(coarsen(m_domain, ratio), m_problo, m_probhi, per);
}

} // namespace exa
