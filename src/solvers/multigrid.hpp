#pragma once

#include "mesh/interp.hpp"
#include "mesh/multifab.hpp"

#include <cstdint>
#include <vector>

namespace exa {

// Physical boundary condition applied on every domain face.
enum class MgBC {
    Periodic,
    Dirichlet, // phi = 0 on the domain boundary (faces of boundary zones)
    Neumann,   // dphi/dn = 0 on the domain boundary
};

// Result of a multigrid solve.
struct MgResult {
    int vcycles = 0;
    Real initial_resnorm = 0.0;
    Real final_resnorm = 0.0;
    bool converged = false;
};

// Geometric multigrid for the cell-centered Poisson problem
//     Laplacian(phi) = rhs
// on one level of the mesh, mirroring the role of AMReX's MLMG in the
// production codes: Castro's self-gravity solve and the MAC projection in
// MAESTROeX's low Mach hydrodynamics both reduce to exactly this solve —
// the globally coupled algorithm whose communication dominates Figure 3.
//
// Red-black Gauss-Seidel smoothing (expressed as per-zone ParallelFor
// kernels, one per color), full-coarsening V-cycles with averaged
// restriction and piecewise-constant prolongation, and a fixed-iteration
// smoother as the bottom solve.
class Multigrid {
public:
    struct Options {
        int pre_smooth = 2;
        int post_smooth = 2;
        int bottom_smooth = 40;
        int max_vcycles = 60;
        Real rtol = 1.0e-10; // relative residual-norm target
        int max_grid_size = 32;
        int nranks = 1;
        int min_level_side = 2; // stop coarsening at this side length
    };

    Multigrid(const Geometry& geom, MgBC bc);
    Multigrid(const Geometry& geom, MgBC bc, const Options& opt);

    // Solve Laplacian(phi) = rhs; phi carries the initial guess (and must
    // have >= 1 ghost zone). rhs is on the same BoxArray as phi.
    MgResult solve(MultiFab& phi, const MultiFab& rhs);

    // One application of the operator: out = Laplacian(phi). Fills phi's
    // ghost zones first (exchange + physical BC).
    void apply(MultiFab& phi, MultiFab& out, int lev = 0);

    Real residualNorm(MultiFab& phi, const MultiFab& rhs, int lev = 0);

    int numLevels() const { return static_cast<int>(m_geom.size()); }
    const Geometry& levelGeom(int lev) const { return m_geom[lev]; }

    // Total smoothing sweeps performed (for the performance model).
    std::int64_t totalSweeps() const { return m_sweeps; }

private:
    void fillGhosts(MultiFab& phi, int lev);
    // The physical-boundary half of fillGhosts (Dirichlet/Neumann face
    // ghosts); runs after the halo delivery in both the fused and the
    // split-phase smoother.
    void applyDomainBC(MultiFab& phi, int lev);
    void smooth(MultiFab& phi, const MultiFab& rhs, int lev, int sweeps);
    void residual(MultiFab& phi, const MultiFab& rhs, MultiFab& res, int lev);
    void vcycle(int lev);

    // For periodic (and all-Neumann) problems the operator has a null
    // space; project it out of a field.
    void removeMean(MultiFab& mf) const;

    MgBC m_bc;
    Options m_opt;
    std::vector<Geometry> m_geom; // per level, 0 = finest
    std::vector<BoxArray> m_ba;
    std::vector<DistributionMapping> m_dm;
    // Per-level work data for the V-cycle (phi/rhs/resid).
    std::vector<MultiFab> m_phi, m_rhs, m_res;
    std::int64_t m_sweeps = 0;
};

} // namespace exa
