#pragma once

// MG-specific boundary plumbing for the composite-grid solver (the role
// Athena's dedicated bvals_mg layer plays): the physical-boundary ghost
// fill shared with the single-level Multigrid, plus MgCfBoundary — the
// coarse-fine interface machinery a partially refined AMR level needs
// from its parent level. MgCfBoundary owns three jobs:
//
//   prepare(crse)        gather the coarse parents (plus tangential slope
//                        neighbors) of every coarse-fine ghost cell into
//                        per-fab scratch and evaluate the tangentially
//                        interpolated coarse value phi~ at each fine ghost
//                        center. Off-rank gather items are accounted to
//                        CommHooks under the "mg-cfb" tag.
//   interpGhosts(fine)   write each coarse-fine ghost as the quadratic
//                        normal interpolant through phi~ and the first two
//                        fine interior cells (O(h^2) at the interface).
//   addFluxMismatch(...) add the reflux-style correction at uncovered
//                        coarse cells: replace the coarse one-sided face
//                        gradient with the average of the fine-face
//                        gradients across each coarse-fine face.
//
// The gather is rebuilt only at construction (layouts are immutable);
// prepare() re-reads coarse data, so it must run whenever the coarse
// solution has changed since the last smoothing pass on the fine rung.

#include "mesh/multifab.hpp"
#include "solvers/multigrid.hpp"

#include <memory>
#include <vector>

namespace exa {

// Physical-boundary ghost fill (Dirichlet: phi_g = -phi_i, Neumann:
// phi_g = +phi_i, Periodic: nothing — FillBoundary wrapped already).
// Shared by Multigrid::applyDomainBC and CompositeMg so the two solvers
// are bit-identical on uniform problems.
void mgApplyDomainBC(MultiFab& phi, const Geometry& geom, MgBC bc);

class MgCfBoundary {
public:
    MgCfBoundary(const Geometry& crse_geom, const Geometry& fine_geom,
                 const BoxArray& fine_ba, const DistributionMapping& fine_dm,
                 const BoxArray& crse_ba, const DistributionMapping& crse_dm,
                 int ratio, MgBC bc);

    // True when the fine BoxArray has no coarse-fine ghost cells (it
    // covers the domain, or every face is physical/periodically covered).
    bool empty() const { return m_pieces.empty(); }

    // Gather coarse data under + around the fine ghost layers and compute
    // the tangential interpolant phi~ per ghost cell. `crse` must have
    // current valid data; its ghosts are not read.
    void prepare(const MultiFab& crse);

    // Fill the coarse-fine ghost cells of `fine` from the prepared phi~
    // and the first two fine interior cells along the face normal.
    // prepare() must have run since the coarse data last changed; the
    // fine interior cells are read at call time.
    void interpGhosts(MultiFab& fine) const;

    // dst(q) += sign * sum_faces[(Gf_face - Gc)] / (ratio^2 * h_c) over
    // every uncovered coarse cell q adjacent to the coarse-fine
    // interface, where Gf_face is a fine-face gradient and Gc the coarse
    // one-sided gradient across the same coarse face. With sign = -1 this
    // turns `rhs - A_c(phi_c)` into the composite residual (and builds
    // the FAS deferred-correction coarse rhs). `crse` needs filled
    // ghosts; `fine` needs freshly interpolated coarse-fine ghosts.
    void addFluxMismatch(MultiFab& dst, const MultiFab& fine,
                         const MultiFab& crse, Real sign) const;

    std::size_t numGhostCells() const { return m_nghost_cells; }

private:
    // One rectangular patch of coarse-fine ghost cells: a piece of the
    // one-cell layer outside face (dim, side) of fine fab `fab` that no
    // same-level fine box (or periodic image) covers.
    struct Piece {
        int fab = 0;
        int dim = 0;
        int side = 0;   // 0: layer below smallEnd, 1: above bigEnd
        bool quad = false; // quadratic normal stencil (fine box >= 2 deep)
        Box box;
    };
    // Gathered coarse source for one fine fab: every coarse valid region
    // (with periodic images) intersecting cbox.
    struct GatherItem {
        int crse_fab = 0;
        Box src;  // in the coarse fab's frame
        Box dst;  // shifted into the fine fab's (coarsened) frame
        int src_rank = 0;
        int dst_rank = 0;
    };
    struct GatherSpec {
        int fine_fab = 0;
        Box cbox;
        std::vector<GatherItem> items;
        FArrayBox vals; // gathered coarse values over cbox
        FArrayBox mask; // 1 where vals holds coarse valid data (set once)
    };
    // Flux-mismatch work for one (piece, coarse fab) pair.
    struct FluxItem {
        int crse_fab = 0;
        int fine_fab = 0;
        int dim = 0;
        int side = 0;
        Box crse_cells; // uncovered coarse cells, in the coarse fab frame
        IntVect sh;     // fine-frame parent index = crse index + sh
        int gn = 0;     // fine-frame normal coordinate of the ghost layer
        Box ghosts;     // the piece box (clips tangential children)
    };

    int m_ratio = 2;
    Real m_crse_dx[3] = {1.0, 1.0, 1.0};
    Real m_fine_dx[3] = {1.0, 1.0, 1.0};
    std::vector<Piece> m_pieces;
    std::vector<int> m_piece_gather;   // piece -> index into m_gather
    std::vector<FArrayBox> m_tilde;    // per piece, over piece.box
    std::vector<GatherSpec> m_gather;
    std::vector<FluxItem> m_flux;
    std::size_t m_nghost_cells = 0;
};

} // namespace exa
