#include "solvers/mg/composite_mg.hpp"

#include "comm/halo_handle.hpp"
#include "core/executor.hpp"
#include "core/parallel_for.hpp"
#include "core/timer.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace exa {

namespace {

bool coarsenableDomain(const Box& b, int min_side) {
    return b.length(0) % 2 == 0 && b.length(1) % 2 == 0 &&
           b.length(2) % 2 == 0 && b.length(0) > min_side &&
           b.length(1) > min_side && b.length(2) > min_side;
}

KernelInfo smoothKernel() {
    return KernelInfo{"mg_smooth", 12.0, 96.0, 40, 1.0};
}
KernelInfo applyKernel() {
    return KernelInfo{"mg_residual", 10.0, 80.0, 40, 1.0};
}

} // namespace

CompositeMg::CompositeMg(std::vector<Geometry> geoms, std::vector<BoxArray> bas,
                         std::vector<DistributionMapping> dms, int ref_ratio,
                         MgBC bc, const CompositeMgOptions& opt)
    : m_bc(bc), m_opt(opt) {
    assert(!geoms.empty() && geoms.size() == bas.size() &&
           geoms.size() == dms.size());
    m_singular = (bc == MgBC::Periodic || bc == MgBC::Neumann);
    m_domain_volume = static_cast<Real>(geoms[0].domain().numPts()) *
                      geoms[0].cellVolume();

    // Geometric ladder below AMR level 0, by full coarsening.
    std::vector<Geometry> below;
    {
        Geometry g = geoms[0];
        while (coarsenableDomain(g.domain(), m_opt.min_level_side)) {
            g = g.coarsened(2);
            below.push_back(g);
        }
    }
    m_base = static_cast<int>(below.size());
    const int namr = static_cast<int>(geoms.size());
    const int nrungs = m_base + namr;
    m_r.resize(static_cast<std::size_t>(nrungs));

    // AMR rungs keep the hierarchy's own layouts (never relayouted, so
    // level data moves in and out without any redistribution).
    for (int lev = 0; lev < namr; ++lev) {
        Rung& R = m_r[static_cast<std::size_t>(m_base + lev)];
        R.geom = geoms[static_cast<std::size_t>(lev)];
        R.ba = bas[static_cast<std::size_t>(lev)];
        R.dm = dms[static_cast<std::size_t>(lev)];
        R.ratio = (lev == 0) ? 2 : ref_ratio;
        R.amr = true;
    }
    // Geometric rungs, finest first so the aggregation decision can look
    // at the finer rung's layout (staging needs its boxes coarsenable).
    for (int r = m_base - 1; r >= 0; --r) {
        Rung& R = m_r[static_cast<std::size_t>(r)];
        const Rung& F = m_r[static_cast<std::size_t>(r + 1)];
        R.geom = below[static_cast<std::size_t>(m_base - 1 - r)];
        R.ratio = 2;
        const std::int64_t zones = R.geom.domain().numPts();
        const std::int64_t per =
            std::max<std::int64_t>(1, m_opt.agg_zones_per_rank);
        const int n_agg = static_cast<int>(std::clamp<std::int64_t>(
            (zones + per - 1) / per, 1, m_opt.nranks));
        bool agg = m_opt.aggregate_coarse && n_agg < m_opt.nranks;
        if (agg) {
            for (const Box& b : F.ba.boxes()) {
                if (!b.coarsenable(2)) { agg = false; break; }
            }
        }
        if (agg) {
            BoxArray ba(R.geom.domain());
            if (n_agg > 1) ba.maxSize(m_opt.max_grid_size);
            R.ba = ba;
            if (n_agg == 1) {
                R.dm = DistributionMapping(ba, 1);
            } else {
                std::vector<double> cost;
                cost.reserve(ba.size());
                for (const Box& b : ba.boxes())
                    cost.push_back(static_cast<double>(b.numPts()));
                R.dm = DistributionMapping(ba, n_agg, cost,
                                           DistributionMapping::Strategy::Knapsack);
            }
            R.aggregated = true;
        } else {
            BoxArray ba(R.geom.domain());
            ba.maxSize(m_opt.max_grid_size);
            R.ba = ba;
            R.dm = DistributionMapping(ba, m_opt.nranks);
        }
    }

    // Coverage, coarse-fine boundaries, and work fabs.
    for (int r = 0; r < nrungs; ++r) {
        Rung& R = m_r[static_cast<std::size_t>(r)];
        if (r > 0) {
            Rung& C = m_r[static_cast<std::size_t>(r - 1)];
            BoxArray cba = R.ba;
            cba.coarsen(R.ratio);
            R.covers_coarse = cba.numPts() == C.geom.domain().numPts();
            if (!R.covers_coarse) {
                R.cf = std::make_unique<MgCfBoundary>(C.geom, R.geom, R.ba,
                                                      R.dm, C.ba, C.dm,
                                                      R.ratio, m_bc);
                if (R.cf->empty()) R.cf.reset();
            }
        }
        R.phi.define(R.ba, R.dm, 1, 1);
        R.phi.setVal(0.0);
        R.rhs.define(R.ba, R.dm, 1, 0);
        R.rhs.setVal(0.0);
        R.res.define(R.ba, R.dm, 1, 0);
        R.res.setVal(0.0);
        if (r < nrungs - 1) {
            R.sav.define(R.ba, R.dm, 1, 0);
            R.sav.setVal(0.0);
        }
        if (R.amr && r < nrungs - 1) {
            R.rhs0.define(R.ba, R.dm, 1, 0);
            R.rhs0.setVal(0.0);
        }
    }
    // Staging fabs live on the aggregated rung but use the finer rung's
    // box shapes (coarsened) and distribution, so restriction is fab-local
    // and the rank transition is a single cached ParallelCopy.
    for (int r = 0; r + 1 < nrungs; ++r) {
        Rung& C = m_r[static_cast<std::size_t>(r)];
        if (!C.aggregated) continue;
        const Rung& F = m_r[static_cast<std::size_t>(r + 1)];
        BoxArray sba = F.ba;
        sba.coarsen(F.ratio);
        C.stage.define(sba, F.dm, 1, 1);
        C.stage.setVal(0.0); // out-of-domain ghosts stay 0 forever
        auto& cache = CopierCache::instance();
        C.stage_restrict_bytes =
            cache.parallelCopy(C.ba, C.dm, sba, F.dm, 0, C.geom.periodicity())
                ->offrank_zones *
            static_cast<std::int64_t>(sizeof(Real));
        C.stage_prolong_bytes =
            cache.parallelCopy(sba, F.dm, C.ba, C.dm, 1, C.geom.periodicity())
                ->offrank_zones *
            static_cast<std::int64_t>(sizeof(Real));
    }
    // Uncovered valid regions of the AMR rungs (masked means, composite
    // residual norm).
    for (int r = m_base; r < nrungs; ++r) {
        Rung& R = m_r[static_cast<std::size_t>(r)];
        R.uncovered.resize(R.ba.size());
        if (r == nrungs - 1) {
            for (std::size_t q = 0; q < R.ba.size(); ++q)
                R.uncovered[q] = {R.ba[static_cast<int>(q)]};
            continue;
        }
        const Rung& F = m_r[static_cast<std::size_t>(r + 1)];
        auto plan = CopierCache::instance().averageDown(R.ba, F.ba, F.ratio);
        for (std::size_t q = 0; q < R.ba.size(); ++q)
            R.uncovered[q] = {R.ba[static_cast<int>(q)]};
        for (const CopyItem& item : plan->items) {
            auto& rem = R.uncovered[static_cast<std::size_t>(item.dst_fab)];
            std::vector<Box> next;
            for (const Box& b : rem) {
                const auto diff = boxDiff(b, item.dst_box);
                next.insert(next.end(), diff.begin(), diff.end());
            }
            rem.swap(next);
        }
    }
}

int CompositeMg::aggregatedRungs() const {
    int n = 0;
    for (const Rung& R : m_r) n += R.aggregated ? 1 : 0;
    return n;
}

void CompositeMg::fillGhostsRung(int r) {
    Rung& R = m_r[static_cast<std::size_t>(r)];
    R.phi.FillBoundary(0, 1, R.geom.periodicity());
    if (R.cf) {
        R.cf->prepare(m_r[static_cast<std::size_t>(r - 1)].phi);
        R.cf->interpGhosts(R.phi);
    }
    mgApplyDomainBC(R.phi, R.geom, m_bc);
}

void CompositeMg::smoothRung(int r, int sweeps) {
    Rung& R = m_r[static_cast<std::size_t>(r)];
    const Geometry& g = R.geom;
    const Real hx2 = 1.0 / (g.cellSize(0) * g.cellSize(0));
    const Real hy2 = 1.0 / (g.cellSize(1) * g.cellSize(1));
    const Real hz2 = 1.0 / (g.cellSize(2) * g.cellSize(2));
    const Real diag = 2.0 * (hx2 + hy2 + hz2);
    // The coarse data under the coarse-fine ghosts is frozen while this
    // rung smooths, so one gather serves every half-sweep.
    if (R.cf) R.cf->prepare(m_r[static_cast<std::size_t>(r - 1)].phi);
    MultiFab& phi = R.phi;
    const MultiFab& rhs = R.rhs;
    auto sweepRegion = [&](std::size_t i, const Box& region, int color) {
        auto p = phi.array(static_cast<int>(i));
        auto b = rhs.const_array(static_cast<int>(i));
        ParallelFor(smoothKernel(), region, [=](int ii, int j, int k) {
            if (((ii + j + k) & 1) != color) return;
            const Real sum = hx2 * (p(ii + 1, j, k) + p(ii - 1, j, k)) +
                             hy2 * (p(ii, j + 1, k) + p(ii, j - 1, k)) +
                             hz2 * (p(ii, j, k + 1) + p(ii, j, k - 1));
            p(ii, j, k) = (sum - b(ii, j, k)) / diag;
        });
    };
    for (int s = 0; s < sweeps; ++s) {
        for (int color = 0; color < 2; ++color) {
            if (comm::asyncHalo()) {
                // Split phase: post the same-level exchange, fill the
                // coarse-fine ghosts (independent of the in-flight
                // traffic — they read coarse scratch and fine valid
                // zones), smooth fab interiors, then deliver, apply the
                // physical BC, and smooth the shells. The half-sweep
                // writes only `color` zones and reads only the other
                // color, so the split cannot change any result.
                comm::HaloHandle halo =
                    phi.FillBoundary_nowait(0, 1, g.periodicity());
                if (R.cf) R.cf->interpGhosts(phi);
                const auto part =
                    CopierCache::instance().interiorPartition(R.ba, 1);
                {
                    StreamScope streams;
                    for (std::size_t i = 0; i < phi.size(); ++i) {
                        const FabRegions& fr = part->fabs[i];
                        if (!fr.interior.ok()) continue;
                        streams.useFab(i);
                        sweepRegion(i, fr.interior, color);
                    }
                }
                halo.finish();
                mgApplyDomainBC(phi, g, m_bc);
                {
                    StreamScope streams;
                    for (std::size_t i = 0; i < phi.size(); ++i) {
                        streams.useFab(i);
                        for (const Box& sb : part->fabs[i].shell) {
                            sweepRegion(i, sb, color);
                        }
                    }
                }
            } else {
                phi.FillBoundary(0, 1, g.periodicity());
                if (R.cf) R.cf->interpGhosts(phi);
                mgApplyDomainBC(phi, g, m_bc);
                StreamScope streams;
                for (std::size_t i = 0; i < phi.size(); ++i) {
                    streams.useFab(i);
                    sweepRegion(i, phi.box(static_cast<int>(i)), color);
                }
            }
            ++m_stats.sweeps;
        }
    }
}

void CompositeMg::applyOpNoFill(int r, const MultiFab& phi, MultiFab& out) {
    const Geometry& g = m_r[static_cast<std::size_t>(r)].geom;
    const Real hx2 = 1.0 / (g.cellSize(0) * g.cellSize(0));
    const Real hy2 = 1.0 / (g.cellSize(1) * g.cellSize(1));
    const Real hz2 = 1.0 / (g.cellSize(2) * g.cellSize(2));
    for (std::size_t i = 0; i < phi.size(); ++i) {
        auto p = phi.const_array(static_cast<int>(i));
        auto o = out.array(static_cast<int>(i));
        ParallelFor(applyKernel(), out.box(static_cast<int>(i)),
                    [=](int ii, int j, int k) {
            o(ii, j, k) =
                hx2 * (p(ii + 1, j, k) - 2 * p(ii, j, k) + p(ii - 1, j, k)) +
                hy2 * (p(ii, j + 1, k) - 2 * p(ii, j, k) + p(ii, j - 1, k)) +
                hz2 * (p(ii, j, k + 1) - 2 * p(ii, j, k) + p(ii, j, k - 1));
        });
    }
}

void CompositeMg::applyResidual(int r, const MultiFab& rhs, MultiFab& res) {
    Rung& R = m_r[static_cast<std::size_t>(r)];
    const Geometry& g = R.geom;
    const Real hx2 = 1.0 / (g.cellSize(0) * g.cellSize(0));
    const Real hy2 = 1.0 / (g.cellSize(1) * g.cellSize(1));
    const Real hz2 = 1.0 / (g.cellSize(2) * g.cellSize(2));
    for (std::size_t i = 0; i < res.size(); ++i) {
        auto p = R.phi.const_array(static_cast<int>(i));
        auto b = rhs.const_array(static_cast<int>(i));
        auto o = res.array(static_cast<int>(i));
        ParallelFor(KernelInfo{"mg_comp_residual", 12.0, 104.0, 40, 1.0},
                    res.box(static_cast<int>(i)), [=](int ii, int j, int k) {
            o(ii, j, k) =
                b(ii, j, k) -
                (hx2 * (p(ii + 1, j, k) - 2 * p(ii, j, k) + p(ii - 1, j, k)) +
                 hy2 * (p(ii, j + 1, k) - 2 * p(ii, j, k) + p(ii, j - 1, k)) +
                 hz2 * (p(ii, j, k + 1) - 2 * p(ii, j, k) + p(ii, j, k - 1)));
        });
    }
}

void CompositeMg::restrictIntoCoarse(int r, const MultiFab& fine,
                                     MultiFab& crse) {
    Rung& F = m_r[static_cast<std::size_t>(r)];
    Rung& C = m_r[static_cast<std::size_t>(r - 1)];
    if (C.aggregated) {
        averageDown(C.stage, fine, F.ratio, 0, 0, 1);
        crse.ParallelCopy(C.stage, 0, 0, 1, 0, C.geom.periodicity());
        ++m_stats.agg_copies;
        m_stats.agg_bytes += C.stage_restrict_bytes;
    } else {
        averageDown(crse, fine, F.ratio, 0, 0, 1);
    }
}

void CompositeMg::buildCoarseRhs(int r) {
    Rung& F = m_r[static_cast<std::size_t>(r)];
    Rung& C = m_r[static_cast<std::size_t>(r - 1)];
    if (F.covers_coarse) {
        // Classic FAS coarse equation: A_c(phi_c) + restricted residual.
        applyOpNoFill(r - 1, C.phi, C.rhs);
        C.rhs.saxpy(1.0, C.res, 0, 0, 1);
        return;
    }
    // Partial coverage: uncovered cells keep the user rhs, interface
    // cells get the reflux-style flux-mismatch correction, and covered
    // cells get the FAS deferred correction. The flux correction only
    // writes uncovered cells (parents of ghost pieces), so the three
    // writes compose without ordering hazards beyond Copy-first.
    MultiFab::Copy(C.rhs, C.rhs0, 0, 0, 1, 0);
    if (F.cf) F.cf->addFluxMismatch(C.rhs, F.phi, C.phi, -1.0);
    const Geometry& g = C.geom;
    const Real hx2 = 1.0 / (g.cellSize(0) * g.cellSize(0));
    const Real hy2 = 1.0 / (g.cellSize(1) * g.cellSize(1));
    const Real hz2 = 1.0 / (g.cellSize(2) * g.cellSize(2));
    auto plan = CopierCache::instance().averageDown(C.ba, F.ba, F.ratio);
    for (const CopyItem& item : plan->items) {
        auto p = C.phi.const_array(item.dst_fab);
        auto rs = C.res.const_array(item.dst_fab);
        auto o = C.rhs.array(item.dst_fab);
        ParallelFor(KernelInfo{"mg_fas_rhs", 12.0, 104.0, 40, 1.0},
                    item.dst_box, [=](int ii, int j, int k) {
            o(ii, j, k) =
                hx2 * (p(ii + 1, j, k) - 2 * p(ii, j, k) + p(ii - 1, j, k)) +
                hy2 * (p(ii, j + 1, k) - 2 * p(ii, j, k) + p(ii, j - 1, k)) +
                hz2 * (p(ii, j, k + 1) - 2 * p(ii, j, k) + p(ii, j, k - 1)) +
                rs(ii, j, k);
        });
    }
}

namespace {

// Gather `src`'s valid data (periodic images included) under cbox into a
// zero-initialized scratch fab — the non-staged coarse read used by
// prolongation and the FMG interpolant. Matches what a ParallelCopy with
// dst_ng ghosts delivers into a staging fab, so the aggregated and
// non-aggregated paths see bit-identical coarse values.
FArrayBox gatherValid(const MultiFab& src, const BoxArray& ba,
                      const Geometry& geom, const Box& cbox) {
    FArrayBox ctmp(cbox, 1);
    ctmp.setVal(0.0);
    for (const IntVect& s : geom.periodicity().shifts()) {
        for (const auto& [ci, isect] : ba.intersections(shift(cbox, -s))) {
            ctmp.copyFrom(src.fab(ci), isect, 0, shift(isect, s), 0, 1);
        }
    }
    return ctmp;
}

} // namespace

void CompositeMg::prolongAddCorrection(int r) {
    Rung& F = m_r[static_cast<std::size_t>(r)];
    Rung& C = m_r[static_cast<std::size_t>(r - 1)];
    // FAS correction relative to the restricted fine solution.
    MultiFab::LinComb(C.res, 1.0, C.phi, -1.0, C.sav, 0, 1);
    const int ratio = F.ratio;
    if (C.aggregated) {
        C.stage.ParallelCopy(C.res, 0, 0, 1, 1, C.geom.periodicity());
        ++m_stats.agg_copies;
        m_stats.agg_bytes += C.stage_prolong_bytes;
    }
    for (std::size_t i = 0; i < F.phi.size(); ++i) {
        auto f = F.phi.array(static_cast<int>(i));
        const Box& fb = F.phi.box(static_cast<int>(i));
        if (C.aggregated) {
            auto c = C.stage.const_array(static_cast<int>(i));
            ParallelFor(KernelInfo::streaming("mg_prolong_add", 24.0), fb,
                        [=](int ii, int j, int k) {
                f(ii, j, k) += c(coarsen_index(ii, ratio),
                                 coarsen_index(j, ratio),
                                 coarsen_index(k, ratio));
            });
        } else {
            const FArrayBox ctmp =
                gatherValid(C.res, C.ba, C.geom, coarsen(fb, ratio));
            auto c = ctmp.const_array();
            ParallelFor(KernelInfo::streaming("mg_prolong_add", 24.0), fb,
                        [=](int ii, int j, int k) {
                f(ii, j, k) += c(coarsen_index(ii, ratio),
                                 coarsen_index(j, ratio),
                                 coarsen_index(k, ratio));
            });
        }
    }
}

void CompositeMg::fmgInterp(int r) {
    Rung& F = m_r[static_cast<std::size_t>(r)];
    Rung& C = m_r[static_cast<std::size_t>(r - 1)];
    const int ratio = F.ratio;
    if (C.aggregated) {
        // dst_ng = 1 also fills the stage's in-domain ghosts, which the
        // conservative-linear stencil reads for its slopes.
        C.stage.ParallelCopy(C.phi, 0, 0, 1, 1, C.geom.periodicity());
        ++m_stats.agg_copies;
        m_stats.agg_bytes += C.stage_prolong_bytes;
    }
    for (std::size_t i = 0; i < F.phi.size(); ++i) {
        const Box& fb = F.phi.box(static_cast<int>(i));
        if (C.aggregated) {
            conslinInterp(F.phi.array(static_cast<int>(i)),
                          C.stage.const_array(static_cast<int>(i)), fb, ratio,
                          0, 0, 1);
        } else {
            const FArrayBox ctmp = gatherValid(C.phi, C.ba, C.geom,
                                               grow(coarsen(fb, ratio), 1));
            conslinInterp(F.phi.array(static_cast<int>(i)),
                          ctmp.const_array(), fb, ratio, 0, 0, 1);
        }
    }
}

void CompositeMg::vcycle(int r) {
    if (r == 0) {
        smoothRung(0, m_opt.bottom_smooth);
        return;
    }
    Rung& F = m_r[static_cast<std::size_t>(r)];
    Rung& C = m_r[static_cast<std::size_t>(r - 1)];
    smoothRung(r, m_opt.pre_smooth);
    fillGhostsRung(r);
    applyResidual(r, F.rhs, F.res);
    restrictIntoCoarse(r, F.phi, C.phi);
    MultiFab::Copy(C.sav, C.phi, 0, 0, 1, 0);
    fillGhostsRung(r - 1);
    restrictIntoCoarse(r, F.res, C.res);
    buildCoarseRhs(r);
    vcycle(r - 1);
    prolongAddCorrection(r);
    smoothRung(r, m_opt.post_smooth);
}

void CompositeMg::fmgBootstrap() {
    const int top = numRungs() - 1;
    // Carry the rhs down the whole ladder (covered cells take the finer
    // restriction, uncovered AMR cells keep the user rhs).
    for (int r = top; r >= 1; --r) {
        Rung& C = m_r[static_cast<std::size_t>(r - 1)];
        if (C.amr) MultiFab::Copy(C.rhs, C.rhs0, 0, 0, 1, 0);
        restrictIntoCoarse(r, m_r[static_cast<std::size_t>(r)].rhs, C.rhs);
    }
    smoothRung(0, m_opt.bottom_smooth);
    for (int r = 1; r <= top; ++r) {
        fmgInterp(r);
        vcycle(r);
        ++m_stats.vcycles;
    }
    ++m_stats.fmg_cycles;
}

void CompositeMg::averageDownPhi() {
    for (int r = numRungs() - 1; r > m_base; --r) {
        restrictIntoCoarse(r, m_r[static_cast<std::size_t>(r)].phi,
                           m_r[static_cast<std::size_t>(r - 1)].phi);
    }
}

void CompositeMg::zeroCovered(int r, MultiFab& mf) {
    const Rung& C = m_r[static_cast<std::size_t>(r)];
    const Rung& F = m_r[static_cast<std::size_t>(r + 1)];
    auto plan = CopierCache::instance().averageDown(C.ba, F.ba, F.ratio);
    for (const CopyItem& item : plan->items) {
        auto o = mf.array(item.dst_fab);
        ParallelFor(KernelInfo::streaming("mg_zero_covered", 8.0),
                    item.dst_box,
                    [=](int ii, int j, int k) { o(ii, j, k) = 0.0; });
    }
}

Real CompositeMg::compositeResidualNorm() {
    const int top = numRungs() - 1;
    for (int r = m_base; r <= top; ++r) fillGhostsRung(r);
    for (int r = m_base; r <= top; ++r) {
        applyResidual(r,
                      r == top ? m_r[static_cast<std::size_t>(r)].rhs
                               : m_r[static_cast<std::size_t>(r)].rhs0,
                      m_r[static_cast<std::size_t>(r)].res);
    }
    // The composite operator at uncovered coarse cells next to a
    // coarse-fine face replaces the coarse one-sided gradient with the
    // average of the fine-face gradients.
    for (int r = m_base; r < top; ++r) {
        Rung& F = m_r[static_cast<std::size_t>(r + 1)];
        if (F.cf) {
            F.cf->addFluxMismatch(m_r[static_cast<std::size_t>(r)].res, F.phi,
                                  m_r[static_cast<std::size_t>(r)].phi, -1.0);
        }
    }
    Real nrm = 0.0;
    for (int r = m_base; r <= top; ++r) {
        if (r < top) zeroCovered(r, m_r[static_cast<std::size_t>(r)].res);
        nrm = std::max(nrm, m_r[static_cast<std::size_t>(r)].res.norminf(0));
    }
    return nrm;
}

Real CompositeMg::maskedMean(const std::vector<const MultiFab*>& mfs) const {
    Real total = 0.0;
    for (int lev = 0; lev < numAmrLevels(); ++lev) {
        const Rung& R = m_r[static_cast<std::size_t>(m_base + lev)];
        const Real vol = R.geom.cellVolume();
        Real s = 0.0;
        for (std::size_t q = 0; q < R.ba.size(); ++q) {
            for (const Box& b : R.uncovered[q]) {
                s += mfs[static_cast<std::size_t>(lev)]
                         ->fab(static_cast<int>(q))
                         .sum(b, 0);
            }
        }
        total += s * vol;
    }
    return total / m_domain_volume;
}

void CompositeMg::removeMeanRhs() {
    const int top = numRungs() - 1;
    std::vector<const MultiFab*> mfs;
    for (int r = m_base; r <= top; ++r) {
        mfs.push_back(r == top ? &m_r[static_cast<std::size_t>(r)].rhs
                               : &m_r[static_cast<std::size_t>(r)].rhs0);
    }
    const Real mean = maskedMean(mfs);
    for (int r = m_base; r <= top; ++r) {
        if (r == top) {
            m_r[static_cast<std::size_t>(r)].rhs.plus(-mean, 0, 1);
        } else {
            m_r[static_cast<std::size_t>(r)].rhs0.plus(-mean, 0, 1);
        }
    }
}

void CompositeMg::removeMeanPhi() {
    const int top = numRungs() - 1;
    std::vector<const MultiFab*> mfs;
    for (int r = m_base; r <= top; ++r)
        mfs.push_back(&m_r[static_cast<std::size_t>(r)].phi);
    const Real mean = maskedMean(mfs);
    for (int r = m_base; r <= top; ++r)
        m_r[static_cast<std::size_t>(r)].phi.plus(-mean, 0, 1);
}

CompositeMgResult CompositeMg::solve(const std::vector<MultiFab*>& phi,
                                     const std::vector<const MultiFab*>& rhs) {
    TimerRegion timer("mg/solve");
    const int top = numRungs() - 1;
    assert(static_cast<int>(phi.size()) == numAmrLevels() &&
           rhs.size() == phi.size());
    CompositeMgResult result;
    const CompositeMgStats before = m_stats;

    for (int lev = 0; lev < numAmrLevels(); ++lev) {
        const int r = m_base + lev;
        Rung& R = m_r[static_cast<std::size_t>(r)];
        assert(phi[static_cast<std::size_t>(lev)]->nGrow() >= 1);
        if (r == top) {
            MultiFab::Copy(R.rhs, *rhs[static_cast<std::size_t>(lev)], 0, 0,
                           1, 0);
        } else {
            MultiFab::Copy(R.rhs0, *rhs[static_cast<std::size_t>(lev)], 0, 0,
                           1, 0);
        }
        if (m_opt.warm_start) {
            MultiFab::Copy(R.phi, *phi[static_cast<std::size_t>(lev)], 0, 0,
                           1, 0);
        }
    }
    if (!m_opt.warm_start) {
        for (Rung& R : m_r) R.phi.setVal(0.0);
    }
    if (m_singular) removeMeanRhs();

    averageDownPhi();
    result.initial_resnorm = compositeResidualNorm();
    Real rhsnorm = 0.0;
    for (int r = m_base; r <= top; ++r) {
        rhsnorm = std::max(
            rhsnorm, (r == top ? m_r[static_cast<std::size_t>(r)].rhs
                               : m_r[static_cast<std::size_t>(r)].rhs0)
                         .norminf(0));
    }
    const Real target = m_opt.rtol * std::max({result.initial_resnorm, rhsnorm,
                                               Real(1.0e-300)});

    Real res = result.initial_resnorm;
    if (res > target && m_opt.fmg && !m_opt.warm_start) {
        fmgBootstrap();
        if (m_singular) removeMeanPhi();
        averageDownPhi();
        res = compositeResidualNorm();
    }
    int outer = 0;
    while (res > target && outer < m_opt.max_vcycles) {
        vcycle(top);
        ++m_stats.vcycles;
        ++outer;
        if (m_singular) removeMeanPhi();
        averageDownPhi();
        res = compositeResidualNorm();
    }

    for (int lev = 0; lev < numAmrLevels(); ++lev) {
        MultiFab::Copy(*phi[static_cast<std::size_t>(lev)],
                       m_r[static_cast<std::size_t>(m_base + lev)].phi, 0, 0,
                       1, 0);
    }

    result.vcycles = outer;
    result.all_vcycles = static_cast<int>(m_stats.vcycles - before.vcycles);
    result.fmg_cycles = static_cast<int>(m_stats.fmg_cycles - before.fmg_cycles);
    result.sweeps = m_stats.sweeps - before.sweeps;
    result.agg_copies = m_stats.agg_copies - before.agg_copies;
    result.agg_bytes = m_stats.agg_bytes - before.agg_bytes;
    result.final_resnorm = res;
    result.converged = res <= target;
    if (CommHooks::mgActive()) {
        MgEvent e;
        e.fmg_cycles = result.fmg_cycles;
        e.vcycles = result.all_vcycles;
        e.sweeps = result.sweeps;
        e.agg_copies = result.agg_copies;
        e.agg_bytes = result.agg_bytes;
        CommHooks::notifyMg(e);
    }
    return result;
}

void CompositeMg::fillCompositeGhosts(const std::vector<MultiFab*>& phi) {
    assert(static_cast<int>(phi.size()) == numAmrLevels());
    for (int lev = 0; lev < numAmrLevels(); ++lev) {
        Rung& R = m_r[static_cast<std::size_t>(m_base + lev)];
        MultiFab& p = *phi[static_cast<std::size_t>(lev)];
        p.FillBoundary(0, 1, R.geom.periodicity());
        if (R.cf) {
            R.cf->prepare(*phi[static_cast<std::size_t>(lev - 1)]);
            R.cf->interpGhosts(p);
        }
        mgApplyDomainBC(p, R.geom, m_bc);
    }
}

} // namespace exa
