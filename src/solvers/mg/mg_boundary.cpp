#include "solvers/mg/mg_boundary.hpp"

#include "core/parallel_for.hpp"
#include "mesh/comm_hooks.hpp"

#include <algorithm>
#include <cmath>

namespace exa {

void mgApplyDomainBC(MultiFab& phi, const Geometry& g, MgBC bc) {
    if (bc == MgBC::Periodic) return;

    // Physical BC in the face-normal ghost zones outside the domain:
    // Dirichlet: phi_g = -phi_i (value 0 on the face between them);
    // Neumann:   phi_g = +phi_i.
    const Real sgn = (bc == MgBC::Dirichlet) ? -1.0 : 1.0;
    const Box& dom = g.domain();
    for (std::size_t i = 0; i < phi.size(); ++i) {
        auto a = phi.array(static_cast<int>(i));
        const Box& vb = phi.box(static_cast<int>(i));
        for (int d = 0; d < 3; ++d) {
            if (g.isPeriodic(d)) continue; // FillBoundary already wrapped
            const IntVect e = IntVect::basis(d);
            if (vb.smallEnd(d) == dom.smallEnd(d)) {
                Box face(
                    {d == 0 ? vb.smallEnd(0) - 1 : vb.smallEnd(0),
                     d == 1 ? vb.smallEnd(1) - 1 : vb.smallEnd(1),
                     d == 2 ? vb.smallEnd(2) - 1 : vb.smallEnd(2)},
                    {d == 0 ? vb.smallEnd(0) - 1 : vb.bigEnd(0),
                     d == 1 ? vb.smallEnd(1) - 1 : vb.bigEnd(1),
                     d == 2 ? vb.smallEnd(2) - 1 : vb.bigEnd(2)});
                ParallelFor(KernelInfo::streaming("mg_bc_fill", 16.0), face,
                            [=](int ii, int j, int k) {
                    a(ii, j, k) = sgn * a(ii + e.x, j + e.y, k + e.z);
                });
            }
            if (vb.bigEnd(d) == dom.bigEnd(d)) {
                Box face(
                    {d == 0 ? vb.bigEnd(0) + 1 : vb.smallEnd(0),
                     d == 1 ? vb.bigEnd(1) + 1 : vb.smallEnd(1),
                     d == 2 ? vb.bigEnd(2) + 1 : vb.smallEnd(2)},
                    {d == 0 ? vb.bigEnd(0) + 1 : vb.bigEnd(0),
                     d == 1 ? vb.bigEnd(1) + 1 : vb.bigEnd(1),
                     d == 2 ? vb.bigEnd(2) + 1 : vb.bigEnd(2)});
                ParallelFor(KernelInfo::streaming("mg_bc_fill", 16.0), face,
                            [=](int ii, int j, int k) {
                    a(ii, j, k) = sgn * a(ii - e.x, j - e.y, k - e.z);
                });
            }
        }
    }
}

// --- MgCfBoundary --------------------------------------------------------

MgCfBoundary::MgCfBoundary(const Geometry& crse_geom, const Geometry& fine_geom,
                           const BoxArray& fine_ba,
                           const DistributionMapping& fine_dm,
                           const BoxArray& crse_ba,
                           const DistributionMapping& crse_dm, int ratio,
                           MgBC bc)
    : m_ratio(ratio) {
    (void)bc;
    for (int d = 0; d < 3; ++d) {
        m_crse_dx[d] = crse_geom.cellSize(d);
        m_fine_dx[d] = fine_geom.cellSize(d);
    }
    const Box& fine_dom = fine_geom.domain();
    const auto fine_shifts = fine_geom.periodicity().shifts();
    const auto crse_shifts = crse_geom.periodicity().shifts();

    // 1. Coarse-fine ghost pieces: for every fine fab face, the one-cell
    // layer outside the valid box, minus physical-boundary faces (the
    // domain BC owns those ghosts) and minus same-level coverage
    // (FillBoundary owns those, periodic images included).
    const int nfine = static_cast<int>(fine_ba.size());
    for (int i = 0; i < nfine; ++i) {
        const Box& vb = fine_ba[i];
        for (int d = 0; d < 3; ++d) {
            const bool per = fine_geom.isPeriodic(d);
            for (int side = 0; side < 2; ++side) {
                if (!per && side == 0 && vb.smallEnd(d) == fine_dom.smallEnd(d))
                    continue;
                if (!per && side == 1 && vb.bigEnd(d) == fine_dom.bigEnd(d))
                    continue;
                Box layer = vb;
                if (side == 0) {
                    layer.growLo(d, 1);
                    layer.growHi(d, -(vb.length(d)));
                } else {
                    layer.growHi(d, 1);
                    layer.growLo(d, -(vb.length(d)));
                }
                std::vector<Box> rem{layer};
                for (const IntVect& s : fine_shifts) {
                    for (const auto& [j, isect] :
                         fine_ba.intersections(shift(layer, -s))) {
                        const Box image = shift(isect, s);
                        std::vector<Box> next;
                        for (const Box& p : rem) {
                            const auto diff = boxDiff(p, image);
                            next.insert(next.end(), diff.begin(), diff.end());
                        }
                        rem.swap(next);
                        if (rem.empty()) break;
                    }
                    if (rem.empty()) break;
                }
                for (const Box& p : rem) {
                    Piece piece;
                    piece.fab = i;
                    piece.dim = d;
                    piece.side = side;
                    piece.quad = vb.length(d) >= 2;
                    piece.box = p;
                    m_nghost_cells +=
                        static_cast<std::size_t>(p.numPts());
                    m_pieces.push_back(piece);
                }
            }
        }
    }

    // 2. One coarse gather per fine fab that has pieces: parents of every
    // ghost cell plus a one-cell ring for the tangential slope stencil.
    std::vector<int> fab_gather(static_cast<std::size_t>(nfine), -1);
    for (const Piece& piece : m_pieces) {
        if (fab_gather[static_cast<std::size_t>(piece.fab)] >= 0) continue;
        GatherSpec gs;
        gs.fine_fab = piece.fab;
        gs.cbox =
            coarsen(grow(fine_ba[static_cast<std::size_t>(piece.fab)], 1), ratio)
                .grow(1);
        for (const IntVect& s : crse_shifts) {
            for (const auto& [cj, isect] :
                 crse_ba.intersections(shift(gs.cbox, -s))) {
                GatherItem item;
                item.crse_fab = cj;
                item.src = isect;
                item.dst = shift(isect, s);
                item.src_rank = crse_dm[static_cast<std::size_t>(cj)];
                item.dst_rank = fine_dm[static_cast<std::size_t>(piece.fab)];
                gs.items.push_back(item);
            }
        }
        gs.vals.define(gs.cbox, 1);
        gs.mask.define(gs.cbox, 1);
        gs.mask.setVal(0.0);
        for (const GatherItem& item : gs.items)
            gs.mask.setVal(1.0, item.dst, 0, 1);
        fab_gather[static_cast<std::size_t>(piece.fab)] =
            static_cast<int>(m_gather.size());
        m_gather.push_back(std::move(gs));
    }
    m_piece_gather.reserve(m_pieces.size());
    m_tilde.reserve(m_pieces.size());
    for (const Piece& piece : m_pieces) {
        m_piece_gather.push_back(
            fab_gather[static_cast<std::size_t>(piece.fab)]);
        FArrayBox t(piece.box, 1);
        t.setVal(0.0);
        m_tilde.push_back(std::move(t));
    }

    // 3. Flux-mismatch items: the uncovered coarse cells under each ghost
    // piece, resolved onto coarse fabs (periodic images included).
    for (const Piece& piece : m_pieces) {
        const Box cgb = coarsen(piece.box, ratio);
        for (const IntVect& s : crse_shifts) {
            for (const auto& [cj, isect] :
                 crse_ba.intersections(shift(cgb, -s))) {
                FluxItem item;
                item.crse_fab = cj;
                item.fine_fab = piece.fab;
                item.dim = piece.dim;
                item.side = piece.side;
                item.crse_cells = isect;
                item.sh = s;
                item.gn = piece.box.smallEnd(piece.dim);
                item.ghosts = piece.box;
                m_flux.push_back(item);
            }
        }
    }
}

void MgCfBoundary::prepare(const MultiFab& crse) {
    for (GatherSpec& gs : m_gather) {
        gs.vals.setVal(0.0);
        for (const GatherItem& item : gs.items) {
            gs.vals.copyFrom(crse.fab(item.crse_fab), item.src, 0, item.dst, 0,
                             1);
            if (item.src_rank != item.dst_rank && CommHooks::active()) {
                MessageRecord r;
                r.src_rank = item.src_rank;
                r.dst_rank = item.dst_rank;
                r.bytes = item.src.numPts() *
                          static_cast<std::int64_t>(sizeof(Real));
                r.tag = "mg-cfb";
                CommHooks::notify(r);
            }
        }
    }
    // Tangentially interpolated coarse value at each fine ghost center.
    const int r = m_ratio;
    const Real rr = static_cast<Real>(r);
    for (std::size_t pi = 0; pi < m_pieces.size(); ++pi) {
        const Piece& piece = m_pieces[pi];
        const GatherSpec& gs =
            m_gather[static_cast<std::size_t>(m_piece_gather[pi])];
        auto v = gs.vals.const_array();
        auto mk = gs.mask.const_array();
        auto tl = m_tilde[pi].array();
        const int t1 = (piece.dim + 1) % 3;
        const int t2 = (piece.dim + 2) % 3;
        ParallelFor(KernelInfo{"mg_cf_tangent", 18.0, 72.0, 40, 1.0},
                    piece.box, [=](int i, int j, int k) {
            const IntVect g{i, j, k};
            const IntVect C{coarsen_index(i, r), coarsen_index(j, r),
                            coarsen_index(k, r)};
            const Real c0 = v(C.x, C.y, C.z);
            Real val = c0;
            for (const int td : {t1, t2}) {
                const IntVect e = IntVect::basis(td);
                const Real delta =
                    (static_cast<Real>(g[td] - C[td] * r) + 0.5_rt) / rr -
                    0.5_rt;
                // Slope with coverage fallback: limited central where both
                // tangential neighbors hold coarse data, one-sided where
                // only one does (n_proper=1 nesting corners), else flat.
                const bool ml = mk(C.x - e.x, C.y - e.y, C.z - e.z) > 0.5;
                const bool mr = mk(C.x + e.x, C.y + e.y, C.z + e.z) > 0.5;
                Real slope = 0.0;
                if (ml && mr) {
                    const Real sl = c0 - v(C.x - e.x, C.y - e.y, C.z - e.z);
                    const Real sr = v(C.x + e.x, C.y + e.y, C.z + e.z) - c0;
                    if (sl * sr > 0.0) {
                        const Real sc = 0.5_rt * (sl + sr);
                        const Real mag = std::min(
                            {std::abs(sc), 2.0_rt * std::abs(sl),
                             2.0_rt * std::abs(sr)});
                        slope = sc > 0 ? mag : -mag;
                    }
                } else if (mr) {
                    slope = v(C.x + e.x, C.y + e.y, C.z + e.z) - c0;
                } else if (ml) {
                    slope = c0 - v(C.x - e.x, C.y - e.y, C.z - e.z);
                }
                val += delta * slope;
            }
            tl(i, j, k) = val;
        });
    }
}

void MgCfBoundary::interpGhosts(MultiFab& fine) const {
    const Real rr = static_cast<Real>(m_ratio);
    // Quadratic normal interpolant through the tangential coarse value at
    // -r/2 (fine units from the ghost center), f1 at +1/2 and f2 at +3/2
    // toward the fine interior, evaluated at the ghost center:
    const Real wc_q = 8.0_rt / ((rr + 1.0_rt) * (rr + 3.0_rt));
    const Real w1_q = 2.0_rt * (rr - 1.0_rt) / (rr + 1.0_rt);
    const Real w2_q = -(rr - 1.0_rt) / (rr + 3.0_rt);
    // Linear fallback (fine box a single cell deep: no f2):
    const Real wc_l = 2.0_rt / (rr + 1.0_rt);
    const Real w1_l = (rr - 1.0_rt) / (rr + 1.0_rt);
    for (std::size_t pi = 0; pi < m_pieces.size(); ++pi) {
        const Piece& piece = m_pieces[pi];
        auto a = fine.array(piece.fab);
        auto tl = m_tilde[pi].const_array();
        const IntVect off =
            piece.side == 0 ? IntVect::basis(piece.dim) : -IntVect::basis(piece.dim);
        if (piece.quad) {
            const Real wc = wc_q, w1 = w1_q, w2 = w2_q;
            ParallelFor(KernelInfo::streaming("mg_cf_interp", 20.0), piece.box,
                        [=](int i, int j, int k) {
                a(i, j, k) = wc * tl(i, j, k) +
                             w1 * a(i + off.x, j + off.y, k + off.z) +
                             w2 * a(i + 2 * off.x, j + 2 * off.y,
                                    k + 2 * off.z);
            });
        } else {
            const Real wc = wc_l, w1 = w1_l;
            ParallelFor(KernelInfo::streaming("mg_cf_interp", 20.0), piece.box,
                        [=](int i, int j, int k) {
                a(i, j, k) = wc * tl(i, j, k) +
                             w1 * a(i + off.x, j + off.y, k + off.z);
            });
        }
    }
}

void MgCfBoundary::addFluxMismatch(MultiFab& dst, const MultiFab& fine,
                                   const MultiFab& crse, Real sign) const {
    const int r = m_ratio;
    const Real inv_r2 = 1.0_rt / (static_cast<Real>(r) * r);
    for (const FluxItem& item : m_flux) {
        auto dA = dst.array(item.crse_fab);
        auto cA = crse.const_array(item.crse_fab);
        auto fA = fine.const_array(item.fine_fab);
        const int d = item.dim;
        const int t1 = (d + 1) % 3;
        const int t2 = (d + 2) % 3;
        const int gn = item.gn;
        // The covered coarse neighbor (and the first fine interior cell)
        // sit toward the fine region: +d of the layer on side 0, -d on
        // side 1.
        const int dir = item.side == 0 ? 1 : -1;
        const IntVect e = IntVect::basis(d);
        const IntVect sh = item.sh;
        const Box ghosts = item.ghosts;
        const Real inv_hf = 1.0_rt / m_fine_dx[d];
        const Real inv_hc = 1.0_rt / m_crse_dx[d];
        ParallelFor(KernelInfo{"mg_flux_corr", 20.0, 64.0, 40, 1.0},
                    item.crse_cells, [=](int i, int j, int k) {
            // Fine-frame parent of this uncovered coarse cell.
            const IntVect o{i + sh.x, j + sh.y, k + sh.z};
            Real acc = 0.0;
            for (int a = 0; a < r; ++a) {
                for (int b = 0; b < r; ++b) {
                    IntVect g;
                    g[d] = gn;
                    g[t1] = o[t1] * r + a;
                    g[t2] = o[t2] * r + b;
                    if (!ghosts.contains(g)) continue;
                    IntVect f1 = g;
                    f1[d] += dir;
                    // Per-face share: (Gf_face - Gc); summing the r^2
                    // faces of one coarse face recovers avg(Gf) - Gc even
                    // when the faces are split across pieces/fabs.
                    acc += (fA(f1.x, f1.y, f1.z) - fA(g.x, g.y, g.z)) *
                               inv_hf -
                           (cA(i + dir * e.x, j + dir * e.y, k + dir * e.z) -
                            cA(i, j, k)) *
                               inv_hc;
                }
            }
            dA(i, j, k) += sign * acc * inv_r2 * inv_hc;
        });
    }
}

} // namespace exa
