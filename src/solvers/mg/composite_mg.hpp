#pragma once

// Composite-grid full multigrid (FMG) for the cell-centered Poisson
// problem across an AMR hierarchy — the role AMReX's MLMG plays in
// Castro's self-gravity solve, the globally coupled algorithm the paper
// (SC 2020, §V) identifies as the exascale scaling gate. The AMR levels
// form the fine end of one MG ladder; below AMR level 0 the ladder
// continues by geometric full coarsening. The scheme is FAS (full
// approximation scheme): every rung carries a full solution approximation,
// partially refined rungs get a deferred-correction rhs with reflux-style
// flux-mismatch corrections at coarse-fine faces, and fine-rung boundary
// conditions come from quadratic coarse-fine interpolation (MgCfBoundary).
//
// Two performance layers ride inside:
//  - Coarse-level rank aggregation. Few-zone coarse grids are
//    latency-bound in the alpha-beta model, so geometric rungs below a
//    zone threshold are laid out on fewer ranks (cost-weighted knapsack
//    mapping); transfers stage through a MultiFab on the finer rung's
//    distribution so the rank transition is one cached ParallelCopy plan.
//  - Split-phase smoother halos. When comm::asyncHalo() is on, every
//    red-black half-sweep posts its ghost exchange, smooths fab interiors
//    while the traffic is in flight, then finishes and sweeps the shells
//    (bit-identical to the fused path: a half-sweep writes one color and
//    reads only the other).
//
// Solves are cold by default (initial guess 0, FMG bootstrap, then
// V-cycles to rtol): the result is a pure function of the rhs, which is
// what makes gravity bit-identical across regrids, rebalances, and
// rank-failure recovery replay.

#include "mesh/interp.hpp"
#include "mesh/multifab.hpp"
#include "solvers/mg/mg_boundary.hpp"
#include "solvers/multigrid.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace exa {

struct CompositeMgOptions {
    int pre_smooth = 2;
    int post_smooth = 2;
    int bottom_smooth = 40;
    int max_vcycles = 60;
    Real rtol = 1.0e-10;    // relative composite-residual target
    bool fmg = true;        // FMG bootstrap before the V-cycle loop
    bool warm_start = false; // keep previous phi as initial guess (bench only)
    int min_level_side = 2; // stop geometric coarsening at this side length
    int max_grid_size = 32;
    int nranks = 1;
    // Aggregate a geometric rung onto ceil(zones / agg_zones_per_rank)
    // ranks when that is fewer than nranks. 0 disables via the flag.
    bool aggregate_coarse = true;
    std::int64_t agg_zones_per_rank = 4096;
};

struct CompositeMgResult {
    int vcycles = 0;     // outer V-cycles (after any FMG bootstrap)
    int all_vcycles = 0; // including the per-stage cycles inside FMG
    int fmg_cycles = 0;
    std::int64_t sweeps = 0;
    std::int64_t agg_copies = 0; // staged coarse-aggregation ParallelCopies
    std::int64_t agg_bytes = 0;  // their off-rank payload
    Real initial_resnorm = 0.0;
    Real final_resnorm = 0.0;
    bool converged = false;
};

// Lifetime totals (monotone; per-solve deltas land in CompositeMgResult).
struct CompositeMgStats {
    std::int64_t vcycles = 0;
    std::int64_t fmg_cycles = 0;
    std::int64_t sweeps = 0;
    std::int64_t agg_copies = 0;
    std::int64_t agg_bytes = 0;
};

class CompositeMg {
public:
    // geoms/bas/dms describe the AMR hierarchy, index 0 = coarsest AMR
    // level (CastroAmr ordering); ref_ratio is the uniform fine/coarse
    // ratio between consecutive AMR levels. Layouts are captured by value:
    // after a regrid, build a new CompositeMg.
    CompositeMg(std::vector<Geometry> geoms, std::vector<BoxArray> bas,
                std::vector<DistributionMapping> dms, int ref_ratio, MgBC bc,
                const CompositeMgOptions& opt = {});

    // Solve Laplacian(phi) = rhs on the composite hierarchy. phi[lev] /
    // rhs[lev] live on the AMR level layouts passed at construction;
    // phi needs >= 1 ghost zone. On return the levels are consistent
    // (coarse = average of fine on covered regions).
    CompositeMgResult solve(const std::vector<MultiFab*>& phi,
                            const std::vector<const MultiFab*>& rhs);

    // Fill ghost zones of per-level fields on the AMR layouts the solver
    // was built with: same-level exchange, coarse-fine interpolation, and
    // the physical BC — what a gradient stencil needs after a solve.
    void fillCompositeGhosts(const std::vector<MultiFab*>& phi);

    int numRungs() const { return static_cast<int>(m_r.size()); }
    int numAmrLevels() const { return numRungs() - m_base; }
    // Geometric rungs living on a reduced rank set.
    int aggregatedRungs() const;
    const CompositeMgStats& stats() const { return m_stats; }

private:
    struct Rung {
        Geometry geom;
        BoxArray ba;
        DistributionMapping dm;
        int ratio = 2;    // refinement ratio to the rung below
        bool amr = false; // mirrors an AMR level's own layout
        bool aggregated = false;
        bool covers_coarse = true; // coarsen(ba) covers the rung below
        MultiFab phi;  // solution approximation (1 ghost zone)
        MultiFab rhs;  // cycle rhs (FAS deferred correction below the top)
        MultiFab rhs0; // user rhs (AMR rungs below the top only)
        MultiFab res;  // residual / correction scratch
        MultiFab sav;  // pre-cycle coarse phi (FAS correction base)
        // Aggregated rungs: staging fab on (coarsen(finer ba), finer dm)
        // so fine<->coarse transfers cross ranks as one ParallelCopy.
        MultiFab stage;
        std::int64_t stage_restrict_bytes = 0;
        std::int64_t stage_prolong_bytes = 0;
        std::unique_ptr<MgCfBoundary> cf; // interface to the rung below
        // Valid region not covered by the finer rung (per fab), for
        // masked means and the composite residual norm.
        std::vector<std::vector<Box>> uncovered;
    };

    void fillGhostsRung(int r);
    void smoothRung(int r, int sweeps);
    // out = Laplacian(phi) on rung r; ghosts of phi must be current.
    void applyOpNoFill(int r, const MultiFab& phi, MultiFab& out);
    // res = rhs - Laplacian(phi) on rung r; ghosts must be current.
    void applyResidual(int r, const MultiFab& rhs, MultiFab& res);
    // Average rung r's `fine` down into rung r-1's `crse` (covered cells
    // only), staging through the aggregation fab when rung r-1 lives on a
    // reduced rank set.
    void restrictIntoCoarse(int r, const MultiFab& fine, MultiFab& crse);
    void buildCoarseRhs(int r);
    void prolongAddCorrection(int r);
    void fmgInterp(int r);
    void vcycle(int r);
    void fmgBootstrap();
    void averageDownPhi();
    Real compositeResidualNorm();
    void zeroCovered(int r, MultiFab& mf);
    Real maskedMean(const std::vector<const MultiFab*>& mfs) const;
    void removeMeanRhs();
    void removeMeanPhi();

    MgBC m_bc;
    CompositeMgOptions m_opt;
    int m_base = 0; // rung index of AMR level 0
    bool m_singular = false;
    Real m_domain_volume = 1.0;
    std::vector<Rung> m_r;
    CompositeMgStats m_stats;
};

} // namespace exa
