#include "solvers/multigrid.hpp"

#include "core/executor.hpp"
#include "core/parallel_for.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"
#include "solvers/mg/mg_boundary.hpp"

#include <cassert>
#include <cmath>

namespace exa {

namespace {

bool coarsenable(const Box& b, int min_side) {
    return b.length(0) % 2 == 0 && b.length(1) % 2 == 0 && b.length(2) % 2 == 0 &&
           b.length(0) > min_side && b.length(1) > min_side && b.length(2) > min_side;
}

KernelInfo smoothKernel() { return KernelInfo{"mg_smooth", 12.0, 96.0, 40, 1.0}; }
KernelInfo residKernel() { return KernelInfo{"mg_residual", 10.0, 80.0, 40, 1.0}; }

} // namespace

Multigrid::Multigrid(const Geometry& geom, MgBC bc) : Multigrid(geom, bc, Options{}) {}

Multigrid::Multigrid(const Geometry& geom, MgBC bc, const Options& opt)
    : m_bc(bc), m_opt(opt) {
    // Build the level hierarchy by full coarsening.
    m_geom.push_back(geom);
    while (coarsenable(m_geom.back().domain(), m_opt.min_level_side)) {
        m_geom.push_back(m_geom.back().coarsened(2));
    }
    const int nlev = static_cast<int>(m_geom.size());
    m_ba.resize(nlev);
    m_dm.resize(nlev);
    m_phi.resize(nlev);
    m_rhs.resize(nlev);
    m_res.resize(nlev);
    for (int l = 0; l < nlev; ++l) {
        BoxArray ba(m_geom[l].domain());
        ba.maxSize(m_opt.max_grid_size);
        m_ba[l] = ba;
        m_dm[l] = DistributionMapping(ba, m_opt.nranks);
        m_phi[l].define(ba, m_dm[l], 1, 1);
        m_rhs[l].define(ba, m_dm[l], 1, 0);
        m_res[l].define(ba, m_dm[l], 1, 0);
    }
}

void Multigrid::fillGhosts(MultiFab& phi, int lev) {
    phi.FillBoundary(0, phi.nComp(), m_geom[lev].periodicity());
    applyDomainBC(phi, lev);
}

void Multigrid::applyDomainBC(MultiFab& phi, int lev) {
    mgApplyDomainBC(phi, m_geom[lev], m_bc);
}

void Multigrid::smooth(MultiFab& phi, const MultiFab& rhs, int lev, int sweeps) {
    const Geometry& g = m_geom[lev];
    const Real hx2 = 1.0 / (g.cellSize(0) * g.cellSize(0));
    const Real hy2 = 1.0 / (g.cellSize(1) * g.cellSize(1));
    const Real hz2 = 1.0 / (g.cellSize(2) * g.cellSize(2));
    const Real diag = 2.0 * (hx2 + hy2 + hz2);
    // One red-black half-sweep of fab i restricted to `region`.
    auto sweepRegion = [&](std::size_t i, const Box& region, int color) {
        auto p = phi.array(static_cast<int>(i));
        auto r = rhs.const_array(static_cast<int>(i));
        ParallelFor(smoothKernel(), region, [=](int ii, int j, int k) {
            if (((ii + j + k) & 1) != color) return;
            const Real sum = hx2 * (p(ii + 1, j, k) + p(ii - 1, j, k)) +
                             hy2 * (p(ii, j + 1, k) + p(ii, j - 1, k)) +
                             hz2 * (p(ii, j, k + 1) + p(ii, j, k - 1));
            p(ii, j, k) = (sum - r(ii, j, k)) / diag;
        });
    };
    for (int s = 0; s < sweeps; ++s) {
        for (int color = 0; color < 2; ++color) {
            if (comm::asyncHalo()) {
                // Split phase: post the exchange (which packs the
                // pre-sweep valid data, exactly what the fused path's
                // ghosts carry), smooth the interiors while it is in
                // flight, then deliver, apply the domain BC, and smooth
                // the one-zone boundary shells. The half-sweep writes
                // only `color` zones and reads only the other color, so
                // the interior/shell order cannot change any result.
                comm::HaloHandle halo =
                    phi.FillBoundary_nowait(0, phi.nComp(), g.periodicity());
                const auto part =
                    CopierCache::instance().interiorPartition(phi.boxArray(), 1);
                {
                    StreamScope streams;
                    for (std::size_t i = 0; i < phi.size(); ++i) {
                        const FabRegions& fr = part->fabs[i];
                        if (!fr.interior.ok()) continue;
                        streams.useFab(i);
                        sweepRegion(i, fr.interior, color);
                    }
                }
                halo.finish();
                applyDomainBC(phi, lev);
                {
                    StreamScope streams;
                    for (std::size_t i = 0; i < phi.size(); ++i) {
                        streams.useFab(i);
                        for (const Box& sb : part->fabs[i].shell) {
                            sweepRegion(i, sb, color);
                        }
                    }
                }
            } else {
                fillGhosts(phi, lev);
                StreamScope streams;
                for (std::size_t i = 0; i < phi.size(); ++i) {
                    streams.useFab(i);
                    sweepRegion(i, phi.box(static_cast<int>(i)), color);
                }
            }
            ++m_sweeps;
        }
    }
}

void Multigrid::apply(MultiFab& phi, MultiFab& out, int lev) {
    const Geometry& g = m_geom[lev];
    const Real hx2 = 1.0 / (g.cellSize(0) * g.cellSize(0));
    const Real hy2 = 1.0 / (g.cellSize(1) * g.cellSize(1));
    const Real hz2 = 1.0 / (g.cellSize(2) * g.cellSize(2));
    fillGhosts(phi, lev);
    for (std::size_t i = 0; i < phi.size(); ++i) {
        auto p = phi.const_array(static_cast<int>(i));
        auto o = out.array(static_cast<int>(i));
        ParallelFor(residKernel(), out.box(static_cast<int>(i)),
                    [=](int ii, int j, int k) {
                        o(ii, j, k) = hx2 * (p(ii + 1, j, k) - 2 * p(ii, j, k) + p(ii - 1, j, k)) +
                                      hy2 * (p(ii, j + 1, k) - 2 * p(ii, j, k) + p(ii, j - 1, k)) +
                                      hz2 * (p(ii, j, k + 1) - 2 * p(ii, j, k) + p(ii, j, k - 1));
                    });
    }
}

void Multigrid::residual(MultiFab& phi, const MultiFab& rhs, MultiFab& res, int lev) {
    apply(phi, res, lev);
    for (std::size_t i = 0; i < res.size(); ++i) {
        auto r = res.array(static_cast<int>(i));
        auto b = rhs.const_array(static_cast<int>(i));
        ParallelFor(KernelInfo::streaming("mg_resid_sub", 24.0), res.box(static_cast<int>(i)),
                    [=](int ii, int j, int k) { r(ii, j, k) = b(ii, j, k) - r(ii, j, k); });
    }
}

Real Multigrid::residualNorm(MultiFab& phi, const MultiFab& rhs, int lev) {
    residual(phi, rhs, m_res[lev], lev);
    // Reuse the level scratch only for norm computation when called on the
    // user's data (lev 0); m_res has the right BoxArray by construction.
    return m_res[lev].norminf(0);
}

void Multigrid::vcycle(int lev) {
    const int nlev = numLevels();
    if (lev == nlev - 1) {
        smooth(m_phi[lev], m_rhs[lev], lev, m_opt.bottom_smooth);
        return;
    }
    smooth(m_phi[lev], m_rhs[lev], lev, m_opt.pre_smooth);
    residual(m_phi[lev], m_rhs[lev], m_res[lev], lev);
    averageDown(m_rhs[lev + 1], m_res[lev], 2, 0, 0, 1);
    m_phi[lev + 1].setVal(0.0);
    vcycle(lev + 1);
    // Prolong the coarse correction and add it to the fine solution.
    for (std::size_t i = 0; i < m_phi[lev].size(); ++i) {
        auto f = m_phi[lev].array(static_cast<int>(i));
        const Box& fb = m_phi[lev].box(static_cast<int>(i));
        // Gather the coarse correction under this fine box.
        Box cb = coarsen(fb, 2);
        FArrayBox ctmp(cb, 1);
        ctmp.setVal(0.0);
        for (const auto& [ci, isect] : m_ba[lev + 1].intersections(cb)) {
            ctmp.copyFrom(m_phi[lev + 1].fab(ci), isect, 0, isect, 0, 1);
        }
        auto c = ctmp.const_array();
        ParallelFor(KernelInfo::streaming("mg_prolong_add", 24.0), fb,
                    [=](int ii, int j, int k) {
            f(ii, j, k) += c(coarsen_index(ii, 2), coarsen_index(j, 2),
                             coarsen_index(k, 2));
        });
    }
    smooth(m_phi[lev], m_rhs[lev], lev, m_opt.post_smooth);
}

void Multigrid::removeMean(MultiFab& mf) const {
    const Real mean = mf.sum(0) / static_cast<Real>(mf.boxArray().numPts());
    mf.plus(-mean, 0, 1);
}

MgResult Multigrid::solve(MultiFab& phi, const MultiFab& rhs) {
    assert(phi.nGrow() >= 1);
    MgResult result;
    const std::int64_t sweeps_before = m_sweeps;

    // Move the user's data onto the solver's level-0 layout.
    m_phi[0].ParallelCopy(phi, 0, 0, 1, 0, m_geom[0].periodicity());
    m_rhs[0].ParallelCopy(rhs, 0, 0, 1, 0, m_geom[0].periodicity());
    const bool singular = (m_bc == MgBC::Periodic || m_bc == MgBC::Neumann);
    if (singular) removeMean(m_rhs[0]);

    result.initial_resnorm = residualNorm(m_phi[0], m_rhs[0], 0);
    const Real rhsnorm = m_rhs[0].norminf(0);
    const Real target =
        m_opt.rtol * std::max({result.initial_resnorm, rhsnorm, Real(1.0e-300)});

    Real res = result.initial_resnorm;
    int it = 0;
    while (res > target && it < m_opt.max_vcycles) {
        vcycle(0);
        if (singular) removeMean(m_phi[0]);
        res = residualNorm(m_phi[0], m_rhs[0], 0);
        ++it;
    }
    result.vcycles = it;
    result.final_resnorm = res;
    result.converged = res <= target;

    phi.ParallelCopy(m_phi[0], 0, 0, 1, 0, m_geom[0].periodicity());
    if (CommHooks::mgActive()) {
        MgEvent e;
        e.vcycles = result.vcycles;
        e.sweeps = m_sweeps - sweeps_before;
        CommHooks::notifyMg(e);
    }
    return result;
}

} // namespace exa
