#include "comm/halo_pattern.hpp"

#include "mesh/copier_cache.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <vector>

namespace exa {

namespace {

// Morton-ordered box ids, chunked contiguously over ranks.
std::vector<int> rankTable(const RegularDecomposition& d, int nranks) {
    const std::int64_t n = d.numBoxes();
    std::vector<std::int64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    auto center = [&](std::int64_t id, int& x, int& y, int& z) {
        x = static_cast<int>(id % d.nbx);
        y = static_cast<int>((id / d.nbx) % d.nby);
        z = static_cast<int>(id / (static_cast<std::int64_t>(d.nbx) * d.nby));
    };
    std::vector<std::uint64_t> code(n);
    for (std::int64_t id = 0; id < n; ++id) {
        int x, y, z;
        center(id, x, y, z);
        code[id] = mortonCode(x, y, z);
    }
    std::sort(order.begin(), order.end(),
              [&](std::int64_t a, std::int64_t b) { return code[a] < code[b]; });
    std::vector<int> rank(n);
    for (std::int64_t pos = 0; pos < n; ++pos) {
        rank[order[pos]] = static_cast<int>(pos * nranks / n);
    }
    return rank;
}

} // namespace

int regularBoxRank(const RegularDecomposition& d, int ix, int iy, int iz, int nranks) {
    // Convenience (re-builds the table; fine for tests).
    auto table = rankTable(d, nranks);
    const std::int64_t id =
        ix + static_cast<std::int64_t>(d.nbx) * (iy + static_cast<std::int64_t>(d.nby) * iz);
    return table[id];
}

void buildHaloPattern(const RegularDecomposition& d, int nranks, CommLedger& ledger) {
    // Geometric plan from the shared copier machinery (hash-indexed box
    // intersections), with ranks assigned from the Morton chunk table so
    // the pattern matches what a real Sfc DistributionMapping produces.
    const auto table = rankTable(d, nranks);
    const BoxArray ba = makeBoxArray(d);
    assert(static_cast<std::int64_t>(ba.size()) == d.numBoxes());
    std::vector<int> ranks(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        // maxSize may emit boxes in any order; map each box back to its
        // lattice cell to look up its rank.
        const Box& b = ba[static_cast<int>(i)];
        const std::int64_t ix = b.smallEnd(0) / d.bx;
        const std::int64_t iy = b.smallEnd(1) / d.by;
        const std::int64_t iz = b.smallEnd(2) / d.bz;
        ranks[i] = table[ix + d.nbx * (iy + static_cast<std::int64_t>(d.nby) * iz)];
    }
    const Periodicity per = d.periodic
                                ? Periodicity(IntVect{d.nbx * d.bx, d.nby * d.by,
                                                      d.nbz * d.bz})
                                : Periodicity::nonPeriodic();
    const auto plan = CopierCache::buildFillBoundary(ba, ranks, d.ngrow, per);
    for (const CopyItem& item : plan->items) {
        if (item.local()) continue;
        ledger.record({item.src_rank, item.dst_rank,
                       item.src_box.numPts() * d.ncomp *
                           static_cast<std::int64_t>(sizeof(double)),
                       "fillboundary"});
    }
}

BoxArray makeBoxArray(const RegularDecomposition& d) {
    Box domain({0, 0, 0},
               {d.nbx * d.bx - 1, d.nby * d.by - 1, d.nbz * d.bz - 1});
    BoxArray ba(domain);
    ba.maxSize(IntVect{d.bx, d.by, d.bz});
    return ba;
}

} // namespace exa
