#include "comm/halo_pattern.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace exa {

namespace {

// Morton-ordered box ids, chunked contiguously over ranks.
std::vector<int> rankTable(const RegularDecomposition& d, int nranks) {
    const std::int64_t n = d.numBoxes();
    std::vector<std::int64_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    auto center = [&](std::int64_t id, int& x, int& y, int& z) {
        x = static_cast<int>(id % d.nbx);
        y = static_cast<int>((id / d.nbx) % d.nby);
        z = static_cast<int>(id / (static_cast<std::int64_t>(d.nbx) * d.nby));
    };
    std::vector<std::uint64_t> code(n);
    for (std::int64_t id = 0; id < n; ++id) {
        int x, y, z;
        center(id, x, y, z);
        code[id] = mortonCode(x, y, z);
    }
    std::sort(order.begin(), order.end(),
              [&](std::int64_t a, std::int64_t b) { return code[a] < code[b]; });
    std::vector<int> rank(n);
    for (std::int64_t pos = 0; pos < n; ++pos) {
        rank[order[pos]] = static_cast<int>(pos * nranks / n);
    }
    return rank;
}

} // namespace

int regularBoxRank(const RegularDecomposition& d, int ix, int iy, int iz, int nranks) {
    // Convenience (re-builds the table; fine for tests).
    auto table = rankTable(d, nranks);
    const std::int64_t id =
        ix + static_cast<std::int64_t>(d.nbx) * (iy + static_cast<std::int64_t>(d.nby) * iz);
    return table[id];
}

void buildHaloPattern(const RegularDecomposition& d, int nranks, CommLedger& ledger) {
    const auto rank = rankTable(d, nranks);
    auto boxid = [&](int x, int y, int z) {
        return x + static_cast<std::int64_t>(d.nbx) * (y + static_cast<std::int64_t>(d.nby) * z);
    };
    auto wrap = [](int v, int n) { return ((v % n) + n) % n; };

    const int ext[3] = {d.bx, d.by, d.bz};
    for (int z = 0; z < d.nbz; ++z) {
        for (int y = 0; y < d.nby; ++y) {
            for (int x = 0; x < d.nbx; ++x) {
                const int dst = rank[boxid(x, y, z)];
                for (int dz = -1; dz <= 1; ++dz) {
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx) {
                            if (dx == 0 && dy == 0 && dz == 0) continue;
                            int nx = x + dx, ny = y + dy, nz = z + dz;
                            if (!d.periodic &&
                                (nx < 0 || nx >= d.nbx || ny < 0 || ny >= d.nby ||
                                 nz < 0 || nz >= d.nbz)) {
                                continue;
                            }
                            nx = wrap(nx, d.nbx);
                            ny = wrap(ny, d.nby);
                            nz = wrap(nz, d.nbz);
                            const int src = rank[boxid(nx, ny, nz)];
                            if (src == dst) continue;
                            // Halo volume: ngrow in each offset dimension,
                            // full extent in the others.
                            const int off[3] = {dx, dy, dz};
                            std::int64_t zones = 1;
                            for (int dim = 0; dim < 3; ++dim) {
                                zones *= (off[dim] == 0)
                                             ? ext[dim]
                                             : std::min(d.ngrow, ext[dim]);
                            }
                            ledger.record({src, dst,
                                           zones * d.ncomp *
                                               static_cast<std::int64_t>(sizeof(double)),
                                           "fillboundary"});
                        }
                    }
                }
            }
        }
    }
}

BoxArray makeBoxArray(const RegularDecomposition& d) {
    Box domain({0, 0, 0},
               {d.nbx * d.bx - 1, d.nby * d.by - 1, d.nbz * d.bz - 1});
    BoxArray ba(domain);
    ba.maxSize(IntVect{d.bx, d.by, d.bz});
    return ba;
}

} // namespace exa
