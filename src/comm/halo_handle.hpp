#pragma once

// Split-phase halo exchange handle. A blocking MultiFab::FillBoundary is
//
//     auto h = mf.FillBoundary_nowait(scomp, ncomp, period);  // post
//     ... interior kernels, independent of ghost data ...
//     h.finish();                                             // deliver
//
// The post phase executes the cached CopyPlan's *pack* work — every
// source region is staged into exchange buffers on per-fab streams, so
// the destination fabs are untouched while the exchange is "on the
// wire". finish() unpacks the staged payloads in exact plan-item order
// and runs the CommHooks/fault-injection accounting precisely as the
// fused path does, so byte/message counts and deterministic fault
// schedules are identical between the two paths. Results are
// bit-identical to the blocking call on every backend.
//
// Lifecycle contract: finish() exactly once. The destructor completes a
// still-pending exchange (RAII safety net) and, under Backend::Debug,
// reports a "halo-unfinished" violation; a second finish() is a no-op
// that reports "halo-double-finish" under Backend::Debug.
//
// Declared in src/comm (it is the comm layer's public handle type) but
// defined in src/mesh/halo_exchange.cpp: exastro_comm links against
// exastro_mesh, so the implementation lives below MultiFab, not above.

#include <memory>

namespace exa {

class MultiFab;

namespace comm {

class HaloHandle {
public:
    // An empty handle: nothing pending, finish() is a no-op.
    HaloHandle();
    ~HaloHandle();

    HaloHandle(HaloHandle&&) noexcept;
    HaloHandle& operator=(HaloHandle&&) noexcept;
    HaloHandle(const HaloHandle&) = delete;
    HaloHandle& operator=(const HaloHandle&) = delete;

    // Deliver the staged exchange into the destination's ghost zones and
    // run the CommHooks accounting. Idempotent only in the sense that a
    // second call does nothing — under Backend::Debug it is diagnosed.
    void finish();

    // True between post and finish.
    bool pending() const;

private:
    friend class ::exa::MultiFab;
    struct Impl;
    explicit HaloHandle(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> m_impl;
};

// Process-wide switch for the split-phase machinery (default on). When
// off, the _nowait entry points execute the fused path immediately and
// return an already-finished handle, and the drivers take their original
// fused branches — the knob the bit-identity tests and bench_async_halo
// flip to compare overlap on/off.
void setAsyncHalo(bool enabled);
bool asyncHalo();

// RAII toggle (mirrors the comm-cache tests' ScopedCacheDisabled idiom).
class ScopedAsyncHalo {
public:
    explicit ScopedAsyncHalo(bool enabled) : m_saved(asyncHalo()) {
        setAsyncHalo(enabled);
    }
    ~ScopedAsyncHalo() { setAsyncHalo(m_saved); }
    ScopedAsyncHalo(const ScopedAsyncHalo&) = delete;
    ScopedAsyncHalo& operator=(const ScopedAsyncHalo&) = delete;

private:
    bool m_saved;
};

} // namespace comm
} // namespace exa
