#include "comm/network.hpp"

#include <algorithm>
#include <cmath>

namespace exa {

double NetworkModel::hopFactor(int nodes) const {
    return 1.0 + congestion * std::log2(std::max(1, nodes));
}

double NetworkModel::p2pTime(std::int64_t bytes, bool same_node, int nodes) const {
    if (same_node) {
        return alpha_node + static_cast<double>(bytes) / beta_node;
    }
    const double hf = hopFactor(nodes);
    return alpha_net * hf + static_cast<double>(bytes) / (beta_net / hf);
}

double NetworkModel::allreduceTime(std::int64_t bytes, int nranks, int nodes) const {
    if (nranks <= 1) return 0.0;
    // Recursive doubling: log2(P) stages each way. Stages within a node
    // are cheap; stages across nodes pay network latency with congestion.
    const double stages = std::ceil(std::log2(static_cast<double>(nranks)));
    const double node_stages =
        std::ceil(std::log2(static_cast<double>(std::max(1, nranks / std::max(1, nodes)))));
    const double net_stages = std::max(0.0, stages - node_stages);
    const double hf = hopFactor(nodes);
    const double t_node = node_stages * (alpha_node + bytes / beta_node);
    const double t_net = net_stages * (alpha_net * hf + bytes / (beta_net / hf));
    return 2.0 * (t_node + t_net);
}

} // namespace exa
