#pragma once

#include "comm/layout.hpp"

#include <cstdint>

namespace exa {

// Alpha-beta network cost model with a mild congestion term, representing
// a Summit-like fat-tree EDR InfiniBand fabric plus on-node NVLink.
//
// Point-to-point message time:
//   on-node : t = alpha_node + bytes / beta_node
//   off-node: t = alpha_net * hop(P) + bytes / beta_net_eff
// where hop(P) = 1 + congestion * log2(nodes) models growing switch depth
// and adaptive-routing conflicts at scale, and beta_net_eff is reduced by
// the same factor when many nodes communicate at once.
//
// These are *model* parameters, calibrated in src/perf/summit.hpp against
// the scaling efficiencies reported in the paper; the message counts and
// sizes they multiply come from the real decomposition (see CommLedger
// and HaloPattern).
struct NetworkModel {
    double alpha_node = 2.0e-6;   // s, on-node (NVLink / shared memory) latency
    double beta_node = 50.0e9;    // B/s, on-node bandwidth per rank pair
    double alpha_net = 1.5e-6;    // s, network injection latency
    double beta_net = 6.5e9;      // B/s, effective per-rank halo bandwidth
                                  // (strided pack/unpack + shared NIC; well
                                  // below the EDR line rate)
    double congestion = 0.35;     // growth of effective latency with log2(nodes)

    double hopFactor(int nodes) const;

    // Time for one point-to-point message.
    double p2pTime(std::int64_t bytes, bool same_node, int nodes) const;

    // Time for an allreduce of `bytes` over `nranks` ranks spread over
    // `nodes` nodes (recursive-doubling: 2*log2 stages; the off-node
    // stages pay network latency).
    double allreduceTime(std::int64_t bytes, int nranks, int nodes) const;

    // Time for a barrier-like global sync (latency-only allreduce).
    double barrierTime(int nranks, int nodes) const {
        return allreduceTime(8, nranks, nodes);
    }
};

} // namespace exa
