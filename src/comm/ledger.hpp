#pragma once

#include "comm/layout.hpp"
#include "comm/network.hpp"
#include "mesh/comm_hooks.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace exa {

// Collects the MessageRecords emitted by the mesh layer (FillBoundary,
// ParallelCopy) and prices them with a NetworkModel. The accounting is
// bulk-synchronous: within one communication phase every rank sends and
// receives concurrently, so phase time = max over ranks of that rank's
// serialized send+recv cost.
//
// Instance-based with per-tenant scoping: a ledger is an ordinary object
// (attach() binds it as the process-wide message sink — the retained
// global default path, unchanged for existing call sites). When one
// process multiplexes many simulations, the scheduler brackets each
// tenant's work with ScopedLedgerTenant; records arriving inside the
// scope are additionally bucketed under that tenant's tag, so one shared
// ledger can answer "whose bytes were these?" per tenant. The tenant tag
// is thread-local (workers carry their tenant through steals) and every
// record/read path takes the ledger mutex, so counters are exact under a
// multi-threaded scheduler.
class CommLedger {
public:
    // Attach this ledger as the process-wide message sink. Only one ledger
    // may be attached at a time.
    void attach();
    void detach();
    ~CommLedger() { detach(); }

    void record(const MessageRecord& r);
    void recordHalo(const HaloEvent& e);
    void recordRebalance(const RebalanceEvent& e);
    void recordResilience(const ResilienceEvent& e);
    void recordMg(const MgEvent& e);
    void reset();

    std::int64_t totalBytes() const;
    std::int64_t totalMessages() const;
    std::int64_t bytesWithTag(const std::string& tag) const;

    // --- per-tenant scoping ------------------------------------------------
    // The calling thread's current tenant tag ("" = untagged; not
    // bucketed). Set via ScopedLedgerTenant, below.
    static const std::string& currentTenant();
    static void setCurrentTenant(std::string tenant);

    // Traffic recorded while a tenant scope was active on the recording
    // thread. Unknown tenants read as zero.
    std::int64_t tenantBytes(const std::string& tenant) const;
    std::int64_t tenantMessages(const std::string& tenant) const;
    std::vector<std::string> tenantNames() const;

    // Split-phase exchange tracking (HaloEvent hook): how many handles
    // were posted, how many are currently between post and finish, the
    // high-water mark of concurrent in-flight exchanges, and how many
    // MessageRecords were delivered by a finish() (i.e. overlapped with
    // interior compute rather than blocking the step).
    std::int64_t halosPosted() const;
    std::int64_t halosInFlight() const;
    std::int64_t maxHalosInFlight() const;
    std::int64_t splitPhaseMessages() const;

    // Load-balancing traffic (RebalanceEvent hook): how many live-state
    // migrations the Rebalancer performed and the off-rank payload they
    // moved. The same bytes also appear in bytesWithTag("rebalance") via
    // the per-message records; the event-level counters survive even when
    // a caller filters tags.
    std::int64_t rebalancesPerformed() const;
    std::int64_t migrationBytes() const;
    std::int64_t migrationBoxesMoved() const;

    // Resilience accounting (ResilienceEvent hook). Checkpoint commits
    // fire on the async checkpointer's drain thread, so these counters are
    // atomic — they predate the ledger mutex and stay lock-free.
    std::int64_t checkpointsWritten() const { return m_checkpoints.load(); }
    std::int64_t checkpointBytes() const { return m_checkpoint_bytes.load(); }
    std::int64_t ranksRecovered() const { return m_ranks_recovered.load(); }
    std::int64_t recoveryReplaySteps() const { return m_replay_steps.load(); }
    std::int64_t recoveryBytes() const { return m_recovery_bytes.load(); }

    // Multigrid solve accounting (MgEvent hook): FMG/V-cycle and smoother
    // sweep counts from the Poisson solvers, plus the coarse-level rank
    // aggregation's staged ParallelCopies and their off-rank payload.
    // V-cycles are also bucketed per tenant (like bytes/messages), so an
    // ensemble can answer "whose solves were these?".
    std::int64_t mgFmgCycles() const;
    std::int64_t mgVcycles() const;
    std::int64_t mgSweeps() const;
    std::int64_t mgAggCopies() const;
    std::int64_t mgAggBytes() const;
    std::int64_t tenantMgVcycles(const std::string& tenant) const;

    // Bytes that would cross the node boundary under the given layout.
    std::int64_t offNodeBytes(const RankLayout& layout) const;

    // Modeled wall time for all recorded messages treated as one bulk-
    // synchronous phase under the given layout and network model.
    double phaseTime(const RankLayout& layout, const NetworkModel& net) const;

private:
    struct Edge {
        std::int64_t bytes = 0;
        std::int64_t msgs = 0;
    };
    mutable std::mutex m_mutex;
    std::map<std::pair<int, int>, Edge> m_edges; // (src,dst) -> totals
    std::map<std::string, std::int64_t> m_tag_bytes;
    std::map<std::string, Edge> m_tenants; // tenant tag -> totals
    std::int64_t m_total_bytes = 0;
    std::int64_t m_total_msgs = 0;
    std::int64_t m_halos_posted = 0;
    std::int64_t m_halos_in_flight = 0;
    std::int64_t m_max_halos_in_flight = 0;
    std::int64_t m_split_phase_msgs = 0;
    std::int64_t m_rebalances = 0;
    std::int64_t m_migration_bytes = 0;
    std::int64_t m_migration_boxes = 0;
    std::int64_t m_mg_fmg_cycles = 0;
    std::int64_t m_mg_vcycles = 0;
    std::int64_t m_mg_sweeps = 0;
    std::int64_t m_mg_agg_copies = 0;
    std::int64_t m_mg_agg_bytes = 0;
    std::map<std::string, std::int64_t> m_tenant_mg; // tenant -> v-cycles
    std::atomic<std::int64_t> m_checkpoints{0};
    std::atomic<std::int64_t> m_checkpoint_bytes{0};
    std::atomic<std::int64_t> m_ranks_recovered{0};
    std::atomic<std::int64_t> m_replay_steps{0};
    std::atomic<std::int64_t> m_recovery_bytes{0};
    bool m_attached = false;
};

// RAII tenant tag for ledger records made by this thread: the scheduler
// brackets each tenant's step so one shared attached ledger buckets
// traffic per simulation. Nests; restores the previous tag on exit.
class ScopedLedgerTenant {
public:
    explicit ScopedLedgerTenant(std::string tenant)
        : m_saved(CommLedger::currentTenant()) {
        CommLedger::setCurrentTenant(std::move(tenant));
    }
    ~ScopedLedgerTenant() { CommLedger::setCurrentTenant(std::move(m_saved)); }
    ScopedLedgerTenant(const ScopedLedgerTenant&) = delete;
    ScopedLedgerTenant& operator=(const ScopedLedgerTenant&) = delete;

private:
    std::string m_saved;
};

} // namespace exa
