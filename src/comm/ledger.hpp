#pragma once

#include "comm/layout.hpp"
#include "comm/network.hpp"
#include "mesh/comm_hooks.hpp"

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exa {

// Collects the MessageRecords emitted by the mesh layer (FillBoundary,
// ParallelCopy) and prices them with a NetworkModel. The accounting is
// bulk-synchronous: within one communication phase every rank sends and
// receives concurrently, so phase time = max over ranks of that rank's
// serialized send+recv cost.
class CommLedger {
public:
    // Attach this ledger as the process-wide message sink. Only one ledger
    // may be attached at a time.
    void attach();
    void detach();
    ~CommLedger() { detach(); }

    void record(const MessageRecord& r);
    void recordHalo(const HaloEvent& e);
    void recordRebalance(const RebalanceEvent& e);
    void recordResilience(const ResilienceEvent& e);
    void reset();

    std::int64_t totalBytes() const { return m_total_bytes; }
    std::int64_t totalMessages() const { return m_total_msgs; }
    std::int64_t bytesWithTag(const std::string& tag) const;

    // Split-phase exchange tracking (HaloEvent hook): how many handles
    // were posted, how many are currently between post and finish, the
    // high-water mark of concurrent in-flight exchanges, and how many
    // MessageRecords were delivered by a finish() (i.e. overlapped with
    // interior compute rather than blocking the step).
    std::int64_t halosPosted() const { return m_halos_posted; }
    std::int64_t halosInFlight() const { return m_halos_in_flight; }
    std::int64_t maxHalosInFlight() const { return m_max_halos_in_flight; }
    std::int64_t splitPhaseMessages() const { return m_split_phase_msgs; }

    // Load-balancing traffic (RebalanceEvent hook): how many live-state
    // migrations the Rebalancer performed and the off-rank payload they
    // moved. The same bytes also appear in bytesWithTag("rebalance") via
    // the per-message records; the event-level counters survive even when
    // a caller filters tags.
    std::int64_t rebalancesPerformed() const { return m_rebalances; }
    std::int64_t migrationBytes() const { return m_migration_bytes; }
    std::int64_t migrationBoxesMoved() const { return m_migration_boxes; }

    // Resilience accounting (ResilienceEvent hook). Checkpoint commits
    // fire on the async checkpointer's drain thread, so these counters are
    // atomic — every other ledger counter is touched only from the main
    // thread.
    std::int64_t checkpointsWritten() const { return m_checkpoints.load(); }
    std::int64_t checkpointBytes() const { return m_checkpoint_bytes.load(); }
    std::int64_t ranksRecovered() const { return m_ranks_recovered.load(); }
    std::int64_t recoveryReplaySteps() const { return m_replay_steps.load(); }
    std::int64_t recoveryBytes() const { return m_recovery_bytes.load(); }

    // Bytes that would cross the node boundary under the given layout.
    std::int64_t offNodeBytes(const RankLayout& layout) const;

    // Modeled wall time for all recorded messages treated as one bulk-
    // synchronous phase under the given layout and network model.
    double phaseTime(const RankLayout& layout, const NetworkModel& net) const;

private:
    struct Edge {
        std::int64_t bytes = 0;
        std::int64_t msgs = 0;
    };
    std::map<std::pair<int, int>, Edge> m_edges; // (src,dst) -> totals
    std::map<std::string, std::int64_t> m_tag_bytes;
    std::int64_t m_total_bytes = 0;
    std::int64_t m_total_msgs = 0;
    std::int64_t m_halos_posted = 0;
    std::int64_t m_halos_in_flight = 0;
    std::int64_t m_max_halos_in_flight = 0;
    std::int64_t m_split_phase_msgs = 0;
    std::int64_t m_rebalances = 0;
    std::int64_t m_migration_bytes = 0;
    std::int64_t m_migration_boxes = 0;
    std::atomic<std::int64_t> m_checkpoints{0};
    std::atomic<std::int64_t> m_checkpoint_bytes{0};
    std::atomic<std::int64_t> m_ranks_recovered{0};
    std::atomic<std::int64_t> m_replay_steps{0};
    std::atomic<std::int64_t> m_recovery_bytes{0};
    bool m_attached = false;
};

} // namespace exa
