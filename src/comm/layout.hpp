#pragma once

namespace exa {

// How simulated MPI ranks map onto nodes. Castro and MAESTROeX run one
// rank per GPU, so a Summit node hosts six ranks; whether a message stays
// on-node (NVLink) or crosses the network (InfiniBand) follows from this
// layout and dominates the scaling behaviour.
struct RankLayout {
    int nodes = 1;
    int ranks_per_node = 6;

    int numRanks() const { return nodes * ranks_per_node; }
    int nodeOf(int rank) const { return rank / ranks_per_node; }
    bool sameNode(int r1, int r2) const { return nodeOf(r1) == nodeOf(r2); }
};

} // namespace exa
