#pragma once

#include "comm/ledger.hpp"
#include "mesh/box_array.hpp"
#include "mesh/distribution.hpp"

namespace exa {

// Description of a regular (uniform) box decomposition: a grid of
// nbx x nby x nbz boxes of bx x by x bz zones. The weak-scaling benches
// use this to generate the exact FillBoundary message pattern of
// production-scale domains (thousands of boxes) without instantiating the
// data: each box exchanges face/edge/corner halos with its 26 neighbors,
// exactly as MultiFab::FillBoundary would, and off-rank intersections
// become ledger messages.
struct RegularDecomposition {
    int nbx = 1, nby = 1, nbz = 1; // boxes per dimension
    int bx = 32, by = 32, bz = 32; // zones per box per dimension
    int ngrow = 4;                 // ghost width
    int ncomp = 5;                 // components exchanged
    bool periodic = true;

    std::int64_t numBoxes() const {
        return static_cast<std::int64_t>(nbx) * nby * nbz;
    }
    std::int64_t zonesPerBox() const {
        return static_cast<std::int64_t>(bx) * by * bz;
    }
    std::int64_t totalZones() const { return numBoxes() * zonesPerBox(); }
};

// Rank of a box under an SFC-like contiguous-chunk mapping over Morton
// order (mirrors DistributionMapping::Strategy::Sfc for equal boxes).
int regularBoxRank(const RegularDecomposition& d, int ix, int iy, int iz, int nranks);

// Populate `ledger` with every off-rank FillBoundary message of one ghost
// exchange over the decomposition, for `nranks` ranks.
void buildHaloPattern(const RegularDecomposition& d, int nranks, CommLedger& ledger);

// Build a real BoxArray + SFC DistributionMapping for the decomposition
// (for modest sizes where instantiating data is feasible).
BoxArray makeBoxArray(const RegularDecomposition& d);

} // namespace exa
