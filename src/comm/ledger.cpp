#include "comm/ledger.hpp"

#include <algorithm>

namespace exa {

namespace {
// Thread-local so ensemble workers each carry their own tenant tag; a
// worker that steals tenant A's step tags A's records no matter which
// ledger is attached.
thread_local std::string t_ledger_tenant;
} // namespace

const std::string& CommLedger::currentTenant() { return t_ledger_tenant; }
void CommLedger::setCurrentTenant(std::string tenant) {
    t_ledger_tenant = std::move(tenant);
}

void CommLedger::attach() {
    CommHooks::setMessageHook([this](const MessageRecord& r) { record(r); });
    CommHooks::setHaloHook([this](const HaloEvent& e) { recordHalo(e); });
    CommHooks::setRebalanceHook(
        [this](const RebalanceEvent& e) { recordRebalance(e); });
    CommHooks::setResilienceHook(
        [this](const ResilienceEvent& e) { recordResilience(e); });
    CommHooks::setMgHook([this](const MgEvent& e) { recordMg(e); });
    m_attached = true;
}

void CommLedger::detach() {
    if (m_attached) {
        CommHooks::clearMessageHook();
        CommHooks::clearHaloHook();
        CommHooks::clearRebalanceHook();
        CommHooks::clearResilienceHook();
        CommHooks::clearMgHook();
        m_attached = false;
    }
}

void CommLedger::record(const MessageRecord& r) {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto& e = m_edges[{r.src_rank, r.dst_rank}];
    e.bytes += r.bytes;
    ++e.msgs;
    m_total_bytes += r.bytes;
    ++m_total_msgs;
    m_tag_bytes[r.tag] += r.bytes;
    if (!t_ledger_tenant.empty()) {
        auto& t = m_tenants[t_ledger_tenant];
        t.bytes += r.bytes;
        ++t.msgs;
    }
    // finish() delivers its MessageRecords before it fires the Finished
    // event, so messages belonging to a split-phase exchange arrive while
    // that exchange is still counted in flight.
    if (m_halos_in_flight > 0) ++m_split_phase_msgs;
}

void CommLedger::recordHalo(const HaloEvent& e) {
    std::lock_guard<std::mutex> lk(m_mutex);
    if (e.phase == HaloPhase::Posted) {
        ++m_halos_posted;
        ++m_halos_in_flight;
        m_max_halos_in_flight = std::max(m_max_halos_in_flight, m_halos_in_flight);
    } else if (m_halos_in_flight > 0) {
        --m_halos_in_flight;
    }
}

void CommLedger::recordRebalance(const RebalanceEvent& e) {
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_rebalances;
    m_migration_bytes += e.bytes;
    m_migration_boxes += e.boxes_moved;
}

void CommLedger::recordResilience(const ResilienceEvent& e) {
    m_checkpoints.fetch_add(e.checkpoints, std::memory_order_relaxed);
    m_checkpoint_bytes.fetch_add(e.checkpoint_bytes, std::memory_order_relaxed);
    m_ranks_recovered.fetch_add(e.ranks_recovered, std::memory_order_relaxed);
    m_replay_steps.fetch_add(e.replay_steps, std::memory_order_relaxed);
    m_recovery_bytes.fetch_add(e.recovery_bytes, std::memory_order_relaxed);
}

void CommLedger::recordMg(const MgEvent& e) {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_mg_fmg_cycles += e.fmg_cycles;
    m_mg_vcycles += e.vcycles;
    m_mg_sweeps += e.sweeps;
    m_mg_agg_copies += e.agg_copies;
    m_mg_agg_bytes += e.agg_bytes;
    if (!t_ledger_tenant.empty()) m_tenant_mg[t_ledger_tenant] += e.vcycles;
}

void CommLedger::reset() {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_edges.clear();
    m_tag_bytes.clear();
    m_tenants.clear();
    m_total_bytes = 0;
    m_total_msgs = 0;
    m_halos_posted = 0;
    m_halos_in_flight = 0;
    m_max_halos_in_flight = 0;
    m_split_phase_msgs = 0;
    m_rebalances = 0;
    m_migration_bytes = 0;
    m_migration_boxes = 0;
    m_mg_fmg_cycles = 0;
    m_mg_vcycles = 0;
    m_mg_sweeps = 0;
    m_mg_agg_copies = 0;
    m_mg_agg_bytes = 0;
    m_tenant_mg.clear();
    m_checkpoints.store(0);
    m_checkpoint_bytes.store(0);
    m_ranks_recovered.store(0);
    m_replay_steps.store(0);
    m_recovery_bytes.store(0);
}

std::int64_t CommLedger::totalBytes() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_total_bytes;
}

std::int64_t CommLedger::totalMessages() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_total_msgs;
}

std::int64_t CommLedger::bytesWithTag(const std::string& tag) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_tag_bytes.find(tag);
    return it == m_tag_bytes.end() ? 0 : it->second;
}

std::int64_t CommLedger::tenantBytes(const std::string& tenant) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_tenants.find(tenant);
    return it == m_tenants.end() ? 0 : it->second.bytes;
}

std::int64_t CommLedger::tenantMessages(const std::string& tenant) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_tenants.find(tenant);
    return it == m_tenants.end() ? 0 : it->second.msgs;
}

std::vector<std::string> CommLedger::tenantNames() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::vector<std::string> names;
    names.reserve(m_tenants.size());
    for (const auto& [name, t] : m_tenants) names.push_back(name);
    return names;
}

std::int64_t CommLedger::halosPosted() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_halos_posted;
}
std::int64_t CommLedger::halosInFlight() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_halos_in_flight;
}
std::int64_t CommLedger::maxHalosInFlight() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_max_halos_in_flight;
}
std::int64_t CommLedger::splitPhaseMessages() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_split_phase_msgs;
}
std::int64_t CommLedger::rebalancesPerformed() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_rebalances;
}
std::int64_t CommLedger::migrationBytes() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_migration_bytes;
}
std::int64_t CommLedger::migrationBoxesMoved() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_migration_boxes;
}
std::int64_t CommLedger::mgFmgCycles() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_mg_fmg_cycles;
}
std::int64_t CommLedger::mgVcycles() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_mg_vcycles;
}
std::int64_t CommLedger::mgSweeps() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_mg_sweeps;
}
std::int64_t CommLedger::mgAggCopies() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_mg_agg_copies;
}
std::int64_t CommLedger::mgAggBytes() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_mg_agg_bytes;
}
std::int64_t CommLedger::tenantMgVcycles(const std::string& tenant) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_tenant_mg.find(tenant);
    return it == m_tenant_mg.end() ? 0 : it->second;
}

std::int64_t CommLedger::offNodeBytes(const RankLayout& layout) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::int64_t b = 0;
    for (const auto& [key, e] : m_edges) {
        if (!layout.sameNode(key.first, key.second)) b += e.bytes;
    }
    return b;
}

double CommLedger::phaseTime(const RankLayout& layout, const NetworkModel& net) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    // Serialized per-rank cost: each rank pays for its sends and receives.
    std::vector<double> rank_time(layout.numRanks(), 0.0);
    for (const auto& [key, e] : m_edges) {
        const auto [src, dst] = key;
        if (src >= layout.numRanks() || dst >= layout.numRanks()) continue;
        // One aggregated message per (src,dst) pair per phase: real codes
        // pack all box intersections for a neighbor into one buffer, so
        // latency is paid once per neighbor, not once per box pair.
        const double t = net.p2pTime(e.bytes, layout.sameNode(src, dst), layout.nodes);
        rank_time[src] += t;
        rank_time[dst] += t;
    }
    return rank_time.empty() ? 0.0
                             : *std::max_element(rank_time.begin(), rank_time.end());
}

} // namespace exa
