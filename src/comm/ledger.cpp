#include "comm/ledger.hpp"

#include <algorithm>

namespace exa {

void CommLedger::attach() {
    CommHooks::setMessageHook([this](const MessageRecord& r) { record(r); });
    CommHooks::setHaloHook([this](const HaloEvent& e) { recordHalo(e); });
    CommHooks::setRebalanceHook(
        [this](const RebalanceEvent& e) { recordRebalance(e); });
    CommHooks::setResilienceHook(
        [this](const ResilienceEvent& e) { recordResilience(e); });
    m_attached = true;
}

void CommLedger::detach() {
    if (m_attached) {
        CommHooks::clearMessageHook();
        CommHooks::clearHaloHook();
        CommHooks::clearRebalanceHook();
        CommHooks::clearResilienceHook();
        m_attached = false;
    }
}

void CommLedger::record(const MessageRecord& r) {
    auto& e = m_edges[{r.src_rank, r.dst_rank}];
    e.bytes += r.bytes;
    ++e.msgs;
    m_total_bytes += r.bytes;
    ++m_total_msgs;
    m_tag_bytes[r.tag] += r.bytes;
    // finish() delivers its MessageRecords before it fires the Finished
    // event, so messages belonging to a split-phase exchange arrive while
    // that exchange is still counted in flight.
    if (m_halos_in_flight > 0) ++m_split_phase_msgs;
}

void CommLedger::recordHalo(const HaloEvent& e) {
    if (e.phase == HaloPhase::Posted) {
        ++m_halos_posted;
        ++m_halos_in_flight;
        m_max_halos_in_flight = std::max(m_max_halos_in_flight, m_halos_in_flight);
    } else if (m_halos_in_flight > 0) {
        --m_halos_in_flight;
    }
}

void CommLedger::recordRebalance(const RebalanceEvent& e) {
    ++m_rebalances;
    m_migration_bytes += e.bytes;
    m_migration_boxes += e.boxes_moved;
}

void CommLedger::recordResilience(const ResilienceEvent& e) {
    m_checkpoints.fetch_add(e.checkpoints, std::memory_order_relaxed);
    m_checkpoint_bytes.fetch_add(e.checkpoint_bytes, std::memory_order_relaxed);
    m_ranks_recovered.fetch_add(e.ranks_recovered, std::memory_order_relaxed);
    m_replay_steps.fetch_add(e.replay_steps, std::memory_order_relaxed);
    m_recovery_bytes.fetch_add(e.recovery_bytes, std::memory_order_relaxed);
}

void CommLedger::reset() {
    m_edges.clear();
    m_tag_bytes.clear();
    m_total_bytes = 0;
    m_total_msgs = 0;
    m_halos_posted = 0;
    m_halos_in_flight = 0;
    m_max_halos_in_flight = 0;
    m_split_phase_msgs = 0;
    m_rebalances = 0;
    m_migration_bytes = 0;
    m_migration_boxes = 0;
    m_checkpoints.store(0);
    m_checkpoint_bytes.store(0);
    m_ranks_recovered.store(0);
    m_replay_steps.store(0);
    m_recovery_bytes.store(0);
}

std::int64_t CommLedger::bytesWithTag(const std::string& tag) const {
    auto it = m_tag_bytes.find(tag);
    return it == m_tag_bytes.end() ? 0 : it->second;
}

std::int64_t CommLedger::offNodeBytes(const RankLayout& layout) const {
    std::int64_t b = 0;
    for (const auto& [key, e] : m_edges) {
        if (!layout.sameNode(key.first, key.second)) b += e.bytes;
    }
    return b;
}

double CommLedger::phaseTime(const RankLayout& layout, const NetworkModel& net) const {
    // Serialized per-rank cost: each rank pays for its sends and receives.
    std::vector<double> rank_time(layout.numRanks(), 0.0);
    for (const auto& [key, e] : m_edges) {
        const auto [src, dst] = key;
        if (src >= layout.numRanks() || dst >= layout.numRanks()) continue;
        // One aggregated message per (src,dst) pair per phase: real codes
        // pack all box intersections for a neighbor into one buffer, so
        // latency is paid once per neighbor, not once per box pair.
        const double t = net.p2pTime(e.bytes, layout.sameNode(src, dst), layout.nodes);
        rank_time[src] += t;
        rank_time[dst] += t;
    }
    return rank_time.empty() ? 0.0
                             : *std::max_element(rank_time.begin(), rank_time.end());
}

} // namespace exa
