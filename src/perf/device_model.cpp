#include "perf/device_model.hpp"

#include <algorithm>
#include <cmath>

namespace exa {

double GpuParams::occupancy(int regs_per_thread) const {
    const int regs = std::max(32, regs_per_thread);
    const int eff_regs = std::min(regs, max_regs_per_thread);
    const int threads = std::min(max_threads_per_sm, regs_per_sm / eff_regs);
    return static_cast<double>(threads) / max_threads_per_sm;
}

DeviceModel::DeviceModel(const GpuParams& p) : m_params(p) {
    m_stream_time.assign(std::max(1, ExecConfig::numStreams()), 0.0);
}

DeviceModel::~DeviceModel() { detach(); }

void DeviceModel::attach() {
    ExecConfig::setLaunchHook([this](const LaunchRecord& r) { onLaunch(r); });
    m_attached = true;
}

void DeviceModel::detach() {
    if (m_attached) {
        ExecConfig::clearLaunchHook();
        m_attached = false;
    }
}

void DeviceModel::reset() {
    m_stream_time.assign(std::max(1, ExecConfig::numStreams()), 0.0);
    m_serialized = 0.0;
    m_launches = 0;
    m_zones = 0;
    m_stats.clear();
}

double DeviceModel::bodyTime(const KernelInfo& info, std::int64_t zones) const {
    const double occ = m_params.occupancy(info.regs_per_thread);

    // Register spilling past the hardware cap turns registers into local
    // memory traffic (the paper's Volta 255-register discussion).
    double bytes_per_zone = info.bytes_per_zone;
    if (info.regs_per_thread > m_params.max_regs_per_thread) {
        bytes_per_zone += (info.regs_per_thread - m_params.max_regs_per_thread) *
                          m_params.spill_bytes_per_reg;
    }

    // Unified-Memory oversubscription: the spilled-over fraction of the
    // working set streams at eviction bandwidth instead of HBM bandwidth.
    double mem_bw = m_params.mem_bw;
    if (oversubscribed()) {
        const double f =
            (m_resident_bytes - m_params.mem_capacity) / m_resident_bytes;
        mem_bw = 1.0 / ((1.0 - f) / m_params.mem_bw + f / m_params.evict_bw);
    }

    const double mem_eff = std::min(1.0, occ / m_params.occ_mem_saturation);
    const double flop_eff = std::min(1.0, occ / m_params.occ_flop_saturation);
    const double t_mem = zones * bytes_per_zone / (mem_bw * mem_eff);
    const double t_flop = zones * info.flops_per_zone / (m_params.flops * flop_eff);

    // Latency-hiding ramp: below ~ramp_zones concurrent work items the
    // device cannot cover its own latencies; throughput ramps linearly.
    const double ramp =
        static_cast<double>(zones) / (zones + m_params.ramp_zones * occ);

    const double t_uniform = std::max(t_mem, t_flop) / std::max(ramp, 1e-12);

    // Data-dependent imbalance (work_imbalance = max/mean zone cost): the
    // most expensive zone runs at single-thread speed and the launch
    // cannot retire before it does — the warp-stall tail of Section VI's
    // igniting-zone discussion.
    if (info.work_imbalance > 1.0 && zones > 0) {
        const double mean_zone_flops = info.flops_per_zone;
        const double t_tail = info.work_imbalance * mean_zone_flops /
                              m_params.single_thread_flops;
        return std::max(t_uniform, t_tail);
    }
    return t_uniform;
}

double DeviceModel::launchTime(const LaunchRecord& r) const {
    const std::int64_t zones = r.zones * std::max(1, r.ncomp);
    return m_params.launch_latency + bodyTime(r.info, zones);
}

void DeviceModel::onLaunch(const LaunchRecord& r) {
    const double t = launchTime(r);
    const int s = std::clamp(r.stream, 0, static_cast<int>(m_stream_time.size()) - 1);
    // Launch latency overlaps across streams; kernel bodies contend for
    // the same SMs, so they are charged to every stream's timeline via the
    // serialized clock and the latency to the issuing stream only.
    m_stream_time[s] += t;
    m_serialized += t;
    ++m_launches;
    m_zones += r.zones * std::max(1, r.ncomp);
    auto& ks = m_stats[r.info.name];
    ks.launches += 1;
    ks.zones += r.zones * std::max(1, r.ncomp);
    ks.seconds += t;
    ks.flops_sum += r.info.flops_per_zone;
    ks.bytes_sum += r.info.bytes_per_zone;
    ks.imb_sum += r.info.work_imbalance;
    ks.info = r.info;
    ks.info.flops_per_zone = ks.flops_sum / ks.launches;
    ks.info.bytes_per_zone = ks.bytes_sum / ks.launches;
    ks.info.work_imbalance = ks.imb_sum / ks.launches;
}

double DeviceModel::elapsedSeconds() const {
    // Bodies serialize on the device; only launch gaps overlap. Elapsed is
    // therefore bounded below by total body time and above by the fully
    // serialized time; we take body-total plus the max per-stream latency
    // share.
    double body_total = 0.0;
    double lat_total = 0.0;
    for (const auto& [name, ks] : m_stats) {
        body_total += ks.seconds - ks.launches * m_params.launch_latency;
        lat_total += ks.launches * m_params.launch_latency;
    }
    const int nstreams = static_cast<int>(m_stream_time.size());
    return body_total + lat_total / std::max(1, nstreams);
}

double DeviceModel::serializedSeconds() const { return m_serialized; }

} // namespace exa
