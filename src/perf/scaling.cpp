#include "perf/scaling.hpp"

#include <algorithm>
#include <cmath>

namespace exa {

void nearCubicFactors(int n, int& fx, int& fy, int& fz) {
    fx = fy = fz = 1;
    // Repeatedly pull the largest prime factor onto the smallest axis.
    int rem = n;
    auto smallest_axis = [&]() -> int& {
        if (fx <= fy && fx <= fz) return fx;
        if (fy <= fx && fy <= fz) return fy;
        return fz;
    };
    for (int p = 2; rem > 1;) {
        if (rem % p == 0) {
            smallest_axis() *= p;
            rem /= p;
        } else {
            ++p;
            if (p * p > rem) {
                smallest_axis() *= rem;
                rem = 1;
            }
        }
    }
}

double WeakScalingModel::computeTime(std::int64_t boxes_per_rank,
                                     std::int64_t zones_per_box,
                                     const StepModel& step) const {
    DeviceModel dev(m_machine.gpu);
    double body = 0.0;
    double launches = 0.0;
    for (const auto& ks : step.kernels) {
        const double zl = static_cast<double>(zones_per_box) * ks.zones_fraction;
        const double n_launch = ks.launches_per_box_per_step * boxes_per_rank;
        body += n_launch * dev.bodyTime(ks.info, static_cast<std::int64_t>(zl));
        launches += n_launch;
    }
    // Streams overlap launch latency across boxes (paper: "multiple CUDA
    // streams ... only partially mitigates").
    const int streams = std::max(1, m_machine.streams_per_rank);
    return body + launches * m_machine.gpu.launch_latency / streams;
}

double WeakScalingModel::mgTime(const RegularDecomposition& fine, int nranks,
                                int nodes, std::int64_t boxes_per_rank_finest,
                                const MultigridModel& mg) const {
    DeviceModel dev(m_machine.gpu);
    double per_cycle = 0.0;

    RegularDecomposition d = fine;
    d.ncomp = mg.ncomp;
    d.ngrow = 1;
    std::int64_t boxes_per_rank = boxes_per_rank_finest;
    while (true) {
        const std::int64_t zones_per_box = d.zonesPerBox();
        // Smoothing sweeps: compute + one halo exchange per sweep.
        const double smooth_body =
            dev.bodyTime(mg.smooth_kernel, zones_per_box) * boxes_per_rank;
        CommLedger ledger;
        buildHaloPattern(d, nranks, ledger);
        RankLayout layout{nodes, m_machine.gpus_per_node};
        const double halo = ledger.phaseTime(layout, m_machine.net);
        per_cycle += mg.smooth_sweeps_per_level *
                     (smooth_body + m_machine.gpu.launch_latency * boxes_per_rank +
                      halo);
        // Residual-norm reduction once per level per cycle, plus the
        // restriction/prolongation transfers, which synchronize (almost)
        // all ranks around data that shrinks to nothing at coarse levels —
        // the latency-bound heart of "the multigrid solve is extremely
        // communication bound" (Section IV-B).
        per_cycle += m_machine.net.allreduceTime(8, nranks, nodes);
        per_cycle += 2.0 * m_machine.net.barrierTime(nranks, nodes);

        // Coarsen by 2 until a single small box remains.
        const bool at_bottom = (d.nbx * d.bx <= mg.coarsest_side) &&
                               (d.nby * d.by <= mg.coarsest_side) &&
                               (d.nbz * d.bz <= mg.coarsest_side);
        if (at_bottom) {
            // Bottom solve: many relaxation iterations on a grid far too
            // small to occupy anyone, each one a latency-bound global
            // exchange.
            per_cycle += mg.bottom_smooth *
                         (m_machine.gpu.launch_latency +
                          m_machine.net.barrierTime(nranks, nodes));
            break;
        }
        auto shrink = [](int& nb, int& b) {
            if (b > 1) {
                b = std::max(1, b / 2);
            } else {
                nb = std::max(1, nb / 2);
            }
        };
        shrink(d.nbx, d.bx);
        shrink(d.nby, d.by);
        shrink(d.nbz, d.bz);
        const std::int64_t nboxes = d.numBoxes();
        boxes_per_rank = std::max<std::int64_t>(1, (nboxes + nranks - 1) / nranks);
    }
    return mg.vcycles_per_step * per_cycle;
}

ScalingPoint WeakScalingModel::run(int nodes, int per_node_zones, int box_size,
                                   const StepModel& step,
                                   const MultigridModel* mg) const {
    ScalingPoint pt;
    pt.nodes = nodes;

    // Tile the per-node cube across nodes near-cubically.
    int fx, fy, fz;
    nearCubicFactors(nodes, fx, fy, fz);
    RegularDecomposition d;
    d.bx = d.by = d.bz = box_size;
    d.nbx = fx * per_node_zones / box_size;
    d.nby = fy * per_node_zones / box_size;
    d.nbz = fz * per_node_zones / box_size;
    d.ngrow = step.halo_ngrow;
    d.ncomp = step.halo_ncomp;

    const int nranks = nodes * m_machine.gpus_per_node;
    const std::int64_t nboxes = d.numBoxes();
    const std::int64_t boxes_per_rank =
        std::max<std::int64_t>(1, (nboxes + nranks - 1) / nranks);
    pt.imbalance = static_cast<double>(boxes_per_rank) * nranks / nboxes;

    pt.compute_s = computeTime(boxes_per_rank, d.zonesPerBox(), step);

    CommLedger ledger;
    buildHaloPattern(d, nranks, ledger);
    RankLayout layout{nodes, m_machine.gpus_per_node};
    pt.halo_s = step.fillboundary_phases_per_step * ledger.phaseTime(layout, m_machine.net);

    pt.collective_s =
        step.allreduces_per_step * m_machine.net.allreduceTime(8, nranks, nodes);

    if (mg != nullptr) {
        pt.mg_s = mgTime(d, nranks, nodes, boxes_per_rank, *mg);
    }

    pt.total_s = pt.compute_s + pt.halo_s + pt.collective_s + pt.mg_s;
    const double zones = d.totalZones();
    pt.zones_per_usec = zones / (pt.total_s * 1.0e6);
    return pt;
}

double WeakScalingModel::singleGpuZonesPerUsec(int domain_zones_per_dim, int box_size,
                                               const StepModel& step) const {
    RegularDecomposition d;
    d.bx = d.by = d.bz = box_size;
    d.nbx = d.nby = d.nbz = std::max(1, domain_zones_per_dim / box_size);
    const std::int64_t nboxes = d.numBoxes();
    const double t = computeTime(nboxes, d.zonesPerBox(), step);
    return d.totalZones() / (t * 1.0e6);
}

} // namespace exa
