#pragma once

#include "comm/network.hpp"

namespace exa {

// Parameters of the simulated NVIDIA V100 (Volta) accelerator, as found in
// the Summit AC922 nodes used for every measurement in the paper.
//
// Published hardware numbers: ~900 GB/s HBM2 bandwidth, 7.8 TF/s FP64,
// 16 GB memory, 80 SMs x 64 FP64 lanes, 65536 registers per SM, at most
// 255 registers per thread. Launch latency and the latency-hiding ramp
// are calibrated so that (a) a streaming kernel saturates near ~100^3
// zones (Section IV-A: "the problem size that saturates the GPU's compute
// capacity, ~100^3 zones") and (b) the Castro hydro kernel mix lands near
// the paper's ~25 zones/usec per V100.
struct GpuParams {
    double mem_bw = 900.0e9;       // B/s, HBM2 streaming bandwidth
    double flops = 7.8e12;         // FP64 FLOP/s
    double launch_latency = 8.0e-6;// s per kernel launch (incl. driver)
    double mem_capacity = 16.0e9;  // B, HBM2 capacity
    double evict_bw = 6.0e9;       // B/s, effective UM oversubscription
                                   // eviction bandwidth (paper: "much lower
                                   // ... than the CPU-GPU peak bandwidth")
    double h2d_bw = 45.0e9;        // B/s, NVLink host<->device (checkpoints)
    int regs_per_sm = 65536;
    int max_threads_per_sm = 2048;
    int max_regs_per_thread = 255; // beyond this the compiler spills
    double spill_bytes_per_reg = 16.0; // local-memory traffic per spilled
                                       // register per zone (load + store)
    double occ_mem_saturation = 0.25;  // occupancy at which HBM saturates
    double occ_flop_saturation = 0.50; // occupancy at which FP64 saturates
    double ramp_zones = 1.6e5;         // latency-hiding ramp half point
    double single_thread_flops = 1.5e9;// FP64 rate of one non-parallel
                                       // thread (the warp-tail rate when a
                                       // single igniting zone stalls its
                                       // launch, Section VI)

    // Fraction of peak threads resident given per-thread register count.
    double occupancy(int regs_per_thread) const;
};

// The CPU side of a Summit-class node, used for CPU-vs-GPU throughput
// comparisons (Section IV: a "modern high-end CPU server node" achieves
// O(1) zones/usec on the Sedov benchmark, and the bubble problem runs
// ~20x faster on the GPU node). We model a dual-socket server as a
// multiple of one measured host core.
struct CpuNodeParams {
    int cores = 42;               // Power9 cores per AC922 node (2 x 21)
    double core_derate = 0.85;    // parallel efficiency of the OpenMP build
    double parallelSpeedup() const { return cores * core_derate; }
};

// A Summit-like machine: 6 GPUs per node, one rank per GPU, EDR
// InfiniBand fat tree. The congestion coefficient is calibrated against
// Figure 2: canonical Sedov weak scaling falls to ~63% at 512 nodes.
struct MachineParams {
    GpuParams gpu;
    CpuNodeParams cpu;
    NetworkModel net;
    int gpus_per_node = 6;
    int streams_per_rank = 4;

    static MachineParams summit() { return MachineParams{}; }
};

} // namespace exa
