#pragma once

#include "core/executor.hpp"
#include "perf/summit.hpp"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace exa {

// The simulated V100: consumes LaunchRecords from the SimGpu backend and
// accumulates *modeled* execution time. The arithmetic of every kernel
// still runs on the host bit-identically to the serial backend; only the
// clock is simulated. The model captures the performance mechanisms the
// paper identifies:
//
//   * per-launch latency (small boxes are inefficient),
//   * a latency-hiding ramp (throughput saturates near ~100^3 zones),
//   * occupancy limited by register pressure, with spilling past 255
//     registers (the N-isotope Jacobian discussion),
//   * streaming-bandwidth- or FLOP-bound execution, whichever is slower,
//   * CUDA-streams overlap of launch latency across boxes,
//   * Unified-Memory oversubscription (eviction-bandwidth penalty).
class DeviceModel {
public:
    explicit DeviceModel(const GpuParams& p = GpuParams{});

    // Attach as the process-wide launch hook (Backend::SimGpu must also be
    // selected for launches to be reported).
    void attach();
    void detach();
    ~DeviceModel();

    // Modeled execution time of a single launch.
    double launchTime(const LaunchRecord& r) const;
    // Body-only time (no launch latency); used by the scaling model.
    double bodyTime(const KernelInfo& info, std::int64_t zones) const;

    void reset();

    // Modeled elapsed device time: streams run concurrently, so elapsed is
    // the max over per-stream timelines; kernel bodies serialize on the
    // device and are charged to the stream that issued them.
    double elapsedSeconds() const;
    // Total serialized kernel time (as if one stream).
    double serializedSeconds() const;

    std::int64_t numLaunches() const { return m_launches; }
    std::int64_t numZones() const { return m_zones; }

    // Per-kernel accounting (by KernelInfo::name). Kernels whose traits
    // vary per launch (the burn's steps/imbalance) are tracked as
    // launch-weighted averages in `info`.
    struct KernelStats {
        std::int64_t launches = 0;
        std::int64_t zones = 0;
        double seconds = 0.0;
        KernelInfo info;
        double flops_sum = 0.0, bytes_sum = 0.0, imb_sum = 0.0;
    };
    const std::map<std::string, KernelStats>& kernelStats() const { return m_stats; }

    // Device-resident data, for the oversubscription model. The paper's
    // codes keep all state resident; benches set this to the state size
    // per GPU.
    void setResidentBytes(double bytes) { m_resident_bytes = bytes; }
    double residentBytes() const { return m_resident_bytes; }
    bool oversubscribed() const { return m_resident_bytes > m_params.mem_capacity; }

    // Model a host<->device copy (checkpointing, non-CUDA-aware MPI).
    double transferTime(double bytes) const { return bytes / m_params.h2d_bw; }

    const GpuParams& params() const { return m_params; }

private:
    void onLaunch(const LaunchRecord& r);

    GpuParams m_params;
    std::vector<double> m_stream_time;
    double m_serialized = 0.0;
    std::int64_t m_launches = 0;
    std::int64_t m_zones = 0;
    double m_resident_bytes = 0.0;
    std::map<std::string, KernelStats> m_stats;
    bool m_attached = false;
};

} // namespace exa
