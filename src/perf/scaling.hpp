#pragma once

#include "comm/halo_pattern.hpp"
#include "perf/device_model.hpp"

#include <vector>

namespace exa {

// One kernel family in a timestep, with how often it launches per box.
// Benches extract these from a real (small-scale) run's DeviceModel
// statistics, so the kernel mix is measured, not assumed.
struct KernelLaunchSpec {
    KernelInfo info;
    double launches_per_box_per_step = 1.0;
    // Fraction of the box's zones each launch covers (ghost-including
    // kernels have > 1).
    double zones_fraction = 1.0;
};

// Everything the scaling model needs to know about one timestep of an
// application at one level: compute (kernel mix), halo traffic, and
// global reductions.
struct StepModel {
    std::vector<KernelLaunchSpec> kernels;
    int fillboundary_phases_per_step = 3; // ghost exchanges per step
    int halo_ncomp = 5;                   // components exchanged
    int halo_ngrow = 4;                   // ghost width
    int allreduces_per_step = 1;          // e.g. CFL dt reduction
};

// Geometric-multigrid communication/compute model for the globally
// coupled solves (MAESTROeX projection, Poisson gravity). Each V-cycle
// smooths on every level; fine levels are bandwidth-bound compute, coarse
// levels are latency-bound communication over (almost) all ranks — the
// mechanism behind Figure 3's scaling falloff.
struct MultigridModel {
    double vcycles_per_step = 4.0;
    int smooth_sweeps_per_level = 4; // pre+post smoothing, with a halo
                                     // exchange per sweep
    int bottom_smooth = 40;          // bottom-solve iterations: tiny data,
                                     // every iteration a latency-bound
                                     // exchange over (nearly) all ranks
    int ncomp = 1;
    int coarsest_side = 4; // stop coarsening at this many zones per side
    KernelInfo smooth_kernel{"mg_smooth", 12.0, 96.0, 40, 1.0};
};

// Predicted per-step cost breakdown at a given node count.
struct ScalingPoint {
    int nodes = 1;
    double compute_s = 0.0;
    double halo_s = 0.0;
    double collective_s = 0.0;
    double mg_s = 0.0;
    double total_s = 0.0;
    double zones_per_usec = 0.0;      // absolute throughput
    double normalized = 0.0;          // throughput / (nodes * single-node)
    double imbalance = 1.0;           // box-quantization load factor
};

// Weak-scaling predictor: replicates a fixed per-node workload across
// nodes and prices one timestep. Compute times come from the same
// DeviceModel used by the simulated backend; communication times come
// from the exact halo pattern of the target decomposition priced by the
// network model.
class WeakScalingModel {
public:
    explicit WeakScalingModel(const MachineParams& machine) : m_machine(machine) {}

    // per_node_zones: zones per dimension of the PER-NODE cube (e.g. 256
    // for the paper's canonical Sedov case). box_size: zones per box side.
    // The global domain is the per-node cube tiled across nodes in a
    // near-cubic arrangement.
    ScalingPoint run(int nodes, int per_node_zones, int box_size, const StepModel& step,
                     const MultigridModel* mg = nullptr) const;

    // Single-GPU throughput for a given box size and domain (for the
    // box-size sweeps / best-worst tuning curves).
    double singleGpuZonesPerUsec(int domain_zones_per_dim, int box_size,
                                 const StepModel& step) const;

    const MachineParams& machine() const { return m_machine; }

private:
    double computeTime(std::int64_t boxes_per_rank, std::int64_t zones_per_box,
                       const StepModel& step) const;
    double mgTime(const RegularDecomposition& d, int nranks, int nodes,
                  std::int64_t boxes_per_rank_finest, const MultigridModel& mg) const;

    MachineParams m_machine;
};

// Near-cubic factorization of n into (fx, fy, fz), fx*fy*fz == n.
void nearCubicFactors(int n, int& fx, int& fy, int& fz);

} // namespace exa
