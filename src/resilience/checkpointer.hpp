#pragma once

// Asynchronous double-buffered checkpointing with a Daly-optimal
// scheduler.
//
// The step loop pays only the *staging* cost of a checkpoint: a blocking
// valid-region copy of every field into plain host buffers (stageLevel —
// no kernel launches). The file I/O and CRC work drain on a background
// thread into two alternating slot directories (chk_A / chk_B), each
// committed by an atomic rename, so a crash mid-write always leaves the
// previous committed slot intact and the in-flight one invisible.
//
// The checkpoint interval follows Daly's first-order optimum
//     t_opt = sqrt(2 * delta * M)
// with delta the per-checkpoint cost the step loop actually pays (the
// staging seconds) and M the mean time between failures, both expressed
// in *step* units so the interval is a step count: the per-step blocking
// cost delta/t of checkpointing every t steps plus the expected rework
// t/(2M) per step is minimized at t = sqrt(2*(delta/tau)*M_steps). Both
// inputs are re-estimated online (EMAs of measured staging and step
// seconds; observed failures sharpen the armed-config MTBF).
//
// Thread-safety contract: checkpoint()/flush()/noteStepSeconds() are
// main-thread calls; the drain thread touches only plain host buffers,
// the filesystem, fault::shouldFire (mutexed), and
// CommHooks::notifyResilience (whose receiving counters are atomic).
// MultiFab data is never accessed off the main thread.

#include "mesh/geometry.hpp"
#include "mesh/multifab.hpp"
#include "mesh/plotfile.hpp"

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace exa::resilience {

// One driver-owned MultiFab to persist, plus live-only companions that
// must follow it through a shrink redistribution but are rebuildable and
// therefore not persisted (e.g. Castro's gravity acceleration fab).
struct CheckpointField {
    MultiFab* mf = nullptr;
    Geometry geom;
    std::string name; // slot subdirectory (e.g. "state", "phi", "state_lev1")
    std::vector<MultiFab*> companions;
};

// A field staged into host buffers, with the rank that owned each fab at
// staging time: recovery restores fabs whose staging-time owner died from
// the on-disk slot (their share of this in-memory copy died with the
// rank) and everything else from memory.
struct StagedField {
    std::string name;
    StagedLevel level;
    std::vector<int> owner;
};

// The full in-memory payload of one checkpoint. `dir` is the committed
// slot directory ("" while the write is still in flight or failed).
struct CheckpointSnapshot {
    Real time = 0.0;
    int step = -1;
    std::vector<StagedField> fields;
    std::string dir;
    bool valid() const { return step >= 0; }
};

// First-order Daly interval in steps, clamped to [min_interval,
// max_interval]: sqrt(2 * (ckpt_seconds / step_seconds) * mtbf_steps).
// Degenerate inputs (non-positive step cost or MTBF) return max_interval.
int dalyIntervalSteps(double ckpt_seconds, double step_seconds,
                      double mtbf_steps, int min_interval, int max_interval);

struct CheckpointerOptions {
    std::string dir;        // parent directory holding the two slots
    bool async = true;      // false: write through on the calling thread
    int min_interval = 1;   // steps
    int max_interval = 64;  // steps
    int interval_hint = 0;  // > 0: fixed interval, Daly disabled
    // > 0: MTBF in steps to seed Daly with; otherwise implied by the armed
    // rank-failure fault spec (1/prob), falling back to 1000 steps.
    double mtbf_hint_steps = 0.0;
};

class AsyncCheckpointer {
public:
    explicit AsyncCheckpointer(CheckpointerOptions opt);
    ~AsyncCheckpointer();
    AsyncCheckpointer(const AsyncCheckpointer&) = delete;
    AsyncCheckpointer& operator=(const AsyncCheckpointer&) = delete;

    // Scheduling: true when `step` is due for a checkpoint under the
    // current interval estimate (always true for the first call).
    bool due(int step) const;
    int intervalSteps() const;

    // EMA inputs for the Daly estimate.
    void noteStepSeconds(double seconds);
    void noteFailureAtStep(int step);

    // Stage `fields` (blocking copy on the calling thread) and hand the
    // write to the drain thread (or write through when async is off).
    // Returns false — and skips — if the drain thread is still busy with
    // the previous checkpoint: a slower-than-interval disk simply stretches
    // the effective interval instead of blocking the step loop.
    bool checkpoint(const std::vector<CheckpointField>& fields, Real time,
                    int step);

    // Block until the in-flight write (if any) has committed or failed.
    void flush();

    // Latest committed checkpoint (nullptr before the first commit).
    std::shared_ptr<const CheckpointSnapshot> latest() const;

    // Accounting.
    std::int64_t checkpointsWritten() const;
    std::int64_t checkpointBytes() const;
    std::int64_t checkpointsSkipped() const { return m_skipped; }
    double lastStagingSeconds() const { return m_last_staging_seconds; }
    const std::string& lastError() const { return m_last_error; }

private:
    void drainLoop();
    void writeSnapshot(const std::shared_ptr<CheckpointSnapshot>& snap,
                       const std::string& slot);
    std::string nextSlot() const;
    double mtbfSteps() const;

    CheckpointerOptions m_opt;

    // Daly inputs (main thread only).
    double m_staging_ema = 0.0;
    double m_step_ema = 0.0;
    int m_last_ckpt_step = -1;
    int m_failures_seen = 0;
    int m_first_step_seen = -1;
    int m_last_failure_step = -1;
    double m_last_staging_seconds = 0.0;
    std::int64_t m_skipped = 0;

    // Drain-thread handshake.
    mutable std::mutex m_mutex;
    std::condition_variable m_cv;
    std::thread m_drain;
    bool m_stop = false;
    bool m_busy = false;
    std::shared_ptr<CheckpointSnapshot> m_pending; // job for the drain thread
    std::string m_pending_slot;
    std::shared_ptr<const CheckpointSnapshot> m_latest; // committed
    std::int64_t m_written = 0;
    std::int64_t m_bytes = 0;
    std::string m_last_error;
};

} // namespace exa::resilience
