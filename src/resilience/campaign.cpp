#include "resilience/campaign.hpp"

#include <chrono>
#include <cstdio>
#include <exception>

namespace exa::resilience {

namespace {

// splitmix64 finalizer — the same mixer the fault registry uses, so the
// per-run seed perturbation is a full-avalanche function of (base, run).
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

double CampaignReport::survivalRate() const {
    if (runs.empty()) return 1.0;
    int ok = 0;
    for (const CampaignRunResult& r : runs) ok += r.survived ? 1 : 0;
    return static_cast<double>(ok) / static_cast<double>(runs.size());
}

int CampaignReport::totalRanksRecovered() const {
    int n = 0;
    for (const CampaignRunResult& r : runs) n += r.ranks_recovered;
    return n;
}

int CampaignReport::totalReplaySteps() const {
    int n = 0;
    for (const CampaignRunResult& r : runs) n += r.replay_steps;
    return n;
}

std::string CampaignReport::summary() const {
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "campaign: %zu runs, survival %.0f%%, %d rank(s) recovered, "
                  "%d replay step(s)\n",
                  runs.size(), 100.0 * survivalRate(), totalRanksRecovered(),
                  totalReplaySteps());
    out += buf;
    for (const CampaignRunResult& r : runs) {
        std::snprintf(
            buf, sizeof(buf),
            "  run %d: %s  failed=%d recovered=%d replay=%d rollback=%d "
            "ckpt=%lld (%lld B) recovery=%.3fs wall=%.3fs\n",
            r.run, r.survived ? "survived" : "FAILED", r.ranks_failed,
            r.ranks_recovered, r.replay_steps, r.full_rollbacks,
            static_cast<long long>(r.checkpoints_written),
            static_cast<long long>(r.checkpoint_bytes), r.recovery_seconds,
            r.wall_seconds);
        out += buf;
        if (!r.survived && !r.error.empty()) {
            out += "    error: " + r.error + "\n";
        }
    }
    return out;
}

CampaignReport runCampaign(const std::function<SupervisedRun(int)>& makeRun,
                           const CampaignOptions& opt) {
    CampaignReport report;
    report.runs.reserve(static_cast<std::size_t>(opt.nseeds));
    for (int run = 0; run < opt.nseeds; ++run) {
        fault::disarmAll();
        const std::uint64_t perturb = mix(opt.base_seed + static_cast<std::uint64_t>(run));
        for (const CampaignFaultSpec& f : opt.faults) {
            fault::Spec spec = f.spec;
            spec.seed ^= perturb;
            fault::arm(f.site, spec);
        }

        CampaignRunResult result;
        result.run = run;
        const auto t0 = std::chrono::steady_clock::now();
        try {
            SupervisedRun sr = makeRun(run);
            SupervisorOptions sopt = opt.supervisor;
            sopt.checkpoint.dir = opt.workdir + "/run_" + std::to_string(run);
            sopt.victim_seed ^= perturb;
            ResilienceSupervisor sup(std::move(sr.driver), sopt);
            try {
                sup.runSteps(opt.steps);
                result.survived = true;
            } catch (const std::exception& e) {
                result.survived = false;
                result.error = e.what();
            }
            // Stats are coherent either way: runSteps syncs the
            // checkpointer tallies before an unrecoverable throw escapes.
            const SupervisorReport& rep = sup.report();
            result.ranks_failed = rep.ranks_failed;
            result.ranks_recovered = rep.ranks_recovered;
            result.replay_steps = rep.replay_steps;
            result.full_rollbacks = rep.full_rollbacks;
            result.checkpoints_written = rep.checkpoints_written;
            result.checkpoint_bytes = rep.checkpoint_bytes;
            result.recovery_seconds = rep.recovery_seconds;
        } catch (const std::exception& e) {
            // Problem construction / supervisor setup failed.
            result.survived = false;
            result.error = e.what();
        }
        result.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        report.runs.push_back(std::move(result));
    }
    fault::disarmAll();
    return report;
}

} // namespace exa::resilience
