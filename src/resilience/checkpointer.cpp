#include "resilience/checkpointer.hpp"

#include "core/fault.hpp"
#include "mesh/comm_hooks.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <stdexcept>

namespace exa::resilience {

namespace fs = std::filesystem;

int dalyIntervalSteps(double ckpt_seconds, double step_seconds,
                      double mtbf_steps, int min_interval, int max_interval) {
    if (step_seconds <= 0.0 || mtbf_steps <= 0.0) return max_interval;
    const double delta_steps = std::max(ckpt_seconds, 0.0) / step_seconds;
    const double t_opt = std::sqrt(2.0 * delta_steps * mtbf_steps);
    const int t = static_cast<int>(std::lround(t_opt));
    return std::clamp(t, min_interval, max_interval);
}

AsyncCheckpointer::AsyncCheckpointer(CheckpointerOptions opt)
    : m_opt(std::move(opt)) {
    if (m_opt.dir.empty()) {
        throw std::invalid_argument("AsyncCheckpointer: empty directory");
    }
    std::error_code ec;
    fs::create_directories(m_opt.dir, ec);
}

AsyncCheckpointer::~AsyncCheckpointer() {
    {
        std::unique_lock<std::mutex> lk(m_mutex);
        m_cv.wait(lk, [&] { return !m_busy; });
        m_stop = true;
    }
    m_cv.notify_all();
    if (m_drain.joinable()) m_drain.join();
}

double AsyncCheckpointer::mtbfSteps() const {
    // Observed failures sharpen the prior once there are two of them (one
    // failure gives no spacing information).
    if (m_failures_seen >= 2 && m_first_step_seen >= 0) {
        const int span = m_last_failure_step - m_first_step_seen;
        if (span > 0) return static_cast<double>(span) / m_failures_seen;
    }
    if (m_opt.mtbf_hint_steps > 0.0) return m_opt.mtbf_hint_steps;
    // MTBF implied by the armed fault config: the supervisor heartbeat
    // consults the rank-failure site once per step, so a probability spec
    // fails every 1/p steps in expectation.
    const fault::SiteStats st = fault::stats(fault::Site::RankFailure);
    if (st.armed) {
        if (st.spec.probability > 0.0) return 1.0 / st.spec.probability;
        if (st.spec.probability < 0.0 && st.spec.count <= 0) {
            return static_cast<double>(std::max<std::int64_t>(st.spec.stride, 1));
        }
    }
    return 1000.0;
}

int AsyncCheckpointer::intervalSteps() const {
    if (m_opt.interval_hint > 0) return m_opt.interval_hint;
    // Before any measurement, checkpoint eagerly at the minimum interval —
    // the first staging gives the Daly inputs.
    if (m_step_ema <= 0.0) return m_opt.min_interval;
    return dalyIntervalSteps(m_staging_ema, m_step_ema, mtbfSteps(),
                             m_opt.min_interval, m_opt.max_interval);
}

bool AsyncCheckpointer::due(int step) const {
    if (m_last_ckpt_step < 0) return true;
    return step - m_last_ckpt_step >= intervalSteps();
}

void AsyncCheckpointer::noteStepSeconds(double seconds) {
    constexpr double alpha = 0.3;
    m_step_ema = m_step_ema <= 0.0 ? seconds
                                   : alpha * seconds + (1.0 - alpha) * m_step_ema;
}

void AsyncCheckpointer::noteFailureAtStep(int step) {
    if (m_first_step_seen < 0) m_first_step_seen = step;
    m_last_failure_step = step;
    ++m_failures_seen;
}

std::string AsyncCheckpointer::nextSlot() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    const std::string a = m_opt.dir + "/chk_A";
    if (!m_latest) return a;
    return m_latest->dir == a ? m_opt.dir + "/chk_B" : a;
}

bool AsyncCheckpointer::checkpoint(const std::vector<CheckpointField>& fields,
                                   Real time, int step) {
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        if (m_busy) {
            ++m_skipped;
            return false;
        }
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto snap = std::make_shared<CheckpointSnapshot>();
    snap->time = time;
    snap->step = step;
    snap->fields.reserve(fields.size());
    for (const CheckpointField& f : fields) {
        StagedField sf;
        sf.name = f.name;
        sf.level = stageLevel(*f.mf, f.geom);
        sf.owner.assign(f.mf->distributionMap().ranks().begin(),
                        f.mf->distributionMap().ranks().end());
        snap->fields.push_back(std::move(sf));
    }
    const double staged_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    m_last_staging_seconds = staged_s;
    constexpr double alpha = 0.3;
    m_staging_ema = m_staging_ema <= 0.0
                        ? staged_s
                        : alpha * staged_s + (1.0 - alpha) * m_staging_ema;
    m_last_ckpt_step = step;

    const std::string slot = nextSlot();
    if (!m_opt.async) {
        writeSnapshot(snap, slot);
        return true;
    }
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        if (!m_drain.joinable()) {
            m_drain = std::thread([this] { drainLoop(); });
        }
        m_pending = std::move(snap);
        m_pending_slot = slot;
        m_busy = true;
    }
    m_cv.notify_all();
    return true;
}

void AsyncCheckpointer::drainLoop() {
    for (;;) {
        std::shared_ptr<CheckpointSnapshot> snap;
        std::string slot;
        {
            std::unique_lock<std::mutex> lk(m_mutex);
            m_cv.wait(lk, [&] { return m_stop || m_pending; });
            if (m_stop && !m_pending) return;
            snap = std::move(m_pending);
            m_pending = nullptr;
            slot = m_pending_slot;
        }
        writeSnapshot(snap, slot);
        {
            std::lock_guard<std::mutex> lk(m_mutex);
            m_busy = false;
        }
        m_cv.notify_all();
    }
}

void AsyncCheckpointer::writeSnapshot(
    const std::shared_ptr<CheckpointSnapshot>& snap, const std::string& slot) {
    // Stage the whole slot under <slot>.staging, then atomically publish.
    // Each field is itself written via writeStagedPlotfile's tmp+rename,
    // but the slot-level rename is the real commit point: a slot directory
    // either holds every field complete or does not exist.
    const std::string staging = slot + ".staging";
    std::int64_t bytes = 0;
    try {
        std::error_code ec;
        fs::remove_all(staging, ec);
        if (!fs::create_directories(staging)) {
            throw std::runtime_error("checkpoint: cannot create " + staging);
        }
        for (const StagedField& f : snap->fields) {
            bytes += writeStagedPlotfile(staging + "/" + f.name, {f.level},
                                         std::vector<std::string>(
                                             static_cast<std::size_t>(
                                                 f.level.ncomp),
                                             "c"),
                                         snap->time, snap->step);
        }
        fs::remove_all(slot, ec);
        fs::rename(staging, slot, ec);
        if (ec) {
            throw std::runtime_error("checkpoint: rename " + staging + " -> " +
                                     slot + " failed: " + ec.message());
        }
    } catch (const std::exception& e) {
        std::error_code ec;
        fs::remove_all(staging, ec);
        std::lock_guard<std::mutex> lk(m_mutex);
        m_last_error = e.what();
        return;
    }
    auto committed = std::make_shared<CheckpointSnapshot>(*snap);
    committed->dir = slot;
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_latest = std::move(committed);
        ++m_written;
        m_bytes += bytes;
        m_last_error.clear();
    }
    ResilienceEvent ev;
    ev.checkpoints = 1;
    ev.checkpoint_bytes = bytes;
    CommHooks::notifyResilience(ev);
}

void AsyncCheckpointer::flush() {
    std::unique_lock<std::mutex> lk(m_mutex);
    m_cv.wait(lk, [&] { return !m_busy; });
}

std::shared_ptr<const CheckpointSnapshot> AsyncCheckpointer::latest() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_latest;
}

std::int64_t AsyncCheckpointer::checkpointsWritten() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_written;
}

std::int64_t AsyncCheckpointer::checkpointBytes() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_bytes;
}

} // namespace exa::resilience
