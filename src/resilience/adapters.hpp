#pragma once

// SupervisedDriver adapters for the three simulation drivers. Each binds
// a *caller-owned* driver by reference — the returned bundle must not
// outlive it.

#include "castro/castro.hpp"
#include "castro/castro_amr.hpp"
#include "maestro/maestro.hpp"
#include "resilience/supervisor.hpp"

namespace exa::resilience {

// Single-level Castro: checkpoints the conserved state; the gravity fabs
// (defined after the first solve) ride along as companions so a shrink
// keeps them co-located, but are recomputed rather than persisted. The
// acceleration is rebuilt from scratch by every solve, so recovery is
// bit-identical for GravityType::None and Monopole. Poisson's phi is a
// stateful multigrid warm start: after recovery it is reset cold
// (Gravity::resetPoissonWarmStart), so the replayed solve re-converges to
// the same rtol but the trajectory is not guaranteed bit-identical.
SupervisedDriver makeSupervisedDriver(castro::Castro& c);

// Maestro: checkpoints state, phi (the projection's initial guess — part
// of the bit-identical trajectory), and divu.
SupervisedDriver makeSupervisedDriver(maestro::Maestro& m);

// Subcycled AMR Castro: one field per level; remakeForRestore rebuilds the
// hierarchy on checkpoint grids after a regrid, finishRestore resets the
// old-time companions and flux registers.
SupervisedDriver makeSupervisedDriver(castro::CastroAmr& a);

} // namespace exa::resilience
