#pragma once

// Fault-campaign harness: many supervised runs of the same problem under
// a multi-fault schedule, each with a deterministically perturbed seed.
//
// A campaign answers the question the supervisor alone cannot: across the
// *ensemble* of fault timings a given fault rate implies, how often does
// the run survive to completion, how much replay does recovery cost, and
// what checkpoint overhead was paid for it? Each run arms the schedule's
// sites with `spec.seed ^= mix(base_seed + run)` so the firing pattern
// varies per run but the whole campaign is reproducible from base_seed.

#include "core/fault.hpp"
#include "resilience/supervisor.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace exa::resilience {

struct CampaignFaultSpec {
    fault::Site site = fault::Site::RankFailure;
    fault::Spec spec;
};

struct CampaignOptions {
    int nseeds = 4;       // independent runs (seed perturbations)
    int steps = 16;       // accepted steps per run
    std::uint64_t base_seed = 0xCA3Bull;
    std::string workdir = "campaign"; // per-run checkpoint dirs live here
    std::vector<CampaignFaultSpec> faults;
    // Template for every run's supervisor; checkpoint.dir is overridden
    // with <workdir>/run_<k> and victim_seed is perturbed per run.
    SupervisorOptions supervisor;
};

// One freshly constructed problem + its driver bundle. `owner` keeps the
// underlying simulation object(s) alive for the duration of the run; the
// driver holds references into it.
struct SupervisedRun {
    std::shared_ptr<void> owner;
    SupervisedDriver driver;
};

struct CampaignRunResult {
    int run = 0;
    bool survived = false;
    std::string error; // empty when survived
    int ranks_failed = 0;
    int ranks_recovered = 0;
    int replay_steps = 0;
    int full_rollbacks = 0;
    std::int64_t checkpoints_written = 0;
    std::int64_t checkpoint_bytes = 0;
    double recovery_seconds = 0.0;
    double wall_seconds = 0.0;
};

struct CampaignReport {
    std::vector<CampaignRunResult> runs;

    double survivalRate() const;
    int totalRanksRecovered() const;
    int totalReplaySteps() const;
    std::string summary() const;
};

// Run the campaign: for each of opt.nseeds runs, disarm all sites, arm
// the schedule with the run's perturbed seeds, build a fresh problem via
// makeRun(run), and drive it opt.steps accepted steps under a
// ResilienceSupervisor. A run survives if runSteps returns; any exception
// (unrecoverable failure, both slots corrupt, all ranks dead) marks it
// failed with the message recorded. All sites are disarmed on return.
CampaignReport runCampaign(const std::function<SupervisedRun(int)>& makeRun,
                           const CampaignOptions& opt);

} // namespace exa::resilience
