#pragma once

// The resilience supervisor: closes the loop from fault to recovery.
//
// A SupervisedDriver is a callback bundle over one simulation driver
// (Castro, CastroAmr, Maestro — adapters.hpp builds them). The supervisor
// owns the run loop: before each step it consults the Daly-scheduled
// AsyncCheckpointer; after each step its heartbeat consults the
// `rank-failure` fault site. When a modeled rank dies the supervisor
// emulates the loss (the victim's fabs are poisoned — that memory is
// gone), shrinks the cost-weighted DistributionMapping onto the surviving
// ranks (ULFM-shrink style, reusing the SFC/knapsack builders +
// MultiFab::Redistribute), restores checkpoint data — fabs whose
// staging-time owner died come from the on-disk slot (per-fab CRC
// verified), everything else from the retained in-memory staged copy —
// and rewinds the driver clock. Replay then happens naturally in the same
// loop; because every step is deterministic, the recovered run's final
// state is bit-identical to an uninterrupted one.
//
// If a needed disk fab is corrupted (checkpoint-bit-flip campaign), the
// supervisor falls back to a full rollback from the *other* slot; if that
// also fails, or no rank survives, the run is unrecoverable and throws.

#include "mesh/comm_hooks.hpp"
#include "mesh/distribution.hpp"
#include "mesh/step_guard.hpp"
#include "resilience/checkpointer.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace exa::resilience {

// Callback bundle over one driver. All callbacks run on the main thread.
struct SupervisedDriver {
    std::string name = "driver";
    std::function<Real()> estimateDt;
    std::function<void(Real)> step;
    std::function<Real()> time;
    std::function<int()> stepCount;
    // Rewind the driver clock after the state has been restored.
    std::function<void(Real, int)> resetTime;
    // The fabs to checkpoint/restore (re-fetched at every checkpoint and
    // recovery, so AMR adapters return the current hierarchy).
    std::function<std::vector<CheckpointField>()> fields;
    // Optional (AMR): rebuild the driver on the checkpoint's grids when a
    // regrid made live layouts differ; per-field boxes in field order,
    // mappings built by the supplied builder (the supervisor's shrink
    // mapping over surviving ranks). Null: layouts never change.
    std::function<void(
        const std::vector<std::vector<Box>>&,
        const std::function<DistributionMapping(const BoxArray&, int)>&)>
        remakeForRestore;
    // Optional: driver fixup after all fields hold restored data and
    // resetTime has run (CastroAmr::finishRestore).
    std::function<void()> postRestore;
    // Optional: the driver's StepGuard retry stats, for the report.
    std::function<const RetryStats*()> retryStats;
    // Optional: the driver's lifetime multigrid counters (composite
    // gravity solves), for the report.
    std::function<MgEvent()> mgStats;
};

struct SupervisorOptions {
    CheckpointerOptions checkpoint;
    int nranks = 1;
    DistributionMapping::Strategy strategy =
        DistributionMapping::Strategy::Knapsack;
    // Consult the rank-failure site after every step and recover.
    bool heartbeat = true;
    // Deterministic victim selection seed (hashed with the kill ordinal).
    std::uint64_t victim_seed = 0x5eedULL;
    bool verbose = false;
};

struct SupervisorReport {
    int steps_run = 0;           // driver steps executed, replays included
    int ranks_failed = 0;
    int ranks_recovered = 0;
    int replay_steps = 0;
    int localized_restores = 0;  // lost fabs from disk, survivors from memory
    int full_rollbacks = 0;      // whole state from the other slot
    std::int64_t checkpoints_written = 0;
    std::int64_t checkpoint_bytes = 0;
    std::int64_t checkpoints_skipped = 0;
    std::int64_t recovery_disk_bytes = 0;
    double recovery_seconds = 0.0;
    double step_seconds = 0.0;   // total wall time inside driver steps
    int daly_interval_steps = 0; // final interval estimate

    // Human-readable end-of-run report; includes the driver's StepGuard
    // RetryStats when available.
    std::string summary(const RetryStats* retry = nullptr) const;
};

class ResilienceSupervisor {
public:
    ResilienceSupervisor(SupervisedDriver driver, SupervisorOptions opt);

    // Advance the driver by `nsteps` accepted steps (replayed steps do not
    // count toward the target — the run ends at the same step count and,
    // step for step, the same states as an uninterrupted run). Throws
    // std::runtime_error when a failure is unrecoverable.
    void runSteps(int nsteps);

    const SupervisorReport& report() const { return m_report; }
    AsyncCheckpointer& checkpointer() { return m_ckpt; }
    int ranksAlive() const;
    const std::vector<bool>& alive() const { return m_alive; }

    // The report with the driver's retry stats folded in.
    std::string summary() const;

private:
    void maybeCheckpoint();
    void syncCheckpointStats();
    // Heartbeat: true if a rank failure fired and was recovered.
    bool heartbeat();
    void killRank(int victim);
    void recover();
    // Restore every field from `snap`: disk for fabs whose staging-time
    // owner is dead (CRC-verified), memory otherwise. Throws on a bad disk
    // fab. Returns bytes read from disk.
    std::int64_t restoreFromSnapshot(const CheckpointSnapshot& snap,
                                     std::vector<CheckpointField>& fields);
    // Full rollback from an on-disk slot (all fabs from disk).
    std::int64_t restoreFromSlot(const std::string& slot,
                                 std::vector<CheckpointField>& fields);
    // Cost-weighted mapping over the surviving ranks for `ba` (packed
    // knapsack/SFC build remapped onto alive rank ids).
    DistributionMapping shrinkMapping(const BoxArray& ba) const;
    // Redistribute every field (and companions) onto shrink mappings,
    // reusing one mapping per distinct live layout.
    void shrinkFields(std::vector<CheckpointField>& fields);
    std::vector<int> aliveList() const;

    SupervisedDriver m_driver;
    SupervisorOptions m_opt;
    AsyncCheckpointer m_ckpt;
    std::vector<bool> m_alive;
    int m_kills = 0;
    SupervisorReport m_report;
};

} // namespace exa::resilience
