#include "resilience/adapters.hpp"

namespace exa::resilience {

SupervisedDriver makeSupervisedDriver(castro::Castro& c) {
    SupervisedDriver d;
    d.name = "castro";
    d.estimateDt = [&c] { return c.estimateDt(); };
    d.step = [&c](Real dt) { c.step(dt); };
    d.time = [&c] { return c.time(); };
    d.stepCount = [&c] { return c.stepCount(); };
    d.resetTime = [&c](Real t, int n) { c.resetTime(t, n); };
    d.fields = [&c] {
        CheckpointField f;
        f.mf = &c.state();
        f.geom = c.geom();
        f.name = "state";
        f.companions = c.gravity().rebalanceFabs();
        return std::vector<CheckpointField>{f};
    };
    d.postRestore = [&c] { c.gravity().resetPoissonWarmStart(); };
    d.retryStats = [&c] { return &c.retryStats(); };
    d.mgStats = [&c] { return c.gravity().mgTotals(); };
    return d;
}

SupervisedDriver makeSupervisedDriver(maestro::Maestro& m) {
    SupervisedDriver d;
    d.name = "maestro";
    d.estimateDt = [&m] { return m.estimateDt(); };
    d.step = [&m](Real dt) { m.step(dt); };
    d.time = [&m] { return m.time(); };
    d.stepCount = [&m] { return m.stepCount(); };
    d.resetTime = [&m](Real t, int n) { m.resetTime(t, n); };
    d.fields = [&m] {
        std::vector<CheckpointField> out(3);
        out[0].mf = &m.state();
        out[0].name = "state";
        out[1].mf = &m.phi();
        out[1].name = "phi";
        out[2].mf = &m.divu();
        out[2].name = "divu";
        for (CheckpointField& f : out) f.geom = m.geom();
        return out;
    };
    d.retryStats = [&m] { return &m.retryStats(); };
    return d;
}

SupervisedDriver makeSupervisedDriver(castro::CastroAmr& a) {
    SupervisedDriver d;
    d.name = "castro-amr";
    d.estimateDt = [&a] { return a.estimateDt(); };
    d.step = [&a](Real dt) { a.step(dt); };
    d.time = [&a] { return a.time(); };
    d.stepCount = [&a] { return a.stepCount(); };
    d.resetTime = [&a](Real t, int n) { a.resetTime(t, n); };
    d.fields = [&a] {
        std::vector<CheckpointField> out;
        for (int lev = 0; lev <= a.finestLevel(); ++lev) {
            CheckpointField f;
            f.mf = &a.state(lev);
            f.geom = a.geom(lev);
            f.name = "state_lev" + std::to_string(lev);
            out.push_back(std::move(f));
        }
        return out;
    };
    d.remakeForRestore =
        [&a](const std::vector<std::vector<Box>>& boxes,
             const std::function<DistributionMapping(const BoxArray&, int)>&
                 dmBuilder) { a.remakeForRestore(boxes, dmBuilder); };
    d.postRestore = [&a] { a.finishRestore(); };
    d.retryStats = [&a] { return &a.retryStats(); };
    d.mgStats = [&a] { return a.mgTotals(); };
    return d;
}

} // namespace exa::resilience
