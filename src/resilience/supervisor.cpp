#include "resilience/supervisor.hpp"

#include "core/fault.hpp"
#include "mesh/comm_hooks.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace exa::resilience {

namespace {

std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

std::string SupervisorReport::summary(const RetryStats* retry) const {
    std::ostringstream os;
    os << "resilience: steps=" << steps_run << " (replayed " << replay_steps
       << "), ranks failed/recovered=" << ranks_failed << "/" << ranks_recovered
       << ", restores localized/full=" << localized_restores << "/"
       << full_rollbacks << "\n";
    os << "checkpoints: written=" << checkpoints_written << " ("
       << checkpoint_bytes << " bytes), skipped-busy=" << checkpoints_skipped
       << ", daly interval=" << daly_interval_steps << " steps\n";
    os << "recovery: disk bytes=" << recovery_disk_bytes
       << ", wall=" << recovery_seconds << " s (steps wall=" << step_seconds
       << " s)";
    if (retry != nullptr) {
        os << "\nstep-guard: guarded=" << retry->steps_guarded
           << ", retries=" << retry->retries
           << ", degraded=" << retry->degraded;
    }
    return os.str();
}

ResilienceSupervisor::ResilienceSupervisor(SupervisedDriver driver,
                                           SupervisorOptions opt)
    : m_driver(std::move(driver)), m_opt(opt), m_ckpt(opt.checkpoint),
      m_alive(static_cast<std::size_t>(std::max(1, opt.nranks)), true) {
    if (!m_driver.estimateDt || !m_driver.step || !m_driver.time ||
        !m_driver.stepCount || !m_driver.resetTime || !m_driver.fields) {
        throw std::invalid_argument(
            "ResilienceSupervisor: incomplete driver callbacks");
    }
}

int ResilienceSupervisor::ranksAlive() const {
    int n = 0;
    for (const bool a : m_alive) n += a ? 1 : 0;
    return n;
}

std::vector<int> ResilienceSupervisor::aliveList() const {
    std::vector<int> out;
    for (std::size_t r = 0; r < m_alive.size(); ++r) {
        if (m_alive[r]) out.push_back(static_cast<int>(r));
    }
    return out;
}

void ResilienceSupervisor::runSteps(int nsteps) {
    const int target = m_driver.stepCount() + nsteps;
    try {
        while (m_driver.stepCount() < target) {
            maybeCheckpoint();
            const Real dt = m_driver.estimateDt();
            const auto t0 = std::chrono::steady_clock::now();
            m_driver.step(dt);
            const double s = seconds_since(t0);
            m_ckpt.noteStepSeconds(s);
            m_report.step_seconds += s;
            ++m_report.steps_run;
            if (m_opt.heartbeat) heartbeat();
        }
    } catch (...) {
        // Keep the report coherent for post-mortems (the campaign harness
        // records it even for runs that die unrecoverably).
        m_ckpt.flush();
        syncCheckpointStats();
        throw;
    }
    m_ckpt.flush();
    syncCheckpointStats();
}

void ResilienceSupervisor::syncCheckpointStats() {
    m_report.checkpoints_written = m_ckpt.checkpointsWritten();
    m_report.checkpoint_bytes = m_ckpt.checkpointBytes();
    m_report.checkpoints_skipped = m_ckpt.checkpointsSkipped();
    m_report.daly_interval_steps = m_ckpt.intervalSteps();
}

std::string ResilienceSupervisor::summary() const {
    const RetryStats* retry =
        m_driver.retryStats ? m_driver.retryStats() : nullptr;
    std::string s = m_report.summary(retry);
    if (m_driver.mgStats) {
        const MgEvent e = m_driver.mgStats();
        if (e.vcycles > 0 || e.fmg_cycles > 0) {
            std::ostringstream os;
            os << "\nmg: fmg=" << e.fmg_cycles << " vcycles=" << e.vcycles
               << " sweeps=" << e.sweeps << " agg-copies=" << e.agg_copies
               << " (" << e.agg_bytes << " bytes)";
            s += os.str();
        }
    }
    return s;
}

void ResilienceSupervisor::maybeCheckpoint() {
    if (!m_ckpt.due(m_driver.stepCount())) return;
    const std::vector<CheckpointField> fields = m_driver.fields();
    m_ckpt.checkpoint(fields, m_driver.time(), m_driver.stepCount());
}

bool ResilienceSupervisor::heartbeat() {
    if (!fault::shouldFire(fault::Site::RankFailure)) return false;
    const std::vector<int> alive = aliveList();
    if (alive.size() <= 1) {
        throw std::runtime_error(
            "ResilienceSupervisor: rank failure with no surviving rank — "
            "unrecoverable");
    }
    const int victim = alive[static_cast<std::size_t>(
        mix(m_opt.victim_seed ^ static_cast<std::uint64_t>(m_kills)) %
        alive.size())];
    killRank(victim);
    m_ckpt.noteFailureAtStep(m_driver.stepCount());
    recover();
    return true;
}

void ResilienceSupervisor::killRank(int victim) {
    if (m_opt.verbose) {
        std::fprintf(stderr, "[supervisor] rank %d failed at step %d\n", victim,
                     m_driver.stepCount());
    }
    m_alive[static_cast<std::size_t>(victim)] = false;
    ++m_kills;
    ++m_report.ranks_failed;
    // Emulate the loss: every fab the victim owned is gone. Poisoning with
    // NaN makes any accidental use of dead data fail validation loudly
    // instead of silently passing stale values through recovery.
    const Real nan = std::numeric_limits<Real>::quiet_NaN();
    std::vector<CheckpointField> fields = m_driver.fields();
    for (CheckpointField& f : fields) {
        std::vector<MultiFab*> fabs{f.mf};
        fabs.insert(fabs.end(), f.companions.begin(), f.companions.end());
        for (MultiFab* mf : fabs) {
            const DistributionMapping& dm = mf->distributionMap();
            for (std::size_t i = 0; i < mf->size(); ++i) {
                if (dm[i] == victim) mf->fab(static_cast<int>(i)).setVal(nan);
            }
        }
    }
}

DistributionMapping ResilienceSupervisor::shrinkMapping(const BoxArray& ba) const {
    const std::vector<int> alive = aliveList();
    std::vector<double> cost(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        cost[i] = static_cast<double>(ba[i].numPts());
    }
    // Build a cost-weighted mapping over n_alive packed slots, then remap
    // each slot onto a surviving rank id — the strategy builders only know
    // contiguous rank ranges, the health mask does not.
    DistributionMapping packed(ba, static_cast<int>(alive.size()), cost,
                               m_opt.strategy);
    std::vector<int> table(ba.size());
    for (std::size_t i = 0; i < ba.size(); ++i) {
        table[i] = alive[static_cast<std::size_t>(packed[i])];
    }
    return DistributionMapping(std::move(table), m_opt.nranks);
}

void ResilienceSupervisor::shrinkFields(std::vector<CheckpointField>& fields) {
    // One shrink mapping per distinct BoxArray, so fields sharing a layout
    // (state + phi + divu; state + gravity) land on identical mappings and
    // stay co-located.
    std::map<std::uint64_t, DistributionMapping> built;
    for (CheckpointField& f : fields) {
        std::vector<MultiFab*> fabs{f.mf};
        fabs.insert(fabs.end(), f.companions.begin(), f.companions.end());
        for (MultiFab* mf : fabs) {
            const BoxArray& ba = mf->boxArray();
            auto it = built.find(ba.id());
            if (it == built.end()) {
                it = built.emplace(ba.id(), shrinkMapping(ba)).first;
            }
            mf->Redistribute(it->second, "recovery");
        }
    }
}

std::int64_t ResilienceSupervisor::restoreFromSnapshot(
    const CheckpointSnapshot& snap, std::vector<CheckpointField>& fields) {
    assert(fields.size() == snap.fields.size());
    // Phase 1: fetch + CRC-verify every disk payload first. A corrupted
    // fab throws here, before any live fab has been touched, so the
    // caller's full-rollback fallback starts from an unmodified state.
    struct DiskFab {
        std::size_t field;
        int fab;
        StagedFab data;
    };
    std::vector<DiskFab> from_disk;
    std::int64_t disk_bytes = 0;
    for (std::size_t i = 0; i < snap.fields.size(); ++i) {
        const StagedField& sf = snap.fields[i];
        bool have_header = false;
        PlotfileHeader hdr;
        for (std::size_t j = 0; j < sf.level.fabs.size(); ++j) {
            if (m_alive[static_cast<std::size_t>(sf.owner[j])]) continue;
            // The victim's share of the in-memory staged copy died with
            // it; this fab must come from the committed slot on disk.
            const std::string dir = snap.dir + "/" + sf.name;
            if (!have_header) {
                hdr = readPlotfileHeader(dir);
                have_header = true;
            }
            DiskFab df;
            df.field = i;
            df.fab = static_cast<int>(j);
            df.data = readPlotfileFab(dir, hdr, 0, static_cast<int>(j));
            disk_bytes +=
                static_cast<std::int64_t>(df.data.data.size() * sizeof(Real));
            from_disk.push_back(std::move(df));
        }
    }
    // Phase 2: apply — surviving ranks' fabs from memory, the dead rank's
    // from the verified disk payloads.
    for (std::size_t i = 0; i < snap.fields.size(); ++i) {
        const StagedField& sf = snap.fields[i];
        for (std::size_t j = 0; j < sf.level.fabs.size(); ++j) {
            if (m_alive[static_cast<std::size_t>(sf.owner[j])]) {
                applyStagedFab(*fields[i].mf, static_cast<int>(j),
                               sf.level.fabs[j]);
            }
        }
    }
    for (const DiskFab& df : from_disk) {
        applyStagedFab(*fields[df.field].mf, df.fab, df.data);
    }
    return disk_bytes;
}

std::int64_t ResilienceSupervisor::restoreFromSlot(
    const std::string& slot, std::vector<CheckpointField>& fields) {
    std::int64_t bytes = 0;
    for (CheckpointField& f : fields) {
        bytes += readPlotfileLevel(slot + "/" + f.name, 0, *f.mf);
    }
    return bytes;
}

void ResilienceSupervisor::recover() {
    const auto t0 = std::chrono::steady_clock::now();
    const int failed_at = m_driver.stepCount();
    // The freshest checkpoint may still be in flight on the drain thread;
    // recovery wants it committed (or failed) before choosing a source.
    m_ckpt.flush();
    const std::shared_ptr<const CheckpointSnapshot> snap = m_ckpt.latest();
    if (!snap || !snap->valid()) {
        throw std::runtime_error(
            "ResilienceSupervisor: rank failure before any committed "
            "checkpoint — unrecoverable");
    }

    auto dmBuilder = [this](const BoxArray& ba, int) {
        return shrinkMapping(ba);
    };

    std::vector<CheckpointField> fields = m_driver.fields();
    // Live layouts match the snapshot when field names and per-fab boxes
    // agree (single-level drivers always match; AMR diverges when a
    // regrid ran after the checkpoint).
    bool match = fields.size() == snap->fields.size();
    for (std::size_t i = 0; match && i < fields.size(); ++i) {
        const StagedField& sf = snap->fields[i];
        match = fields[i].name == sf.name &&
                fields[i].mf->size() == sf.level.fabs.size();
        for (std::size_t j = 0; match && j < sf.level.fabs.size(); ++j) {
            match = fields[i].mf->box(static_cast<int>(j)) == sf.level.fabs[j].box;
        }
    }

    if (match) {
        shrinkFields(fields);
    } else {
        if (!m_driver.remakeForRestore) {
            throw std::runtime_error(
                "ResilienceSupervisor: live layout differs from checkpoint "
                "and the driver cannot remake — unrecoverable");
        }
        std::vector<std::vector<Box>> boxes(snap->fields.size());
        for (std::size_t i = 0; i < snap->fields.size(); ++i) {
            for (const StagedFab& sf : snap->fields[i].level.fabs) {
                boxes[i].push_back(sf.box);
            }
        }
        m_driver.remakeForRestore(boxes, dmBuilder);
        fields = m_driver.fields();
    }

    std::int64_t disk_bytes = 0;
    Real restored_time = snap->time;
    int restored_step = snap->step;
    try {
        disk_bytes = restoreFromSnapshot(*snap, fields);
        ++m_report.localized_restores;
    } catch (const std::exception& e) {
        // The newest slot lost a fab we need (e.g. a checkpoint-bit-flip
        // landed on it). Full rollback from the other slot: every fab from
        // disk, CRC-verified by readPlotfileLevel.
        if (m_opt.verbose) {
            std::fprintf(stderr, "[supervisor] localized restore failed (%s); "
                                 "rolling back to the other slot\n",
                         e.what());
        }
        const std::string base = m_opt.checkpoint.dir;
        const std::string other = snap->dir == base + "/chk_A"
                                      ? base + "/chk_B"
                                      : base + "/chk_A";
        PlotfileHeader other_hdr;
        std::vector<std::vector<Box>> other_boxes;
        try {
            // The other slot is older: its grids may differ from both the
            // live hierarchy and the newest snapshot. Gather its per-field
            // boxes from the (self-checksummed) headers first. Probing by
            // the current field names means a slot written with a
            // different *level count* (AMR) reads as missing and lands in
            // the unrecoverable branch — full rollback across a level
            // birth/death is out of scope.
            other_boxes.resize(fields.size());
            bool other_match = true;
            for (std::size_t i = 0; i < fields.size(); ++i) {
                other_hdr = readPlotfileHeader(other + "/" + fields[i].name);
                other_boxes[i] = other_hdr.boxes[0];
                other_match = other_match &&
                              other_boxes[i].size() == fields[i].mf->size();
                for (std::size_t j = 0;
                     other_match && j < other_boxes[i].size(); ++j) {
                    other_match = fields[i].mf->box(static_cast<int>(j)) ==
                                  other_boxes[i][j];
                }
                restored_time = other_hdr.time;
                restored_step = other_hdr.step;
            }
            if (!other_match) {
                if (!m_driver.remakeForRestore) {
                    throw std::runtime_error("other-slot layout differs and "
                                             "the driver cannot remake");
                }
                m_driver.remakeForRestore(other_boxes, dmBuilder);
                fields = m_driver.fields();
            }
            disk_bytes = restoreFromSlot(other, fields);
            ++m_report.full_rollbacks;
        } catch (const std::exception& e2) {
            throw std::runtime_error(
                std::string("ResilienceSupervisor: both checkpoint slots "
                            "unusable — unrecoverable (newest: ") +
                e.what() + "; other: " + e2.what() + ")");
        }
    }

    m_driver.resetTime(restored_time, restored_step);
    if (m_driver.postRestore) m_driver.postRestore();

    const int replay = failed_at - restored_step;
    ++m_report.ranks_recovered;
    m_report.replay_steps += replay;
    m_report.recovery_disk_bytes += disk_bytes;
    m_report.recovery_seconds += seconds_since(t0);
    ResilienceEvent ev;
    ev.ranks_recovered = 1;
    ev.replay_steps = replay;
    ev.recovery_bytes = disk_bytes;
    CommHooks::notifyResilience(ev);
    if (m_opt.verbose) {
        std::fprintf(stderr,
                     "[supervisor] recovered: rewound to step %d (replaying %d "
                     "steps), %lld bytes from disk\n",
                     restored_step, replay,
                     static_cast<long long>(disk_bytes));
    }
}

} // namespace exa::resilience
