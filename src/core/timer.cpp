#include "core/timer.hpp"

#include <iomanip>
#include <sstream>

namespace exa {

TimerRegistry& TimerRegistry::instance() {
    static TimerRegistry reg;
    return reg;
}

namespace {
thread_local TimerRegistry* t_current_registry = nullptr;
}

TimerRegistry& TimerRegistry::current() {
    return t_current_registry != nullptr ? *t_current_registry : instance();
}

ScopedTimerRegistry::ScopedTimerRegistry(TimerRegistry* reg)
    : m_saved(t_current_registry) {
    t_current_registry = reg;
}

ScopedTimerRegistry::~ScopedTimerRegistry() { t_current_registry = m_saved; }

std::string TimerRegistry::report() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::ostringstream os;
    if (!m_tag.empty()) os << "[" << m_tag << "]\n";
    os << std::left << std::setw(32) << "region" << std::right << std::setw(14)
       << "seconds" << std::setw(10) << "calls" << '\n';
    for (const auto& [name, e] : m_entries) {
        os << std::left << std::setw(32) << name << std::right << std::setw(14)
           << std::fixed << std::setprecision(6) << e.seconds << std::setw(10)
           << e.calls << '\n';
    }
    return os.str();
}

} // namespace exa
