#pragma once

#include "core/intvect.hpp"

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace exa {

// A rectangular region of cell-centered index space, inclusive on both
// ends: the set of zones (i,j,k) with lo <= (i,j,k) <= hi. This is the
// unit of work distribution in block-structured AMR codes: a Fab covers
// exactly one Box (plus ghost zones), an MPI rank owns a set of Boxes,
// and a GPU kernel launch maps threads onto the zones of one Box.
class Box {
public:
    Box() : m_lo(IntVect::zero()), m_hi(IntVect(-1)) {} // default: empty
    Box(const IntVect& lo, const IntVect& hi) : m_lo(lo), m_hi(hi) {}

    const IntVect& smallEnd() const { return m_lo; }
    const IntVect& bigEnd() const { return m_hi; }
    int smallEnd(int d) const { return m_lo[d]; }
    int bigEnd(int d) const { return m_hi[d]; }

    bool operator==(const Box&) const = default;

    // Number of zones along dimension d (0 if empty in that dimension).
    int length(int d) const { return m_hi[d] - m_lo[d] + 1; }
    IntVect size() const { return {length(0), length(1), length(2)}; }

    bool ok() const { return m_lo.allLE(m_hi); }
    bool isEmpty() const { return !ok(); }

    std::int64_t numPts() const {
        if (!ok()) return 0;
        return static_cast<std::int64_t>(length(0)) * length(1) * length(2);
    }

    bool contains(const IntVect& p) const { return m_lo.allLE(p) && p.allLE(m_hi); }
    bool contains(int i, int j, int k) const { return contains(IntVect{i, j, k}); }
    bool contains(const Box& b) const { return !b.ok() || (contains(b.m_lo) && contains(b.m_hi)); }

    bool intersects(const Box& b) const { return (*this & b).ok(); }

    // Set intersection of two boxes (possibly empty).
    Box operator&(const Box& b) const {
        return Box(max(m_lo, b.m_lo), min(m_hi, b.m_hi));
    }

    Box& grow(int n) { m_lo -= IntVect(n); m_hi += IntVect(n); return *this; }
    Box& grow(const IntVect& n) { m_lo -= n; m_hi += n; return *this; }
    Box& grow(int d, int n) { m_lo[d] -= n; m_hi[d] += n; return *this; }
    Box& growLo(int d, int n) { m_lo[d] -= n; return *this; }
    Box& growHi(int d, int n) { m_hi[d] += n; return *this; }

    Box& shift(const IntVect& s) { m_lo += s; m_hi += s; return *this; }
    Box& shift(int d, int n) { m_lo[d] += n; m_hi[d] += n; return *this; }

    // Coarsen by an integer ratio (floor division toward -inf on both
    // ends; the result covers every coarse zone any fine zone maps to).
    Box& coarsen(int ratio) { return coarsen(IntVect(ratio)); }
    Box& coarsen(const IntVect& r) {
        for (int d = 0; d < 3; ++d) {
            m_lo[d] = coarsen_index(m_lo[d], r[d]);
            m_hi[d] = coarsen_index(m_hi[d], r[d]);
        }
        return *this;
    }

    // Refine by an integer ratio (inverse of coarsen on aligned boxes).
    Box& refine(int ratio) { return refine(IntVect(ratio)); }
    Box& refine(const IntVect& r) {
        for (int d = 0; d < 3; ++d) {
            m_lo[d] *= r[d];
            m_hi[d] = (m_hi[d] + 1) * r[d] - 1;
        }
        return *this;
    }

    // True if this box, coarsened then refined by ratio, is unchanged.
    bool coarsenable(int ratio) const {
        Box b = *this;
        Box c = b;
        c.coarsen(ratio).refine(ratio);
        return c == *this;
    }

    Dim3 loDim3() const { return {m_lo.x, m_lo.y, m_lo.z}; }
    Dim3 hiDim3() const { return {m_hi.x, m_hi.y, m_hi.z}; }

private:
    IntVect m_lo, m_hi;
};

inline Box grow(Box b, int n) { return b.grow(n); }
inline Box grow(Box b, const IntVect& n) { return b.grow(n); }
inline Box grow(Box b, int d, int n) { return b.grow(d, n); }
inline Box shift(Box b, const IntVect& s) { return b.shift(s); }
inline Box coarsen(Box b, int r) { return b.coarsen(r); }
inline Box refine(Box b, int r) { return b.refine(r); }

// The face-flux box for dimension d: one extra zone on the high side, so
// that flux(i,j,k) is the flux through the low face of zone (i,j,k).
inline Box surroundingFaces(Box b, int d) { return b.growHi(d, 1); }

// Subtract box b from box a, returning up to six disjoint boxes covering
// a \ b. Used for ghost-region bookkeeping and tagging.
std::vector<Box> boxDiff(const Box& a, const Box& b);

// Chop `domain` into boxes no larger than max_size per dimension, cutting
// as evenly as possible. All returned boxes tile `domain` exactly.
std::vector<Box> chopDomain(const Box& domain, const IntVect& max_size);
inline std::vector<Box> chopDomain(const Box& domain, int max_size) {
    return chopDomain(domain, IntVect(max_size));
}

std::ostream& operator<<(std::ostream& os, const Box& b);

} // namespace exa
