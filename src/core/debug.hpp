#pragma once

// The Backend::Debug verification subsystem.
//
// The whole port rests on one correctness contract (see parallel_for.hpp):
// a ParallelFor body must be safe to run for all zones concurrently,
// writing only to locations keyed by its own (i,j,k[,n]). Nothing in the
// serial or OpenMP backends enforces this — a kernel with a hidden
// cross-zone dependency produces the right answer on the CPU and silently
// races on a real GPU. Backend::Debug makes such kernels fail loudly:
//
//   1. Order check: the launch runs once in forward zone order, then again
//      in reversed (and, for small launches, shuffled) zone order against
//      a snapshot of all arena-resident state. Any divergence means some
//      zone observed another zone's write — a race under GPU semantics —
//      and is reported with the offending KernelInfo::name.
//   2. Write-footprint check: the launch is replayed zone by zone and the
//      bytes each zone changes are attributed to it. Two zones changing
//      the same byte is reported as a write collision even when the final
//      answer happens to be order-independent (e.g. exact-integer += into
//      a shared accumulator).
//
// The final memory state of a Debug launch is always the forward-order
// result, so Debug stays bit-identical to Serial and existing numeric
// assertions keep holding.
//
// Scope and limits: only arena-resident state is snapshotted (the debug
// registry enumerates every live Arena block; anything a contract-clean
// GPU kernel may write is device-resident, i.e. arena-backed). Checks are
// rate-limited per kernel name and byte-budgeted so whole test suites can
// run under Backend::Debug; see the EXA_DEBUG_* knobs on debug::Limits.

#include "core/box.hpp"
#include "core/executor.hpp"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace exa::debug {

// One detected violation (contract breach or allocator misuse).
struct Violation {
    std::string source; // KernelInfo::name or arena name
    std::string kind;   // "order-dependence", "write-collision", "double-free", ...
    std::string detail;
};

// Report a violation: records it, prints to stderr, and aborts the process
// when abortOnViolation() is set (the default, so a violating kernel can
// never slip through a green test run). GuardArena routes its canary /
// double-free / bad-free findings through here too.
void reportViolation(const std::string& source, const std::string& kind,
                     const std::string& detail);

std::size_t violationCount();
std::vector<Violation> violations();
void clearViolations();

void setAbortOnViolation(bool abort_on_violation);
bool abortOnViolation();

// RAII: disable abort-on-violation for a scope (checker self-tests).
class ScopedViolationTrap {
public:
    ScopedViolationTrap() : m_saved(abortOnViolation()) { setAbortOnViolation(false); }
    ~ScopedViolationTrap() { setAbortOnViolation(m_saved); }
    ScopedViolationTrap(const ScopedViolationTrap&) = delete;
    ScopedViolationTrap& operator=(const ScopedViolationTrap&) = delete;

private:
    bool m_saved;
};

// Cost-control knobs, initialized once from the environment.
struct Limits {
    // Launches checked per distinct kernel name before passing through
    // (EXA_DEBUG_CHECKS_PER_KERNEL, 0 = unlimited).
    int checks_per_kernel = 4;
    // Skip checking entirely when more than this many arena bytes are live
    // (EXA_DEBUG_SNAPSHOT_CAP).
    std::int64_t snapshot_byte_cap = std::int64_t{1} << 28;
    // Run the per-zone footprint pass only when zones * written-bytes fits
    // this budget (EXA_DEBUG_FOOTPRINT_BUDGET).
    std::int64_t footprint_budget = std::int64_t{1} << 28;
    // Run the shuffled-order pass only up to this many zones
    // (EXA_DEBUG_SHUFFLE_CAP).
    std::int64_t shuffle_zone_cap = std::int64_t{1} << 20;
};
Limits& limits();

// Forget which kernels have used up their per-name check quota.
void resetCheckCounts();

// Snapshot/compare engine for one checked launch. Non-template so the
// heavy machinery stays out of line; driven by run_checked() below.
class LaunchCheck {
public:
    LaunchCheck(const KernelInfo& ki, std::int64_t work_items);
    ~LaunchCheck();
    LaunchCheck(const LaunchCheck&) = delete;
    LaunchCheck& operator=(const LaunchCheck&) = delete;

    bool active() const { return m_active; }

    void captureForward();              // record S1 = forward-order result
    void restoreBaseline();             // memory := S0 (pre-launch state)
    void compareAgainstForward(const char* order_name); // diff memory vs S1
    bool shuffleWanted() const;
    bool footprintWanted();             // budget check on bytes the launch writes
    void beginFootprint();              // shadow state for per-zone attribution
    void footprintScan(std::int64_t item); // attribute bytes changed by `item`
    void finish();                      // memory := S1, emit reports

private:
    struct Snap {
        unsigned char* ptr;
        std::size_t bytes;
        std::vector<unsigned char> baseline; // S0
        std::vector<unsigned char> forward;  // S1
    };
    struct Footprint {
        std::size_t snap;                  // index into m_snaps
        std::vector<unsigned char> shadow; // rolling pre-zone state
        std::vector<std::int64_t> owner;   // byte -> writing item (-1 = none)
    };

    void computeWrittenBytes();

    std::string m_kernel;
    std::int64_t m_items = 0;
    bool m_active = false;
    bool m_collision_reported = false;
    std::int64_t m_written_bytes = -1; // lazily computed S0 vs S1 diff
    std::vector<Snap> m_snaps;
    std::vector<Footprint> m_footprints;
};

// Deterministic permutation of [0, n) (fixed-seed Fisher-Yates).
std::vector<std::int64_t> shuffledOrder(std::int64_t n);

// Drive one checked launch. `call(l)` must execute work item l, where
// ascending l is exactly the serial backend's nesting order, so the
// forward pass is bit-identical to Backend::Serial.
template <typename Call>
void run_checked(const KernelInfo& ki, std::int64_t nitems, Call&& call) {
    LaunchCheck chk(ki, nitems);
    if (!chk.active()) {
        for (std::int64_t l = 0; l < nitems; ++l) call(l);
        return;
    }
    for (std::int64_t l = 0; l < nitems; ++l) call(l);
    chk.captureForward();
    chk.restoreBaseline();
    for (std::int64_t l = nitems - 1; l >= 0; --l) call(l);
    chk.compareAgainstForward("reversed");
    if (chk.shuffleWanted()) {
        chk.restoreBaseline();
        for (std::int64_t l : shuffledOrder(nitems)) call(l);
        chk.compareAgainstForward("shuffled");
    }
    if (chk.footprintWanted()) {
        chk.restoreBaseline();
        chk.beginFootprint();
        for (std::int64_t l = 0; l < nitems; ++l) {
            call(l);
            chk.footprintScan(l);
        }
    }
    chk.finish();
}

// Backend::Debug entry points used by ParallelFor. The linear item order
// mirrors detail::serial_for exactly (i fastest, then j, k[, n outermost]).
template <typename F>
void checked_for(const KernelInfo& ki, const Box& box, F&& f) {
    const Dim3 lo = box.loDim3();
    const std::int64_t nx = box.length(0);
    const std::int64_t nxy = nx * box.length(1);
    run_checked(ki, box.numPts(), [&](std::int64_t l) {
        const int i = lo.x + static_cast<int>(l % nx);
        const int j = lo.y + static_cast<int>((l / nx) % box.length(1));
        const int k = lo.z + static_cast<int>(l / nxy);
        f(i, j, k);
    });
}

template <typename F>
void checked_for(const KernelInfo& ki, const Box& box, int ncomp, F&& f) {
    const Dim3 lo = box.loDim3();
    const std::int64_t nx = box.length(0);
    const std::int64_t nxy = nx * box.length(1);
    const std::int64_t npts = box.numPts();
    run_checked(ki, npts * ncomp, [&](std::int64_t l) {
        const int n = static_cast<int>(l / npts);
        const std::int64_t z = l % npts;
        const int i = lo.x + static_cast<int>(z % nx);
        const int j = lo.y + static_cast<int>((z / nx) % box.length(1));
        const int k = lo.z + static_cast<int>(z / nxy);
        f(i, j, k, n);
    });
}

} // namespace exa::debug
