#pragma once

// Deterministic, seeded fault injection for the robustness test harness.
//
// Production runs of the codes this repo reproduces fail in a handful of
// recurring ways: the stiff burn integrator gives up in a hot zone, a
// hydro update produces a NaN, a device allocation fails mid-step, a halo
// payload arrives corrupted, a checkpoint hits bad disk. The retry /
// degradation / integrity machinery that handles those paths is worthless
// if it is only exercised by luck, so this registry lets tests (and the
// EXA_FAULTS environment variable) arm *named injection sites* that fire
// on a deterministic subset of their hits.
//
// Companion to the Backend::Debug / GuardArena verification stack from
// the bugfix PR: those make latent bugs fail loudly; this makes recovery
// paths run on demand.
//
// Determinism: every site keeps a hit counter. A window spec fires hits
// [start, start+count) (strided); a probability spec runs a seeded
// per-hit hash, so the firing pattern is a pure function of (spec, hit
// index) — identical across runs and backends. Sites are consulted only
// from plain host code (never inside ParallelFor bodies), so the debug
// backend's replay passes see the same state as the forward pass.

#include <cstdint>
#include <string>

namespace exa::fault {

// The injection-site registry. Each enumerator marks one code location
// (documented at the call site) where a hit is counted and a fault can
// fire. Keep siteName() in sync when extending.
enum class Site : int {
    BurnZoneFailure = 0, // burnZone(): integrator reports failure for the zone
    HydroNanFlux,        // molRhs(): one zone of dU/dt is poisoned with NaN
    ArenaAllocFailure,   // Pool/MallocArena::allocate() throws std::bad_alloc
    HaloPayloadCorrupt,  // MultiFab copy plan: one copied value becomes NaN
    CheckpointBitFlip,   // writePlotfile(): one bit of a fab payload flips on disk
    MigrationPayloadCorrupt, // MultiFab::Redistribute(): one migrated fab poisoned
    RankFailure,         // ResilienceSupervisor heartbeat: a modeled rank dies
    CommMessageDrop,     // MultiFab copy plan: one off-rank message is dropped
    count_
};
inline constexpr int nsites = static_cast<int>(Site::count_);

const char* siteName(Site s);
// Parse a site name ("burn-zone-failure", ...); false if unknown.
bool siteFromName(const std::string& name, Site& out);

// Which hits of an armed site fire. With probability < 0 (default) the
// window rule applies: hit h fires iff h >= start, h < start + count
// (count <= 0 = unbounded), and (h - start) % stride == 0. With
// probability in [0, 1] each hit fires via a seeded hash of (seed, h).
struct Spec {
    std::int64_t start = 0;
    std::int64_t count = 1;
    std::int64_t stride = 1;
    double probability = -1.0;
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

struct SiteStats {
    bool armed = false;
    Spec spec;
    std::int64_t hits = 0;  // shouldFire() calls since arming (or reset)
    std::int64_t fires = 0; // hits that fired
};

// Arm a site (resets its counters). disarm() leaves the counters readable
// until the next arm(). disarmAll() also clears counters.
void arm(Site s, const Spec& spec = Spec{});
void disarm(Site s);
void disarmAll();
void resetCounters();

bool armed(Site s);
SiteStats stats(Site s);

// True when at least one site is armed — the cheap fast-path check; the
// instrumented hot paths call shouldFire() only through this.
bool anyArmed();

// Count one hit at site s and decide whether the fault fires. Thread-safe;
// no-op (false) when the site is not armed.
bool shouldFire(Site s);

// Apply an "site:key=val,key=val;site..." configuration string (the
// EXA_FAULTS format). Keys: start, count, stride, prob, seed. Returns
// false and fills *error on a malformed spec. Example:
//   EXA_FAULTS="burn-zone-failure:start=40,count=2;halo-payload-corrupt:prob=0.01,seed=7"
bool configureFromString(const std::string& cfg, std::string* error = nullptr);

// configureFromString, but a malformed spec is fatal: print the parse
// error to stderr and exit non-zero. EXA_FAULTS goes through this — a
// fault campaign whose config is silently dropped would report a 100%
// survival rate for runs that never saw a fault, so rejecting loudly is
// the only safe behavior.
void configureFromStringOrDie(const std::string& cfg);

// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
public:
    explicit ScopedFault(Site s, const Spec& spec = Spec{}) : m_site(s) {
        arm(m_site, spec);
    }
    ~ScopedFault() { disarm(m_site); }
    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

private:
    Site m_site;
};

} // namespace exa::fault
