#pragma once

#include "core/box.hpp"
#include "core/intvect.hpp"
#include "core/real.hpp"

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace exa {

// A non-owning view of a four-dimensional (i,j,k,component) array laid out
// in Fortran order over a Box, mirroring amrex::Array4. Kernels index it
// with *global* zone coordinates; the view subtracts the box origin.
//
// This is the heart of the paper's single-source kernel style: the same
// Array4-indexed lambda body runs under the serial backend, the OpenMP
// backend, and the (simulated) GPU backend.
template <typename T>
struct Array4 {
    T* p = nullptr;
    std::int64_t jstride = 0; // distance between j neighbors
    std::int64_t kstride = 0; // distance between k neighbors
    std::int64_t nstride = 0; // distance between components
    Dim3 begin{0, 0, 0};      // inclusive lower bound
    Dim3 end{0, 0, 0};        // exclusive upper bound
    int ncomp = 0;

    constexpr Array4() = default;

    Array4(T* ptr, const Box& bx, int ncomps)
        : p(ptr),
          jstride(bx.length(0)),
          kstride(static_cast<std::int64_t>(bx.length(0)) * bx.length(1)),
          nstride(static_cast<std::int64_t>(bx.length(0)) * bx.length(1) * bx.length(2)),
          begin{bx.smallEnd(0), bx.smallEnd(1), bx.smallEnd(2)},
          end{bx.bigEnd(0) + 1, bx.bigEnd(1) + 1, bx.bigEnd(2) + 1},
          ncomp(ncomps) {}

    // Implicit conversion Array4<T> -> Array4<const T>.
    template <typename U = T,
              typename = std::enable_if_t<std::is_const_v<U>>>
    Array4(const Array4<std::remove_const_t<T>>& o)
        : p(o.p), jstride(o.jstride), kstride(o.kstride), nstride(o.nstride),
          begin(o.begin), end(o.end), ncomp(o.ncomp) {}

    EXA_FORCE_INLINE T& operator()(int i, int j, int k) const {
        return p[index(i, j, k, 0)];
    }
    EXA_FORCE_INLINE T& operator()(int i, int j, int k, int n) const {
        return p[index(i, j, k, n)];
    }

    EXA_FORCE_INLINE std::int64_t index(int i, int j, int k, int n) const {
        assert(contains(i, j, k) && n >= 0 && n < ncomp);
        return (i - begin.x) + (j - begin.y) * jstride + (k - begin.z) * kstride +
               n * nstride;
    }

    EXA_FORCE_INLINE bool contains(int i, int j, int k) const {
        return i >= begin.x && i < end.x && j >= begin.y && j < end.y && k >= begin.z &&
               k < end.z;
    }

    // Pointer to the start of component n (contiguous over the box).
    T* dataPtr(int n = 0) const { return p + n * nstride; }

    std::int64_t sizePerComp() const { return nstride; }

    explicit operator bool() const { return p != nullptr; }
};

} // namespace exa
