#include "core/arena.hpp"

#include "core/debug.hpp"
#include "core/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>

namespace exa {

namespace {
constexpr std::size_t alignment = 64;

void* aligned_alloc_checked(std::size_t bytes) {
    // Round up to the alignment multiple required by std::aligned_alloc;
    // zero-byte requests still yield a unique, freeable pointer.
    std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
    if (rounded == 0) rounded = alignment;
    void* p = std::aligned_alloc(alignment, rounded);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}

// Registry of all live arenas, so the debug backend can enumerate every
// device-resident byte in the process. Function-local statics: constructed
// before the first Arena (the base ctor calls in here), hence destroyed
// after the last global arena.
std::mutex& registryMutex() {
    static std::mutex m;
    return m;
}
std::vector<Arena*>& registry() {
    static std::vector<Arena*> r;
    return r;
}
} // namespace

Arena::Arena() {
    std::lock_guard<std::mutex> lk(registryMutex());
    registry().push_back(this);
}

Arena::~Arena() {
    std::lock_guard<std::mutex> lk(registryMutex());
    auto& r = registry();
    r.erase(std::remove(r.begin(), r.end(), this), r.end());
}

void forEachLiveArenaBlock(const std::function<void(void*, std::size_t)>& cb) {
    std::lock_guard<std::mutex> lk(registryMutex());
    for (const Arena* a : registry()) a->forEachLive(cb);
}

// --- Per-tenant accounting -----------------------------------------------

namespace {
thread_local int t_arena_tenant = -1;
}

int currentArenaTenant() { return t_arena_tenant; }

ArenaTenantScope::ArenaTenantScope(int tenant) : m_saved(t_arena_tenant) {
    t_arena_tenant = tenant;
}

ArenaTenantScope::~ArenaTenantScope() { t_arena_tenant = m_saved; }

void* MallocArena::allocate(std::size_t bytes) {
    // Injection site: a failed device allocation mid-step. Thrown (not
    // returned as nullptr) so callers exercise their unwind paths the way
    // a real cudaMalloc failure surfaces through AMReX's Arena.
    if (fault::shouldFire(fault::Site::ArenaAllocFailure)) throw std::bad_alloc{};
    void* p = aligned_alloc_checked(bytes);
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_stats.allocs;
    ++m_stats.slow_allocs;
    m_stats.bytes_in_use += bytes;
    m_stats.bytes_reserved += bytes;
    m_stats.hwm_bytes = std::max(m_stats.hwm_bytes, m_stats.bytes_in_use);
    m_live[p] = bytes;
    return p;
}

void MallocArena::deallocate(void* p) {
    if (p == nullptr) return;
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_live.find(p);
        if (it == m_live.end()) {
            // Not ours (foreign pointer or double free): passing it to
            // std::free would corrupt the heap, and counting it as a free
            // would corrupt the stats. Record and refuse.
            ++m_stats.bad_frees;
            return;
        }
        const std::size_t bytes = it->second;
        m_live.erase(it);
        ++m_stats.frees;
        m_stats.bytes_in_use -= bytes;
        m_stats.bytes_reserved -= bytes;
    }
    std::free(p);
}

void MallocArena::forEachLive(const std::function<void(void*, std::size_t)>& cb) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (const auto& [p, bytes] : m_live) cb(p, bytes);
}

PoolArena::PoolArena(std::size_t min_block) : m_min_block(min_block) {}

PoolArena::~PoolArena() {
    for (auto& [cls, blocks] : m_free) {
        for (void* p : blocks) std::free(p);
    }
}

std::size_t PoolArena::sizeClass(std::size_t bytes) const {
    if (bytes <= m_min_block) return m_min_block; // includes bytes == 0
    // Doubling past the top power of two representable in size_t would
    // overflow to 0 and loop forever; such requests get an exact-size
    // "class" of their own (a direct allocation, cached like any other).
    constexpr std::size_t top = ~(~std::size_t{0} >> 1); // highest bit only
    if (bytes > top) return bytes;
    std::size_t cls = m_min_block;
    while (cls < bytes) cls <<= 1;
    return cls;
}

void* PoolArena::allocate(std::size_t bytes) {
    if (fault::shouldFire(fault::Site::ArenaAllocFailure)) throw std::bad_alloc{};
    const std::size_t cls = sizeClass(bytes);
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_stats.allocs;
    void* p = nullptr;
    auto it = m_free.find(cls);
    if (it != m_free.end() && !it->second.empty()) {
        p = it->second.back();
        it->second.pop_back();
        ++m_stats.pool_hits;
    } else {
        p = aligned_alloc_checked(cls);
        ++m_stats.slow_allocs;
        m_stats.bytes_reserved += cls;
    }
    const int tenant = t_arena_tenant;
    m_live[p] = LiveBlock{cls, tenant};
    m_stats.bytes_in_use += cls;
    m_stats.hwm_bytes = std::max(m_stats.hwm_bytes, m_stats.bytes_in_use);
    if (tenant >= 0) {
        auto& ts = m_tenants[tenant];
        ++ts.allocs;
        ts.bytes_allocated += cls;
        ts.bytes_in_use += cls;
        ts.peak_bytes = std::max(ts.peak_bytes, ts.bytes_in_use);
    }
    return p;
}

void PoolArena::deallocate(void* p) {
    if (p == nullptr) return;
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_live.find(p);
    if (it == m_live.end()) {
        ++m_stats.bad_frees; // not ours; refuse rather than pool a stranger
        return;
    }
    ++m_stats.frees;
    const LiveBlock b = it->second;
    m_live.erase(it);
    m_stats.bytes_in_use -= b.cls;
    // Credit the recorded owner, not the calling thread's tenant: under a
    // work-stealing scheduler the free may run on any worker, or after
    // the tenant's scope has ended.
    if (b.tenant >= 0) {
        auto& ts = m_tenants[b.tenant];
        ++ts.frees;
        ts.bytes_in_use -= b.cls;
    }
    m_free[b.cls].push_back(p);
}

TenantArenaStats PoolArena::tenantStats(int tenant) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    auto it = m_tenants.find(tenant);
    return it == m_tenants.end() ? TenantArenaStats{} : it->second;
}

std::vector<int> PoolArena::tenantIds() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::vector<int> out;
    out.reserve(m_tenants.size());
    for (const auto& [id, ts] : m_tenants) out.push_back(id);
    return out;
}

void PoolArena::resetTenantStats() {
    std::lock_guard<std::mutex> lk(m_mutex);
    m_tenants.clear();
    // Blocks still live keep their owner tag; their eventual frees must
    // not underflow a cleared counter, so detach them from any tenant.
    for (auto& [p, b] : m_live) b.tenant = -1;
}

void PoolArena::releaseCached() {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (auto& [cls, blocks] : m_free) {
        for (void* p : blocks) {
            std::free(p);
            m_stats.bytes_reserved -= cls;
        }
        blocks.clear();
    }
}

void PoolArena::forEachLive(const std::function<void(void*, std::size_t)>& cb) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (const auto& [p, b] : m_live) cb(p, b.cls);
}

// --- GuardArena ----------------------------------------------------------

GuardArena::GuardArena(Arena* underlying, std::string name)
    : m_under(underlying != nullptr ? underlying : &thePoolArena()),
      m_name(std::move(name)) {}

GuardArena::~GuardArena() {
    // At-exit report: leaks are reported but never abort (static teardown).
    std::uint64_t live = 0;
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        live = m_live.size();
        for (const auto& [user, b] : m_live) {
            m_gstats.leaked_blocks += 1;
            m_gstats.leaked_bytes += b.bytes;
        }
    }
    checkAll();
    if (live > 0 || m_gstats.canary_overflows > 0 || m_gstats.canary_underflows > 0 ||
        m_gstats.double_frees > 0 || m_gstats.bad_frees > 0) {
        std::fprintf(stderr, "%s", report().c_str());
    }
}

void* GuardArena::allocate(std::size_t bytes) {
    void* base = m_under->allocate(bytes + 2 * canary_bytes);
    auto* user = static_cast<unsigned char*>(base) + canary_bytes;
    std::memset(base, canary_byte, canary_bytes);
    std::memset(user + bytes, canary_byte, canary_bytes);
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_stats.allocs;
    m_stats.bytes_in_use += bytes;
    m_stats.bytes_reserved += bytes;
    m_stats.hwm_bytes = std::max(m_stats.hwm_bytes, m_stats.bytes_in_use);
    m_live[user] = Block{base, bytes};
    m_freed.erase(user); // address re-issued: no longer "freed"
    return user;
}

std::uint64_t GuardArena::checkCanaries(void* user, const Block& b) {
    std::uint64_t found = 0;
    const auto* head = static_cast<const unsigned char*>(b.base);
    const auto* foot = static_cast<const unsigned char*>(user) + b.bytes;
    auto stomped = [](const unsigned char* p) {
        for (std::size_t i = 0; i < canary_bytes; ++i) {
            if (p[i] != canary_byte) return true;
        }
        return false;
    };
    if (stomped(head)) {
        ++m_gstats.canary_underflows;
        ++found;
        std::ostringstream os;
        os << "header canary stomped on block " << user << " (" << b.bytes
           << " bytes): write before the start of the allocation";
        debug::reportViolation(m_name, "canary-underflow", os.str());
    }
    if (stomped(foot)) {
        ++m_gstats.canary_overflows;
        ++found;
        std::ostringstream os;
        os << "footer canary stomped on block " << user << " (" << b.bytes
           << " bytes): write past the end of the allocation";
        debug::reportViolation(m_name, "canary-overflow", os.str());
    }
    return found;
}

void GuardArena::deallocate(void* p) {
    if (p == nullptr) return;
    Block b{};
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_live.find(p);
        if (it == m_live.end()) {
            if (m_freed.count(p) != 0) {
                ++m_gstats.double_frees;
                ++m_stats.bad_frees;
                std::ostringstream os;
                os << "double free of block " << p;
                debug::reportViolation(m_name, "double-free", os.str());
            } else {
                ++m_gstats.bad_frees;
                ++m_stats.bad_frees;
                std::ostringstream os;
                os << "free of foreign pointer " << p << " never issued by this arena";
                debug::reportViolation(m_name, "bad-free", os.str());
            }
            return;
        }
        b = it->second;
        checkCanaries(p, b);
        m_live.erase(it);
        m_freed.insert(p);
        ++m_stats.frees;
        m_stats.bytes_in_use -= b.bytes;
        m_stats.bytes_reserved -= b.bytes;
    }
    // Poison the user region so stale reads through dangling pointers are
    // loud, then hand the block back to the wrapped arena.
    std::memset(p, poison_byte, b.bytes);
    m_under->deallocate(b.base);
}

void GuardArena::releaseCached() { m_under->releaseCached(); }

void GuardArena::forEachLive(const std::function<void(void*, std::size_t)>& cb) const {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (const auto& [user, b] : m_live) cb(user, b.bytes);
}

GuardStats GuardArena::guardStats() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    return m_gstats;
}

std::uint64_t GuardArena::checkAll() {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::uint64_t found = 0;
    for (const auto& [user, b] : m_live) found += checkCanaries(user, b);
    return found;
}

std::string GuardArena::report() const {
    std::lock_guard<std::mutex> lk(m_mutex);
    std::ostringstream os;
    os << "[exa-guard] arena '" << m_name << "': " << m_stats.allocs << " allocs, "
       << m_stats.frees << " frees, " << m_live.size() << " live block(s)";
    if (m_gstats.leaked_blocks > 0) {
        os << " [LEAK: " << m_gstats.leaked_blocks << " block(s), "
           << m_gstats.leaked_bytes << " bytes]";
    }
    if (m_gstats.double_frees > 0) os << " [double frees: " << m_gstats.double_frees << "]";
    if (m_gstats.bad_frees > 0) os << " [bad frees: " << m_gstats.bad_frees << "]";
    if (m_gstats.canary_overflows > 0) {
        os << " [canary overflows: " << m_gstats.canary_overflows << "]";
    }
    if (m_gstats.canary_underflows > 0) {
        os << " [canary underflows: " << m_gstats.canary_underflows << "]";
    }
    os << '\n';
    return os.str();
}

// --- Global arena selection ----------------------------------------------

namespace {
Arena* g_the_arena = nullptr;
}

PoolArena& thePoolArena() {
    static PoolArena arena;
    return arena;
}

MallocArena& theMallocArena() {
    static MallocArena arena;
    return arena;
}

GuardArena& theGuardArena() {
    static GuardArena arena(&thePoolArena(), "the_guard_arena");
    return arena;
}

Arena* arenaFromName(const char* name) {
    if (name == nullptr) return &thePoolArena();
    const std::string n(name);
    if (n == "malloc") return &theMallocArena();
    if (n == "guard") return &theGuardArena();
    return &thePoolArena();
}

Arena* defaultArena() { return arenaFromName(std::getenv("EXA_ARENA")); }

Arena* The_Arena() {
    if (g_the_arena == nullptr) g_the_arena = defaultArena();
    return g_the_arena;
}

void setTheArena(Arena* a) { g_the_arena = a; }

} // namespace exa
