#include "core/arena.hpp"

#include <cstdlib>
#include <new>

namespace exa {

namespace {
constexpr std::size_t alignment = 64;

void* aligned_alloc_checked(std::size_t bytes) {
    // Round up to the alignment multiple required by std::aligned_alloc.
    std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
    void* p = std::aligned_alloc(alignment, rounded);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
} // namespace

void* MallocArena::allocate(std::size_t bytes) {
    void* p = aligned_alloc_checked(bytes);
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_stats.allocs;
    ++m_stats.slow_allocs;
    m_stats.bytes_in_use += bytes;
    m_stats.bytes_reserved += bytes;
    m_stats.hwm_bytes = std::max(m_stats.hwm_bytes, m_stats.bytes_in_use);
    m_live[p] = bytes;
    return p;
}

void MallocArena::deallocate(void* p) {
    if (p == nullptr) return;
    std::size_t bytes = 0;
    {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_live.find(p);
        if (it != m_live.end()) {
            bytes = it->second;
            m_live.erase(it);
        }
        ++m_stats.frees;
        m_stats.bytes_in_use -= bytes;
        m_stats.bytes_reserved -= bytes;
    }
    std::free(p);
}

PoolArena::PoolArena(std::size_t min_block) : m_min_block(min_block) {}

PoolArena::~PoolArena() {
    for (auto& [cls, blocks] : m_free) {
        for (void* p : blocks) std::free(p);
    }
}

std::size_t PoolArena::sizeClass(std::size_t bytes) const {
    std::size_t cls = m_min_block;
    while (cls < bytes) cls <<= 1;
    return cls;
}

void* PoolArena::allocate(std::size_t bytes) {
    const std::size_t cls = sizeClass(bytes);
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_stats.allocs;
    void* p = nullptr;
    auto it = m_free.find(cls);
    if (it != m_free.end() && !it->second.empty()) {
        p = it->second.back();
        it->second.pop_back();
        ++m_stats.pool_hits;
    } else {
        p = aligned_alloc_checked(cls);
        ++m_stats.slow_allocs;
        m_stats.bytes_reserved += cls;
    }
    m_live[p] = cls;
    m_stats.bytes_in_use += cls;
    m_stats.hwm_bytes = std::max(m_stats.hwm_bytes, m_stats.bytes_in_use);
    return p;
}

void PoolArena::deallocate(void* p) {
    if (p == nullptr) return;
    std::lock_guard<std::mutex> lk(m_mutex);
    ++m_stats.frees;
    auto it = m_live.find(p);
    if (it == m_live.end()) return; // not ours; ignore
    const std::size_t cls = it->second;
    m_live.erase(it);
    m_stats.bytes_in_use -= cls;
    m_free[cls].push_back(p);
}

void PoolArena::releaseCached() {
    std::lock_guard<std::mutex> lk(m_mutex);
    for (auto& [cls, blocks] : m_free) {
        for (void* p : blocks) {
            std::free(p);
            m_stats.bytes_reserved -= cls;
        }
        blocks.clear();
    }
}

namespace {
Arena* g_the_arena = nullptr;
}

PoolArena& thePoolArena() {
    static PoolArena arena;
    return arena;
}

MallocArena& theMallocArena() {
    static MallocArena arena;
    return arena;
}

Arena* The_Arena() {
    if (g_the_arena == nullptr) g_the_arena = &thePoolArena();
    return g_the_arena;
}

void setTheArena(Arena* a) { g_the_arena = a; }

} // namespace exa
