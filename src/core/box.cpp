#include "core/box.hpp"

#include <ostream>

namespace exa {

std::vector<Box> boxDiff(const Box& a, const Box& b) {
    std::vector<Box> out;
    if (!a.ok()) return out;
    Box isect = a & b;
    if (!isect.ok()) {
        out.push_back(a);
        return out;
    }
    // Peel slabs off each dimension in turn; what remains shrinks toward
    // the intersection and is finally discarded.
    Box rem = a;
    for (int d = 0; d < 3; ++d) {
        if (rem.smallEnd(d) < isect.smallEnd(d)) {
            Box lo = rem;
            lo = Box(lo.smallEnd(),
                     [&] { IntVect h = lo.bigEnd(); h[d] = isect.smallEnd(d) - 1; return h; }());
            out.push_back(lo);
            IntVect nlo = rem.smallEnd();
            nlo[d] = isect.smallEnd(d);
            rem = Box(nlo, rem.bigEnd());
        }
        if (rem.bigEnd(d) > isect.bigEnd(d)) {
            IntVect hlo = rem.smallEnd();
            hlo[d] = isect.bigEnd(d) + 1;
            out.push_back(Box(hlo, rem.bigEnd()));
            IntVect nhi = rem.bigEnd();
            nhi[d] = isect.bigEnd(d);
            rem = Box(rem.smallEnd(), nhi);
        }
    }
    return out;
}

std::vector<Box> chopDomain(const Box& domain, const IntVect& max_size) {
    std::vector<Box> out;
    if (!domain.ok()) return out;
    // Number of cuts per dimension, then distribute the remainder so box
    // sizes differ by at most one zone.
    int ncut[3];
    for (int d = 0; d < 3; ++d) {
        ncut[d] = (domain.length(d) + max_size[d] - 1) / max_size[d];
    }
    auto edges = [&](int d) {
        std::vector<int> e(ncut[d] + 1);
        const int len = domain.length(d);
        const int base = len / ncut[d];
        const int rem = len % ncut[d];
        e[0] = domain.smallEnd(d);
        for (int c = 0; c < ncut[d]; ++c) {
            e[c + 1] = e[c] + base + (c < rem ? 1 : 0);
        }
        return e;
    };
    const auto ex = edges(0);
    const auto ey = edges(1);
    const auto ez = edges(2);
    for (int kc = 0; kc < ncut[2]; ++kc) {
        for (int jc = 0; jc < ncut[1]; ++jc) {
            for (int ic = 0; ic < ncut[0]; ++ic) {
                out.push_back(Box({ex[ic], ey[jc], ez[kc]},
                                  {ex[ic + 1] - 1, ey[jc + 1] - 1, ez[kc + 1] - 1}));
            }
        }
    }
    return out;
}

std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << '[' << b.smallEnd() << ' ' << b.bigEnd() << ']';
}

} // namespace exa
