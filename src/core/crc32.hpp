#pragma once

#include <cstddef>
#include <cstdint>

namespace exa {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
// checkpoint payloads. Incremental use: feed the previous return value
// back as `seed` to extend a running checksum across buffers.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

} // namespace exa
