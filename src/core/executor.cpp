#include "core/executor.hpp"

#include <cstdlib>
#include <cstring>

namespace exa {

Backend ExecConfig::s_backend = backendFromName(std::getenv("EXA_BACKEND"));
IntVect ExecConfig::s_tile_size = IntVect{1024000, 8, 8};
LaunchHook ExecConfig::s_hook;
int ExecConfig::s_num_streams = 4;
thread_local int ExecConfig::s_current_stream = 0;

const char* backendName(Backend b) {
    switch (b) {
        case Backend::Serial: return "serial";
        case Backend::OpenMP: return "openmp";
        case Backend::SimGpu: return "simgpu";
        case Backend::Debug: return "debug";
    }
    return "unknown";
}

Backend backendFromName(const char* name) {
    if (name == nullptr) return Backend::Serial;
    if (std::strcmp(name, "openmp") == 0) return Backend::OpenMP;
    if (std::strcmp(name, "simgpu") == 0) return Backend::SimGpu;
    if (std::strcmp(name, "debug") == 0) return Backend::Debug;
    return Backend::Serial;
}

void ExecConfig::setLaunchHook(LaunchHook h) { s_hook = std::move(h); }
void ExecConfig::clearLaunchHook() { s_hook = nullptr; }

void ExecConfig::notifyLaunch(const LaunchRecord& r) {
    if (s_hook) s_hook(r);
}

} // namespace exa
