#include "core/executor.hpp"

namespace exa {

Backend ExecConfig::s_backend = Backend::Serial;
IntVect ExecConfig::s_tile_size = IntVect{1024000, 8, 8};
LaunchHook ExecConfig::s_hook;
int ExecConfig::s_num_streams = 4;
int ExecConfig::s_current_stream = 0;

const char* backendName(Backend b) {
    switch (b) {
        case Backend::Serial: return "serial";
        case Backend::OpenMP: return "openmp";
        case Backend::SimGpu: return "simgpu";
    }
    return "unknown";
}

void ExecConfig::setLaunchHook(LaunchHook h) { s_hook = std::move(h); }
void ExecConfig::clearLaunchHook() { s_hook = nullptr; }

void ExecConfig::notifyLaunch(const LaunchRecord& r) {
    if (s_hook) s_hook(r);
}

} // namespace exa
