#pragma once

#include "core/box.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace exa {

// Which implementation a ParallelFor launch runs on. This mirrors the
// paper's single-source design: the loop body (a lambda over (i,j,k)) is
// written once and the backend decides how index space maps onto hardware.
//
//   Serial : plain triply-nested loop (the "CPU build" of the paper).
//   OpenMP : coarse-grained threading; with tiling this reproduces the
//            one-OpenMP-thread-per-tile model of Figure 1 (center).
//   SimGpu : per-zone threading semantics of Figure 1 (right). Results are
//            bit-identical to Serial; in addition every launch is reported
//            to the registered device-model hook, which charges modeled
//            V100 time (launch latency, occupancy, bandwidth).
//   Debug  : verification mode (core/debug.hpp). Each launch runs in
//            forward, reversed, and shuffled zone order against a snapshot
//            of all arena-resident state; order-dependent results and
//            same-address writes from different zones are reported as GPU
//            contract violations, naming the KernelInfo. Results remain
//            bit-identical to Serial.
enum class Backend { Serial, OpenMP, SimGpu, Debug };

const char* backendName(Backend b);
// Parse a backend name ("serial", "openmp", "simgpu", "debug"); unknown or
// null names yield Backend::Serial. The EXA_BACKEND environment variable
// is fed through this at startup to pick the initial backend.
Backend backendFromName(const char* name);

// Static per-kernel traits used by the simulated GPU device model to price
// a launch. They are the quantities the paper identifies as the real
// performance levers: arithmetic per zone, streamed bytes per zone
// (DRAM-bandwidth-bound kernels), and register pressure (occupancy and
// spilling; see the discussion of the 255-register Volta budget and
// N-isotope Jacobians).
struct KernelInfo {
    const char* name = "anonymous";
    double flops_per_zone = 50.0;
    double bytes_per_zone = 80.0;
    int regs_per_thread = 64;
    // Multiplier for data-dependent cost imbalance across zones (1 =
    // uniform). The burn driver sets this for igniting zones.
    double work_imbalance = 1.0;

    // `bytes` is per zone *and per component*: the device model multiplies
    // a launch's zone count by its ncomp, so callers that pass ncomp to
    // ParallelFor must not fold it into the byte count as well.
    static KernelInfo streaming(const char* nm, double bytes) {
        return KernelInfo{nm, bytes / 4.0, bytes, 48, 1.0};
    }
};

// A record of one ParallelFor launch, delivered to the device-model hook.
struct LaunchRecord {
    KernelInfo info;
    std::int64_t zones = 0;
    int ncomp = 1;
    int stream = 0;
};

using LaunchHook = std::function<void(const LaunchRecord&)>;

// Global execution configuration. Not thread-safe by design: the backend
// is chosen at startup (or per benchmark section), exactly like choosing
// the build/runtime configuration of the production codes.
class ExecConfig {
public:
    static Backend backend() { return s_backend; }
    static void setBackend(Backend b) { s_backend = b; }

    // True when the device model is accounting launches (drivers consult
    // this before assembling LaunchRecords for e.g. burn imbalance).
    static bool accountsLaunches() { return s_backend == Backend::SimGpu; }

    // Tile size for the OpenMP tiled backend (zones per dim; z unsplit).
    static IntVect tileSize() { return s_tile_size; }
    static void setTileSize(const IntVect& ts) { s_tile_size = ts; }

    // Device-model hook; invoked for every launch under Backend::SimGpu.
    static void setLaunchHook(LaunchHook h);
    static void clearLaunchHook();
    static void notifyLaunch(const LaunchRecord& r);

    // The CUDA-stream analogue: kernels launched from different boxes of
    // an MFIter round-robin over streams, letting the device model overlap
    // small launches (the paper's partial mitigation for small boxes).
    static int numStreams() { return s_num_streams; }
    static void setNumStreams(int n) { s_num_streams = n > 0 ? n : 1; }
    static int currentStream() { return s_current_stream; }
    static void setCurrentStream(int s) { s_current_stream = s; }

private:
    static Backend s_backend;
    static IntVect s_tile_size;
    static LaunchHook s_hook;
    static int s_num_streams;
    // Thread-local: ensemble workers each select a stream for their tenant
    // (StreamScope) and must not race on — or clobber — each other's slot.
    static thread_local int s_current_stream;
};

// Exception-safe stream selection: captures the current stream on entry
// and restores it on scope exit, replacing the manual
// setCurrentStream(...) / restore call pairs that used to bracket
// MultiFab-wide ops and driver loops (and leaked the stream on early
// return or throw). `setCurrentStream` remains the primitive underneath;
// this guard is the supported way to change streams for a region of code.
class StreamScope {
public:
    StreamScope() : m_saved(ExecConfig::currentStream()) {}
    // Convenience: enter the scope already on stream `s`.
    explicit StreamScope(int s) : StreamScope() { use(s); }
    ~StreamScope() { ExecConfig::setCurrentStream(m_saved); }
    StreamScope(const StreamScope&) = delete;
    StreamScope& operator=(const StreamScope&) = delete;

    // Select an explicit stream.
    void use(int s) { ExecConfig::setCurrentStream(s); }
    // Round-robin the stream over fab indices — the MFIter::syncStream
    // policy — so per-box launches of MultiFab-wide ops can overlap in
    // the device model.
    void useFab(std::size_t fab) {
        ExecConfig::setCurrentStream(
            static_cast<int>(fab % static_cast<std::size_t>(ExecConfig::numStreams())));
    }

private:
    int m_saved;
};

// RAII helper: set a backend for a scope, restore on exit.
class ScopedBackend {
public:
    explicit ScopedBackend(Backend b) : m_saved(ExecConfig::backend()) {
        ExecConfig::setBackend(b);
    }
    ~ScopedBackend() { ExecConfig::setBackend(m_saved); }
    ScopedBackend(const ScopedBackend&) = delete;
    ScopedBackend& operator=(const ScopedBackend&) = delete;

private:
    Backend m_saved;
};

} // namespace exa
