#include "core/debug.hpp"

#include "core/arena.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>

namespace exa::debug {

namespace {

std::mutex g_mutex;
std::vector<Violation> g_violations;

bool initialAbort() {
    const char* e = std::getenv("EXA_DEBUG_ABORT");
    return e == nullptr || std::strcmp(e, "0") != 0;
}
bool g_abort_on_violation = initialAbort();

std::int64_t envInt(const char* name, std::int64_t fallback) {
    const char* e = std::getenv(name);
    if (e == nullptr || *e == '\0') return fallback;
    return std::strtoll(e, nullptr, 10);
}

std::map<std::string, int>& checkCounts() {
    static std::map<std::string, int> counts;
    return counts;
}

// True while a LaunchCheck replay is in flight, so any ParallelFor issued
// from inside checker machinery runs plain-serial instead of recursing.
bool g_in_check = false;

} // namespace

Limits& limits() {
    static Limits l = [] {
        Limits init;
        init.checks_per_kernel =
            static_cast<int>(envInt("EXA_DEBUG_CHECKS_PER_KERNEL", init.checks_per_kernel));
        init.snapshot_byte_cap = envInt("EXA_DEBUG_SNAPSHOT_CAP", init.snapshot_byte_cap);
        init.footprint_budget = envInt("EXA_DEBUG_FOOTPRINT_BUDGET", init.footprint_budget);
        init.shuffle_zone_cap = envInt("EXA_DEBUG_SHUFFLE_CAP", init.shuffle_zone_cap);
        return init;
    }();
    return l;
}

void resetCheckCounts() {
    std::lock_guard<std::mutex> lk(g_mutex);
    checkCounts().clear();
}

void reportViolation(const std::string& source, const std::string& kind,
                     const std::string& detail) {
    {
        std::lock_guard<std::mutex> lk(g_mutex);
        g_violations.push_back({source, kind, detail});
    }
    std::fprintf(stderr, "[exa-debug] VIOLATION in '%s' (%s): %s\n", source.c_str(),
                 kind.c_str(), detail.c_str());
    if (g_abort_on_violation) {
        std::fprintf(stderr,
                     "[exa-debug] aborting (set EXA_DEBUG_ABORT=0 or "
                     "debug::setAbortOnViolation(false) to continue instead)\n");
        std::fflush(stderr);
        std::abort();
    }
}

std::size_t violationCount() {
    std::lock_guard<std::mutex> lk(g_mutex);
    return g_violations.size();
}

std::vector<Violation> violations() {
    std::lock_guard<std::mutex> lk(g_mutex);
    return g_violations;
}

void clearViolations() {
    std::lock_guard<std::mutex> lk(g_mutex);
    g_violations.clear();
}

void setAbortOnViolation(bool abort_on_violation) {
    g_abort_on_violation = abort_on_violation;
}

bool abortOnViolation() { return g_abort_on_violation; }

std::vector<std::int64_t> shuffledOrder(std::int64_t n) {
    std::vector<std::int64_t> order(static_cast<std::size_t>(n));
    for (std::int64_t l = 0; l < n; ++l) order[static_cast<std::size_t>(l)] = l;
    std::uint64_t x = 0x9E3779B97F4A7C15ull; // fixed seed: deterministic replay
    for (std::int64_t l = n - 1; l > 0; --l) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::int64_t r = static_cast<std::int64_t>((x >> 33) % (l + 1));
        std::swap(order[static_cast<std::size_t>(l)], order[static_cast<std::size_t>(r)]);
    }
    return order;
}

// --- LaunchCheck ----------------------------------------------------------

LaunchCheck::LaunchCheck(const KernelInfo& ki, std::int64_t work_items)
    : m_kernel(ki.name != nullptr ? ki.name : "anonymous"), m_items(work_items) {
    if (g_in_check) return; // re-entrant launch: run unchecked
    {
        std::lock_guard<std::mutex> lk(g_mutex);
        auto& count = checkCounts()[m_kernel];
        const int cap = limits().checks_per_kernel;
        if (cap > 0 && count >= cap) return;
        ++count;
    }
    // Snapshot every live arena block (the device-resident state).
    std::int64_t total = 0;
    forEachLiveArenaBlock([&](void* p, std::size_t bytes) {
        total += static_cast<std::int64_t>(bytes);
        m_snaps.push_back({static_cast<unsigned char*>(p), bytes, {}, {}});
    });
    if (total > limits().snapshot_byte_cap) {
        m_snaps.clear();
        return; // too much live state to double-buffer; pass through
    }
    for (auto& s : m_snaps) {
        s.baseline.assign(s.ptr, s.ptr + s.bytes);
    }
    m_active = true;
    g_in_check = true;
}

LaunchCheck::~LaunchCheck() {
    if (m_active) g_in_check = false;
}

void LaunchCheck::captureForward() {
    for (auto& s : m_snaps) s.forward.assign(s.ptr, s.ptr + s.bytes);
}

void LaunchCheck::restoreBaseline() {
    for (auto& s : m_snaps) std::memcpy(s.ptr, s.baseline.data(), s.bytes);
}

void LaunchCheck::compareAgainstForward(const char* order_name) {
    std::int64_t bad_bytes = 0;
    int bad_blocks = 0;
    const unsigned char* first_addr = nullptr;
    for (const auto& s : m_snaps) {
        if (std::memcmp(s.ptr, s.forward.data(), s.bytes) == 0) continue;
        ++bad_blocks;
        for (std::size_t b = 0; b < s.bytes; ++b) {
            if (s.ptr[b] != s.forward[b]) {
                ++bad_bytes;
                if (first_addr == nullptr) first_addr = s.ptr + b;
            }
        }
    }
    if (bad_blocks == 0) return;
    std::ostringstream os;
    os << "running the " << m_items << "-item launch in " << order_name
       << " zone order changed the result: " << bad_bytes << " byte(s) across "
       << bad_blocks << " arena block(s) differ (first at " << static_cast<const void*>(first_addr)
       << "). Some zone reads state another zone writes in the same launch; "
          "under GPU semantics this is a race.";
    reportViolation(m_kernel, "order-dependence", os.str());
}

bool LaunchCheck::shuffleWanted() const {
    return m_items <= limits().shuffle_zone_cap;
}

void LaunchCheck::computeWrittenBytes() {
    if (m_written_bytes >= 0) return;
    m_written_bytes = 0;
    for (const auto& s : m_snaps) {
        if (std::memcmp(s.baseline.data(), s.forward.data(), s.bytes) == 0) continue;
        for (std::size_t b = 0; b < s.bytes; ++b) {
            if (s.baseline[b] != s.forward[b]) ++m_written_bytes;
        }
    }
}

bool LaunchCheck::footprintWanted() {
    computeWrittenBytes();
    if (m_written_bytes == 0) return false;
    return m_items * m_written_bytes <= limits().footprint_budget;
}

void LaunchCheck::beginFootprint() {
    m_footprints.clear();
    for (std::size_t idx = 0; idx < m_snaps.size(); ++idx) {
        const auto& s = m_snaps[idx];
        if (std::memcmp(s.baseline.data(), s.forward.data(), s.bytes) == 0) continue;
        Footprint fp;
        fp.snap = idx;
        fp.shadow = s.baseline;
        fp.owner.assign(s.bytes, -1);
        m_footprints.push_back(std::move(fp));
    }
}

void LaunchCheck::footprintScan(std::int64_t item) {
    for (auto& fp : m_footprints) {
        const auto& s = m_snaps[fp.snap];
        for (std::size_t b = 0; b < s.bytes; ++b) {
            if (s.ptr[b] == fp.shadow[b]) continue;
            fp.shadow[b] = s.ptr[b];
            if (fp.owner[b] < 0 || fp.owner[b] == item) {
                fp.owner[b] = item;
                continue;
            }
            if (!m_collision_reported) {
                m_collision_reported = true;
                std::ostringstream os;
                os << "work items " << fp.owner[b] << " and " << item
                   << " both wrote byte " << static_cast<const void*>(s.ptr + b)
                   << " within one launch; per-zone writes must be keyed by the "
                      "zone's own (i,j,k[,n]).";
                reportViolation(m_kernel, "write-collision", os.str());
            }
            fp.owner[b] = item;
        }
    }
}

void LaunchCheck::finish() {
    // Whatever order ran last, the observable result of a Debug launch is
    // the forward-order (bit-identical-to-Serial) state.
    for (auto& s : m_snaps) std::memcpy(s.ptr, s.forward.data(), s.bytes);
    m_footprints.clear();
}

} // namespace exa::debug
