#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <iosfwd>
#include <ostream>

namespace exa {

// A triple of integers indexing logical (zone) space. ExaStro, like the
// production codes at the time of the paper, treats all problems as
// three-dimensional; 2-D problems use a single zone in z.
struct IntVect {
    int x = 0, y = 0, z = 0;

    constexpr IntVect() = default;
    constexpr IntVect(int i, int j, int k) : x(i), y(j), z(k) {}
    constexpr explicit IntVect(int i) : x(i), y(i), z(i) {}

    constexpr int operator[](int d) const { return d == 0 ? x : (d == 1 ? y : z); }
    int& operator[](int d) { return d == 0 ? x : (d == 1 ? y : z); }

    constexpr bool operator==(const IntVect&) const = default;

    constexpr IntVect operator+(const IntVect& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr IntVect operator-(const IntVect& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr IntVect operator*(int s) const { return {x * s, y * s, z * s}; }
    constexpr IntVect operator-() const { return {-x, -y, -z}; }

    IntVect& operator+=(const IntVect& o) { x += o.x; y += o.y; z += o.z; return *this; }
    IntVect& operator-=(const IntVect& o) { x -= o.x; y -= o.y; z -= o.z; return *this; }

    // True if every component of *this is <= / >= the corresponding
    // component of o (partial order on index space).
    constexpr bool allLE(const IntVect& o) const { return x <= o.x && y <= o.y && z <= o.z; }
    constexpr bool allGE(const IntVect& o) const { return x >= o.x && y >= o.y && z >= o.z; }

    constexpr int max() const { return std::max({x, y, z}); }
    constexpr int min() const { return std::min({x, y, z}); }

    static constexpr IntVect zero() { return {0, 0, 0}; }
    static constexpr IntVect unit() { return {1, 1, 1}; }

    // Basis vector along dimension d.
    static constexpr IntVect basis(int d) {
        return {d == 0 ? 1 : 0, d == 1 ? 1 : 0, d == 2 ? 1 : 0};
    }
};

inline constexpr IntVect min(const IntVect& a, const IntVect& b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}
inline constexpr IntVect max(const IntVect& a, const IntVect& b) {
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

// Coordinate-wise floor division that rounds toward negative infinity,
// which is what index-space coarsening requires for negative indices.
inline constexpr int coarsen_index(int i, int ratio) {
    return i < 0 ? -((-i - 1) / ratio + 1) : i / ratio;
}

inline std::ostream& operator<<(std::ostream& os, const IntVect& iv) {
    return os << '(' << iv.x << ',' << iv.y << ',' << iv.z << ')';
}

// Plain-old-data index triple used inside kernels (mirrors amrex::Dim3).
struct Dim3 {
    int x = 0, y = 0, z = 0;
};

} // namespace exa
