#include "core/fault.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

namespace exa::fault {

namespace {

struct SiteState {
    bool armed = false;
    Spec spec;
    std::int64_t hits = 0;
    std::int64_t fires = 0;
};

std::mutex g_mutex;
SiteState g_sites[nsites];
std::atomic<int> g_armed_count{0};

constexpr const char* kNames[nsites] = {
    "burn-zone-failure",   "hydro-nan-flux",      "arena-alloc-failure",
    "halo-payload-corrupt", "checkpoint-bit-flip", "migration-payload-corrupt",
    "rank-failure",        "comm-message-drop",
};

// splitmix64: a well-mixed hash of (seed, hit) for the probability mode.
std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool specFires(const Spec& sp, std::int64_t hit) {
    if (sp.probability >= 0.0) {
        const std::uint64_t h = mix(sp.seed ^ mix(static_cast<std::uint64_t>(hit)));
        const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return u < sp.probability;
    }
    if (hit < sp.start) return false;
    if (sp.count > 0 && hit >= sp.start + sp.count) return false;
    const std::int64_t stride = sp.stride > 0 ? sp.stride : 1;
    return (hit - sp.start) % stride == 0;
}

// One-time EXA_FAULTS pickup, deferred to the first registry query so
// tests that set the environment in main() (debug_main-style) are seen.
std::once_flag g_env_once;
void initFromEnvironment() {
    const char* e = std::getenv("EXA_FAULTS");
    if (e == nullptr || *e == '\0') return;
    configureFromStringOrDie(e);
}
void ensureEnvInit() { std::call_once(g_env_once, initFromEnvironment); }

} // namespace

const char* siteName(Site s) { return kNames[static_cast<int>(s)]; }

bool siteFromName(const std::string& name, Site& out) {
    for (int i = 0; i < nsites; ++i) {
        if (name == kNames[i]) {
            out = static_cast<Site>(i);
            return true;
        }
    }
    return false;
}

void arm(Site s, const Spec& spec) {
    std::lock_guard<std::mutex> lk(g_mutex);
    SiteState& st = g_sites[static_cast<int>(s)];
    if (!st.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
    st.armed = true;
    st.spec = spec;
    st.hits = 0;
    st.fires = 0;
}

void disarm(Site s) {
    std::lock_guard<std::mutex> lk(g_mutex);
    SiteState& st = g_sites[static_cast<int>(s)];
    if (st.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
    st.armed = false;
}

void disarmAll() {
    std::lock_guard<std::mutex> lk(g_mutex);
    for (SiteState& st : g_sites) st = SiteState{};
    g_armed_count.store(0, std::memory_order_relaxed);
}

void resetCounters() {
    std::lock_guard<std::mutex> lk(g_mutex);
    for (SiteState& st : g_sites) {
        st.hits = 0;
        st.fires = 0;
    }
}

bool armed(Site s) {
    ensureEnvInit();
    std::lock_guard<std::mutex> lk(g_mutex);
    return g_sites[static_cast<int>(s)].armed;
}

SiteStats stats(Site s) {
    std::lock_guard<std::mutex> lk(g_mutex);
    const SiteState& st = g_sites[static_cast<int>(s)];
    return SiteStats{st.armed, st.spec, st.hits, st.fires};
}

bool anyArmed() {
    ensureEnvInit();
    return g_armed_count.load(std::memory_order_relaxed) > 0;
}

bool shouldFire(Site s) {
    if (!anyArmed()) return false;
    std::lock_guard<std::mutex> lk(g_mutex);
    SiteState& st = g_sites[static_cast<int>(s)];
    if (!st.armed) return false;
    const std::int64_t hit = st.hits++;
    if (!specFires(st.spec, hit)) return false;
    ++st.fires;
    return true;
}

bool configureFromString(const std::string& cfg, std::string* error) {
    auto fail = [&](const std::string& why) {
        if (error != nullptr) *error = why;
        return false;
    };
    // Parse the whole string before arming anything: a config that is
    // rejected must leave the registry untouched, not half-armed up to
    // the first malformed entry.
    std::vector<std::pair<Site, Spec>> parsed;
    std::size_t pos = 0;
    while (pos < cfg.size()) {
        std::size_t end = cfg.find(';', pos);
        if (end == std::string::npos) end = cfg.size();
        const std::string entry = cfg.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty()) continue;

        const std::size_t colon = entry.find(':');
        const std::string name = entry.substr(0, colon);
        Site site;
        if (!siteFromName(name, site)) return fail("unknown site '" + name + "'");
        Spec spec;
        if (colon != std::string::npos) {
            std::size_t kpos = colon + 1;
            while (kpos < entry.size()) {
                std::size_t kend = entry.find(',', kpos);
                if (kend == std::string::npos) kend = entry.size();
                const std::string kv = entry.substr(kpos, kend - kpos);
                kpos = kend + 1;
                if (kv.empty()) continue;
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos) {
                    return fail("missing '=' in '" + kv + "'");
                }
                const std::string key = kv.substr(0, eq);
                const std::string val = kv.substr(eq + 1);
                try {
                    if (key == "start") {
                        spec.start = std::stoll(val);
                    } else if (key == "count") {
                        spec.count = std::stoll(val);
                    } else if (key == "stride") {
                        spec.stride = std::stoll(val);
                    } else if (key == "prob") {
                        spec.probability = std::stod(val);
                    } else if (key == "seed") {
                        spec.seed = std::stoull(val);
                    } else {
                        return fail("unknown key '" + key + "'");
                    }
                } catch (const std::exception&) {
                    return fail("bad value '" + val + "' for key '" + key + "'");
                }
            }
        }
        if (spec.probability > 1.0) {
            return fail("prob " + std::to_string(spec.probability) +
                        " out of [0,1] for site '" + name + "'");
        }
        parsed.emplace_back(site, spec);
    }
    for (const auto& [site, spec] : parsed) arm(site, spec);
    return true;
}

void configureFromStringOrDie(const std::string& cfg) {
    std::string err;
    if (!configureFromString(cfg, &err)) {
        std::fprintf(stderr,
                     "[exa-fault] rejecting malformed fault config \"%s\": %s\n",
                     cfg.c_str(), err.c_str());
        std::exit(2);
    }
}

} // namespace exa::fault
