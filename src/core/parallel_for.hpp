#pragma once

// The lambda-based ParallelFor abstraction — the centerpiece of the
// paper's port. Application kernels define only the work at one zone
// (i,j,k); the backend decides how index space maps to execution
// resources:
//
//   * Serial  — triply-nested loop, k outermost (Fortran-friendly order).
//   * OpenMP  — `omp parallel for` over the k (or flattened k*j) range.
//   * SimGpu  — identical arithmetic to Serial (so results are
//               bit-reproducible across backends), plus a LaunchRecord
//               sent to the device model, which charges modeled GPU time.
//
// Correctness contract (same as a real GPU launch): the body must be safe
// to run for all zones concurrently — it may write only to locations
// keyed by its own (i,j,k[,n]).

#include "core/box.hpp"
#include "core/debug.hpp"
#include "core/executor.hpp"
#include "core/real.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace exa {

namespace detail {

template <typename F>
inline void serial_for(const Box& box, F&& f) {
    const Dim3 lo = box.loDim3();
    const Dim3 hi = box.hiDim3();
    for (int k = lo.z; k <= hi.z; ++k)
        for (int j = lo.y; j <= hi.y; ++j)
            for (int i = lo.x; i <= hi.x; ++i)
                f(i, j, k);
}

template <typename F>
inline void serial_for(const Box& box, int ncomp, F&& f) {
    const Dim3 lo = box.loDim3();
    const Dim3 hi = box.hiDim3();
    for (int n = 0; n < ncomp; ++n)
        for (int k = lo.z; k <= hi.z; ++k)
            for (int j = lo.y; j <= hi.y; ++j)
                for (int i = lo.x; i <= hi.x; ++i)
                    f(i, j, k, n);
}

template <typename F>
inline void omp_for(const Box& box, F&& f) {
    const Dim3 lo = box.loDim3();
    const Dim3 hi = box.hiDim3();
#if defined(EXA_USE_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (int k = lo.z; k <= hi.z; ++k)
        for (int j = lo.y; j <= hi.y; ++j)
            for (int i = lo.x; i <= hi.x; ++i)
                f(i, j, k);
}

template <typename F>
inline void omp_for(const Box& box, int ncomp, F&& f) {
    const Dim3 lo = box.loDim3();
    const Dim3 hi = box.hiDim3();
#if defined(EXA_USE_OPENMP)
#pragma omp parallel for collapse(2) schedule(static)
#endif
    for (int k = lo.z; k <= hi.z; ++k)
        for (int j = lo.y; j <= hi.y; ++j)
            for (int n = 0; n < ncomp; ++n)
                for (int i = lo.x; i <= hi.x; ++i)
                    f(i, j, k, n);
}

inline void record_launch(const KernelInfo& ki, std::int64_t zones, int ncomp) {
    LaunchRecord r;
    r.info = ki;
    r.zones = zones;
    r.ncomp = ncomp;
    r.stream = ExecConfig::currentStream();
    ExecConfig::notifyLaunch(r);
}

} // namespace detail

// --- ParallelFor over the zones of a box -------------------------------

template <typename F>
void ParallelFor(const KernelInfo& ki, const Box& box, F&& f) {
    if (!box.ok()) return;
    switch (ExecConfig::backend()) {
        case Backend::Serial:
            detail::serial_for(box, std::forward<F>(f));
            break;
        case Backend::OpenMP:
            detail::omp_for(box, std::forward<F>(f));
            break;
        case Backend::SimGpu:
            detail::record_launch(ki, box.numPts(), 1);
            detail::serial_for(box, std::forward<F>(f));
            break;
        case Backend::Debug:
            debug::checked_for(ki, box, std::forward<F>(f));
            break;
    }
}

template <typename F>
void ParallelFor(const Box& box, F&& f) {
    ParallelFor(KernelInfo{}, box, std::forward<F>(f));
}

// --- ParallelFor over zones x components --------------------------------

template <typename F>
void ParallelFor(const KernelInfo& ki, const Box& box, int ncomp, F&& f) {
    if (!box.ok() || ncomp <= 0) return;
    switch (ExecConfig::backend()) {
        case Backend::Serial:
            detail::serial_for(box, ncomp, std::forward<F>(f));
            break;
        case Backend::OpenMP:
            detail::omp_for(box, ncomp, std::forward<F>(f));
            break;
        case Backend::SimGpu:
            detail::record_launch(ki, box.numPts(), ncomp);
            detail::serial_for(box, ncomp, std::forward<F>(f));
            break;
        case Backend::Debug:
            debug::checked_for(ki, box, ncomp, std::forward<F>(f));
            break;
    }
}

template <typename F>
void ParallelFor(const Box& box, int ncomp, F&& f) {
    ParallelFor(KernelInfo{}, box, ncomp, std::forward<F>(f));
}

// --- 1-D ParallelFor -----------------------------------------------------
//
// 1-D launches run unchecked (plain serial) under Backend::Debug: their
// targets are frequently host-side lists rather than arena state, so the
// snapshot/replay machinery of the box variants does not apply.

template <typename F>
void ParallelFor(const KernelInfo& ki, std::int64_t n, F&& f) {
    if (n <= 0) return;
    if (ExecConfig::backend() == Backend::SimGpu) {
        detail::record_launch(ki, n, 1);
    }
#if defined(EXA_USE_OPENMP)
    if (ExecConfig::backend() == Backend::OpenMP) {
#pragma omp parallel for schedule(static)
        for (std::int64_t i = 0; i < n; ++i) f(i);
        return;
    }
#endif
    for (std::int64_t i = 0; i < n; ++i) f(i);
}

template <typename F>
void ParallelFor(std::int64_t n, F&& f) {
    ParallelFor(KernelInfo{}, n, std::forward<F>(f));
}

// --- Reductions ----------------------------------------------------------
//
// Reductions are launches too (the device model charges them), but the
// accumulation order is fixed (serial zone order) on every backend except
// OpenMP so results stay deterministic.

template <typename F>
Real ParallelReduceSum(const KernelInfo& ki, const Box& box, F&& f) {
    if (!box.ok()) return 0.0;
    if (ExecConfig::backend() == Backend::SimGpu) {
        detail::record_launch(ki, box.numPts(), 1);
    }
    Real s = 0.0;
    const Dim3 lo = box.loDim3();
    const Dim3 hi = box.hiDim3();
#if defined(EXA_USE_OPENMP)
    if (ExecConfig::backend() == Backend::OpenMP) {
#pragma omp parallel for collapse(2) reduction(+ : s) schedule(static)
        for (int k = lo.z; k <= hi.z; ++k)
            for (int j = lo.y; j <= hi.y; ++j)
                for (int i = lo.x; i <= hi.x; ++i)
                    s += f(i, j, k);
        return s;
    }
#endif
    for (int k = lo.z; k <= hi.z; ++k)
        for (int j = lo.y; j <= hi.y; ++j)
            for (int i = lo.x; i <= hi.x; ++i)
                s += f(i, j, k);
    return s;
}

template <typename F>
Real ParallelReduceSum(const Box& box, F&& f) {
    return ParallelReduceSum(KernelInfo{"reduce_sum", 1, 8, 32, 1.0}, box,
                             std::forward<F>(f));
}

template <typename F>
Real ParallelReduceMax(const KernelInfo& ki, const Box& box, F&& f) {
    // Identity of max: an empty box (or empty MultiFab) reduces to -inf,
    // so that max(empty, x) == x for every finite x.
    if (!box.ok()) return -std::numeric_limits<Real>::infinity();
    if (ExecConfig::backend() == Backend::SimGpu) {
        detail::record_launch(ki, box.numPts(), 1);
    }
    Real m = -std::numeric_limits<Real>::infinity();
    const Dim3 lo = box.loDim3();
    const Dim3 hi = box.hiDim3();
#if defined(EXA_USE_OPENMP)
    if (ExecConfig::backend() == Backend::OpenMP) {
#pragma omp parallel for collapse(2) reduction(max : m) schedule(static)
        for (int k = lo.z; k <= hi.z; ++k)
            for (int j = lo.y; j <= hi.y; ++j)
                for (int i = lo.x; i <= hi.x; ++i)
                    m = std::max(m, f(i, j, k));
        return m;
    }
#endif
    for (int k = lo.z; k <= hi.z; ++k)
        for (int j = lo.y; j <= hi.y; ++j)
            for (int i = lo.x; i <= hi.x; ++i)
                m = std::max(m, f(i, j, k));
    return m;
}

template <typename F>
Real ParallelReduceMax(const Box& box, F&& f) {
    return ParallelReduceMax(KernelInfo{"reduce_max", 1, 8, 32, 1.0}, box,
                             std::forward<F>(f));
}

template <typename F>
Real ParallelReduceMin(const Box& box, F&& f) {
    return -ParallelReduceMax(box, [&](int i, int j, int k) { return -f(i, j, k); });
}

} // namespace exa
