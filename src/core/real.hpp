#pragma once

// Fundamental scalar type and numeric constants for ExaStro.
//
// Production Castro/MAESTROeX run in double precision; so do we. The
// EXA_HOST_DEVICE markers are documentation of which functions would be
// compiled for the device in a real CUDA/HIP build; in this reproduction
// all code runs on the host and the macro expands to nothing.

#define EXA_HOST_DEVICE
#define EXA_FORCE_INLINE inline __attribute__((always_inline))

namespace exa {

using Real = double;

inline constexpr Real operator"" _rt(long double v) { return static_cast<Real>(v); }
inline constexpr Real operator"" _rt(unsigned long long v) { return static_cast<Real>(v); }

namespace constants {
// CGS physical constants, as used throughout the astrophysics stack.
inline constexpr Real pi          = 3.14159265358979323846_rt;
inline constexpr Real G_newton    = 6.67430e-8_rt;    // gravitational constant [cm^3 g^-1 s^-2]
inline constexpr Real k_B         = 1.380649e-16_rt;  // Boltzmann constant [erg/K]
inline constexpr Real N_A         = 6.02214076e23_rt; // Avogadro's number [1/mol]
inline constexpr Real h_planck    = 6.62607015e-27_rt;// Planck constant [erg s]
inline constexpr Real m_e         = 9.1093837015e-28_rt; // electron mass [g]
inline constexpr Real m_u         = 1.66053906660e-24_rt; // atomic mass unit [g]
inline constexpr Real c_light     = 2.99792458e10_rt; // speed of light [cm/s]
inline constexpr Real sigma_SB    = 5.670374419e-5_rt; // Stefan-Boltzmann [erg cm^-2 s^-1 K^-4]
inline constexpr Real a_rad       = 7.5657e-15_rt;    // radiation constant [erg cm^-3 K^-4]
inline constexpr Real MeV_to_erg  = 1.60218e-6_rt;    // MeV in erg
inline constexpr Real M_sun       = 1.98892e33_rt;    // solar mass [g]
} // namespace constants

} // namespace exa
