#include "core/crc32.hpp"

#include <array>

namespace exa {

namespace {

std::array<std::uint32_t, 256> makeTable() {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
        }
        t[n] = c;
    }
    return t;
}

} // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
    static const std::array<std::uint32_t, 256> table = makeTable();
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) {
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

} // namespace exa
