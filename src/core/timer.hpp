#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace exa {

// Simple wall-clock stopwatch.
class WallTimer {
public:
    WallTimer() { start(); }
    void start() { m_t0 = clock::now(); }
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - m_t0).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point m_t0;
};

// Named accumulating timers, in the spirit of AMReX's TinyProfiler. Apps
// bracket regions with TimerRegion and the report prints inclusive time
// and call counts. This is how the benches split, e.g., multigrid time
// from nuclear-burning time (the Fig. 3 discussion).
//
// Thread-safe: TimerRegion is used inside OpenMP-backend regions, so every
// access to the entry map takes the registry mutex.
class TimerRegistry {
public:
    static TimerRegistry& instance();

    void add(const std::string& name, double seconds) {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto& e = m_entries[name];
        e.seconds += seconds;
        ++e.calls;
    }

    double seconds(const std::string& name) const {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_entries.find(name);
        return it == m_entries.end() ? 0.0 : it->second.seconds;
    }
    std::uint64_t calls(const std::string& name) const {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_entries.find(name);
        return it == m_entries.end() ? 0 : it->second.calls;
    }

    void reset() {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_entries.clear();
    }

    std::string report() const;

private:
    struct Entry {
        double seconds = 0.0;
        std::uint64_t calls = 0;
    };
    mutable std::mutex m_mutex;
    std::map<std::string, Entry> m_entries;
};

// RAII region timer: accumulates elapsed wall time into the registry.
class TimerRegion {
public:
    explicit TimerRegion(std::string name) : m_name(std::move(name)) {}
    ~TimerRegion() { TimerRegistry::instance().add(m_name, m_timer.seconds()); }
    TimerRegion(const TimerRegion&) = delete;
    TimerRegion& operator=(const TimerRegion&) = delete;

private:
    std::string m_name;
    WallTimer m_timer;
};

} // namespace exa
