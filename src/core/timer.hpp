#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace exa {

// Simple wall-clock stopwatch.
class WallTimer {
public:
    WallTimer() { start(); }
    void start() { m_t0 = clock::now(); }
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - m_t0).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point m_t0;
};

// Named accumulating timers, in the spirit of AMReX's TinyProfiler. Apps
// bracket regions with TimerRegion and the report prints inclusive time
// and call counts. This is how the benches split, e.g., multigrid time
// from nuclear-burning time (the Fig. 3 discussion).
//
// Instance-based: the registry a TimerRegion records into is
// TimerRegistry::current() — by default the process-global instance()
// (existing call sites compile and behave unchanged), but a scheduler
// that multiplexes many simulations in one process can scope a tagged
// per-tenant registry around each tenant's work with ScopedTimerRegistry,
// so tenants' timings no longer mix in one shared map. The override is
// thread-local: ensemble workers carry their tenant's registry with them.
//
// Thread-safe: TimerRegion is used inside OpenMP-backend regions, so every
// access to the entry map takes the registry mutex.
class TimerRegistry {
public:
    explicit TimerRegistry(std::string tag = "") : m_tag(std::move(tag)) {}

    // The process-global default registry (tag "").
    static TimerRegistry& instance();
    // The calling thread's active registry: the innermost
    // ScopedTimerRegistry override, or instance() when none is in scope.
    static TimerRegistry& current();

    // The per-tenant tag this registry reports under ("" = untagged).
    const std::string& tag() const { return m_tag; }

    void add(const std::string& name, double seconds) {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto& e = m_entries[name];
        e.seconds += seconds;
        ++e.calls;
    }

    double seconds(const std::string& name) const {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_entries.find(name);
        return it == m_entries.end() ? 0.0 : it->second.seconds;
    }
    std::uint64_t calls(const std::string& name) const {
        std::lock_guard<std::mutex> lk(m_mutex);
        auto it = m_entries.find(name);
        return it == m_entries.end() ? 0 : it->second.calls;
    }

    void reset() {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_entries.clear();
    }

    std::string report() const;

private:
    struct Entry {
        double seconds = 0.0;
        std::uint64_t calls = 0;
    };
    std::string m_tag;
    mutable std::mutex m_mutex;
    std::map<std::string, Entry> m_entries;
};

// RAII thread-local registry override: TimerRegions constructed on this
// thread inside the scope record into `reg` instead of instance().
class ScopedTimerRegistry {
public:
    explicit ScopedTimerRegistry(TimerRegistry* reg);
    ~ScopedTimerRegistry();
    ScopedTimerRegistry(const ScopedTimerRegistry&) = delete;
    ScopedTimerRegistry& operator=(const ScopedTimerRegistry&) = delete;

private:
    TimerRegistry* m_saved;
};

// RAII region timer: accumulates elapsed wall time into the registry that
// was current() when the region was entered — a region spanning a scope
// change still lands where it started.
class TimerRegion {
public:
    explicit TimerRegion(std::string name)
        : m_name(std::move(name)), m_registry(&TimerRegistry::current()) {}
    ~TimerRegion() { m_registry->add(m_name, m_timer.seconds()); }
    TimerRegion(const TimerRegion&) = delete;
    TimerRegion& operator=(const TimerRegion&) = delete;

private:
    std::string m_name;
    TimerRegistry* m_registry;
    WallTimer m_timer;
};

} // namespace exa
