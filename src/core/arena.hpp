#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace exa {

// Counters exported by every Arena. "slow_allocs" counts calls that had to
// go to the underlying allocator (the analogue of cudaMalloc); on the
// caching arena these become rare after warm-up, which is precisely the
// optimization the paper credits with making per-timestep temporaries
// viable on the GPU.
struct ArenaStats {
    std::uint64_t allocs = 0;        // total allocate() calls
    std::uint64_t frees = 0;         // total deallocate() calls
    std::uint64_t slow_allocs = 0;   // calls that hit the backing allocator
    std::uint64_t pool_hits = 0;     // calls satisfied from the free list
    std::uint64_t bytes_in_use = 0;  // currently handed out
    std::uint64_t bytes_reserved = 0;// handed out + cached in free lists
    std::uint64_t hwm_bytes = 0;     // high-water mark of bytes_in_use
};

// Abstract memory arena, mirroring amrex::Arena. Implementations decide
// how allocation maps onto the underlying allocator; all state that an
// application allocates through an arena is considered device-resident
// under the simulated GPU backend.
class Arena {
public:
    virtual ~Arena() = default;

    virtual void* allocate(std::size_t bytes) = 0;
    virtual void deallocate(void* p) = 0;

    // Release cached (not-in-use) memory back to the system.
    virtual void releaseCached() {}

    ArenaStats stats() const {
        std::lock_guard<std::mutex> lk(m_mutex);
        return m_stats;
    }
    void resetStats() {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_stats = ArenaStats{};
    }

protected:
    mutable std::mutex m_mutex;
    ArenaStats m_stats;
};

// Pass-through arena: every allocate() is a fresh call to the system
// allocator. This models the pre-optimization behaviour in which every
// per-timestep temporary triggered a cudaMalloc.
class MallocArena final : public Arena {
public:
    void* allocate(std::size_t bytes) override;
    void deallocate(void* p) override;

private:
    std::map<void*, std::size_t> m_live; // to account bytes on free
};

// Caching (pool) arena: frees return blocks to size-class free lists and
// later allocations of the same class are handle reuse, never touching the
// underlying allocator. Mirrors the AMReX caching arena the paper made the
// default for CUDA builds.
class PoolArena final : public Arena {
public:
    explicit PoolArena(std::size_t min_block = 64);
    ~PoolArena() override;

    void* allocate(std::size_t bytes) override;
    void deallocate(void* p) override;
    void releaseCached() override;

private:
    // Size class: smallest power of two >= max(bytes, min_block).
    std::size_t sizeClass(std::size_t bytes) const;

    std::size_t m_min_block;
    std::map<std::size_t, std::vector<void*>> m_free; // size class -> blocks
    std::map<void*, std::size_t> m_live;              // block -> size class
};

// The global arenas. The_Arena() is what MultiFabs and scratch data
// allocate from; by default it is the caching pool arena, matching the
// paper's contributed change to AMReX. setTheArena() lets the allocator
// ablation swap in the malloc arena.
Arena* The_Arena();
void setTheArena(Arena* a);
PoolArena& thePoolArena();
MallocArena& theMallocArena();

} // namespace exa
