#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace exa {

// Counters exported by every Arena. "slow_allocs" counts calls that had to
// go to the underlying allocator (the analogue of cudaMalloc); on the
// caching arena these become rare after warm-up, which is precisely the
// optimization the paper credits with making per-timestep temporaries
// viable on the GPU.
struct ArenaStats {
    std::uint64_t allocs = 0;        // total allocate() calls
    std::uint64_t frees = 0;         // total deallocate() calls of owned blocks
    std::uint64_t slow_allocs = 0;   // calls that hit the backing allocator
    std::uint64_t pool_hits = 0;     // calls satisfied from the free list
    std::uint64_t bad_frees = 0;     // deallocate() of pointers we never handed out
    std::uint64_t bytes_in_use = 0;  // currently handed out
    std::uint64_t bytes_reserved = 0;// handed out + cached in free lists
    std::uint64_t hwm_bytes = 0;     // high-water mark of bytes_in_use
};

// Abstract memory arena, mirroring amrex::Arena. Implementations decide
// how allocation maps onto the underlying allocator; all state that an
// application allocates through an arena is considered device-resident
// under the simulated GPU backend.
//
// Every live Arena is tracked in a process-wide registry so the
// Backend::Debug contract checker can snapshot/restore all device-resident
// state around a kernel launch (see core/debug.hpp).
class Arena {
public:
    Arena();
    virtual ~Arena();

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    virtual void* allocate(std::size_t bytes) = 0;
    virtual void deallocate(void* p) = 0;

    // Release cached (not-in-use) memory back to the system.
    virtual void releaseCached() {}

    // Visit every currently live (handed-out) block as (pointer, bytes).
    // Used by the debug backend to enumerate device-resident state.
    virtual void forEachLive(const std::function<void(void*, std::size_t)>& cb) const = 0;

    ArenaStats stats() const {
        std::lock_guard<std::mutex> lk(m_mutex);
        return m_stats;
    }
    void resetStats() {
        std::lock_guard<std::mutex> lk(m_mutex);
        m_stats = ArenaStats{};
    }

protected:
    mutable std::mutex m_mutex;
    ArenaStats m_stats;
};

// Visit every live block of every Arena currently alive in the process.
// The callback must not allocate from or free into any arena.
void forEachLiveArenaBlock(const std::function<void(void*, std::size_t)>& cb);

// --- Per-tenant accounting (ensemble service mode) -----------------------
//
// When one process multiplexes many simulations over a shared PoolArena,
// per-tenant byte/peak attribution needs two things the plain ArenaStats
// cannot give: a notion of *who* is allocating (a thread-local tenant id,
// set by the scheduler around each tenant's work), and exactness under a
// work-stealing scheduler — a block allocated while tenant A's step ran
// on worker 1 may be freed while A runs on worker 2, or after the run
// with no tenant scope active at all, so frees must be credited to the
// block's recorded owner, never to whoever happens to be running.

struct TenantArenaStats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytes_allocated = 0; // cumulative bytes handed out
    std::uint64_t bytes_in_use = 0;    // currently handed out
    std::uint64_t peak_bytes = 0;      // high-water mark of bytes_in_use
};

// The calling thread's current arena tenant (-1 = untagged). Thread-local:
// ensemble workers each carry their own tenant through steals.
int currentArenaTenant();

// RAII tenant tag: allocations made by this thread inside the scope are
// attributed to `tenant` by tenant-aware arenas (PoolArena). Nests; the
// previous tenant is restored on exit.
class ArenaTenantScope {
public:
    explicit ArenaTenantScope(int tenant);
    ~ArenaTenantScope();
    ArenaTenantScope(const ArenaTenantScope&) = delete;
    ArenaTenantScope& operator=(const ArenaTenantScope&) = delete;

private:
    int m_saved;
};

// Pass-through arena: every allocate() is a fresh call to the system
// allocator. This models the pre-optimization behaviour in which every
// per-timestep temporary triggered a cudaMalloc.
class MallocArena final : public Arena {
public:
    void* allocate(std::size_t bytes) override;
    void deallocate(void* p) override;
    void forEachLive(const std::function<void(void*, std::size_t)>& cb) const override;

private:
    std::map<void*, std::size_t> m_live; // to account bytes on free
};

// Caching (pool) arena: frees return blocks to size-class free lists and
// later allocations of the same class are handle reuse, never touching the
// underlying allocator. Mirrors the AMReX caching arena the paper made the
// default for CUDA builds.
class PoolArena final : public Arena {
public:
    explicit PoolArena(std::size_t min_block = 64);
    ~PoolArena() override;

    void* allocate(std::size_t bytes) override;
    void deallocate(void* p) override;
    void releaseCached() override;
    void forEachLive(const std::function<void(void*, std::size_t)>& cb) const override;

    // Size class: smallest power of two >= max(bytes, min_block). Requests
    // above the top power-of-two class fall through to a direct allocation
    // of the exact (alignment-rounded) size instead of looping forever on
    // shift overflow.
    std::size_t sizeClass(std::size_t bytes) const;

    // Per-tenant accounting (see ArenaTenantScope). Counters are in size-
    // class bytes — the same currency as ArenaStats::bytes_in_use — and
    // are updated under the arena mutex, so they are exact under any
    // thread interleaving: an allocation records its owner, and the free
    // is credited to that owner regardless of which thread (or tenant
    // scope) performs it. Stats for a tenant id never seen are all-zero.
    TenantArenaStats tenantStats(int tenant) const;
    std::vector<int> tenantIds() const;
    void resetTenantStats();

private:
    struct LiveBlock {
        std::size_t cls = 0; // size class (bytes)
        int tenant = -1;     // owner at allocation time (-1 = untagged)
    };
    std::size_t m_min_block;
    std::map<std::size_t, std::vector<void*>> m_free; // size class -> blocks
    std::map<void*, LiveBlock> m_live;                // block -> class + owner
    std::map<int, TenantArenaStats> m_tenants;
};

// Per-GuardArena diagnostic counters, beyond the common ArenaStats.
struct GuardStats {
    std::uint64_t canary_overflows = 0;  // footer canary stomped (write past end)
    std::uint64_t canary_underflows = 0; // header canary stomped (write before start)
    std::uint64_t double_frees = 0;      // deallocate() of an already-freed block
    std::uint64_t bad_frees = 0;         // deallocate() of a pointer we never issued
    std::uint64_t leaked_blocks = 0;     // live blocks remaining at report time
    std::uint64_t leaked_bytes = 0;
};

// Guarded decorator over any Arena: every allocation is bracketed by
// header/footer canary pages, freed memory is poisoned before returning to
// the underlying arena, double frees and foreign frees are detected rather
// than forwarded, and a leak report runs at destruction (process exit for
// theGuardArena()). Selectable at runtime like the pool/malloc arenas via
// EXA_ARENA=guard or setTheArena(&theGuardArena()).
//
// Violations are routed through the debug-violation reporter
// (exa::debug::reportViolation), so by default they abort the process with
// a message naming this arena; tests can disable the abort and inspect
// counters instead.
class GuardArena final : public Arena {
public:
    explicit GuardArena(Arena* underlying = nullptr, std::string name = "guard");
    ~GuardArena() override;

    void* allocate(std::size_t bytes) override;
    void deallocate(void* p) override;
    void releaseCached() override;
    void forEachLive(const std::function<void(void*, std::size_t)>& cb) const override;

    GuardStats guardStats() const;

    // Verify the canaries of every live block now (O(live blocks)).
    // Returns the number of violations found (also reported/counted).
    std::uint64_t checkAll();

    // Human-readable leak/violation summary (also printed at destruction
    // when anything is outstanding).
    std::string report() const;

    static constexpr std::size_t canary_bytes = 64;
    static constexpr unsigned char canary_byte = 0xC5;
    static constexpr unsigned char poison_byte = 0xDD;

private:
    struct Block {
        void* base;        // pointer returned by the underlying arena
        std::size_t bytes; // user-visible size
    };

    // m_mutex held; reports + counts any canary violation of `b`.
    std::uint64_t checkCanaries(void* user, const Block& b);

    Arena* m_under;
    std::string m_name;
    std::map<void*, Block> m_live;        // user pointer -> block
    std::unordered_set<void*> m_freed;    // user pointers freed and not re-issued
    GuardStats m_gstats;
};

// The global arenas. The_Arena() is what MultiFabs and scratch data
// allocate from; by default it is the caching pool arena, matching the
// paper's contributed change to AMReX, unless the EXA_ARENA environment
// variable selects another ("pool", "malloc", "guard"). setTheArena() lets
// the allocator ablation swap in any arena at runtime.
Arena* The_Arena();
void setTheArena(Arena* a);
PoolArena& thePoolArena();
MallocArena& theMallocArena();
GuardArena& theGuardArena(); // guards thePoolArena()

// The arena selected by the EXA_ARENA environment variable (nullptr name
// or an unknown name yields the pool arena). This is what The_Arena()
// falls back to when no arena has been set.
Arena* arenaFromName(const char* name);
Arena* defaultArena();

} // namespace exa
