#include "castro/validate.hpp"

#include "core/parallel_for.hpp"

#include <cmath>
#include <sstream>

namespace exa::castro {

namespace {

// Single fused pass answering "is anything wrong anywhere?". The
// detailed per-check scans below only run (to locate and describe the
// offender) when this says no — keeping the armed-but-clean guard cost
// to one parallel sweep of the state instead of four serial ones.
bool stateLooksClean(const MultiFab& s, int nspec, const StepGuardOptions& opt) {
    const int nc = s.nComp();
    const bool check_finite = opt.check_finite;
    const Real min_density = opt.min_density;
    const Real min_energy = opt.min_energy;
    const Real rtol = opt.species_sum_rtol;
    for (std::size_t f = 0; f < s.size(); ++f) {
        auto a = s.const_array(static_cast<int>(f));
        const Real bad =
            ParallelReduceMax(s.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (check_finite) {
                    for (int n = 0; n < nc; ++n) {
                        if (!std::isfinite(a(i, j, k, n))) return 1.0_rt;
                    }
                }
                const Real rho = a(i, j, k, StateLayout::URHO);
                const Real rhoE = a(i, j, k, StateLayout::UEDEN);
                if ((std::isfinite(rho) && rho <= min_density) ||
                    (std::isfinite(rhoE) && rhoE <= min_energy)) {
                    return 1.0_rt;
                }
                if (rho > min_density) {
                    Real xsum = 0.0;
                    for (int n = 0; n < nspec; ++n) {
                        xsum += a(i, j, k, StateLayout::UFS + n);
                    }
                    xsum /= rho;
                    if (!(std::abs(xsum - 1.0) <= rtol)) return 1.0_rt;
                }
                return 0.0_rt;
            });
        if (bad > 0.0) return false;
    }
    return true;
}

// First zone per fab whose species fractions have drifted off sum == 1 by
// more than rtol. Zones the consistency enforcement has already floored to
// tiny densities are skipped: their fractions are meaningless, and the
// density check owns that failure mode.
void checkSpeciesSum(const MultiFab& s, int nspec, Real rtol, Real min_density,
                     ValidationReport& rep, const std::string& label) {
    for (std::size_t f = 0; f < s.size(); ++f) {
        auto a = s.const_array(static_cast<int>(f));
        const Box& vb = s.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real rho = a(i, j, k, StateLayout::URHO);
                    if (!(rho > min_density)) continue;
                    Real xsum = 0.0;
                    for (int n = 0; n < nspec; ++n) {
                        xsum += a(i, j, k, StateLayout::UFS + n);
                    }
                    xsum /= rho;
                    if (!(std::abs(xsum - 1.0) <= rtol)) {
                        std::ostringstream os;
                        if (!label.empty()) os << label << ", ";
                        os << "fab " << f << ", zone (" << i << "," << j << ","
                           << k << "), sum X = " << xsum;
                        rep.add("species-sum-drift", os.str());
                        goto next_fab;
                    }
                }
            }
        }
    next_fab:;
    }
}

} // namespace

ValidationReport validateState(const MultiFab& state, int nspec,
                               const StepGuardOptions& opt,
                               const BurnGridStats* burn,
                               const std::string& label) {
    ValidationReport rep;
    if (!stateLooksClean(state, nspec, opt)) {
        // Something is wrong somewhere: locate and describe it.
        if (opt.check_finite) checkFinite(state, rep, label);
        checkAbove(state, StateLayout::URHO, opt.min_density, "negative-density",
                   rep, label);
        checkAbove(state, StateLayout::UEDEN, opt.min_energy, "negative-energy",
                   rep, label);
        checkSpeciesSum(state, nspec, opt.species_sum_rtol, opt.min_density, rep,
                        label);
    }
    if (burn != nullptr && burn->failures > 0) {
        const double frac =
            burn->zones > 0
                ? static_cast<double>(burn->failures) / burn->zones
                : 1.0;
        if (frac > opt.burn_failure_tol) {
            std::ostringstream os;
            if (!label.empty()) os << label << ", ";
            os << burn->failures << " of " << burn->zones
               << " zones failed to burn";
            const std::string where = burn->describeFailure();
            if (!where.empty()) os << "; first at " << where;
            rep.add("burn-failures", os.str());
        }
    }
    return rep;
}

std::int64_t repairInvalidZones(MultiFab& state, const MultiFab& snap,
                                const StepGuardOptions& opt) {
    std::int64_t repaired = 0;
    const int nc = state.nComp();
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto a = state.array(static_cast<int>(f));
        auto s = snap.const_array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    bool bad = false;
                    for (int n = 0; n < nc && !bad; ++n) {
                        bad = !std::isfinite(a(i, j, k, n));
                    }
                    const Real rho = a(i, j, k, StateLayout::URHO);
                    const Real rhoE = a(i, j, k, StateLayout::UEDEN);
                    bad = bad || !(rho > opt.min_density) ||
                          !(rhoE > opt.min_energy);
                    if (bad) {
                        for (int n = 0; n < nc; ++n) {
                            a(i, j, k, n) = s(i, j, k, n);
                        }
                        ++repaired;
                    }
                }
            }
        }
    }
    return repaired;
}

} // namespace exa::castro
