#pragma once

#include "castro/state.hpp"
#include "mesh/step_guard.hpp"
#include "microphysics/burner.hpp"

#include <cstdint>
#include <string>

namespace exa::castro {

// Post-step validation of a conserved (StateLayout) state against the
// StepGuard thresholds: NaN/Inf, density and energy floors, species-sum
// drift, and burn failures above the tolerated fraction. Shared by the
// Castro, CastroAmr, and Maestro drivers' validate callbacks.
ValidationReport validateState(const MultiFab& state, int nspec,
                               const StepGuardOptions& opt,
                               const BurnGridStats* burn = nullptr,
                               const std::string& label = "");

// ClampAndWarn repair: every zone that is non-finite or below the density/
// energy floors is overwritten (all components) from the pre-step snapshot
// fab; the caller then re-enforces thermodynamic consistency. Returns the
// number of zones repaired.
std::int64_t repairInvalidZones(MultiFab& state, const MultiFab& snap,
                                const StepGuardOptions& opt);

} // namespace exa::castro
