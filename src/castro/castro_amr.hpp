#pragma once

#include "castro/castro.hpp"
#include "castro/gravity_amr.hpp"
#include "mesh/amr_core.hpp"
#include "mesh/flux_register.hpp"
#include "mesh/interp.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace exa::castro {

// Multi-level Castro: the AMR configuration of the paper's Section V
// science run ("the stars themselves are refined by a factor of 4 at all
// points in the run ... when any material heats up to 1e9 K, we refine it
// by an additional factor of 4").
//
// Levels advance subcycled (production Castro's default): a recursive
// timeStep(lev, time, dt) advances level lev once, then level lev+1 takes
// ref_ratio substeps of dt/ref_ratio, with fine ghosts filled from
// time-interpolated coarse data (each level keeps old- and new-time
// states). At each sync point the FluxRegister repays the coarse/fine
// flux mismatch (Reflux) and fine data is averaged down, so the hierarchy
// conserves to round-off while the coarse levels do ref_ratio^lev fewer
// advances than the finest. Setting `subcycle = false` recovers the old
// non-subcycled mode (every level takes the finest dt) on the same code
// path — one substep per recursion, registers still balancing the books.
class CastroAmr : public AmrCore {
public:
    // tag(level, geometry, state, tags): set tags != 0 to refine.
    using TagFn =
        std::function<void(int lev, const Geometry&, const MultiFab&, MultiFab&)>;

    CastroAmr(const Geometry& level0_geom, const AmrInfo& info,
              const ReactionNetwork& net, const Eos& eos, const CastroOptions& opt,
              Castro::InitFn init, TagFn tag);

    // Build level 0, then regrid until the hierarchy is stable.
    void init();

    MultiFab& state(int lev) { return m_state[lev]; }
    const MultiFab& state(int lev) const { return m_state[lev]; }

    // CFL dt *for level 0*: with subcycling each level contributes its
    // CFL limit times ref_ratio^lev (its substeps shrink by the same
    // factor); without, the finest level binds the whole hierarchy.
    Real estimateDt() const;

    // Advance the whole hierarchy by dt (level 0 takes one step of dt;
    // finer levels subcycle); regrids every regrid_interval steps.
    // Returns total burn stats over all levels. With opt.guard.enabled
    // the whole-hierarchy step runs under the StepGuard retry loop —
    // snapshots hold every level's state and time levels, so a rollback
    // rewinds a partially-subcycled hierarchy — and regridding is
    // deferred to after the step is accepted, so a rollback never faces
    // a changed BoxArray.
    BurnGridStats step(Real dt);

    Real time() const { return m_time; }
    int stepCount() const { return m_nstep; }

    // --- restore path (resilience) -------------------------------------
    // Rewind the hierarchy clock to a checkpoint's time and step count
    // (after the level states have been restored, before finishRestore).
    void resetTime(Real t, int nstep) {
        m_time = t;
        m_nstep = nstep;
    }
    // Rebuild the hierarchy on a checkpoint's per-level grids when a
    // regrid has made the live layouts differ from the checkpoint's:
    // clears extra levels, resets the level count, and defines each
    // level's state (zeroed — the caller fills it from disk) on
    // BoxArray(level_boxes[lev]) with dmBuilder(ba, lev).
    void remakeForRestore(
        const std::vector<std::vector<Box>>& level_boxes,
        const std::function<DistributionMapping(const BoxArray&, int lev)>&
            dmBuilder);
    // After every level's state fab holds checkpoint data and resetTime
    // has run: rebuild the per-level companions (old-time state = state at
    // m_time, flux registers redefined — their contents are dead between
    // sync points, so a step boundary needs only fresh ones) and sync
    // AmrCore's mappings with the restored states.
    void finishRestore();

    int regrid_interval = 4;
    // Subcycle in time (fine levels take ref_ratio substeps of dt/r).
    bool subcycle = true;
    // Repay coarse/fine flux mismatches through the FluxRegister at sync
    // points. Off: averageDown alone (the pre-register behavior, which
    // leaks conservation at the coarse/fine boundary).
    bool reflux = true;

    // Retry accounting for the guarded steps of this run.
    const RetryStats& retryStats() const { return m_guard.stats(); }

    // Composite-grid self-gravity (opt.gravity == PoissonAmr only; the
    // per-level Monopole/Poisson solvers are single-level constructs and
    // the ctor rejects them for the AMR driver).
    bool hasGravity() const { return m_gravity != nullptr; }
    AmrGravity& gravityAmr() { return *m_gravity; }
    const AmrGravity& gravityAmr() const { return *m_gravity; }
    // Lifetime MG counters of the gravity solver (zeros without gravity);
    // feeds the supervisor / ensemble summaries.
    MgEvent mgTotals() const {
        return m_gravity ? m_gravity->totals() : MgEvent{};
    }

    // Load-balancer access (cost monitor, decision stats). Each level is
    // rebalanced independently after the step (and its cost history is
    // reset whenever a regrid rebuilds the level).
    Rebalancer& rebalancer() { return m_rebalancer; }
    const Rebalancer& rebalancer() const { return m_rebalancer; }

    // Conservation diagnostics: mask-aware hierarchy sums (each zone
    // counted once, at the finest level covering it), correct even
    // mid-substep when coarse and fine are out of sync.
    Real totalMass() const;
    Real totalEnergy() const;
    Real maxTemperature() const;
    // Component sum over the hierarchy, weighted by zone volume, counting
    // only zones not covered by a finer level.
    Real maskedSum(int comp) const;
    // At a sync point (after Reflux + averageDown) the masked hierarchy
    // sum and the level-0 shortcut sum must agree to round-off; step()
    // asserts this. False between sync points or after a partial repair.
    bool syncPointSumsAgree(Real rtol = 1.0e-11) const;

    // Subcycling diagnostics: advances taken by a level so far (with
    // subcycling the finest level leads by ref_ratio^lev), and the flux
    // register owned by lev (the lev-1 / lev interface), for tests and
    // the E13 bench.
    std::int64_t advanceCount(int lev) const { return m_advances[lev]; }
    const FluxRegister& fluxRegister(int lev) const { return m_flux_reg[lev]; }

    // Fill `dst` (valid+ghost) for level lev from {level data, coarser
    // level}, then apply physical BCs. dst must not be the state itself.
    // The coarse source is time-interpolated to `t` between the coarse
    // level's old and new states (clamped to the bracket).
    void fillPatch(int lev, MultiFab& dst);
    void fillPatchFrom(int lev, const MultiFab& fine_src, MultiFab& dst);
    void fillPatchAtTime(int lev, Real t, const MultiFab& fine_src, MultiFab& dst);

protected:
    void MakeNewLevelFromScratch(int lev, const BoxArray& ba,
                                 const DistributionMapping& dm) override;
    void MakeNewLevelFromCoarse(int lev, const BoxArray& ba,
                                const DistributionMapping& dm) override;
    void RemakeLevel(int lev, const BoxArray& ba,
                     const DistributionMapping& dm) override;
    void ClearLevel(int lev) override;
    void ErrorEst(int lev, MultiFab& tags) override;

private:
    // Recursive subcycled advance: level lev takes one step [time,
    // time+dt] (Strang half-burn, RK2 hydro with register accumulation,
    // half-burn), then lev+1 takes its substeps, then the sync point
    // (Reflux + averageDown + enforceConsistency) reconciles the pair.
    void timeStep(int lev, Real time, Real dt, BurnGridStats& burn,
                  CostMonitor* cost);
    void advanceLevel(int lev, Real time, Real dt, BurnGridStats& burn,
                      CostMonitor* cost);
    // One unguarded hierarchy advance of size dt starting at t0 (no
    // hierarchy-time bookkeeping, no regrid).
    BurnGridStats advanceOnce(Real t0, Real dt);
    void initLevelData(int lev, MultiFab& mf);
    void applyPhysBC(int lev, MultiFab& mf);
    // (Re)create the per-level companions of m_state[lev]: the old-time
    // state (a copy of the current state at m_time) and, for lev > 0,
    // the flux register against lev-1.
    void resetLevelCompanions(int lev);
    // End-of-step rebalance hook (after regrid): per level, feed the
    // hydro work channel, let the Rebalancer decide, and keep AmrCore's
    // mapping in sync with any migrated state.
    void maybeRebalance();

    const ReactionNetwork& m_net;
    Eos m_eos;
    CastroOptions m_opt;
    StateLayout m_layout;
    Castro::InitFn m_init;
    TagFn m_tag;
    std::vector<MultiFab> m_state;
    // Old-time states: advanceLevel rotates state into these before
    // updating, so finer levels can interpolate coarse ghosts anywhere in
    // [m_t_old, m_t_new].
    std::vector<MultiFab> m_state_old;
    std::vector<Real> m_t_old, m_t_new;
    // m_flux_reg[lev] guards the lev-1 / lev interface (unused at 0).
    std::vector<FluxRegister> m_flux_reg;
    std::vector<std::int64_t> m_advances;
    std::unique_ptr<AmrGravity> m_gravity;
    StepGuard m_guard;
    Rebalancer m_rebalancer;
    Real m_time = 0.0;
    int m_nstep = 0;
};

} // namespace exa::castro
