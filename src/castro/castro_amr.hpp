#pragma once

#include "castro/castro.hpp"
#include "mesh/amr_core.hpp"
#include "mesh/interp.hpp"

#include <functional>
#include <vector>

namespace exa::castro {

// Multi-level Castro: the AMR configuration of the paper's Section V
// science run ("the stars themselves are refined by a factor of 4 at all
// points in the run ... when any material heats up to 1e9 K, we refine it
// by an additional factor of 4").
//
// Levels advance non-subcycled (one dt, set by the finest level, for the
// whole hierarchy — Castro's no-subcycling mode): each level's ghosts are
// filled from its own data plus conservative interpolation from the
// coarser level, all levels take the same step, and fine data is averaged
// down so coarse zones under fine grids agree exactly.
class CastroAmr : public AmrCore {
public:
    // tag(level, geometry, state, tags): set tags != 0 to refine.
    using TagFn =
        std::function<void(int lev, const Geometry&, const MultiFab&, MultiFab&)>;

    CastroAmr(const Geometry& level0_geom, const AmrInfo& info,
              const ReactionNetwork& net, const Eos& eos, const CastroOptions& opt,
              Castro::InitFn init, TagFn tag);

    // Build level 0, then regrid until the hierarchy is stable.
    void init();

    MultiFab& state(int lev) { return m_state[lev]; }
    const MultiFab& state(int lev) const { return m_state[lev]; }

    // CFL dt: the finest level is the binding constraint.
    Real estimateDt() const;

    // Advance the whole hierarchy by dt; regrids every regrid_interval
    // steps. Returns total burn stats over all levels. With
    // opt.guard.enabled the whole-hierarchy step runs under the StepGuard
    // retry loop; regridding is deferred to after the step is accepted, so
    // a rollback never faces a changed BoxArray.
    BurnGridStats step(Real dt);

    Real time() const { return m_time; }
    int stepCount() const { return m_nstep; }
    int regrid_interval = 4;

    // Retry accounting for the guarded steps of this run.
    const RetryStats& retryStats() const { return m_guard.stats(); }

    // Load-balancer access (cost monitor, decision stats). Each level is
    // rebalanced independently after the step (and its cost history is
    // reset whenever a regrid rebuilds the level).
    Rebalancer& rebalancer() { return m_rebalancer; }
    const Rebalancer& rebalancer() const { return m_rebalancer; }

    // Conservation diagnostics over the hierarchy: sums on the coarsest
    // level are authoritative after average_down.
    Real totalMass() const;
    Real totalEnergy() const;
    Real maxTemperature() const;

    // Fill `dst` (valid+ghost) for level lev from {level data, coarser
    // level}, then apply physical BCs. dst must not be the state itself.
    void fillPatch(int lev, MultiFab& dst);
    void fillPatchFrom(int lev, const MultiFab& fine_src, MultiFab& dst);

protected:
    void MakeNewLevelFromScratch(int lev, const BoxArray& ba,
                                 const DistributionMapping& dm) override;
    void MakeNewLevelFromCoarse(int lev, const BoxArray& ba,
                                const DistributionMapping& dm) override;
    void RemakeLevel(int lev, const BoxArray& ba,
                     const DistributionMapping& dm) override;
    void ClearLevel(int lev) override;
    void ErrorEst(int lev, MultiFab& tags) override;

private:
    void advanceLevel(int lev, Real dt);
    // One unguarded hierarchy advance of size dt (no time bookkeeping, no
    // regrid).
    BurnGridStats advanceOnce(Real dt);
    void initLevelData(int lev, MultiFab& mf);
    void applyPhysBC(int lev, MultiFab& mf);
    // End-of-step rebalance hook (after regrid): per level, feed the
    // hydro work channel, let the Rebalancer decide, and keep AmrCore's
    // mapping in sync with any migrated state.
    void maybeRebalance();

    const ReactionNetwork& m_net;
    Eos m_eos;
    CastroOptions m_opt;
    StateLayout m_layout;
    Castro::InitFn m_init;
    TagFn m_tag;
    std::vector<MultiFab> m_state;
    StepGuard m_guard;
    Rebalancer m_rebalancer;
    Real m_time = 0.0;
    int m_nstep = 0;
};

} // namespace exa::castro
