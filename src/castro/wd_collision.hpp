#pragma once

#include "castro/castro.hpp"

#include <memory>
#include <vector>

namespace exa::castro {

// A cold hydrostatic white-dwarf model: rho(r) from integrating
// dP/dr = -G m rho / r^2 with the degenerate (HelmLite) EOS at a fixed
// low temperature. The paper's collision setup uses two equal such stars.
struct WdProfile {
    std::vector<Real> r;   // shell radii [cm]
    std::vector<Real> rho; // density at r [g/cm^3]
    Real radius = 0.0;     // surface radius [cm]
    Real mass = 0.0;       // total mass [g]
    Real rho_c = 0.0;
    Real T_iso = 0.0;

    // Linear interpolation of the density profile (0 outside the star).
    Real rhoAt(Real rr) const;
};

// Integrate hydrostatic equilibrium outward from the center.
WdProfile buildWdProfile(const Eos& eos, const ReactionNetwork& net, Real rho_c,
                         Real T_iso, const std::vector<Real>& X, int nshells = 4000);

// Section V's head-on collision: two equal white dwarfs on the x axis,
// initial center separation = separation_in_diameters stellar diameters,
// approaching at +-approach_velocity. Domain is a cube of width
// domain_width centered on the collision point.
struct WdCollisionParams {
    int ncell = 32;
    int max_grid_size = 16;
    int nranks = 1;
    Real rho_c = 5.0e6;        // central density [g/cm^3]
    Real T_star = 1.0e7;       // isothermal star temperature [K]
    Real separation_in_diameters = 2.0;
    Real approach_velocity = 2.0e8; // cm/s toward each other (each star)
    Real domain_width = 2.0e10;     // cm
    Real ambient_rho = 1.0e-3;
    Real ambient_T = 1.0e7;
    Real cfl = 0.4;
    GravityType gravity = GravityType::Monopole;
    bool do_react = true;
    Real ignition_T = 4.0e9; // the paper's detonation-imminent threshold
    // Reaction network, selected by registry name (the paper's run uses
    // the 13-isotope alpha chain). Used by the by-name build() overload;
    // ignored when a network object is passed explicitly.
    std::string network = "aprox13";

    // Canonical entry points (the ensemble ScenarioRegistry constructs
    // these by name "wd-collision" from a generic ScenarioConfig).
    // build(net) uses the caller's network; build() constructs the
    // network from the registry by `network` — any registered name is a
    // valid WD-collision scenario (unknown names throw, listing the
    // registry) — and the returned WdCollision owns it.
    struct WdCollision build(const ReactionNetwork& net) const;
    struct WdCollision build() const;
};

struct WdCollision {
    // Registry-built network, when the by-name factory was used. Declared
    // before `castro`, which holds a reference into it, so it is
    // destroyed after.
    std::unique_ptr<ReactionNetwork> network;
    std::unique_ptr<Castro> castro;
    WdProfile profile;
    WdCollisionParams params;

    // Advance until max T reaches params.ignition_T or t_max elapses.
    // Returns the ignition time (< 0 if not reached).
    Real runToIgnition(Real t_max, int max_steps = 100000);
};

[[deprecated("use WdCollisionParams::build(net), or the ensemble "
             "ScenarioRegistry (\"wd-collision\") for config-driven "
             "construction")]]
inline WdCollision makeWdCollision(const WdCollisionParams& p,
                                   const ReactionNetwork& net) {
    return p.build(net);
}

[[deprecated("use WdCollisionParams::build(), or the ensemble "
             "ScenarioRegistry (\"wd-collision\") for config-driven "
             "construction")]]
inline WdCollision makeWdCollision(const WdCollisionParams& p) {
    return p.build();
}

} // namespace exa::castro
