#pragma once

#include "castro/gravity.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/multifab.hpp"
#include "solvers/mg/composite_mg.hpp"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace exa::castro {

// Composite-grid self-gravity for CastroAmr: one FAS FMG solve of
// lap(phi) = 4 pi G rho couples every AMR level (CompositeMg), instead of
// per-level solves stitched by interpolation. The potential is solved
// once per coarse step and the resulting acceleration applied as an
// operator-split source at every level advance within that step.
//
// The solver captures the hierarchy's layouts at construction; CastroAmr
// calls noteRegrid() whenever a regrid, rebalance, or restore changes
// them, and the next solve() rebuilds. Solves are cold (initial guess 0),
// so the potential is a pure function of the density field — gravity is
// bit-identical across regrids, rebalances, and rank-failure replay.
class AmrGravity {
public:
    explicit AmrGravity(MgBC bc = MgBC::Dirichlet,
                        const CompositeMgOptions& opt = {});

    // Solve across levels 0..n-1 of the hierarchy. geoms/states are the
    // live level geometries and conserved states; ref_ratio the uniform
    // fine/coarse ratio. Rebuilds the composite solver if the layouts
    // changed since the last call.
    void solve(const std::vector<Geometry>& geoms,
               const std::vector<const MultiFab*>& states, int ref_ratio);

    // Per-level acceleration (3 components, state layout) from the last
    // solve. Valid until the next regrid.
    const MultiFab& accel(int lev) const { return m_g[lev]; }
    const MultiFab& phi(int lev) const { return m_phi[lev]; }
    int numLevels() const { return static_cast<int>(m_g.size()); }

    // Operator-split gravity source on level lev's state over dt.
    void addSource(int lev, MultiFab& state, Real dt) const;

    // The hierarchy's layouts changed (regrid / rebalance / restore):
    // rebuild the composite solver on the next solve.
    void noteRegrid() { m_dirty = true; }

    // Recovery protocol hook (mirrors Gravity::resetPoissonWarmStart):
    // solves are cold, so nothing seeds the next solve — this just drops
    // any stale potential so a restored run cannot read it by accident.
    void resetPoissonWarmStart();

    // Lifetime MG counters, accumulated across solver rebuilds.
    MgEvent totals() const;
    const CompositeMgResult& lastResult() const { return m_last; }

private:
    MgBC m_bc;
    CompositeMgOptions m_opt;
    bool m_dirty = true;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> m_layout_ids;
    std::unique_ptr<CompositeMg> m_cmg;
    std::vector<MultiFab> m_phi; // 1 ghost zone (gradient stencil)
    std::vector<MultiFab> m_g;   // acceleration, 3 components
    CompositeMgResult m_last;
    CompositeMgStats m_totals;
};

} // namespace exa::castro
