#pragma once

#include "castro/state.hpp"
#include "mesh/multifab.hpp"
#include "mesh/rebalance/cost_monitor.hpp"
#include "microphysics/burner.hpp"

namespace exa::castro {

// Options for the grid-level burn driver.
struct ReactOptions {
    OdeOptions ode;
    Real T_min = 5.0e7;   // zones cooler than this are skipped (inert)
    Real rho_min = 1.0e2; // zones more dilute than this are skipped
    // When true, the simulated device launch excludes the outlier zones
    // (cost > outlier_factor x median), which are modeled as burned on
    // the host concurrently — the paper's Section VI hybrid strategy.
    bool hybrid_cpu_outliers = false;
    double outlier_factor = 10.0;
};

// Burn every (eligible) zone of the state for dt at constant volume,
// updating species, energy, and temperature. Reports per-grid cost
// statistics and notifies the simulated device of the launch with a
// KernelInfo reflecting the network size (register pressure) and the
// measured zone-to-zone work imbalance.
//
// When `cost` is non-null, each fab's integrator-step total and wall time
// are credited to (level, fab) — the burn channel of the load balancer's
// CostMonitor.
BurnGridStats reactState(MultiFab& state, const ReactionNetwork& net, const Eos& eos,
                         Real dt, const ReactOptions& opt = ReactOptions{},
                         CostMonitor* cost = nullptr, int level = 0);

} // namespace exa::castro
