#pragma once

#include "castro/state.hpp"
#include "mesh/multifab.hpp"
#include "mesh/rebalance/cost_monitor.hpp"
#include "microphysics/batch_burner.hpp"
#include "microphysics/burner.hpp"

namespace exa::castro {

// Options for the grid-level burn driver.
struct ReactOptions {
    OdeOptions ode;
    Real T_min = 5.0e7;   // zones cooler than this are skipped (inert)
    Real rho_min = 1.0e2; // zones more dilute than this are skipped
    // When true, the simulated device launch excludes the outlier zones
    // (cost > outlier_factor x median), which are modeled as burned on
    // the host concurrently — the paper's Section VI hybrid strategy.
    // (Per-fab launch shaping for the per-zone path; the batched engine
    // has its own hybrid split in `batch`.)
    bool hybrid_cpu_outliers = false;
    double outlier_factor = 10.0;
    // Batched GPU-resident engine: gather all reacting zones of the
    // MultiFab (across fabs) into one flat SoA buffer, sort by stiffness,
    // and burn in fused device batches (BatchBurner) instead of
    // zone-at-a-time per-fab launches. Bit-identical results; radically
    // fewer, better-shaped launches.
    bool batched = false;
    BatchBurnOptions batch;
};

// What the batched engine did on the last reactState call that used it
// (gather size, batch count, tail split). For benches and tests; not
// meaningful when opt.batched is false.
const BatchBurnReport& lastBatchBurnReport();

// Burn every (eligible) zone of the state for dt at constant volume,
// updating species, energy, and temperature. Reports per-grid cost
// statistics and notifies the simulated device of the launch with a
// KernelInfo reflecting the network size (register pressure) and the
// measured zone-to-zone work imbalance.
//
// When `cost` is non-null, each fab's integrator-step total and wall time
// are credited to (level, fab) — the burn channel of the load balancer's
// CostMonitor.
BurnGridStats reactState(MultiFab& state, const ReactionNetwork& net, const Eos& eos,
                         Real dt, const ReactOptions& opt = ReactOptions{},
                         CostMonitor* cost = nullptr, int level = 0);

} // namespace exa::castro
