#include "castro/gravity.hpp"

#include "core/parallel_for.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace exa::castro {

GravityType gravityTypeFromName(const std::string& name) {
    if (name == "none") return GravityType::None;
    if (name == "monopole") return GravityType::Monopole;
    if (name == "poisson") return GravityType::Poisson;
    if (name == "poisson-amr") return GravityType::PoissonAmr;
    throw std::invalid_argument("unknown gravity type: " + name);
}

Gravity::Gravity(GravityType type, const Geometry& geom, int /*nspec*/)
    : m_type(type), m_geom(geom) {
    m_center = {0.5 * (geom.probLo(0) + geom.probHi(0)),
                0.5 * (geom.probLo(1) + geom.probHi(1)),
                0.5 * (geom.probLo(2) + geom.probHi(2))};
}

void Gravity::solve(const MultiFab& state) {
    if (m_type == GravityType::None) return;
    if (!m_defined) {
        m_g.define(state.boxArray(), state.distributionMap(), 3, 0);
        if (m_type == GravityType::Poisson || m_type == GravityType::PoissonAmr) {
            m_phi.define(state.boxArray(), state.distributionMap(), 1, 1);
            m_phi.setVal(0.0);
        }
        if (m_type == GravityType::Poisson) {
            Multigrid::Options opt;
            opt.rtol = 1.0e-9;
            m_mg = std::make_unique<Multigrid>(m_geom, MgBC::Dirichlet, opt);
        }
        m_defined = true;
    }
    if (m_type == GravityType::Monopole) {
        solveMonopole(state);
    } else if (m_type == GravityType::Poisson) {
        solvePoisson(state);
    } else {
        solvePoissonAmr(state);
    }
}

void Gravity::resetPoissonWarmStart() {
    if (m_defined &&
        (m_type == GravityType::Poisson || m_type == GravityType::PoissonAmr)) {
        m_phi.setVal(0.0);
    }
}

std::vector<MultiFab*> Gravity::rebalanceFabs() {
    std::vector<MultiFab*> fabs;
    if (!m_defined) return fabs;
    fabs.push_back(&m_g);
    if (m_type == GravityType::Poisson || m_type == GravityType::PoissonAmr) {
        fabs.push_back(&m_phi);
    }
    return fabs;
}

MgEvent Gravity::mgTotals() const {
    MgEvent e;
    if (m_cmg) {
        const CompositeMgStats& s = m_cmg->stats();
        e.fmg_cycles = s.fmg_cycles;
        e.vcycles = s.vcycles;
        e.sweeps = s.sweeps;
        e.agg_copies = s.agg_copies;
        e.agg_bytes = s.agg_bytes;
    }
    return e;
}

void Gravity::solveMonopole(const MultiFab& state) {
    // Radial mass histogram about the center.
    const Real dx = m_geom.cellSize(0);
    const Real rmax =
        0.5 * std::sqrt(3.0) *
        std::max({m_geom.probHi(0) - m_geom.probLo(0),
                  m_geom.probHi(1) - m_geom.probLo(1),
                  m_geom.probHi(2) - m_geom.probLo(2)});
    const int nbins = std::max(16, m_geom.domain().length(0));
    const Real dr = rmax / nbins;
    std::vector<Real> mass(nbins, 0.0);

    const Real vol = m_geom.cellVolume();
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.const_array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real x = m_geom.cellCenter(0, i) - m_center[0];
                    const Real y = m_geom.cellCenter(1, j) - m_center[1];
                    const Real z = m_geom.cellCenter(2, k) - m_center[2];
                    const Real r = std::sqrt(x * x + y * y + z * z);
                    const int b = std::min(static_cast<int>(r / dr), nbins - 1);
                    mass[b] += u(i, j, k, StateLayout::URHO) * vol;
                }
            }
        }
    }
    // Enclosed mass (cumulative).
    std::vector<Real> menc(nbins + 1, 0.0);
    for (int b = 0; b < nbins; ++b) menc[b + 1] = menc[b] + mass[b];

    const Real* mencp = menc.data();
    const Geometry geom = m_geom;
    const auto center = m_center;
    for (std::size_t f = 0; f < m_g.size(); ++f) {
        auto g = m_g.array(static_cast<int>(f));
        auto u = state.const_array(static_cast<int>(f));
        (void)u;
        ParallelFor(KernelInfo{"grav_monopole", 40.0, 48.0, 48, 1.0},
                    m_g.box(static_cast<int>(f)), [=](int i, int j, int k) {
                        const Real x = geom.cellCenter(0, i) - center[0];
                        const Real y = geom.cellCenter(1, j) - center[1];
                        const Real z = geom.cellCenter(2, k) - center[2];
                        const Real r =
                            std::max(std::sqrt(x * x + y * y + z * z), 0.25 * dx);
                        const int b = std::min(static_cast<int>(r / dr),
                                               static_cast<int>(nbins));
                        const Real gm = -constants::G_newton * mencp[b] / (r * r);
                        g(i, j, k, 0) = gm * x / r;
                        g(i, j, k, 1) = gm * y / r;
                        g(i, j, k, 2) = gm * z / r;
                    });
    }
}

void computeGravityAccel(const MultiFab& phi, MultiFab& g, const Geometry& geom) {
    for (std::size_t f = 0; f < g.size(); ++f) {
        auto ga = g.array(static_cast<int>(f));
        auto p = phi.const_array(static_cast<int>(f));
        const Box& vb = g.box(static_cast<int>(f));
        const Box& dom = geom.domain();
        const Geometry gm = geom;
        ParallelFor(KernelInfo{"grav_grad_phi", 20.0, 64.0, 40, 1.0}, vb,
                    [=](int i, int j, int k) {
                        auto grad = [&](int d) {
                            const IntVect e = IntVect::basis(d);
                            const IntVect lo{i - e.x, j - e.y, k - e.z};
                            const IntVect hi{i + e.x, j + e.y, k + e.z};
                            Real pm = dom.contains(lo) ? p(lo.x, lo.y, lo.z) : 0.0;
                            Real pp = dom.contains(hi) ? p(hi.x, hi.y, hi.z) : 0.0;
                            // One-sided at the domain edge (phi -> 0 far away).
                            return (pp - pm) / (2.0 * gm.cellSize(d));
                        };
                        ga(i, j, k, 0) = -grad(0);
                        ga(i, j, k, 1) = -grad(1);
                        ga(i, j, k, 2) = -grad(2);
                    });
    }
}

void applyGravitySource(MultiFab& state, const MultiFab& g, Real dt) {
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.array(static_cast<int>(f));
        auto ga = g.const_array(static_cast<int>(f));
        ParallelFor(KernelInfo{"grav_source", 30.0, 100.0, 48, 1.0},
                    state.box(static_cast<int>(f)), [=](int i, int j, int k) {
                        const Real rho = u(i, j, k, StateLayout::URHO);
                        Real mom[3] = {u(i, j, k, StateLayout::UMX),
                                       u(i, j, k, StateLayout::UMX + 1),
                                       u(i, j, k, StateLayout::UMX + 2)};
                        Real de = 0.0;
                        for (int d = 0; d < 3; ++d) {
                            const Real dm = dt * rho * ga(i, j, k, d);
                            // Trapezoidal energy source: (mom_old+mom_new)/2 . g
                            de += dt * (mom[d] + 0.5 * dm) * ga(i, j, k, d);
                            mom[d] += dm;
                            u(i, j, k, StateLayout::UMX + d) = mom[d];
                        }
                        u(i, j, k, StateLayout::UEDEN) += de;
                    });
    }
}

namespace {

// rhs = 4 pi G rho on the state's layout.
MultiFab makeGravityRhs(const MultiFab& state) {
    MultiFab rhs(state.boxArray(), state.distributionMap(), 1, 0);
    for (std::size_t f = 0; f < rhs.size(); ++f) {
        auto r = rhs.array(static_cast<int>(f));
        auto u = state.const_array(static_cast<int>(f));
        ParallelFor(rhs.box(static_cast<int>(f)), [=](int i, int j, int k) {
            r(i, j, k) = 4.0 * constants::pi * constants::G_newton *
                         u(i, j, k, StateLayout::URHO);
        });
    }
    return rhs;
}

} // namespace

void Gravity::solvePoisson(const MultiFab& state) {
    MultiFab rhs = makeGravityRhs(state);
    auto res = m_mg->solve(m_phi, rhs);
    m_last_vcycles = res.vcycles;

    // g = -grad(phi), central differences; ghost zones of phi were filled
    // by the solver's boundary logic only on its own layout, so refill.
    m_phi.FillBoundary(0, m_phi.nComp(), m_geom.periodicity());
    // Dirichlet ghost fill at physical boundaries: phi ~ 0 outside.
    computeGravityAccel(m_phi, m_g, m_geom);
}

void Gravity::solvePoissonAmr(const MultiFab& state) {
    // The composite solver captures the layout at construction; a
    // rebalance migrates the state (and m_phi/m_g with it), so rebuild on
    // any layout-id change. Solves are cold, so a rebuild costs setup
    // only — the answer is unchanged.
    if (!m_cmg || m_cmg_ba_id != state.boxArray().id() ||
        m_cmg_dm_id != state.distributionMap().id()) {
        CompositeMgOptions opt;
        opt.rtol = 1.0e-10;
        opt.nranks = state.distributionMap().numRanks();
        m_cmg = std::make_unique<CompositeMg>(
            std::vector<Geometry>{m_geom},
            std::vector<BoxArray>{state.boxArray()},
            std::vector<DistributionMapping>{state.distributionMap()}, 2,
            MgBC::Dirichlet, opt);
        m_cmg_ba_id = state.boxArray().id();
        m_cmg_dm_id = state.distributionMap().id();
    }
    MultiFab rhs = makeGravityRhs(state);
    auto res = m_cmg->solve({&m_phi}, {&rhs});
    m_last_vcycles = res.vcycles;
    m_cmg->fillCompositeGhosts({&m_phi});
    computeGravityAccel(m_phi, m_g, m_geom);
}

void Gravity::addSource(MultiFab& state, Real dt) const {
    if (m_type == GravityType::None) return;
    applyGravitySource(state, m_g, dt);
}

} // namespace exa::castro
