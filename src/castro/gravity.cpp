#include "castro/gravity.hpp"

#include "core/parallel_for.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace exa::castro {

Gravity::Gravity(GravityType type, const Geometry& geom, int /*nspec*/)
    : m_type(type), m_geom(geom) {
    m_center = {0.5 * (geom.probLo(0) + geom.probHi(0)),
                0.5 * (geom.probLo(1) + geom.probHi(1)),
                0.5 * (geom.probLo(2) + geom.probHi(2))};
}

void Gravity::solve(const MultiFab& state) {
    if (m_type == GravityType::None) return;
    if (!m_defined) {
        m_g.define(state.boxArray(), state.distributionMap(), 3, 0);
        if (m_type == GravityType::Poisson) {
            m_phi.define(state.boxArray(), state.distributionMap(), 1, 1);
            m_phi.setVal(0.0);
            Multigrid::Options opt;
            opt.rtol = 1.0e-9;
            m_mg = std::make_unique<Multigrid>(m_geom, MgBC::Dirichlet, opt);
        }
        m_defined = true;
    }
    if (m_type == GravityType::Monopole) {
        solveMonopole(state);
    } else {
        solvePoisson(state);
    }
}

void Gravity::resetPoissonWarmStart() {
    if (m_defined && m_type == GravityType::Poisson) m_phi.setVal(0.0);
}

std::vector<MultiFab*> Gravity::rebalanceFabs() {
    std::vector<MultiFab*> fabs;
    if (!m_defined) return fabs;
    fabs.push_back(&m_g);
    if (m_type == GravityType::Poisson) fabs.push_back(&m_phi);
    return fabs;
}

void Gravity::solveMonopole(const MultiFab& state) {
    // Radial mass histogram about the center.
    const Real dx = m_geom.cellSize(0);
    const Real rmax =
        0.5 * std::sqrt(3.0) *
        std::max({m_geom.probHi(0) - m_geom.probLo(0),
                  m_geom.probHi(1) - m_geom.probLo(1),
                  m_geom.probHi(2) - m_geom.probLo(2)});
    const int nbins = std::max(16, m_geom.domain().length(0));
    const Real dr = rmax / nbins;
    std::vector<Real> mass(nbins, 0.0);

    const Real vol = m_geom.cellVolume();
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.const_array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real x = m_geom.cellCenter(0, i) - m_center[0];
                    const Real y = m_geom.cellCenter(1, j) - m_center[1];
                    const Real z = m_geom.cellCenter(2, k) - m_center[2];
                    const Real r = std::sqrt(x * x + y * y + z * z);
                    const int b = std::min(static_cast<int>(r / dr), nbins - 1);
                    mass[b] += u(i, j, k, StateLayout::URHO) * vol;
                }
            }
        }
    }
    // Enclosed mass (cumulative).
    std::vector<Real> menc(nbins + 1, 0.0);
    for (int b = 0; b < nbins; ++b) menc[b + 1] = menc[b] + mass[b];

    const Real* mencp = menc.data();
    const Geometry geom = m_geom;
    const auto center = m_center;
    for (std::size_t f = 0; f < m_g.size(); ++f) {
        auto g = m_g.array(static_cast<int>(f));
        auto u = state.const_array(static_cast<int>(f));
        (void)u;
        ParallelFor(KernelInfo{"grav_monopole", 40.0, 48.0, 48, 1.0},
                    m_g.box(static_cast<int>(f)), [=](int i, int j, int k) {
                        const Real x = geom.cellCenter(0, i) - center[0];
                        const Real y = geom.cellCenter(1, j) - center[1];
                        const Real z = geom.cellCenter(2, k) - center[2];
                        const Real r =
                            std::max(std::sqrt(x * x + y * y + z * z), 0.25 * dx);
                        const int b = std::min(static_cast<int>(r / dr),
                                               static_cast<int>(nbins));
                        const Real gm = -constants::G_newton * mencp[b] / (r * r);
                        g(i, j, k, 0) = gm * x / r;
                        g(i, j, k, 1) = gm * y / r;
                        g(i, j, k, 2) = gm * z / r;
                    });
    }
}

void Gravity::solvePoisson(const MultiFab& state) {
    // rhs = 4 pi G rho.
    MultiFab rhs(state.boxArray(), state.distributionMap(), 1, 0);
    for (std::size_t f = 0; f < rhs.size(); ++f) {
        auto r = rhs.array(static_cast<int>(f));
        auto u = state.const_array(static_cast<int>(f));
        ParallelFor(rhs.box(static_cast<int>(f)), [=](int i, int j, int k) {
            r(i, j, k) = 4.0 * constants::pi * constants::G_newton *
                         u(i, j, k, StateLayout::URHO);
        });
    }
    auto res = m_mg->solve(m_phi, rhs);
    m_last_vcycles = res.vcycles;

    // g = -grad(phi), central differences; ghost zones of phi were filled
    // by the solver's boundary logic only on its own layout, so refill.
    m_phi.FillBoundary(0, m_phi.nComp(), m_geom.periodicity());
    // Dirichlet ghost fill at physical boundaries: phi ~ 0 outside.
    const Geometry geom = m_geom;
    for (std::size_t f = 0; f < m_g.size(); ++f) {
        auto g = m_g.array(static_cast<int>(f));
        auto p = m_phi.const_array(static_cast<int>(f));
        const Box& vb = m_g.box(static_cast<int>(f));
        const Box& dom = geom.domain();
        ParallelFor(KernelInfo{"grav_grad_phi", 20.0, 64.0, 40, 1.0}, vb,
                    [=](int i, int j, int k) {
                        auto grad = [&](int d) {
                            const IntVect e = IntVect::basis(d);
                            const IntVect lo{i - e.x, j - e.y, k - e.z};
                            const IntVect hi{i + e.x, j + e.y, k + e.z};
                            Real pm = dom.contains(lo) ? p(lo.x, lo.y, lo.z) : 0.0;
                            Real pp = dom.contains(hi) ? p(hi.x, hi.y, hi.z) : 0.0;
                            // One-sided at the domain edge (phi -> 0 far away).
                            return (pp - pm) / (2.0 * geom.cellSize(d));
                        };
                        g(i, j, k, 0) = -grad(0);
                        g(i, j, k, 1) = -grad(1);
                        g(i, j, k, 2) = -grad(2);
                    });
    }
}

void Gravity::addSource(MultiFab& state, Real dt) const {
    if (m_type == GravityType::None) return;
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.array(static_cast<int>(f));
        auto g = m_g.const_array(static_cast<int>(f));
        ParallelFor(KernelInfo{"grav_source", 30.0, 100.0, 48, 1.0},
                    state.box(static_cast<int>(f)), [=](int i, int j, int k) {
                        const Real rho = u(i, j, k, StateLayout::URHO);
                        Real mom[3] = {u(i, j, k, StateLayout::UMX),
                                       u(i, j, k, StateLayout::UMX + 1),
                                       u(i, j, k, StateLayout::UMX + 2)};
                        Real de = 0.0;
                        for (int d = 0; d < 3; ++d) {
                            const Real dm = dt * rho * g(i, j, k, d);
                            // Trapezoidal energy source: (mom_old+mom_new)/2 . g
                            de += dt * (mom[d] + 0.5 * dm) * g(i, j, k, d);
                            mom[d] += dm;
                            u(i, j, k, StateLayout::UMX + d) = mom[d];
                        }
                        u(i, j, k, StateLayout::UEDEN) += de;
                    });
    }
}

} // namespace exa::castro
