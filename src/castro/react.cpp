#include "castro/react.hpp"

#include "core/executor.hpp"
#include "core/parallel_for.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

namespace exa::castro {

namespace {

BatchBurnReport s_last_batch_report;

// The per-zone driver: one fab at a time, one zone at a time, one device
// launch per fab priced with the fab's measured step distribution.
BurnGridStats reactSerial(MultiFab& state, const ReactionNetwork& net,
                          const Eos& eos, Real dt, const ReactOptions& opt,
                          CostMonitor* cost, int level) {
    const int nspec = net.nspec();
    BurnGridStats stats;
    std::vector<std::int64_t> zone_steps;
    // Size the scratch to the network instead of a fixed stack buffer, so
    // large networks can't overrun it; hoist the ODE, integrator
    // workspace, and result out of the zone loops so the burn path makes
    // no per-zone heap allocations.
    std::vector<Real> X(nspec);
    BurnOde ode(net, eos, 0.0);
    BurnWorkspace ws;
    BurnResult r;

    for (std::size_t f = 0; f < state.size(); ++f) {
        CostMonitor::ScopedFabTimer fab_timer(cost, level, static_cast<int>(f));
        const std::int64_t steps_before = stats.total_steps;
        auto u = state.array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        zone_steps.clear();
        zone_steps.reserve(vb.numPts());

        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    ++stats.zones;
                    const Real rho = u(i, j, k, StateLayout::URHO);
                    const Real T = u(i, j, k, StateLayout::UTEMP);
                    if (T < opt.T_min || rho < opt.rho_min) {
                        zone_steps.push_back(1); // skip: trivially cheap
                        ++stats.total_steps;
                        stats.max_steps = std::max<std::int64_t>(stats.max_steps, 1);
                        continue;
                    }
                    for (int n = 0; n < nspec; ++n) {
                        X[n] = std::clamp(u(i, j, k, StateLayout::UFS + n) / rho,
                                          Real(0), Real(1));
                    }
                    burnZoneInto(ode, rho, T, X.data(), dt, opt.ode, ws, r);
                    if (!r.success) {
                        ++stats.failures;
                        if (!stats.first_failure.valid) {
                            stats.first_failure = {true, i, j, k,
                                                   static_cast<int>(f), -1, rho, T};
                        }
                        zone_steps.push_back(r.stats.steps + 1);
                        stats.total_steps += r.stats.steps + 1;
                        continue;
                    }
                    for (int n = 0; n < nspec; ++n) {
                        u(i, j, k, StateLayout::UFS + n) = rho * r.X[n];
                    }
                    u(i, j, k, StateLayout::UEDEN) += rho * r.e_nuc;
                    u(i, j, k, StateLayout::UTEMP) = r.T;
                    const std::int64_t steps = std::max<std::int64_t>(r.stats.steps, 1);
                    zone_steps.push_back(steps);
                    stats.total_steps += steps;
                    stats.max_steps = std::max(stats.max_steps, steps);
                }
            }
        }

        // Report the burn launch to the simulated device. Under the
        // hybrid option the outlier zones (the Section VI candidates for
        // host-side integration) are removed from the device's
        // imbalance before pricing the launch.
        if (ExecConfig::accountsLaunches() && !zone_steps.empty()) {
            std::vector<std::int64_t> sorted = zone_steps;
            std::sort(sorted.begin(), sorted.end());
            const std::int64_t median = sorted[sorted.size() / 2];
            double mean = 0.0;
            for (auto s : sorted) mean += static_cast<double>(s);
            mean /= sorted.size();
            std::int64_t device_max = sorted.back();
            std::int64_t device_zones = static_cast<std::int64_t>(sorted.size());
            if (opt.hybrid_cpu_outliers) {
                const std::int64_t cutoff = static_cast<std::int64_t>(
                    opt.outlier_factor * std::max<std::int64_t>(median, 1));
                auto firstOut =
                    std::upper_bound(sorted.begin(), sorted.end(), cutoff);
                device_zones = firstOut - sorted.begin();
                device_max = device_zones > 0 ? sorted[device_zones - 1] : 1;
                double dev_mean = 0.0;
                for (auto it = sorted.begin(); it != firstOut; ++it) {
                    dev_mean += static_cast<double>(*it);
                }
                mean = device_zones > 0 ? dev_mean / device_zones : 1.0;
            }
            const double imbalance =
                mean > 0 ? static_cast<double>(device_max) / mean : 1.0;
            LaunchRecord rec;
            rec.info = burnKernelInfo(nspec, std::max(mean, 1.0), imbalance);
            rec.zones = device_zones;
            rec.ncomp = 1;
            rec.stream = ExecConfig::currentStream();
            ExecConfig::notifyLaunch(rec);
        }

        if (cost != nullptr) {
            // Burn work channel: integrator steps this fab consumed. The
            // wall-time channel is credited by fab_timer's destructor.
            cost->addWork(level, static_cast<int>(f),
                          static_cast<double>(stats.total_steps - steps_before));
        }
    }
    return stats;
}

// The batched driver: gather every reacting zone of the MultiFab (across
// all fabs) into one flat SoA buffer, hand it to BatchBurner (stiffness
// sort, fused device batches, optional host tail), and scatter results
// back. Per-zone arithmetic — and therefore every output value and every
// bookkeeping total — is bit-identical to reactSerial; only the launch
// structure the device model sees differs.
BurnGridStats reactBatched(MultiFab& state, const ReactionNetwork& net,
                           const Eos& eos, Real dt, const ReactOptions& opt,
                           CostMonitor* cost, int level) {
    const int nspec = net.nspec();
    const int nfabs = static_cast<int>(state.size());
    BurnGridStats stats;

    const auto t_begin = std::chrono::steady_clock::now();

    // Pass 1 (host): find the reacting zones, in the serial traversal
    // order (fab, then k/j/i), so gather index order == serial zone order
    // and first-failure semantics carry over exactly.
    struct ZoneRef {
        int i, j, k;
    };
    std::vector<ZoneRef> refs;
    std::vector<std::int64_t> fab_begin(nfabs + 1, 0); // refs range per fab
    std::vector<std::int64_t> fab_skipped(nfabs, 0);
    for (int f = 0; f < nfabs; ++f) {
        fab_begin[f] = static_cast<std::int64_t>(refs.size());
        auto u = state.array(f);
        const Box& vb = state.box(f);
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    ++stats.zones;
                    const Real rho = u(i, j, k, StateLayout::URHO);
                    const Real T = u(i, j, k, StateLayout::UTEMP);
                    if (T < opt.T_min || rho < opt.rho_min) {
                        ++fab_skipped[f]; // skip: trivially cheap, 1 step
                        ++stats.total_steps;
                        stats.max_steps = std::max<std::int64_t>(stats.max_steps, 1);
                        continue;
                    }
                    refs.push_back({i, j, k});
                }
            }
        }
    }
    fab_begin[nfabs] = static_cast<std::int64_t>(refs.size());

    const std::int64_t nzones = static_cast<std::int64_t>(refs.size());
    BurnBatch batch;
    batch.resize(nspec, nzones);

    // Pass 2: gather fab state into the SoA buffer — per fab one streaming
    // launch on that fab's stream (each gathered zone writes only its own
    // slots, so the kernel is backend-safe).
    const KernelInfo gather_ki =
        KernelInfo::streaming("burn_gather", 8.0 * (nspec + 2) * 2);
    for (int f = 0; f < nfabs; ++f) {
        const std::int64_t lo = fab_begin[f], hi = fab_begin[f + 1];
        if (lo == hi) continue;
        StreamScope stream;
        stream.useFab(static_cast<std::size_t>(f));
        auto u = state.array(f);
        const ZoneRef* rp = refs.data();
        Real* rho_p = batch.rho.data();
        Real* T_p = batch.T.data();
        Real* X_p = batch.X.data();
        ParallelFor(gather_ki, hi - lo, [=](std::int64_t q) {
            const std::int64_t g = lo + q;
            const ZoneRef& zr = rp[g];
            const Real rho = u(zr.i, zr.j, zr.k, StateLayout::URHO);
            rho_p[g] = rho;
            T_p[g] = u(zr.i, zr.j, zr.k, StateLayout::UTEMP);
            for (int n = 0; n < nspec; ++n) {
                X_p[n * nzones + g] = std::clamp(
                    u(zr.i, zr.j, zr.k, StateLayout::UFS + n) / rho, Real(0),
                    Real(1));
            }
        });
    }

    // Burn the gather.
    BatchBurner burner(net, eos, opt.batch);
    burner.run(batch, dt, opt.ode);
    s_last_batch_report = burner.report();

    // Pass 3: scatter — successful zones write their own (i,j,k) back.
    const KernelInfo scatter_ki =
        KernelInfo::streaming("burn_scatter", 8.0 * (nspec + 2) * 2);
    for (int f = 0; f < nfabs; ++f) {
        const std::int64_t lo = fab_begin[f], hi = fab_begin[f + 1];
        if (lo == hi) continue;
        StreamScope stream;
        stream.useFab(static_cast<std::size_t>(f));
        auto u = state.array(f);
        const ZoneRef* rp = refs.data();
        const Real* rho_p = batch.rho.data();
        const Real* To_p = batch.T_out.data();
        const Real* Xo_p = batch.X_out.data();
        const Real* e_p = batch.e_nuc.data();
        const char* ok_p = batch.success.data();
        ParallelFor(scatter_ki, hi - lo, [=](std::int64_t q) {
            const std::int64_t g = lo + q;
            if (!ok_p[g]) return;
            const ZoneRef& zr = rp[g];
            const Real rho = rho_p[g];
            for (int n = 0; n < nspec; ++n) {
                u(zr.i, zr.j, zr.k, StateLayout::UFS + n) =
                    rho * Xo_p[n * nzones + g];
            }
            u(zr.i, zr.j, zr.k, StateLayout::UEDEN) += rho * e_p[g];
            u(zr.i, zr.j, zr.k, StateLayout::UTEMP) = To_p[g];
        });
    }

    // Bookkeeping, replicating the serial semantics exactly: failures
    // count steps+1 and leave max_steps alone; successes count
    // max(steps, 1). Gather order is serial order, so the first failing
    // gather index is the serial first_failure.
    std::vector<std::int64_t> fab_steps(nfabs, 0);
    for (int f = 0; f < nfabs; ++f) {
        fab_steps[f] = fab_skipped[f];
        for (std::int64_t g = fab_begin[f]; g < fab_begin[f + 1]; ++g) {
            if (!batch.success[g]) {
                ++stats.failures;
                if (!stats.first_failure.valid) {
                    stats.first_failure = {true,
                                           refs[g].i,
                                           refs[g].j,
                                           refs[g].k,
                                           f,
                                           -1,
                                           batch.rho[g],
                                           batch.T[g]};
                }
                fab_steps[f] += batch.steps[g] + 1;
                stats.total_steps += batch.steps[g] + 1;
                continue;
            }
            const std::int64_t steps = std::max<std::int64_t>(batch.steps[g], 1);
            fab_steps[f] += steps;
            stats.total_steps += steps;
            stats.max_steps = std::max(stats.max_steps, steps);
        }
    }

    if (cost != nullptr) {
        // The batch burns all fabs in one fused pass, so there is no
        // per-fab timer scope; credit each fab's work channel with its
        // measured steps and split the measured wall time in proportion.
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t_begin)
                .count();
        for (int f = 0; f < nfabs; ++f) {
            cost->addWork(level, f, static_cast<double>(fab_steps[f]));
            if (stats.total_steps > 0) {
                cost->addTime(level, f,
                              wall * static_cast<double>(fab_steps[f]) /
                                  static_cast<double>(stats.total_steps));
            }
        }
    }
    return stats;
}

} // namespace

const BatchBurnReport& lastBatchBurnReport() { return s_last_batch_report; }

BurnGridStats reactState(MultiFab& state, const ReactionNetwork& net, const Eos& eos,
                         Real dt, const ReactOptions& opt, CostMonitor* cost,
                         int level) {
    if (opt.batched) {
        return reactBatched(state, net, eos, dt, opt, cost, level);
    }
    return reactSerial(state, net, eos, dt, opt, cost, level);
}

} // namespace exa::castro
