#include "castro/react.hpp"

#include "core/executor.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace exa::castro {

BurnGridStats reactState(MultiFab& state, const ReactionNetwork& net, const Eos& eos,
                         Real dt, const ReactOptions& opt, CostMonitor* cost,
                         int level) {
    const int nspec = net.nspec();
    BurnGridStats stats;
    std::vector<std::int64_t> zone_steps;
    // Serial per-zone loop: size the scratch to the network instead of a
    // fixed stack buffer, so large networks can't overrun it.
    std::vector<Real> X(nspec);

    for (std::size_t f = 0; f < state.size(); ++f) {
        CostMonitor::ScopedFabTimer fab_timer(cost, level, static_cast<int>(f));
        const std::int64_t steps_before = stats.total_steps;
        auto u = state.array(static_cast<int>(f));
        const Box& vb = state.box(static_cast<int>(f));
        zone_steps.clear();
        zone_steps.reserve(vb.numPts());

        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    ++stats.zones;
                    const Real rho = u(i, j, k, StateLayout::URHO);
                    const Real T = u(i, j, k, StateLayout::UTEMP);
                    if (T < opt.T_min || rho < opt.rho_min) {
                        zone_steps.push_back(1); // skip: trivially cheap
                        ++stats.total_steps;
                        stats.max_steps = std::max<std::int64_t>(stats.max_steps, 1);
                        continue;
                    }
                    for (int n = 0; n < nspec; ++n) {
                        X[n] = std::clamp(u(i, j, k, StateLayout::UFS + n) / rho,
                                          Real(0), Real(1));
                    }
                    auto r = burnZone(net, eos, rho, T, X.data(), dt, opt.ode);
                    if (!r.success) {
                        ++stats.failures;
                        if (!stats.first_failure.valid) {
                            stats.first_failure = {true, i, j, k,
                                                   static_cast<int>(f), -1, rho, T};
                        }
                        zone_steps.push_back(r.stats.steps + 1);
                        stats.total_steps += r.stats.steps + 1;
                        continue;
                    }
                    for (int n = 0; n < nspec; ++n) {
                        u(i, j, k, StateLayout::UFS + n) = rho * r.X[n];
                    }
                    u(i, j, k, StateLayout::UEDEN) += rho * r.e_nuc;
                    u(i, j, k, StateLayout::UTEMP) = r.T;
                    const std::int64_t steps = std::max<std::int64_t>(r.stats.steps, 1);
                    zone_steps.push_back(steps);
                    stats.total_steps += steps;
                    stats.max_steps = std::max(stats.max_steps, steps);
                }
            }
        }

        // Report the burn launch to the simulated device. Under the
        // hybrid option the outlier zones (the Section VI candidates for
        // host-side integration) are removed from the device's
        // imbalance before pricing the launch.
        if (ExecConfig::accountsLaunches() && !zone_steps.empty()) {
            std::vector<std::int64_t> sorted = zone_steps;
            std::sort(sorted.begin(), sorted.end());
            const std::int64_t median = sorted[sorted.size() / 2];
            double mean = 0.0;
            for (auto s : sorted) mean += static_cast<double>(s);
            mean /= sorted.size();
            std::int64_t device_max = sorted.back();
            std::int64_t device_zones = static_cast<std::int64_t>(sorted.size());
            if (opt.hybrid_cpu_outliers) {
                const std::int64_t cutoff = static_cast<std::int64_t>(
                    opt.outlier_factor * std::max<std::int64_t>(median, 1));
                auto firstOut =
                    std::upper_bound(sorted.begin(), sorted.end(), cutoff);
                device_zones = firstOut - sorted.begin();
                device_max = device_zones > 0 ? sorted[device_zones - 1] : 1;
                double dev_mean = 0.0;
                for (auto it = sorted.begin(); it != firstOut; ++it) {
                    dev_mean += static_cast<double>(*it);
                }
                mean = device_zones > 0 ? dev_mean / device_zones : 1.0;
            }
            const double imbalance =
                mean > 0 ? static_cast<double>(device_max) / mean : 1.0;
            LaunchRecord rec;
            rec.info = burnKernelInfo(nspec, std::max(mean, 1.0), imbalance);
            rec.zones = device_zones;
            rec.ncomp = 1;
            rec.stream = ExecConfig::currentStream();
            ExecConfig::notifyLaunch(rec);
        }

        if (cost != nullptr) {
            // Burn work channel: integrator steps this fab consumed. The
            // wall-time channel is credited by fab_timer's destructor.
            cost->addWork(level, static_cast<int>(f),
                          static_cast<double>(stats.total_steps - steps_before));
        }
    }
    return stats;
}

} // namespace exa::castro
