#include "castro/sedov.hpp"

#include <cmath>

namespace exa::castro {

std::unique_ptr<Castro> SedovParams::build(const ReactionNetwork& net) const {
    const SedovParams& p = *this;
    Box domain({0, 0, 0}, {p.ncell - 1, p.ncell - 1, p.ncell - 1});
    Geometry geom(domain, {0, 0, 0}, {1, 1, 1});
    BoxArray ba(domain);
    ba.maxSize(p.max_grid_size);
    DistributionMapping dm(ba, p.nranks);

    CastroOptions opt;
    opt.cfl = p.cfl;
    opt.bc = DomainBC::allOutflow();
    opt.guard = p.guard;
    opt.rebalance = p.rebalance;

    Eos eos{GammaLawEos{p.gamma}};
    auto castro = std::make_unique<Castro>(geom, ba, dm, net, eos, opt);

    const Real r_init = p.r_init > 0 ? p.r_init : 2.0 * geom.cellSize(0);
    // Deposited energy spread uniformly over the initial sphere.
    const Real vol = (4.0 / 3.0) * constants::pi * r_init * r_init * r_init;
    const Real e_in = p.E / (vol * p.rho0); // specific internal energy
    const Real gamma = p.gamma;
    const Real p_in = (gamma - 1.0) * p.rho0 * e_in;
    const int nspec = net.nspec();

    castro->initialize([=](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = p.rho0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r_init ? p_in : p.p0;
        zn.X.assign(nspec, 0.0);
        zn.X[0] = 1.0;
        return zn;
    });
    return castro;
}

Real sedovShockRadius(Real t, Real E, Real rho0, Real gamma) {
    // alpha for gamma = 1.4 in 3-D; mild gamma dependence is ignored for
    // other values (verification uses gamma = 1.4).
    (void)gamma;
    const Real alpha = 0.851;
    return std::pow(E * t * t / (alpha * rho0), 0.2);
}

Real measureShockRadius(const Castro& c, Real rho0, Real jump_frac) {
    const auto& s = c.state();
    const Geometry& g = c.geom();
    Real rmax = 0.0;
    for (std::size_t b = 0; b < s.size(); ++b) {
        auto u = s.const_array(static_cast<int>(b));
        const Box& vb = s.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    if (u(i, j, k, StateLayout::URHO) > (1.0 + jump_frac) * rho0) {
                        const Real x = g.cellCenter(0, i) - 0.5;
                        const Real y = g.cellCenter(1, j) - 0.5;
                        const Real z = g.cellCenter(2, k) - 0.5;
                        rmax = std::max(rmax, std::sqrt(x * x + y * y + z * z));
                    }
                }
    }
    return rmax;
}

} // namespace exa::castro
