#pragma once

#include "castro/state.hpp"
#include "core/array4.hpp"
#include "mesh/multifab.hpp"
#include "microphysics/eos.hpp"
#include "microphysics/network.hpp"

namespace exa::castro {

// The unsplit finite-volume hydrodynamics core: piecewise-linear (MC
// limited) reconstruction + HLLC Riemann solver, evaluated zone-by-zone
// in the per-thread style the paper's GPU port introduced — the slope at
// each face is recomputed redundantly by each zone instead of being
// staged through tile-local scratch arrays ("Converting this to a fully
// thread parallel format required redundantly calculating two slopes for
// each zone ... but exposed massive parallelism", Section III).

// Derive primitive variables q over `region` from conserved state u
// (which must be valid there), using the EOS for p and cs.
void conservedToPrimitive(Array4<const Real> u, Array4<Real> q, const Box& region,
                          const ReactionNetwork& net, const Eos& eos);

// Reconstruction scheme: piecewise linear (MC limiter) or the piecewise
// parabolic method. Production Castro uses PPM; PLM is the cheaper
// default here. Both are written in the per-zone redundant-recompute
// style.
enum class Reconstruction { PLM, PPM };

// MC-limited slope of primitive component n along dim at (i,j,k).
EXA_HOST_DEVICE Real mcSlope(Array4<const Real> q, int i, int j, int k, int n,
                             int dim);

// Limited PPM parabola edges (qm at the low face, qp at the high face) of
// zone (i,j,k) for component n along dim (Colella & Woodward 1984
// monotonization). Needs q valid over +-2 zones.
EXA_HOST_DEVICE void ppmEdges(Array4<const Real> q, int i, int j, int k, int n,
                              int dim, Real& qm, Real& qp);

// HLLC flux for the Euler system + passive species, from left/right
// primitive states (PrimLayout order, including QREINT and QC, so no
// gamma assumption enters — the solver works for any convex EOS). flux
// has StateLayout(nspec).ncomp() entries (the UTEMP slot is set to zero).
void hllcFlux(const Real* ql, const Real* qr, int nspec, int dim, Real* flux);

// Ghost-zone stencil width of the reconstruction: how far molRhs reads
// past a region it updates (PLM: 1 face + 1 slope zone; PPM: +-2 around
// each face). This is the width the interior/boundary partition uses —
// zones deeper than this inside the valid box never see ghost data.
inline int stencilWidth(Reconstruction recon) {
    return recon == Reconstruction::PPM ? 3 : 2;
}

// Compute dU/dt (the method-of-lines RHS) over each fab's valid box from
// state ghosts already filled. Returns fluxes per dimension if `fluxes`
// is non-null (face-indexed MultiFabs, for refluxing/conservation checks).
void molRhs(const MultiFab& state, MultiFab& dudt, const Geometry& geom,
            const ReactionNetwork& net, const Eos& eos,
            std::array<MultiFab, 3>* fluxes = nullptr,
            Reconstruction recon = Reconstruction::PLM);

// Region-restricted RHS: the same kernels, evaluated only over `region`
// (a subset of fab `fab`'s valid box), reading state over
// grow(region, stencilWidth(recon)). Sweeping any disjoint cover of the
// valid box — e.g. a CopierCache interior partition's interior box while
// a halo exchange is in flight, then the boundary shell after finish() —
// reproduces the fused molRhs bit-for-bit, because every zone's update is
// a pure function of the input state.
void molRhsRegion(const MultiFab& state, MultiFab& dudt, int fab, const Box& region,
                  const Geometry& geom, const ReactionNetwork& net, const Eos& eos,
                  std::array<MultiFab, 3>* fluxes = nullptr,
                  Reconstruction recon = Reconstruction::PLM);

// CFL timestep: min over zones of dx_d / (|u_d| + cs).
Real estimateDt(const MultiFab& state, const Geometry& geom,
                const ReactionNetwork& net, const Eos& eos, Real cfl);

// Reset derived quantities after an update: clamp small/negative density,
// renormalize species, recompute temperature from the EOS.
void enforceConsistency(MultiFab& state, const ReactionNetwork& net, const Eos& eos,
                        Real small_dens = 1.0e-12);

} // namespace exa::castro
