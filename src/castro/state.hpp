#pragma once

#include "core/real.hpp"

namespace exa::castro {

// Conserved-state component layout for Castro-mini. Mirrors Castro's
// state: density, momenta, total energy density, followed by partial
// densities rho*X_k for the nspec network species. Temperature is carried
// as a derived convenience component (kept consistent by the EOS after
// every update), as Castro does with UTEMP.
struct StateLayout {
    explicit StateLayout(int nspec_in) : nspec(nspec_in) {}

    int nspec = 0;

    static constexpr int URHO = 0;
    static constexpr int UMX = 1;
    static constexpr int UMY = 2;
    static constexpr int UMZ = 3;
    static constexpr int UEDEN = 4; // rho E (internal + kinetic)
    static constexpr int UTEMP = 5;
    static constexpr int UFS = 6; // first species: rho X_0

    int ncomp() const { return UFS + nspec; }
};

// Primitive-variable layout used inside the hydro kernels.
struct PrimLayout {
    explicit PrimLayout(int nspec_in) : nspec(nspec_in) {}

    int nspec = 0;

    static constexpr int QRHO = 0;
    static constexpr int QU = 1;
    static constexpr int QV = 2;
    static constexpr int QW = 3;
    static constexpr int QP = 4;
    static constexpr int QREINT = 5; // rho * e (needed by the Riemann solver)
    static constexpr int QC = 6;     // sound speed (not reconstructed)
    static constexpr int QFS = 7;    // first species mass fraction

    int ncomp() const { return QFS + nspec; }
};

} // namespace exa::castro
