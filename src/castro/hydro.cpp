#include "castro/hydro.hpp"

#include "core/executor.hpp"
#include "core/fault.hpp"
#include "core/parallel_for.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace exa::castro {

namespace {

// The per-zone cost parameters describe the *production* Castro kernels
// the device model is standing in for (PPM reconstruction with
// characteristic tracing, dual-energy bookkeeping, Helmholtz EOS calls),
// which are richer than the PLM+HLLC scheme implemented here. They are
// calibrated so the modeled single-V100 Sedov throughput lands near the
// paper's ~25 zones/usec (Section IV).
KernelInfo primKernel(int nspec) {
    return KernelInfo{"hydro_ctoprim", 1100.0 + 30.0 * nspec, 400.0 + 16.0 * nspec,
                      96, 1.0};
}
KernelInfo fluxKernel(int nspec) {
    return KernelInfo{"hydro_flux", 3300.0 + 60.0 * nspec, 1250.0 + 32.0 * nspec, 168,
                      1.0};
}
KernelInfo updateKernel(int nspec) {
    return KernelInfo{"cons_update", 140.0 + 8.0 * nspec, 360.0 + 24.0 * nspec, 64,
                      1.0};
}

// The per-zone kernels below keep species scratch in fixed stack arrays
// (GPU register idiom: X[32], ql/qr[40]); a network wider than that would
// silently overrun them. Reject it loudly instead.
constexpr int max_kernel_nspec = 32;
void checkKernelSpeciesLimit(int nspec) {
    if (nspec > max_kernel_nspec) {
        throw std::invalid_argument(
            "castro hydro kernels support at most " +
            std::to_string(max_kernel_nspec) + " species, got " +
            std::to_string(nspec));
    }
}

} // namespace

void conservedToPrimitive(Array4<const Real> u, Array4<Real> q, const Box& region,
                          const ReactionNetwork& net, const Eos& eos) {
    const int nspec = net.nspec();
    checkKernelSpeciesLimit(nspec);
    const PrimLayout Q(nspec);
    constexpr int URHO = StateLayout::URHO;
    constexpr int UMX = StateLayout::UMX;
    constexpr int UEDEN = StateLayout::UEDEN;
    constexpr int UFS = StateLayout::UFS;
    const ReactionNetwork* netp = &net;
    const Eos* eosp = &eos;
    ParallelFor(primKernel(nspec), region, [=](int i, int j, int k) {
        const Real rho = std::max(u(i, j, k, URHO), Real(1.0e-30));
        const Real rinv = 1.0 / rho;
        const Real vx = u(i, j, k, UMX) * rinv;
        const Real vy = u(i, j, k, UMX + 1) * rinv;
        const Real vz = u(i, j, k, UMX + 2) * rinv;
        Real X[32];
        for (int n = 0; n < nspec; ++n) {
            X[n] = std::clamp(u(i, j, k, UFS + n) * rinv, Real(0), Real(1));
        }
        const Real ke = 0.5 * (vx * vx + vy * vy + vz * vz);
        const Real e = std::max(u(i, j, k, UEDEN) * rinv - ke, Real(1.0e-30));
        EosState s;
        s.rho = rho;
        s.e = e;
        s.abar = netp->abar(X);
        s.ye = netp->ye(X);
        eosp->rhoE(s);
        q(i, j, k, PrimLayout::QRHO) = rho;
        q(i, j, k, PrimLayout::QU) = vx;
        q(i, j, k, PrimLayout::QV) = vy;
        q(i, j, k, PrimLayout::QW) = vz;
        q(i, j, k, PrimLayout::QP) = s.p;
        q(i, j, k, PrimLayout::QREINT) = rho * e;
        q(i, j, k, PrimLayout::QC) = s.cs;
        for (int n = 0; n < nspec; ++n) q(i, j, k, PrimLayout::QFS + n) = X[n];
    });
}

Real mcSlope(Array4<const Real> q, int i, int j, int k, int n, int dim) {
    const IntVect e = IntVect::basis(dim);
    const Real qm = q(i - e.x, j - e.y, k - e.z, n);
    const Real q0 = q(i, j, k, n);
    const Real qp = q(i + e.x, j + e.y, k + e.z, n);
    const Real dl = q0 - qm;
    const Real dr = qp - q0;
    if (dl * dr <= 0.0) return 0.0;
    const Real dc = 0.5 * (dl + dr);
    const Real lim = 2.0 * std::min(std::abs(dl), std::abs(dr));
    return std::copysign(std::min(std::abs(dc), lim), dc);
}

void ppmEdges(Array4<const Real> q, int i, int j, int k, int n, int dim, Real& qm,
              Real& qp) {
    const IntVect e = IntVect::basis(dim);
    auto at = [&](int s) { return q(i + s * e.x, j + s * e.y, k + s * e.z, n); };
    // Fourth-order interface values at the low (i-1/2) and high (i+1/2)
    // faces, then CW84 monotonization of the parabola.
    const Real q0 = at(0);
    qm = (7.0 / 12.0) * (at(-1) + q0) - (1.0 / 12.0) * (at(-2) + at(1));
    qp = (7.0 / 12.0) * (q0 + at(1)) - (1.0 / 12.0) * (at(-1) + at(2));
    if ((qp - q0) * (q0 - qm) <= 0.0) {
        qm = q0;
        qp = q0;
        return;
    }
    const Real d = qp - qm;
    const Real t = 6.0 * (q0 - 0.5 * (qp + qm));
    if (d * t > d * d) qm = 3.0 * q0 - 2.0 * qp;
    if (-(d * d) > d * t) qp = 3.0 * q0 - 2.0 * qm;
}

void hllcFlux(const Real* ql, const Real* qr, int nspec, int dim, Real* flux) {
    const StateLayout S(nspec);
    const int nstate = S.ncomp();
    const int iu = PrimLayout::QU + dim; // normal velocity slot

    auto buildU = [&](const Real* q, Real* U, Real& un, Real& p, Real& c) {
        const Real rho = q[PrimLayout::QRHO];
        const Real vx = q[PrimLayout::QU];
        const Real vy = q[PrimLayout::QV];
        const Real vz = q[PrimLayout::QW];
        p = q[PrimLayout::QP];
        c = q[PrimLayout::QC];
        un = q[iu];
        U[StateLayout::URHO] = rho;
        U[StateLayout::UMX] = rho * vx;
        U[StateLayout::UMX + 1] = rho * vy;
        U[StateLayout::UMX + 2] = rho * vz;
        U[StateLayout::UEDEN] =
            q[PrimLayout::QREINT] + 0.5 * rho * (vx * vx + vy * vy + vz * vz);
        U[StateLayout::UTEMP] = 0.0;
        for (int n = 0; n < nspec; ++n) {
            U[StateLayout::UFS + n] = rho * q[PrimLayout::QFS + n];
        }
    };
    auto physFlux = [&](const Real* U, const Real* q, Real un, Real p, Real* F) {
        for (int n = 0; n < nstate; ++n) F[n] = un * U[n];
        F[StateLayout::UMX + dim] += p;
        F[StateLayout::UEDEN] += p * un;
        F[StateLayout::UTEMP] = 0.0;
        (void)q;
    };

    Real UL[40] = {}, UR[40] = {}, FL[40] = {}, FR[40] = {};
    Real unl, pl, cl, unr, pr, cr;
    buildU(ql, UL, unl, pl, cl);
    buildU(qr, UR, unr, pr, cr);
    physFlux(UL, ql, unl, pl, FL);
    physFlux(UR, qr, unr, pr, FR);

    const Real rl = ql[PrimLayout::QRHO];
    const Real rr = qr[PrimLayout::QRHO];
    const Real sl = std::min(unl - cl, unr - cr);
    const Real sr = std::max(unl + cl, unr + cr);
    const Real denom = rl * (sl - unl) - rr * (sr - unr);
    const Real sstar =
        std::abs(denom) > 1.0e-30
            ? (pr - pl + rl * unl * (sl - unl) - rr * unr * (sr - unr)) / denom
            : 0.5 * (unl + unr);

    if (sl >= 0.0) {
        for (int n = 0; n < nstate; ++n) flux[n] = FL[n];
        return;
    }
    if (sr <= 0.0) {
        for (int n = 0; n < nstate; ++n) flux[n] = FR[n];
        return;
    }

    auto starFlux = [&](const Real* U, const Real* F, const Real* q, Real un, Real p,
                        Real s) {
        const Real rho = q[PrimLayout::QRHO];
        const Real fac = rho * (s - un) / (s - sstar);
        Real Ustar[40];
        Ustar[StateLayout::URHO] = fac;
        Ustar[StateLayout::UMX] = fac * q[PrimLayout::QU];
        Ustar[StateLayout::UMX + 1] = fac * q[PrimLayout::QV];
        Ustar[StateLayout::UMX + 2] = fac * q[PrimLayout::QW];
        Ustar[StateLayout::UMX + dim] = fac * sstar;
        Ustar[StateLayout::UEDEN] =
            fac * (U[StateLayout::UEDEN] / rho +
                   (sstar - un) * (sstar + p / (rho * (s - un))));
        Ustar[StateLayout::UTEMP] = 0.0;
        for (int n = 0; n < nspec; ++n) {
            Ustar[StateLayout::UFS + n] = fac * q[PrimLayout::QFS + n];
        }
        for (int n = 0; n < nstate; ++n) flux[n] = F[n] + s * (Ustar[n] - U[n]);
        flux[StateLayout::UTEMP] = 0.0;
    };

    if (sstar >= 0.0) {
        starFlux(UL, FL, ql, unl, pl, sl);
    } else {
        starFlux(UR, FR, qr, unr, pr, sr);
    }
}

void molRhsRegion(const MultiFab& state, MultiFab& dudt, int fab, const Box& region,
                  const Geometry& geom, const ReactionNetwork& net, const Eos& eos,
                  std::array<MultiFab, 3>* fluxes, Reconstruction recon) {
    const int nspec = net.nspec();
    checkKernelSpeciesLimit(nspec);
    const PrimLayout Q(nspec);
    const StateLayout S(nspec);
    const int nstate = S.ncomp();
    const bool ppm = recon == Reconstruction::PPM;

    {
        const int fi = fab;
        const Box& vb = state.box(fi);
        const Box primbox = grow(region, ppm ? 3 : 2);

        FArrayBox qfab(primbox, Q.ncomp());
        conservedToPrimitive(state.const_array(fi), qfab.array(), primbox, net, eos);
        auto q = qfab.const_array();

        // Per-dimension face fluxes; stored in temporaries (from the pool
        // arena — the per-step scratch pattern of the allocator ablation).
        std::array<FArrayBox, 3> fxfab;
        for (int d = 0; d < 3; ++d) {
            const Box fb = surroundingFaces(region, d);
            fxfab[d].define(fb, nstate);
            auto fx = fxfab[d].array();
            const int nsp = nspec;
            KernelInfo fk = fluxKernel(nspec);
            if (ppm) fk.name = "hydro_flux_ppm";
            ParallelFor(fk, fb, [=](int i, int j, int k) {
                const IntVect e = IntVect::basis(d);
                Real ql[40], qr[40];
                // Left state: zone (i,j,k)-e reconstructed toward its high
                // face; right state: zone (i,j,k) toward its low face. The
                // slopes are recomputed here, per face, per zone — the
                // paper's redundant-recompute formulation.
                for (int n = 0; n < PrimLayout::QFS + nsp; ++n) {
                    if (ppm) {
                        Real lm, lp, rm, rp;
                        ppmEdges(q, i - e.x, j - e.y, k - e.z, n, d, lm, lp);
                        ppmEdges(q, i, j, k, n, d, rm, rp);
                        ql[n] = lp; // high edge of the left zone
                        qr[n] = rm; // low edge of the right zone
                    } else {
                        const Real sll = mcSlope(q, i - e.x, j - e.y, k - e.z, n, d);
                        const Real slr = mcSlope(q, i, j, k, n, d);
                        ql[n] = q(i - e.x, j - e.y, k - e.z, n) + 0.5 * sll;
                        qr[n] = q(i, j, k, n) - 0.5 * slr;
                    }
                }
                // Guard reconstructed rho/p against undershoot.
                ql[PrimLayout::QRHO] = std::max(ql[PrimLayout::QRHO], Real(1.0e-30));
                qr[PrimLayout::QRHO] = std::max(qr[PrimLayout::QRHO], Real(1.0e-30));
                ql[PrimLayout::QP] = std::max(ql[PrimLayout::QP], Real(1.0e-30));
                qr[PrimLayout::QP] = std::max(qr[PrimLayout::QP], Real(1.0e-30));
                ql[PrimLayout::QREINT] = std::max(ql[PrimLayout::QREINT], Real(1.0e-30));
                qr[PrimLayout::QREINT] = std::max(qr[PrimLayout::QREINT], Real(1.0e-30));
                Real fl[40];
                hllcFlux(ql, qr, nsp, d, fl);
                for (int n = 0; n < StateLayout::UFS + nsp; ++n) fx(i, j, k, n) = fl[n];
            });
        }

        // Conservative divergence.
        auto du = dudt.array(fi);
        auto fx = fxfab[0].const_array();
        auto fy = fxfab[1].const_array();
        auto fz = fxfab[2].const_array();
        const Real dxi = 1.0 / geom.cellSize(0);
        const Real dyi = 1.0 / geom.cellSize(1);
        const Real dzi = 1.0 / geom.cellSize(2);
        ParallelFor(updateKernel(nspec), region, nstate,
                    [=](int i, int j, int k, int n) {
            du(i, j, k, n) = -(fx(i + 1, j, k, n) - fx(i, j, k, n)) * dxi -
                             (fy(i, j + 1, k, n) - fy(i, j, k, n)) * dyi -
                             (fz(i, j, k + 1, n) - fz(i, j, k, n)) * dzi;
        });
        // Injection site: a NaN escapes the flux computation into the
        // update of this fab's first valid zone. Plain host write, after
        // the launch, so Backend::Debug order replay is unaffected. Fired
        // only by the region holding the fab's first valid zone, so a
        // region-split sweep consumes exactly one fault-schedule slot per
        // fab — the same as the fused sweep.
        if (region.contains(vb.smallEnd()) &&
            fault::shouldFire(fault::Site::HydroNanFlux)) {
            const IntVect lo = vb.smallEnd();
            dudt.fab(fi).array()(lo.x, lo.y, lo.z, StateLayout::UEDEN) =
                std::numeric_limits<Real>::quiet_NaN();
        }

        if (fluxes != nullptr) {
            for (int d = 0; d < 3; ++d) {
                const Box fb = surroundingFaces(region, d);
                (*fluxes)[d].fab(fi).copyFrom(fxfab[d], fb, 0, fb, 0, nstate);
            }
        }
    }
}

void molRhs(const MultiFab& state, MultiFab& dudt, const Geometry& geom,
            const ReactionNetwork& net, const Eos& eos,
            std::array<MultiFab, 3>* fluxes, Reconstruction recon) {
    StreamScope streams;
    for (std::size_t f = 0; f < state.size(); ++f) {
        streams.useFab(f);
        const int fi = static_cast<int>(f);
        molRhsRegion(state, dudt, fi, state.box(fi), geom, net, eos, fluxes, recon);
    }
}

Real estimateDt(const MultiFab& state, const Geometry& geom,
                const ReactionNetwork& net, const Eos& eos, Real cfl) {
    const int nspec = net.nspec();
    // Identity of the min-reduction: +inf when no zone bounds the step
    // (empty state), so callers see "no CFL constraint" rather than a
    // large-but-finite magic number.
    Real dt = std::numeric_limits<Real>::infinity();
    for (std::size_t f = 0; f < state.size(); ++f) {
        const int fi = static_cast<int>(f);
        const Box& vb = state.box(fi);
        FArrayBox qfab(vb, PrimLayout(nspec).ncomp());
        conservedToPrimitive(state.const_array(fi), qfab.array(), vb, net, eos);
        auto q = qfab.const_array();
        for (int d = 0; d < 3; ++d) {
            const Real dx = geom.cellSize(d);
            const Real wmax = ParallelReduceMax(vb, [=](int i, int j, int k) {
                return std::abs(q(i, j, k, PrimLayout::QU + d)) +
                       q(i, j, k, PrimLayout::QC);
            });
            if (wmax > 0.0) dt = std::min(dt, dx / wmax);
        }
    }
    return cfl * dt;
}

void enforceConsistency(MultiFab& state, const ReactionNetwork& net, const Eos& eos,
                        Real small_dens) {
    const int nspec = net.nspec();
    checkKernelSpeciesLimit(nspec);
    const ReactionNetwork* netp = &net;
    const Eos* eosp = &eos;
    for (std::size_t f = 0; f < state.size(); ++f) {
        auto u = state.array(static_cast<int>(f));
        ParallelFor(KernelInfo{"enforce_consistency", 120.0, 100.0, 72, 1.0},
                    state.box(static_cast<int>(f)), [=](int i, int j, int k) {
                        Real rho = u(i, j, k, StateLayout::URHO);
                        if (rho < small_dens) {
                            rho = small_dens;
                            u(i, j, k, StateLayout::URHO) = rho;
                        }
                        // Renormalize species.
                        Real X[32];
                        Real xsum = 0.0;
                        for (int n = 0; n < nspec; ++n) {
                            X[n] = std::clamp(
                                u(i, j, k, StateLayout::UFS + n) / rho, Real(0),
                                Real(1));
                            xsum += X[n];
                        }
                        if (xsum <= 0.0) {
                            X[0] = 1.0;
                            xsum = 1.0;
                        }
                        for (int n = 0; n < nspec; ++n) {
                            X[n] /= xsum;
                            u(i, j, k, StateLayout::UFS + n) = rho * X[n];
                        }
                        // Temperature from the EOS.
                        const Real rinv = 1.0 / rho;
                        const Real vx = u(i, j, k, StateLayout::UMX) * rinv;
                        const Real vy = u(i, j, k, StateLayout::UMX + 1) * rinv;
                        const Real vz = u(i, j, k, StateLayout::UMX + 2) * rinv;
                        const Real ke = 0.5 * (vx * vx + vy * vy + vz * vz);
                        EosState s;
                        s.rho = rho;
                        s.e = std::max(
                            u(i, j, k, StateLayout::UEDEN) * rinv - ke,
                            Real(1.0e-30));
                        s.abar = netp->abar(X);
                        s.ye = netp->ye(X);
                        eosp->rhoE(s);
                        u(i, j, k, StateLayout::UTEMP) = s.T;
                    });
    }
}

} // namespace exa::castro
