#include "castro/castro.hpp"

#include "castro/validate.hpp"
#include "core/executor.hpp"
#include "core/parallel_for.hpp"
#include "core/timer.hpp"
#include "mesh/copier_cache.hpp"

#include <cassert>
#include <cmath>

namespace exa::castro {

Castro::Castro(const Geometry& geom, const BoxArray& ba,
               const DistributionMapping& dm, const ReactionNetwork& net,
               const Eos& eos, const CastroOptions& opt)
    : m_geom(geom),
      m_net(net),
      m_eos(eos),
      m_opt(opt),
      m_layout(net.nspec()),
      m_state(ba, dm, m_layout.ncomp(), opt.ngrow),
      m_gravity(opt.gravity, geom, net.nspec()),
      m_guard(opt.guard),
      m_rebalancer(opt.rebalance) {
    m_state.setVal(0.0);
    m_rebalancer.noteRegrid(0, ba.size());
}

void Castro::initialize(const InitFn& f) {
    const int nspec = m_net.nspec();
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto u = m_state.array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    InitialZone z = f(m_geom.cellCenter(0, i), m_geom.cellCenter(1, j),
                                      m_geom.cellCenter(2, k));
                    assert(static_cast<int>(z.X.size()) == nspec);
                    EosState s;
                    s.rho = z.rho;
                    s.abar = m_net.abar(z.X.data());
                    s.ye = m_net.ye(z.X.data());
                    if (z.p >= 0.0) {
                        s.p = z.p;
                        m_eos.rhoP(s);
                    } else {
                        s.T = z.T;
                        m_eos.rhoT(s);
                    }
                    const Real ke = 0.5 * (z.vel[0] * z.vel[0] + z.vel[1] * z.vel[1] +
                                           z.vel[2] * z.vel[2]);
                    u(i, j, k, StateLayout::URHO) = z.rho;
                    u(i, j, k, StateLayout::UMX) = z.rho * z.vel[0];
                    u(i, j, k, StateLayout::UMX + 1) = z.rho * z.vel[1];
                    u(i, j, k, StateLayout::UMX + 2) = z.rho * z.vel[2];
                    u(i, j, k, StateLayout::UEDEN) = z.rho * (s.e + ke);
                    u(i, j, k, StateLayout::UTEMP) = s.T;
                    for (int n = 0; n < nspec; ++n) {
                        u(i, j, k, StateLayout::UFS + n) = z.rho * z.X[n];
                    }
                }
            }
        }
    }
}

void Castro::applyPhysBC(MultiFab& s) {
    // Momentum components reflect oddly in their own direction.
    std::array<std::vector<int>, 3> odd;
    odd[0] = {StateLayout::UMX};
    odd[1] = {StateLayout::UMY};
    odd[2] = {StateLayout::UMZ};
    fillPhysicalBoundary(s, m_geom, m_opt.bc, odd);
}

void Castro::fillGhosts(MultiFab& s) {
    s.FillBoundary(0, s.nComp(), m_geom.periodicity());
    applyPhysBC(s);
}

double Castro::stageRhs(MultiFab& s, MultiFab& dudt) {
    if (!comm::asyncHalo()) {
        fillGhosts(s);
        WallTimer compute;
        molRhs(s, dudt, m_geom, m_net, m_eos, nullptr, m_opt.reconstruction);
        return compute.seconds();
    }
    // Split phase: post the exchange, sweep every fab's interior (which
    // never reads ghost zones at this stencil width) while it is in
    // flight, then deliver the ghosts, apply physical BCs, and sweep the
    // boundary shells. Any disjoint cover of the valid boxes yields the
    // fused result bit-for-bit.
    comm::HaloHandle halo = s.FillBoundary_nowait(0, s.nComp(), m_geom.periodicity());
    const auto part = CopierCache::instance().interiorPartition(
        s.boxArray(), stencilWidth(m_opt.reconstruction));
    double compute_s = 0.0;
    {
        WallTimer compute;
        StreamScope streams;
        for (std::size_t f = 0; f < s.size(); ++f) {
            const FabRegions& fr = part->fabs[f];
            if (!fr.interior.ok()) continue;
            streams.useFab(f);
            molRhsRegion(s, dudt, static_cast<int>(f), fr.interior, m_geom, m_net,
                         m_eos, nullptr, m_opt.reconstruction);
        }
        compute_s += compute.seconds();
    }
    halo.finish();
    applyPhysBC(s);
    {
        WallTimer compute;
        StreamScope streams;
        for (std::size_t f = 0; f < s.size(); ++f) {
            streams.useFab(f);
            for (const Box& sb : part->fabs[f].shell) {
                molRhsRegion(s, dudt, static_cast<int>(f), sb, m_geom, m_net, m_eos,
                             nullptr, m_opt.reconstruction);
            }
        }
        compute_s += compute.seconds();
    }
    return compute_s;
}

Real Castro::estimateDt() const {
    return castro::estimateDt(m_state, m_geom, m_net, m_eos, m_opt.cfl);
}

double Castro::hydroAdvance(Real dt) {
    TimerRegion timer("castro::hydro");
    const int nc = m_layout.ncomp();
    MultiFab dudt(m_state.boxArray(), m_state.distributionMap(), nc, 0);
    MultiFab u1(m_state.boxArray(), m_state.distributionMap(), nc, m_opt.ngrow);

    // Stage 1: U1 = U^n + dt L(U^n).
    double compute_s = stageRhs(m_state, dudt);
    MultiFab::Copy(u1, m_state, 0, 0, nc, 0);
    u1.saxpy(dt, dudt, 0, 0, nc);
    enforceConsistency(u1, m_net, m_eos, m_opt.small_dens);

    // Stage 2: U^{n+1} = 1/2 U^n + 1/2 (U1 + dt L(U1)).
    compute_s += stageRhs(u1, dudt);
    u1.saxpy(dt, dudt, 0, 0, nc);
    MultiFab::LinComb(m_state, 0.5, m_state, 0.5, u1, 0, nc);
    enforceConsistency(m_state, m_net, m_eos, m_opt.small_dens);
    return compute_s;
}

BurnGridStats Castro::advanceOnce(Real dt) {
    BurnGridStats burn;
    CostMonitor* cost =
        m_opt.rebalance.enabled ? &m_rebalancer.monitor() : nullptr;

    if (m_opt.do_react) {
        TimerRegion timer("castro::react");
        burn = reactState(m_state, m_net, m_eos, 0.5 * dt, m_opt.react, cost);
    }

    if (m_opt.gravity != GravityType::None) {
        TimerRegion timer("castro::gravity");
        m_gravity.solve(m_state);
    }
    {
        // Credit the compute-sweep seconds hydroAdvance measured, not the
        // whole wall time: the ghost fills inside it are comm waits, and
        // booking them as per-box hydro cost would skew the Time metric.
        const double hydro_compute_s = hydroAdvance(dt);
        if (cost != nullptr) creditHydroTime(hydro_compute_s);
    }
    if (m_opt.gravity != GravityType::None) {
        TimerRegion timer("castro::gravity");
        // Operator-split source with the field from the start of the step.
        m_gravity.addSource(m_state, dt);
        enforceConsistency(m_state, m_net, m_eos, m_opt.small_dens);
    }

    if (m_opt.do_react) {
        TimerRegion timer("castro::react");
        burn.merge(
            reactState(m_state, m_net, m_eos, 0.5 * dt, m_opt.react, cost));
    }

    return burn;
}

void Castro::creditHydroTime(double seconds) {
    const BoxArray& ba = m_state.boxArray();
    const double total = static_cast<double>(ba.numPts());
    if (total <= 0) return;
    auto& mon = m_rebalancer.monitor();
    for (std::size_t f = 0; f < ba.size(); ++f) {
        mon.addTime(0, static_cast<int>(f),
                    seconds * static_cast<double>(ba[f].numPts()) / total);
    }
}

void Castro::maybeRebalance() {
    if (!m_opt.rebalance.enabled) return;
    // Hydro work channel: every zone costs ~hydro_zone_work units per
    // step regardless of burning, so burn-free boxes keep a realistic
    // floor under the Work metric.
    auto& mon = m_rebalancer.monitor();
    const BoxArray& ba = m_state.boxArray();
    for (std::size_t f = 0; f < ba.size(); ++f) {
        mon.addWork(0, static_cast<int>(f),
                    m_opt.rebalance.hydro_zone_work *
                        static_cast<double>(ba[f].numPts()));
    }
    std::vector<MultiFab*> fabs{&m_state};
    for (MultiFab* g : m_gravity.rebalanceFabs()) fabs.push_back(g);
    m_rebalancer.step(0, m_nstep, fabs);
}

BurnGridStats Castro::step(Real dt) {
    if (!m_opt.guard.enabled) {
        BurnGridStats burn = advanceOnce(dt);
        m_time += dt;
        ++m_nstep;
        maybeRebalance();
        return burn;
    }

    // Guarded step: snapshot, advance (possibly as substeps), validate;
    // on failure roll back and re-advance with geometric dt backoff.
    BurnGridStats burn;
    m_guard.advance(
        dt,
        [&](StateSnapshot& snap) { snap.capture(m_state); },
        [&](const StateSnapshot& snap) { snap.restoreTo(0, m_state); },
        [&](Real sub_dt, int nsub) {
            burn = BurnGridStats{};
            for (int s = 0; s < nsub; ++s) burn.merge(advanceOnce(sub_dt));
        },
        [&] {
            return validateState(m_state, m_net.nspec(), m_opt.guard, &burn);
        },
        [&](const StateSnapshot& snap, bool advance_threw) {
            // Clamp-and-warn: replace the zones that went bad with their
            // pre-step values and recompute T. When the advance itself
            // threw, the engine already restored the snapshot wholesale.
            if (!advance_threw) {
                repairInvalidZones(m_state, snap.mf(0), m_opt.guard);
                enforceConsistency(m_state, m_net, m_eos, m_opt.small_dens);
            }
        });

    // One guarded step is one step, however many substeps it took.
    m_time += dt;
    ++m_nstep;
    // Rebalance only after the step is accepted: the guard's snapshot and
    // the state must share a layout for the whole retry scope.
    maybeRebalance();
    return burn;
}

Real Castro::totalMass() const {
    return m_state.sum(StateLayout::URHO) * m_geom.cellVolume();
}

std::array<Real, 3> Castro::totalMomentum() const {
    return {m_state.sum(StateLayout::UMX) * m_geom.cellVolume(),
            m_state.sum(StateLayout::UMY) * m_geom.cellVolume(),
            m_state.sum(StateLayout::UMZ) * m_geom.cellVolume()};
}

Real Castro::totalEnergy() const {
    return m_state.sum(StateLayout::UEDEN) * m_geom.cellVolume();
}

Real Castro::maxTemperature() const { return m_state.max(StateLayout::UTEMP); }

Real Castro::maxDensity() const { return m_state.max(StateLayout::URHO); }

std::array<Real, 3> Castro::hottestZone() const {
    Real best = -1.0;
    std::array<Real, 3> pos{0, 0, 0};
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto u = m_state.const_array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    if (u(i, j, k, StateLayout::UTEMP) > best) {
                        best = u(i, j, k, StateLayout::UTEMP);
                        pos = {m_geom.cellCenter(0, i), m_geom.cellCenter(1, j),
                               m_geom.cellCenter(2, k)};
                    }
                }
    }
    return pos;
}

Real Castro::minBurnTimescaleRatio(Real T_threshold) const {
    const int nspec = m_net.nspec();
    Real ratio = 1.0e99;
    const Real dx = m_geom.cellSize(0);
    // Serial diagnostic loop: size the scratch to the network.
    std::vector<Real> X(nspec);
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto u = m_state.const_array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real T = u(i, j, k, StateLayout::UTEMP);
                    if (T < T_threshold) continue;
                    const Real rho = u(i, j, k, StateLayout::URHO);
                    for (int n = 0; n < nspec; ++n) {
                        X[n] = std::clamp(u(i, j, k, StateLayout::UFS + n) / rho,
                                          Real(0), Real(1));
                    }
                    const Real t_burn =
                        burningTimescale(m_net, m_eos, rho, T, X.data());
                    EosState s;
                    s.rho = rho;
                    s.T = T;
                    s.abar = m_net.abar(X.data());
                    s.ye = m_net.ye(X.data());
                    m_eos.rhoT(s);
                    const Real t_cross = dx / std::max(s.cs, Real(1.0));
                    ratio = std::min(ratio, t_burn / t_cross);
                }
    }
    return ratio;
}

} // namespace exa::castro
