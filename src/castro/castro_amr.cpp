#include "castro/castro_amr.hpp"

#include "castro/validate.hpp"
#include "core/parallel_for.hpp"
#include "core/timer.hpp"

#include <cassert>
#include <limits>
#include <string>

namespace exa::castro {

CastroAmr::CastroAmr(const Geometry& level0_geom, const AmrInfo& info,
                     const ReactionNetwork& net, const Eos& eos,
                     const CastroOptions& opt, Castro::InitFn init, TagFn tag)
    : AmrCore(level0_geom, info),
      m_net(net),
      m_eos(eos),
      m_opt(opt),
      m_layout(net.nspec()),
      m_init(std::move(init)),
      m_tag(std::move(tag)),
      m_guard(opt.guard),
      m_rebalancer(opt.rebalance) {
    m_state.resize(info.max_level + 1);
}

void CastroAmr::init() {
    initBaseLevel();
    // Regrid until the hierarchy stabilizes (new levels may tag further).
    for (int pass = 0; pass <= maxLevel(); ++pass) {
        const int before = finestLevel();
        regrid(0);
        if (finestLevel() == before) break;
    }
}

void CastroAmr::initLevelData(int lev, MultiFab& mf) {
    const Geometry& g = geom(lev);
    const int nspec = m_net.nspec();
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto u = mf.array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    auto z = m_init(g.cellCenter(0, i), g.cellCenter(1, j),
                                    g.cellCenter(2, k));
                    EosState s;
                    s.rho = z.rho;
                    s.abar = m_net.abar(z.X.data());
                    s.ye = m_net.ye(z.X.data());
                    if (z.p >= 0.0) {
                        s.p = z.p;
                        m_eos.rhoP(s);
                    } else {
                        s.T = z.T;
                        m_eos.rhoT(s);
                    }
                    const Real ke = 0.5 * (z.vel[0] * z.vel[0] + z.vel[1] * z.vel[1] +
                                           z.vel[2] * z.vel[2]);
                    u(i, j, k, StateLayout::URHO) = z.rho;
                    u(i, j, k, StateLayout::UMX) = z.rho * z.vel[0];
                    u(i, j, k, StateLayout::UMY) = z.rho * z.vel[1];
                    u(i, j, k, StateLayout::UMZ) = z.rho * z.vel[2];
                    u(i, j, k, StateLayout::UEDEN) = z.rho * (s.e + ke);
                    u(i, j, k, StateLayout::UTEMP) = s.T;
                    for (int n = 0; n < nspec; ++n) {
                        u(i, j, k, StateLayout::UFS + n) = z.rho * z.X[n];
                    }
                }
    }
}

void CastroAmr::applyPhysBC(int lev, MultiFab& mf) {
    std::array<std::vector<int>, 3> odd;
    odd[0] = {StateLayout::UMX};
    odd[1] = {StateLayout::UMY};
    odd[2] = {StateLayout::UMZ};
    fillPhysicalBoundary(mf, geom(lev), m_opt.bc, odd);
}

void CastroAmr::fillPatchFrom(int lev, const MultiFab& fine_src, MultiFab& dst) {
    assert(&fine_src != &dst); // interpolation would clobber the source
    if (lev == 0) {
        dst.ParallelCopy(fine_src, 0, 0, m_layout.ncomp(), 0,
                         geom(0).periodicity());
        dst.FillBoundary(0, dst.nComp(), geom(0).periodicity());
    } else {
        fillPatchTwoLevels(dst, fine_src, m_state[lev - 1], geom(lev - 1),
                           geom(lev), refRatio(), 0, 0, m_layout.ncomp(),
                           dst.nGrow());
    }
    applyPhysBC(lev, dst);
}

void CastroAmr::fillPatch(int lev, MultiFab& dst) {
    fillPatchFrom(lev, m_state[lev], dst);
}

void CastroAmr::MakeNewLevelFromScratch(int lev, const BoxArray& ba,
                                        const DistributionMapping& dm) {
    m_state[lev].define(ba, dm, m_layout.ncomp(), m_opt.ngrow);
    m_state[lev].setVal(0.0);
    initLevelData(lev, m_state[lev]);
    m_rebalancer.noteRegrid(lev, ba.size());
}

void CastroAmr::MakeNewLevelFromCoarse(int lev, const BoxArray& ba,
                                       const DistributionMapping& dm) {
    m_state[lev].define(ba, dm, m_layout.ncomp(), m_opt.ngrow);
    m_state[lev].setVal(0.0);
    // Interpolate everything from the coarse level. Passing the (freshly
    // interpolated) level itself as the fine source makes the same-level
    // overwrite pass a no-op self-copy.
    fillPatchTwoLevels(m_state[lev], m_state[lev], m_state[lev - 1],
                       geom(lev - 1), geom(lev), refRatio(), 0, 0,
                       m_layout.ncomp());
    enforceConsistency(m_state[lev], m_net, m_eos, m_opt.small_dens);
    m_rebalancer.noteRegrid(lev, ba.size());
}

void CastroAmr::RemakeLevel(int lev, const BoxArray& ba,
                            const DistributionMapping& dm) {
    MultiFab newstate(ba, dm, m_layout.ncomp(), m_opt.ngrow);
    newstate.setVal(0.0);
    // Old same-level data where available, coarse interpolation elsewhere.
    fillPatchTwoLevels(newstate, m_state[lev], m_state[lev - 1], geom(lev - 1),
                       geom(lev), refRatio(), 0, 0, m_layout.ncomp());
    m_state[lev] = std::move(newstate);
    enforceConsistency(m_state[lev], m_net, m_eos, m_opt.small_dens);
    m_rebalancer.noteRegrid(lev, ba.size());
}

void CastroAmr::ClearLevel(int lev) {
    m_state[lev].clear();
    m_rebalancer.noteRegrid(lev, 0);
}

void CastroAmr::ErrorEst(int lev, MultiFab& tags) {
    m_tag(lev, geom(lev), m_state[lev], tags);
}

Real CastroAmr::estimateDt() const {
    Real dt = std::numeric_limits<Real>::infinity();
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        dt = std::min(dt, castro::estimateDt(m_state[lev], geom(lev), m_net, m_eos,
                                             m_opt.cfl));
    }
    return dt;
}

void CastroAmr::advanceLevel(int lev, Real dt) {
    const int nc = m_layout.ncomp();
    MultiFab& s = m_state[lev];
    MultiFab dudt(s.boxArray(), s.distributionMap(), nc, 0);
    MultiFab u1(s.boxArray(), s.distributionMap(), nc, 0);
    // Ghost-bearing working copy (AMReX's "Sborder" pattern): the state
    // itself never receives interpolated data over its valid zones.
    MultiFab sborder(s.boxArray(), s.distributionMap(), nc, s.nGrow());

    fillPatchFrom(lev, s, sborder);
    molRhs(sborder, dudt, geom(lev), m_net, m_eos);
    MultiFab::Copy(u1, s, 0, 0, nc, 0);
    u1.saxpy(dt, dudt, 0, 0, nc);
    enforceConsistency(u1, m_net, m_eos, m_opt.small_dens);

    // Second RK stage: ghosts of u1 from {u1, coarse OLD state} — the
    // first-order-in-time coarse/fine coupling of non-subcycled stepping.
    fillPatchFrom(lev, u1, sborder);
    molRhs(sborder, dudt, geom(lev), m_net, m_eos);
    u1.saxpy(dt, dudt, 0, 0, nc);
    MultiFab::LinComb(s, 0.5, s, 0.5, u1, 0, nc);
    enforceConsistency(s, m_net, m_eos, m_opt.small_dens);
}

BurnGridStats CastroAmr::advanceOnce(Real dt) {
    BurnGridStats burn;
    CostMonitor* cost =
        m_opt.rebalance.enabled ? &m_rebalancer.monitor() : nullptr;
    auto accumulate = [&](BurnGridStats b, int lev) {
        if (b.first_failure.valid) b.first_failure.level = lev;
        burn.merge(b);
    };
    auto creditHydroTime = [&](int lev, double seconds) {
        // Zones-proportional attribution of one level sweep's wall time.
        if (cost == nullptr) return;
        const BoxArray& ba = m_state[lev].boxArray();
        const double total = static_cast<double>(ba.numPts());
        if (total <= 0) return;
        for (std::size_t f = 0; f < ba.size(); ++f) {
            cost->addTime(lev, static_cast<int>(f),
                          seconds * static_cast<double>(ba[f].numPts()) / total);
        }
    };

    // Strang half-burn on every level (finest last so averaging wins).
    if (m_opt.do_react) {
        for (int lev = 0; lev <= finestLevel(); ++lev) {
            accumulate(reactState(m_state[lev], m_net, m_eos, 0.5 * dt,
                                  m_opt.react, cost, lev),
                       lev);
        }
    }
    // Hydro, coarse to fine, then synchronize by averaging down.
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        WallTimer hydro_timer;
        advanceLevel(lev, dt);
        creditHydroTime(lev, hydro_timer.seconds());
    }
    for (int lev = finestLevel(); lev > 0; --lev) {
        averageDown(m_state[lev - 1], m_state[lev], refRatio(), 0, 0,
                    m_layout.ncomp());
        enforceConsistency(m_state[lev - 1], m_net, m_eos, m_opt.small_dens);
    }
    if (m_opt.do_react) {
        for (int lev = 0; lev <= finestLevel(); ++lev) {
            accumulate(reactState(m_state[lev], m_net, m_eos, 0.5 * dt,
                                  m_opt.react, cost, lev),
                       lev);
        }
        for (int lev = finestLevel(); lev > 0; --lev) {
            averageDown(m_state[lev - 1], m_state[lev], refRatio(), 0, 0,
                        m_layout.ncomp());
        }
    }

    return burn;
}

BurnGridStats CastroAmr::step(Real dt) {
    BurnGridStats burn;
    if (!m_guard.options().enabled) {
        burn = advanceOnce(dt);
    } else {
        // Snapshot every level; restore requires the BoxArrays to be
        // unchanged, which holds because regridding happens only below,
        // after the guarded step is accepted.
        m_guard.advance(
            dt,
            [&](StateSnapshot& snap) {
                for (int lev = 0; lev <= finestLevel(); ++lev) {
                    snap.capture(m_state[lev]);
                }
            },
            [&](const StateSnapshot& snap) {
                for (int lev = 0; lev <= finestLevel(); ++lev) {
                    snap.restoreTo(static_cast<std::size_t>(lev), m_state[lev]);
                }
            },
            [&](Real sub_dt, int nsub) {
                burn = BurnGridStats{};
                for (int s = 0; s < nsub; ++s) burn.merge(advanceOnce(sub_dt));
            },
            [&] {
                ValidationReport rep;
                for (int lev = 0; lev <= finestLevel(); ++lev) {
                    // Burn stats are hierarchy-wide; attach them to the
                    // level-0 report so they are flagged exactly once.
                    ValidationReport r = validateState(
                        m_state[lev], m_net.nspec(), m_opt.guard,
                        lev == 0 ? &burn : nullptr,
                        "level " + std::to_string(lev));
                    for (auto& issue : r.issues) {
                        rep.issues.push_back(std::move(issue));
                    }
                }
                return rep;
            },
            [&](const StateSnapshot& snap, bool advance_threw) {
                if (!advance_threw) {
                    for (int lev = 0; lev <= finestLevel(); ++lev) {
                        repairInvalidZones(m_state[lev],
                                           snap.mf(static_cast<std::size_t>(lev)),
                                           m_opt.guard);
                        enforceConsistency(m_state[lev], m_net, m_eos,
                                           m_opt.small_dens);
                    }
                }
            });
    }

    m_time += dt;
    ++m_nstep;
    if (regrid_interval > 0 && m_nstep % regrid_interval == 0 && maxLevel() > 0) {
        regrid(0);
    }
    // Re-evaluated after the regrid: rebuilt levels had their cost
    // history reset (the regrid's zone-count mapping is their cold
    // start), while stable levels can act on this step's measurements.
    maybeRebalance();
    return burn;
}

void CastroAmr::maybeRebalance() {
    if (!m_opt.rebalance.enabled) return;
    auto& mon = m_rebalancer.monitor();
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        const BoxArray& ba = boxArray(lev);
        for (std::size_t f = 0; f < ba.size(); ++f) {
            mon.addWork(lev, static_cast<int>(f),
                        m_opt.rebalance.hydro_zone_work *
                            static_cast<double>(ba[f].numPts()));
        }
        const auto d = m_rebalancer.step(lev, m_nstep, {&m_state[lev]});
        if (d.performed) {
            // Keep AmrCore's per-level mapping (used by the next regrid
            // and by fillPatch temporaries) in sync with the migration.
            m_dm[lev] = m_state[lev].distributionMap();
        }
    }
}

Real CastroAmr::totalMass() const {
    return m_state[0].sum(StateLayout::URHO) * geom(0).cellVolume();
}

Real CastroAmr::totalEnergy() const {
    return m_state[0].sum(StateLayout::UEDEN) * geom(0).cellVolume();
}

Real CastroAmr::maxTemperature() const {
    Real t = 0.0;
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        t = std::max(t, m_state[lev].max(StateLayout::UTEMP));
    }
    return t;
}

} // namespace exa::castro
