#include "castro/castro_amr.hpp"

#include "castro/validate.hpp"
#include "core/executor.hpp"
#include "core/parallel_for.hpp"
#include "core/timer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

namespace exa::castro {

CastroAmr::CastroAmr(const Geometry& level0_geom, const AmrInfo& info,
                     const ReactionNetwork& net, const Eos& eos,
                     const CastroOptions& opt, Castro::InitFn init, TagFn tag)
    : AmrCore(level0_geom, info),
      m_net(net),
      m_eos(eos),
      m_opt(opt),
      m_layout(net.nspec()),
      m_init(std::move(init)),
      m_tag(std::move(tag)),
      m_guard(opt.guard),
      m_rebalancer(opt.rebalance) {
    m_state.resize(info.max_level + 1);
    m_state_old.resize(info.max_level + 1);
    m_flux_reg.resize(info.max_level + 1);
    m_t_old.assign(info.max_level + 1, 0.0);
    m_t_new.assign(info.max_level + 1, 0.0);
    m_advances.assign(info.max_level + 1, 0);
    if (opt.gravity == GravityType::PoissonAmr) {
        m_gravity = std::make_unique<AmrGravity>(MgBC::Dirichlet);
    } else if (opt.gravity != GravityType::None) {
        // Monopole/Poisson are single-level constructs; the AMR driver
        // couples levels through the composite solve only.
        throw std::invalid_argument(
            "CastroAmr: gravity must be None or PoissonAmr");
    }
}

void CastroAmr::init() {
    initBaseLevel();
    // Regrid until the hierarchy stabilizes (new levels may tag further).
    for (int pass = 0; pass <= maxLevel(); ++pass) {
        const int before = finestLevel();
        regrid(0);
        if (finestLevel() == before) break;
    }
}

void CastroAmr::initLevelData(int lev, MultiFab& mf) {
    const Geometry& g = geom(lev);
    const int nspec = m_net.nspec();
    for (std::size_t b = 0; b < mf.size(); ++b) {
        auto u = mf.array(static_cast<int>(b));
        const Box& vb = mf.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    auto z = m_init(g.cellCenter(0, i), g.cellCenter(1, j),
                                    g.cellCenter(2, k));
                    EosState s;
                    s.rho = z.rho;
                    s.abar = m_net.abar(z.X.data());
                    s.ye = m_net.ye(z.X.data());
                    if (z.p >= 0.0) {
                        s.p = z.p;
                        m_eos.rhoP(s);
                    } else {
                        s.T = z.T;
                        m_eos.rhoT(s);
                    }
                    const Real ke = 0.5 * (z.vel[0] * z.vel[0] + z.vel[1] * z.vel[1] +
                                           z.vel[2] * z.vel[2]);
                    u(i, j, k, StateLayout::URHO) = z.rho;
                    u(i, j, k, StateLayout::UMX) = z.rho * z.vel[0];
                    u(i, j, k, StateLayout::UMY) = z.rho * z.vel[1];
                    u(i, j, k, StateLayout::UMZ) = z.rho * z.vel[2];
                    u(i, j, k, StateLayout::UEDEN) = z.rho * (s.e + ke);
                    u(i, j, k, StateLayout::UTEMP) = s.T;
                    for (int n = 0; n < nspec; ++n) {
                        u(i, j, k, StateLayout::UFS + n) = z.rho * z.X[n];
                    }
                }
    }
}

void CastroAmr::applyPhysBC(int lev, MultiFab& mf) {
    std::array<std::vector<int>, 3> odd;
    odd[0] = {StateLayout::UMX};
    odd[1] = {StateLayout::UMY};
    odd[2] = {StateLayout::UMZ};
    fillPhysicalBoundary(mf, geom(lev), m_opt.bc, odd);
}

void CastroAmr::fillPatchAtTime(int lev, Real t, const MultiFab& fine_src,
                                MultiFab& dst) {
    assert(&fine_src != &dst); // interpolation would clobber the source
    const int nc = m_layout.ncomp();
    if (lev == 0) {
        dst.ParallelCopy(fine_src, 0, 0, nc, 0, geom(0).periodicity());
        dst.FillBoundary(0, dst.nComp(), geom(0).periodicity());
        applyPhysBC(lev, dst);
        return;
    }
    const MultiFab& cnew = m_state[lev - 1];
    const MultiFab& cold = m_state_old[lev - 1];
    const Real t0 = m_t_old[lev - 1];
    const Real t1 = m_t_new[lev - 1];
    Real alpha = t1 > t0 ? (t - t0) / (t1 - t0) : 1.0;
    alpha = std::clamp(alpha, 0.0, 1.0);
    if (!cold.isDefined()) alpha = 1.0;
    if (alpha >= 1.0) {
        fillPatchTwoLevels(dst, fine_src, cnew, geom(lev - 1), geom(lev),
                           refRatio(), 0, 0, nc, dst.nGrow());
    } else if (alpha <= 0.0) {
        fillPatchTwoLevels(dst, fine_src, cold, geom(lev - 1), geom(lev),
                           refRatio(), 0, 0, nc, dst.nGrow());
    } else {
        // Linear interpolation in time between the coarse time levels
        // (fillPatchTwoLevels reads only coarse valid zones, which is
        // exactly what LinComb fills).
        MultiFab ctmp(cnew.boxArray(), cnew.distributionMap(), nc, 0);
        MultiFab::LinComb(ctmp, 1.0 - alpha, cold, alpha, cnew, 0, nc);
        fillPatchTwoLevels(dst, fine_src, ctmp, geom(lev - 1), geom(lev),
                           refRatio(), 0, 0, nc, dst.nGrow());
    }
    applyPhysBC(lev, dst);
}

void CastroAmr::fillPatchFrom(int lev, const MultiFab& fine_src, MultiFab& dst) {
    fillPatchAtTime(lev, lev > 0 ? m_t_new[lev - 1] : m_time, fine_src, dst);
}

void CastroAmr::fillPatch(int lev, MultiFab& dst) {
    fillPatchFrom(lev, m_state[lev], dst);
}

void CastroAmr::resetLevelCompanions(int lev) {
    const MultiFab& s = m_state[lev];
    m_state_old[lev].define(s.boxArray(), s.distributionMap(), s.nComp(),
                            s.nGrow());
    MultiFab::Copy(m_state_old[lev], s, 0, 0, s.nComp(), s.nGrow());
    m_t_old[lev] = m_time;
    m_t_new[lev] = m_time;
    if (lev > 0) {
        m_flux_reg[lev].define(s.boxArray(), s.distributionMap(), refRatio(),
                               m_layout.ncomp());
    }
}

void CastroAmr::MakeNewLevelFromScratch(int lev, const BoxArray& ba,
                                        const DistributionMapping& dm) {
    m_state[lev].define(ba, dm, m_layout.ncomp(), m_opt.ngrow);
    m_state[lev].setVal(0.0);
    initLevelData(lev, m_state[lev]);
    resetLevelCompanions(lev);
    m_rebalancer.noteRegrid(lev, ba.size());
    if (m_gravity) m_gravity->noteRegrid();
}

void CastroAmr::MakeNewLevelFromCoarse(int lev, const BoxArray& ba,
                                       const DistributionMapping& dm) {
    m_state[lev].define(ba, dm, m_layout.ncomp(), m_opt.ngrow);
    m_state[lev].setVal(0.0);
    // Interpolate everything from the coarse level. Passing the (freshly
    // interpolated) level itself as the fine source makes the same-level
    // overwrite pass a no-op self-copy.
    fillPatchTwoLevels(m_state[lev], m_state[lev], m_state[lev - 1],
                       geom(lev - 1), geom(lev), refRatio(), 0, 0,
                       m_layout.ncomp());
    enforceConsistency(m_state[lev], m_net, m_eos, m_opt.small_dens);
    resetLevelCompanions(lev);
    m_rebalancer.noteRegrid(lev, ba.size());
    if (m_gravity) m_gravity->noteRegrid();
}

void CastroAmr::RemakeLevel(int lev, const BoxArray& ba,
                            const DistributionMapping& dm) {
    MultiFab newstate(ba, dm, m_layout.ncomp(), m_opt.ngrow);
    newstate.setVal(0.0);
    // Old same-level data where available, coarse interpolation elsewhere.
    fillPatchTwoLevels(newstate, m_state[lev], m_state[lev - 1], geom(lev - 1),
                       geom(lev), refRatio(), 0, 0, m_layout.ncomp());
    m_state[lev] = std::move(newstate);
    enforceConsistency(m_state[lev], m_net, m_eos, m_opt.small_dens);
    resetLevelCompanions(lev);
    m_rebalancer.noteRegrid(lev, ba.size());
    if (m_gravity) m_gravity->noteRegrid();
}

void CastroAmr::remakeForRestore(
    const std::vector<std::vector<Box>>& level_boxes,
    const std::function<DistributionMapping(const BoxArray&, int lev)>&
        dmBuilder) {
    const int nlev = static_cast<int>(level_boxes.size());
    assert(nlev >= 1 && nlev <= maxLevel() + 1);
    for (int lev = finestLevel(); lev >= nlev; --lev) ClearLevel(lev);
    setFinestLevel(nlev - 1);
    for (int lev = 0; lev < nlev; ++lev) {
        BoxArray ba(level_boxes[lev]);
        m_ba[lev] = ba;
        m_dm[lev] = dmBuilder(ba, lev);
        m_state[lev].define(ba, m_dm[lev], m_layout.ncomp(), m_opt.ngrow);
        m_state[lev].setVal(0.0);
        m_rebalancer.noteRegrid(lev, ba.size());
    }
    if (m_gravity) m_gravity->noteRegrid();
}

void CastroAmr::finishRestore() {
    // Ghosts are not persisted and need no refill here: every consumer
    // (RK stages, fillPatchAtTime) reads coarse valid zones or refills
    // ghosts itself at the start of the next advance.
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        m_dm[lev] = m_state[lev].distributionMap();
        resetLevelCompanions(lev);
    }
    if (m_gravity) {
        // The restored layouts may differ from the live ones, and any
        // potential left from before the failure is stale: rebuild and
        // re-solve cold at the next step (replay stays bit-identical
        // because solves are pure functions of the restored density).
        m_gravity->noteRegrid();
        m_gravity->resetPoissonWarmStart();
    }
}

void CastroAmr::ClearLevel(int lev) {
    m_state[lev].clear();
    m_state_old[lev].clear();
    m_flux_reg[lev].clear();
    m_rebalancer.noteRegrid(lev, 0);
    if (m_gravity) m_gravity->noteRegrid();
}

void CastroAmr::ErrorEst(int lev, MultiFab& tags) {
    m_tag(lev, geom(lev), m_state[lev], tags);
}

Real CastroAmr::estimateDt() const {
    // Level-0 dt: each level's CFL limit scaled back up by its substep
    // count, minimized over levels.
    Real dt = std::numeric_limits<Real>::infinity();
    Real scale = 1.0;
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        dt = std::min(dt, scale * castro::estimateDt(m_state[lev], geom(lev),
                                                     m_net, m_eos, m_opt.cfl));
        if (subcycle) scale *= refRatio();
    }
    return dt;
}

void CastroAmr::advanceLevel(int lev, Real time, Real dt, BurnGridStats& burn,
                             CostMonitor* cost) {
    const int nc = m_layout.ncomp();
    MultiFab& s = m_state[lev];

    // Rotate time levels: the pre-step state becomes the old time, so
    // finer levels can interpolate ghosts anywhere in [time, time + dt].
    MultiFab::Copy(m_state_old[lev], s, 0, 0, nc, s.nGrow());
    m_t_old[lev] = time;
    m_t_new[lev] = time + dt;

    auto accumulate = [&](BurnGridStats b) {
        if (b.first_failure.valid) b.first_failure.level = lev;
        burn.merge(b);
    };

    // Strang half-burn (per level: each level splits around its own dt).
    if (m_opt.do_react) {
        accumulate(reactState(s, m_net, m_eos, 0.5 * dt, m_opt.react, cost, lev));
    }

    // Face fluxes are needed whenever a register borders this level:
    // above (we are the coarse side of lev+1's register) or below (we
    // are the fine side of our own).
    const bool crse_side = reflux && lev < finestLevel();
    const bool fine_side = reflux && lev > 0;
    std::array<MultiFab, 3> flux;
    std::array<MultiFab, 3>* fluxp = nullptr;
    if (crse_side || fine_side) {
        flux = makeFluxFabs(s.boxArray(), s.distributionMap(), nc);
        fluxp = &flux;
    }

    MultiFab dudt(s.boxArray(), s.distributionMap(), nc, 0);
    MultiFab u1(s.boxArray(), s.distributionMap(), nc, 0);
    // Ghost-bearing working copy (AMReX's "Sborder" pattern): the state
    // itself never receives interpolated data over its valid zones.
    MultiFab sborder(s.boxArray(), s.distributionMap(), nc, s.nGrow());

    // One RHS sweep: fill ghosts at `at`, run the per-fab compute loop
    // (timing only the compute — the fill's halo waits are comm, not
    // hydro cost), and bank this stage's fluxes in the registers. Both
    // SSP-RK2 stages enter the update with weight 1/2, so each stage's
    // flux carries w = 0.5 of its level's dt: negative on the coarse
    // side, positive (area-averaged) on the fine side.
    auto sweep = [&](const MultiFab& src, Real at, Real w) {
        fillPatchAtTime(lev, at, src, sborder);
        {
            StreamScope streams;
            for (std::size_t f = 0; f < s.size(); ++f) {
                streams.useFab(f);
                const int fi = static_cast<int>(f);
                CostMonitor::ScopedFabTimer t(cost, lev, fi);
                molRhsRegion(sborder, dudt, fi, s.box(fi), geom(lev), m_net,
                             m_eos, fluxp, m_opt.reconstruction);
            }
        }
        if (crse_side && m_flux_reg[lev + 1].isDefined()) {
            m_flux_reg[lev + 1].CrseAdd(flux, -w * dt);
        }
        if (fine_side && m_flux_reg[lev].isDefined()) {
            m_flux_reg[lev].FineAdd(flux, w * dt);
        }
    };

    sweep(s, time, 0.5);
    MultiFab::Copy(u1, s, 0, 0, nc, 0);
    u1.saxpy(dt, dudt, 0, 0, nc);
    enforceConsistency(u1, m_net, m_eos, m_opt.small_dens);

    // Second RK stage: ghosts of u1 at the end-of-step time (coarse data
    // time-interpolated across the coarse bracket under subcycling).
    sweep(u1, time + dt, 0.5);
    u1.saxpy(dt, dudt, 0, 0, nc);
    MultiFab::LinComb(s, 0.5, s, 0.5, u1, 0, nc);
    enforceConsistency(s, m_net, m_eos, m_opt.small_dens);

    if (m_gravity) {
        // Operator-split source with the composite field solved at the
        // start of the coarse step (every substep of this level reuses
        // it, like the single-level driver's start-of-step field).
        m_gravity->addSource(lev, s, dt);
        enforceConsistency(s, m_net, m_eos, m_opt.small_dens);
    }

    if (m_opt.do_react) {
        accumulate(reactState(s, m_net, m_eos, 0.5 * dt, m_opt.react, cost, lev));
    }

    ++m_advances[lev];
}

void CastroAmr::timeStep(int lev, Real time, Real dt, BurnGridStats& burn,
                         CostMonitor* cost) {
    // The register below lev+1 collects this coarse step's mismatch from
    // scratch (self-cleaning also makes StepGuard rollback trivial: a
    // re-advance re-zeroes before re-accumulating).
    if (reflux && lev < finestLevel() && m_flux_reg[lev + 1].isDefined()) {
        m_flux_reg[lev + 1].setVal(0.0);
    }

    advanceLevel(lev, time, dt, burn, cost);

    if (lev < finestLevel()) {
        const int nsub = subcycle ? refRatio() : 1;
        const Real sub_dt = dt / nsub;
        for (int i = 0; i < nsub; ++i) {
            timeStep(lev + 1, time + i * sub_dt, sub_dt, burn, cost);
        }
        // Sync point: repay the coarse zones that advanced with the
        // uncorrected coarse flux, overwrite covered zones with the fine
        // average, and restore EOS consistency on the merged state (the
        // post-burn averageDown used to skip this — covered-zone
        // temperatures drifted off the EOS).
        if (reflux && m_flux_reg[lev + 1].isDefined()) {
            m_flux_reg[lev + 1].Reflux(m_state[lev], geom(lev));
        }
        averageDown(m_state[lev], m_state[lev + 1], refRatio(), 0, 0,
                    m_layout.ncomp());
        enforceConsistency(m_state[lev], m_net, m_eos, m_opt.small_dens);
    }
}

BurnGridStats CastroAmr::advanceOnce(Real t0, Real dt) {
    BurnGridStats burn;
    CostMonitor* cost =
        m_opt.rebalance.enabled ? &m_rebalancer.monitor() : nullptr;
    if (m_gravity) {
        // One composite solve per coarse step couples every level; the
        // field is reused by each level advance within the step. Re-runs
        // under a StepGuard retry recompute it from the rolled-back state,
        // so the retry replays bit-identically.
        TimerRegion timer("castro::gravity");
        std::vector<Geometry> geoms;
        std::vector<const MultiFab*> states;
        for (int lev = 0; lev <= finestLevel(); ++lev) {
            geoms.push_back(geom(lev));
            states.push_back(&m_state[lev]);
        }
        m_gravity->solve(geoms, states, refRatio());
    }
    timeStep(0, t0, dt, burn, cost);
    return burn;
}

BurnGridStats CastroAmr::step(Real dt) {
    BurnGridStats burn;
    bool degraded = false;
    if (!m_guard.options().enabled) {
        burn = advanceOnce(m_time, dt);
    } else {
        // Snapshot every level's state and time bracket (and the register
        // payloads, after all the states so degrade's snap.mf(lev)
        // indexing is undisturbed); restore requires the BoxArrays to be
        // unchanged, which holds because regridding happens only below,
        // after the guarded step is accepted.
        const auto outcome = m_guard.advance(
            dt,
            [&](StateSnapshot& snap) {
                for (int lev = 0; lev <= finestLevel(); ++lev) {
                    snap.capture(m_state[lev]);
                    snap.captureScalar(m_t_old[lev]);
                    snap.captureScalar(m_t_new[lev]);
                }
                for (int lev = 1; lev <= finestLevel(); ++lev) {
                    if (!m_flux_reg[lev].isDefined()) continue;
                    for (int d = 0; d < 3; ++d) {
                        snap.capture(m_flux_reg[lev].mf(d));
                    }
                }
            },
            [&](const StateSnapshot& snap) {
                std::size_t idx = 0;
                for (int lev = 0; lev <= finestLevel(); ++lev) {
                    snap.restoreTo(static_cast<std::size_t>(lev), m_state[lev]);
                    m_t_old[lev] = snap.scalar(2 * idx);
                    m_t_new[lev] = snap.scalar(2 * idx + 1);
                    ++idx;
                }
                std::size_t mf_idx = static_cast<std::size_t>(finestLevel()) + 1;
                for (int lev = 1; lev <= finestLevel(); ++lev) {
                    if (!m_flux_reg[lev].isDefined()) continue;
                    for (int d = 0; d < 3; ++d) {
                        snap.restoreTo(mf_idx++, m_flux_reg[lev].mf(d));
                    }
                }
            },
            [&](Real sub_dt, int nsub) {
                burn = BurnGridStats{};
                Real t = m_time;
                for (int s = 0; s < nsub; ++s) {
                    burn.merge(advanceOnce(t, sub_dt));
                    t += sub_dt;
                }
            },
            [&] {
                ValidationReport rep;
                for (int lev = 0; lev <= finestLevel(); ++lev) {
                    // Burn stats are hierarchy-wide; attach them to the
                    // level-0 report so they are flagged exactly once.
                    ValidationReport r = validateState(
                        m_state[lev], m_net.nspec(), m_opt.guard,
                        lev == 0 ? &burn : nullptr,
                        "level " + std::to_string(lev));
                    for (auto& issue : r.issues) {
                        rep.issues.push_back(std::move(issue));
                    }
                }
                return rep;
            },
            [&](const StateSnapshot& snap, bool advance_threw) {
                degraded = true;
                if (!advance_threw) {
                    for (int lev = 0; lev <= finestLevel(); ++lev) {
                        repairInvalidZones(m_state[lev],
                                           snap.mf(static_cast<std::size_t>(lev)),
                                           m_opt.guard);
                        enforceConsistency(m_state[lev], m_net, m_eos,
                                           m_opt.small_dens);
                    }
                    // Zone repairs act level-locally; re-average so coarse
                    // data under fine grids reflects the repaired fine
                    // state before the run continues.
                    for (int lev = finestLevel(); lev > 0; --lev) {
                        averageDown(m_state[lev - 1], m_state[lev], refRatio(),
                                    0, 0, m_layout.ncomp());
                        enforceConsistency(m_state[lev - 1], m_net, m_eos,
                                           m_opt.small_dens);
                    }
                }
            });
        (void)outcome;
    }

    m_time += dt;
    ++m_nstep;
    // Every accepted step ends at a sync point: the mask-aware hierarchy
    // sums and the level-0 shortcut must agree to round-off. (A degraded
    // step re-averaged after repair, so it qualifies too; the check is
    // debug-build only.)
    assert(degraded || finestLevel() == 0 || syncPointSumsAgree());
    (void)degraded;
    if (regrid_interval > 0 && m_nstep % regrid_interval == 0 && maxLevel() > 0) {
        regrid(0);
    }
    // Re-evaluated after the regrid: rebuilt levels had their cost
    // history reset (the regrid's zone-count mapping is their cold
    // start), while stable levels can act on this step's measurements.
    maybeRebalance();
    return burn;
}

void CastroAmr::maybeRebalance() {
    if (!m_opt.rebalance.enabled) return;
    auto& mon = m_rebalancer.monitor();
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        const BoxArray& ba = boxArray(lev);
        for (std::size_t f = 0; f < ba.size(); ++f) {
            mon.addWork(lev, static_cast<int>(f),
                        m_opt.rebalance.hydro_zone_work *
                            static_cast<double>(ba[f].numPts()));
        }
        // The old-time state migrates with the state (same layout); the
        // flux register is redefined on the new mapping afterwards — its
        // contents are dead between sync points.
        std::vector<MultiFab*> fabs{&m_state[lev]};
        if (m_state_old[lev].isDefined()) fabs.push_back(&m_state_old[lev]);
        const auto d = m_rebalancer.step(lev, m_nstep, fabs);
        if (d.performed) {
            // Keep AmrCore's per-level mapping (used by the next regrid
            // and by fillPatch temporaries) in sync with the migration.
            m_dm[lev] = m_state[lev].distributionMap();
            if (lev > 0) {
                m_flux_reg[lev].define(m_state[lev].boxArray(),
                                       m_state[lev].distributionMap(),
                                       refRatio(), m_layout.ncomp());
            }
            if (m_gravity) m_gravity->noteRegrid();
        }
    }
}

Real CastroAmr::maskedSum(int comp) const {
    Real total = 0.0;
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        const Real vol = geom(lev).cellVolume();
        BoxArray covered; // next-finer boxes in this level's index space
        if (lev < finestLevel()) {
            covered = boxArray(lev + 1);
            covered.coarsen(refRatio());
        }
        const MultiFab& s = m_state[lev];
        for (std::size_t f = 0; f < s.size(); ++f) {
            const int fi = static_cast<int>(f);
            std::vector<Box> pieces{s.box(fi)};
            for (const auto& [j, isect] : covered.intersections(s.box(fi))) {
                (void)isect;
                std::vector<Box> next;
                for (const Box& p : pieces) {
                    for (const Box& q : boxDiff(p, covered[j])) next.push_back(q);
                }
                pieces = std::move(next);
                if (pieces.empty()) break;
            }
            for (const Box& p : pieces) {
                total += s.fab(fi).sum(p, comp) * vol;
            }
        }
    }
    return total;
}

bool CastroAmr::syncPointSumsAgree(Real rtol) const {
    for (const int comp : {StateLayout::URHO, StateLayout::UEDEN}) {
        const Real hier = maskedSum(comp);
        const Real lev0 = m_state[0].sum(comp) * geom(0).cellVolume();
        const Real scale = std::max(std::abs(hier), std::abs(lev0));
        if (std::abs(hier - lev0) > rtol * std::max(scale, Real(1.0))) {
            return false;
        }
    }
    return true;
}

Real CastroAmr::totalMass() const { return maskedSum(StateLayout::URHO); }

Real CastroAmr::totalEnergy() const { return maskedSum(StateLayout::UEDEN); }

Real CastroAmr::maxTemperature() const {
    Real t = 0.0;
    for (int lev = 0; lev <= finestLevel(); ++lev) {
        t = std::max(t, m_state[lev].max(StateLayout::UTEMP));
    }
    return t;
}

} // namespace exa::castro
