#pragma once

#include "castro/castro.hpp"

#include <memory>

namespace exa::castro {

// The Sedov-Taylor blast wave (Section IV-A): energy E deposited in a
// small region of a cold uniform medium drives a self-similar spherical
// shock, R(t) = (E t^2 / (alpha rho0))^(1/5). The standard performance
// benchmark for Castro-class codes.
//
// The params struct IS the problem config: build() is the canonical
// entry point, and the ensemble layer's ScenarioRegistry constructs
// these by name ("sedov") from a generic key=value ScenarioConfig.
struct SedovParams {
    int ncell = 32;          // zones per dimension
    int max_grid_size = 16;  // box chop
    int nranks = 1;
    Real rho0 = 1.0;         // ambient density
    Real p0 = 1.0e-5;        // ambient pressure (cold)
    Real E = 1.0;            // deposited energy
    Real r_init = 0.0;       // deposit radius; 0 -> 2 zone widths
    Real gamma = 1.4;
    Real cfl = 0.4;
    StepGuardOptions guard;  // step retry (off by default)
    RebalanceOptions rebalance; // cost-driven load balancing (off by default)

    // Build a gamma-law Castro instance initialized with the blast.
    std::unique_ptr<Castro> build(const ReactionNetwork& net) const;
};

[[deprecated("use SedovParams::build(net), or the ensemble ScenarioRegistry "
             "(\"sedov\") for config-driven construction")]]
inline std::unique_ptr<Castro> makeSedov(const SedovParams& p,
                                         const ReactionNetwork& net) {
    return p.build(net);
}

// Self-similar shock radius R(t) = (E t^2 / (alpha rho0))^(1/5) with the
// standard alpha(gamma = 1.4) = 0.851 similarity constant.
Real sedovShockRadius(Real t, Real E, Real rho0, Real gamma = 1.4);

// Measured shock radius: the radius (about the domain center) of the
// outermost zone whose density exceeds (1 + jump_frac) * rho0.
Real measureShockRadius(const Castro& c, Real rho0, Real jump_frac = 0.1);

} // namespace exa::castro
