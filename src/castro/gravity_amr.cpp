#include "castro/gravity_amr.hpp"

#include "core/parallel_for.hpp"
#include "core/timer.hpp"

namespace exa::castro {

AmrGravity::AmrGravity(MgBC bc, const CompositeMgOptions& opt)
    : m_bc(bc), m_opt(opt) {}

void AmrGravity::solve(const std::vector<Geometry>& geoms,
                       const std::vector<const MultiFab*>& states,
                       int ref_ratio) {
    TimerRegion timer("gravity/amr-solve");
    const std::size_t nlev = states.size();

    bool rebuild = m_dirty || m_layout_ids.size() != nlev;
    for (std::size_t l = 0; !rebuild && l < nlev; ++l) {
        rebuild = m_layout_ids[l].first != states[l]->boxArray().id() ||
                  m_layout_ids[l].second != states[l]->distributionMap().id();
    }
    if (rebuild) {
        std::vector<BoxArray> bas;
        std::vector<DistributionMapping> dms;
        std::vector<Geometry> gs;
        m_layout_ids.clear();
        for (std::size_t l = 0; l < nlev; ++l) {
            bas.push_back(states[l]->boxArray());
            dms.push_back(states[l]->distributionMap());
            gs.push_back(geoms[l]);
            m_layout_ids.emplace_back(bas.back().id(), dms.back().id());
        }
        CompositeMgOptions opt = m_opt;
        opt.nranks = dms[0].numRanks();
        m_cmg = std::make_unique<CompositeMg>(std::move(gs), std::move(bas),
                                              std::move(dms), ref_ratio, m_bc,
                                              opt);
        m_phi.clear();
        m_phi.resize(nlev);
        m_g.clear();
        m_g.resize(nlev);
        for (std::size_t l = 0; l < nlev; ++l) {
            m_phi[l].define(states[l]->boxArray(),
                            states[l]->distributionMap(), 1, 1);
            m_phi[l].setVal(0.0);
            m_g[l].define(states[l]->boxArray(), states[l]->distributionMap(),
                          3, 0);
        }
        m_dirty = false;
    }

    // rhs[lev] = 4 pi G rho on each level's own layout.
    std::vector<MultiFab> rhs(nlev);
    std::vector<MultiFab*> phi_ptrs(nlev);
    std::vector<const MultiFab*> rhs_ptrs(nlev);
    for (std::size_t l = 0; l < nlev; ++l) {
        rhs[l].define(states[l]->boxArray(), states[l]->distributionMap(), 1, 0);
        for (std::size_t f = 0; f < rhs[l].size(); ++f) {
            auto r = rhs[l].array(static_cast<int>(f));
            auto u = states[l]->const_array(static_cast<int>(f));
            ParallelFor(rhs[l].box(static_cast<int>(f)),
                        [=](int i, int j, int k) {
                            r(i, j, k) = 4.0 * constants::pi *
                                         constants::G_newton *
                                         u(i, j, k, StateLayout::URHO);
                        });
        }
        phi_ptrs[l] = &m_phi[l];
        rhs_ptrs[l] = &rhs[l];
    }

    m_last = m_cmg->solve(phi_ptrs, rhs_ptrs);
    m_totals.vcycles += m_last.all_vcycles;
    m_totals.fmg_cycles += m_last.fmg_cycles;
    m_totals.sweeps += m_last.sweeps;
    m_totals.agg_copies += m_last.agg_copies;
    m_totals.agg_bytes += m_last.agg_bytes;

    // Ghosts for the gradient stencil: same-level exchange, coarse-fine
    // interpolation, physical BC.
    m_cmg->fillCompositeGhosts(phi_ptrs);
    for (std::size_t l = 0; l < nlev; ++l) {
        computeGravityAccel(m_phi[l], m_g[l], geoms[l]);
    }
}

void AmrGravity::addSource(int lev, MultiFab& state, Real dt) const {
    applyGravitySource(state, m_g[lev], dt);
}

void AmrGravity::resetPoissonWarmStart() {
    for (MultiFab& p : m_phi) p.setVal(0.0);
}

MgEvent AmrGravity::totals() const {
    MgEvent e;
    e.fmg_cycles = m_totals.fmg_cycles;
    e.vcycles = m_totals.vcycles;
    e.sweeps = m_totals.sweeps;
    e.agg_copies = m_totals.agg_copies;
    e.agg_bytes = m_totals.agg_bytes;
    return e;
}

} // namespace exa::castro
