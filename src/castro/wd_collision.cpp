#include "castro/wd_collision.hpp"

#include <algorithm>
#include <cmath>

namespace exa::castro {

namespace {

// Invert P(rho) at fixed T and composition by Newton iteration.
Real rhoOfP(const Eos& eos, Real p_target, Real T, Real abar, Real ye, Real rho_guess) {
    Real rho = rho_guess;
    for (int it = 0; it < 80; ++it) {
        EosState s;
        s.rho = rho;
        s.T = T;
        s.abar = abar;
        s.ye = ye;
        eos.rhoT(s);
        const Real drho = (p_target - s.p) / std::max(s.dpdr, Real(1.0e-30));
        rho += std::clamp(drho, -0.5 * rho, 0.5 * rho);
        if (std::abs(drho) < 1.0e-12 * rho) break;
    }
    return rho;
}

} // namespace

Real WdProfile::rhoAt(Real rr) const {
    if (rr >= radius || r.empty()) return 0.0;
    auto it = std::upper_bound(r.begin(), r.end(), rr);
    const std::size_t hi = std::min<std::size_t>(it - r.begin(), r.size() - 1);
    if (hi == 0) return rho.front();
    const std::size_t lo = hi - 1;
    const Real f = (rr - r[lo]) / std::max(r[hi] - r[lo], Real(1.0e-30));
    return rho[lo] + f * (rho[hi] - rho[lo]);
}

WdProfile buildWdProfile(const Eos& eos, const ReactionNetwork& net, Real rho_c,
                         Real T_iso, const std::vector<Real>& X, int nshells) {
    WdProfile prof;
    prof.rho_c = rho_c;
    prof.T_iso = T_iso;
    const Real abar = net.abar(X.data());
    const Real ye = net.ye(X.data());

    // Estimate the radius scale from the non-relativistic polytrope and
    // integrate a bit beyond it.
    const Real r_guess = 1.1e9 * std::pow(rho_c / 1.0e6, -1.0 / 6.0);
    const Real dr = 2.5 * r_guess / nshells;

    EosState s;
    s.rho = rho_c;
    s.T = T_iso;
    s.abar = abar;
    s.ye = ye;
    eos.rhoT(s);
    Real p = s.p;
    Real rho = rho_c;
    Real m = 0.0;
    const Real rho_cut = 1.0e-5 * rho_c;

    prof.r.push_back(0.0);
    prof.rho.push_back(rho_c);
    for (int i = 1; i <= nshells; ++i) {
        const Real r0 = (i - 1) * dr;
        const Real r1 = i * dr;
        const Real rmid = 0.5 * (r0 + r1);
        // Midpoint update of mass and pressure (RK2).
        const Real m_mid = m + 4.0 * constants::pi * r0 * r0 * rho * (0.5 * dr);
        const Real g_mid =
            rmid > 0 ? -constants::G_newton * m_mid / (rmid * rmid) : 0.0;
        const Real p_new = p + g_mid * rho * dr;
        if (p_new <= 0.0) break;
        const Real rho_new = rhoOfP(eos, p_new, T_iso, abar, ye, rho);
        m += 4.0 * constants::pi * rmid * rmid * 0.5 * (rho + rho_new) * dr;
        p = p_new;
        rho = rho_new;
        prof.r.push_back(r1);
        prof.rho.push_back(rho);
        if (rho < rho_cut) break;
    }
    prof.radius = prof.r.back();
    prof.mass = m;
    return prof;
}

WdCollision WdCollisionParams::build(const ReactionNetwork& net) const {
    const WdCollisionParams& p = *this;
    WdCollision out;
    out.params = p;

    Eos eos{HelmLiteEos{}};
    const int nspec = net.nspec();
    // 50/50 carbon/oxygen star (or pure carbon for 2-species networks).
    std::vector<Real> Xstar(nspec, 0.0);
    const int ic12 = net.speciesIndex("c12");
    const int io16 = net.speciesIndex("o16");
    if (ic12 >= 0 && io16 >= 0) {
        Xstar[ic12] = 0.5;
        Xstar[io16] = 0.5;
    } else if (ic12 >= 0) {
        Xstar[ic12] = 1.0;
    } else {
        Xstar[0] = 1.0;
    }

    out.profile = buildWdProfile(eos, net, p.rho_c, p.T_star, Xstar);

    const Real L = p.domain_width;
    Box domain({0, 0, 0}, {p.ncell - 1, p.ncell - 1, p.ncell - 1});
    Geometry geom(domain, {-0.5 * L, -0.5 * L, -0.5 * L}, {0.5 * L, 0.5 * L, 0.5 * L});
    BoxArray ba(domain);
    ba.maxSize(p.max_grid_size);
    DistributionMapping dm(ba, p.nranks);

    CastroOptions opt;
    opt.cfl = p.cfl;
    opt.bc = DomainBC::allOutflow();
    opt.gravity = p.gravity;
    opt.do_react = p.do_react;
    opt.react.T_min = 1.0e8;
    opt.react.rho_min = 1.0e4;
    // Burn with the batched engine by default: the collision's reacting
    // interface is exactly the many-quiescent-zones-plus-stiff-hot-spots
    // distribution the stiffness sort and hybrid tail are built for
    // (EXPERIMENTS.md E14).
    opt.react.batched = true;
    opt.react.batch.hybrid_cpu_tail = true;
    // Burn cost dominates and is well modeled by integrator steps, but
    // the EOS/gravity side is not; the Hybrid metric (work blended with
    // measured wall time) balances best on this workload (E9 calibration).
    opt.rebalance.cost.metric = CostMetric::Hybrid;

    out.castro = std::make_unique<Castro>(geom, ba, dm, net, eos, opt);

    const Real xc = 0.5 * p.separation_in_diameters * (2.0 * out.profile.radius);
    const WdProfile& prof = out.profile;
    const Real vx = p.approach_velocity;
    out.castro->initialize([&, vx, xc](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.X = Xstar;
        const Real r1 = std::sqrt((x + xc) * (x + xc) + y * y + z * z);
        const Real r2 = std::sqrt((x - xc) * (x - xc) + y * y + z * z);
        const Real rho1 = prof.rhoAt(r1);
        const Real rho2 = prof.rhoAt(r2);
        if (rho1 > p.ambient_rho) {
            zn.rho = rho1;
            zn.T = p.T_star;
            zn.vel = {vx, 0, 0}; // left star moves right
        } else if (rho2 > p.ambient_rho) {
            zn.rho = rho2;
            zn.T = p.T_star;
            zn.vel = {-vx, 0, 0};
        } else {
            zn.rho = p.ambient_rho;
            zn.T = p.ambient_T;
        }
        return zn;
    });
    return out;
}

WdCollision WdCollisionParams::build() const {
    auto net = std::make_unique<ReactionNetwork>(makeNetworkByName(network));
    WdCollision out = build(*net);
    out.network = std::move(net);
    return out;
}

Real WdCollision::runToIgnition(Real t_max, int max_steps) {
    while (castro->time() < t_max && castro->stepCount() < max_steps) {
        if (castro->maxTemperature() >= params.ignition_T) {
            return castro->time();
        }
        const Real dt = std::min(castro->estimateDt(), t_max - castro->time());
        castro->step(dt);
    }
    return castro->maxTemperature() >= params.ignition_T ? castro->time() : -1.0;
}

} // namespace exa::castro
