#pragma once

#include "castro/state.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/multifab.hpp"
#include "microphysics/network.hpp"
#include "solvers/mg/composite_mg.hpp"
#include "solvers/multigrid.hpp"

#include <array>
#include <memory>
#include <string>

namespace exa::castro {

// Self-gravity for Castro-mini. Three solvers, as in Castro:
//   * Monopole: spherically averaged mass profile about a center;
//     g(r) = -G M(<r) / r^2. Cheap, exact for spherical stars; used for
//     the early (free-fall) phase sanity checks.
//   * Poisson: full multigrid solve of lap(phi) = 4 pi G rho with
//     homogeneous Dirichlet boundaries (the domain is assumed to extend
//     well beyond the mass). This is the "global linear solve similar to
//     [the multigrid solve], though a little easier" of Section V.
//   * PoissonAmr: the same Poisson problem solved by the composite-grid
//     FMG solver (CompositeMg). On the single-level driver this is one
//     AMR rung plus the geometric ladder below; CastroAmr couples every
//     AMR level into one solve (AmrGravity).
enum class GravityType { None, Monopole, Poisson, PoissonAmr };

// Parse a config-file gravity name: "none", "monopole", "poisson",
// "poisson-amr". Throws std::invalid_argument otherwise.
GravityType gravityTypeFromName(const std::string& name);

// g = -grad(phi) by central differences on phi's valid region. Ghost
// zones of phi must be current (same-level exchange + coarse-fine
// interpolation where applicable); at physical boundaries the stencil
// goes one-sided with phi -> 0 outside (far-field Dirichlet).
void computeGravityAccel(const MultiFab& phi, MultiFab& g, const Geometry& geom);

// Operator-split momentum + trapezoidal energy source over dt from a
// 3-component acceleration field on the state's layout.
void applyGravitySource(MultiFab& state, const MultiFab& g, Real dt);

class Gravity {
public:
    Gravity(GravityType type, const Geometry& geom, int nspec);

    // Recompute the acceleration field (3 components) from the state.
    void solve(const MultiFab& state);

    const MultiFab& accel() const { return m_g; }

    // Apply the gravitational source over dt: momentum and energy.
    void addSource(MultiFab& state, Real dt) const;

    // Center for the monopole solver (defaults to the domain center).
    void setCenter(const std::array<Real, 3>& c) { m_center = c; }

    // Total modeled multigrid V-cycles (performance accounting).
    int lastVcycles() const { return m_last_vcycles; }

    // Lifetime MG counters for the composite solver (zeros for the other
    // gravity types); feeds the supervisor / ensemble summaries.
    MgEvent mgTotals() const;

    // The fabs living on the state's layout that must migrate with it
    // when the load balancer redistributes (empty until the first solve
    // defines them; the multigrid hierarchy keeps its own internal
    // partition and ParallelCopies in/out, so it needs no migration).
    std::vector<MultiFab*> rebalanceFabs();

    GravityType type() const { return m_type; }

    // Drop the Poisson warm start back to a cold (zero) initial guess.
    // The acceleration is fully recomputed by every solve, but phi seeds
    // the next multigrid solve — after a rank-failure recovery poisons it,
    // this makes the solver re-converge from scratch instead of iterating
    // on garbage. No-op for Monopole/None or before the first solve.
    void resetPoissonWarmStart();

private:
    void solveMonopole(const MultiFab& state);
    void solvePoisson(const MultiFab& state);
    void solvePoissonAmr(const MultiFab& state);

    GravityType m_type;
    Geometry m_geom;
    MultiFab m_g;   // acceleration, 3 components, on the state's BoxArray
    MultiFab m_phi; // potential (Poisson/PoissonAmr only)
    std::unique_ptr<Multigrid> m_mg;
    std::unique_ptr<CompositeMg> m_cmg; // PoissonAmr; rebuilt on layout change
    std::uint64_t m_cmg_ba_id = 0;
    std::uint64_t m_cmg_dm_id = 0;
    std::array<Real, 3> m_center;
    int m_last_vcycles = 0;
    bool m_defined = false;
};

} // namespace exa::castro
