#pragma once

#include "castro/state.hpp"
#include "mesh/multifab.hpp"
#include "microphysics/network.hpp"
#include "solvers/multigrid.hpp"

#include <array>
#include <memory>

namespace exa::castro {

// Self-gravity for Castro-mini. Two solvers, as in Castro:
//   * Monopole: spherically averaged mass profile about a center;
//     g(r) = -G M(<r) / r^2. Cheap, exact for spherical stars; used for
//     the early (free-fall) phase sanity checks.
//   * Poisson: full multigrid solve of lap(phi) = 4 pi G rho with
//     homogeneous Dirichlet boundaries (the domain is assumed to extend
//     well beyond the mass). This is the "global linear solve similar to
//     [the multigrid solve], though a little easier" of Section V.
enum class GravityType { None, Monopole, Poisson };

class Gravity {
public:
    Gravity(GravityType type, const Geometry& geom, int nspec);

    // Recompute the acceleration field (3 components) from the state.
    void solve(const MultiFab& state);

    const MultiFab& accel() const { return m_g; }

    // Apply the gravitational source over dt: momentum and energy.
    void addSource(MultiFab& state, Real dt) const;

    // Center for the monopole solver (defaults to the domain center).
    void setCenter(const std::array<Real, 3>& c) { m_center = c; }

    // Total modeled multigrid V-cycles (performance accounting).
    int lastVcycles() const { return m_last_vcycles; }

    // The fabs living on the state's layout that must migrate with it
    // when the load balancer redistributes (empty until the first solve
    // defines them; the multigrid hierarchy keeps its own internal
    // partition and ParallelCopies in/out, so it needs no migration).
    std::vector<MultiFab*> rebalanceFabs();

    GravityType type() const { return m_type; }

    // Drop the Poisson warm start back to a cold (zero) initial guess.
    // The acceleration is fully recomputed by every solve, but phi seeds
    // the next multigrid solve — after a rank-failure recovery poisons it,
    // this makes the solver re-converge from scratch instead of iterating
    // on garbage. No-op for Monopole/None or before the first solve.
    void resetPoissonWarmStart();

private:
    void solveMonopole(const MultiFab& state);
    void solvePoisson(const MultiFab& state);

    GravityType m_type;
    Geometry m_geom;
    MultiFab m_g;   // acceleration, 3 components, on the state's BoxArray
    MultiFab m_phi; // potential (Poisson only)
    std::unique_ptr<Multigrid> m_mg;
    std::array<Real, 3> m_center;
    int m_last_vcycles = 0;
    bool m_defined = false;
};

} // namespace exa::castro
