#pragma once

#include "castro/gravity.hpp"
#include "castro/hydro.hpp"
#include "castro/react.hpp"
#include "mesh/phys_bc.hpp"
#include "mesh/rebalance/rebalancer.hpp"
#include "mesh/step_guard.hpp"

#include <functional>
#include <memory>

namespace exa::castro {

struct CastroOptions {
    Real cfl = 0.4;
    DomainBC bc = DomainBC::allOutflow();
    GravityType gravity = GravityType::None;
    Reconstruction reconstruction = Reconstruction::PLM;
    bool do_react = false;
    ReactOptions react;
    int ngrow = 4;
    Real small_dens = 1.0e-12;
    // Step retry: snapshot / validate / rollback-with-dt-backoff around
    // every step (Castro's use_retry analogue). Off by default.
    StepGuardOptions guard;
    // Cost-driven load balancing: measure per-box burn/hydro cost and
    // migrate state to a cost-weighted mapping when the imbalance
    // warrants it. Off by default.
    RebalanceOptions rebalance;
};

// The single-level Castro-mini driver: compressible reacting
// hydrodynamics with self-gravity, advanced by Strang splitting
// (half-burn, hydro+gravity, half-burn) and a two-stage SSP-RK2
// method-of-lines hydro update.
class Castro {
public:
    Castro(const Geometry& geom, const BoxArray& ba, const DistributionMapping& dm,
           const ReactionNetwork& net, const Eos& eos, const CastroOptions& opt);

    MultiFab& state() { return m_state; }
    const MultiFab& state() const { return m_state; }
    // The resolved options this driver runs with (factories like
    // makeWdCollision flip burn/rebalance defaults; tests read them back
    // here).
    const CastroOptions& options() const { return m_opt; }
    const Geometry& geom() const { return m_geom; }
    const ReactionNetwork& network() const { return m_net; }
    const Eos& eos() const { return m_eos; }

    // Initialize from a per-zone functor f(x, y, z) -> EosState + velocity
    // + mass fractions. The functor fills rho, T (or e/p via the EOS
    // before returning), velocity and X.
    struct InitialZone {
        Real rho = 1.0;
        Real T = 1.0;
        Real p = -1.0; // if >= 0, p is used instead of T
        std::array<Real, 3> vel{0, 0, 0};
        std::vector<Real> X;
    };
    using InitFn = std::function<InitialZone(Real x, Real y, Real z)>;
    void initialize(const InitFn& f);

    Real estimateDt() const;
    // Advance one step; returns burn statistics (zeros when reactions are
    // off). With opt.guard.enabled the step runs under the StepGuard
    // retry loop: an invalid post-step state is rolled back and
    // re-advanced as 2, 4, ... substeps; a guarded step still advances
    // time by exactly dt and counts as one step.
    BurnGridStats step(Real dt);

    Real time() const { return m_time; }
    int stepCount() const { return m_nstep; }

    // Restore path (resilience): rewind the clock to a checkpoint's time
    // and step count after the state fab has been restored. Replaying
    // steps from here is deterministic, so a recovered run is
    // bit-identical to an uninterrupted one.
    void resetTime(Real t, int nstep) {
        m_time = t;
        m_nstep = nstep;
    }

    // Retry accounting for the guarded steps of this run (zeros when the
    // guard is disabled).
    const RetryStats& retryStats() const { return m_guard.stats(); }

    // Diagnostics.
    Real totalMass() const;
    std::array<Real, 3> totalMomentum() const;
    Real totalEnergy() const;
    Real maxTemperature() const;
    Real maxDensity() const;
    // Location of the hottest zone (zone centers, physical coordinates).
    std::array<Real, 3> hottestZone() const;

    // The paper's numerical-stability diagnostic (Section V): minimum over
    // hot zones of (burning timescale) / (zonal sound-crossing time). A
    // value < 1 means zone-scale numerical runaway cannot be excluded.
    Real minBurnTimescaleRatio(Real T_threshold = 1.0e9) const;

    Gravity& gravity() { return m_gravity; }

    // Load-balancer access (cost monitor, decision stats) for tests and
    // benches.
    Rebalancer& rebalancer() { return m_rebalancer; }
    const Rebalancer& rebalancer() const { return m_rebalancer; }

    // Fill state ghosts: exchange + physical BCs.
    void fillGhosts(MultiFab& s);

private:
    // The physical-boundary half of fillGhosts (domain BCs with odd
    // momentum reflection); runs after the halo delivery in both the
    // fused and the split-phase step.
    void applyPhysBC(MultiFab& s);
    // Returns the wall seconds spent in the RHS compute sweeps (the
    // stageRhs timings summed), for the cost monitor.
    double hydroAdvance(Real dt);
    // One RK-stage RHS: ghost fill + molRhs, split-phase (interior sweep
    // overlapping the halo exchange) when comm::asyncHalo() is on.
    // Returns wall seconds of the compute sweeps alone — the ghost
    // exchange and physical-BC work are excluded, so the cost monitor's
    // Time channel sees hydro compute, not comm waits.
    double stageRhs(MultiFab& s, MultiFab& dudt);
    // One unguarded advance of size dt (the pre-guard step body); does not
    // touch m_time/m_nstep.
    BurnGridStats advanceOnce(Real dt);
    // Zones-proportional attribution of the hydro compute time to the
    // cost monitor (the hydro loops are MultiFab-wide, so per-fab timers
    // would only bracket the same proportional split). `seconds` must be
    // compute-sweep time only: crediting whole-step wall time would book
    // fill/halo waits — comm, not hydro — as per-box hydro cost and skew
    // Time-metric rebalancing toward boxes that wait the longest.
    void creditHydroTime(double seconds);
    // End-of-step rebalance hook: feed the hydro work channel, then let
    // the Rebalancer commit this step's costs and decide.
    void maybeRebalance();

    Geometry m_geom;
    const ReactionNetwork& m_net;
    Eos m_eos;
    CastroOptions m_opt;
    StateLayout m_layout;
    MultiFab m_state;
    Gravity m_gravity;
    StepGuard m_guard;
    Rebalancer m_rebalancer;
    Real m_time = 0.0;
    int m_nstep = 0;
};

} // namespace exa::castro
