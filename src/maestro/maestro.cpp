#include "maestro/maestro.hpp"

#include "core/executor.hpp"
#include "core/parallel_for.hpp"
#include "core/timer.hpp"
#include "mesh/copier_cache.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace exa::maestro {

namespace {

// MC-limited slope (local copy of the hydro limiter, on maestro state).
EXA_FORCE_INLINE Real mcSlope(Array4<const Real> q, int i, int j, int k, int n,
                              int d) {
    const IntVect e = IntVect::basis(d);
    const Real dl = q(i, j, k, n) - q(i - e.x, j - e.y, k - e.z, n);
    const Real dr = q(i + e.x, j + e.y, k + e.z, n) - q(i, j, k, n);
    if (dl * dr <= 0.0) return 0.0;
    const Real dc = 0.5 * (dl + dr);
    const Real lim = 2.0 * std::min(std::abs(dl), std::abs(dr));
    return std::copysign(std::min(std::abs(dc), lim), dc);
}

} // namespace

Maestro::Maestro(const Geometry& geom, const BoxArray& ba,
                 const DistributionMapping& dm, const ReactionNetwork& net,
                 const Eos& eos, const BaseState& base, const MaestroOptions& opt)
    : m_geom(geom),
      m_net(net),
      m_eos(eos),
      m_base(base),
      m_opt(opt),
      m_layout(net.nspec()),
      m_state(ba, dm, m_layout.ncomp(), opt.ngrow),
      m_guard(opt.guard),
      m_rebalancer(opt.rebalance) {
    m_state.setVal(0.0);
    m_mg = std::make_unique<Multigrid>(geom, MgBC::Neumann, opt.mg);
    m_phi.define(ba, dm, 1, 1);
    m_phi.setVal(0.0);
    m_divu.define(ba, dm, 1, 0);
    m_rebalancer.noteRegrid(0, ba.size());
}

void Maestro::initialize(const InitFn& f) {
    const int nspec = m_net.nspec();
    std::vector<Real> X(nspec);
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    Real T = m_base.T0(k);
                    X.assign(m_base.X().begin(), m_base.X().end());
                    f(m_geom.cellCenter(0, i), m_geom.cellCenter(1, j),
                      m_geom.cellCenter(2, k), T, X);
                    q(i, j, k, MaestroLayout::QT) = T;
                    for (int n = 0; n < nspec; ++n) {
                        q(i, j, k, MaestroLayout::QFS + n) = X[n];
                    }
                }
    }
}

Real Maestro::rhoOf(int kzone, Real T, const Real* X) const {
    const Real abar = m_net.abar(X);
    const Real ye = m_net.ye(X);
    return rhoFromPT(m_eos, m_base.p0(kzone), T, abar, ye, m_base.rho0(kzone));
}

void Maestro::applyPhysBC(MultiFab& s) {
    DomainBC bc;
    bc.set(0, 0, m_geom.isPeriodic(0) ? PhysBC::Periodic : PhysBC::Outflow);
    bc.set(0, 1, m_geom.isPeriodic(0) ? PhysBC::Periodic : PhysBC::Outflow);
    bc.set(1, 0, m_geom.isPeriodic(1) ? PhysBC::Periodic : PhysBC::Outflow);
    bc.set(1, 1, m_geom.isPeriodic(1) ? PhysBC::Periodic : PhysBC::Outflow);
    bc.set(2, 0, PhysBC::Reflect); // slip walls top and bottom
    bc.set(2, 1, PhysBC::Reflect);
    std::array<std::vector<int>, 3> odd;
    odd[2] = {MaestroLayout::QW};
    fillPhysicalBoundary(s, m_geom, bc, odd);
}

void Maestro::fillGhosts(MultiFab& s) {
    s.FillBoundary(0, s.nComp(), m_geom.periodicity());
    applyPhysBC(s);
}

Real Maestro::estimateDt() const {
    // Advective CFL (no sound speed — the low Mach advantage) plus a
    // buoyancy limit so the first steps (U = 0) are finite.
    Real umax = 0.0;
    Real amax = 1.0e-30;
    const int nspec = m_net.nspec();
    std::vector<Real> X(nspec);
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.const_array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    for (int d = 0; d < 3; ++d) {
                        umax = std::max(umax, std::abs(q(i, j, k, d)));
                    }
                    for (int n = 0; n < nspec; ++n) {
                        X[n] = q(i, j, k, MaestroLayout::QFS + n);
                    }
                    const Real rho =
                        rhoOf(k, q(i, j, k, MaestroLayout::QT), X.data());
                    const Real buoy = std::abs(m_base.gravity()) *
                                      std::abs(rho - m_base.rho0(k)) /
                                      m_base.rho0(k);
                    amax = std::max(amax, buoy);
                }
    }
    const Real dx = m_geom.cellSize(0);
    Real dt = 1.0e30;
    if (umax > 0.0) dt = std::min(dt, m_opt.cfl * dx / umax);
    dt = std::min(dt, std::sqrt(2.0 * m_opt.cfl * dx / amax));
    return dt;
}

void Maestro::advect(Real dt) {
    TimerRegion timer("maestro::advect");
    const int nc = m_layout.ncomp();
    MultiFab snew(m_state.boxArray(), m_state.distributionMap(), nc, m_state.nGrow());

    const Real dxi[3] = {1.0 / m_geom.cellSize(0), 1.0 / m_geom.cellSize(1),
                         1.0 / m_geom.cellSize(2)};
    // One upwind sweep over `region` of fab b (a pure function of m_state,
    // so any disjoint region cover of the valid box matches the fused
    // sweep bit-for-bit). Reads q at +-2 zones: face upwinding one zone
    // out, MC slopes one further.
    auto sweep = [&](std::size_t b, const Box& region) {
        auto q = m_state.const_array(static_cast<int>(b));
        auto qn = snew.array(static_cast<int>(b));
        ParallelFor(KernelInfo{"maestro_advect", 300.0, 200.0, 96, 1.0}, region, nc,
                    [=](int i, int j, int k, int n) {
                        Real dq = 0.0;
                        for (int d = 0; d < 3; ++d) {
                            const IntVect e = IntVect::basis(d);
                            // Face velocities (average of adjacent zones).
                            const Real ulo = 0.5 * (q(i - e.x, j - e.y, k - e.z, d) +
                                                    q(i, j, k, d));
                            const Real uhi = 0.5 * (q(i, j, k, d) +
                                                    q(i + e.x, j + e.y, k + e.z, d));
                            // Upwind MC-reconstructed face states.
                            auto face = [&](int ii, int jj, int kk, Real uf) {
                                // face between (ii,jj,kk)-e and (ii,jj,kk)
                                if (uf >= 0.0) {
                                    return q(ii - e.x, jj - e.y, kk - e.z, n) +
                                           0.5 * mcSlope(q, ii - e.x, jj - e.y,
                                                         kk - e.z, n, d);
                                }
                                return q(ii, jj, kk, n) -
                                       0.5 * mcSlope(q, ii, jj, kk, n, d);
                            };
                            const Real qlo = face(i, j, k, ulo);
                            const Real qhi =
                                face(i + e.x, j + e.y, k + e.z, uhi);
                            // Advective (convective) form: U . grad q,
                            // using flux difference minus q div(U) so a
                            // constant field is exactly preserved.
                            dq += (uhi * qhi - ulo * qlo -
                                   q(i, j, k, n) * (uhi - ulo)) *
                                  dxi[d];
                        }
                        qn(i, j, k, n) = q(i, j, k, n) - dt * dq;
                    });
    };

    if (comm::asyncHalo()) {
        // Split phase: pack the exchange, copy valid zones and sweep every
        // interior while it is in flight, then deliver ghosts + physical
        // BCs and sweep the boundary shells.
        comm::HaloHandle halo =
            m_state.FillBoundary_nowait(0, nc, m_geom.periodicity());
        MultiFab::Copy(snew, m_state, 0, 0, nc, 0);
        const auto part =
            CopierCache::instance().interiorPartition(m_state.boxArray(), 2);
        {
            StreamScope streams;
            for (std::size_t b = 0; b < m_state.size(); ++b) {
                if (!part->fabs[b].interior.ok()) continue;
                streams.useFab(b);
                sweep(b, part->fabs[b].interior);
            }
        }
        halo.finish();
        applyPhysBC(m_state);
        {
            StreamScope streams;
            for (std::size_t b = 0; b < m_state.size(); ++b) {
                streams.useFab(b);
                for (const Box& sb : part->fabs[b].shell) sweep(b, sb);
            }
        }
    } else {
        fillGhosts(m_state);
        MultiFab::Copy(snew, m_state, 0, 0, nc, 0);
        StreamScope streams;
        for (std::size_t b = 0; b < m_state.size(); ++b) {
            streams.useFab(b);
            sweep(b, m_state.box(static_cast<int>(b)));
        }
    }
    m_state = std::move(snew);
}

void Maestro::buoyancy(Real dt) {
    TimerRegion timer("maestro::buoyancy");
    const int nspec = m_net.nspec();
    const Real g = m_base.gravity();
    std::vector<Real> X(nspec);
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    for (int n = 0; n < nspec; ++n) {
                        X[n] = q(i, j, k, MaestroLayout::QFS + n);
                    }
                    const Real rho =
                        rhoOf(k, q(i, j, k, MaestroLayout::QT), X.data());
                    q(i, j, k, MaestroLayout::QW) +=
                        dt * g * (rho - m_base.rho0(k)) / m_base.rho0(k);
                }
    }
}

BurnGridStats Maestro::react(Real dt) {
    TimerRegion timer("maestro::react");
    BurnGridStats stats;
    const int nspec = m_net.nspec();
    std::vector<Real> X(nspec);
    CostMonitor* cost =
        m_opt.rebalance.enabled ? &m_rebalancer.monitor() : nullptr;
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        CostMonitor::ScopedFabTimer fab_timer(cost, 0, static_cast<int>(b));
        auto q = m_state.array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        std::int64_t fab_steps = 0, fab_zones = 0, fab_max = 0;
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    ++fab_zones;
                    const Real T = q(i, j, k, MaestroLayout::QT);
                    if (T < m_opt.react.T_min) {
                        ++fab_steps;
                        fab_max = std::max<std::int64_t>(fab_max, 1);
                        continue;
                    }
                    for (int n = 0; n < nspec; ++n) {
                        X[n] = std::clamp(q(i, j, k, MaestroLayout::QFS + n),
                                          Real(0), Real(1));
                    }
                    const Real rho = rhoOf(k, T, X.data());
                    auto r = burnZone(m_net, m_eos, rho, T, X.data(), dt,
                                      m_opt.react.ode);
                    if (r.success) {
                        q(i, j, k, MaestroLayout::QT) = r.T;
                        for (int n = 0; n < nspec; ++n) {
                            q(i, j, k, MaestroLayout::QFS + n) = r.X[n];
                        }
                    } else {
                        ++stats.failures;
                        if (!stats.first_failure.valid) {
                            stats.first_failure = {true, i, j, k,
                                                   static_cast<int>(b), -1, rho, T};
                        }
                    }
                    const std::int64_t st = std::max<std::int64_t>(r.stats.steps, 1);
                    fab_steps += st;
                    fab_max = std::max(fab_max, st);
                }
        stats.zones += fab_zones;
        stats.total_steps += fab_steps;
        stats.max_steps = std::max(stats.max_steps, fab_max);
        if (cost != nullptr) {
            // Burn work channel; the wall-time channel is credited by
            // fab_timer's destructor.
            cost->addWork(0, static_cast<int>(b),
                          static_cast<double>(fab_steps));
        }
        if (ExecConfig::accountsLaunches() && fab_zones > 0) {
            const double mean = static_cast<double>(fab_steps) / fab_zones;
            LaunchRecord rec;
            rec.info = burnKernelInfo(nspec, std::max(mean, 1.0),
                                      fab_max / std::max(mean, 1.0));
            rec.zones = fab_zones;
            rec.stream = ExecConfig::currentStream();
            ExecConfig::notifyLaunch(rec);
        }
    }
    return stats;
}

void Maestro::project() {
    TimerRegion timer("maestro::projection");
    fillGhosts(m_state);
    const Real dxi[3] = {1.0 / m_geom.cellSize(0), 1.0 / m_geom.cellSize(1),
                         1.0 / m_geom.cellSize(2)};
    // divu = div U (central differences).
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.const_array(static_cast<int>(b));
        auto d = m_divu.array(static_cast<int>(b));
        ParallelFor(KernelInfo{"maestro_divu", 20.0, 80.0, 40, 1.0},
                    m_divu.box(static_cast<int>(b)), [=](int i, int j, int k) {
                        d(i, j, k) =
                            0.5 * (q(i + 1, j, k, 0) - q(i - 1, j, k, 0)) * dxi[0] +
                            0.5 * (q(i, j + 1, k, 1) - q(i, j - 1, k, 1)) * dxi[1] +
                            0.5 * (q(i, j, k + 1, 2) - q(i, j, k - 1, 2)) * dxi[2];
                    });
    }
    auto res = m_mg->solve(m_phi, m_divu);
    m_last_vcycles = res.vcycles;

    // U -= grad phi (same central stencil: an approximate projection).
    m_phi.FillBoundary(0, m_phi.nComp(), m_geom.periodicity());
    // Neumann ghosts at the z walls.
    for (std::size_t b = 0; b < m_phi.size(); ++b) {
        auto p = m_phi.array(static_cast<int>(b));
        const Box& vb = m_phi.box(static_cast<int>(b));
        const Box& dom = m_geom.domain();
        if (vb.smallEnd(2) == dom.smallEnd(2)) {
            const int k0 = dom.smallEnd(2);
            ParallelFor(Box({vb.smallEnd(0) - 1, vb.smallEnd(1) - 1, k0 - 1},
                            {vb.bigEnd(0) + 1, vb.bigEnd(1) + 1, k0 - 1}),
                        [=](int i, int j, int k) {
                            if (p.contains(i, j, k)) p(i, j, k) = p(i, j, k0);
                        });
        }
        if (vb.bigEnd(2) == dom.bigEnd(2)) {
            const int k1 = dom.bigEnd(2);
            ParallelFor(Box({vb.smallEnd(0) - 1, vb.smallEnd(1) - 1, k1 + 1},
                            {vb.bigEnd(0) + 1, vb.bigEnd(1) + 1, k1 + 1}),
                        [=](int i, int j, int k) {
                            if (p.contains(i, j, k)) p(i, j, k) = p(i, j, k1);
                        });
        }
    }
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.array(static_cast<int>(b));
        auto p = m_phi.const_array(static_cast<int>(b));
        ParallelFor(KernelInfo{"maestro_proj_correct", 30.0, 100.0, 48, 1.0},
                    m_state.box(static_cast<int>(b)), [=](int i, int j, int k) {
                        q(i, j, k, 0) -=
                            0.5 * (p(i + 1, j, k) - p(i - 1, j, k)) * dxi[0];
                        q(i, j, k, 1) -=
                            0.5 * (p(i, j + 1, k) - p(i, j - 1, k)) * dxi[1];
                        q(i, j, k, 2) -=
                            0.5 * (p(i, j, k + 1) - p(i, j, k - 1)) * dxi[2];
                    });
    }
}

Real Maestro::maxAbsDivergence() {
    fillGhosts(m_state);
    const Real dxi[3] = {1.0 / m_geom.cellSize(0), 1.0 / m_geom.cellSize(1),
                         1.0 / m_geom.cellSize(2)};
    Real mx = 0.0;
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.const_array(static_cast<int>(b));
        mx = std::max(
            mx, ParallelReduceMax(m_state.box(static_cast<int>(b)),
                                  [=](int i, int j, int k) {
                                      return std::abs(
                                          0.5 * (q(i + 1, j, k, 0) - q(i - 1, j, k, 0)) *
                                              dxi[0] +
                                          0.5 * (q(i, j + 1, k, 1) - q(i, j - 1, k, 1)) *
                                              dxi[1] +
                                          0.5 * (q(i, j, k + 1, 2) - q(i, j, k - 1, 2)) *
                                              dxi[2]);
                                  }));
    }
    return mx;
}

BurnGridStats Maestro::advanceOnce(Real dt) {
    {
        WallTimer advect_timer;
        advect(dt);
        buoyancy(dt);
        if (m_opt.rebalance.enabled) {
            // Zones-proportional attribution of the advection sweep (its
            // loops are MultiFab-wide).
            const BoxArray& ba = m_state.boxArray();
            const double total = static_cast<double>(ba.numPts());
            const double sec = advect_timer.seconds();
            auto& mon = m_rebalancer.monitor();
            for (std::size_t f = 0; f < ba.size() && total > 0; ++f) {
                mon.addTime(0, static_cast<int>(f),
                            sec * static_cast<double>(ba[f].numPts()) / total);
            }
        }
    }
    BurnGridStats burn;
    if (m_opt.do_react) burn = react(dt);
    if (m_opt.proj_interval > 0 && (m_nstep + 1) % m_opt.proj_interval == 0) {
        project();
    }
    return burn;
}

void Maestro::maybeRebalance() {
    if (!m_opt.rebalance.enabled) return;
    auto& mon = m_rebalancer.monitor();
    const BoxArray& ba = m_state.boxArray();
    for (std::size_t f = 0; f < ba.size(); ++f) {
        mon.addWork(0, static_cast<int>(f),
                    m_opt.rebalance.hydro_zone_work *
                        static_cast<double>(ba[f].numPts()));
    }
    m_rebalancer.step(0, m_nstep, {&m_state, &m_phi, &m_divu});
}

ValidationReport Maestro::validate(const BurnGridStats& burn) const {
    const StepGuardOptions& opt = m_opt.guard;
    ValidationReport rep;
    if (opt.check_finite) checkFinite(m_state, rep, "");
    // Low Mach state: density is derived, so positivity means T > 0.
    checkAbove(m_state, MaestroLayout::QT, 0.0, "negative-temperature", rep, "");
    // Species fractions are stored directly (not rho-weighted).
    const int nspec = m_net.nspec();
    for (std::size_t f = 0; f < m_state.size(); ++f) {
        auto q = m_state.const_array(static_cast<int>(f));
        const Box& vb = m_state.box(static_cast<int>(f));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    Real xsum = 0.0;
                    for (int n = 0; n < nspec; ++n) {
                        xsum += q(i, j, k, MaestroLayout::QFS + n);
                    }
                    if (!(std::abs(xsum - 1.0) <= opt.species_sum_rtol)) {
                        std::ostringstream os;
                        os << "fab " << f << ", zone (" << i << "," << j << ","
                           << k << "), sum X = " << xsum;
                        rep.add("species-sum-drift", os.str());
                        goto next_fab;
                    }
                }
            }
        }
    next_fab:;
    }
    if (burn.failures > 0) {
        const double frac =
            burn.zones > 0 ? static_cast<double>(burn.failures) / burn.zones : 1.0;
        if (frac > opt.burn_failure_tol) {
            std::ostringstream os;
            os << burn.failures << " of " << burn.zones << " zones failed to burn";
            const std::string where = burn.describeFailure();
            if (!where.empty()) os << "; first at " << where;
            rep.add("burn-failures", os.str());
        }
    }
    return rep;
}

BurnGridStats Maestro::step(Real dt) {
    if (!m_opt.guard.enabled) {
        BurnGridStats burn = advanceOnce(dt);
        m_time += dt;
        ++m_nstep;
        maybeRebalance();
        return burn;
    }

    BurnGridStats burn;
    m_guard.advance(
        dt,
        [&](StateSnapshot& snap) { snap.capture(m_state); },
        [&](const StateSnapshot& snap) { snap.restoreTo(0, m_state); },
        [&](Real sub_dt, int nsub) {
            burn = BurnGridStats{};
            for (int s = 0; s < nsub; ++s) burn.merge(advanceOnce(sub_dt));
        },
        [&] { return validate(burn); },
        [&](const StateSnapshot& snap, bool advance_threw) {
            if (advance_threw) return; // engine already restored the snapshot
            // Clamp-and-warn: rewind only the zones that went bad.
            auto bad = [&](Array4<const Real> q, int i, int j, int k) {
                for (int n = 0; n < m_layout.ncomp(); ++n) {
                    if (!std::isfinite(q(i, j, k, n))) return true;
                }
                return !(q(i, j, k, MaestroLayout::QT) > 0.0);
            };
            const MultiFab& s0 = snap.mf(0);
            for (std::size_t f = 0; f < m_state.size(); ++f) {
                auto q = m_state.array(static_cast<int>(f));
                auto s = s0.const_array(static_cast<int>(f));
                const Box& vb = m_state.box(static_cast<int>(f));
                for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                    for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                        for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                            if (bad(q, i, j, k)) {
                                for (int n = 0; n < m_layout.ncomp(); ++n) {
                                    q(i, j, k, n) = s(i, j, k, n);
                                }
                            }
                        }
            }
        });

    m_time += dt;
    ++m_nstep;
    // Rebalance only after the step is accepted (never mid-retry).
    maybeRebalance();
    return burn;
}

Real Maestro::bubbleHeight() const {
    Real wsum = 0.0, zsum = 0.0;
    for (std::size_t b = 0; b < m_state.size(); ++b) {
        auto q = m_state.const_array(static_cast<int>(b));
        const Box& vb = m_state.box(static_cast<int>(b));
        for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
            for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                    const Real dT = q(i, j, k, MaestroLayout::QT) - m_base.T0(k);
                    if (dT > 0.0) {
                        wsum += dT;
                        zsum += dT * m_geom.cellCenter(2, k);
                    }
                }
    }
    return wsum > 0 ? zsum / wsum : 0.0;
}

std::unique_ptr<Maestro> BubbleParams::build(const ReactionNetwork& net) const {
    const BubbleParams& p = *this;
    Box dom({0, 0, 0}, {p.ncell - 1, p.ncell - 1, p.ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {p.domain_width, p.domain_width, p.domain_width},
                  IntVect{1, 1, 0});
    BoxArray ba(dom);
    ba.maxSize(p.max_grid_size);
    DistributionMapping dm(ba, p.nranks);

    Eos eos{HelmLiteEos{}};
    std::vector<Real> X(net.nspec(), 0.0);
    X[0] = 1.0; // pure fuel (c12 in ignition_simple)

    BaseState base(eos, net, p.rho_base, p.T_base, X, p.ncell, 0.0,
                   p.domain_width / p.ncell, p.gravity);

    MaestroOptions opt;
    opt.do_react = p.do_react;
    opt.react.T_min = 1.0e8;
    opt.guard = p.guard;
    opt.rebalance = p.rebalance;

    auto m = std::make_unique<Maestro>(geom, ba, dm, net, eos, base, opt);
    const Real r_bub = p.bubble_radius_frac * p.domain_width;
    const Real z_bub = p.bubble_height_frac * p.domain_width;
    const Real xc = 0.5 * p.domain_width;
    m->initialize([=](Real x, Real y, Real z, Real& T, std::vector<Real>& Xz) {
        const Real r = std::sqrt((x - xc) * (x - xc) + (y - xc) * (y - xc) +
                                 (z - z_bub) * (z - z_bub));
        if (r < 2.0 * r_bub) {
            T += (p.T_bubble - p.T_base) * std::exp(-(r * r) / (r_bub * r_bub));
        }
        (void)Xz;
    });
    return m;
}

} // namespace exa::maestro
