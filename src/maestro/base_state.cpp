#include "maestro/base_state.hpp"

#include <algorithm>
#include <cmath>

namespace exa::maestro {

namespace {
// Invert p(rho) at fixed T by Newton (dpdr from the EOS).
Real rhoOfP(const Eos& eos, Real p_target, Real T, Real abar, Real ye,
            Real rho_guess) {
    Real rho = rho_guess;
    for (int it = 0; it < 80; ++it) {
        EosState s;
        s.rho = rho;
        s.T = T;
        s.abar = abar;
        s.ye = ye;
        eos.rhoT(s);
        const Real drho = (p_target - s.p) / std::max(s.dpdr, Real(1.0e-30));
        rho += std::clamp(drho, -0.5 * rho, 0.5 * rho);
        if (std::abs(drho) < 1.0e-13 * rho) break;
    }
    return rho;
}
} // namespace

BaseState::BaseState(const Eos& eos, const ReactionNetwork& net, Real rho_bottom,
                     Real T_iso, const std::vector<Real>& X, int nzones, Real /*zlo*/,
                     Real dz, Real gravity)
    : m_X(X), m_g(gravity) {
    m_abar = net.abar(X.data());
    m_ye = net.ye(X.data());
    m_rho0.resize(nzones);
    m_p0.resize(nzones);
    m_T0.assign(nzones, T_iso);

    EosState s;
    s.rho = rho_bottom;
    s.T = T_iso;
    s.abar = m_abar;
    s.ye = m_ye;
    eos.rhoT(s);
    m_rho0[0] = rho_bottom;
    m_p0[0] = s.p;
    for (int k = 1; k < nzones; ++k) {
        // Midpoint HSE: p(k) = p(k-1) + g * rho_mid * dz.
        Real rho_mid = m_rho0[k - 1];
        Real p_new = m_p0[k - 1] + m_g * rho_mid * dz;
        // One fixed-point refinement with the midpoint density.
        const Real rho_up = rhoOfP(eos, std::max(p_new, Real(1.0e-30)), T_iso,
                                   m_abar, m_ye, m_rho0[k - 1]);
        rho_mid = 0.5 * (m_rho0[k - 1] + rho_up);
        p_new = m_p0[k - 1] + m_g * rho_mid * dz;
        m_p0[k] = std::max(p_new, Real(1.0e-30));
        m_rho0[k] = rhoOfP(eos, m_p0[k], T_iso, m_abar, m_ye, m_rho0[k - 1]);
    }
}

} // namespace exa::maestro
