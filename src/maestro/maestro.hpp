#pragma once

#include "castro/react.hpp"
#include "maestro/base_state.hpp"
#include "mesh/phys_bc.hpp"
#include "mesh/rebalance/rebalancer.hpp"
#include "mesh/step_guard.hpp"
#include "solvers/multigrid.hpp"

#include <memory>

namespace exa::maestro {

// Component layout of the MAESTRO-mini state: cell-centered velocity,
// temperature, and mass fractions. Density is *derived* from the EOS at
// the base-state pressure p0(z) — the defining low Mach number
// constraint: acoustics are filtered, and the timestep is set by |U|, not
// |U| + cs ("the former ... can take very large timesteps", Section II).
struct MaestroLayout {
    explicit MaestroLayout(int nspec_in) : nspec(nspec_in) {}
    int nspec;
    static constexpr int QU = 0;
    static constexpr int QV = 1;
    static constexpr int QW = 2; // vertical (z) velocity
    static constexpr int QT = 3;
    static constexpr int QFS = 4;
    int ncomp() const { return QFS + nspec; }
};

struct MaestroOptions {
    Real cfl = 0.5;
    int ngrow = 2;
    int proj_interval = 1; // project every step
    castro::ReactOptions react; // reuses the Castro burn driver options
    bool do_react = true;
    Multigrid::Options mg;
    // Step retry (StepGuard) around each step; min_density/min_energy do
    // not apply to the low Mach state (density is EOS-derived) — the
    // validator checks finiteness, T > 0, species sums, and burn failures.
    StepGuardOptions guard;
    // Cost-driven load balancing (burn-dominated boxes migrate to a
    // cost-weighted mapping). Off by default.
    RebalanceOptions rebalance;
};

// The low Mach number solver: advection (MC-limited upwind), buoyancy
// against the hydrostatic base state, nuclear reactions, and an
// approximate cell-centered projection (multigrid Poisson solve — the
// globally coupled step whose communication dominates the Fig. 3 weak
// scaling).
class Maestro {
public:
    Maestro(const Geometry& geom, const BoxArray& ba, const DistributionMapping& dm,
            const ReactionNetwork& net, const Eos& eos, const BaseState& base,
            const MaestroOptions& opt);

    MultiFab& state() { return m_state; }
    const MultiFab& state() const { return m_state; }
    const Geometry& geom() const { return m_geom; }
    const BaseState& base() const { return m_base; }

    // Initialize T and X per zone (velocity starts at rest).
    using InitFn = std::function<void(Real x, Real y, Real z, Real& T,
                                      std::vector<Real>& X)>;
    void initialize(const InitFn& f);

    // Advective + buoyancy timestep (no sound speed!).
    Real estimateDt() const;

    // One step: advect, buoyancy, react, project. Returns burn stats.
    // With opt.guard.enabled the step runs under the StepGuard retry loop.
    BurnGridStats step(Real dt);

    Real time() const { return m_time; }
    int stepCount() const { return m_nstep; }

    // Restore path (resilience): rewind the clock to a checkpoint's time
    // and step count after the state fabs (state, phi, divu) have been
    // restored; replay from here is deterministic.
    void resetTime(Real t, int nstep) {
        m_time = t;
        m_nstep = nstep;
    }

    // Projection companions, exposed for checkpoint/restore: phi seeds the
    // next projection solve and divu is its last divergence field — both
    // must round-trip through a checkpoint for bit-identical replay.
    MultiFab& phi() { return m_phi; }
    MultiFab& divu() { return m_divu; }

    // Retry accounting for the guarded steps of this run.
    const RetryStats& retryStats() const { return m_guard.stats(); }

    // Load-balancer access (cost monitor, decision stats).
    Rebalancer& rebalancer() { return m_rebalancer; }
    const Rebalancer& rebalancer() const { return m_rebalancer; }

    // EOS density at the base-state pressure for (k, T, X).
    Real rhoOf(int kzone, Real T, const Real* X) const;

    // Diagnostics.
    Real maxAbsDivergence();     // max |div U| over the domain
    Real maxTemperature() const { return m_state.max(MaestroLayout::QT); }
    // z centroid of the positive temperature perturbation (bubble height).
    Real bubbleHeight() const;
    // Multigrid V-cycles used by the last projection.
    int lastProjectionVcycles() const { return m_last_vcycles; }

    void project(); // public for tests

private:
    void advect(Real dt);
    void buoyancy(Real dt);
    BurnGridStats react(Real dt);
    // One unguarded advance of size dt (no time bookkeeping).
    BurnGridStats advanceOnce(Real dt);
    ValidationReport validate(const BurnGridStats& burn) const;
    void fillGhosts(MultiFab& s);
    // The physical-boundary half of fillGhosts; runs after the halo
    // delivery in both the fused and the split-phase advect.
    void applyPhysBC(MultiFab& s);
    // End-of-step rebalance hook: feed the advect work channel, then let
    // the Rebalancer decide; m_state, m_phi, and m_divu migrate together.
    void maybeRebalance();

    Geometry m_geom;
    const ReactionNetwork& m_net;
    Eos m_eos;
    BaseState m_base;
    MaestroOptions m_opt;
    MaestroLayout m_layout;
    MultiFab m_state;
    std::unique_ptr<Multigrid> m_mg;
    MultiFab m_phi, m_divu;
    StepGuard m_guard;
    Rebalancer m_rebalancer;
    Real m_time = 0.0;
    int m_nstep = 0;
    int m_last_vcycles = 0;
};

// The Section IV-B reacting bubble: a hot spherical perturbation in a
// plane-parallel WD-interior atmosphere, burning carbon and rising
// buoyantly. N = 2 reacting nuclei, as in the paper.
//
// The params struct IS the problem config: build() is the canonical
// entry point, and the ensemble layer's ScenarioRegistry constructs
// these by name ("bubble") from a generic key=value ScenarioConfig.
struct BubbleParams {
    int ncell = 32;
    int max_grid_size = 16;
    int nranks = 1;
    Real domain_width = 5.0e7;   // cm
    Real rho_base = 2.6e9;       // g/cc at the bottom (WD interior)
    Real T_base = 6.0e8;         // K
    Real T_bubble = 9.0e8;       // K perturbation peak
    Real bubble_radius_frac = 0.1;
    Real bubble_height_frac = 0.35;
    Real gravity = -1.5e10;      // cm/s^2
    bool do_react = true;
    StepGuardOptions guard;      // step retry (off by default)
    RebalanceOptions rebalance;  // cost-driven load balancing (off by default)

    // Build a low-Mach Maestro instance initialized with the bubble.
    std::unique_ptr<Maestro> build(const ReactionNetwork& net) const;
};

[[deprecated("use BubbleParams::build(net), or the ensemble ScenarioRegistry "
             "(\"bubble\") for config-driven construction")]]
inline std::unique_ptr<Maestro> makeReactingBubble(const BubbleParams& p,
                                                   const ReactionNetwork& net) {
    return p.build(net);
}

} // namespace exa::maestro
