#pragma once

#include "core/real.hpp"
#include "microphysics/eos.hpp"
#include "microphysics/network.hpp"

#include <vector>

namespace exa::maestro {

// The one-dimensional hydrostatic base state underpinning the low Mach
// number expansion: p0(z), rho0(z), T0(z) with dp0/dz = -rho0 g. In
// MAESTROeX this is the star's radial structure; for the reacting-bubble
// problem (Section IV-B) it is a plane-parallel white-dwarf-interior
// atmosphere.
class BaseState {
public:
    // Build an isothermal hydrostatic atmosphere of composition X from a
    // base density rho_bottom at z = zlo, integrating upward nz zones of
    // height dz under constant gravity g (g < 0 points down).
    BaseState(const Eos& eos, const ReactionNetwork& net, Real rho_bottom,
              Real T_iso, const std::vector<Real>& X, int nz, Real zlo, Real dz,
              Real gravity);

    int nz() const { return static_cast<int>(m_rho0.size()); }
    Real gravity() const { return m_g; }

    // Zone-centered base-state values by z index.
    Real rho0(int k) const { return m_rho0[clampIdx(k)]; }
    Real p0(int k) const { return m_p0[clampIdx(k)]; }
    Real T0(int k) const { return m_T0[clampIdx(k)]; }

    const std::vector<Real>& X() const { return m_X; }
    Real abar() const { return m_abar; }
    Real ye() const { return m_ye; }

private:
    int clampIdx(int k) const {
        return std::max(0, std::min(k, nz() - 1));
    }

    std::vector<Real> m_rho0, m_p0, m_T0;
    std::vector<Real> m_X;
    Real m_abar = 1.0, m_ye = 0.5;
    Real m_g = 0.0;
};

} // namespace exa::maestro
