#include "ensemble/scenarios.hpp"

#include "core/parallel_for.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace exa::ensemble {

namespace {

// RunLimits from the shared config keys. Scenarios with neither a time
// nor a step cap would never retire from an ensemble, so an unlimited
// config falls back to `default_steps`.
RunLimits limitsFromConfig(const ScenarioConfig& cfg, int default_steps) {
    RunLimits lim;
    lim.t_stop = cfg.getReal("t-stop", 0.0);
    lim.max_steps = cfg.getInt("max-steps", 0);
    lim.max_dt = cfg.getReal("max-dt", 0.0);
    if (lim.t_stop <= 0.0 && lim.max_steps <= 0) lim.max_steps = default_steps;
    return lim;
}

} // namespace

// --- AmrBlastParams ------------------------------------------------------

std::unique_ptr<castro::CastroAmr>
AmrBlastParams::build(const ReactionNetwork& net) const {
    using namespace castro;
    Box dom({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1});
    Geometry geom(dom, {0, 0, 0}, {1, 1, 1});
    AmrInfo info;
    info.max_level = max_level;
    info.ref_ratio = ref_ratio;
    info.max_grid_size = max_grid_size;
    info.blocking_factor = blocking_factor;
    info.nranks = nranks;

    CastroOptions opt;
    opt.bc = DomainBC::allOutflow();
    opt.cfl = cfl;
    opt.reconstruction = Reconstruction::PPM;
    opt.gravity = gravity;

    const Real r0 = r_init;
    const Real e_in = 1.0 / ((4.0 / 3.0) * constants::pi * std::pow(r0, 3));
    Castro::InitFn init = [=](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 1.0;
        const Real r = std::sqrt((x - 0.5) * (x - 0.5) + (y - 0.5) * (y - 0.5) +
                                 (z - 0.5) * (z - 0.5));
        zn.p = r <= r0 ? 0.4 * e_in : 1.0e-5;
        zn.X = {1.0, 0.0};
        return zn;
    };
    const Real T_tag = tag_temp;
    CastroAmr::TagFn tag = [T_tag](int, const Geometry&, const MultiFab& s,
                                   MultiFab& tags) {
        for (std::size_t f = 0; f < tags.size(); ++f) {
            auto t = tags.array(static_cast<int>(f));
            auto u = s.const_array(static_cast<int>(f));
            ParallelFor(tags.box(static_cast<int>(f)), [=](int i, int j, int k) {
                if (u(i, j, k, StateLayout::UTEMP) > T_tag) t(i, j, k) = 1.0;
            });
        }
    };

    Eos eos{GammaLawEos{1.4}};
    auto amr = std::make_unique<CastroAmr>(geom, info, net, eos, opt, init, tag);
    amr->regrid_interval = regrid_interval;
    amr->init();
    return amr;
}

// --- SedovScenario -------------------------------------------------------

SedovScenario::SedovScenario(const castro::SedovParams& p,
                             const RunLimits& limits, ReactionNetwork net)
    : Scenario("sedov", limits), m_params(p), m_net(std::move(net)) {}

SedovScenario::SedovScenario(const ScenarioConfig& cfg)
    : Scenario("sedov", limitsFromConfig(cfg, 10)),
      m_net(makeNetworkByName(cfg.getString("network", "ignition_simple"))) {
    m_params.ncell = cfg.getInt("ncell", m_params.ncell);
    m_params.max_grid_size = cfg.getInt("max-grid-size", m_params.max_grid_size);
    m_params.nranks = cfg.getInt("nranks", m_params.nranks);
    m_params.rho0 = cfg.getReal("rho0", m_params.rho0);
    m_params.p0 = cfg.getReal("p0", m_params.p0);
    m_params.E = cfg.getReal("E", m_params.E);
    m_params.r_init = cfg.getReal("r-init", m_params.r_init);
    m_params.gamma = cfg.getReal("gamma", m_params.gamma);
    m_params.cfl = cfg.getReal("cfl", m_params.cfl);
    cfg.requireAllConsumed("sedov");
}

void SedovScenario::init() { m_castro = m_params.build(m_net); }

std::int64_t SedovScenario::zones() const {
    return m_castro->state().boxArray().numPts();
}

std::uint64_t SedovScenario::stateBytes() const {
    return stateBytesOf(m_castro->state());
}

std::uint32_t SedovScenario::stateCrc() const {
    return ensemble::stateCrc(m_castro->state());
}

std::string SedovScenario::summary() const {
    std::ostringstream os;
    os << "sedov " << m_params.ncell << "^3: t=" << m_castro->time()
       << " steps=" << m_castro->stepCount()
       << " R_shock=" << measureShockRadius(*m_castro, m_params.rho0)
       << " rho_max=" << m_castro->maxDensity();
    return os.str();
}

// --- BubbleScenario ------------------------------------------------------

BubbleScenario::BubbleScenario(const maestro::BubbleParams& p,
                               const RunLimits& limits, ReactionNetwork net)
    : Scenario("bubble", limits), m_params(p), m_net(std::move(net)) {}

BubbleScenario::BubbleScenario(const ScenarioConfig& cfg)
    : Scenario("bubble", limitsFromConfig(cfg, 8)),
      m_net(makeNetworkByName(cfg.getString("network", "ignition_simple"))) {
    m_params.ncell = cfg.getInt("ncell", m_params.ncell);
    m_params.max_grid_size = cfg.getInt("max-grid-size", m_params.max_grid_size);
    m_params.nranks = cfg.getInt("nranks", m_params.nranks);
    m_params.domain_width = cfg.getReal("domain-width", m_params.domain_width);
    m_params.rho_base = cfg.getReal("rho-base", m_params.rho_base);
    m_params.T_base = cfg.getReal("T-base", m_params.T_base);
    m_params.T_bubble = cfg.getReal("T-bubble", m_params.T_bubble);
    m_params.bubble_radius_frac =
        cfg.getReal("bubble-radius-frac", m_params.bubble_radius_frac);
    m_params.bubble_height_frac =
        cfg.getReal("bubble-height-frac", m_params.bubble_height_frac);
    m_params.gravity = cfg.getReal("gravity", m_params.gravity);
    m_params.do_react = cfg.getBool("do-react", m_params.do_react);
    cfg.requireAllConsumed("bubble");
}

void BubbleScenario::init() { m_maestro = m_params.build(m_net); }

std::int64_t BubbleScenario::zones() const {
    return m_maestro->state().boxArray().numPts();
}

std::uint64_t BubbleScenario::stateBytes() const {
    // The projection companions round-trip with the state (see the
    // resilience checkpointer), so they count toward residency too.
    return stateBytesOf(m_maestro->state()) + stateBytesOf(m_maestro->phi()) +
           stateBytesOf(m_maestro->divu());
}

std::uint32_t BubbleScenario::stateCrc() const {
    return ensemble::stateCrc(m_maestro->state());
}

std::string BubbleScenario::summary() const {
    std::ostringstream os;
    os << "bubble " << m_params.ncell << "^3: t=" << m_maestro->time()
       << " steps=" << m_maestro->stepCount()
       << " maxT=" << m_maestro->maxTemperature()
       << " height=" << m_maestro->bubbleHeight();
    return os.str();
}

// --- AmrBlastScenario ----------------------------------------------------

AmrBlastScenario::AmrBlastScenario(const AmrBlastParams& p,
                                   const RunLimits& limits, ReactionNetwork net)
    : Scenario("amr-blast", limits), m_params(p), m_net(std::move(net)) {}

AmrBlastScenario::AmrBlastScenario(const ScenarioConfig& cfg)
    : Scenario("amr-blast", limitsFromConfig(cfg, 10)),
      m_net(makeNetworkByName(cfg.getString("network", "ignition_simple"))) {
    m_params.ncell = cfg.getInt("ncell", m_params.ncell);
    m_params.max_level = cfg.getInt("max-level", m_params.max_level);
    m_params.ref_ratio = cfg.getInt("ref-ratio", m_params.ref_ratio);
    m_params.max_grid_size = cfg.getInt("max-grid-size", m_params.max_grid_size);
    m_params.blocking_factor =
        cfg.getInt("blocking-factor", m_params.blocking_factor);
    m_params.nranks = cfg.getInt("nranks", m_params.nranks);
    m_params.cfl = cfg.getReal("cfl", m_params.cfl);
    m_params.r_init = cfg.getReal("r-init", m_params.r_init);
    m_params.tag_temp = cfg.getReal("tag-temp", m_params.tag_temp);
    m_params.regrid_interval =
        cfg.getInt("regrid-interval", m_params.regrid_interval);
    m_params.gravity =
        castro::gravityTypeFromName(cfg.getString("gravity", "none"));
    cfg.requireAllConsumed("amr-blast");
}

void AmrBlastScenario::init() { m_amr = m_params.build(m_net); }

std::int64_t AmrBlastScenario::zones() const {
    std::int64_t z = 0;
    for (int lev = 0; lev <= m_amr->finestLevel(); ++lev)
        z += m_amr->numZones(lev);
    return z;
}

std::uint64_t AmrBlastScenario::stateBytes() const {
    std::uint64_t b = 0;
    for (int lev = 0; lev <= m_amr->finestLevel(); ++lev)
        b += stateBytesOf(m_amr->state(lev));
    return b;
}

std::uint32_t AmrBlastScenario::stateCrc() const {
    std::uint32_t crc = 0;
    for (int lev = 0; lev <= m_amr->finestLevel(); ++lev)
        crc = ensemble::stateCrc(m_amr->state(lev), crc);
    return crc;
}

std::string AmrBlastScenario::summary() const {
    std::ostringstream os;
    os << "amr-blast " << m_params.ncell << "^3+" << m_amr->finestLevel()
       << "lev: t=" << m_amr->time() << " steps=" << m_amr->stepCount()
       << " fine-cover=" << m_amr->coveredFraction(1)
       << " mass=" << m_amr->totalMass();
    return os.str();
}

// --- WdCollisionScenario -------------------------------------------------

WdCollisionScenario::WdCollisionScenario(const castro::WdCollisionParams& p,
                                         const RunLimits& limits)
    : Scenario("wd-collision", limits), m_params(p) {}

WdCollisionScenario::WdCollisionScenario(const ScenarioConfig& cfg)
    : Scenario("wd-collision", limitsFromConfig(cfg, 10)) {
    m_params.ncell = cfg.getInt("ncell", m_params.ncell);
    m_params.max_grid_size = cfg.getInt("max-grid-size", m_params.max_grid_size);
    m_params.nranks = cfg.getInt("nranks", m_params.nranks);
    m_params.rho_c = cfg.getReal("rho-c", m_params.rho_c);
    m_params.T_star = cfg.getReal("T-star", m_params.T_star);
    m_params.separation_in_diameters =
        cfg.getReal("separation", m_params.separation_in_diameters);
    m_params.approach_velocity =
        cfg.getReal("approach-velocity", m_params.approach_velocity);
    m_params.domain_width = cfg.getReal("domain-width", m_params.domain_width);
    m_params.ambient_rho = cfg.getReal("ambient-rho", m_params.ambient_rho);
    m_params.ambient_T = cfg.getReal("ambient-T", m_params.ambient_T);
    m_params.cfl = cfg.getReal("cfl", m_params.cfl);
    m_params.do_react = cfg.getBool("do-react", m_params.do_react);
    m_params.ignition_T = cfg.getReal("ignition-T", m_params.ignition_T);
    m_params.network = cfg.getString("network", m_params.network);
    m_params.gravity =
        castro::gravityTypeFromName(cfg.getString("gravity", "monopole"));
    cfg.requireAllConsumed("wd-collision");
}

void WdCollisionScenario::init() { m_wd = m_params.build(); }

bool WdCollisionScenario::finished() const {
    return Scenario::finished() || ignited();
}

bool WdCollisionScenario::ignited() const {
    return m_wd.castro->maxTemperature() >= m_params.ignition_T;
}

std::int64_t WdCollisionScenario::zones() const {
    return m_wd.castro->state().boxArray().numPts();
}

std::uint64_t WdCollisionScenario::stateBytes() const {
    return stateBytesOf(m_wd.castro->state());
}

std::uint32_t WdCollisionScenario::stateCrc() const {
    return ensemble::stateCrc(m_wd.castro->state());
}

std::string WdCollisionScenario::summary() const {
    std::ostringstream os;
    os << "wd-collision " << m_params.ncell << "^3 ("
       << m_wd.castro->network().name() << "): t=" << m_wd.castro->time()
       << " steps=" << m_wd.castro->stepCount()
       << " maxT=" << m_wd.castro->maxTemperature()
       << (ignited() ? " IGNITED" : "");
    return os.str();
}

// --- Registry ------------------------------------------------------------

ScenarioRegistry::ScenarioRegistry() {
    add("sedov", [](const ScenarioConfig& cfg) -> std::unique_ptr<Scenario> {
        return std::make_unique<SedovScenario>(cfg);
    });
    add("bubble", [](const ScenarioConfig& cfg) -> std::unique_ptr<Scenario> {
        return std::make_unique<BubbleScenario>(cfg);
    });
    add("amr-blast", [](const ScenarioConfig& cfg) -> std::unique_ptr<Scenario> {
        return std::make_unique<AmrBlastScenario>(cfg);
    });
    add("wd-collision",
        [](const ScenarioConfig& cfg) -> std::unique_ptr<Scenario> {
            return std::make_unique<WdCollisionScenario>(cfg);
        });
}

ScenarioRegistry& ScenarioRegistry::instance() {
    static ScenarioRegistry reg;
    return reg;
}

void ScenarioRegistry::add(const std::string& name, Factory f) {
    for (auto& [n, fac] : m_factories) {
        if (n == name) {
            fac = std::move(f);
            return;
        }
    }
    m_factories.emplace_back(name, std::move(f));
}

bool ScenarioRegistry::contains(const std::string& name) const {
    for (const auto& [n, f] : m_factories) {
        if (n == name) return true;
    }
    return false;
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(m_factories.size());
    for (const auto& [n, f] : m_factories) out.push_back(n);
    std::sort(out.begin(), out.end());
    return out;
}

std::unique_ptr<Scenario>
ScenarioRegistry::make(const std::string& name, const ScenarioConfig& cfg) const {
    for (const auto& [n, f] : m_factories) {
        if (n == name) return f(cfg);
    }
    std::string msg = "unknown scenario \"" + name + "\"; registered:";
    for (const auto& n : names()) msg += " " + n;
    throw std::invalid_argument(msg);
}

std::unique_ptr<Scenario> makeScenarioByName(const std::string& name,
                                             const ScenarioConfig& cfg) {
    return ScenarioRegistry::instance().make(name, cfg);
}

} // namespace exa::ensemble
