#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace exa::ensemble {

// Work-stealing queue of tenant ids: each worker owns a deque; it pops
// work from its own front and, when empty, steals from the *back* of a
// victim's deque (classic Chase-Lev discipline, simplified to a mutex per
// deque — contention here is one lock per simulation step, which is
// microseconds of compute at minimum, so a lock-free deque would buy
// nothing measurable).
//
// Determinism: with one worker there is no stealing, pops come off the
// front and requeues push to the back, so tenants interleave in strict
// round-robin order — the ordering the ensemble determinism tests pin
// down. With several workers the *schedule* is timing-dependent, but
// tenants share no mutable state, so results stay bit-identical anyway.
class WorkStealingQueue {
public:
    explicit WorkStealingQueue(int nworkers) {
        m_deques.reserve(static_cast<std::size_t>(nworkers));
        for (int w = 0; w < nworkers; ++w)
            m_deques.push_back(std::make_unique<Deque>());
    }

    int numWorkers() const { return static_cast<int>(m_deques.size()); }

    // Push an item onto the back of `worker`'s deque.
    void push(int worker, int item) {
        Deque& d = *m_deques[static_cast<std::size_t>(worker)];
        std::lock_guard<std::mutex> lk(d.m);
        d.q.push_back(item);
    }

    // Pop: own front first; otherwise steal from the back of the first
    // non-empty victim (scanning from worker+1 so steal pressure spreads).
    // Returns false when every deque is empty *right now* — an item held
    // by another worker may still be requeued, so emptiness is not
    // completion (see EnsembleRunner's remaining-tenant count).
    bool pop(int worker, int& item) {
        {
            Deque& d = *m_deques[static_cast<std::size_t>(worker)];
            std::lock_guard<std::mutex> lk(d.m);
            if (!d.q.empty()) {
                item = d.q.front();
                d.q.pop_front();
                return true;
            }
        }
        const int n = numWorkers();
        for (int off = 1; off < n; ++off) {
            Deque& d = *m_deques[static_cast<std::size_t>((worker + off) % n)];
            std::lock_guard<std::mutex> lk(d.m);
            if (!d.q.empty()) {
                item = d.q.back();
                d.q.pop_back();
                m_steals.fetch_add(1, std::memory_order_relaxed);
                return true;
            }
        }
        return false;
    }

    std::int64_t steals() const {
        return m_steals.load(std::memory_order_relaxed);
    }

private:
    struct Deque {
        std::mutex m;
        std::deque<int> q;
    };
    std::vector<std::unique_ptr<Deque>> m_deques;
    std::atomic<std::int64_t> m_steals{0};
};

} // namespace exa::ensemble
