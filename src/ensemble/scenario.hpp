#pragma once

#include "core/real.hpp"
#include "mesh/multifab.hpp"

#include <cstdint>
#include <string>

namespace exa::ensemble {

// Caps on a scenario's run, over and above the driver's CFL condition.
// Zero (or negative) disables a cap. maxDt() folds these into the step
// size and finished() decides when the scenario retires, so a direct
// driver loop and an ensemble-scheduled run of the same scenario take
// *exactly* the same dt sequence — the bit-identity contract.
struct RunLimits {
    Real t_stop = 0.0;  // stop when time() reaches this
    int max_steps = 0;  // stop after this many steps
    Real max_dt = 0.0;  // additional per-step dt cap
};

// The uniform driver interface of the ensemble layer: one independent
// simulation (a Sedov blast, a reacting bubble, an AMR blast hierarchy, a
// WD collision...) reduced to the five verbs a scheduler needs —
// init / maxDt / advanceOnce / finished / summary — plus the accounting
// the shared-infrastructure bookkeeping wants (zones, stateBytes,
// stateCrc).
//
// Contract:
//  * Construction is cheap and allocation-free; init() builds the driver
//    and its state. The EnsembleRunner calls init() inside the tenant's
//    arena/ledger/timer scopes so the allocations are attributed to the
//    tenant that owns them.
//  * advanceOnce() takes exactly one driver step of maxDt(). maxDt() is
//    the driver's CFL estimate clamped by RunLimits — the same formula a
//    hand-written driver loop uses — and is final so every scenario
//    shares it.
//  * All state is owned by the scenario: two scenarios never share
//    mutable data, which is what makes ensemble interleaving (in any
//    order, on any worker) bit-identical to running each alone.
class Scenario {
public:
    Scenario(std::string name, const RunLimits& limits)
        : m_name(std::move(name)), m_limits(limits) {}
    virtual ~Scenario() = default;
    Scenario(const Scenario&) = delete;
    Scenario& operator=(const Scenario&) = delete;

    // The registry name of this scenario kind ("sedov", "bubble", ...).
    const std::string& name() const { return m_name; }
    const RunLimits& limits() const { return m_limits; }

    // Build the driver and its initial state. Called once, before any
    // other virtual; everything below requires it.
    virtual void init() = 0;
    virtual bool initialized() const = 0;

    virtual Real time() const = 0;
    virtual int stepCount() const = 0;

    // The driver's own stability limit (CFL or equivalent).
    virtual Real estimateDt() const = 0;

    // The step the scheduler will take: estimateDt() clamped by the
    // RunLimits caps. Final by design — bit-identity between ensemble and
    // direct runs rests on every path computing the same dt.
    Real maxDt() const {
        Real dt = estimateDt();
        if (m_limits.max_dt > 0.0 && m_limits.max_dt < dt) dt = m_limits.max_dt;
        if (m_limits.t_stop > 0.0) {
            const Real left = m_limits.t_stop - time();
            if (left < dt) dt = left;
        }
        return dt;
    }

    // Advance exactly one driver step of size dt.
    virtual void advanceOnce(Real dt) = 0;
    // Convenience: one step of maxDt().
    void advanceOnce() { advanceOnce(maxDt()); }

    // True when the scenario should retire. The base rule is the
    // RunLimits; overrides may add science criteria (ignition) but must
    // still honor the limits.
    virtual bool finished() const {
        if (m_limits.max_steps > 0 && stepCount() >= m_limits.max_steps)
            return true;
        if (m_limits.t_stop > 0.0 &&
            time() >= m_limits.t_stop * (1.0 - 1.0e-12))
            return true;
        return false;
    }

    // Zones advanced by one step (throughput accounting). For AMR this is
    // the whole-hierarchy zone count.
    virtual std::int64_t zones() const = 0;

    // Resident bytes of the simulation state (the device model's
    // oversubscription accounting).
    virtual std::uint64_t stateBytes() const = 0;

    // CRC-32 fingerprint of the state's valid region — the bit-identity
    // currency of the ensemble tests.
    virtual std::uint32_t stateCrc() const = 0;

    // One-line human-readable result.
    virtual std::string summary() const = 0;

private:
    std::string m_name;
    RunLimits m_limits;
};

// CRC-32 over the valid region of `mf`, all components, extending `seed`.
// Rows are fed through the incremental crc32 in (comp, k, j, i) order;
// ghost zones are excluded — they may legally hold uninitialized bytes.
std::uint32_t stateCrc(const MultiFab& mf, std::uint32_t seed = 0);

// Valid-region state bytes of `mf` including ghost allocation — what the
// fab storage actually occupies, for residency accounting.
std::uint64_t stateBytesOf(const MultiFab& mf);

} // namespace exa::ensemble
