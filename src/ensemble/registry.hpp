#pragma once

#include "ensemble/scenario.hpp"
#include "ensemble/scenario_config.hpp"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace exa::ensemble {

// Name -> scenario factory, mirroring the NetworkRegistry idiom: drivers,
// examples, tests, and the EnsembleRunner select a problem by string from
// a generic ScenarioConfig, with no recompilation — every registered
// scenario is an instant ensemble tenant kind. The built-in scenarios
// ("sedov", "bubble", "amr-blast", "wd-collision") are pre-registered.
class ScenarioRegistry {
public:
    using Factory =
        std::function<std::unique_ptr<Scenario>(const ScenarioConfig&)>;

    static ScenarioRegistry& instance();

    // Register (or replace) a factory under `name`.
    void add(const std::string& name, Factory f);
    bool contains(const std::string& name) const;
    // Registered names, sorted.
    std::vector<std::string> names() const;
    // Build the named scenario. Throws std::invalid_argument for unknown
    // names, listing every registered scenario in the message. The config
    // must be fully consumed by the factory (unknown keys throw too).
    std::unique_ptr<Scenario> make(const std::string& name,
                                   const ScenarioConfig& cfg = {}) const;

private:
    ScenarioRegistry(); // pre-registers the built-ins
    std::vector<std::pair<std::string, Factory>> m_factories;
};

// Convenience wrapper over ScenarioRegistry::instance().make(...).
std::unique_ptr<Scenario> makeScenarioByName(const std::string& name,
                                             const ScenarioConfig& cfg = {});

} // namespace exa::ensemble
