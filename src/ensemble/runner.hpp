#pragma once

#include "comm/ledger.hpp"
#include "core/timer.hpp"
#include "ensemble/registry.hpp"
#include "ensemble/work_queue.hpp"
#include "perf/device_model.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace exa::ensemble {

struct EnsembleOptions {
    // Worker threads. 0 = auto: min(hardware threads, tenants), capped at
    // 8. Forced to 1 under Backend::SimGpu and Backend::Debug — the
    // device-model launch hook and the debug contract checker are
    // process-global and serialize launches anyway, so threading them
    // would race for no speedup; the cooperative single-worker mode keeps
    // the deterministic round-robin schedule instead.
    int workers = 0;
    // Assign tenant id % numStreams() as each tenant's stream (the
    // per-simulation CUDA-stream analogue): under SimGpu, different
    // tenants' kernels land on different device-model stream timelines
    // and overlap.
    bool per_tenant_streams = true;
    // When set, the runner attaches this ledger for the duration of run()
    // and fills per-tenant comm traffic in the report.
    CommLedger* ledger = nullptr;
    // When set, the runner keeps device->residentBytes() equal to the sum
    // of live (initialized, unfinished) tenants' stateBytes — the Unified
    // Memory oversubscription accounting: pack too many simulations onto
    // one modeled GPU and every kernel pays the eviction-bandwidth
    // penalty. (The device is NOT attached here; callers attach it and
    // select Backend::SimGpu when they want modeled time.)
    DeviceModel* device = nullptr;
    // Steps a worker runs a tenant for before requeueing it — the
    // fairness/throughput knob. 1 (default) interleaves tenants per step:
    // best p50/p99 fairness and finest-grained stealing. Larger quanta
    // keep a tenant's working set hot in cache across consecutive steps,
    // which measurably helps aggregate throughput when tenants are small;
    // <= 0 means run-to-completion. Bit-identity is schedule-independent
    // (tenants share no mutable state), so this only moves wall-clock and
    // latency, never results.
    int quantum_steps = 1;
};

// Per-tenant slice of the final report.
struct TenantReport {
    int id = 0;
    std::string label;    // unique instance label, e.g. "sedov#0"
    std::string scenario; // registry kind
    int steps = 0;
    Real sim_time = 0.0;
    double wall_seconds = 0.0; // init + steps, this tenant only
    std::int64_t zone_steps = 0;
    double p50_ms = 0.0, p99_ms = 0.0; // per-step latency
    std::uint32_t crc = 0;
    std::uint64_t arena_peak_bytes = 0;
    std::uint64_t arena_allocated_bytes = 0;
    std::int64_t comm_bytes = 0; // 0 unless EnsembleOptions::ledger set
    std::int64_t comm_messages = 0;
    std::int64_t mg_vcycles = 0; // multigrid v-cycles (ledger-attributed)
    std::string summary;
};

struct EnsembleReport {
    std::vector<TenantReport> tenants;
    int workers = 0;
    double wall_seconds = 0.0;       // whole-ensemble wall clock
    double sims_per_hour = 0.0;      // completed simulations / hour
    double zone_steps_per_sec = 0.0; // aggregate advance throughput
    double p50_ms = 0.0, p99_ms = 0.0; // per-step latency, all tenants
    std::int64_t steals = 0;           // work-queue steals
    bool oversubscribed = false;       // device residency > capacity

    // Formatted per-tenant table plus the aggregate line.
    std::string table() const;
};

// The ensemble service: N independent simulations multiplexed over shared
// infrastructure (one arena, one ledger, one device model, one timer
// namespace) in a single process. Tenants come from the ScenarioRegistry
// (add by name + config) or are handed in prebuilt; run() schedules them
// step-by-step over a work-stealing worker pool and reports aggregate
// throughput plus exact per-tenant accounting.
//
// Every tenant step (and its init) executes inside that tenant's scopes:
// ArenaTenantScope (byte/peak attribution), ScopedLedgerTenant (comm
// traffic buckets), ScopedTimerRegistry (a tagged per-tenant registry),
// and StreamScope (per-simulation device streams). The scopes are
// thread-local, so they follow a stolen tenant to whichever worker runs
// it.
class EnsembleRunner {
public:
    explicit EnsembleRunner(EnsembleOptions opt = {});
    ~EnsembleRunner();

    // Add a tenant by registry name. Returns the tenant id (dense, from
    // 0); the instance label is "<name>#<id>".
    int add(const std::string& scenario, const ScenarioConfig& cfg = {});
    // Add a prebuilt scenario (label defaults to "<name()>#<id>").
    int add(std::unique_ptr<Scenario> s, std::string label = "");

    int numTenants() const { return static_cast<int>(m_tenants.size()); }
    Scenario& scenario(int id) { return *m_tenants[id].scenario; }
    const std::string& label(int id) const { return m_tenants[id].label; }
    // The tenant's tagged timer registry (regions recorded during its
    // steps land here, not in TimerRegistry::instance()).
    TimerRegistry& tenantTimers(int id) { return *m_tenants[id].timers; }

    // Run every tenant to completion. Callable once.
    EnsembleReport run();

private:
    struct Tenant {
        std::unique_ptr<Scenario> scenario;
        std::string label;
        std::unique_ptr<TimerRegistry> timers;
        std::vector<double> step_ms;
        double wall = 0.0;
        std::int64_t zone_steps = 0;
        std::uint64_t state_bytes = 0;
        std::uint32_t crc = 0;
        std::string summary;
    };

    int resolveWorkers() const;
    // One scheduling quantum for tenant `id` on `worker`: enter the
    // tenant's scopes, init if needed, take one step, requeue or retire.
    void stepTenant(int id, WorkStealingQueue& queue, int worker);
    void addResident(double delta);

    EnsembleOptions m_opt;
    std::vector<Tenant> m_tenants;
    std::atomic<int> m_remaining{0};
    // Initialized-but-unfinished tenants; mirrored into the process-wide
    // CopierCache so its LRU capacity scales with co-resident tenants.
    std::atomic<int> m_live{0};
    std::mutex m_resident_mutex;
    double m_resident_bytes = 0.0;
    bool m_ran = false;
};

} // namespace exa::ensemble
