#pragma once

#include "core/real.hpp"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace exa::ensemble {

// Generic key=value problem configuration: the currency of the
// ScenarioRegistry. A scenario factory pulls typed values out with the
// get* accessors (each marks its key consumed) and then calls
// requireAllConsumed(), so a misspelled key is a hard error naming the
// scenario and the keys it does accept — not a silently ignored setting.
//
// Values are stored as strings; fromArgs() builds one from main()'s
// `key=value` arguments, which is how every example binary now takes its
// problem setup.
class ScenarioConfig {
public:
    ScenarioConfig() = default;

    // Parse `key=value` tokens from argv[first..). A token without '=' or
    // with an empty key throws std::invalid_argument naming the token.
    static ScenarioConfig fromArgs(int argc, char** argv, int first = 1);

    void set(const std::string& key, std::string value);
    bool has(const std::string& key) const { return m_kv.count(key) != 0; }
    std::size_t size() const { return m_kv.size(); }

    // Typed accessors: return the value of `key` (or `fallback` when the
    // key is absent) and mark the key consumed. Malformed numbers throw
    // std::invalid_argument naming the key. Booleans accept 1/0, true/
    // false, on/off, yes/no.
    std::string getString(const std::string& key, std::string fallback) const;
    int getInt(const std::string& key, int fallback) const;
    Real getReal(const std::string& key, Real fallback) const;
    bool getBool(const std::string& key, bool fallback) const;

    // Keys present but never consumed by any accessor.
    std::vector<std::string> unconsumedKeys() const;
    // Throw std::invalid_argument listing every unconsumed key (and every
    // key the scenario did consult) when any key was never consumed.
    void requireAllConsumed(const std::string& scenario) const;

private:
    const std::string* find(const std::string& key) const;

    std::map<std::string, std::string> m_kv;
    // Consumption is observational bookkeeping, not configuration state:
    // the accessors stay const so factories can take `const
    // ScenarioConfig&`.
    mutable std::set<std::string> m_consumed;
};

} // namespace exa::ensemble
