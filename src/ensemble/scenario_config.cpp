#include "ensemble/scenario_config.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace exa::ensemble {

ScenarioConfig ScenarioConfig::fromArgs(int argc, char** argv, int first) {
    ScenarioConfig cfg;
    for (int i = first; i < argc; ++i) {
        const std::string tok = argv[i];
        const auto eq = tok.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw std::invalid_argument(
                "ScenarioConfig::fromArgs: expected key=value, got \"" + tok +
                "\"");
        }
        cfg.set(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return cfg;
}

void ScenarioConfig::set(const std::string& key, std::string value) {
    m_kv[key] = std::move(value);
}

const std::string* ScenarioConfig::find(const std::string& key) const {
    m_consumed.insert(key);
    auto it = m_kv.find(key);
    return it == m_kv.end() ? nullptr : &it->second;
}

std::string ScenarioConfig::getString(const std::string& key,
                                      std::string fallback) const {
    const std::string* v = find(key);
    return v != nullptr ? *v : std::move(fallback);
}

int ScenarioConfig::getInt(const std::string& key, int fallback) const {
    const std::string* v = find(key);
    if (v == nullptr) return fallback;
    std::size_t pos = 0;
    int out = 0;
    try {
        out = std::stoi(*v, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    if (pos != v->size()) {
        throw std::invalid_argument("ScenarioConfig: key \"" + key +
                                    "\" is not an integer: \"" + *v + "\"");
    }
    return out;
}

Real ScenarioConfig::getReal(const std::string& key, Real fallback) const {
    const std::string* v = find(key);
    if (v == nullptr) return fallback;
    std::size_t pos = 0;
    double out = 0.0;
    try {
        out = std::stod(*v, &pos);
    } catch (const std::exception&) {
        pos = 0;
    }
    if (pos != v->size()) {
        throw std::invalid_argument("ScenarioConfig: key \"" + key +
                                    "\" is not a number: \"" + *v + "\"");
    }
    return static_cast<Real>(out);
}

bool ScenarioConfig::getBool(const std::string& key, bool fallback) const {
    const std::string* v = find(key);
    if (v == nullptr) return fallback;
    std::string s = *v;
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (s == "1" || s == "true" || s == "on" || s == "yes") return true;
    if (s == "0" || s == "false" || s == "off" || s == "no") return false;
    throw std::invalid_argument("ScenarioConfig: key \"" + key +
                                "\" is not a boolean: \"" + *v + "\"");
}

std::vector<std::string> ScenarioConfig::unconsumedKeys() const {
    std::vector<std::string> out;
    for (const auto& [k, v] : m_kv) {
        if (m_consumed.count(k) == 0) out.push_back(k);
    }
    return out;
}

void ScenarioConfig::requireAllConsumed(const std::string& scenario) const {
    const auto leftover = unconsumedKeys();
    if (leftover.empty()) return;
    std::ostringstream os;
    os << "scenario \"" << scenario << "\": unknown config key";
    if (leftover.size() > 1) os << 's';
    os << ' ';
    for (std::size_t i = 0; i < leftover.size(); ++i) {
        os << (i != 0 ? ", " : "") << '"' << leftover[i] << '"';
    }
    // Leftover keys were by definition never consulted, so m_consumed is
    // exactly the accepted set.
    os << "; accepted keys:";
    for (const auto& k : m_consumed) os << ' ' << k;
    throw std::invalid_argument(os.str());
}

} // namespace exa::ensemble
