#include "ensemble/scenario.hpp"

#include "core/crc32.hpp"

namespace exa::ensemble {

std::uint32_t stateCrc(const MultiFab& mf, std::uint32_t seed) {
    std::uint32_t crc = seed;
    for (std::size_t f = 0; f < mf.size(); ++f) {
        const auto a = mf.const_array(static_cast<int>(f));
        const Box& vb = mf.box(static_cast<int>(f));
        const std::size_t row =
            static_cast<std::size_t>(vb.bigEnd(0) - vb.smallEnd(0) + 1) *
            sizeof(Real);
        for (int n = 0; n < mf.nComp(); ++n) {
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k) {
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j) {
                    // Array4 rows are i-contiguous; one CRC update per
                    // valid row skips the ghost columns on either side.
                    crc = crc32(&a(vb.smallEnd(0), j, k, n), row, crc);
                }
            }
        }
    }
    return crc;
}

std::uint64_t stateBytesOf(const MultiFab& mf) {
    std::uint64_t bytes = 0;
    for (std::size_t f = 0; f < mf.size(); ++f) {
        bytes += static_cast<std::uint64_t>(
                     mf.fabbox(static_cast<int>(f)).numPts()) *
                 static_cast<std::uint64_t>(mf.nComp()) * sizeof(Real);
    }
    return bytes;
}

} // namespace exa::ensemble
