#include "ensemble/runner.hpp"

#include "core/arena.hpp"
#include "core/executor.hpp"
#include "mesh/copier_cache.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace exa::ensemble {

namespace {

double percentile(std::vector<double> v, double p) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(v.size() - 1) + 0.5);
    return v[std::min(idx, v.size() - 1)];
}

} // namespace

EnsembleRunner::EnsembleRunner(EnsembleOptions opt) : m_opt(opt) {}
EnsembleRunner::~EnsembleRunner() = default;

int EnsembleRunner::add(const std::string& scenario, const ScenarioConfig& cfg) {
    return add(makeScenarioByName(scenario, cfg));
}

int EnsembleRunner::add(std::unique_ptr<Scenario> s, std::string label) {
    const int id = numTenants();
    Tenant t;
    t.scenario = std::move(s);
    t.label = label.empty() ? t.scenario->name() + "#" + std::to_string(id)
                            : std::move(label);
    t.timers = std::make_unique<TimerRegistry>(t.label);
    m_tenants.push_back(std::move(t));
    return id;
}

int EnsembleRunner::resolveWorkers() const {
    // The device-model launch hook and the debug contract checker are
    // process-global; both backends serialize launches, so correctness
    // (and the deterministic round-robin schedule) wants exactly one
    // worker regardless of the requested count.
    const Backend b = ExecConfig::backend();
    if (b == Backend::SimGpu || b == Backend::Debug) return 1;
    if (m_opt.workers > 0) return m_opt.workers;
    const unsigned hw = std::thread::hardware_concurrency();
    const int cap = std::min(static_cast<int>(hw != 0 ? hw : 1), numTenants());
    return std::max(1, std::min(cap, 8));
}

void EnsembleRunner::addResident(double delta) {
    std::lock_guard<std::mutex> lk(m_resident_mutex);
    m_resident_bytes = std::max(0.0, m_resident_bytes + delta);
    m_opt.device->setResidentBytes(m_resident_bytes);
}

void EnsembleRunner::stepTenant(int id, WorkStealingQueue& queue, int worker) {
    Tenant& t = m_tenants[static_cast<std::size_t>(id)];
    // The tenant's scopes: thread-local, so they follow the tenant to
    // whichever worker pulled it from the queue.
    ArenaTenantScope arena_scope(id);
    ScopedLedgerTenant ledger_scope(t.label);
    ScopedTimerRegistry timer_scope(t.timers.get());
    StreamScope stream;
    if (m_opt.per_tenant_streams) stream.use(id % ExecConfig::numStreams());

    if (!t.scenario->initialized()) {
        WallTimer w;
        {
            TimerRegion tr("ensemble/init");
            t.scenario->init();
        }
        t.wall += w.seconds();
        t.state_bytes = t.scenario->stateBytes();
        if (m_opt.device != nullptr)
            addResident(static_cast<double>(t.state_bytes));
        // The copier cache is process-wide: size its LRU for the number
        // of grids that are actually live, or N distinct-grid tenants
        // thrash each other's plans every step.
        CopierCache::instance().noteLiveTenants(
            m_live.fetch_add(1, std::memory_order_acq_rel) + 1);
    }

    // Run the tenant for its quantum (<= 0: to completion), keeping its
    // working set hot across consecutive steps; per-step latency is still
    // sampled individually.
    const int quantum = m_opt.quantum_steps;
    for (int q = 0; (quantum <= 0 || q < quantum) && !t.scenario->finished();
         ++q) {
        WallTimer w;
        {
            TimerRegion tr("ensemble/step");
            t.scenario->advanceOnce();
        }
        const double sec = w.seconds();
        t.step_ms.push_back(sec * 1.0e3);
        t.wall += sec;
        t.zone_steps += t.scenario->zones();
    }

    if (t.scenario->finished()) {
        t.crc = t.scenario->stateCrc();
        t.summary = t.scenario->summary();
        // Retired tenants release their modeled residency: the service
        // keeps only live simulations on the device.
        if (m_opt.device != nullptr)
            addResident(-static_cast<double>(t.state_bytes));
        CopierCache::instance().noteLiveTenants(
            m_live.fetch_sub(1, std::memory_order_acq_rel) - 1);
        m_remaining.fetch_sub(1, std::memory_order_acq_rel);
    } else {
        queue.push(worker, id);
    }
}

EnsembleReport EnsembleRunner::run() {
    if (m_ran)
        throw std::logic_error("EnsembleRunner::run() may only be called once");
    m_ran = true;

    EnsembleReport report;
    const int nworkers = numTenants() == 0 ? 1 : resolveWorkers();
    report.workers = nworkers;
    if (numTenants() == 0) return report;

    WorkStealingQueue queue(nworkers);
    for (int id = 0; id < numTenants(); ++id) queue.push(id % nworkers, id);
    m_remaining.store(numTenants(), std::memory_order_release);

    if (m_opt.ledger != nullptr) m_opt.ledger->attach();
    if (m_opt.device != nullptr) {
        std::lock_guard<std::mutex> lk(m_resident_mutex);
        m_resident_bytes = 0.0;
        m_opt.device->setResidentBytes(0.0);
    }

    WallTimer wall;
    auto worker_fn = [this, &queue](int w) {
        int id = -1;
        while (m_remaining.load(std::memory_order_acquire) > 0) {
            if (queue.pop(w, id)) {
                stepTenant(id, queue, w);
            } else {
                // Empty deques but unfinished tenants: another worker is
                // mid-step and will requeue; don't spin hot.
                std::this_thread::yield();
            }
        }
    };
    if (nworkers == 1) {
        worker_fn(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(nworkers));
        for (int w = 0; w < nworkers; ++w) pool.emplace_back(worker_fn, w);
        for (auto& th : pool) th.join();
    }
    report.wall_seconds = wall.seconds();

    if (m_opt.ledger != nullptr) m_opt.ledger->detach();
    if (m_opt.device != nullptr)
        report.oversubscribed = m_opt.device->oversubscribed();

    auto* pool_arena = dynamic_cast<PoolArena*>(The_Arena());
    std::vector<double> all_ms;
    std::int64_t zone_steps = 0;
    for (int id = 0; id < numTenants(); ++id) {
        Tenant& t = m_tenants[static_cast<std::size_t>(id)];
        TenantReport tr;
        tr.id = id;
        tr.label = t.label;
        tr.scenario = t.scenario->name();
        tr.steps = t.scenario->stepCount();
        tr.sim_time = t.scenario->time();
        tr.wall_seconds = t.wall;
        tr.zone_steps = t.zone_steps;
        tr.p50_ms = percentile(t.step_ms, 0.50);
        tr.p99_ms = percentile(t.step_ms, 0.99);
        tr.crc = t.crc;
        tr.summary = t.summary;
        if (pool_arena != nullptr) {
            const auto as = pool_arena->tenantStats(id);
            tr.arena_peak_bytes = as.peak_bytes;
            tr.arena_allocated_bytes = as.bytes_allocated;
        }
        if (m_opt.ledger != nullptr) {
            tr.comm_bytes = m_opt.ledger->tenantBytes(t.label);
            tr.comm_messages = m_opt.ledger->tenantMessages(t.label);
            tr.mg_vcycles = m_opt.ledger->tenantMgVcycles(t.label);
        }
        all_ms.insert(all_ms.end(), t.step_ms.begin(), t.step_ms.end());
        zone_steps += t.zone_steps;
        report.tenants.push_back(std::move(tr));
    }
    report.steals = queue.steals();
    report.p50_ms = percentile(all_ms, 0.50);
    report.p99_ms = percentile(all_ms, 0.99);
    if (report.wall_seconds > 0.0) {
        report.sims_per_hour =
            3600.0 * static_cast<double>(numTenants()) / report.wall_seconds;
        report.zone_steps_per_sec =
            static_cast<double>(zone_steps) / report.wall_seconds;
    }
    return report;
}

std::string EnsembleReport::table() const {
    std::ostringstream os;
    os << std::left << std::setw(18) << "tenant" << std::right << std::setw(7)
       << "steps" << std::setw(12) << "sim t" << std::setw(10) << "wall s"
       << std::setw(13) << "zone-steps" << std::setw(10) << "p50 ms"
       << std::setw(10) << "p99 ms" << std::setw(11) << "peak MiB"
       << std::setw(12) << "crc" << '\n';
    for (const auto& t : tenants) {
        os << std::left << std::setw(18) << t.label << std::right << std::setw(7)
           << t.steps << std::setw(12) << std::scientific
           << std::setprecision(3) << t.sim_time << std::fixed
           << std::setw(10) << std::setprecision(3) << t.wall_seconds
           << std::setw(13) << t.zone_steps << std::setw(10)
           << std::setprecision(2) << t.p50_ms << std::setw(10) << t.p99_ms
           << std::setw(11) << std::setprecision(1)
           << static_cast<double>(t.arena_peak_bytes) / (1024.0 * 1024.0)
           << std::setw(12) << std::hex << t.crc << std::dec << '\n';
    }
    os << std::fixed << std::setprecision(2);
    os << "ensemble: " << tenants.size() << " sims, " << workers
       << " worker(s), " << wall_seconds << " s wall, "
       << std::setprecision(1) << sims_per_hour << " sims/h, "
       << std::setprecision(0) << zone_steps_per_sec << " zone-steps/s, p50 "
       << std::setprecision(2) << p50_ms << " ms, p99 " << p99_ms << " ms, "
       << steals << " steal(s)" << (oversubscribed ? ", OVERSUBSCRIBED" : "")
       << '\n';
    return os.str();
}

} // namespace exa::ensemble
