#pragma once

#include "castro/castro_amr.hpp"
#include "castro/sedov.hpp"
#include "castro/wd_collision.hpp"
#include "ensemble/registry.hpp"
#include "maestro/maestro.hpp"

#include <memory>

namespace exa::ensemble {

// Problem config for the AMR blast scenario (the examples/amr_blast.cpp
// setup as a params struct, following the SedovParams/BubbleParams
// pattern): a blast wave on a coarse base grid with `max_level` levels of
// refinement tracking the hot region.
struct AmrBlastParams {
    int ncell = 16; // base-grid zones per dimension
    int max_level = 1;
    int ref_ratio = 2;
    int max_grid_size = 16;
    int blocking_factor = 4;
    int nranks = 4;
    Real cfl = 0.3;
    Real r_init = 0.125;     // blast deposit radius (unit domain)
    Real tag_temp = 1.0e-8;  // refine zones whose T exceeds this
    int regrid_interval = 4;
    // Self-gravity: None or PoissonAmr (the composite-grid FMG solve
    // coupling every AMR level).
    castro::GravityType gravity = castro::GravityType::None;

    // Build a subcycled CastroAmr hierarchy initialized with the blast
    // (PPM reconstruction, outflow boundaries) and init() it.
    std::unique_ptr<castro::CastroAmr> build(const ReactionNetwork& net) const;
};

// --- The built-in scenarios ----------------------------------------------
//
// Each has a typed-params constructor (programmatic use: the params struct
// plus RunLimits plus a network) and a ScenarioConfig constructor (the
// registry path: every field reachable as a key=value setting, including
// "network", "t-stop", "max-steps", "max-dt"). Construction stores config;
// init() builds the driver, so the EnsembleRunner can attribute the
// allocations to the owning tenant.

class SedovScenario final : public Scenario {
public:
    SedovScenario(const castro::SedovParams& p, const RunLimits& limits,
                  ReactionNetwork net = makeIgnitionSimple());
    explicit SedovScenario(const ScenarioConfig& cfg);

    void init() override;
    bool initialized() const override { return m_castro != nullptr; }
    Real time() const override { return m_castro->time(); }
    int stepCount() const override { return m_castro->stepCount(); }
    Real estimateDt() const override { return m_castro->estimateDt(); }
    using Scenario::advanceOnce;
    void advanceOnce(Real dt) override { m_castro->step(dt); }
    std::int64_t zones() const override;
    std::uint64_t stateBytes() const override;
    std::uint32_t stateCrc() const override;
    std::string summary() const override;

    castro::Castro& driver() { return *m_castro; }
    const castro::SedovParams& params() const { return m_params; }

private:
    castro::SedovParams m_params;
    ReactionNetwork m_net;
    std::unique_ptr<castro::Castro> m_castro;
};

class BubbleScenario final : public Scenario {
public:
    BubbleScenario(const maestro::BubbleParams& p, const RunLimits& limits,
                   ReactionNetwork net = makeIgnitionSimple());
    explicit BubbleScenario(const ScenarioConfig& cfg);

    void init() override;
    bool initialized() const override { return m_maestro != nullptr; }
    Real time() const override { return m_maestro->time(); }
    int stepCount() const override { return m_maestro->stepCount(); }
    Real estimateDt() const override { return m_maestro->estimateDt(); }
    using Scenario::advanceOnce;
    void advanceOnce(Real dt) override { m_maestro->step(dt); }
    std::int64_t zones() const override;
    std::uint64_t stateBytes() const override;
    std::uint32_t stateCrc() const override;
    std::string summary() const override;

    maestro::Maestro& driver() { return *m_maestro; }
    const maestro::BubbleParams& params() const { return m_params; }

private:
    maestro::BubbleParams m_params;
    ReactionNetwork m_net;
    std::unique_ptr<maestro::Maestro> m_maestro;
};

class AmrBlastScenario final : public Scenario {
public:
    AmrBlastScenario(const AmrBlastParams& p, const RunLimits& limits,
                     ReactionNetwork net = makeIgnitionSimple());
    explicit AmrBlastScenario(const ScenarioConfig& cfg);

    void init() override;
    bool initialized() const override { return m_amr != nullptr; }
    Real time() const override { return m_amr->time(); }
    int stepCount() const override { return m_amr->stepCount(); }
    Real estimateDt() const override { return m_amr->estimateDt(); }
    using Scenario::advanceOnce;
    void advanceOnce(Real dt) override { m_amr->step(dt); }
    std::int64_t zones() const override;
    std::uint64_t stateBytes() const override;
    // CRC over every level of the hierarchy, coarse to fine.
    std::uint32_t stateCrc() const override;
    std::string summary() const override;

    castro::CastroAmr& driver() { return *m_amr; }
    const AmrBlastParams& params() const { return m_params; }

private:
    AmrBlastParams m_params;
    ReactionNetwork m_net;
    std::unique_ptr<castro::CastroAmr> m_amr;
};

class WdCollisionScenario final : public Scenario {
public:
    // The by-name network in p.network is built at init() and owned by
    // the scenario's WdCollision.
    WdCollisionScenario(const castro::WdCollisionParams& p,
                        const RunLimits& limits);
    explicit WdCollisionScenario(const ScenarioConfig& cfg);

    void init() override;
    bool initialized() const override { return m_wd.castro != nullptr; }
    Real time() const override { return m_wd.castro->time(); }
    int stepCount() const override { return m_wd.castro->stepCount(); }
    Real estimateDt() const override { return m_wd.castro->estimateDt(); }
    using Scenario::advanceOnce;
    void advanceOnce(Real dt) override { m_wd.castro->step(dt); }
    // Retires on the RunLimits or on ignition (maxT >= p.ignition_T).
    bool finished() const override;
    std::int64_t zones() const override;
    std::uint64_t stateBytes() const override;
    std::uint32_t stateCrc() const override;
    std::string summary() const override;

    castro::WdCollision& collision() { return m_wd; }
    const castro::WdCollisionParams& params() const { return m_params; }
    bool ignited() const;

private:
    castro::WdCollisionParams m_params;
    castro::WdCollision m_wd;
};

} // namespace exa::ensemble
