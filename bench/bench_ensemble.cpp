// Experiment E16: ensemble service mode — N independent simulations
// multiplexed over shared infrastructure in one process versus the same
// N run back-to-back.
//
// The paper's exascale pitch is throughput science: parameter surveys and
// validation sweeps, not one hero run. This benchmark sweeps a mixed
// fleet (Sedov / reacting bubble / AMR blast / WD collision) at
// N in {1, 2, 4, 8} and reports, per N:
//   * serial wall-clock: the N simulations run back-to-back, one at a
//     time, through the same Scenario API;
//   * ensemble wall-clock: the same N scenarios multiplexed by the
//     EnsembleRunner over its work-stealing worker pool;
//   * speedup, aggregate zone-steps/s, sims/hour, and p50/p99 per-step
//     latency under multi-tenancy.
//
// "Back-to-back serial" is what a real campaign does without the
// service: N separate job submissions, each a fresh process paying full
// startup — binary load, static init, its own network/EOS construction,
// cold arena and copier-plan caches. The baseline therefore re-execs
// this binary once per member (`member=<i>` child mode). The warm
// in-process sequential time is also reported for transparency: it is
// the lower bound a single-core host can reach, and the gap between the
// two columns is exactly the fixed per-job cost the service amortizes.
// On hosts with idle cores the worker pool widens the win further.
//
// The acceptance bar: the N=8 mixed ensemble beats back-to-back serial
// (job-per-sim) wall-clock.
//
// A second section prices the same fleet on the V100 device model
// (SimGpu): tenants share the device via per-tenant streams, so the
// modeled timelines overlap, and the runner tracks aggregate residency
// against device capacity (the Unified-Memory oversubscription regime).

#include "bench_util.hpp"
#include "comm/ledger.hpp"
#include "core/timer.hpp"
#include "ensemble/runner.hpp"
#include "ensemble/scenarios.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace exa;
using namespace exa::ensemble;

namespace {

constexpr int kSteps = 4;

// One survey member: cycle through the registered kinds, varying a
// physics knob per instance the way a real campaign would.
std::unique_ptr<Scenario> makeMember(int i) {
    const RunLimits limits{0.0, kSteps, 0.0};
    switch (i % 4) {
        case 0: {
            castro::SedovParams p;
            p.ncell = 16;
            p.max_grid_size = 8;
            p.E = 1.0 + 0.25 * (i / 4);
            return std::make_unique<SedovScenario>(p, limits);
        }
        case 1: {
            maestro::BubbleParams p;
            p.ncell = 12;
            p.max_grid_size = 6;
            p.T_bubble = 8.5e8 + 5.0e7 * (i / 4);
            return std::make_unique<BubbleScenario>(p, limits);
        }
        case 2: {
            AmrBlastParams p;
            p.ncell = 12;
            p.max_grid_size = 8;
            p.blocking_factor = 4;
            return std::make_unique<AmrBlastScenario>(p, limits);
        }
        default: {
            castro::WdCollisionParams p;
            p.ncell = 12;
            p.max_grid_size = 6;
            p.network = "iso7";
            return std::make_unique<WdCollisionScenario>(p, limits);
        }
    }
}

// One member to completion in this process (the `member=<i>` child
// body, and the building block of the warm in-process baseline).
void runMember(int i) {
    auto s = makeMember(i);
    s->init();
    while (!s->finished()) s->advanceOnce();
}

// Warm in-process sequential baseline: same process, caches and arena
// already hot — the single-core lower bound, not how campaigns run.
double runSerialInProcess(int n) {
    WallTimer t;
    for (int i = 0; i < n; ++i) runMember(i);
    return t.seconds();
}

// The real back-to-back campaign: one job (process) per member, run to
// completion before the next starts. Each child re-execs this binary in
// `member=<i>` mode and pays genuine per-job startup.
double runSerialJobs(int n) {
    WallTimer t;
    for (int i = 0; i < n; ++i) {
        const std::string arg = "member=" + std::to_string(i);
        const pid_t pid = fork();
        if (pid == 0) {
            execl("/proc/self/exe", "bench_ensemble", arg.c_str(),
                  static_cast<char*>(nullptr));
            _exit(127); // exec failed
        }
        int status = 0;
        waitpid(pid, &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            std::fprintf(stderr, "member %d job failed\n", i);
            std::exit(1);
        }
    }
    return t.seconds();
}

EnsembleReport runEnsemble(int n, int workers = 0) {
    EnsembleOptions opt;
    opt.workers = workers;
    // Throughput mode: a survey wants aggregate wall-clock, so let each
    // tenant keep its cache-hot quantum; stealing still balances workers.
    opt.quantum_steps = kSteps;
    EnsembleRunner runner(opt);
    for (int i = 0; i < n; ++i) runner.add(makeMember(i));
    return runner.run();
}

double median3(double a, double b, double c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

} // namespace

int main(int argc, char** argv) {
    // Child mode: one campaign job, fresh process (see runSerialJobs).
    if (argc == 2 && std::strncmp(argv[1], "member=", 7) == 0) {
        runMember(std::atoi(argv[1] + 7));
        return 0;
    }

    benchutil::printHeader(
        "E16: ensemble service mode — N mixed sims multiplexed vs "
        "back-to-back serial (measured, this host)");

    std::printf("host: %u hardware thread(s)\n\n",
                std::thread::hardware_concurrency());
    std::printf("%4s %8s %13s %13s %13s %9s %14s %9s %9s\n", "N", "workers",
                "jobs [s]", "warm-seq [s]", "ensemble [s]", "speedup",
                "zone-steps/s", "p50 [ms]", "p99 [ms]");

    bool n8_wins = false;
    for (int n : {1, 2, 4, 8}) {
        // Warm-up outside the timers: first-touch arena growth and copier
        // plans, so the warm paths price steady-state multi-tenancy.
        if (n == 1) (void)runSerialInProcess(1);
        // Median of 3 interleaved repetitions, so a scheduler hiccup on a
        // shared host cannot decide the verdict either way.
        double jobs[3], ens[3];
        const double warm_s = runSerialInProcess(n);
        EnsembleReport report;
        for (int r = 0; r < 3; ++r) {
            jobs[r] = runSerialJobs(n);
            report = runEnsemble(n);
            ens[r] = report.wall_seconds;
        }
        const double jobs_s = median3(jobs[0], jobs[1], jobs[2]);
        const double ens_s = median3(ens[0], ens[1], ens[2]);
        const double speedup = jobs_s / ens_s;
        if (n == 8 && ens_s < jobs_s) n8_wins = true;
        std::printf("%4d %8d %13.3f %13.3f %13.3f %8.2fx %14.3e %9.3f %9.3f\n",
                    n, report.workers, jobs_s, warm_s, ens_s, speedup,
                    report.zone_steps_per_sec, report.p50_ms, report.p99_ms);
    }
    std::printf("\nN=8 mixed ensemble %s back-to-back serial (job-per-sim) "
                "wall-clock\n",
                n8_wins ? "BEATS" : "DOES NOT BEAT");

    // --- Modeled device multi-tenancy (V100 price book) ------------------
    //
    // Per-tenant streams let the device model overlap tenants' kernel
    // timelines the way concurrent CUDA streams would; the runner keeps
    // the model's resident-set at the sum of live tenants' state bytes.
    {
        ScopedBackend gpu(Backend::SimGpu);
        DeviceModel device;
        device.attach();
        EnsembleOptions opt;
        opt.device = &device;
        EnsembleRunner runner(opt);
        for (int i = 0; i < 8; ++i) runner.add(makeMember(i));
        const auto report = runner.run();
        std::printf("\nmodeled V100 multi-tenancy (8 tenants, %d streams):\n",
                    ExecConfig::numStreams());
        std::printf("  modeled %.3f s (serialized %.3f s)  launches %lld  "
                    "oversubscribed %s\n",
                    device.elapsedSeconds(), device.serializedSeconds(),
                    static_cast<long long>(device.numLaunches()),
                    report.oversubscribed ? "yes" : "no");
        device.detach();
    }

    std::printf("\nper-tenant accounting at N=8 (shared ledger):\n");
    {
        CommLedger ledger;
        EnsembleOptions opt;
        opt.ledger = &ledger;
        EnsembleRunner runner(opt);
        for (int i = 0; i < 8; ++i) runner.add(makeMember(i));
        const auto report = runner.run();
        std::printf("%s", report.table().c_str());
    }
    return n8_wins ? 0 : 1;
}
