// Experiment E6 (Section III): the caching (pool) allocator.
//
// Castro/MAESTROeX allocate per-timestep scratch (primitive states, face
// fluxes) every step. On CPUs that is tolerable; with cudaMalloc it was
// "disastrous": device allocation costs O(100 us) and serializes the
// device. The caching arena turns steady-state allocation into free-list
// handle reuse. The paper's fix was making that arena the default.
//
// Measured: real host wall time of a timestep-like scratch cycle under
// both arenas, the slow-allocation counts, and the modeled device-time
// penalty at a 100 us cudaMalloc cost.

#include <benchmark/benchmark.h>

#include "core/arena.hpp"

#include <array>
#include <vector>

using namespace exa;

namespace {

// The per-step scratch pattern of one Castro box (64^3 x ~11 comps of
// primitives + 3 face-flux fabs), repeated as the step loop does.
constexpr std::array<std::size_t, 4> scratch_bytes = {
    64ull * 64 * 64 * 11 * 8, // primitives
    65ull * 64 * 64 * 12 * 8, // x faces
    64ull * 65 * 64 * 12 * 8, // y faces
    64ull * 64 * 65 * 12 * 8, // z faces
};

void stepScratchCycle(Arena& arena) {
    std::vector<void*> ptrs;
    ptrs.reserve(scratch_bytes.size());
    for (auto sz : scratch_bytes) ptrs.push_back(arena.allocate(sz));
    // Touch one byte per page-ish stride so the allocation is not elided.
    for (std::size_t p = 0; p < ptrs.size(); ++p) {
        static_cast<char*>(ptrs[p])[0] = 1;
        static_cast<char*>(ptrs[p])[scratch_bytes[p] - 1] = 1;
    }
    for (void* p : ptrs) arena.deallocate(p);
}

void BM_MallocArenaStep(benchmark::State& state) {
    MallocArena arena;
    for (auto _ : state) stepScratchCycle(arena);
    const auto s = arena.stats();
    state.counters["slow_allocs_per_step"] =
        static_cast<double>(s.slow_allocs) / state.iterations();
    // Modeled device time at 100 us per cudaMalloc (the paper's "orders
    // of magnitude slower" device allocation).
    state.counters["modeled_cudamalloc_us_per_step"] =
        100.0 * static_cast<double>(s.slow_allocs) / state.iterations();
}
BENCHMARK(BM_MallocArenaStep);

void BM_PoolArenaStep(benchmark::State& state) {
    PoolArena arena;
    stepScratchCycle(arena); // warm the pool
    arena.resetStats();
    for (auto _ : state) stepScratchCycle(arena);
    const auto s = arena.stats();
    state.counters["slow_allocs_per_step"] =
        static_cast<double>(s.slow_allocs) / state.iterations();
    state.counters["pool_hit_rate"] =
        static_cast<double>(s.pool_hits) / static_cast<double>(s.allocs);
    state.counters["modeled_cudamalloc_us_per_step"] =
        100.0 * static_cast<double>(s.slow_allocs) / state.iterations();
}
BENCHMARK(BM_PoolArenaStep);

} // namespace

BENCHMARK_MAIN();
