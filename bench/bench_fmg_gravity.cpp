// Composite-grid FMG gravity ablation (E17): what do the FMG bootstrap,
// coarse-level rank aggregation, and split-phase smoother halos each buy
// on the multilevel Poisson solve the paper (SC 2020, §V) identifies as
// the exascale scaling gate?
//
// Methodology (measured compute / modeled network, as in DESIGN.md): a
// two-level hierarchy solves the manufactured-rhs Poisson problem to
// rtol = 1e-10 for real under the SimGpu backend; kernels are priced by
// the DeviceModel (V100 params) and scaled to the busiest rank's box
// share f. Every message the mesh layer would send is recorded via
// CommHooks and priced individually with the NetworkModel's alpha-beta
// p2p cost, serialized per rank (T_net = the busiest rank's sum). The
// per-message latency pricing matters here: unlike a hydro step, an MG
// solve is thousands of tiny ghost exchanges — a 1-ghost face of a
// coarse rung's box is a few hundred bytes, so the ladder's bottom is
// pure injection latency and a solve-granularity bulk-phase model
// (CommLedger::phaseTime, which pays latency once per rank pair) would
// hide exactly the cost aggregation removes.
//
//   fused : T = t_kernels*f + T_net
//   split : T = t_kernels*f + max(0, T_net - hidden)
//
// with hidden = min(T_net, t_smooth*f * interior_fraction): each
// red-black half-sweep posts its exchange and smooths fab interiors
// while the traffic is in flight, so up to the interior share of the
// smoother's kernel time can cover the network time (an aggregate
// treatment of per-half-sweep overlap).
//
// The levers move different terms. The FMG bootstrap cuts *cycles*
// (kernel and network time together): one full-multigrid pass lands
// within discretization error, so the V-cycle loop starts nearly
// converged. Aggregation cuts *messages*: few-zone coarse rungs relaid
// onto fewer ranks turn the latency-bound all-to-all chatter of the
// ladder's bottom into on-rank copies (the staging ParallelCopies are
// priced too — agg bytes buys message-count reduction). Split-phase
// halos cut the *exposed* network time without changing a single bit of
// the answer (ctest -L gravity pins all three bit-identities).

#include "bench_util.hpp"
#include "comm/halo_handle.hpp"
#include "comm/network.hpp"
#include "core/parallel_for.hpp"
#include "mesh/comm_hooks.hpp"
#include "mesh/copier_cache.hpp"
#include "solvers/mg/composite_mg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace exa;

namespace {

struct Hier {
    std::vector<Geometry> geoms;
    std::vector<BoxArray> bas;
    std::vector<DistributionMapping> dms;
    std::vector<MultiFab> phi, rhs;
};

// Two-level hierarchy on the unit cube: base n^3, central half refined
// by 2, product-of-sines rhs (the test suite's manufactured problem at
// bench scale).
Hier makeHier(int n, int max_grid, int nranks) {
    Hier h;
    const Box dom({0, 0, 0}, {n - 1, n - 1, n - 1});
    h.geoms.emplace_back(dom, std::array<Real, 3>{0, 0, 0},
                         std::array<Real, 3>{1, 1, 1}, IntVect{0, 0, 0});
    BoxArray ba0(dom);
    ba0.maxSize(max_grid);
    h.bas.push_back(ba0);
    h.dms.emplace_back(ba0, nranks);
    const Box fine = refine(Box({n / 4, n / 4, n / 4},
                                {3 * n / 4 - 1, 3 * n / 4 - 1, 3 * n / 4 - 1}),
                            2);
    h.geoms.push_back(h.geoms[0].refined(2));
    BoxArray ba1(fine);
    ba1.maxSize(max_grid);
    h.bas.push_back(ba1);
    h.dms.emplace_back(ba1, nranks);

    const Real k = constants::pi;
    for (std::size_t lev = 0; lev < h.geoms.size(); ++lev) {
        h.phi.emplace_back(h.bas[lev], h.dms[lev], 1, 1);
        h.rhs.emplace_back(h.bas[lev], h.dms[lev], 1, 0);
        h.phi[lev].setVal(0.0);
        const Geometry g = h.geoms[lev];
        for (std::size_t i = 0; i < h.rhs[lev].size(); ++i) {
            auto r = h.rhs[lev].array(static_cast<int>(i));
            ParallelFor(h.rhs[lev].box(static_cast<int>(i)),
                        [=](int ii, int j, int kk) {
                r(ii, j, kk) = -3.0 * k * k *
                               std::sin(k * g.cellCenter(0, ii)) *
                               std::sin(k * g.cellCenter(1, j)) *
                               std::sin(k * g.cellCenter(2, kk));
            });
        }
    }
    return h;
}

double busiestRankShare(const DistributionMapping& dm) {
    const auto& ranks = dm.ranks();
    std::vector<int> count;
    for (int r : ranks) {
        if (r >= static_cast<int>(count.size())) count.resize(r + 1, 0);
        ++count[r];
    }
    const int mx = *std::max_element(count.begin(), count.end());
    return static_cast<double>(mx) / static_cast<double>(ranks.size());
}

// Interior share of the finest level's zones at stencil width 1: the
// fraction of each half-sweep that can run while its exchange is in
// flight.
double interiorFraction(const BoxArray& ba) {
    const auto part = CopierCache::instance().interiorPartition(ba, 1);
    double interior = 0.0, total = 0.0;
    for (std::size_t i = 0; i < part->fabs.size(); ++i) {
        total += static_cast<double>(ba[static_cast<int>(i)].numPts());
        if (part->fabs[i].interior.ok())
            interior += static_cast<double>(part->fabs[i].interior.numPts());
    }
    return total > 0.0 ? interior / total : 0.0;
}

// Per-rank serialized network clock: every recorded message pays its
// full alpha-beta p2p cost at both endpoints; the solve's network time
// is the busiest rank's sum.
struct NetClock {
    RankLayout layout;
    const NetworkModel* net = nullptr;
    std::vector<double> rank_time;
    std::int64_t msgs = 0;
    std::int64_t bytes = 0;

    void attach() {
        rank_time.assign(static_cast<std::size_t>(layout.numRanks()), 0.0);
        CommHooks::setMessageHook([this](const MessageRecord& r) {
            if (r.src_rank == r.dst_rank) return;
            if (r.src_rank >= layout.numRanks() ||
                r.dst_rank >= layout.numRanks())
                return;
            const double t = net->p2pTime(
                r.bytes, layout.sameNode(r.src_rank, r.dst_rank), layout.nodes);
            rank_time[static_cast<std::size_t>(r.src_rank)] += t;
            rank_time[static_cast<std::size_t>(r.dst_rank)] += t;
            ++msgs;
            bytes += r.bytes;
        });
    }
    void detach() { CommHooks::clearMessageHook(); }
    double time() const {
        return rank_time.empty()
                   ? 0.0
                   : *std::max_element(rank_time.begin(), rank_time.end());
    }
};

struct Row {
    CompositeMgResult res;
    double t_kernel = 0.0, t_smooth = 0.0, t_net = 0.0, hidden = 0.0;
    std::int64_t msgs = 0;
    double total() const {
        return t_kernel + std::max(0.0, t_net - hidden);
    }
};

// One solve configuration: the hierarchy decomposition plus the ladder
// options under test.
struct Config {
    int n = 128, max_grid = 32, nranks = 64, nodes = 16;
    int ladder_max_grid = 32; // geometric rungs keep the AMR granularity
    int min_level_side = 2;   // ladder bottom (side of the coarsest rung)
    std::int64_t azr = 4096;  // agg_zones_per_rank
};

Row runCase(const Config& cfg, const RankLayout& layout,
            const NetworkModel& netmod, bool fmg, bool agg, bool split) {
    Hier h = makeHier(cfg.n, cfg.max_grid, cfg.nranks);
    CompositeMgOptions opt;
    opt.rtol = 1.0e-10;
    opt.fmg = fmg;
    opt.aggregate_coarse = agg;
    opt.nranks = cfg.nranks;
    opt.max_grid_size = cfg.ladder_max_grid;
    opt.min_level_side = cfg.min_level_side;
    opt.agg_zones_per_rank = cfg.azr;
    CompositeMg mg(h.geoms, h.bas, h.dms, 2, MgBC::Dirichlet, opt);
    std::vector<MultiFab*> phi{&h.phi[0], &h.phi[1]};
    std::vector<const MultiFab*> rhs{&h.rhs[0], &h.rhs[1]};

    DeviceModel dev;
    dev.attach();
    NetClock clock{layout, &netmod, {}, 0, 0};
    clock.attach();
    Row row;
    {
        comm::ScopedAsyncHalo async(split);
        row.res = mg.solve(phi, rhs);
    }
    const double f = busiestRankShare(h.dms[0]);
    row.t_kernel = dev.elapsedSeconds() * f;
    const auto& ks = dev.kernelStats();
    if (auto it = ks.find("mg_smooth"); it != ks.end())
        row.t_smooth = it->second.seconds * f;
    row.t_net = clock.time();
    row.msgs = clock.msgs;
    if (split)
        row.hidden =
            std::min(row.t_net, row.t_smooth * interiorFraction(h.bas[1]));
    clock.detach();
    dev.detach();
    return row;
}

} // namespace

void runSweep(const char* title, const Config& cfg,
              const NetworkModel& netmod) {
    const RankLayout layout{cfg.nodes, cfg.nranks / cfg.nodes};
    std::printf("\n%s\nTwo-level hierarchy: %d^3 base + %d^3-refined central "
                "half, %d^3 boxes, %d ranks x %d nodes,\nladder boxes %d^3 "
                "down to a %d^3 bottom, agg threshold %lld zones/rank, "
                "rtol 1e-10\n",
                title, cfg.n, cfg.n, cfg.max_grid, cfg.nranks, cfg.nodes,
                cfg.ladder_max_grid, cfg.min_level_side,
                static_cast<long long>(cfg.azr));
    std::printf("\n%-28s %7s %7s %9s %10s %10s %10s %10s\n", "configuration",
                "cycles", "sweeps", "msgs", "kernel ms", "net ms", "hidden ms",
                "total ms");

    struct Case {
        const char* label;
        bool fmg, agg, split;
    };
    const Case cases[] = {
        {"V-cycles only, fused", false, false, false},
        {"FMG bootstrap, fused", true, false, false},
        {"FMG + aggregation, fused", true, true, false},
        {"FMG + aggregation + split", true, true, true},
    };
    double t_base = 0.0;
    for (const Case& c : cases) {
        const Row r = runCase(cfg, layout, netmod, c.fmg, c.agg, c.split);
        if (t_base == 0.0) t_base = r.total();
        std::printf("%-28s %7d %7lld %9lld %10.2f %10.2f %10.2f %10.2f",
                    c.label, r.res.all_vcycles,
                    static_cast<long long>(r.res.sweeps),
                    static_cast<long long>(r.msgs), r.t_kernel * 1e3,
                    r.t_net * 1e3, r.hidden * 1e3, r.total() * 1e3);
        std::printf("   (%.2fx", t_base / r.total());
        if (c.agg)
            std::printf(", %lld agg copies / %.1f KiB",
                        static_cast<long long>(r.res.agg_copies),
                        static_cast<double>(r.res.agg_bytes) / 1024.0);
        std::printf(")\n");
    }
}

int main() {
    benchutil::printHeader(
        "Ablation: composite FMG gravity (bootstrap, coarse aggregation, "
        "split halos)");

    ScopedBackend backend(Backend::SimGpu);
    const NetworkModel netmod; // Summit-like fabric (src/comm/network.hpp)
    std::printf("\nModeled V100 + EDR fabric; "
                "total = kernel*f + max(0, net - hidden),\n"
                "f = busiest rank's box share, hidden = min(net, "
                "smoother-interior kernel time)\n");

    // Latency regime: small boxes spread over many ranks — the ladder's
    // coarse rungs are pure injection-latency chatter, the regime coarse
    // aggregation exists for (the 32^3 rung collapses onto one rank; the
    // single-box rungs below it carry no exchange either way).
    {
        Config cfg;
        cfg.n = 64;
        cfg.max_grid = 16;
        cfg.nranks = 64;
        cfg.nodes = 16;
        cfg.ladder_max_grid = 16;
        cfg.min_level_side = 2;
        cfg.azr = 32768;
        runSweep("--- latency regime ---", cfg, netmod);
    }

    // Bandwidth/overlap regime: production-size boxes, one per rank per
    // level — shells are thin relative to interiors, so split-phase
    // halos hide the fine rungs' exchange behind interior smoothing.
    {
        Config cfg;
        cfg.n = 256;
        cfg.max_grid = 128;
        cfg.nranks = 8;
        cfg.nodes = 8;
        cfg.ladder_max_grid = 128;
        cfg.min_level_side = 2;
        cfg.azr = 32768;
        runSweep("--- bandwidth/overlap regime ---", cfg, netmod);
    }
    return 0;
}
