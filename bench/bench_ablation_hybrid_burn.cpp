// Experiment E14 (Section VI future work, implemented): the batched
// GPU-resident burn engine vs the per-zone per-fab baseline, and the
// CPU/GPU hybrid split on top of it.
//
// "In the extreme case where one zone in a box is igniting while all of
// the others are quiescent, the computational cost may vary by multiple
// orders of magnitude across zones ... a strategy that involves
// identifying those outlier zones ... and performing their ODE solves on
// the CPU, while the GPU handles the rest."
//
// The workload is a WD-collision-like stiffness distribution on a real
// multi-box MultiFab: a cold inert bulk, a quiescent-but-reacting warm
// bulk, a hot interface plane (many zones, moderate stiffness), and a few
// igniting hot-spot zones (extreme stiffness). Three burn drivers run on
// identical state under the simulated V100:
//
//   baseline — reactState per-zone path: one launch per fab, each priced
//              with its fab-local step distribution (64 small launches,
//              each paying the latency-hiding ramp and its own max-zone
//              warp-stall tail);
//   batched  — the BatchBurner gather: all reacting zones of the MultiFab
//              fused into a few large stiffness-sorted launches;
//   hybrid   — batched plus the stiff tail routed to the host, with the
//              host side priced from the tail's integrator steps at a
//              Summit-node CPU rate and overlapped with the device.
//
// All three produce bit-identical zone results; only the launch structure
// differs. The bench prints the burn-phase speedups plus the batch-size
// and stiffness-spread sweeps (EXPERIMENTS.md E14).

#include "bench_util.hpp"
#include "castro/react.hpp"
#include "castro/state.hpp"
#include "mesh/multifab.hpp"

#include <cmath>
#include <cstdio>

using namespace exa;
using namespace exa::castro;

namespace {

struct Workload {
    BoxArray ba;
    DistributionMapping dm;
    MultiFab state;
    int nspec;

    Workload(const ReactionNetwork& net, int ncell, int max_grid, Real T_interface,
             int hot_zones)
        : ba(makeBa(ncell, max_grid)), dm(ba, 1),
          state(ba, dm, StateLayout(net.nspec()).ncomp(), 0), nspec(net.nspec()) {
        // 50/50 C/O everywhere.
        std::vector<Real> X(nspec, 0.0);
        X[net.speciesIndex("c12")] = 0.5;
        X[net.speciesIndex("o16")] = 0.5;
        const int mid = ncell / 2;
        // Igniting hot spots scattered along the interface plane so they
        // land in *different* boxes — each one stalls its own fab's
        // launch in the per-zone baseline, while the batched gather
        // folds them into a single batch (and the hybrid tails them).
        auto isHot = [&](int i, int j, int k) {
            if (i != mid || k % max_grid != max_grid / 2 ||
                j % max_grid != max_grid / 2)
                return false;
            const int cell = (j / max_grid) + (ncell / max_grid) * (k / max_grid);
            return cell < hot_zones;
        };
        for (std::size_t f = 0; f < state.size(); ++f) {
            auto u = state.array(static_cast<int>(f));
            const Box& vb = state.box(static_cast<int>(f));
            for (int k = vb.smallEnd(2); k <= vb.bigEnd(2); ++k)
                for (int j = vb.smallEnd(1); j <= vb.bigEnd(1); ++j)
                    for (int i = vb.smallEnd(0); i <= vb.bigEnd(0); ++i) {
                        Real rho = 1.0e7, T;
                        if (i < mid / 2) {
                            T = 3.0e7; // cold inert bulk (skipped by T_min)
                        } else if (i == mid || i == mid + 1) {
                            // the collision interface: hot plane
                            T = isHot(i, j, k) ? 3.2e9 : T_interface;
                        } else {
                            T = 1.5e8; // warm quiescent bulk (reacting)
                        }
                        u(i, j, k, StateLayout::URHO) = rho;
                        u(i, j, k, StateLayout::UTEMP) = T;
                        for (int n = 0; n < nspec; ++n)
                            u(i, j, k, StateLayout::UFS + n) = rho * X[n];
                        u(i, j, k, StateLayout::UEDEN) = rho * 1.0e17;
                    }
        }
    }

    static BoxArray makeBa(int ncell, int max_grid) {
        BoxArray ba(Box({0, 0, 0}, {ncell - 1, ncell - 1, ncell - 1}));
        ba.maxSize(max_grid);
        return ba;
    }
};

struct RunResult {
    BurnGridStats stats;
    double device_s = 0.0;  // modeled device time of the burn phase
    double host_s = 0.0;    // modeled host time of the hybrid tail
    BatchBurnReport report; // batched runs only
    double effective() const { return std::max(device_s, host_s); }
};

// Host-side price of the hybrid tail: the tail's integrator steps at a
// Summit-node CPU rate. The paper's node-for-node measurements put the
// GPU build ~20x over the CPU build, so one AC922 node's burn throughput
// is modeled as gpu.flops / 20 (~42 cores x 0.85 derate x ~11 GF/core).
double hostTailSeconds(const BatchBurnReport& rep, int nspec) {
    const int nsys = nspec + 1;
    const double flops_per_step = 2000.0 * nsys * nsys + 60000.0;
    const GpuParams gpu;
    const CpuNodeParams cpu;
    const double node_flops = gpu.flops / 20.0;
    (void)cpu;
    return static_cast<double>(rep.tail_steps) * flops_per_step / node_flops;
}

RunResult runBurn(const Workload& w, const ReactionNetwork& net, const Eos& eos,
                  Real dt, const ReactOptions& ropt) {
    // Fresh copy of the state each time (burn mutates it).
    MultiFab state(w.ba, w.dm, w.state.nComp(), w.state.nGrow());
    MultiFab::Copy(state, w.state, 0, 0, w.state.nComp(), 0);
    ScopedBackend sb(Backend::SimGpu);
    DeviceModel dev;
    dev.attach();
    RunResult r;
    r.stats = reactState(state, net, eos, dt, ropt);
    dev.detach();
    r.device_s = dev.elapsedSeconds();
    if (ropt.batched) {
        r.report = lastBatchBurnReport();
        if (ropt.batch.hybrid_cpu_tail)
            r.host_s = hostTailSeconds(r.report, net.nspec());
    }
    return r;
}

} // namespace

int main() {
    benchutil::printHeader(
        "E14: batched stiffness-sorted burn vs per-zone baseline (WD-like)");

    auto net = makeNetworkByName("aprox13");
    Eos eos{HelmLiteEos{}};
    const Real dt = 1.0e-6;
    const int ncell = 32, max_grid = 8;

    Workload w(net, ncell, max_grid, 9.0e8, 6);

    ReactOptions base;
    ReactOptions batched = base;
    batched.batched = true;
    ReactOptions hybrid = batched;
    hybrid.batch.hybrid_cpu_tail = true;

    auto rb = runBurn(w, net, eos, dt, base);
    auto rB = runBurn(w, net, eos, dt, batched);
    auto rH = runBurn(w, net, eos, dt, hybrid);

    std::printf("\n  zones %lld (%zu fabs), mean steps %.1f, max steps %lld "
                "(imbalance %.0fx)\n",
                static_cast<long long>(rb.stats.zones), w.state.size(),
                rb.stats.meanSteps(), static_cast<long long>(rb.stats.max_steps),
                rb.stats.imbalance());
    std::printf("  gathered %lld reacting zones -> %lld batches, "
                "stiffness median %.2g max %.2g\n",
                static_cast<long long>(rB.report.gathered),
                static_cast<long long>(rB.report.batches),
                rB.report.stiffness_median, rB.report.stiffness_max);
    std::printf("  hybrid tail: %lld zones (cut %.3g), %lld steps, host %.3g ms "
                "overlapped with device\n",
                static_cast<long long>(rH.report.tail_zones),
                rH.report.stiffness_tail_cut,
                static_cast<long long>(rH.report.tail_steps), rH.host_s * 1e3);

    std::printf("\n  %-46s %10s %10s\n", "quantity", "ours", "paper");
    benchutil::printRow("baseline (per-zone, per-fab launches)", rb.device_s * 1e3,
                        0.0, "ms");
    benchutil::printRow("batched (sorted, fused launches)", rB.effective() * 1e3,
                        0.0, "ms");
    benchutil::printRow("hybrid (batched + CPU stiff tail)", rH.effective() * 1e3,
                        0.0, "ms");
    benchutil::printRow("batched speedup over baseline",
                        rb.device_s / rB.effective(), 2.0,
                        "x (target >= 2x, Section VI)");
    benchutil::printRow("hybrid speedup over baseline",
                        rb.device_s / rH.effective(), 2.0, "x");
    benchutil::printRow("hybrid speedup over pure batched",
                        rB.effective() / rH.effective(), 1.0, "x (> 1 expected)");

    // --- Sweep: batch size --------------------------------------------------
    std::printf("\n  speedup vs batch size (sorted, no tail):\n");
    std::printf("    %10s %10s %12s %10s\n", "batch", "launches", "device [ms]",
                "speedup");
    for (int bs : {256, 1024, 2048, 4096, 16384}) {
        ReactOptions o = batched;
        o.batch.batch_size = bs;
        auto r = runBurn(w, net, eos, dt, o);
        std::printf("    %10d %10lld %12.3f %10.2f\n", bs,
                    static_cast<long long>(r.report.batches), r.device_s * 1e3,
                    rb.device_s / r.device_s);
    }

    // --- Sweep: stiffness spread -------------------------------------------
    // Hotter interface planes widen the step-count spread between the
    // quiescent bulk and the plane; the sort keeps batches homogeneous,
    // so the batched advantage should hold across the sweep.
    std::printf("\n  speedup vs stiffness spread (interface temperature):\n");
    std::printf("    %12s %10s %12s %12s %10s %10s\n", "T_iface [K]", "imb [x]",
                "base [ms]", "batch [ms]", "speedup", "hybrid x");
    for (Real Ti : {7.0e8, 9.0e8, 1.2e9}) {
        Workload ws(net, ncell, max_grid, Ti, 6);
        auto b = runBurn(ws, net, eos, dt, base);
        auto s = runBurn(ws, net, eos, dt, batched);
        auto h = runBurn(ws, net, eos, dt, hybrid);
        std::printf("    %12.2g %10.0f %12.3f %12.3f %10.2f %10.2f\n", Ti,
                    b.stats.imbalance(), b.device_s * 1e3, s.effective() * 1e3,
                    b.device_s / s.effective(), s.effective() / h.effective());
    }
    return 0;
}
