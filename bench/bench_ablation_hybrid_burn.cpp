// Experiment E8 (Section VI future work, implemented): the CPU/GPU
// hybrid burn.
//
// "In the extreme case where one zone in a box is igniting while all of
// the others are quiescent, the computational cost may vary by multiple
// orders of magnitude across zones ... a strategy that involves
// identifying those outlier zones ... and performing their ODE solves on
// the CPU, while the GPU handles the rest."
//
// A real box is burned with one igniting hot zone; the per-zone BDF step
// counts give the true work distribution. The device launch is then
// priced twice: uniform (the igniting zone stalls its warp and, through
// latency, the whole launch) and hybrid (outliers excluded from the
// device launch and integrated host-side concurrently).

#include "bench_util.hpp"
#include "castro/castro.hpp"

#include <cstdio>

using namespace exa;
using namespace exa::castro;

int main() {
    benchutil::printHeader("Section VI ablation: outlier-zone hybrid burn");

    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    Box dom({0, 0, 0}, {15, 15, 15});
    Geometry geom(dom, {0, 0, 0}, {1e7, 1e7, 1e7});
    BoxArray ba(dom);
    DistributionMapping dm(ba, 1);
    CastroOptions copt;
    copt.do_react = true;
    Castro c(geom, ba, dm, net, eos, copt);
    // Quiescent warm carbon everywhere; one igniting zone in the center.
    c.initialize([&](Real x, Real y, Real z) {
        Castro::InitialZone zn;
        zn.rho = 2.0e9;
        const bool hot = std::abs(x - 5e6) < 4e5 && std::abs(y - 5e6) < 4e5 &&
                         std::abs(z - 5e6) < 4e5;
        zn.T = hot ? 1.3e9 : 2.0e8;
        zn.X = {1.0, 0.0};
        return zn;
    });

    ScopedBackend sb(Backend::SimGpu);

    auto runBurn = [&](bool hybrid) {
        // Fresh copy of the state each time (burn mutates it).
        MultiFab state(ba, dm, c.state().nComp(), c.state().nGrow());
        MultiFab::Copy(state, c.state(), 0, 0, c.state().nComp(), 0);
        ReactOptions ropt;
        ropt.T_min = 5.0e7;
        ropt.hybrid_cpu_outliers = hybrid;
        ropt.outlier_factor = 10.0;
        DeviceModel dev;
        dev.attach();
        auto stats = reactState(state, net, eos, 1.0e-4, ropt);
        dev.detach();
        return std::pair{stats, dev.elapsedSeconds()};
    };

    auto [stats_u, t_uniform] = runBurn(false);
    auto [stats_h, t_hybrid] = runBurn(true);

    std::printf("\n  zones %lld, mean steps %.1f, max steps %lld "
                "(imbalance %.0fx)\n",
                static_cast<long long>(stats_u.zones), stats_u.meanSteps(),
                static_cast<long long>(stats_u.max_steps), stats_u.imbalance());
    std::printf("\n  %-46s %10s %10s\n", "quantity", "ours", "paper");
    benchutil::printRow("zone-to-zone work variation", stats_u.imbalance(), 100.0,
                        "x ('multiple orders of magnitude')");
    benchutil::printRow("modeled device burn time, uniform", t_uniform * 1e6, 0.0,
                        "us");
    benchutil::printRow("modeled device burn time, hybrid", t_hybrid * 1e6, 0.0,
                        "us");
    benchutil::printRow("hybrid speedup of the burn launch",
                        t_uniform / t_hybrid, 1.0,
                        "x (paper: qualitative, >> 1 expected)");
    return 0;
}
