// Experiment E2 (Figure 3): MAESTROeX reacting-bubble weak scaling.
//
// The real low Mach solver (advection + buoyancy + 2-species carbon
// burning + multigrid projection) runs at laptop scale under the
// simulated GPU; the measured burn/advection kernel mix and the measured
// projection V-cycle count feed the Summit scaling model at the paper's
// node counts 1/8/27/64/125 (domain grown 2x,3x,4x,5x per dimension).
//
// Paper targets: single node ~11 zones/usec (~20x the CPU node);
// burning and multigrid roughly balanced on one node; multigrid ~6x the
// burn cost at 125 nodes; normalized throughput decaying to ~0.4-0.5.

#include "bench_util.hpp"
#include "maestro/maestro.hpp"

#include <cstdio>
#include <map>
#include <vector>

using namespace exa;
using namespace exa::maestro;

int main() {
    benchutil::printHeader(
        "Figure 3: MAESTROeX reacting bubble weak scaling (measured + model)");

    // --- Phase 1: instrumented real runs --------------------------------
    // Run A measures the zone-local physics (projection disabled, so the
    // multigrid's internal kernels and ghost copies stay out of the mix);
    // run B measures the projection's V-cycle count. The MG cost itself is
    // then priced by the multigrid model at the right per-level sizes.
    auto net = makeIgnitionSimple();
    BubbleParams bp;
    bp.ncell = 16;
    bp.max_grid_size = 8; // 8 boxes
    bp.do_react = true;
    bp.T_bubble = 9.0e8;
    bp.bubble_radius_frac = 0.22; // a substantial burning region
    auto m = bp.build(net);

    ScopedBackend sb(Backend::SimGpu);
    ExecConfig::setNumStreams(4);
    DeviceModel dev;
    dev.attach();
    const int nsteps = 3;
    for (int s = 0; s < nsteps; ++s) {
        m->step(std::min(m->estimateDt(), 1.0e-3));
    }
    dev.detach();

    const int nboxes = static_cast<int>(m->state().size());
    const std::int64_t zones_per_box = 8LL * 8 * 8;

    // Separate the multigrid work (everything launched inside project())
    // from the zone-local mix by re-running one projection alone.
    DeviceModel dev_proj;
    dev_proj.attach();
    m->project();
    const double vcycles_per_step =
        static_cast<double>(m->lastProjectionVcycles());
    dev_proj.detach();
    auto proj_mix = benchutil::kernelMix(dev_proj, nboxes, 1, zones_per_box);

    auto mix_all = benchutil::kernelMix(dev, nboxes, nsteps, zones_per_box);
    std::vector<KernelLaunchSpec> mix;
    for (const auto& k : mix_all) {
        const std::string nm = k.info.name;
        if (nm.rfind("mg_", 0) == 0) continue;
        // Subtract the per-projection share of generic copies/reductions
        // (they belong to the MG solve, priced by the MG model).
        double launches = k.launches_per_box_per_step;
        for (const auto& pk : proj_mix) {
            if (nm == pk.info.name) {
                launches -= pk.launches_per_box_per_step;
            }
        }
        if (launches <= 0.01) continue;
        KernelLaunchSpec s = k;
        s.launches_per_box_per_step = launches;
        mix.push_back(s);
    }

    std::printf("\nMeasured kernel mix (per box per step) and projection cost:\n");
    for (const auto& k : mix) {
        std::printf("  %-22s launches/box/step %7.2f  imbalance %5.1f  %4d regs\n",
                    k.info.name, k.launches_per_box_per_step,
                    k.info.work_imbalance, k.info.regs_per_thread);
    }
    std::printf("  projection V-cycles per step: %.1f\n", vcycles_per_step);

    StepModel step;
    step.kernels = mix;
    step.fillboundary_phases_per_step = 2; // advect + projection correction
    step.halo_ncomp = MaestroLayout(net.nspec()).ncomp();
    step.halo_ngrow = 2;
    step.allreduces_per_step = 2; // dt + null-space removal

    MultigridModel mg;
    mg.vcycles_per_step = vcycles_per_step;
    mg.smooth_sweeps_per_level = 5; // red-black passes touch half the zones:
                                    // ~5 full-zone-equivalent sweeps per level
    mg.ncomp = 1;

    // --- Phase 2: Summit-scale weak scaling -----------------------------
    WeakScalingModel model(MachineParams::summit());
    const std::vector<int> node_counts = {1, 8, 27, 64, 125};

    std::printf("\nWeak scaling (128^3 zones/node, 32^3 boxes):\n");
    std::printf("  %5s %14s %12s %14s %14s\n", "nodes", "zones/usec", "normalized",
                "mg share", "mg/burn");
    double single_node = 0.0;
    std::map<int, ScalingPoint> pts;
    for (int n : node_counts) {
        auto pt = model.run(n, 128, 32, step, &mg);
        if (n == 1) single_node = pt.zones_per_usec;
        pt.normalized = pt.zones_per_usec / (single_node * n);
        pts[n] = pt;
        std::printf("  %5d %14.2f %12.3f %14.3f %14.2f\n", n, pt.zones_per_usec,
                    pt.normalized, pt.mg_s / pt.total_s, pt.mg_s / pt.compute_s);
    }

    benchutil::printHeader("Paper comparison (measured/modeled vs paper)");
    std::printf("  %-42s %12s %12s\n", "quantity", "ours", "paper");
    benchutil::printRow("single-node throughput", single_node, 11.0, "zones/usec");
    benchutil::printRow("mg/burn cost ratio, 1 node",
                        pts[1].mg_s / pts[1].compute_s, 1.0, "");
    benchutil::printRow("mg/burn cost ratio, 125 nodes",
                        pts[125].mg_s / pts[125].compute_s, 6.0, "");
    benchutil::printRow("normalized throughput, 125 nodes", pts[125].normalized,
                        0.45, "");
    return 0;
}
