// Communication-metadata caching ablation: what does the CopierCache (and
// the hashed BoxArray intersections underneath it) buy per FillBoundary
// call? The paper's GPU-resident design leaves the CPU with little to do
// *except* this kind of per-step metadata work, so a pattern rescan that
// was invisible next to CPU compute becomes a fixed per-step tax at
// exascale box counts.
//
// Output: per-call pattern overhead of (a) the legacy O(nfabs^2 x shifts)
// linear rescan, (b) a cold hashed plan build, (c) a warm CopierCache
// lookup, on a 64-box 128^3 decomposition; plus a FillBoundary + regrid
// loop showing that only regrids (fresh BoxArray ids) rebuild plans.

#include "bench_util.hpp"
#include "core/timer.hpp"
#include "mesh/copier_cache.hpp"
#include "mesh/multifab.hpp"

#include <cstdio>

using namespace exa;

namespace {

// The pre-cache FillBoundary pattern scan, kept verbatim as the baseline:
// every (dst fab, shift, src fab) triple tested by brute force.
std::int64_t legacyScan(const BoxArray& ba, int ng, const Periodicity& period) {
    std::int64_t items = 0;
    const auto shifts = period.shifts();
    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box dst_region = grow(ba[i], ng);
        for (const IntVect& s : shifts) {
            const Box query = shift(dst_region, -s);
            for (std::size_t j = 0; j < ba.size(); ++j) {
                if (j == i && s == IntVect::zero()) continue;
                const Box isect = ba[j] & query;
                if (isect.ok()) ++items;
            }
        }
    }
    return items;
}

} // namespace

int main() {
    benchutil::printHeader("Ablation: cached communication metadata (CopierCache)");

    const int nx = 128, max_size = 32, ng = 4;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(max_size);
    DistributionMapping dm(ba, 6, DistributionMapping::Strategy::Sfc);
    const Periodicity per(IntVect{nx, nx, nx});
    std::printf("\n%zu boxes of %d^3, ngrow %d, fully periodic\n", ba.size(),
                max_size, ng);

    auto& cache = CopierCache::instance();

    // (a) legacy rescan, per call.
    const int iters = 200;
    std::int64_t sink = 0;
    WallTimer t_legacy;
    for (int it = 0; it < iters; ++it) sink += legacyScan(ba, ng, per);
    const double legacy_us = t_legacy.seconds() / iters * 1.0e6;

    // (b) cold hashed build: fresh BoxArray each time so the spatial index
    // is rebuilt too (the full regrid-path cost).
    WallTimer t_cold;
    for (int it = 0; it < iters; ++it) {
        BoxArray fresh(ba.boxes());
        auto plan = CopierCache::buildFillBoundary(fresh, dm.ranks(), ng, per);
        sink += static_cast<std::int64_t>(plan->items.size());
    }
    const double cold_us = t_cold.seconds() / iters * 1.0e6;

    // (c) warm cache lookup.
    (void)cache.fillBoundary(ba, dm, ng, per); // prime
    WallTimer t_warm;
    for (int it = 0; it < iters; ++it) {
        auto plan = cache.fillBoundary(ba, dm, ng, per);
        sink += static_cast<std::int64_t>(plan->items.size());
    }
    const double warm_us = t_warm.seconds() / iters * 1.0e6;

    std::printf("\nper-call pattern overhead (avg of %d):\n", iters);
    std::printf("  %-38s %10.1f us\n", "legacy O(n^2) rescan", legacy_us);
    std::printf("  %-38s %10.1f us\n", "cold hashed plan build (+index)", cold_us);
    std::printf("  %-38s %10.2f us\n", "warm CopierCache lookup", warm_us);
    std::printf("  warm vs legacy: %.0fx less pattern overhead\n",
                legacy_us / warm_us);
    std::printf("  warm vs cold rebuild: %.0fx\n", cold_us / warm_us);

    // FillBoundary + regrid loop: a mini production cadence. Every step
    // exchanges ghosts; every `regrid_every` steps the layout changes
    // (alternating box size), which mints fresh ids and forces one rebuild.
    const int nsteps = 60, regrid_every = 20;
    auto runLoop = [&](bool enabled) {
        cache.setEnabled(enabled);
        cache.clear();
        cache.resetStats();
        BoxArray lba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
        lba.maxSize(max_size);
        DistributionMapping ldm(lba, 6, DistributionMapping::Strategy::Sfc);
        MultiFab mf(lba, ldm, 1, ng);
        mf.setVal(1.0);
        WallTimer t;
        for (int s = 0; s < nsteps; ++s) {
            if (s > 0 && s % regrid_every == 0) {
                lba = BoxArray(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
                lba.maxSize(s % (2 * regrid_every) == 0 ? max_size : max_size / 2);
                ldm = DistributionMapping(lba, 6, DistributionMapping::Strategy::Sfc);
                mf.define(lba, ldm, 1, ng);
                mf.setVal(1.0);
            }
            mf.FillBoundary(0, mf.nComp(), per);
        }
        const double secs = t.seconds();
        cache.setEnabled(true);
        return secs;
    };

    const double loop_off = runLoop(false);
    const double loop_on = runLoop(true);
    const auto s = cache.stats();
    std::printf("\nFillBoundary + regrid loop (%d steps, regrid every %d):\n",
                nsteps, regrid_every);
    std::printf("  %-38s %10.1f ms\n", "cache disabled", loop_off * 1.0e3);
    std::printf("  %-38s %10.1f ms\n", "cache enabled", loop_on * 1.0e3);
    std::printf("  plan builds with cache on: %llu (one per layout), hits: %llu\n",
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.hits));
    std::printf("  cumulative plan-build time: %.2f ms\n", s.build_seconds * 1.0e3);

    std::printf("\n(sink %lld)\n", static_cast<long long>(sink));
    return 0;
}
