// Experiment E1 (Figure 2): Castro Sedov-Taylor weak scaling on a
// Summit-like machine.
//
// Phase 1 runs the *real* Castro-mini Sedov solver at laptop scale under
// the simulated-GPU backend and extracts the per-box kernel mix from the
// instrumentation (nothing about the compute cost is assumed).
//
// Phase 2 replicates the paper's runs with the scaling model: the
// canonical curve (256^3 zones per node, 64^3 boxes, 6 ranks/node, nodes
// 1/8/64/512), then the best/worst tuning sweep over max box widths
// {32,48,64,96,128} at two domain sizes (the larger one and one 0.75x
// smaller per dimension).
//
// Paper targets: single node ~130 zones/usec; 512-node efficiency ~63%
// (~42000 zones/usec); order-unity spread between best and worst tuned
// cases, growing with scale.

#include "bench_util.hpp"
#include "castro/sedov.hpp"

#include <cstdio>
#include <map>
#include <vector>

using namespace exa;
using namespace exa::castro;

int main() {
    benchutil::printHeader(
        "Figure 2: Castro Sedov weak scaling (measured kernel mix + Summit model)");

    // --- Phase 1: instrumented real run --------------------------------
    auto net = makeIgnitionSimple();
    SedovParams sp;
    sp.ncell = 32;
    sp.max_grid_size = 16; // 8 boxes of 16^3
    auto castro_run = sp.build(net);

    ScopedBackend sb(Backend::SimGpu);
    ExecConfig::setNumStreams(4);
    DeviceModel dev;
    dev.attach();
    const int nsteps = 5;
    for (int s = 0; s < nsteps; ++s) castro_run->step(castro_run->estimateDt());
    dev.detach();

    const int nboxes = static_cast<int>(castro_run->state().size());
    const std::int64_t zones_per_box = 16LL * 16 * 16;
    auto mix = benchutil::kernelMix(dev, nboxes, nsteps, zones_per_box);

    std::printf("\nMeasured kernel mix (per box per step, from a real %d^3 run):\n",
                sp.ncell);
    for (const auto& k : mix) {
        std::printf("  %-22s launches/box/step %6.2f  zones x%4.2f  "
                    "%5.0f B/zone  %4d regs\n",
                    k.info.name, k.launches_per_box_per_step, k.zones_fraction,
                    k.info.bytes_per_zone, k.info.regs_per_thread);
    }

    StepModel step;
    step.kernels = mix;
    step.fillboundary_phases_per_step = 2; // two RK2 stages
    step.halo_ncomp = StateLayout(net.nspec()).ncomp();
    step.halo_ngrow = 4;
    step.allreduces_per_step = 1; // CFL dt

    // --- Phase 2: Summit-scale weak scaling -----------------------------
    WeakScalingModel model(MachineParams::summit());

    std::printf("\nCanonical weak scaling (256^3 zones/node, 64^3 boxes):\n");
    std::printf("  %5s %14s %14s %12s\n", "nodes", "zones/usec", "normalized",
                "imbalance");
    const std::vector<int> node_counts = {1, 8, 64, 512};
    double single_node = 0.0;
    std::map<int, ScalingPoint> canonical;
    for (int n : node_counts) {
        auto pt = model.run(n, 256, 64, step);
        if (n == 1) single_node = pt.zones_per_usec;
        pt.normalized = pt.zones_per_usec / (single_node * n);
        canonical[n] = pt;
        std::printf("  %5d %14.1f %14.3f %12.3f\n", n, pt.zones_per_usec,
                    pt.normalized, pt.imbalance);
    }

    std::printf("\nBest/worst tuning sweep (max box width x domain size):\n");
    std::printf("  %5s %16s %16s\n", "nodes", "best (norm)", "worst (norm)");
    const std::vector<int> widths = {32, 48, 64, 96, 128};
    for (int n : node_counts) {
        double best = 0.0, worst = 1.0e300;
        for (int per_node : {256, 192}) {
            for (int w : widths) {
                if (per_node % w != 0) continue; // box must tile the domain
                auto pt = model.run(n, per_node, w, step);
                best = std::max(best, pt.zones_per_usec);
                worst = std::min(worst, pt.zones_per_usec);
            }
        }
        std::printf("  %5d %16.3f %16.3f\n", n, best / (single_node * n),
                    worst / (single_node * n));
    }

    benchutil::printHeader("Paper comparison (measured/modeled vs paper)");
    std::printf("  %-42s %12s %12s\n", "quantity", "ours", "paper");
    benchutil::printRow("single-node throughput", single_node, 130.0, "zones/usec");
    benchutil::printRow("512-node throughput", canonical[512].zones_per_usec, 42000.0,
                        "zones/usec");
    benchutil::printRow("512-node weak-scaling efficiency",
                        canonical[512].normalized, 0.63, "");
    benchutil::printRow("fiducial load imbalance (64 boxes / 6 ranks)",
                        canonical[1].imbalance, 11.0 * 6.0 / 64.0, "");
    return 0;
}
