// Experiment E10: what does the safety net cost when nothing goes wrong?
//
// The StepGuard snapshots the state, re-validates after every step, and
// only pays rollback + re-advance when a step is actually invalid. The
// clean-path overhead (snapshot copy + validation scan) is the price of
// always-on resilience; target < 5% of step time at production-like box
// sizes, where the O(N) copy/scan is small next to the O(N) x stages x
// stencil hydro work. Also reported: the measured cost of one forced
// rollback, and of a guarded step that degrades after exhausting
// retries.

#include "bench_util.hpp"
#include "castro/sedov.hpp"
#include "castro/validate.hpp"
#include "core/fault.hpp"
#include "mesh/step_guard.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

using namespace exa;
using namespace exa::castro;

namespace {

double secondsPerStep(Castro& c, int nsteps, Real dt) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < nsteps; ++s) c.step(dt);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count() / nsteps;
}

template <typename F>
double bestSeconds(int reps, F&& f) {
    double best = 1.0e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        f();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

std::unique_ptr<Castro> blast(const ReactionNetwork& net, int ncell, bool guarded) {
    SedovParams p;
    p.ncell = ncell;
    p.max_grid_size = 16;
    p.guard.enabled = guarded;
    p.guard.verbose = false;
    return p.build(net);
}

} // namespace

int main() {
    benchutil::printHeader(
        "E10: step-retry (StepGuard) overhead on the Sedov blast");
    fault::disarmAll();
    auto net = makeIgnitionSimple();

    // The guard's clean-path additions are exactly one snapshot capture
    // and one validation sweep per step; measure those components directly
    // against the step they wrap (ratios are stable under ambient load,
    // unlike end-to-end A/B wall clocks).
    std::printf("\nClean-path overhead (guard armed, no faults):\n");
    std::printf("  %8s %12s %13s %13s %10s\n", "ncell", "s/step",
                "snapshot ms", "validate ms", "overhead");
    for (int ncell : {16, 32, 48}) {
        auto c = blast(net, ncell, true);
        const Real dt = 0.5 * c->estimateDt();
        c->step(dt); // warm the arena pool
        const double t_step = bestSeconds(3, [&] {
            for (int s = 0; s < 4; ++s) c->step(dt);
        }) / 4.0;
        const double t_snap = bestSeconds(8, [&] {
            StateSnapshot snap;
            snap.capture(c->state());
            snap.restoreTo(0, c->state());
        }) / 2.0; // capture and restore each move the state once
        StepGuardOptions vopt;
        const double t_val = bestSeconds(8, [&] {
            const auto rep = castro::validateState(c->state(), net.nspec(), vopt);
            if (!rep.ok()) std::printf("  (unexpected invalid state)\n");
        });
        std::printf("  %8d %12.5f %13.3f %13.3f %9.2f%%\n", ncell, t_step,
                    1e3 * t_snap, 1e3 * t_val,
                    100.0 * (t_snap + t_val) / t_step);
    }

    std::printf("\nFault-path cost (32^3, one step):\n");
    {
        auto c = blast(net, 32, true);
        const Real dt = 0.5 * c->estimateDt();
        c->step(dt);
        const double t_clean = secondsPerStep(*c, 4, dt);

        double t_retry;
        {
            fault::ScopedFault f(fault::Site::HydroNanFlux); // one rollback
            t_retry = secondsPerStep(*c, 1, dt);
        }
        const auto retried = c->retryStats().retries;

        StepGuardOptions exhausted_opt;
        SedovParams p;
        p.ncell = 32;
        p.max_grid_size = 16;
        p.guard.enabled = true;
        p.guard.verbose = false;
        p.guard.max_retries = 3;
        p.guard.policy = RetryPolicy::ClampAndWarn;
        auto d = p.build(net);
        const Real ddt = 0.5 * d->estimateDt();
        d->step(ddt);
        double t_degrade;
        {
            fault::Spec forever;
            forever.count = 0;
            fault::ScopedFault f(fault::Site::HydroNanFlux, forever);
            t_degrade = secondsPerStep(*d, 1, ddt);
        }

        std::printf("  clean guarded step:            %10.5f s\n", t_clean);
        std::printf("  one rollback + re-advance:     %10.5f s (%.2fx, retries=%lld)\n",
                    t_retry, t_retry / t_clean,
                    static_cast<long long>(retried));
        std::printf("  exhausted retries (degrade):   %10.5f s (%.2fx, degraded=%lld)\n",
                    t_degrade, t_degrade / t_clean,
                    static_cast<long long>(d->retryStats().degraded));
    }

    std::printf("\nSnapshot footprint: one state clone per guarded step "
                "(pool-arena handle reuse after the first).\n");
    return 0;
}
