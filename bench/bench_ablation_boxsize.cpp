// Experiment E7a (Section IV-A): box-size effects on GPU throughput.
//
// "GPUs achieve optimal performance by hiding the latency of individual
// operations with massive parallelism, so small workloads are
// inefficient: this discourages very small boxes ... GPUs have much
// smaller memory capacities than CPUs: this discourages very large
// boxes." Plus the Unified-Memory oversubscription cliff, and the CUDA
// streams mitigation.
//
// Output: modeled single-V100 Sedov throughput over box widths 8..128 at
// a fixed per-GPU domain, with 1 vs 4 streams, and the oversubscription
// cliff as the per-GPU domain outgrows 16 GB.

#include "bench_util.hpp"
#include "castro/sedov.hpp"
#include "castro/state.hpp"

#include <cstdio>

using namespace exa;
using namespace exa::castro;

int main() {
    benchutil::printHeader("Section IV-A ablation: box size, streams, memory");

    // Measured Sedov kernel mix (as in the Fig. 2 bench).
    auto net = makeIgnitionSimple();
    SedovParams sp;
    sp.ncell = 32;
    sp.max_grid_size = 16;
    auto c = sp.build(net);
    ScopedBackend sb(Backend::SimGpu);
    DeviceModel dev;
    dev.attach();
    for (int s = 0; s < 4; ++s) c->step(c->estimateDt());
    dev.detach();
    auto mix = benchutil::kernelMix(dev, static_cast<int>(c->state().size()), 4,
                                    16LL * 16 * 16);
    StepModel step;
    step.kernels = mix;

    std::printf("\nSingle-V100 throughput vs box width (128^3 zones per GPU):\n");
    std::printf("  %8s %16s %16s\n", "box", "1 stream", "4 streams");
    MachineParams one = MachineParams::summit();
    one.streams_per_rank = 1;
    MachineParams four = MachineParams::summit();
    four.streams_per_rank = 4;
    WeakScalingModel m1(one), m4(four);
    double best = 0.0, best4 = 0.0;
    for (int w : {8, 16, 32, 64, 128}) {
        const double t1 = m1.singleGpuZonesPerUsec(128, w, step);
        const double t4 = m4.singleGpuZonesPerUsec(128, w, step);
        best = std::max(best, t1);
        best4 = std::max(best4, t4);
        std::printf("  %8d %16.2f %16.2f\n", w, t1, t4);
    }
    std::printf("\n  small-box penalty (best/8^3, 1 stream): %.1fx\n",
                best / m1.singleGpuZonesPerUsec(128, 8, step));
    std::printf("  streams mitigation at 16^3 boxes: %.2fx\n",
                m4.singleGpuZonesPerUsec(128, 16, step) /
                    m1.singleGpuZonesPerUsec(128, 16, step));

    // Oversubscription: state bytes per GPU vs the 16 GB capacity.
    std::printf("\nUnified-memory oversubscription (domain per GPU grows):\n");
    std::printf("  %10s %14s %16s %14s\n", "zones/gpu", "state [GB]", "zones/usec",
                "oversub?");
    const int ncomp_state = StateLayout(net.nspec()).ncomp();
    for (int n : {128, 256, 384, 448, 512}) {
        const double zones = static_cast<double>(n) * n * n;
        // State + ghosts + scratch: ~4x the bare state, as in Castro runs.
        const double bytes = zones * ncomp_state * 8.0 * 4.0;
        DeviceModel d(MachineParams::summit().gpu);
        d.setResidentBytes(bytes);
        double t = 0.0;
        for (const auto& k : step.kernels) {
            t += k.launches_per_box_per_step *
                 d.bodyTime(k.info, static_cast<std::int64_t>(zones * k.zones_fraction));
        }
        std::printf("  %7d^3 %14.2f %16.2f %14s\n", n, bytes / 1.0e9,
                    zones / (t * 1.0e6), d.oversubscribed() ? "yes" : "no");
    }
    std::printf("\n  Paper: \"the range of box sizes that can meaningfully fit\n"
                "  inside a GPU is limited\"; ~100^3 saturates compute and a\n"
                "  2x finer box already exceeds memory.\n");
    return 0;
}
