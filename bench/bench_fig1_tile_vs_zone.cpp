// Experiment E5 (Figure 1 / Section III): tile-based decomposition with
// scratch slope arrays vs per-zone redundant recompute.
//
// The CPU-era formulation computes all slopes for a tile into a scratch
// array, then reads them back to build face states (two passes, extra
// memory traffic, but each slope computed once). The GPU formulation
// assigns one thread per zone and recomputes the two needed slopes
// redundantly (more flops, no scratch arrays, massive parallelism).
//
// Measured here: real host wall time of both formulations (the paper
// found the refactoring "ultimately led to a performance improvement on
// CPUs as well, due largely to decreasing the memory footprint"), and the
// modeled V100 time, where the per-zone form wins decisively because the
// tile form serializes small kernels.

#include <benchmark/benchmark.h>

#include "castro/hydro.hpp"
#include "core/parallel_for.hpp"
#include "mesh/fab.hpp"
#include "perf/device_model.hpp"

#include <cmath>

using namespace exa;
using namespace exa::castro;

namespace {

constexpr int N = 48;

FArrayBox makeField() {
    Box b({0, 0, 0}, {N - 1, N - 1, N - 1});
    FArrayBox q(grow(b, 2), 1);
    auto a = q.array();
    ParallelFor(grow(b, 2), [=](int i, int j, int k) {
        a(i, j, k) = std::sin(0.3 * i) * std::cos(0.2 * j) + 0.1 * k;
    });
    return q;
}

// Tile formulation: slopes staged through a per-tile scratch array.
void tiledReconstruct(const FArrayBox& qfab, FArrayBox& out, const IntVect& tile) {
    const Box vb({0, 0, 0}, {N - 1, N - 1, N - 1});
    auto q = qfab.const_array();
    auto o = out.array();
    for (const Box& t : chopDomain(vb, tile)) {
        // Pass 1: slopes for the tile (+1 ghost in x) into scratch.
        Box tg = grow(t, 0);
        tg.growLo(0, 1).growHi(0, 1);
        FArrayBox scratch(tg, 1);
        auto s = scratch.array();
        ParallelFor(KernelInfo{"slopes_pass", 40.0, 48.0, 48, 1.0}, tg,
                    [=](int i, int j, int k) { s(i, j, k) = mcSlope(q, i, j, k, 0, 0); });
        // Pass 2: face-state combination reading two staged slopes.
        auto sc = scratch.const_array();
        ParallelFor(KernelInfo{"recon_pass", 30.0, 56.0, 48, 1.0}, t,
                    [=](int i, int j, int k) {
                        const Real ql = q(i - 1, j, k) + 0.5 * sc(i - 1, j, k);
                        const Real qr = q(i, j, k) - 0.5 * sc(i, j, k);
                        o(i, j, k) = 0.5 * (ql + qr);
                    });
    }
}

// Per-zone formulation: each zone recomputes both slopes it needs.
void perZoneReconstruct(const FArrayBox& qfab, FArrayBox& out) {
    const Box vb({0, 0, 0}, {N - 1, N - 1, N - 1});
    auto q = qfab.const_array();
    auto o = out.array();
    ParallelFor(KernelInfo{"recon_fused", 90.0, 40.0, 64, 1.0}, vb,
                [=](int i, int j, int k) {
                    const Real ql = q(i - 1, j, k) + 0.5 * mcSlope(q, i - 1, j, k, 0, 0);
                    const Real qr = q(i, j, k) - 0.5 * mcSlope(q, i, j, k, 0, 0);
                    o(i, j, k) = 0.5 * (ql + qr);
                });
}

void BM_TiledScratch(benchmark::State& state) {
    FArrayBox q = makeField();
    FArrayBox out(Box({0, 0, 0}, {N - 1, N - 1, N - 1}), 1);
    const IntVect tile{1024000, static_cast<int>(state.range(0)),
                       static_cast<int>(state.range(0))};
    for (auto _ : state) {
        tiledReconstruct(q, out, tile);
        benchmark::DoNotOptimize(out.dataPtr());
    }
    state.SetItemsProcessed(state.iterations() * N * N * N);
}
BENCHMARK(BM_TiledScratch)->Arg(4)->Arg(8)->Arg(16);

void BM_PerZoneRecompute(benchmark::State& state) {
    FArrayBox q = makeField();
    FArrayBox out(Box({0, 0, 0}, {N - 1, N - 1, N - 1}), 1);
    for (auto _ : state) {
        perZoneReconstruct(q, out);
        benchmark::DoNotOptimize(out.dataPtr());
    }
    state.SetItemsProcessed(state.iterations() * N * N * N);
}
BENCHMARK(BM_PerZoneRecompute);

// Modeled V100 comparison: the tile form launches one small kernel pair
// per tile; the per-zone form launches once.
void BM_ModeledGpuComparison(benchmark::State& state) {
    for (auto _ : state) {
        ScopedBackend sb(Backend::SimGpu);
        FArrayBox q = makeField();
        FArrayBox out(Box({0, 0, 0}, {N - 1, N - 1, N - 1}), 1);

        DeviceModel tiled_dev;
        tiled_dev.attach();
        tiledReconstruct(q, out, IntVect{1024000, 8, 8});
        tiled_dev.detach();

        DeviceModel zone_dev;
        zone_dev.attach();
        perZoneReconstruct(q, out);
        zone_dev.detach();

        state.counters["tiled_gpu_us"] = tiled_dev.elapsedSeconds() * 1e6;
        state.counters["perzone_gpu_us"] = zone_dev.elapsedSeconds() * 1e6;
        state.counters["gpu_speedup"] =
            tiled_dev.elapsedSeconds() / zone_dev.elapsedSeconds();
    }
}
BENCHMARK(BM_ModeledGpuComparison)->Iterations(1);

} // namespace

BENCHMARK_MAIN();
