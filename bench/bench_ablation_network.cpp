// Experiment E7b (Sections IV-B and VI): reaction-network size effects.
//
//  * integration cost grows ~N^2 with the isotope count (linear-solve
//    dominated) — measured with the real BDF integrator;
//  * the (N+1)^2 Jacobian blows the 255-register Volta budget for 13
//    isotopes (modeled occupancy + spilling);
//  * the fixed-pattern sparse solve (the paper's future work, implemented
//    here) beats dense LU on the aprox13 pattern — measured wall time and
//    operation counts;
//  * explicit RK is hopeless on a stiff burn — measured step counts.

#include <benchmark/benchmark.h>

#include "microphysics/burner.hpp"
#include "perf/device_model.hpp"

using namespace exa;

namespace {

// The benchmark's network axis is the registry: every network is selected
// by name (the runtime-pluggable path the drivers use), keyed here by its
// species count so google-benchmark's integer Args can address it.
const ReactionNetwork& netOf(int nspec) {
    static auto n2 = makeNetworkByName("ignition_simple");
    static auto n3 = makeNetworkByName("triple_alpha");
    static auto n7 = makeNetworkByName("iso7");
    static auto n13 = makeNetworkByName("aprox13");
    static auto n19 = makeNetworkByName("aprox19");
    switch (nspec) {
        case 2: return n2;
        case 3: return n3;
        case 7: return n7;
        case 19: return n19;
        default: return n13;
    }
}

std::vector<Real> fuelFor(const ReactionNetwork& net) {
    std::vector<Real> X(net.nspec(), 0.0);
    const int ihe4 = net.speciesIndex("he4");
    const int ic12 = net.speciesIndex("c12");
    const int io16 = net.speciesIndex("o16");
    if (net.nspec() == 2) {
        X[0] = 1.0; // pure carbon
    } else if (net.nspec() == 3) {
        X[0] = 1.0; // pure helium
    } else {
        X[ihe4 >= 0 ? ihe4 : 0] = 0.1;
        X[ic12 >= 0 ? ic12 : 0] = 0.45;
        X[io16 >= 0 ? io16 : 0] = 0.45;
    }
    return X;
}

void BM_BurnZone(benchmark::State& state) {
    const auto& net = netOf(static_cast<int>(state.range(0)));
    Eos eos{HelmLiteEos{}};
    auto X = fuelFor(net);
    // Vigorous but pre-runaway conditions for each network, over a
    // reaction-scale dt, so cost reflects the per-step linear algebra
    // (growing ~N^2-N^3 with the isotope count) rather than transient
    // resolution.
    const Real rho = net.nspec() == 3 ? 1.0e6 : (net.nspec() == 2 ? 2.0e9 : 1.0e7);
    const Real T = net.nspec() == 3 ? 3.0e8 : (net.nspec() == 2 ? 9.0e8 : 3.0e9);
    const Real dt = net.nspec() >= 7 ? 1.0e-9 : 1.0e-6;
    OdeOptions opt;
    opt.use_sparse = state.range(1) != 0;
    std::int64_t steps = 0, lus = 0;
    for (auto _ : state) {
        auto r = burnZone(net, eos, rho, T, X.data(), dt, opt);
        benchmark::DoNotOptimize(r.T);
        steps += r.stats.steps;
        lus += r.stats.lu_factors;
    }
    state.counters["bdf_steps"] = static_cast<double>(steps) / state.iterations();
    state.counters["lu_factors"] = static_cast<double>(lus) / state.iterations();
    // Modeled GPU occupancy for this network's burn kernel.
    GpuParams gpu;
    auto ki = burnKernelInfo(net.nspec(), 30.0, 1.0);
    state.counters["regs"] = ki.regs_per_thread;
    state.counters["occupancy"] = gpu.occupancy(ki.regs_per_thread);
    state.counters["spills"] =
        std::max(0, ki.regs_per_thread - gpu.max_regs_per_thread);
}
// args: {nspec, use_sparse} — nspec keys the registry networks: 2 =
// ignition_simple, 3 = triple_alpha, 7 = iso7, 13 = aprox13, 19 = aprox19.
BENCHMARK(BM_BurnZone)
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({7, 0})
    ->Args({13, 0})
    ->Args({13, 1})
    ->Args({19, 0})
    ->Args({19, 1});

void BM_SparseVsDenseLU(benchmark::State& state) {
    const bool sparse = state.range(0) != 0;
    auto net = makeAprox13();
    const int n = net.nspec() + 1;
    std::vector<Real> X = fuelFor(net), Y(net.nspec());
    net.xToY(X.data(), Y.data());
    DenseMatrix J(n);
    net.jacobian(2.0e7, 3.0e9, Y.data(), 1.0e7, J);
    DenseMatrix M = J;
    M.scaleAndAddIdentity(1.0, -1.0e-8);

    SparseLU slu;
    slu.analyze(n, net.sparsity());
    DenseLU dlu;
    std::vector<Real> b(n, 1.0);
    for (auto _ : state) {
        if (sparse) {
            slu.factor(M);
            auto x = b;
            slu.solve(x);
            benchmark::DoNotOptimize(x.data());
        } else {
            dlu.factor(M);
            auto x = b;
            dlu.solve(x);
            benchmark::DoNotOptimize(x.data());
        }
    }
    if (sparse) {
        state.counters["empty_frac"] = slu.emptyFraction();
        state.counters["factor_ops"] = static_cast<double>(slu.factorOps());
    } else {
        state.counters["factor_ops"] = n * n * n / 3.0;
    }
}
BENCHMARK(BM_SparseVsDenseLU)->Arg(0)->Arg(1);

// A hydro-scale burn step (dt = 1 ms) through a thermonuclear runaway:
// the implicit integrator completes it; the explicit one is forced to the
// fastest timescale and underflows its step size ("otherwise the whole
// system would be forced to march along at the smallest timescale").
void BM_ImplicitVsExplicit(benchmark::State& state) {
    const bool implicit = state.range(0) != 0;
    auto net = makeIgnitionSimple();
    Eos eos{HelmLiteEos{}};
    std::vector<Real> X = {1.0, 0.0};
    const Real rho = 2.0e9, T = 1.5e9, dt = 1.0e-3;
    std::int64_t steps = 0;
    std::int64_t successes = 0;
    for (auto _ : state) {
        std::vector<Real> y(3);
        net.xToY(X.data(), y.data());
        y[2] = T;
        BurnOde ode(net, eos, rho);
        OdeOptions opt;
        opt.rtol = 1.0e-6;
        opt.max_steps = 500'000;
        OdeStats st;
        if (implicit) {
            BdfIntegrator bdf;
            st = bdf.integrate(ode, y, 0.0, dt, opt);
        } else {
            RkIntegrator rk;
            st = rk.integrate(ode, y, 0.0, dt, opt);
        }
        benchmark::DoNotOptimize(y.data());
        steps += st.steps;
        successes += st.success ? 1 : 0;
    }
    state.counters["ode_steps"] = static_cast<double>(steps) / state.iterations();
    state.counters["completed"] =
        static_cast<double>(successes) / state.iterations();
}
BENCHMARK(BM_ImplicitVsExplicit)->Arg(1)->Arg(0);

} // namespace

BENCHMARK_MAIN();
