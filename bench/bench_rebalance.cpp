// E12 — cost-driven dynamic load balancing on a WD-collision-like
// skewed-burn decomposition.
//
// The paper's Section V science run concentrates VODE burn work in the
// thin reacting interface between the two stars: a handful of boxes cost
// 10-100x the rest, and the zone-count mapping that was fine for uniform
// hydro leaves most ranks idle while one rank burns. This bench builds
// exactly that shape — a 64^3 domain chopped into 16^3 boxes with the
// low-corner octant carrying 20x burn work — feeds the measured per-box
// costs through the CostMonitor -> Rebalancer -> MultiFab::Redistribute
// pipeline on 8 simulated ranks, and reports:
//
//   * modeled per-step time (max-over-ranks cost) under the zone-count
//     SFC cold start vs. the cost-driven knapsack mapping the Rebalancer
//     migrated to (target: >= 25% reduction);
//   * the migration's one-time cost — real payload bytes from the
//     CommLedger priced by the Summit-like NetworkModel — amortized over
//     a 100-step window (target: < 5% of the un-rebalanced step time);
//   * the uniform-cost control: the trigger must never fire and the
//     mapping must stay bit-identical to the cold start.
//
// A real-driver coda runs the MAESTRO reacting bubble (burn localized in
// the rising bubble) with the subsystem live to show the trigger firing
// on measured burn work, not injected weights.

#include "bench_util.hpp"
#include "comm/ledger.hpp"
#include "comm/network.hpp"
#include "maestro/maestro.hpp"
#include "mesh/multifab.hpp"
#include "mesh/rebalance/rebalancer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

using namespace exa;

namespace {

// Per-zone burn-step cost used to convert work units to modeled seconds:
// a stiff VODE RHS+Jacobian evaluation per zone per step, Summit-era GPU.
constexpr double kSecondsPerUnit = 2.0e-6;

double maxRankSeconds(const std::vector<double>& cost,
                      const DistributionMapping& dm) {
    const auto per = dm.costPerRank(cost);
    return *std::max_element(per.begin(), per.end()) * kSecondsPerUnit;
}

} // namespace

int main() {
    benchutil::printHeader(
        "E12: cost-driven load balancing on a skewed-burn decomposition");

    // --- the skewed-burn chop -------------------------------------------
    const int nx = 64, box = 16, nranks = 8, ncomp = 10;
    BoxArray ba(Box({0, 0, 0}, {nx - 1, nx - 1, nx - 1}));
    ba.maxSize(box);
    const DistributionMapping cold(ba, nranks); // zone-count SFC cold start

    // Burn interface toward the low corner: octant boxes cost 20x.
    const double skew = 20.0;
    std::vector<double> work(ba.size());
    std::size_t hot = 0;
    for (std::size_t i = 0; i < ba.size(); ++i) {
        const Box& b = ba[i];
        const bool corner =
            b.bigEnd(0) < nx / 2 && b.bigEnd(1) < nx / 2 && b.bigEnd(2) < nx / 2;
        work[i] = static_cast<double>(b.numPts()) * (corner ? skew : 1.0);
        if (corner) ++hot;
    }
    std::printf("\n%zu boxes of %d^3 on %d ranks; %zu corner boxes at %.0fx "
                "burn cost\n",
                ba.size(), box, nranks, hot, skew);

    // --- live migration through the real pipeline -----------------------
    MultiFab state(ba, cold, ncomp, 4);
    state.setVal(1.0);

    CommLedger ledger;
    ledger.attach();

    RebalanceOptions opt;
    opt.enabled = true;
    opt.warmup_steps = 2;
    opt.min_interval = 4;
    opt.imbalance_trigger = 1.5;
    Rebalancer reb(opt);
    reb.noteRegrid(0, ba.size());

    const int nsteps = 40;
    RebalanceDecision fired;
    int fired_step = -1;
    int performed = 0;
    for (int s = 0; s < nsteps; ++s) {
        for (std::size_t f = 0; f < ba.size(); ++f)
            reb.monitor().addWork(0, static_cast<int>(f), work[f]);
        const auto d = reb.step(0, s, {&state});
        if (d.performed) {
            ++performed;
            if (fired_step < 0) {
                fired = d;
                fired_step = s;
            }
        }
    }
    const DistributionMapping& balanced = state.distributionMap();

    const double t_before = maxRankSeconds(work, cold);
    const double t_after = maxRankSeconds(work, balanced);
    const double cut = 100.0 * (1.0 - t_after / t_before);

    std::printf("\nRebalancer: fired %d time(s), first at step %d\n", performed,
                fired_step);
    std::printf("  %s\n", fired.reason.c_str());
    std::printf("\nmodeled per-step busiest-rank time (%.1f us/zone-unit):\n",
                kSecondsPerUnit * 1.0e6);
    std::printf("  zone-count SFC cold start : %8.2f ms  (imbalance %.2f)\n",
                t_before * 1.0e3, DistributionMapping::imbalance(work, cold));
    std::printf("  cost-driven knapsack      : %8.2f ms  (imbalance %.2f)\n",
                t_after * 1.0e3, DistributionMapping::imbalance(work, balanced));
    std::printf("  per-step reduction        : %8.1f %%  (target >= 25%%)\n", cut);

    // --- migration overhead, priced by the network model ----------------
    RankLayout layout;
    layout.nodes = 2;
    layout.ranks_per_node = 4; // 8 ranks across 2 nodes
    NetworkModel net;
    const double t_migrate = ledger.phaseTime(layout, net);
    const int window = 100; // steps between WD-collision regrid/shape changes
    const double overhead = 100.0 * t_migrate / (window * t_before);
    std::printf("\nmigration (one-time, %lld boxes / %.2f MB off-rank):\n",
                static_cast<long long>(ledger.migrationBoxesMoved()),
                static_cast<double>(ledger.migrationBytes()) / 1.0e6);
    std::printf("  modeled phase time        : %8.3f ms  (2 nodes x 4 ranks)\n",
                t_migrate * 1.0e3);
    std::printf("  amortized over %d steps  : %8.2f %%  of un-rebalanced step "
                "time (target < 5%%)\n",
                window, overhead);
    ledger.detach();

    const bool ok_cut = cut >= 25.0;
    const bool ok_overhead = overhead < 5.0;
    const bool ok_once = performed == 1; // hysteresis + min_interval hold after

    // --- uniform-cost control -------------------------------------------
    MultiFab ustate(ba, cold, ncomp, 4);
    ustate.setVal(1.0);
    Rebalancer ureb(opt);
    ureb.noteRegrid(0, ba.size());
    for (int s = 0; s < nsteps; ++s) {
        for (std::size_t f = 0; f < ba.size(); ++f)
            ureb.monitor().addWork(0, static_cast<int>(f),
                                   static_cast<double>(ba[f].numPts()));
        ureb.step(0, s, {&ustate});
    }
    const bool ok_uniform = ureb.stats().rebalances == 0 &&
                            ustate.distributionMap().ranks() == cold.ranks();
    std::printf("\nuniform-cost control: %lld rebalances, mapping %s the cold "
                "start\n",
                static_cast<long long>(ureb.stats().rebalances),
                ok_uniform ? "identical to" : "DIVERGED from");

    // --- real-driver coda: measured burn skew in MAESTRO ----------------
    benchutil::printHeader("Real driver: reacting bubble with live rebalancing");
    {
        auto bubble_net = makeIgnitionSimple();
        maestro::BubbleParams p;
        p.ncell = 32;
        p.max_grid_size = 8; // 64 boxes; the bubble spans a few of them
        p.nranks = 8;
        p.rebalance.enabled = true;
        p.rebalance.warmup_steps = 2;
        p.rebalance.min_interval = 4;
        p.rebalance.imbalance_trigger = 1.2;
        auto m = p.build(bubble_net);
        const Real dt = m->estimateDt();
        for (int s = 0; s < 8; ++s) m->step(dt);
        const auto& st = m->rebalancer().stats();
        const auto cost = m->rebalancer().monitor().costs(0);
        std::printf("\n8 steps of the 32^3 bubble on 8 ranks (burn localized "
                    "in the bubble):\n");
        std::printf("  measured work imbalance now: %.2f\n",
                    DistributionMapping::imbalance(
                        cost, m->state().distributionMap()));
        std::printf("  rebalances: %lld, boxes moved: %lld, payload: %.2f MB\n",
                    static_cast<long long>(st.rebalances),
                    static_cast<long long>(st.boxes_moved),
                    static_cast<double>(st.bytes_moved) / 1.0e6);
    }

    std::printf("\n%s\n", (ok_cut && ok_overhead && ok_once && ok_uniform)
                              ? "E12 PASS: >=25% step cut, <5% migration "
                                "overhead, single rebalance, uniform control "
                                "untouched"
                              : "E12 FAIL");
    return (ok_cut && ok_overhead && ok_once && ok_uniform) ? 0 : 1;
}
