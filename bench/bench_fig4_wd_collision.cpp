// Experiment E4 (Figure 4 / Section V): the white-dwarf head-on
// collision.
//
// Reproduced claims:
//  (a) resolution changes the science answer: the higher-resolution run
//      ignites (T reaches 4e9 K) *earlier* in the collision;
//  (b) AMR refines only a tiny fraction of the domain (paper: stars
//      ~0.5% of the volume), so 4x refinement costs ~nothing compared to
//      the 4^3 = 64x of uniform refinement;
//  (c) after contact, the nuclear reactions dominate the gravity solve
//      (paper: ~5x);
//  (d) the burning timescale in hot zones approaches/undercuts the zonal
//      sound-crossing time: the detonation is not numerically converged;
#include "core/parallel_for.hpp"
//  (e) Summit cost projections from the measured kernel mix: 512^3
//      uniform on 16 nodes (paper: < 15 minutes, < 10 node-hours) vs the
//      16x-resolved AMR run on 48 nodes (paper: ~5000 node-hours).

#include "bench_util.hpp"
#include "castro/wd_collision.hpp"
#include "core/timer.hpp"
#include "mesh/tagging.hpp"

#include <cstdio>

using namespace exa;
using namespace exa::castro;

namespace {

struct RunResult {
    Real t_ignite = -1.0;
    Real timescale_ratio = 1.0e99;
    double react_seconds = 0.0;
    double gravity_seconds = 0.0;
    double tagged_fraction = 0.0;
    std::vector<KernelLaunchSpec> mix;
    int steps = 0;
};

RunResult runCollision(int ncell, const ReactionNetwork& net) {
    WdCollisionParams p;
    p.ncell = ncell;
    p.max_grid_size = std::max(8, ncell / 2);
    p.rho_c = 5.0e6;
    p.domain_width = 8.0e9;
    p.separation_in_diameters = 1.3; // short approach at bench scale
    p.approach_velocity = 4.0e8;
    p.do_react = true;
    p.ignition_T = 4.0e9;
    // Monopole gravity for the resolution study (the stars are near-
    // spherical until contact); the react-vs-gravity cost comparison
    // below prices the paper's Poisson solve with the multigrid model.
    p.gravity = GravityType::Monopole;
    auto wd = p.build(net);

    TimerRegistry::instance().reset();
    ScopedBackend sb(Backend::SimGpu);
    DeviceModel dev;
    dev.attach();
    RunResult out;
    out.t_ignite = wd.runToIgnition(/*t_max=*/12.0, /*max_steps=*/600);
    dev.detach();
    out.steps = wd.castro->stepCount();
    out.timescale_ratio = wd.castro->minBurnTimescaleRatio(1.0e9);
    out.react_seconds = TimerRegistry::instance().seconds("castro::react");
    out.gravity_seconds = TimerRegistry::instance().seconds("castro::gravity");
    const int nboxes = static_cast<int>(wd.castro->state().size());
    const std::int64_t zpb = static_cast<std::int64_t>(p.max_grid_size) *
                             p.max_grid_size * p.max_grid_size;
    out.mix = benchutil::kernelMix(dev, nboxes, std::max(out.steps, 1), zpb);

    // What AMR would refine: tag star material (rho above ambient) and
    // cluster into boxes, exactly as the regrid path does.
    MultiFab tags(wd.castro->state().boxArray(), wd.castro->state().distributionMap(),
                  1, 0);
    tags.setVal(0.0);
    for (std::size_t b = 0; b < tags.size(); ++b) {
        auto t = tags.array(static_cast<int>(b));
        auto u = wd.castro->state().const_array(static_cast<int>(b));
        ParallelFor(tags.box(static_cast<int>(b)), [=](int i, int j, int k) {
            if (u(i, j, k, StateLayout::URHO) > 1.0e3) t(i, j, k) = 1.0;
        });
    }
    TagCluster cluster(4);
    BoxArray refined(cluster.cluster(tags, wd.castro->geom().domain()));
    out.tagged_fraction = static_cast<double>(refined.numPts()) /
                          wd.castro->geom().domain().numPts();
    return out;
}

} // namespace

int main() {
    benchutil::printHeader("Figure 4 / Section V: white dwarf head-on collision");

    auto net = makeAprox13(); // the paper's N = 13 network

    // --- (b) star volume budget (from the real hydrostatic model) -------
    {
        Eos eos{HelmLiteEos{}};
        std::vector<Real> X(net.nspec(), 0.0);
        X[net.speciesIndex("c12")] = 0.5;
        X[net.speciesIndex("o16")] = 0.5;
        auto prof = buildWdProfile(eos, net, 5.0e6, 1.0e7, X);
        const Real L = 2.56e10; // the paper's 512^3 x 50 km domain
        const Real vol_stars = 2.0 * (4.0 / 3.0) * constants::pi * prof.radius *
                               prof.radius * prof.radius;
        const double star_frac = vol_stars / (L * L * L);
        const double amr_multiplier = 1.0 + star_frac * (64.0 - 1.0);
        std::printf("\n  WD model: R = %.3g cm, M = %.3g Msun\n", prof.radius,
                    prof.mass / constants::M_sun);
        std::printf("  %-46s %10s %10s\n", "quantity", "ours", "paper");
        benchutil::printRow("stars' geometric volume fraction", star_frac, 0.005,
                            "(paper domain)");
        benchutil::printRow("AMR 4x work multiplier (vs 64x uniform)",
                            amr_multiplier, 1.3, "x base grid");
    }

    // --- (a,c,d) resolution study with the real solver -------------------
    std::printf("\n  Resolution study (real runs, aprox13, monopole gravity):\n");
    std::printf("  %8s %14s %18s %14s %14s\n", "ncell", "t_ignite [s]",
                "min t_burn/t_cross", "react/grav", "tagged frac");
    RunResult lo = runCollision(24, net);
    RunResult hi = runCollision(32, net);
    for (auto [n, r] : {std::pair{24, lo}, std::pair{32, hi}}) {
        std::printf("  %8d %14.3f %18.3g %14.2f %14.4f\n", n, r.t_ignite,
                    r.timescale_ratio,
                    r.react_seconds / std::max(r.gravity_seconds, 1e-12),
                    r.tagged_fraction);
    }

    std::printf("\n  %-46s %10s %10s\n", "claim", "ours", "paper");
    benchutil::printRow("ignition earlier at higher resolution (dt)",
                        lo.t_ignite - hi.t_ignite, 0.1,
                        "s; > 0 is the claim (sign matters)");
    benchutil::printRow("min burn/sound-crossing timescale ratio",
                        hi.timescale_ratio, 0.1,
                        "(paper: < 1, unconverged; shrinks with res)");
    benchutil::printRow("tagged volume fraction (bench domain)",
                        hi.tagged_fraction, 0.005, "(bench stars are larger)");

    // --- (e) Summit cost projections with the measured mix ---------------
    {
        StepModel step;
        step.kernels = hi.mix;
        // At bench scale ignition happens in a handful of zones, so the
        // measured burn imbalance is a single-zone tail; in the 512^3
        // production run the igniting contact region spans many zones per
        // box and the tail is bounded. Cap it for the projection.
        for (auto& k : step.kernels) {
            k.info.work_imbalance = std::min(k.info.work_imbalance, 10.0);
        }
        step.halo_ncomp = StateLayout(net.nspec()).ncomp();
        step.halo_ngrow = 4;
        WeakScalingModel model(MachineParams::summit());

        // Reactions vs gravity (paper: reactions ~5x the gravity solve
        // after contact): burn kernel compute vs the Poisson multigrid at
        // production scale.
        {
            StepModel burn_only;
            for (const auto& k : step.kernels) {
                if (std::string(k.info.name) == "nuclear_burn") {
                    burn_only.kernels.push_back(k);
                }
            }
            MultigridModel grav_mg;
            grav_mg.vcycles_per_step = 10.0; // one solve per step
            grav_mg.smooth_sweeps_per_level = 5;
            const auto pt = model.run(16, 256, 64, burn_only, &grav_mg);
            benchutil::printRow("react/gravity cost ratio (modeled, 16 nodes)",
                                pt.compute_s / pt.mg_s, 5.0, "");
        }

        // Low-res: 512^3 uniform on 16 nodes; ~7 s of simulation at
        // dx = 50 km, dt ~ 0.4 * dx / (|u|+cs) ~ 2e-3 s -> ~3500 steps.
        const auto lo_pt = model.run(16, 256, 64, step);
        const double lo_steps = 7.0 / 2.0e-3;
        const double lo_minutes = lo_steps * lo_pt.total_s / 60.0;
        // High-res AMR: stars 4x finer everywhere + 4x again when hot;
        // zones ~2.2x the uniform run, dt 16x smaller -> 16x the steps.
        const auto hi_pt = model.run(48, 256, 64, step);
        const double hi_node_hours =
            48.0 * 16.0 * lo_steps * hi_pt.total_s * 2.2 / 3600.0;

        std::printf("\n  %-46s %10s %10s\n", "cost projection", "ours", "paper");
        benchutil::printRow("512^3 uniform, 16 nodes", lo_minutes, 15.0,
                            "minutes (paper: < 15)");
        benchutil::printRow("node-hours, low-res total", 16.0 * lo_minutes / 60.0,
                            10.0, "(paper: < 10)");
        benchutil::printRow("AMR 16x run, 48 nodes", hi_node_hours, 5000.0,
                            "node-hours (~)");
    }
    return 0;
}
