#pragma once

// Shared helpers for the figure-reproduction benches: run a real solver
// at laptop scale under the simulated-GPU backend, extract the measured
// kernel mix, and feed it to the Summit scaling model. This is the
// measured-compute / modeled-network split described in DESIGN.md.

#include "core/executor.hpp"
#include "perf/device_model.hpp"
#include "perf/scaling.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace exa::benchutil {

// Convert the per-kernel launch statistics of a real instrumented run
// into the per-box-per-step launch specs the scaling model consumes.
inline std::vector<KernelLaunchSpec> kernelMix(const DeviceModel& dev, int nboxes,
                                               int nsteps,
                                               std::int64_t zones_per_box) {
    std::vector<KernelLaunchSpec> mix;
    for (const auto& [name, ks] : dev.kernelStats()) {
        KernelLaunchSpec spec;
        spec.info = ks.info;
        spec.launches_per_box_per_step =
            static_cast<double>(ks.launches) / (static_cast<double>(nboxes) * nsteps);
        spec.zones_fraction = static_cast<double>(ks.zones) /
                              (static_cast<double>(ks.launches) * zones_per_box);
        mix.push_back(spec);
    }
    return mix;
}

inline void printHeader(const char* title) {
    std::printf("\n==============================================================\n");
    std::printf("%s\n", title);
    std::printf("==============================================================\n");
}

inline void printRow(const char* label, double measured, double paper,
                     const char* unit) {
    std::printf("  %-42s %12.4g %12.4g  %s\n", label, measured, paper, unit);
}

} // namespace exa::benchutil
